package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Session is the package's cohesive entry point: it owns the machine
// description, experiment lookup and execution policy (parallelism,
// result cache, tracing), and hands out harnesses bound to that
// machine. A zero-configuration session runs the reference machine
// sequentially:
//
//	s, _ := repro.NewSession()
//	results, _ := s.RunAll(context.Background())
//
// A sweep session fans out over a worker pool and caches results:
//
//	s, _ := repro.NewSession(
//	    repro.WithSeed(42),
//	    repro.WithParallelism(8),
//	    repro.WithCache(""),        // "" = ~/.cache/softhide
//	)
type Session struct {
	mach        Machine
	parallelism int
	cache       *runner.Cache
	tracer      trace.Tracer
}

// Option configures a Session under construction.
type Option func(*sessionConfig)

type sessionConfig struct {
	mach        Machine
	seed        *int64
	parallelism int
	cacheDir    *string
	tracer      trace.Tracer
}

// WithMachine replaces the reference machine wholesale.
func WithMachine(m Machine) Option {
	return func(c *sessionConfig) { c.mach = m }
}

// WithSeed overrides the scenario seed (applied after WithMachine).
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = &seed }
}

// WithParallelism bounds the worker pool used by RunAll and Sweep.
// n < 1 selects GOMAXPROCS; the default is 1 (fully sequential).
func WithParallelism(n int) Option {
	return func(c *sessionConfig) { c.parallelism = n }
}

// WithCache enables the content-addressed result cache in dir; an empty
// dir selects the conventional location (~/.cache/softhide).
func WithCache(dir string) Option {
	return func(c *sessionConfig) { c.cacheDir = &dir }
}

// WithTracer installs a scheduling-event tracer that NewExecutor wires
// into every executor the session builds (unless the ExecConfig already
// carries one). See NewTraceRing.
func WithTracer(t Tracer) Option {
	return func(c *sessionConfig) { c.tracer = t }
}

// NewSession builds a session over the reference machine, then applies
// the options in order.
func NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{mach: core.DefaultMachine(), parallelism: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.seed != nil {
		cfg.mach.Seed = *cfg.seed
	}
	s := &Session{mach: cfg.mach, parallelism: cfg.parallelism, tracer: cfg.tracer}
	if cfg.cacheDir != nil {
		dir := *cfg.cacheDir
		if dir == "" {
			var err error
			if dir, err = runner.DefaultDir(); err != nil {
				return nil, err
			}
		}
		cache, err := runner.OpenCache(dir)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	return s, nil
}

// Machine returns the session's machine description (by value; mutating
// the copy does not affect the session).
func (s *Session) Machine() Machine { return s.mach }

// CacheDir returns the result-cache directory, or "" when caching is
// disabled.
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// NewHarness composes workload specs over the session's machine.
func (s *Session) NewHarness(specs ...workloads.Spec) (*Harness, error) {
	return core.NewHarness(s.mach, specs...)
}

// NewExecutor builds an executor over an image, injecting the session's
// tracer when the config does not already carry one.
func (s *Session) NewExecutor(h *Harness, img *Image, cfg ExecConfig) *Executor {
	if cfg.Tracer == nil {
		cfg.Tracer = s.tracer
	}
	return h.NewExecutor(img, cfg)
}

// ExperimentIDs lists every registered experiment in presentation order.
func (s *Session) ExperimentIDs() []string { return ExperimentIDs() }

// Run executes one experiment on the session's machine (consulting the
// cache when enabled).
func (s *Session) Run(ctx context.Context, id string) (*ExperimentResult, error) {
	results, err := s.RunAll(ctx, id)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll executes the named experiments — all of them when ids is
// empty — on the session's machine, fanned out over the session's
// worker pool, and returns results in presentation order regardless of
// parallelism. Cached cells are served without simulating.
func (s *Session) RunAll(ctx context.Context, ids ...string) ([]*ExperimentResult, error) {
	rs, err := s.Sweep(ctx, ids, 1)
	if err != nil {
		return nil, err
	}
	out := make([]*ExperimentResult, len(rs))
	for i, r := range rs {
		out[i] = r.Res
	}
	return out, nil
}

// RunReport is one job's outcome in a Sweep: the experiment result plus
// execution metadata (wall clock, cache hit).
type RunReport = runner.Result

// Sweep runs every experiment × seed cell (seeds ≥ 1; seed i runs on
// Seed + i*7919) and returns per-job reports in deterministic
// presentation order.
func (s *Session) Sweep(ctx context.Context, ids []string, seeds int) ([]RunReport, error) {
	if len(ids) == 0 {
		ids = ExperimentIDs()
	}
	jobs, err := runner.Jobs(ids, s.mach, seeds)
	if err != nil {
		return nil, err
	}
	return runner.Run(ctx, jobs, runner.Options{Parallelism: s.parallelism, Cache: s.cache})
}

// Pipeline is the session-level convenience for the paper's three-step
// flow on a single workload part: profile it, instrument the binary,
// and return the harness plus instrumented image ready for execution.
func (s *Session) Pipeline(part string, opts PipelineOptions, specs ...workloads.Spec) (*Harness, *Image, error) {
	h, err := s.NewHarness(specs...)
	if err != nil {
		return nil, nil, err
	}
	prof, _, err := h.Profile(part)
	if err != nil {
		return nil, nil, err
	}
	img, err := h.Instrument(prof, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("instrumenting %s: %w", part, err)
	}
	return h, img, nil
}

// ---- Tracing surface (internal/trace) ----

type (
	// Tracer receives executor scheduling events; nil disables tracing
	// at the cost of one branch per event.
	Tracer = trace.Tracer
	// TraceRing is a bounded in-memory tracer; Reset reuses it across
	// runs without reallocating.
	TraceRing = trace.Ring
	// TraceEvent is one scheduling occurrence.
	TraceEvent = trace.Event
)

// NewTraceRing creates a tracer retaining up to n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

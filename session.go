package repro

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Session is the package's cohesive entry point: it owns the machine
// topology, experiment lookup and execution policy (parallelism,
// result cache, tracing), and hands out harnesses bound to that
// machine. A zero-configuration session runs the single-core reference
// machine sequentially:
//
//	s, _ := repro.NewSession()
//	results, _ := s.RunAll(context.Background())
//
// A sweep session fans out over a worker pool and caches results:
//
//	s, _ := repro.NewSession(
//	    repro.WithSeed(42),
//	    repro.WithParallelism(8),
//	    repro.WithCache(""),        // "" = ~/.cache/softhide
//	)
//
// A many-core session simulates the whole topology in one run:
//
//	s, _ := repro.NewSession(repro.WithTopology(repro.DefaultTopology(8)))
//	st, _ := s.RunMachine(repro.MachineRun{Spec: repro.PointerChase{...}})
type Session struct {
	topo          machine.Topology
	parallelism   int
	cache         *runner.Cache
	obs           ObservabilityConfig
	verify        bool
	noSuperblocks bool

	preflightOnce sync.Once
	preflightErr  error
}

// Option configures a Session under construction.
type Option func(*sessionConfig)

type sessionConfig struct {
	topo          machine.Topology
	seed          *int64
	parallelism   int
	cacheDir      *string
	obs           ObservabilityConfig
	verify        bool
	noSuperblocks bool
}

// WithMachine replaces the reference machine wholesale.
//
// Deprecated: prefer WithTopology, which carries the core count and
// shared-LLC description alongside the per-core machine. WithMachine(m)
// is equivalent to WithTopology(Topology{Cores: 1, Machine: m}).
func WithMachine(m Machine) Option {
	return func(c *sessionConfig) { c.topo = machine.Topology{Cores: 1, Machine: m} }
}

// WithSeed overrides the scenario seed (applied after WithTopology /
// WithMachine, to the per-core template's seed).
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = &seed }
}

// WithParallelism bounds the worker pool used by RunAll and Sweep.
// n < 1 selects GOMAXPROCS; the default is 1 (fully sequential).
func WithParallelism(n int) Option {
	return func(c *sessionConfig) { c.parallelism = n }
}

// WithCache enables the content-addressed result cache in dir; an empty
// dir selects the conventional location (~/.cache/softhide).
func WithCache(dir string) Option {
	return func(c *sessionConfig) { c.cacheDir = &dir }
}

// WithVerification makes the session self-checking against silent
// miscompiles: every image Pipeline instruments is statically verified
// (internal/check — liveness of yield save masks, branch-target closure,
// call/ret discipline, insertion reachability) and rejected if unsound,
// and RunAll/Sweep refuse to dispatch experiments until a one-time
// preflight has proven the instrumentation toolchain sound on a
// reference scenario. Verification is static analysis over the rewritten
// binary; it adds milliseconds, not simulation time.
func WithVerification() Option {
	return func(c *sessionConfig) { c.verify = true }
}

// WithSuperblocks toggles the superblock trace tier for every executor
// the session builds; it is on by default. The tier chains hot basic
// blocks across predicted-taken branches into specialized retire loops
// (see ARCHITECTURE.md §7) and is observation-equivalent to plain block
// dispatch: identical stats, traces and fault surfaces. Note that
// attached observers (profiling runs under WithObservability sampling,
// shprof) bypass the tier — and the whole block engine — entirely, so
// per-instruction event streams are never affected by this knob; turn
// it off only for A/B measurement against the block engine.
func WithSuperblocks(enabled bool) Option {
	return func(c *sessionConfig) { c.noSuperblocks = !enabled }
}

// ObservabilityConfig bundles the session's whole observation surface:
// scheduling-event tracing, the cycle-domain metrics registry, and the
// sink trace exports are written to. Every field is optional; the zero
// value observes nothing and costs one nil check per emission site.
type ObservabilityConfig struct {
	// Tracer receives executor scheduling events; a *TraceRing here also
	// feeds ExportTrace.
	Tracer Tracer
	// Metrics, when non-nil, is threaded into every executor the session
	// builds: the runtime bumps hide-episode histograms inline and
	// harvests cache/core/sampler counters after runs. Inspect it with
	// Session.MetricsSnapshot.
	Metrics *MetricsRegistry
	// TraceSink, when non-nil, is where Session.ExportTrace writes
	// Chrome trace-event JSON when called with a nil writer (e.g. a file
	// the CLI opened for -trace-out).
	TraceSink io.Writer
}

// WithObservability installs the session's observation surface — tracer,
// metrics registry and trace-export sink — in one option:
//
//	ring := repro.NewTraceRing(4096)
//	reg := &repro.MetricsRegistry{}
//	s, _ := repro.NewSession(repro.WithObservability(repro.ObservabilityConfig{
//	    Tracer:  ring,
//	    Metrics: reg,
//	}))
//
// NewExecutor wires Tracer and Metrics into every executor the session
// builds (unless the ExecConfig already carries its own).
func WithObservability(o ObservabilityConfig) Option {
	return func(c *sessionConfig) { c.obs = o }
}

// WithTracer installs a scheduling-event tracer that NewExecutor wires
// into every executor the session builds (unless the ExecConfig already
// carries one). See NewTraceRing.
//
// Deprecated: prefer WithObservability, which carries the tracer
// together with the metrics registry and trace-export sink. WithTracer
// is equivalent to WithObservability(ObservabilityConfig{Tracer: t})
// and overwrites any previously applied observability option.
func WithTracer(t Tracer) Option {
	return func(c *sessionConfig) { c.obs = ObservabilityConfig{Tracer: t} }
}

// NewSession builds a session over the reference machine, then applies
// the options in order.
func NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{topo: machine.Topology{Cores: 1, Machine: core.DefaultMachine()}, parallelism: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.seed != nil {
		cfg.topo.Machine.Seed = *cfg.seed
	}
	s := &Session{topo: cfg.topo, parallelism: cfg.parallelism, obs: cfg.obs, verify: cfg.verify, noSuperblocks: cfg.noSuperblocks}
	if cfg.cacheDir != nil {
		dir := *cfg.cacheDir
		if dir == "" {
			var err error
			if dir, err = runner.DefaultDir(); err != nil {
				return nil, err
			}
		}
		cache, err := runner.OpenCache(dir)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	return s, nil
}

// Machine returns the session's per-core machine template (by value;
// mutating the copy does not affect the session).
//
// Deprecated: prefer Session.Topology, which carries the whole machine
// description; this is Topology().Machine.
func (s *Session) Machine() Machine { return s.topo.Machine }

// CacheDir returns the result-cache directory, or "" when caching is
// disabled.
func (s *Session) CacheDir() string {
	if s.cache == nil {
		return ""
	}
	return s.cache.Dir()
}

// CacheStats reports result-cache lookups since the session opened the
// cache: hits were served without simulating, misses were computed and
// stored. Both are zero when caching is disabled.
func (s *Session) CacheStats() (hits, misses uint64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Hits(), s.cache.Misses()
}

// NewHarness composes workload specs over the session's per-core
// machine template.
func (s *Session) NewHarness(specs ...workloads.Spec) (*Harness, error) {
	return core.NewHarness(s.topo.Machine, specs...)
}

// NewExecutor builds an executor over an image, injecting the session's
// tracer and metrics registry when the config does not already carry
// its own.
func (s *Session) NewExecutor(h *Harness, img *Image, cfg ExecConfig) *Executor {
	if cfg.Tracer == nil {
		cfg.Tracer = s.obs.Tracer
	}
	if cfg.Metrics == nil {
		cfg.Metrics = s.obs.Metrics
	}
	if s.noSuperblocks {
		cfg.DisableSuperblocks = true
	}
	return h.NewExecutor(img, cfg)
}

// ExperimentIDs lists every registered experiment in presentation order.
func (s *Session) ExperimentIDs() []string { return experiments.IDs() }

// Run executes one experiment on the session's machine (consulting the
// cache when enabled).
func (s *Session) Run(ctx context.Context, id string) (*ExperimentResult, error) {
	results, err := s.RunAll(ctx, id)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll executes the named experiments — all of them when ids is
// empty — on the session's machine, fanned out over the session's
// worker pool, and returns results in presentation order regardless of
// parallelism. Cached cells are served without simulating.
func (s *Session) RunAll(ctx context.Context, ids ...string) ([]*ExperimentResult, error) {
	rs, err := s.Sweep(ctx, ids, 1)
	if err != nil {
		return nil, err
	}
	out := make([]*ExperimentResult, len(rs))
	for i, r := range rs {
		out[i] = r.Res
	}
	return out, nil
}

// RunReport is one job's outcome in a Sweep: the experiment result plus
// execution metadata (wall clock, cache hit).
type RunReport = runner.Result

// Sweep runs every experiment × seed cell (seeds ≥ 1; seed i runs on
// Seed + i*7919) and returns per-job reports in deterministic
// presentation order.
func (s *Session) Sweep(ctx context.Context, ids []string, seeds int) ([]RunReport, error) {
	if s.verify {
		if err := s.Preflight(); err != nil {
			return nil, err
		}
	}
	if len(ids) == 0 {
		ids = s.ExperimentIDs()
	}
	jobs, err := runner.Jobs(ids, s.topo.Machine, seeds)
	if err != nil {
		return nil, err
	}
	return runner.Run(ctx, jobs, runner.Options{Parallelism: s.parallelism, Cache: s.cache})
}

// Pipeline is the session-level convenience for the paper's three-step
// flow on a single workload part: profile it, instrument the binary,
// and return the harness plus instrumented image ready for execution.
func (s *Session) Pipeline(part string, opts PipelineOptions, specs ...workloads.Spec) (*Harness, *Image, error) {
	h, img, err := s.pipelineUnverified(part, opts, specs...)
	if err != nil {
		return nil, nil, err
	}
	if s.verify {
		if _, err := s.VerifyImage(h, img); err != nil {
			return nil, nil, fmt.Errorf("verifying instrumented %s: %w", part, err)
		}
	}
	return h, img, nil
}

// pipelineUnverified is Pipeline without the WithVerification gate —
// the preflight uses it so a broken toolchain is reported as a
// verification failure rather than recursing into the gate.
func (s *Session) pipelineUnverified(part string, opts PipelineOptions, specs ...workloads.Spec) (*Harness, *Image, error) {
	h, err := s.NewHarness(specs...)
	if err != nil {
		return nil, nil, err
	}
	prof, smp, err := h.Profile(part)
	if err != nil {
		return nil, nil, err
	}
	if s.obs.Metrics != nil {
		smp.FillMetrics(&s.obs.Metrics.Sampler)
	}
	img, err := h.Instrument(prof, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("instrumenting %s: %w", part, err)
	}
	return h, img, nil
}

// VerifyImage statically verifies an instrumented image against the
// harness's original binary (internal/check): yield save masks cover
// every live register, insertions are effect-free and reachable,
// branch-target closure and call/ret discipline hold. The image must
// carry its pipeline report (Harness.Instrument output); externally
// rewritten images are verified with the shcheck tool instead. It
// returns the full diagnostic report; the error is non-nil when the
// report is not clean (a *CheckError wrapping the report).
func (s *Session) VerifyImage(h *Harness, img *Image) (*CheckReport, error) {
	if img == nil || img.Pipe == nil {
		return nil, fmt.Errorf("repro: VerifyImage needs an image with a pipeline report (from Harness.Instrument)")
	}
	entries := make([]int, 0, len(img.Entries))
	for _, e := range img.Entries {
		entries = append(entries, e)
	}
	sort.Ints(entries)
	rep := check.Program(h.Sc.Prog, img.Prog, img.Pipe.OldToNew, check.Options{Entries: entries})
	return rep, rep.Err()
}

// Preflight proves the instrumentation toolchain sound by running the
// full profile → instrument → verify pipeline on a small reference
// scenario and checking the result is clean. It runs at most once per
// session (the result is cached) and is invoked automatically by
// RunAll/Sweep when WithVerification is set.
func (s *Session) Preflight() error {
	s.preflightOnce.Do(func() {
		h, img, err := s.pipelineUnverified("chase", DefaultPipelineOptions(),
			workloads.PointerChase{Nodes: 2048, Hops: 500, Instances: 2})
		if err != nil {
			s.preflightErr = fmt.Errorf("repro: verification preflight: %w", err)
			return
		}
		if _, err := s.VerifyImage(h, img); err != nil {
			s.preflightErr = fmt.Errorf("repro: verification preflight: instrumentation toolchain is unsound: %w", err)
		}
	})
	return s.preflightErr
}

// Observability returns the session's observation surface as
// configured by WithObservability (or the WithTracer alias).
func (s *Session) Observability() ObservabilityConfig { return s.obs }

// MetricsSnapshot copies the current state of the session's metrics
// registry. It returns a zero snapshot when no registry is configured,
// so callers can render unconditionally.
func (s *Session) MetricsSnapshot() MetricsSnapshot {
	if s.obs.Metrics == nil {
		return MetricsSnapshot{}
	}
	return s.obs.Metrics.Snapshot()
}

// ExportTrace writes the session tracer's retained events as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) to w,
// falling back to the configured TraceSink when w is nil. It errors
// when there is nowhere to write or the session's tracer is not a
// *TraceRing (only rings retain events to export).
func (s *Session) ExportTrace(w io.Writer, opt ChromeTraceOptions) error {
	if w == nil {
		w = s.obs.TraceSink
	}
	if w == nil {
		return fmt.Errorf("repro: ExportTrace needs a writer (none passed, no TraceSink configured)")
	}
	ring, ok := s.obs.Tracer.(*TraceRing)
	if !ok {
		return fmt.Errorf("repro: ExportTrace needs a *TraceRing tracer, have %T", s.obs.Tracer)
	}
	return trace.WriteChromeTrace(w, ring.Events(), opt)
}

// ---- Tracing surface (internal/trace) ----

type (
	// Tracer receives executor scheduling events; nil disables tracing
	// at the cost of one branch per event.
	Tracer = trace.Tracer
	// TraceRing is a bounded in-memory tracer; Reset reuses it across
	// runs without reallocating.
	TraceRing = trace.Ring
	// TraceEvent is one scheduling occurrence.
	TraceEvent = trace.Event
	// ChromeTraceOptions tunes Chrome trace-event export (cycle→µs
	// conversion, process labelling).
	ChromeTraceOptions = trace.ChromeTraceOptions
)

// NewTraceRing creates a tracer retaining up to n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// WriteChromeTrace converts trace events into Chrome trace-event JSON;
// Session.ExportTrace is the usual entry point.
var WriteChromeTrace = trace.WriteChromeTrace

// ---- Verification surface (internal/check) ----

type (
	// CheckReport is the accumulated outcome of one static verification
	// pass over an instrumented image: a structured diagnostic list, not
	// a first-error.
	CheckReport = check.Report
	// CheckDiagnostic is one finding: rule, severity, position, message.
	CheckDiagnostic = check.Diagnostic
	// CheckRule identifies which invariant a diagnostic violates.
	CheckRule = check.Rule
	// CheckError wraps a non-clean CheckReport as an error; unwrap with
	// errors.As to inspect the diagnostics of a failed verification.
	CheckError = check.ReportError
)

// ---- Metrics surface (internal/metrics) ----

type (
	// MetricsRegistry is the cycle-domain observability registry: plain
	// uint64 counters and fixed-array histograms bumped inline by the
	// runtime. The zero value is ready to use.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, renderable
	// as a stats.Table or a flat metric map.
	MetricsSnapshot = metrics.Snapshot
	// MetricsHist is a log2-bucketed fixed-array histogram.
	MetricsHist = metrics.Hist
)

// Command shcheck statically verifies that an instrumented binary image
// is a sound rewrite of its original — the trust gate a production
// binary optimizer runs before shipping (internal/check). It proves the
// properties a positional diff cannot: yield save masks cover every
// live register, branch-target closure, call/ret discipline, insertion
// reachability, and (with -sfi) guard discipline.
//
// Usage:
//
//	shcheck -orig hashjoin.img -inst hashjoin.instrumented.img \
//	        -map hashjoin.map.json
//	shcheck -json -orig a.img -inst b.img        # mapping inferred
//
// Exit status: 0 when the image is clean, 1 when verification found
// diagnostics, 2 on usage or I/O errors. Findings go to stdout, one per
// line (or one JSON report with -json); nothing is printed for a clean
// image unless -v.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/isa"
	"repro/internal/sfi"
)

func main() {
	fs := flag.NewFlagSet("shcheck", flag.ExitOnError)
	origPath := fs.String("orig", "", "original image (required)")
	instPath := fs.String("inst", "", "instrumented image to verify (required)")
	mapPath := fs.String("map", "", "mapping report JSON from shinstr -report (default: infer the mapping)")
	entriesFlag := fs.String("entries", "", "comma-separated entry-point indices in the instrumented image (overrides -map; default 0)")
	sfiMode := fs.Bool("sfi", false, "enforce SFI guard discipline (every load/store CHECKed)")
	codesign := fs.Bool("codesign", false, "with -sfi: accept guards folded into yield shadows")
	guardStores := fs.Bool("guardstores", true, "with -sfi: require guards on stores too")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON instead of diagnostics")
	verbose := fs.Bool("v", false, "print the summary line even for a clean image")
	fs.Parse(os.Args[1:])

	code, err := run(os.Stdout, *origPath, *instPath, *mapPath, *entriesFlag, *sfiMode, *codesign, *guardStores, *jsonOut, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shcheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(out io.Writer, origPath, instPath, mapPath, entriesFlag string,
	sfiMode, codesign, guardStores, jsonOut, verbose bool) (int, error) {
	if origPath == "" || instPath == "" {
		return 0, fmt.Errorf("-orig and -inst are required")
	}
	origImg, err := loadImage(origPath)
	if err != nil {
		return 0, err
	}
	instImg, err := loadImage(instPath)
	if err != nil {
		return 0, err
	}

	var opts check.Options
	var oldToNew []int
	if mapPath != "" {
		f, err := os.Open(mapPath)
		if err != nil {
			return 0, err
		}
		m, err := check.LoadMapFile(f)
		f.Close()
		if err != nil {
			return 0, err
		}
		oldToNew = m.OldToNew
		opts.Entries = m.Entries
	}
	if entriesFlag != "" {
		opts.Entries, err = parseEntries(entriesFlag)
		if err != nil {
			return 0, err
		}
	}
	if sfiMode {
		opts.SFI = &sfi.Options{CoDesign: codesign, GuardStores: guardStores}
	}

	rep, err := check.Image(origImg, instImg, oldToNew, opts)
	if err != nil {
		return 0, err
	}

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else if !rep.Clean() || verbose {
		fmt.Fprint(out, rep.String())
	}
	if rep.Clean() {
		return 0, nil
	}
	return 1, nil
}

func loadImage(path string) (*isa.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return isa.LoadImage(f)
}

func parseEntries(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

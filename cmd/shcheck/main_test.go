package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/pebs"
	"repro/internal/profile"
)

const chaseSrc = `
        movi r3, 100
    loop:
        load r1, [r1]
        addi r3, r3, -1
        cmpi r3, 0
        jgt loop
        halt
`

// fixture instruments chaseSrc and writes orig/inst/map files into dir,
// returning their paths plus the decoded programs for tampering.
func fixture(t *testing.T, dir string) (origPath, instPath, mapPath string, final *isa.Program, oldToNew []int) {
	t.Helper()
	orig := isa.MustAssemble(chaseSrc)
	var samples []pebs.Sample
	samples = append(samples,
		pebs.Sample{Event: pebs.EvLoadRetired, PC: 1, Weight: 1000},
		pebs.Sample{Event: pebs.EvLoadL2Miss, PC: 1, Weight: 900},
		pebs.Sample{Event: pebs.EvLoadL3Miss, PC: 1, Weight: 900},
		pebs.Sample{Event: pebs.EvStallCycle, PC: 1, Weight: 250000},
	)
	prof := profile.Build(len(orig.Instrs), samples, nil)
	img, res, err := instrument.InstrumentImage(isa.Encode(orig), prof, instrument.DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	origPath = writeImage(t, filepath.Join(dir, "orig.img"), isa.Encode(orig))
	instPath = writeImage(t, filepath.Join(dir, "inst.img"), img)
	mapPath = filepath.Join(dir, "map.json")
	f, err := os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	m := check.MapFile{OldToNew: res.OldToNew, Entries: []int{0}}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return origPath, instPath, mapPath, isa.MustDecode(img), res.OldToNew
}

func writeImage(t *testing.T, path string, img *isa.Image) string {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := isa.SaveImage(f, img); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanImageExitsZero(t *testing.T) {
	dir := t.TempDir()
	origPath, instPath, mapPath, _, _ := fixture(t, dir)
	var out bytes.Buffer
	code, err := run(&out, origPath, instPath, mapPath, "", false, false, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean image exit code %d, output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean image should print nothing without -v, got:\n%s", out.String())
	}
	// -v prints the summary.
	out.Reset()
	if _, err := run(&out, origPath, instPath, mapPath, "", false, false, true, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 errors, 0 warnings") {
		t.Errorf("verbose summary missing:\n%s", out.String())
	}
}

func TestInferredMappingWorksWithoutMapFile(t *testing.T) {
	dir := t.TempDir()
	origPath, instPath, _, _, _ := fixture(t, dir)
	var out bytes.Buffer
	code, err := run(&out, origPath, instPath, "", "0", false, false, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("inferred-map run exit code %d:\n%s", code, out.String())
	}
}

func TestTamperedImageExitsOneWithRule(t *testing.T) {
	dir := t.TempDir()
	origPath, _, mapPath, final, oldToNew := fixture(t, dir)
	bad := final.Clone()
	// Clear a live-mask bit on the primary yield.
	for p, in := range bad.Instrs {
		if in.Op == isa.OpYield {
			bad.Instrs[p].Imm &^= int64(1) << 3
			break
		}
	}
	_ = oldToNew
	badPath := writeImage(t, filepath.Join(dir, "bad.img"), isa.Encode(bad))
	var out bytes.Buffer
	code, err := run(&out, origPath, badPath, mapPath, "", false, false, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("tampered image exit code %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[liveness]") {
		t.Errorf("diagnostic does not name the rule:\n%s", out.String())
	}
}

func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	origPath, _, mapPath, final, _ := fixture(t, dir)
	bad := final.Clone()
	for p, in := range bad.Instrs {
		if in.Op == isa.OpYield {
			bad.Instrs[p].Imm &^= int64(1) << 3
			break
		}
	}
	badPath := writeImage(t, filepath.Join(dir, "bad.img"), isa.Encode(bad))
	var out bytes.Buffer
	code, err := run(&out, origPath, badPath, mapPath, "", false, false, true, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	var rep check.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, out.String())
	}
	if !rep.HasRule(check.RuleLiveness) {
		t.Errorf("JSON report missing liveness finding: %+v", rep)
	}
}

func TestUsageAndIOErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(&out, "", "", "", "", false, false, true, false, false); err == nil {
		t.Error("missing required flags must error")
	}
	if _, err := run(&out, "/nonexistent.img", "/nonexistent.img", "", "", false, false, true, false, false); err == nil {
		t.Error("unreadable image must error")
	}
	dir := t.TempDir()
	origPath, instPath, _, _, _ := fixture(t, dir)
	if _, err := run(&out, origPath, instPath, "", "zap", false, false, true, false, false); err == nil {
		t.Error("malformed -entries must error")
	}
	badMap := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badMap, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(&out, origPath, instPath, badMap, "", false, false, true, false, false); err == nil {
		t.Error("malformed map file must error")
	}
}

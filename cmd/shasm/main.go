// Command shasm assembles virtual-ISA assembly into a binary image, or
// disassembles an image back to source. It rounds out the binary
// toolchain: programs written by hand can be profiled (shprof works on
// named workloads, shrun on images), instrumented (shinstr) and executed.
//
// Usage:
//
//	shasm -o prog.img prog.s           # assemble
//	shasm -d prog.img                  # disassemble to stdout
//	shasm -stats prog.img              # opcode histogram + analysis summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bincfg"
	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "output image path (assembly mode)")
	disasm := flag.Bool("d", false, "disassemble an image to stdout")
	statsMode := flag.Bool("stats", false, "print opcode and CFG statistics for an image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shasm [-d|-stats|-o out.img] file")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *out, *disasm, *statsMode); err != nil {
		fmt.Fprintln(os.Stderr, "shasm:", err)
		os.Exit(1)
	}
}

func run(path, out string, disasm, statsMode bool) error {
	if disasm || statsMode {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		img, err := isa.LoadImage(f)
		if err != nil {
			return err
		}
		prog, err := isa.Decode(img)
		if err != nil {
			return err
		}
		if disasm {
			fmt.Print(isa.Disassemble(prog))
			return nil
		}
		return printStats(prog)
	}

	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return err
	}
	if out == "" {
		out = path + ".img"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := isa.SaveImage(f, isa.Encode(prog)); err != nil {
		return err
	}
	fmt.Printf("assembled %d instructions, %d symbols -> %s\n",
		len(prog.Instrs), len(prog.Symbols), out)
	return nil
}

func printStats(prog *isa.Program) error {
	counts := map[string]int{}
	for _, in := range prog.Instrs {
		counts[in.Op.String()]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%d instructions\n", len(prog.Instrs))
	for _, n := range names {
		fmt.Printf("  %-10s %d\n", n, counts[n])
	}
	g, err := bincfg.Build(prog)
	if err != nil {
		return err
	}
	dom := bincfg.ComputeDominators(g)
	loops := bincfg.NaturalLoops(g, dom)
	fmt.Printf("%d basic blocks, %d roots, %d natural loops\n",
		len(g.Blocks), len(g.Roots()), len(loops))
	fmt.Printf("%d candidate loads\n", len(bincfg.LoadsIn(prog)))
	return nil
}

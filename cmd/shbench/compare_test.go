package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeTrajectory(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldTrajectory = `{
  "benchmarks": {
    "BenchmarkCoreStep": {
      "baseline": null,
      "current": {"ns_per_op": 26.7, "allocs_per_op": 0, "note": "ignore me"}
    },
    "BenchmarkCoreBlock": {
      "current": {"ns_per_op": 2682, "ns_per_instr": 2.62}
    },
    "BenchmarkMachineScaling": {
      "baseline": null,
      "current": {"cores_1": {"ns_per_op": 7907723}, "cores_2": {"ns_per_op": 14148975}}
    },
    "BenchmarkGone": {
      "current": {"ns_per_op": 10}
    }
  }
}`

const newTrajectory = `{
  "benchmarks": {
    "BenchmarkCoreStep": {
      "current": {"ns_per_op": 28.0, "allocs_per_op": 0}
    },
    "BenchmarkCoreBlock": {
      "current": {"ns_per_op": 2682, "ns_per_instr": 2.62}
    },
    "BenchmarkMachineScaling": {
      "current": {"cores_1": {"ns_per_op": 7000000}, "cores_2": {"ns_per_op": 14148975}}
    },
    "BenchmarkCoreSuperblock": {
      "current": {"ns_per_instr": 0.76}
    }
  }
}`

func TestCompareMode(t *testing.T) {
	oldPath := writeTrajectory(t, "old.json", oldTrajectory)
	newPath := writeTrajectory(t, "new.json", newTrajectory)
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	// Deltas: signed percentage on change, "=" on no change, markers for
	// one-sided metrics.
	for _, want := range []string{
		"BenchmarkCoreStep.ns_per_op",
		"+4.87%",  // 26.7 → 28.0
		"-11.48%", // scaling cores_1: 7907723 → 7000000
		"BenchmarkMachineScaling.cores_1.ns_per_op",
		"BenchmarkGone.ns_per_op",
		"gone",
		"BenchmarkCoreSuperblock.ns_per_instr",
		"added",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	unchanged := regexp.MustCompile(`BenchmarkCoreBlock\.ns_per_op.*=\n`)
	if !unchanged.MatchString(got) {
		t.Errorf("unchanged metric not rendered as '=':\n%s", got)
	}
	// allocs 0 → 0 must compare equal, not divide by zero.
	zeroEq := regexp.MustCompile(`BenchmarkCoreStep\.allocs_per_op.*=\n`)
	if !zeroEq.MatchString(got) {
		t.Errorf("0→0 metric not rendered as '=':\n%s", got)
	}
	// String leaves (notes) must not appear as metrics.
	if strings.Contains(got, "note") {
		t.Errorf("non-numeric leaf leaked into the table:\n%s", got)
	}
}

// The mode must run against the real recorded trajectories in the repo
// root — that is its whole purpose.
func TestCompareModeAgainstRecordedTrajectories(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_PR*.json")
	if err != nil || len(matches) == 0 {
		t.Skipf("no recorded trajectories found: %v", err)
	}
	var out bytes.Buffer
	if err := runCompare(&out, matches[0], matches[len(matches)-1]); err != nil {
		t.Fatalf("compare over recorded trajectories: %v", err)
	}
	if !strings.Contains(out.String(), "BenchmarkCoreStep.ns_per_op") {
		t.Errorf("recorded trajectory comparison missing core step metric:\n%s", out.String())
	}
}

func TestCompareModeErrors(t *testing.T) {
	oldPath := writeTrajectory(t, "old.json", oldTrajectory)
	// Missing positional argument.
	if _, _, err := bench(t, options{compare: oldPath}); err == nil {
		t.Error("compare without a new trajectory accepted, want error")
	}
	// Unreadable file.
	if err := runCompare(&bytes.Buffer{}, oldPath, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("compare against a missing file accepted, want error")
	}
	// Structurally empty trajectory.
	empty := writeTrajectory(t, "empty.json", `{"benchmarks": {}}`)
	if err := runCompare(&bytes.Buffer{}, empty, oldPath); err == nil {
		t.Error("trajectory with no benchmarks accepted, want error")
	}
	// Invalid JSON.
	bad := writeTrajectory(t, "bad.json", `{`)
	if err := runCompare(&bytes.Buffer{}, bad, oldPath); err == nil {
		t.Error("invalid JSON accepted, want error")
	}
}

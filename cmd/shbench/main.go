// Command shbench regenerates the evaluation: Figure 1 and experiments
// E1–E21 (see DESIGN.md §3 for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured discussion). Sweeps fan out over the parallel
// runner; output is byte-identical for tables and metrics at any
// parallelism, and a warm result cache skips already-computed cells.
//
// Usage:
//
//	shbench                        # run everything
//	shbench -exp F1,E7             # selected experiments
//	shbench -list                  # enumerate experiment IDs
//	shbench -metrics               # also dump flat metrics (machine-readable)
//	shbench -seeds 5 -parallel 8   # 5-seed stability sweep on 8 workers
//	shbench -cache -progress       # cache results, report live progress
//	shbench -compare BENCH_PR6.json BENCH_PR7.json
//	                               # benchstat-style deltas between trajectories
//	shbench -cpuprofile cpu.out    # profile the run (go tool pprof cpu.out)
//	shbench -memprofile mem.out    # heap profile written on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/runner"
	_ "repro/internal/service" // registers E21 (open-loop multi-core serving)
	"repro/internal/stats"
	"repro/internal/workloads"
)

// options collects everything run needs, so tests can drive it without
// the process-global flag set.
type options struct {
	exp      string
	tf       cli.TopologyFlags
	metrics  bool
	seed     int64
	format   string
	seeds    int
	parallel int
	progress bool
	cache    bool
	cacheDir string
	// compare/compareWith are the old and new trajectory files for the
	// benchstat-style delta report (-compare old.json new.json).
	compare     string
	compareWith string
}

func main() {
	fs := flag.NewFlagSet("shbench", flag.ExitOnError)
	cli.InstallUsage(fs)
	var o options
	fs.StringVar(&o.exp, "exp", "all", "comma-separated experiment IDs, or 'all'")
	o.tf.Register(fs)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	fs.BoolVar(&o.metrics, "metrics", false, "dump flat metrics after each table")
	fs.Int64Var(&o.seed, "seed", 0, "override the scenario seed (0 keeps the default)")
	fs.StringVar(&o.format, "format", "text", "text | md (markdown tables for reports)")
	fs.IntVar(&o.seeds, "seeds", 1, "repeat each experiment across N seeds and summarize metric stability")
	fs.IntVar(&o.parallel, "parallel", 1, "worker goroutines for the sweep (0 = GOMAXPROCS)")
	fs.BoolVar(&o.progress, "progress", false, "report per-job completion on stderr")
	fs.BoolVar(&o.cache, "cache", false, "serve and store results in the content-addressed cache")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "cache directory (implies -cache; default ~/.cache/softhide)")
	fs.StringVar(&o.compare, "compare", "", "old trajectory JSON; with a new trajectory as the positional argument, print per-benchmark deltas and exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[1:])
	o.compareWith = fs.Arg(0)

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(context.Background(), os.Stdout, os.Stderr, o)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "shbench:", merr)
			os.Exit(1)
		}
		runtime.GC() // flush unreached objects so the profile shows live heap
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintln(os.Stderr, "shbench:", werr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w, ew io.Writer, o options) error {
	if o.compare != "" {
		if o.compareWith == "" {
			return fmt.Errorf("-compare needs both trajectories: shbench -compare old.json new.json")
		}
		return runCompare(w, o.compare, o.compareWith)
	}
	if o.format != "text" && o.format != "md" {
		return fmt.Errorf("unknown format %q (want text or md)", o.format)
	}
	if o.seeds < 1 {
		return fmt.Errorf("-seeds must be ≥ 1 (got %d)", o.seeds)
	}
	if o.parallel < 0 {
		return fmt.Errorf("-parallel must be ≥ 0 (got %d)", o.parallel)
	}
	if err := o.tf.Check(); err != nil {
		return err
	}
	mach := core.DefaultMachine()
	if o.seed != 0 {
		mach.Seed = o.seed
	}
	if o.tf.Cores > 1 {
		// Many-core mode: E1–E20 are single-core experiments, so -cores
		// selects the machine-scaling report instead.
		if o.exp != "all" {
			return fmt.Errorf("-cores runs the many-core scaling report; the single-core experiments of -exp do not take a topology")
		}
		if o.seeds > 1 {
			return fmt.Errorf("-seeds is not summarized for the scaling report; drop one of -cores/-seeds")
		}
		return runScaling(ctx, w, ew, o, mach)
	}

	var ids []string
	if o.exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(o.exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Expand experiment × seed jobs upfront: a mistyped ID fails here,
	// before any simulation starts, naming every valid choice.
	jobs, err := runner.Jobs(ids, mach, o.seeds)
	if err != nil {
		return err
	}

	var cache *runner.Cache
	if o.cache || o.cacheDir != "" {
		dir := o.cacheDir
		if dir == "" {
			if dir, err = runner.DefaultDir(); err != nil {
				return err
			}
		}
		if cache, err = runner.OpenCache(dir); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "softhide evaluation — %d experiment(s), seed %d\n", len(ids), mach.Seed)
	fmt.Fprintf(w, "machine: L1 %dKiB / L2 %dKiB / L3 %dKiB, latencies %d/%d/%d/%d cycles, switch %d cycles\n\n",
		mach.Mem.L1Size>>10, mach.Mem.L2Size>>10, mach.Mem.L3Size>>10,
		mach.Mem.LatL1, mach.Mem.LatL2, mach.Mem.LatL3, mach.Mem.LatDRAM,
		mach.Switch.FullCost())

	opts := runner.Options{Parallelism: o.parallel, Cache: cache}
	if o.progress {
		opts.Progress = func(done, total int, r runner.Result) {
			state := r.Wall.Round(time.Millisecond).String()
			if r.CacheHit {
				state = "cached"
			}
			if r.Err != nil {
				state = "error"
			}
			fmt.Fprintf(ew, "progress: %d/%d %s seed=%d (%s)\n", done, total, r.Job.ID, r.Job.Mach.Seed, state)
		}
	}

	// Jobs arrive in presentation order, experiment-major: the o.seeds
	// results for one experiment are consecutive. Accumulate each group
	// and render it when its last seed lands, so output streams while
	// later experiments are still running.
	var group []runner.Result
	err = runner.Stream(ctx, jobs, opts, func(r runner.Result) error {
		group = append(group, r)
		if len(group) < o.seeds {
			return nil
		}
		if err := present(w, o, group); err != nil {
			return err
		}
		group = group[:0]
		return nil
	})
	if err != nil {
		return err
	}
	if cache != nil {
		fmt.Fprintf(ew, "cache: %d hit(s), %d miss(es) under %s\n", cache.Hits(), cache.Misses(), cache.Dir())
	}
	return nil
}

// runScaling runs the many-core scaling report: the canonical pointer
// chase on 1, 2, 4, … up to -cores cores over the shared LLC, fanned
// out on the runner (each core count is one cacheable job whose key
// carries the full topology).
func runScaling(ctx context.Context, w, ew io.Writer, o options, mach core.Machine) error {
	var counts []int
	for c := 1; c < o.tf.Cores; c *= 2 {
		counts = append(counts, c)
	}
	counts = append(counts, o.tf.Cores)

	spec := workloads.PointerChase{Nodes: 8192, Hops: 3000, Instances: 4}
	rc := machine.RunConfig{Spec: spec, Mode: machine.ModeSymmetric, Exec: exec.Config{}}

	var jobs []runner.Job
	for _, c := range counts {
		tf := o.tf
		tf.Cores = c
		if c == 1 {
			tf.LLCBanks, tf.LLCSize = 0, 0 // shared-LLC overrides do not apply single-core
		}
		topo, err := tf.Topology(mach)
		if err != nil {
			return err
		}
		jobs = append(jobs, runner.Job{
			ID:        fmt.Sprintf("machine-scaling/%s/symmetric/cores=%d", spec.Name(), c),
			Mach:      mach,
			Topo:      &topo,
			Cacheable: true,
			Run: func(m core.Machine) (*experiments.Result, error) {
				t := topo
				t.Machine = m
				mm, err := machine.New(t, rc)
				if err != nil {
					return nil, err
				}
				st, err := mm.Run()
				if err != nil {
					return nil, err
				}
				return &experiments.Result{ID: "machine-scaling", Metrics: map[string]float64{
					"cycles":     float64(st.Cycles),
					"retired":    float64(st.Aggregate.Retired),
					"ipc":        float64(st.Aggregate.Retired) / float64(st.Cycles),
					"llc_misses": float64(st.LLC.Misses),
					"llc_queued": float64(st.LLC.Queued),
				}}, nil
			},
		})
	}

	var cache *runner.Cache
	if o.cache || o.cacheDir != "" {
		dir := o.cacheDir
		if dir == "" {
			var err error
			if dir, err = runner.DefaultDir(); err != nil {
				return err
			}
		}
		var err error
		if cache, err = runner.OpenCache(dir); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "softhide many-core scaling — %s, symmetric, seed %d\n\n", spec.Name(), mach.Seed)
	results, err := runner.Run(ctx, jobs, runner.Options{Parallelism: o.parallel, Cache: cache})
	if err != nil {
		return err
	}
	tb := stats.NewTable("aggregate throughput vs core count",
		"cores", "cycles", "retired", "machine IPC", "llc misses", "llc queued")
	base := results[0].Res.Metrics["ipc"]
	for i, r := range results {
		m := r.Res.Metrics
		tb.Row(counts[i], uint64(m["cycles"]), uint64(m["retired"]), m["ipc"], uint64(m["llc_misses"]), uint64(m["llc_queued"]))
	}
	fmt.Fprint(w, tb.String())
	last := results[len(results)-1].Res.Metrics["ipc"]
	fmt.Fprintf(w, "speedup at %d cores: %.2fx aggregate throughput over 1 core\n",
		o.tf.Cores, last/base)
	if cache != nil {
		fmt.Fprintf(ew, "cache: %d hit(s), %d miss(es) under %s\n", cache.Hits(), cache.Misses(), cache.Dir())
	}
	return nil
}

// present renders one experiment's seed group: the first seed's tables,
// optional metrics, optional cross-seed stability, and the wall line.
func present(w io.Writer, o options, group []runner.Result) error {
	first := group[0].Res
	if o.format == "md" {
		fmt.Fprint(w, first.Markdown())
	} else {
		fmt.Fprint(w, first.String())
	}
	if o.metrics {
		fmt.Fprint(w, first.MetricsString())
	}
	if o.seeds > 1 {
		stability(w, group)
	}
	var wall time.Duration
	cached := true
	for _, r := range group {
		wall += r.Wall
		cached = cached && r.CacheHit
	}
	if cached {
		fmt.Fprintf(w, "(cached)\n\n")
	} else {
		fmt.Fprintf(w, "(%s wall time)\n\n", wall.Round(time.Millisecond))
	}
	return nil
}

// stability summarizes the spread of each metric across the group's
// seeds, exposing any seed-overfit conclusions.
func stability(w io.Writer, group []runner.Result) {
	samples := map[string][]float64{}
	for _, r := range group {
		for k, v := range r.Res.Metrics {
			samples[k] = append(samples[k], v)
		}
	}
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "metric stability over %d seeds (mean ± stddev):\n", len(group))
	for _, k := range keys {
		s := stats.Summarize(samples[k])
		fmt.Fprintf(w, "  %-28s %12.4f ± %.4f\n", k, s.Mean, s.Stddev)
	}
}

// Command shbench regenerates the evaluation: Figure 1 and experiments
// E1–E13 (see DESIGN.md §3 for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured discussion).
//
// Usage:
//
//	shbench                  # run everything
//	shbench -exp F1,E7       # selected experiments
//	shbench -list            # enumerate experiment IDs
//	shbench -metrics         # also dump flat metrics (machine-readable)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", false, "dump flat metrics after each table")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 keeps the default)")
	format := flag.String("format", "text", "text | md (markdown tables for reports)")
	seeds := flag.Int("seeds", 1, "repeat each experiment across N seeds and summarize metric stability")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if err := run(*expFlag, *metrics, *seed, *format, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "shbench:", err)
		os.Exit(1)
	}
}

func run(expFlag string, metrics bool, seed int64, format string, seeds int) error {
	mach := core.DefaultMachine()
	if seed != 0 {
		mach.Seed = seed
	}

	var ids []string
	if expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	fmt.Printf("softhide evaluation — %d experiment(s), seed %d\n", len(ids), mach.Seed)
	fmt.Printf("machine: L1 %dKiB / L2 %dKiB / L3 %dKiB, latencies %d/%d/%d/%d cycles, switch %d cycles\n\n",
		mach.Mem.L1Size>>10, mach.Mem.L2Size>>10, mach.Mem.L3Size>>10,
		mach.Mem.LatL1, mach.Mem.LatL2, mach.Mem.LatL3, mach.Mem.LatDRAM,
		mach.Switch.FullCost())

	for _, id := range ids {
		runner, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		res, err := runner(mach)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if format == "md" {
			fmt.Print(res.Markdown())
		} else {
			fmt.Print(res.String())
		}
		if metrics {
			fmt.Print(res.MetricsString())
		}
		if seeds > 1 {
			if err := seedStability(runner, mach, res, seeds); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// seedStability reruns the experiment under additional seeds and reports
// the spread of each metric, exposing any seed-overfit conclusions.
func seedStability(runner experiments.Runner, mach core.Machine, first *experiments.Result, seeds int) error {
	samples := map[string][]float64{}
	for k, v := range first.Metrics {
		samples[k] = []float64{v}
	}
	for i := 1; i < seeds; i++ {
		m := mach
		m.Seed = mach.Seed + int64(i)*7919
		res, err := runner(m)
		if err != nil {
			return err
		}
		for k, v := range res.Metrics {
			samples[k] = append(samples[k], v)
		}
	}
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("metric stability over %d seeds (mean ± stddev):\n", seeds)
	for _, k := range keys {
		s := stats.Summarize(samples[k])
		fmt.Printf("  %-28s %12.4f ± %.4f\n", k, s.Mean, s.Stddev)
	}
	return nil
}

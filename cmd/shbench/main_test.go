package main

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func bench(t *testing.T, o options) (string, string, error) {
	t.Helper()
	if o.tf.Cores == 0 {
		o.tf.Cores = 1 // the flag default; tests build options directly
	}
	var out, errOut bytes.Buffer
	err := run(context.Background(), &out, &errOut, o)
	return out.String(), errOut.String(), err
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	out, _, err := bench(t, options{exp: "E1,BOGUS", seeds: 1, format: "text"})
	var unknown *experiments.UnknownIDError
	if !errors.As(err, &unknown) || unknown.ID != "BOGUS" {
		t.Fatalf("err = %v, want UnknownIDError for BOGUS", err)
	}
	if !strings.Contains(err.Error(), "F1") || !strings.Contains(err.Error(), "E20") {
		t.Errorf("error must list valid IDs: %v", err)
	}
	// Validation happens before any simulation: no experiment output.
	if strings.Contains(out, "### ") {
		t.Errorf("output produced before ID validation:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []options{
		{exp: "E1", seeds: 1, format: "html"},
		{exp: "E1", seeds: 0, format: "text"},
		{exp: "E1", seeds: 1, format: "text", parallel: -1},
	}
	for _, o := range cases {
		if _, _, err := bench(t, o); err == nil {
			t.Errorf("options %+v accepted, want error", o)
		}
	}
}

func TestRunSingleExperimentOutput(t *testing.T) {
	out, _, err := bench(t, options{exp: "E1", seeds: 1, format: "text", metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"softhide evaluation — 1 experiment(s)", "### E1", "wall time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !regexp.MustCompile(`(?m)^[a-z0-9_.]+=-?\d+\.\d{4}$`).MatchString(out) {
		t.Errorf("-metrics produced no flat metric lines:\n%s", out)
	}
}

func TestRunSeedOverrideAppearsInHeader(t *testing.T) {
	out, _, err := bench(t, options{exp: "E1", seeds: 1, format: "text", seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seed 42") {
		t.Errorf("seed override not reflected:\n%s", out)
	}
}

// strip removes the nondeterministic wall-time suffix lines so runs can
// be compared byte-for-byte on tables and metrics.
func strip(out string) string {
	re := regexp.MustCompile(`(?m)^\((cached|.* wall time)\)\n`)
	return re.ReplaceAllString(out, "")
}

// The acceptance property at the CLI layer: a multi-seed sweep renders
// identical tables, stability summaries and metrics at -parallel 1 and 8.
func TestRunParallelOutputMatchesSequential(t *testing.T) {
	base := options{exp: "E1,E13", seeds: 2, format: "text", metrics: true}
	seqOpts, parOpts := base, base
	seqOpts.parallel = 1
	parOpts.parallel = 8
	seq, _, err := bench(t, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := bench(t, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if strip(seq) != strip(par) {
		t.Errorf("parallel output diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "metric stability over 2 seeds") {
		t.Errorf("stability summary missing:\n%s", seq)
	}
}

// A warm cache must serve the whole sweep ("(cached)" wall lines) and
// render the same tables as the cold run.
func TestRunWarmCacheServesSweep(t *testing.T) {
	o := options{exp: "E1", seeds: 2, format: "text", cacheDir: t.TempDir(), parallel: 2, progress: true}
	cold, _, err := bench(t, o)
	if err != nil {
		t.Fatal(err)
	}
	warm, errOut, err := bench(t, o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm, "(cached)") {
		t.Errorf("warm run not served from cache:\n%s", warm)
	}
	if strip(cold) != strip(warm) {
		t.Errorf("cached output diverged:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if !strings.Contains(errOut, "cache: 2 hit(s), 0 miss(es)") {
		t.Errorf("cache summary wrong:\n%s", errOut)
	}
	if !strings.Contains(errOut, "progress: 2/2") {
		t.Errorf("progress lines missing:\n%s", errOut)
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	out, _, err := bench(t, options{exp: "E1", seeds: 1, format: "md"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| --- |") {
		t.Errorf("markdown table missing:\n%s", out)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// This file implements `shbench -compare old.json new.json`: a
// benchstat-style delta report between two recorded benchmark
// trajectories (the BENCH_PR*.json files in the repo root). Each
// trajectory's "benchmarks" section holds per-benchmark objects whose
// "current" entry carries numeric metrics, possibly nested (the scaling
// benchmark records one object per core count); the report flattens
// those to dotted paths, pairs them across the two files, and prints
// old, new, and the signed relative delta for every metric present in
// both. Metrics present on only one side are listed with a dash so a
// renamed or newly added benchmark is visible rather than silently
// dropped.

// trajectoryMetrics loads a trajectory file and flattens every
// benchmark's "current" metrics into dotted keys:
// "BenchmarkCoreBlock.ns_per_instr", "BenchmarkMachineScaling.cores_4.ns_per_op".
func trajectoryMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no \"benchmarks\" section", path)
	}
	out := map[string]float64{}
	for name, msg := range doc.Benchmarks {
		var entry struct {
			Current json.RawMessage `json:"current"`
		}
		if err := json.Unmarshal(msg, &entry); err != nil {
			return nil, fmt.Errorf("%s: benchmark %s: %w", path, name, err)
		}
		if len(entry.Current) == 0 {
			continue // "baseline": null style holes are fine; "current" must exist to compare
		}
		var tree any
		if err := json.Unmarshal(entry.Current, &tree); err != nil {
			return nil, fmt.Errorf("%s: benchmark %s: %w", path, name, err)
		}
		flattenMetrics(name, tree, out)
	}
	return out, nil
}

// flattenMetrics walks a decoded JSON value and records every numeric
// leaf under its dotted path. Strings (notes) and other leaves are
// ignored: only numbers are comparable.
func flattenMetrics(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case map[string]any:
		for k, sub := range t {
			flattenMetrics(prefix+"."+k, sub, out)
		}
	}
}

// formatDelta renders the signed relative change from old to new.
func formatDelta(old, new float64) string {
	if old == new {
		return "="
	}
	if old == 0 {
		return "new≠0" // no base to take a ratio against
	}
	return fmt.Sprintf("%+.2f%%", (new-old)/old*100)
}

// formatMetric keeps small numbers readable (ns/instr) without
// exploding large ones (ns/op of whole-machine runs) into exponents.
func formatMetric(v float64) string {
	if v != math.Trunc(v) && math.Abs(v) < 1000 {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.0f", v)
}

// runCompare prints the benchstat-style delta table between two
// trajectory files.
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldM, err := trajectoryMetrics(oldPath)
	if err != nil {
		return err
	}
	newM, err := trajectoryMetrics(newPath)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(oldM)+len(newM))
	seen := map[string]bool{}
	for k := range oldM {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newM {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "trajectory comparison: %s → %s\n\n", oldPath, newPath)
	fmt.Fprintf(w, "%-52s %14s %14s %10s\n", "benchmark.metric", "old", "new", "delta")
	for _, k := range keys {
		o, haveOld := oldM[k]
		n, haveNew := newM[k]
		switch {
		case haveOld && haveNew:
			fmt.Fprintf(w, "%-52s %14s %14s %10s\n", k, formatMetric(o), formatMetric(n), formatDelta(o, n))
		case haveOld:
			fmt.Fprintf(w, "%-52s %14s %14s %10s\n", k, formatMetric(o), "—", "gone")
		default:
			fmt.Fprintf(w, "%-52s %14s %14s %10s\n", k, "—", formatMetric(n), "added")
		}
	}
	return nil
}

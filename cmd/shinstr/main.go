// Command shinstr performs profile-guided yield instrumentation — the
// paper's §3.2 step (ii) — on the binary of a deterministically rebuilt
// workload scenario, and writes the rewritten image.
//
// Usage:
//
//	shinstr -workload hashjoin -profile hashjoin.profile.json \
//	        -policy costbenefit -o hashjoin.instrumented.img
//
// The report lists every instrumented load with its estimated miss rate,
// modelled gain and live-register mask, plus the scavenger-phase
// conditional yields.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/cli"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/profile"
)

func main() {
	fs := flag.NewFlagSet("shinstr", flag.ExitOnError)
	cli.InstallUsage(fs)
	var wf cli.WorkloadFlags
	wf.Register(fs)
	profPath := fs.String("profile", "", "input profile JSON (required)")
	out := fs.String("o", "", "output image path (default: <workload>.instrumented.img)")
	policyName := fs.String("policy", "costbenefit", "threshold | costbenefit | topk | always | never")
	theta := fs.Float64("theta", 0.5, "miss-rate bound for -policy threshold")
	topK := fs.Int("k", 8, "site count for -policy topk")
	coalesce := fs.Bool("coalesce", true, "coalesce yields across independent adjacent loads")
	liveMasks := fs.Bool("livemasks", true, "save only live registers at yields")
	interval := fs.Uint64("interval", 300, "scavenger inter-yield interval in cycles (0 disables the phase)")
	report := fs.String("report", "", "write the old-to-new mapping report JSON here (shcheck -map input)")
	origOut := fs.String("origout", "", "also write the uninstrumented scenario image here (shcheck -orig input)")
	verify := fs.Bool("verify", true, "statically verify the rewritten image before writing it")
	fs.Parse(os.Args[1:])

	if err := run(&wf, *profPath, *out, *policyName, *theta, *topK, *coalesce, *liveMasks, *interval, *report, *origOut, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "shinstr:", err)
		os.Exit(1)
	}
}

func run(wf *cli.WorkloadFlags, profPath, out, policyName string, theta float64, topK int,
	coalesce, liveMasks bool, interval uint64, report, origOut string, verify bool) error {
	if profPath == "" {
		return fmt.Errorf("-profile is required (produce one with shprof)")
	}
	h, _, err := wf.Harness()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(profPath)
	if err != nil {
		return err
	}
	var prof profile.Profile
	if err := json.Unmarshal(data, &prof); err != nil {
		return fmt.Errorf("parsing %s: %w", profPath, err)
	}
	if prof.ProgramLen != len(h.Sc.Prog.Instrs) {
		return fmt.Errorf("profile covers a %d-instruction binary but the scenario has %d — workload/instances/seed must match shprof",
			prof.ProgramLen, len(h.Sc.Prog.Instrs))
	}

	opts := instrument.DefaultPipelineOptions()
	opts.Primary.Machine = h.Mach.Mem
	opts.Primary.CPU = h.Mach.CPU
	opts.Primary.Switch = h.Mach.Switch
	opts.Primary.Coalesce = coalesce
	opts.Primary.LiveMasks = liveMasks
	switch policyName {
	case "threshold":
		opts.Primary.Policy = instrument.ThresholdPolicy{MinMissRate: theta}
	case "costbenefit":
		opts.Primary.Policy = instrument.CostBenefitPolicy{}
	case "topk":
		opts.Primary.Policy = instrument.NewTopKPolicy(topK, instrument.BuildSites(h.Sc.Prog, &prof, opts.Primary))
	case "always":
		opts.Primary.Policy = instrument.AlwaysPolicy{}
	case "never":
		opts.Primary.Policy = instrument.NeverPolicy{}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if interval == 0 {
		opts.Scavenger = nil
	} else {
		opts.Scavenger.TargetInterval = interval
		opts.Scavenger.Machine = h.Mach.Mem
		opts.Scavenger.CPU = h.Mach.CPU
		opts.Scavenger.LiveMasks = liveMasks
	}

	img, res, err := instrument.InstrumentImage(isa.Encode(h.Sc.Prog), &prof, opts)
	if err != nil {
		return err
	}

	// The rewritten entry points root shcheck's reachability analyses.
	var entries []int
	for _, p := range h.Sc.Parts {
		entries = append(entries, res.OldToNew[p.Entry])
	}

	if verify {
		rep, err := check.Image(isa.Encode(h.Sc.Prog), img, res.OldToNew, check.Options{Entries: entries})
		if err != nil {
			return err
		}
		if err := rep.Err(); err != nil {
			return fmt.Errorf("refusing to write unsound image: %w", err)
		}
	}

	if report != "" {
		f, err := os.Create(report)
		if err != nil {
			return err
		}
		m := check.MapFile{OldToNew: res.OldToNew, Entries: entries}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if origOut != "" {
		f, err := os.Create(origOut)
		if err != nil {
			return err
		}
		if err := isa.SaveImage(f, isa.Encode(h.Sc.Prog)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if out == "" {
		out = wf.Workload + ".instrumented.img"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := isa.SaveImage(f, img); err != nil {
		return err
	}

	fmt.Printf("instrumented %s binary: %d -> %d instructions (policy %s)\n",
		wf.Workload, len(h.Sc.Prog.Instrs), img.Len(), res.Primary.PolicyName)
	fmt.Printf("  primary phase: %d candidate loads, %d yields, %d prefetches\n",
		res.Primary.Candidates, res.Primary.Yields, res.Primary.Prefetches)
	for _, s := range res.Primary.Sites {
		fmt.Printf("    load pc=%-5d miss=%.2f gain=%+.1f mask=%v", s.OldPC, s.MissRate, s.Gain, s.Mask)
		if s.RunLen > 1 {
			fmt.Printf(" (coalesced x%d)", s.RunLen)
		}
		fmt.Println()
	}
	if res.Scavenger != nil {
		fmt.Printf("  scavenger phase: %d conditional yields (%d loop guarantees, %d spacing)\n",
			len(res.Scavenger.CondYieldPCs), res.Scavenger.LoopYields, res.Scavenger.SpacingYields)
	}
	if verify {
		fmt.Printf("  verified: %d instructions clean (shcheck)\n", img.Len())
	}
	if report != "" {
		fmt.Printf("  wrote mapping report %s\n", report)
	}
	if origOut != "" {
		fmt.Printf("  wrote original image %s\n", origOut)
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

// Command shprof runs a workload on the simulated machine under the
// PEBS/LBR sampler — the paper's §3.2 step (i), "running the original
// code in production and collecting statistics" — and writes the
// aggregated profile as JSON.
//
// Usage:
//
//	shprof -workload hashjoin -instances 8 -o hashjoin.profile.json
//
// The companion tools rebuild the identical scenario from the same
// (workload, instances, seed), so the profile's PCs stay valid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/pebs"
)

func main() {
	fs := flag.NewFlagSet("shprof", flag.ExitOnError)
	cli.InstallUsage(fs)
	var wf cli.WorkloadFlags
	wf.Register(fs)
	out := fs.String("o", "", "output profile path (default: <workload>.profile.json)")
	periodScale := fs.Uint64("period-scale", 1, "multiply all sampling periods (sparser sampling)")
	fs.Parse(os.Args[1:])

	if err := run(&wf, *out, *periodScale); err != nil {
		fmt.Fprintln(os.Stderr, "shprof:", err)
		os.Exit(1)
	}
}

func run(wf *cli.WorkloadFlags, out string, periodScale uint64) error {
	if periodScale == 0 {
		periodScale = 1
	}
	h, part, err := wf.Harness()
	if err != nil {
		return err
	}
	cfg := h.Mach.Sampling
	for e := 0; e < pebs.NumEvents; e++ {
		cfg.Periods[e] *= periodScale
	}
	prof, sampler, core, err := h.ProfileParts(cfg, part)
	if err != nil {
		return err
	}

	if out == "" {
		out = wf.Workload + ".profile.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(prof); err != nil {
		return err
	}

	fmt.Printf("profiled %s (%d instances, seed %d)\n", wf.Workload, wf.Instances, wf.Seed)
	fmt.Printf("  run:      %d instructions, %d cycles (%.0f µs simulated)\n",
		core.Counters.TotalRetired, core.Now, float64(core.Now)/3000)
	fmt.Printf("  stalls:   %.1f%% of cycles\n", core.Counters.StallFraction()*100)
	fmt.Printf("  samples:  %d (%d dropped), modelled overhead %.3f%%\n",
		len(sampler.Samples), sampler.Dropped,
		100*float64(sampler.OverheadCycles())/float64(core.Now))
	fmt.Printf("  sites:    %d sampled loads, %d LBR edges, %d block latencies\n",
		len(prof.Sites), len(prof.Edges), len(prof.Blocks))
	hot := prof.HotLoads()
	if len(hot) > 5 {
		hot = hot[:5]
	}
	fmt.Printf("  hottest loads by estimated stall: %v\n", hot)
	fmt.Printf("  wrote %s\n", out)
	return nil
}

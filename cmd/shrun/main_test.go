package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

func defaults() options {
	return options{
		wf:         cli.WorkloadFlags{Workload: "chase", Instances: 4, Seed: 20230626},
		tf:         cli.TopologyFlags{Cores: 1},
		mode:       "solo",
		n:          1,
		scavengers: 3,
		seeds:      1,
		parallel:   1,
	}
}

func TestRunSoloText(t *testing.T) {
	var out bytes.Buffer
	o := defaults()
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "validated against host reference: ok") {
		t.Errorf("missing validation line:\n%s", out.String())
	}
}

func TestRunMetricsTable(t *testing.T) {
	var out bytes.Buffer
	o := defaults()
	o.mode = "dual"
	o.metrics = true
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"observability", "l1_hits", "retired", "episodes"} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics table missing %q:\n%s", want, s)
		}
	}
}

// TestTraceOutProducesChromeTraceJSON is the end-to-end acceptance
// check: a -trace-out run must write JSON that validates against the
// Chrome trace-event schema's array-of-events form.
func TestTraceOutProducesChromeTraceJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace.json")
	var out bytes.Buffer
	o := defaults()
	o.mode = "symmetric"
	o.n = 4
	o.traceOut = path
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exported to "+path) {
		t.Errorf("missing export confirmation:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("-trace-out is not a JSON array of events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace export")
	}
	phases := map[string]int{}
	for i, ev := range events {
		if name, ok := ev["name"].(string); !ok || name == "" {
			t.Fatalf("event %d: missing name: %v", i, ev)
		}
		ph, ok := ev["ph"].(string)
		if !ok || (ph != "X" && ph != "i" && ph != "M") {
			t.Fatalf("event %d: bad phase %v", i, ev["ph"])
		}
		phases[ph]++
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d: missing pid: %v", i, ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event %d: missing tid: %v", i, ev)
		}
		if ph != "M" {
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("event %d: missing or negative ts: %v", i, ev)
			}
		}
	}
	// A symmetric run switches, so instants must be present, plus the
	// process/thread metadata rows.
	if phases["i"] == 0 || phases["M"] == 0 {
		t.Errorf("phase tally %v: want instants and metadata", phases)
	}
}

func TestSweepCachedAndIdentified(t *testing.T) {
	dir := t.TempDir()
	o := defaults()
	o.mode = "symmetric"
	o.n = 4
	o.seeds = 2
	o.cacheDir = dir
	var cold, warm bytes.Buffer
	if err := run(&cold, o); err != nil {
		t.Fatal(err)
	}
	if err := run(&warm, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "0 hit(s), 2 miss(es)") {
		t.Errorf("cold sweep not 2 misses:\n%s", cold.String())
	}
	if !strings.Contains(warm.String(), "2 hit(s), 0 miss(es)") {
		t.Errorf("warm sweep not served from cache:\n%s", warm.String())
	}
	// A different knob must be a different cache key: n changes the job.
	o.n = 3
	var other bytes.Buffer
	if err := run(&other, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(other.String(), "0 hit(s), 2 miss(es)") {
		t.Errorf("changed -n wrongly served from cache:\n%s", other.String())
	}
}

func TestSweepRejectsCachePlusObservation(t *testing.T) {
	o := defaults()
	o.seeds = 2
	o.cache = true
	o.metrics = true
	var out bytes.Buffer
	if err := run(&out, o); err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Errorf("cache+metrics sweep must be rejected, got %v", err)
	}
}

func TestSweepMetricsAndTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.trace.json")
	o := defaults()
	o.mode = "symmetric"
	o.n = 4
	o.seeds = 2
	o.metrics = true
	o.traceOut = path
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "observability") {
		t.Errorf("sweep -metrics missing registry table:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("sweep -trace-out invalid: %v", err)
	}
}

// stripCacheLine drops the trailing "cache: N hit(s), ..." summary,
// whose counts legitimately differ between a cold and a warm run.
func stripCacheLine(s string) string {
	var kept []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "cache: ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestServeRendersTables drives the open-loop harness end to end: the
// per-policy and cross-policy tables render, and a second run through
// the cache produces byte-identical tables served entirely from cache.
func TestServeRendersTables(t *testing.T) {
	o := defaults()
	o.wf.Workload = "bst"
	o.sf = cli.ServiceFlags{
		Serve:    true,
		Arrivals: "poisson",
		Rate:     "0.05,0.1",
		Requests: 20,
		Policy:   "sidecar,event-aware",
		Workers:  2,
		Queue:    16,
		Batch:    1,
		Burst:    8,
	}
	o.parallel = 4
	o.cacheDir = t.TempDir()

	var first bytes.Buffer
	if err := run(&first, o); err != nil {
		t.Fatal(err)
	}
	s := first.String()
	for _, want := range []string{"service: sidecar", "service: event-aware", "p99 sojourn", "rate_per_us", "cache: "} {
		if !strings.Contains(s, want) {
			t.Errorf("serve output missing %q:\n%s", want, s)
		}
	}

	var second bytes.Buffer
	o.parallel = 1
	if err := run(&second, o); err != nil {
		t.Fatal(err)
	}
	if stripCacheLine(second.String()) != stripCacheLine(s) {
		t.Errorf("cached serve rerun diverged:\nfirst:\n%s\nsecond:\n%s", s, second.String())
	}
	// 2 policies × 2 rates, all served from the first run's cache.
	if !strings.Contains(second.String(), "4 hit(s), 0 miss(es)") {
		t.Errorf("warm rerun did not serve from cache:\n%s", second.String())
	}
}

// Service flags without -serve fail upfront, and -serve rejects the
// closed-loop-only knobs.
func TestServeFlagChecks(t *testing.T) {
	o := defaults()
	o.sf.Rate = "0.5"
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("-rate without -serve accepted")
	}

	o = defaults()
	o.sf = cli.ServiceFlags{Serve: true, Arrivals: "poisson", Requests: 10,
		Policy: "agnostic", Workers: 2, Queue: 8, Batch: 1, Burst: 8}
	o.seeds = 3
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("-serve with -seeds accepted")
	}
	o.seeds = 1
	o.metrics = true
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("-serve with -metrics accepted")
	}
}

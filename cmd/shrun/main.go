// Command shrun executes a workload scenario — baseline or an
// instrumented image produced by shinstr — under one of the runtime
// disciplines and reports cycle-level statistics. Every coroutine's
// result is validated against the host-reference value, so a bad rewrite
// fails loudly instead of producing plausible numbers.
//
// Usage:
//
//	shrun -workload hashjoin -mode symmetric -n 8
//	shrun -workload hashjoin -image hashjoin.instrumented.img -mode dual -scavengers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("shrun", flag.ExitOnError)
	var wf cli.WorkloadFlags
	wf.Register(fs)
	imagePath := fs.String("image", "", "instrumented image from shinstr (default: uninstrumented baseline)")
	mode := fs.String("mode", "solo", "solo | symmetric | dual")
	n := fs.Int("n", 1, "coroutines to run (solo/symmetric)")
	scavengers := fs.Int("scavengers", 3, "scavenger coroutines (dual mode; instance 0 is the primary)")
	hwAssist := fs.Bool("hwassist", false, "enable the §4.1 cache-presence probe at primary yields")
	traceN := fs.Int("trace", 0, "retain and dump the last N scheduling events")
	fs.Parse(os.Args[1:])

	if err := run(&wf, *imagePath, *mode, *n, *scavengers, *hwAssist, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, "shrun:", err)
		os.Exit(1)
	}
}

func run(wf *cli.WorkloadFlags, imagePath, mode string, n, scavengers int, hwAssist bool, traceN int) error {
	h, part, err := wf.Harness()
	if err != nil {
		return err
	}
	img := h.Baseline()
	if imagePath != "" {
		f, err := os.Open(imagePath)
		if err != nil {
			return err
		}
		defer f.Close()
		fileImg, err := isa.LoadImage(f)
		if err != nil {
			return err
		}
		prog, err := isa.Decode(fileImg)
		if err != nil {
			return err
		}
		// Entry points travel in the symbol table ("<part>.main").
		entries := map[string]int{}
		for name, idx := range prog.Symbols {
			if strings.HasSuffix(name, ".main") {
				entries[strings.TrimSuffix(name, ".main")] = idx
			}
		}
		if _, ok := entries[part]; !ok {
			return fmt.Errorf("image has no entry symbol %s.main", part)
		}
		img = &core.Image{Prog: prog, Entries: entries}
	}

	cfg := exec.Config{HWAssist: hwAssist, HWAssistProbeCost: 2}
	var ring *trace.Ring
	if traceN > 0 {
		ring = trace.NewRing(traceN)
		cfg.Tracer = ring
	}
	ex := h.NewExecutor(img, cfg)

	var st exec.Stats
	switch mode {
	case "solo":
		ts, err := h.Tasks(img, part, coro.Primary, 1)
		if err != nil {
			return err
		}
		if st, err = ex.RunSolo(ts.Tasks[0]); err != nil {
			return err
		}
		if err := ts.Validate(); err != nil {
			return err
		}
	case "symmetric":
		ts, err := h.Tasks(img, part, coro.Primary, n)
		if err != nil {
			return err
		}
		if st, err = ex.RunSymmetric(ts.Tasks); err != nil {
			return err
		}
		if err := ts.Validate(); err != nil {
			return err
		}
	case "dual":
		if scavengers+1 > wf.Instances {
			return fmt.Errorf("dual mode needs %d instances (1 primary + %d scavengers); pass -instances", scavengers+1, scavengers)
		}
		ts, err := h.Tasks(img, part, coro.Primary, scavengers+1)
		if err != nil {
			return err
		}
		primary := ts.Tasks[0]
		scavs := ts.Tasks[1:]
		for _, s := range scavs {
			s.Mode = coro.Scavenger
		}
		if st, err = ex.RunDualMode(primary, scavs); err != nil {
			return err
		}
		if err := ts.Validate(); err != nil {
			return err
		}
		fmt.Printf("primary latency: %d cycles (%.0f ns), %d hide episodes, %d scavenger chains\n",
			st.PrimaryLatency, core.NS(float64(st.PrimaryLatency)), st.Episodes, st.ChainSwitches)
		if hwAssist {
			fmt.Printf("presence probe skipped %d yields\n", st.HWSkips)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	fmt.Printf("%s/%s: %d cycles (%.0f ns simulated)\n", wf.Workload, mode, st.Cycles, core.NS(float64(st.Cycles)))
	fmt.Printf("  efficiency: %.1f%% busy, %.1f%% stalled, %d switches (%d cycles)\n",
		st.Efficiency()*100, st.StallFraction()*100, st.Switches, st.Switch)
	fmt.Printf("  retired:    %d instructions, IPC %.2f\n", st.Retired, st.IPC())
	fmt.Printf("  results validated against host reference: ok\n")
	if ring != nil {
		fmt.Printf("\ntrace: %s\n", ring.Summary())
		if err := ring.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

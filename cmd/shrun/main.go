// Command shrun executes a workload scenario — baseline or an
// instrumented image produced by shinstr — under one of the runtime
// disciplines and reports cycle-level statistics. Every coroutine's
// result is validated against the host-reference value, so a bad rewrite
// fails loudly instead of producing plausible numbers.
//
// With -seeds N the run fans out across N scenario seeds on the
// parallel runner and reports per-seed cycles plus metric stability.
//
// Usage:
//
//	shrun -workload hashjoin -mode symmetric -n 8
//	shrun -workload hashjoin -image hashjoin.instrumented.img -mode dual -scavengers 4
//	shrun -workload bst -mode symmetric -n 8 -seeds 5 -parallel 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("shrun", flag.ExitOnError)
	var wf cli.WorkloadFlags
	wf.Register(fs)
	imagePath := fs.String("image", "", "instrumented image from shinstr (default: uninstrumented baseline)")
	mode := fs.String("mode", "solo", "solo | symmetric | dual")
	n := fs.Int("n", 1, "coroutines to run (solo/symmetric)")
	scavengers := fs.Int("scavengers", 3, "scavenger coroutines (dual mode; instance 0 is the primary)")
	hwAssist := fs.Bool("hwassist", false, "enable the §4.1 cache-presence probe at primary yields")
	traceN := fs.Int("trace", 0, "retain and dump the last N scheduling events")
	seeds := fs.Int("seeds", 1, "run the scenario under N seeds and summarize stability")
	parallel := fs.Int("parallel", 1, "worker goroutines for the seed sweep (0 = GOMAXPROCS)")
	fs.Parse(os.Args[1:])

	if err := run(&wf, *imagePath, *mode, *n, *scavengers, *hwAssist, *traceN, *seeds, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "shrun:", err)
		os.Exit(1)
	}
}

func run(wf *cli.WorkloadFlags, imagePath, mode string, n, scavengers int, hwAssist bool, traceN, seeds, parallel int) error {
	if seeds > 1 {
		if imagePath != "" {
			return fmt.Errorf("-seeds rebuilds the scenario per seed, which invalidates a fixed -image; drop one of them")
		}
		return runSweep(wf, mode, n, scavengers, hwAssist, traceN, seeds, parallel)
	}
	if mode == "dual" && scavengers+1 > wf.Instances {
		return fmt.Errorf("dual mode needs %d instances (1 primary + %d scavengers); pass -instances", scavengers+1, scavengers)
	}
	h, part, err := wf.Harness()
	if err != nil {
		return err
	}
	img := h.Baseline()
	if imagePath != "" {
		f, err := os.Open(imagePath)
		if err != nil {
			return err
		}
		defer f.Close()
		fileImg, err := isa.LoadImage(f)
		if err != nil {
			return err
		}
		prog, err := isa.Decode(fileImg)
		if err != nil {
			return err
		}
		// Entry points travel in the symbol table ("<part>.main").
		entries := map[string]int{}
		for name, idx := range prog.Symbols {
			if strings.HasSuffix(name, ".main") {
				entries[strings.TrimSuffix(name, ".main")] = idx
			}
		}
		if _, ok := entries[part]; !ok {
			return fmt.Errorf("image has no entry symbol %s.main", part)
		}
		img = &core.Image{Prog: prog, Entries: entries}
	}

	var ring *trace.Ring
	if traceN > 0 {
		ring = trace.NewRing(traceN)
	}
	st, err := execute(h, img, part, mode, n, scavengers, hwAssist, ring)
	if err != nil {
		return err
	}
	if mode == "dual" {
		fmt.Printf("primary latency: %d cycles (%.0f ns), %d hide episodes, %d scavenger chains\n",
			st.PrimaryLatency, core.NS(float64(st.PrimaryLatency)), st.Episodes, st.ChainSwitches)
		if hwAssist {
			fmt.Printf("presence probe skipped %d yields\n", st.HWSkips)
		}
	}

	fmt.Printf("%s/%s: %d cycles (%.0f ns simulated)\n", wf.Workload, mode, st.Cycles, core.NS(float64(st.Cycles)))
	fmt.Printf("  efficiency: %.1f%% busy, %.1f%% stalled, %d switches (%d cycles)\n",
		st.Efficiency()*100, st.StallFraction()*100, st.Switches, st.Switch)
	fmt.Printf("  retired:    %d instructions, IPC %.2f\n", st.Retired, st.IPC())
	fmt.Printf("  results validated against host reference: ok\n")
	if ring != nil {
		fmt.Printf("\ntrace: %s\n", ring.Summary())
		if err := ring.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// execute runs one scenario under the selected discipline, tracing into
// ring when non-nil, and validates results against the host reference.
func execute(h *core.Harness, img *core.Image, part, mode string, n, scavengers int, hwAssist bool, ring *trace.Ring) (exec.Stats, error) {
	cfg := exec.Config{HWAssist: hwAssist, HWAssistProbeCost: 2}
	if ring != nil {
		cfg.Tracer = ring
	}
	ex := h.NewExecutor(img, cfg)

	var st exec.Stats
	switch mode {
	case "solo":
		ts, err := h.Tasks(img, part, coro.Primary, 1)
		if err != nil {
			return st, err
		}
		if st, err = ex.RunSolo(ts.Tasks[0]); err != nil {
			return st, err
		}
		return st, ts.Validate()
	case "symmetric":
		ts, err := h.Tasks(img, part, coro.Primary, n)
		if err != nil {
			return st, err
		}
		if st, err = ex.RunSymmetric(ts.Tasks); err != nil {
			return st, err
		}
		return st, ts.Validate()
	case "dual":
		ts, err := h.Tasks(img, part, coro.Primary, scavengers+1)
		if err != nil {
			return st, err
		}
		primary := ts.Tasks[0]
		scavs := ts.Tasks[1:]
		for _, s := range scavs {
			s.Mode = coro.Scavenger
		}
		if st, err = ex.RunDualMode(primary, scavs); err != nil {
			return st, err
		}
		return st, ts.Validate()
	default:
		return st, fmt.Errorf("unknown mode %q", mode)
	}
}

// runSweep fans the scenario across seeds on the runner and summarizes.
// With -trace the sweep is forced sequential and a single ring is
// reused across jobs via Reset, so tracing costs one allocation total.
func runSweep(wf *cli.WorkloadFlags, mode string, n, scavengers int, hwAssist bool, traceN, seeds, parallel int) error {
	if mode == "dual" && scavengers+1 > wf.Instances {
		return fmt.Errorf("dual mode needs %d instances (1 primary + %d scavengers); pass -instances", scavengers+1, scavengers)
	}
	var ring *trace.Ring
	if traceN > 0 {
		ring = trace.NewRing(traceN)
		parallel = 1
	}
	spec, err := cli.SpecByName(wf.Workload, wf.Instances)
	if err != nil {
		return err
	}
	part := spec.Name()

	var jobs []runner.Job
	for i := 0; i < seeds; i++ {
		mach := core.DefaultMachine()
		mach.Seed = wf.Seed + int64(i)*7919
		jobs = append(jobs, runner.Job{
			ID:   fmt.Sprintf("%s/%s/seed=%d", wf.Workload, mode, mach.Seed),
			Mach: mach,
			Run: func(m core.Machine) (*experiments.Result, error) {
				h, err := core.NewHarness(m, spec)
				if err != nil {
					return nil, err
				}
				if ring != nil {
					ring.Reset()
				}
				st, err := execute(h, h.Baseline(), part, mode, n, scavengers, hwAssist, ring)
				if err != nil {
					return nil, err
				}
				res := &experiments.Result{ID: "shrun", Metrics: map[string]float64{
					"cycles":     float64(st.Cycles),
					"efficiency": st.Efficiency(),
					"stall_frac": st.StallFraction(),
					"switches":   float64(st.Switches),
					"ipc":        st.IPC(),
				}}
				if mode == "dual" {
					res.Metrics["primary_latency"] = float64(st.PrimaryLatency)
					res.Metrics["episodes"] = float64(st.Episodes)
				}
				return res, nil
			},
		})
	}

	results, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	tb := stats.NewTable(fmt.Sprintf("%s/%s over %d seeds", wf.Workload, mode, seeds),
		"seed", "cycles", "efficiency", "IPC")
	samples := map[string][]float64{}
	for _, r := range results {
		m := r.Res.Metrics
		tb.Row(r.Job.Mach.Seed, uint64(m["cycles"]), m["efficiency"], m["ipc"])
		for k, v := range m {
			samples[k] = append(samples[k], v)
		}
	}
	fmt.Print(tb.String())
	cyc := stats.Summarize(samples["cycles"])
	eff := stats.Summarize(samples["efficiency"])
	fmt.Printf("cycles %0.f ± %.0f, efficiency %.3f ± %.3f (all results validated)\n",
		cyc.Mean, cyc.Stddev, eff.Mean, eff.Stddev)
	if ring != nil {
		fmt.Printf("trace (last seed): %s\n", ring.Summary())
	}
	return nil
}

// Command shrun executes a workload scenario — baseline or an
// instrumented image produced by shinstr — under one of the runtime
// disciplines and reports cycle-level statistics. Every coroutine's
// result is validated against the host-reference value, so a bad rewrite
// fails loudly instead of producing plausible numbers.
//
// With -seeds N the run fans out across N scenario seeds on the
// parallel runner and reports per-seed cycles plus metric stability;
// -cache serves repeated cells from the content-addressed cache.
// Observability follows the library's Observe surface: -metrics prints
// the cycle-domain counter registry, -trace-out writes the retained
// scheduling events as Chrome trace-event JSON for Perfetto.
//
// Usage:
//
//	shrun -workload hashjoin -mode symmetric -n 8
//	shrun -workload hashjoin -image hashjoin.instrumented.img -mode dual -scavengers 4
//	shrun -workload bst -mode dual -metrics -trace-out bst.trace.json
//	shrun -workload bst -mode symmetric -n 8 -seeds 5 -parallel 4 -cache
//
// With -serve the tool switches to the open-loop service harness:
// requests arrive on their own simulated clock (Poisson by default) and
// the policy × offered-load grid renders throughput and p50/p99/p999
// sojourn tables:
//
//	shrun -serve -workload bst -arrivals poisson -rate 0.05,0.1,0.2 \
//	    -requests 2000 -policy agnostic,event-aware -parallel 4 -cache
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// options collects everything run needs, so tests can drive it without
// a process-global flag set.
type options struct {
	wf         cli.WorkloadFlags
	tf         cli.TopologyFlags
	sf         cli.ServiceFlags
	imagePath  string
	mode       string
	n          int
	scavengers int
	hwAssist   bool
	traceN     int
	traceOut   string
	metrics    bool
	seeds      int
	parallel   int
	cache      bool
	cacheDir   string
}

func main() {
	fs := flag.NewFlagSet("shrun", flag.ExitOnError)
	cli.InstallUsage(fs)
	var o options
	o.wf.Register(fs)
	o.tf.Register(fs)
	o.sf.Register(fs)
	fs.StringVar(&o.imagePath, "image", "", "instrumented image from shinstr (default: uninstrumented baseline)")
	fs.StringVar(&o.mode, "mode", "solo", "solo | symmetric | dual")
	fs.IntVar(&o.n, "n", 1, "coroutines to run (solo/symmetric)")
	fs.IntVar(&o.scavengers, "scavengers", 3, "scavenger coroutines (dual mode; instance 0 is the primary)")
	fs.BoolVar(&o.hwAssist, "hwassist", false, "enable the §4.1 cache-presence probe at primary yields")
	fs.IntVar(&o.traceN, "trace", 0, "retain and dump the last N scheduling events")
	fs.StringVar(&o.traceOut, "trace-out", "", "write retained trace events as Chrome trace-event JSON to this file")
	fs.BoolVar(&o.metrics, "metrics", false, "print the cycle-domain observability counters after the run")
	fs.IntVar(&o.seeds, "seeds", 1, "run the scenario under N seeds and summarize stability")
	fs.IntVar(&o.parallel, "parallel", 1, "worker goroutines for the seed sweep (0 = GOMAXPROCS)")
	fs.BoolVar(&o.cache, "cache", false, "serve and store sweep results in the content-addressed cache")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "cache directory (implies -cache; default ~/.cache/softhide)")
	fs.Parse(os.Args[1:])

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "shrun:", err)
		os.Exit(1)
	}
}

// observe bundles the run's observability state: the ring backing both
// -trace and -trace-out, and the registry backing -metrics.
type observe struct {
	ring *trace.Ring
	reg  *metrics.Registry
}

func newObserve(o options) observe {
	var ob observe
	if n := o.traceN; n > 0 || o.traceOut != "" {
		if n == 0 {
			n = 1 << 16 // -trace-out alone: retain a generous window
		}
		ob.ring = trace.NewRing(n)
	}
	if o.metrics {
		ob.reg = &metrics.Registry{}
	}
	return ob
}

// finish renders the observability tail of a run: metrics table, trace
// dump/summary, and the Chrome trace export.
func (ob observe) finish(w io.Writer, o options, dumpEvents bool) error {
	if ob.reg != nil {
		fmt.Fprint(w, ob.reg.Snapshot().Table().String())
	}
	if ob.ring == nil {
		return nil
	}
	if dumpEvents && o.traceN > 0 {
		fmt.Fprintf(w, "\ntrace: %s\n", ob.ring.Summary())
		if err := ob.ring.Dump(w); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, ob.ring.Events(), trace.ChromeTraceOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %d event(s) exported to %s (load in Perfetto / chrome://tracing)\n",
			ob.ring.Total(), o.traceOut)
	}
	return nil
}

func run(w io.Writer, o options) error {
	if err := o.tf.Check(); err != nil {
		return err
	}
	if err := o.sf.Check(); err != nil {
		return err
	}
	if o.sf.Serve {
		return runServe(w, o)
	}
	if o.tf.Cores > 1 {
		// Upfront validation: many-core runs rebuild per-core baseline
		// scenarios and keep observability per core.
		if o.imagePath != "" {
			return fmt.Errorf("-image is a single-scenario binary; many-core runs rebuild per-core baselines, drop -cores or -image")
		}
		if o.mode == "dual" {
			return fmt.Errorf("dual mode is a single-core discipline; use -mode solo or symmetric with -cores")
		}
	}
	if o.seeds > 1 {
		if o.imagePath != "" {
			return fmt.Errorf("-seeds rebuilds the scenario per seed, which invalidates a fixed -image; drop one of them")
		}
		return runSweep(w, o)
	}
	if o.tf.Cores > 1 {
		return runMachine(w, o)
	}
	if o.mode == "dual" && o.scavengers+1 > o.wf.Instances {
		return fmt.Errorf("dual mode needs %d instances (1 primary + %d scavengers); pass -instances", o.scavengers+1, o.scavengers)
	}
	h, part, err := o.wf.Harness()
	if err != nil {
		return err
	}
	img := h.Baseline()
	if o.imagePath != "" {
		f, err := os.Open(o.imagePath)
		if err != nil {
			return err
		}
		defer f.Close()
		fileImg, err := isa.LoadImage(f)
		if err != nil {
			return err
		}
		prog, err := isa.Decode(fileImg)
		if err != nil {
			return err
		}
		// Entry points travel in the symbol table ("<part>.main").
		entries := map[string]int{}
		for name, idx := range prog.Symbols {
			if strings.HasSuffix(name, ".main") {
				entries[strings.TrimSuffix(name, ".main")] = idx
			}
		}
		if _, ok := entries[part]; !ok {
			return fmt.Errorf("image has no entry symbol %s.main", part)
		}
		img = &core.Image{Prog: prog, Entries: entries}
	}

	ob := newObserve(o)
	st, err := execute(h, img, part, o, ob)
	if err != nil {
		return err
	}
	if o.mode == "dual" {
		fmt.Fprintf(w, "primary latency: %d cycles (%.0f ns), %d hide episodes, %d scavenger chains\n",
			st.PrimaryLatency, core.NS(float64(st.PrimaryLatency)), st.Episodes, st.ChainSwitches)
		if o.hwAssist {
			fmt.Fprintf(w, "presence probe skipped %d yields\n", st.HWSkips)
		}
	}

	fmt.Fprintf(w, "%s/%s: %d cycles (%.0f ns simulated)\n", o.wf.Workload, o.mode, st.Cycles, core.NS(float64(st.Cycles)))
	fmt.Fprintf(w, "  efficiency: %.1f%% busy, %.1f%% stalled, %d switches (%d cycles)\n",
		st.Efficiency()*100, st.StallFraction()*100, st.Switches, st.Switch)
	fmt.Fprintf(w, "  retired:    %d instructions, IPC %.2f\n", st.Retired, st.IPC())
	fmt.Fprintf(w, "  results validated against host reference: ok\n")
	return ob.finish(w, o, true)
}

// runServe drives the open-loop service harness: requests built from
// -workload (one instance = one request, -workers in flight) arrive on
// their own clock and are served under every -policy at every -rate,
// through the canonical Session.Serve sweep — cells fan out on the
// runner's worker pool and are served from the content-addressed cache
// when -cache is set. With -cores N each cell load-balances its one
// arrival stream across N per-core policy engines contending for the
// shared LLC under the cycle-quantum kernel.
func runServe(w io.Writer, o options) error {
	if o.imagePath != "" {
		return fmt.Errorf("-serve rebuilds the request scenario per cell; drop -image")
	}
	if o.seeds > 1 {
		return fmt.Errorf("-serve sweeps offered load, not seeds; drop -seeds")
	}
	if o.metrics || o.traceN > 0 || o.traceOut != "" {
		return fmt.Errorf("service cells keep private per-cell registries; -metrics/-trace do not combine with -serve")
	}
	request, err := cli.SpecByName(o.wf.Workload, o.sf.Workers)
	if err != nil {
		return err
	}
	cfg, err := o.sf.ServiceConfig(request)
	if err != nil {
		return err
	}
	topo, err := o.tf.Topology(core.DefaultMachine())
	if err != nil {
		return err
	}
	opts := []repro.Option{repro.WithTopology(topo), repro.WithSeed(o.wf.Seed), repro.WithParallelism(o.parallel)}
	if o.cache || o.cacheDir != "" {
		opts = append(opts, repro.WithCache(o.cacheDir))
	}
	s, err := repro.NewSession(opts...)
	if err != nil {
		return err
	}
	rep, err := s.Serve(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.String())
	if dir := s.CacheDir(); dir != "" {
		hits, misses := s.CacheStats()
		fmt.Fprintf(w, "cache: %d hit(s), %d miss(es) under %s\n", hits, misses, dir)
	}
	return nil
}

// machineMode maps shrun's -mode vocabulary onto the kernel's per-core
// disciplines.
func machineMode(mode string) (machine.Mode, error) {
	switch mode {
	case "solo":
		return machine.ModeSolo, nil
	case "symmetric":
		return machine.ModeSymmetric, nil
	default:
		return 0, fmt.Errorf("unknown mode %q for a many-core run (want solo or symmetric)", mode)
	}
}

// runMachine simulates the whole -cores topology under the
// deterministic cycle-quantum kernel and reports per-core plus
// machine-level statistics.
func runMachine(w io.Writer, o options) error {
	spec, err := cli.SpecByName(o.wf.Workload, o.wf.Instances)
	if err != nil {
		return err
	}
	md, err := machineMode(o.mode)
	if err != nil {
		return err
	}
	mach := core.DefaultMachine()
	mach.Seed = o.wf.Seed
	topo, err := o.tf.Topology(mach)
	if err != nil {
		return err
	}
	traceN := o.traceN
	if traceN == 0 && o.traceOut != "" {
		traceN = 1 << 16
	}
	rc := machine.RunConfig{
		Spec:    spec,
		Mode:    md,
		Tasks:   o.n,
		Exec:    exec.Config{HWAssist: o.hwAssist, HWAssistProbeCost: 2},
		Metrics: o.metrics,
		TraceN:  traceN,
	}
	m, err := machine.New(topo, rc)
	if err != nil {
		return err
	}
	st, err := m.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s/%s on %d cores: %d cycles (%.0f ns simulated), %d quanta of %d\n",
		o.wf.Workload, o.mode, topo.Cores, st.Cycles, core.NS(float64(st.Cycles)), st.Quanta, topo.Quantum)
	for _, cs := range st.Cores {
		fmt.Fprintf(w, "  core %d (seed %d): %d cycles, %.1f%% busy, %d retired, IPC %.2f\n",
			cs.Core, cs.Seed, cs.Exec.Cycles, cs.Exec.Efficiency()*100, cs.Exec.Retired, cs.Exec.IPC())
	}
	fmt.Fprintf(w, "  aggregate: %d retired, %.3f retired/cycle machine-wide\n",
		st.Aggregate.Retired, float64(st.Aggregate.Retired)/float64(st.Cycles))
	fmt.Fprintf(w, "  shared llc: %d hits, %d misses, %d queued (+%d cycles), peak bank load %d/quantum\n",
		st.LLC.Hits, st.LLC.Misses, st.LLC.Queued, st.LLC.QueueCycles, st.LLC.PeakBankLoad)
	fmt.Fprintf(w, "  results validated against host reference: ok\n")

	if o.metrics {
		reg := &metrics.Registry{}
		st.FillMetrics(reg)
		if m := reg; m != nil {
			fmt.Fprint(w, m.Snapshot().Table().String())
		}
	}
	if ring := m.TraceRing(0); ring != nil {
		if o.traceN > 0 {
			fmt.Fprintf(w, "\ntrace (core 0): %s\n", ring.Summary())
			if err := ring.Dump(w); err != nil {
				return err
			}
		}
		if o.traceOut != "" {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return err
			}
			if err := trace.WriteChromeTrace(f, ring.Events(), trace.ChromeTraceOptions{}); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "trace: core 0's %d event(s) exported to %s (load in Perfetto / chrome://tracing)\n",
				ring.Total(), o.traceOut)
		}
	}
	return nil
}

// execute runs one scenario under the selected discipline, observing
// into ob, and validates results against the host reference.
func execute(h *core.Harness, img *core.Image, part string, o options, ob observe) (exec.Stats, error) {
	cfg := exec.Config{HWAssist: o.hwAssist, HWAssistProbeCost: 2}
	if ob.ring != nil {
		cfg.Tracer = ob.ring
	}
	cfg.Metrics = ob.reg
	ex := h.NewExecutor(img, cfg)
	defer ex.CaptureMetrics()

	var st exec.Stats
	switch o.mode {
	case "solo":
		ts, err := h.Tasks(img, part, coro.Primary, 1)
		if err != nil {
			return st, err
		}
		if st, err = ex.RunSolo(ts.Tasks[0]); err != nil {
			return st, err
		}
		return st, ts.Validate()
	case "symmetric":
		ts, err := h.Tasks(img, part, coro.Primary, o.n)
		if err != nil {
			return st, err
		}
		if st, err = ex.RunSymmetric(ts.Tasks); err != nil {
			return st, err
		}
		return st, ts.Validate()
	case "dual":
		ts, err := h.Tasks(img, part, coro.Primary, o.scavengers+1)
		if err != nil {
			return st, err
		}
		primary := ts.Tasks[0]
		scavs := ts.Tasks[1:]
		for _, s := range scavs {
			s.Mode = coro.Scavenger
		}
		if st, err = ex.RunDualMode(primary, scavs); err != nil {
			return st, err
		}
		return st, ts.Validate()
	default:
		return st, fmt.Errorf("unknown mode %q", o.mode)
	}
}

// runSweep fans the scenario across seeds on the runner and summarizes.
// With tracing or metrics on, the sweep is forced sequential and one
// ring/registry pair is reused across jobs via Reset, so observation
// costs a constant number of allocations total; observed jobs also skip
// the result cache (a cached cell simulates nothing, so it would leave
// the counters empty).
func runSweep(w io.Writer, o options) error {
	if o.mode == "dual" && o.scavengers+1 > o.wf.Instances {
		return fmt.Errorf("dual mode needs %d instances (1 primary + %d scavengers); pass -instances", o.scavengers+1, o.scavengers)
	}
	ob := newObserve(o)
	observed := ob.ring != nil || ob.reg != nil
	if observed {
		o.parallel = 1
	}
	if o.tf.Cores > 1 && observed {
		return fmt.Errorf("many-core observability is per core and not summarized across a sweep; drop -seeds or -metrics/-trace")
	}
	spec, err := cli.SpecByName(o.wf.Workload, o.wf.Instances)
	if err != nil {
		return err
	}
	part := spec.Name()

	var cache *runner.Cache
	if o.cache || o.cacheDir != "" {
		if observed {
			return fmt.Errorf("-cache serves results without simulating, which leaves -metrics/-trace empty; drop one of them")
		}
		dir := o.cacheDir
		if dir == "" {
			if dir, err = runner.DefaultDir(); err != nil {
				return err
			}
		}
		if cache, err = runner.OpenCache(dir); err != nil {
			return err
		}
	}

	if o.tf.Cores > 1 {
		return runMachineSweep(w, o, spec, cache)
	}

	var jobs []runner.Job
	for i := 0; i < o.seeds; i++ {
		mach := core.DefaultMachine()
		mach.Seed = o.wf.Seed + int64(i)*7919
		jobs = append(jobs, runner.Job{
			// The ID carries every knob the closure reads, so equal IDs
			// really are the same computation and the cell is cacheable.
			ID: fmt.Sprintf("shrun/%s/%s/n=%d/scav=%d/hw=%t/inst=%d",
				o.wf.Workload, o.mode, o.n, o.scavengers, o.hwAssist, o.wf.Instances),
			Mach:      mach,
			Cacheable: !observed,
			Run: func(m core.Machine) (*experiments.Result, error) {
				h, err := core.NewHarness(m, spec)
				if err != nil {
					return nil, err
				}
				if ob.ring != nil {
					ob.ring.Reset()
				}
				if ob.reg != nil {
					ob.reg.Reset()
				}
				st, err := execute(h, h.Baseline(), part, o, ob)
				if err != nil {
					return nil, err
				}
				res := &experiments.Result{ID: "shrun", Metrics: map[string]float64{
					"cycles":     float64(st.Cycles),
					"efficiency": st.Efficiency(),
					"stall_frac": st.StallFraction(),
					"switches":   float64(st.Switches),
					"ipc":        st.IPC(),
				}}
				if o.mode == "dual" {
					res.Metrics["primary_latency"] = float64(st.PrimaryLatency)
					res.Metrics["episodes"] = float64(st.Episodes)
				}
				return res, nil
			},
		})
	}

	results, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: o.parallel, Cache: cache})
	if err != nil {
		return err
	}
	tb := stats.NewTable(fmt.Sprintf("%s/%s over %d seeds", o.wf.Workload, o.mode, o.seeds),
		"seed", "cycles", "efficiency", "IPC")
	samples := map[string][]float64{}
	for _, r := range results {
		m := r.Res.Metrics
		tb.Row(r.Job.Mach.Seed, uint64(m["cycles"]), m["efficiency"], m["ipc"])
		for k, v := range m {
			samples[k] = append(samples[k], v)
		}
	}
	fmt.Fprint(w, tb.String())
	cyc := stats.Summarize(samples["cycles"])
	eff := stats.Summarize(samples["efficiency"])
	fmt.Fprintf(w, "cycles %0.f ± %.0f, efficiency %.3f ± %.3f (all results validated)\n",
		cyc.Mean, cyc.Stddev, eff.Mean, eff.Stddev)
	if cache != nil {
		fmt.Fprintf(w, "cache: %d hit(s), %d miss(es) under %s\n", cache.Hits(), cache.Misses(), cache.Dir())
	}
	if ob.ring != nil && o.traceN > 0 {
		fmt.Fprintf(w, "trace (last seed): %s\n", ob.ring.Summary())
	}
	// The ring/registry hold the last seed's events and counters.
	return ob.finish(w, o, false)
}

// runMachineSweep fans a many-core run across seeds. Jobs carry the
// full topology, so the cache never confuses a many-core cell with a
// single-core one (or two topologies with each other).
func runMachineSweep(w io.Writer, o options, spec workloads.Spec, cache *runner.Cache) error {
	md, err := machineMode(o.mode)
	if err != nil {
		return err
	}
	baseTopo, err := o.tf.Topology(core.DefaultMachine())
	if err != nil {
		return err
	}
	rc := machine.RunConfig{Spec: spec, Mode: md, Tasks: o.n,
		Exec: exec.Config{HWAssist: o.hwAssist, HWAssistProbeCost: 2}}

	var jobs []runner.Job
	for i := 0; i < o.seeds; i++ {
		topo := baseTopo // fresh copy per iteration; &topo below must not alias
		topo.Machine.Seed = o.wf.Seed + int64(i)*7919
		jobs = append(jobs, runner.Job{
			ID: fmt.Sprintf("shrun/%s/%s/cores=%d/n=%d/hw=%t/inst=%d",
				o.wf.Workload, o.mode, o.tf.Cores, o.n, o.hwAssist, o.wf.Instances),
			Mach:      topo.Machine,
			Topo:      &topo,
			Cacheable: true,
			Run: func(m core.Machine) (*experiments.Result, error) {
				t := topo
				t.Machine = m
				mm, err := machine.New(t, rc)
				if err != nil {
					return nil, err
				}
				st, err := mm.Run()
				if err != nil {
					return nil, err
				}
				return &experiments.Result{ID: "shrun", Metrics: map[string]float64{
					"cycles":     float64(st.Cycles),
					"efficiency": float64(st.Aggregate.Busy) / float64(uint64(o.tf.Cores)*st.Cycles),
					"ipc":        float64(st.Aggregate.Retired) / float64(st.Cycles),
					"llc_misses": float64(st.LLC.Misses),
					"llc_queued": float64(st.LLC.Queued),
				}}, nil
			},
		})
	}

	results, err := runner.Run(context.Background(), jobs, runner.Options{Parallelism: o.parallel, Cache: cache})
	if err != nil {
		return err
	}
	tb := stats.NewTable(fmt.Sprintf("%s/%s on %d cores over %d seeds", o.wf.Workload, o.mode, o.tf.Cores, o.seeds),
		"seed", "cycles", "efficiency", "machine IPC", "llc misses")
	samples := map[string][]float64{}
	for _, r := range results {
		m := r.Res.Metrics
		tb.Row(r.Job.Mach.Seed, uint64(m["cycles"]), m["efficiency"], m["ipc"], uint64(m["llc_misses"]))
		for k, v := range m {
			samples[k] = append(samples[k], v)
		}
	}
	fmt.Fprint(w, tb.String())
	cyc := stats.Summarize(samples["cycles"])
	ipc := stats.Summarize(samples["ipc"])
	fmt.Fprintf(w, "cycles %0.f ± %.0f, machine IPC %.3f ± %.3f (all results validated)\n",
		cyc.Mean, cyc.Stddev, ipc.Mean, ipc.Stddev)
	if cache != nil {
		fmt.Fprintf(w, "cache: %d hit(s), %d miss(es) under %s\n", cache.Hits(), cache.Misses(), cache.Dir())
	}
	return nil
}

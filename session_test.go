package repro

import (
	"context"
	"strings"
	"testing"
)

func TestSessionDefaults(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().Seed != DefaultMachine().Seed {
		t.Error("default session machine differs from DefaultMachine")
	}
	if s.CacheDir() != "" {
		t.Error("cache enabled without WithCache")
	}
	if len(s.ExperimentIDs()) < 20 {
		t.Errorf("experiment registry short: %v", s.ExperimentIDs())
	}
}

func TestSessionOptions(t *testing.T) {
	m := DefaultMachine()
	m.MemBytes = 128 << 20
	s, err := NewSession(WithMachine(m), WithSeed(99), WithParallelism(4), WithCache(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().Seed != 99 {
		t.Errorf("seed = %d, want 99 (WithSeed applies after WithMachine)", s.Machine().Seed)
	}
	if s.Machine().MemBytes != 128<<20 {
		t.Error("WithMachine lost")
	}
	if s.CacheDir() == "" {
		t.Error("WithCache ignored")
	}
}

func TestSessionRunAllDeterministicAndCached(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	seq, err := NewSession(WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.RunAll(ctx, "E1", "E13")
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSession(WithCache(dir), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.RunAll(ctx, "E1", "E13")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("result counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String()+a[i].MetricsString() != b[i].String()+b[i].MetricsString() {
			t.Errorf("result %d diverged between sequential and parallel sessions", i)
		}
	}
	// The second session ran entirely from the first session's cache.
	reports, err := par.Sweep(ctx, []string{"E1", "E13"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.CacheHit {
			t.Errorf("%s not served from warm cache", r.Job.ID)
		}
	}
}

func TestSessionRunUnknownID(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background(), "Z9")
	if err == nil || !strings.Contains(err.Error(), "valid IDs") {
		t.Errorf("unknown ID error unhelpful: %v", err)
	}
}

func TestSessionPipelineAndTracer(t *testing.T) {
	ring := NewTraceRing(1 << 12)
	s, err := NewSession(WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	h, img, err := s.Pipeline("chase", DefaultPipelineOptions(),
		PointerChase{Nodes: 2048, Hops: 500, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	if img.Pipe == nil || img.Pipe.Primary.Yields == 0 {
		t.Fatal("pipeline did not instrument")
	}
	ts, err := h.Tasks(img, "chase", Primary, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewExecutor(h, img, ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Error("empty stats")
	}
	if ring.Total() == 0 {
		t.Error("session tracer saw no events")
	}
}

package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestSessionDefaults(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().Seed != DefaultTopology(1).Machine.Seed {
		t.Error("default session machine differs from the reference topology's")
	}
	if s.CacheDir() != "" {
		t.Error("cache enabled without WithCache")
	}
	if len(s.ExperimentIDs()) < 20 {
		t.Errorf("experiment registry short: %v", s.ExperimentIDs())
	}
}

func TestSessionOptions(t *testing.T) {
	m := DefaultTopology(1).Machine
	m.MemBytes = 128 << 20
	s, err := NewSession(WithMachine(m), WithSeed(99), WithParallelism(4), WithCache(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine().Seed != 99 {
		t.Errorf("seed = %d, want 99 (WithSeed applies after WithMachine)", s.Machine().Seed)
	}
	if s.Machine().MemBytes != 128<<20 {
		t.Error("WithMachine lost")
	}
	if s.CacheDir() == "" {
		t.Error("WithCache ignored")
	}
}

func TestSessionRunAllDeterministicAndCached(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	seq, err := NewSession(WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.RunAll(ctx, "E1", "E13")
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSession(WithCache(dir), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.RunAll(ctx, "E1", "E13")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("result counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String()+a[i].MetricsString() != b[i].String()+b[i].MetricsString() {
			t.Errorf("result %d diverged between sequential and parallel sessions", i)
		}
	}
	// The second session ran entirely from the first session's cache.
	reports, err := par.Sweep(ctx, []string{"E1", "E13"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.CacheHit {
			t.Errorf("%s not served from warm cache", r.Job.ID)
		}
	}
}

func TestSessionRunUnknownID(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background(), "Z9")
	if err == nil || !strings.Contains(err.Error(), "valid IDs") {
		t.Errorf("unknown ID error unhelpful: %v", err)
	}
}

func TestSessionPipelineAndTracer(t *testing.T) {
	ring := NewTraceRing(1 << 12)
	s, err := NewSession(WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	h, img, err := s.Pipeline("chase", DefaultPipelineOptions(),
		PointerChase{Nodes: 2048, Hops: 500, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	if img.Pipe == nil || img.Pipe.Primary.Yields == 0 {
		t.Fatal("pipeline did not instrument")
	}
	ts, err := h.Tasks(img, "chase", Primary, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewExecutor(h, img, ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Error("empty stats")
	}
	if ring.Total() == 0 {
		t.Error("session tracer saw no events")
	}
}

func TestSessionObservability(t *testing.T) {
	ring := NewTraceRing(1 << 12)
	reg := &MetricsRegistry{}
	s, err := NewSession(WithObservability(ObservabilityConfig{Tracer: ring, Metrics: reg}))
	if err != nil {
		t.Fatal(err)
	}
	h, img, err := s.Pipeline("chase", DefaultPipelineOptions(),
		PointerChase{Nodes: 2048, Hops: 500, Instances: 2},
		Compute{Iters: 20000, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline harvests the profiling run's sampler overhead.
	if reg.Sampler.Samples == 0 {
		t.Error("Pipeline did not fill sampler metrics")
	}
	primary, err := h.Tasks(img, "chase", Primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	scavs, err := h.Tasks(img, "compute", Scavenger, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := s.NewExecutor(h, img, ExecConfig{})
	if e.Cfg.Metrics != reg || e.Cfg.Tracer != Tracer(ring) {
		t.Fatal("NewExecutor did not inject the session observability")
	}
	st, err := e.RunDualMode(primary.Tasks[0], scavs.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	e.CaptureMetrics()
	snap := s.MetricsSnapshot()
	if snap.Exec.Episodes != st.Episodes || snap.Exec.EpisodeDur.Count != st.Episodes {
		t.Errorf("episode histogram (%d dur / %d episodes) does not reconcile with stats (%d)",
			snap.Exec.EpisodeDur.Count, snap.Exec.Episodes, st.Episodes)
	}
	if snap.CPU.Retired == 0 || snap.Mem.L1Hits == 0 {
		t.Error("CaptureMetrics harvested nothing")
	}
	// The snapshot renders as a mergeable stats table and a flat metric
	// map whose episode entries carry the same totals.
	if !strings.Contains(snap.Table().String(), "episodes") {
		t.Error("observability table missing episode rows")
	}
	flat := map[string]float64{}
	snap.Metrics(flat)
	if flat["obs.exec.episodes"] != float64(st.Episodes) {
		t.Errorf("flat obs.exec.episodes = %v, want %d", flat["obs.exec.episodes"], st.Episodes)
	}
}

func TestSessionExportTrace(t *testing.T) {
	ring := NewTraceRing(256)
	var sink bytes.Buffer
	s, err := NewSession(WithObservability(ObservabilityConfig{Tracer: ring, TraceSink: &sink}))
	if err != nil {
		t.Fatal(err)
	}
	h, img, err := s.Pipeline("chase", DefaultPipelineOptions(),
		PointerChase{Nodes: 2048, Hops: 300, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := h.Tasks(img, "chase", Primary, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewExecutor(h, img, ExecConfig{}).RunSymmetric(ts.Tasks); err != nil {
		t.Fatal(err)
	}
	// nil writer falls back to the configured sink.
	if err := s.ExportTrace(nil, ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(sink.Bytes(), &events); err != nil {
		t.Fatalf("ExportTrace did not produce a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace export")
	}

	// No sink and no writer is an error; so is a non-ring tracer.
	s2, _ := NewSession(WithObservability(ObservabilityConfig{Tracer: ring}))
	if err := s2.ExportTrace(nil, ChromeTraceOptions{}); err == nil {
		t.Error("ExportTrace with nowhere to write must error")
	}
	s3, _ := NewSession()
	var buf bytes.Buffer
	if err := s3.ExportTrace(&buf, ChromeTraceOptions{}); err == nil {
		t.Error("ExportTrace without a ring tracer must error")
	}
}

func TestSessionVerification(t *testing.T) {
	s, err := NewSession(WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline under verification: the reference toolchain must pass.
	h, img, err := s.Pipeline("chase", DefaultPipelineOptions(),
		PointerChase{Nodes: 2048, Hops: 500, Instances: 2})
	if err != nil {
		t.Fatalf("verified pipeline failed: %v", err)
	}
	rep, err := s.VerifyImage(h, img)
	if err != nil {
		t.Fatalf("VerifyImage: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("report not clean:\n%s", rep)
	}
	if rep.Checked != len(img.Prog.Instrs) {
		t.Errorf("Checked=%d, want %d", rep.Checked, len(img.Prog.Instrs))
	}

	// A tampered image must fail with a *CheckError carrying diagnostics.
	bad := &Image{Prog: img.Prog.Clone(), Entries: img.Entries, Pipe: img.Pipe}
	for p, in := range bad.Prog.Instrs {
		if in.Op.IsYield() && in.LiveMask().Has(1) {
			bad.Prog.Instrs[p].Imm &^= int64(1) << 1
			break
		}
	}
	_, err = s.VerifyImage(h, bad)
	var cerr *CheckError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *CheckError, got %T (%v)", err, err)
	}
	if !cerr.Report.HasRule(CheckRule("liveness")) {
		t.Errorf("tampered mask not attributed to liveness:\n%s", cerr.Report)
	}

	// Images without a pipeline report are rejected, not mis-verified.
	if _, err := s.VerifyImage(h, h.Baseline()); err == nil {
		t.Error("baseline image (no pipeline report) must be rejected")
	}

	// Preflight is cached after the first call.
	if err := s.Preflight(); err != nil {
		t.Fatalf("preflight: %v", err)
	}
	if err := s.Preflight(); err != nil {
		t.Fatalf("cached preflight: %v", err)
	}
}

func TestSessionSweepGatesOnPreflight(t *testing.T) {
	s, err := NewSession(WithVerification())
	if err != nil {
		t.Fatal(err)
	}
	// Poison the preflight result: the sweep must refuse to dispatch.
	s.preflightOnce.Do(func() { s.preflightErr = errors.New("toolchain unsound") })
	if _, err := s.Sweep(context.Background(), []string{"F1"}, 1); err == nil {
		t.Fatal("sweep must gate on a failed preflight")
	}
	// Without verification the gate is off and no preflight runs.
	s2, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s2.verify {
		t.Error("verification must default off")
	}
}

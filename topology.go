package repro

import (
	"repro/internal/machine"
	"repro/internal/mem"
)

// This file is the many-core surface: the public API is cut around
// Topology (how many cores, what each looks like, what they share)
// rather than the single-core Machine it generalizes. A session built
// with WithTopology can still do everything a single-core session can —
// Topology{Cores: 1} is the exact reference machine — and additionally
// run whole-machine simulations through Session.RunMachine.

type (
	// Topology describes a many-core machine: core count, the per-core
	// Machine template (optionally overridden per core), the shared
	// banked LLC, and the cycle-quantum length. The zero value of every
	// field defaults sensibly; Topology{Cores: 1} is the single-core
	// reference machine.
	Topology = machine.Topology
	// LLCConfig sizes the shared banked L3 + DRAM model: bank count and
	// geometry, hit/miss latencies, per-quantum bank ports and MSHRs.
	LLCConfig = mem.LLCConfig
	// LLCStats is the shared LLC's counter block for one run.
	LLCStats = mem.LLCStats
	// MachineRun describes what every core of a machine executes: the
	// workload spec, the per-core execution discipline, and the per-core
	// observability (metrics registries, trace rings).
	MachineRun = machine.RunConfig
	// MachineMode selects the per-core execution discipline.
	MachineMode = machine.Mode
	// MachineStats aggregates a many-core run: per-core sections in
	// core-index order plus quantum, cycle, LLC and aggregate rollups.
	MachineStats = machine.Stats
	// MachineCoreStats is one core's section of a MachineStats.
	MachineCoreStats = machine.CoreStats
)

// Per-core execution disciplines for MachineRun.Mode.
const (
	// MachineSymmetric interleaves all workload instances on each core
	// under the symmetric coroutine discipline.
	MachineSymmetric = machine.ModeSymmetric
	// MachineSolo runs one instance per core with no software
	// scheduling — the baseline for scaling measurements.
	MachineSolo = machine.ModeSolo
	// MachineSMT multiplexes each core's instances as hardware threads.
	MachineSMT = machine.ModeSMT
)

// DefaultTopology returns cores reference machines sharing a default
// LLC scaled to the core count.
func DefaultTopology(cores int) Topology { return machine.DefaultTopology(cores) }

// WithTopology replaces the session's machine topology wholesale. It
// subsumes WithMachine: WithMachine(m) is WithTopology(Topology{Cores:
// 1, Machine: m}). WithSeed still applies afterwards, to the per-core
// template's seed.
func WithTopology(t Topology) Option {
	return func(c *sessionConfig) { c.topo = t }
}

// Topology returns the session's machine topology (by value; mutating
// the copy does not affect the session).
func (s *Session) Topology() Topology { return s.topo }

// RunMachine simulates the session's full topology running rc and
// returns per-core plus aggregate statistics. Every core executes rc's
// workload over its own seeded memory; multi-core topologies contend
// for the shared LLC under the deterministic cycle-quantum kernel, so
// results are byte-identical across runs and GOMAXPROCS settings. When
// the session has a metrics registry, the machine-level rollup is
// recorded in its Machine section.
func (s *Session) RunMachine(rc MachineRun) (MachineStats, error) {
	m, err := machine.New(s.topo, rc)
	if err != nil {
		return MachineStats{}, err
	}
	st, err := m.Run()
	if err != nil {
		return MachineStats{}, err
	}
	st.FillMetrics(s.obs.Metrics)
	return st, nil
}

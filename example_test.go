package repro_test

import (
	"fmt"

	"repro"
)

// Example_pipeline walks the paper's three steps on a pointer chase:
// profile in production, instrument the binary, interleave coroutines.
func Example_pipeline() {
	s, err := repro.NewSession()
	if err != nil {
		panic(err)
	}
	h, err := s.NewHarness(repro.PointerChase{Nodes: 2048, Hops: 500, Instances: 4})
	if err != nil {
		panic(err)
	}
	prof, _, err := h.Profile("chase") // §3.2 step (i)
	if err != nil {
		panic(err)
	}
	img, err := h.Instrument(prof, repro.DefaultPipelineOptions()) // step (ii)
	if err != nil {
		panic(err)
	}
	ts, err := h.Tasks(img, "chase", repro.Primary, 4)
	if err != nil {
		panic(err)
	}
	st, err := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(ts.Tasks) // step (iii)
	if err != nil {
		panic(err)
	}
	if err := ts.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("yields inserted:", img.Pipe.Primary.Yields)
	fmt.Println("stalls hidden:", st.Efficiency() > 0.15)
	// Output:
	// yields inserted: 1
	// stalls hidden: true
}

// Example_manycore simulates a whole 4-core machine: private L1/L2 per
// core, a shared banked LLC, and the deterministic cycle-quantum
// kernel. The run is byte-identical regardless of GOMAXPROCS.
func Example_manycore() {
	topo := repro.DefaultTopology(4)
	topo.Machine.MemBytes = 16 << 20 // small per-core memory for the example
	s, err := repro.NewSession(repro.WithTopology(topo))
	if err != nil {
		panic(err)
	}
	st, err := s.RunMachine(repro.MachineRun{
		Spec: repro.PointerChase{Nodes: 1024, Hops: 400, Instances: 2},
		Mode: repro.MachineSymmetric,
	})
	if err != nil {
		panic(err)
	}
	var retired uint64
	for _, c := range st.Cores {
		retired += c.Exec.Retired
	}
	fmt.Println("cores:", len(st.Cores))
	fmt.Println("every core retired work:", retired == st.Aggregate.Retired && retired > 0)
	fmt.Println("shared LLC saw traffic:", st.LLC.Hits+st.LLC.Misses > 0)
	// Output:
	// cores: 4
	// every core retired work: true
	// shared LLC saw traffic: true
}

// Example_assembler shows the binary toolchain: assemble, encode,
// decode, disassemble.
func Example_assembler() {
	prog, err := repro.Assemble(`
        movi r1, 41
        addi r1, r1, 1
        halt
    `)
	if err != nil {
		panic(err)
	}
	back, err := repro.Decode(repro.Encode(prog))
	if err != nil {
		panic(err)
	}
	fmt.Print(repro.Disassemble(back))
	// Output:
	//     movi r1, 41
	//     addi r1, r1, 1
	//     halt
}

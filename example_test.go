package repro_test

import (
	"fmt"

	"repro"
)

// Example_pipeline walks the paper's three steps on a pointer chase:
// profile in production, instrument the binary, interleave coroutines.
func Example_pipeline() {
	s, err := repro.NewSession()
	if err != nil {
		panic(err)
	}
	h, err := s.NewHarness(repro.PointerChase{Nodes: 2048, Hops: 500, Instances: 4})
	if err != nil {
		panic(err)
	}
	prof, _, err := h.Profile("chase") // §3.2 step (i)
	if err != nil {
		panic(err)
	}
	img, err := h.Instrument(prof, repro.DefaultPipelineOptions()) // step (ii)
	if err != nil {
		panic(err)
	}
	ts, err := h.Tasks(img, "chase", repro.Primary, 4)
	if err != nil {
		panic(err)
	}
	st, err := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(ts.Tasks) // step (iii)
	if err != nil {
		panic(err)
	}
	if err := ts.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("yields inserted:", img.Pipe.Primary.Yields)
	fmt.Println("stalls hidden:", st.Efficiency() > 0.15)
	// Output:
	// yields inserted: 1
	// stalls hidden: true
}

// Example_assembler shows the binary toolchain: assemble, encode,
// decode, disassemble.
func Example_assembler() {
	prog, err := repro.Assemble(`
        movi r1, 41
        addi r1, r1, 1
        halt
    `)
	if err != nil {
		panic(err)
	}
	back, err := repro.Decode(repro.Encode(prog))
	if err != nil {
		panic(err)
	}
	fmt.Print(repro.Disassemble(back))
	// Output:
	//     movi r1, 41
	//     addi r1, r1, 1
	//     halt
}

#!/usr/bin/env sh
# lint.sh — gating static-analysis entry point.
#
# Builds the repository's custom vet tool (shlint: detlint +
# metricsguard, see tools/analyzers/) and runs it over every package
# via the go command's vettool protocol, so the analyzers see each
# package fully type-checked against the same export data the build
# uses. Exits nonzero on any finding; CI gates merges on this script.
#
# Usage:  scripts/lint.sh
set -eu

cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/shlint repro/tools/analyzers/shlint

echo "== shlint (detlint + metricsguard) =="
go vet -vettool="$(pwd)/bin/shlint" ./...
echo "shlint: all packages clean"

#!/usr/bin/env sh
# lint.sh — gating static-analysis entry point.
#
# Builds the repository's custom vet tool (shlint: detlint, detflow,
# barrierguard, allocguard, metricsguard — see tools/analyzers/) and
# runs two layers over every package:
#
#   1. `go vet -vettool=bin/shlint ./...` — the five analyzers, each
#      package fully type-checked against the same export data the
#      build uses, with cross-package facts (detflow taint,
#      barrierguard reachability) flowing through the go command's
#      vetx files.
#   2. `bin/shlint -allocgate ./...` — the escape-analysis layer of
#      the hot-path allocation proof: recompiles annotated packages
#      with -gcflags=-m=2 and fails on heap allocations or lost
#      inlines in //shsim:noalloc functions.
#
# Exits nonzero on any finding; CI gates merges on this script.
#
# Usage:  scripts/lint.sh [-run analyzer[,analyzer...]] [-json]
#
#   -run   run only the named vet analyzers (e.g. -run detflow); the
#          allocgate step is skipped unless allocguard is selected.
#   -json  emit vet diagnostics as JSON (one object per package).
#
# The shlint build is cached: the binary is rebuilt only when a file
# under tools/analyzers/ (or go.mod) is newer than bin/shlint.
set -eu

cd "$(dirname "$0")/.."

RUN=""
JSON=""
while [ $# -gt 0 ]; do
    case "$1" in
        -run)
            [ $# -ge 2 ] || { echo "lint.sh: -run needs an analyzer list" >&2; exit 1; }
            RUN="$2"; shift 2 ;;
        -run=*)
            RUN="${1#-run=}"; shift ;;
        -json)
            JSON=1; shift ;;
        *)
            echo "usage: scripts/lint.sh [-run analyzer[,analyzer...]] [-json]" >&2
            exit 1 ;;
    esac
done

# epoch <file> — mtime in seconds, 0 if missing.
epoch() {
    if [ -e "$1" ]; then
        # shellcheck disable=SC2012
        stat -c %Y "$1" 2>/dev/null || stat -f %m "$1"
    else
        echo 0
    fi
}

now_ms() {
    # POSIX date has no sub-second precision everywhere; prefer %N when
    # the platform has it, fall back to whole seconds.
    t=$(date +%s%N 2>/dev/null)
    case "$t" in
        *N) echo "$(($(date +%s) * 1000))" ;;
        *)  echo "$((t / 1000000))" ;;
    esac
}

mkdir -p bin
BIN="$(pwd)/bin/shlint"
bin_time=$(epoch "$BIN")
newest=$(epoch go.mod)
for f in $(find tools/analyzers -name '*.go' ! -path '*/testdata/*'); do
    t=$(epoch "$f")
    [ "$t" -gt "$newest" ] && newest=$t
done
if [ "$bin_time" -le "$newest" ]; then
    echo "== building shlint =="
    go build -o "$BIN" repro/tools/analyzers/shlint
else
    echo "== shlint up to date (bin/shlint) =="
fi

VET_FLAGS=""
[ -n "$RUN" ] && VET_FLAGS="$VET_FLAGS -run=$RUN"
[ -n "$JSON" ] && VET_FLAGS="$VET_FLAGS -json"

echo "== go vet -vettool=shlint${RUN:+ [$RUN]} =="
t0=$(now_ms)
# shellcheck disable=SC2086
go vet -vettool="$BIN" $VET_FLAGS ./...
t1=$(now_ms)
echo "vet: all packages clean ($((t1 - t0)) ms)"

# The allocgate is allocguard's second layer: run it when no -run
# filter is given, or when allocguard is in the list.
run_gate=1
if [ -n "$RUN" ]; then
    case ",$RUN," in
        *,allocguard,*) ;;
        *) run_gate="" ;;
    esac
fi
if [ -n "$run_gate" ]; then
    echo "== shlint -allocgate =="
    t0=$(now_ms)
    "$BIN" -allocgate ./...
    t1=$(now_ms)
    echo "allocgate: all //shsim:noalloc functions clean ($((t1 - t0)) ms)"
fi

#!/usr/bin/env sh
# bench.sh — benchmark-trajectory guardrail for the simulator hot path.
#
# Runs the hot-path benchmarks and compares them against the most recent
# recorded trajectory (the highest-numbered BENCH_PR*.json in the repo
# root). Two lines are drawn:
#
#   - allocation count (hard): steady-state stepping (BenchmarkCoreStep)
#     and block retire (BenchmarkCoreBlock) must both report 0 allocs/op,
#     or the allocation-free hot path regressed;
#   - step rate (gated, tolerant, drift-aware): measured ns/op must be
#     within BENCH_TOLERANCE_PCT (default 15%) of the recorded ns_per_op
#     scaled by the host drift ratio. The drift ratio is measured at gate
#     time from BenchmarkHostDriftReference — a frozen kernel that no
#     product change touches, so its movement against the trajectory's
#     recording is pure host drift (the ~21% swing documented in
#     BENCH_PR6.json would otherwise fail healthy trees). Trajectories
#     recorded before the reference existed gate un-scaled, as before.
#     Set BENCH_SKIP_RATE_GATE=1 to disable on machines unlike the
#     recording host (CI shared runners keep it on but the job is
#     non-gating).
#
# Usage:  scripts/bench.sh [benchtime]     (default 2s; CI uses 1x)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2s}"

trajectory=$(ls BENCH_PR*.json | sort -V | tail -1)
if [ -z "$trajectory" ]; then
    echo "FAIL: no BENCH_PR*.json trajectory file found" >&2
    exit 1
fi

echo "== hot-path benchmarks (benchtime=$benchtime) =="
out=$(go test -run '^$' -bench 'BenchmarkCoreSimulator' -benchmem -benchtime "$benchtime" .)
echo "$out"
step=$(go test -run '^$' -bench 'BenchmarkCoreStep$|BenchmarkCoreBlock$' -benchmem -benchtime "$benchtime" ./internal/cpu/)
echo "$step"

echo
echo "== many-core machine scaling (benchtime=$benchtime) =="
# Aggregate step rate of the cycle-quantum kernel at 1/2/4/8 simulated
# cores. The absolute multi-core rates only mean something on a host with
# that much parallelism (nproc below records the context); the recorded
# trajectory file documents the host they were measured on.
echo "host parallelism: $(nproc 2>/dev/null || echo unknown) cpu(s)"
scaling=$(go test -run '^$' -bench 'BenchmarkMachineScaling' -benchmem -benchtime "$benchtime" .)
echo "$scaling"

echo
echo "== open-loop service harness (benchtime=$benchtime) =="
# End-to-end serving-loop throughput (arrivals, admission, dispatch,
# sojourn recording) plus the simulated p99 of the event-aware cell.
# Informational for the rate (a whole-pipeline figure, too noisy to
# gate), but the run itself is a hard check: the benchmark fails if the
# event-aware policy leaves requests unserved.
if ! serve=$(go test -run '^$' -bench 'BenchmarkServiceThroughput$' -benchtime "$benchtime" .); then
    echo "$serve"
    echo "FAIL: BenchmarkServiceThroughput failed (event-aware cell incomplete?)" >&2
    exit 1
fi
echo "$serve"

echo
echo "== multi-core serving (benchtime=$benchtime) =="
# One open-loop arrival stream load-balanced across 1/2/4/8 per-core
# policy engines by the quantum dispatcher. The req/s figure is
# wall-clock: it only scales with simulated cores on a host with that
# much parallelism (nproc above records the context; a 1-CPU host runs
# the extra simulated cores serially, so req/s drops as cores rise).
# Informational for the rate; the run is a hard conservation check.
if ! multicore=$(go test -run '^$' -bench 'BenchmarkServeMulticore' -benchtime "$benchtime" .); then
    echo "$multicore"
    echo "FAIL: BenchmarkServeMulticore failed (requests lost?)" >&2
    exit 1
fi
echo "$multicore"

# Hard check: the machine kernel's steady-state Step must not allocate
# (the same 0-alloc line the single-core step path is held to).
if ! go test -run 'TestMachineSteadyStateAllocs' -count=1 ./internal/machine/ >/dev/null; then
    echo "FAIL: machine steady-state Step allocates (TestMachineSteadyStateAllocs)" >&2
    exit 1
fi
echo "OK: machine steady-state Step is allocation-free (TestMachineSteadyStateAllocs)"

# Hard check: a steady-state dispatch round (admit → balance → quantum
# barrier) of the multi-core serving dispatcher must not allocate.
if ! go test -run 'TestDispatcherSteadyStateAllocs' -count=1 ./internal/service/ >/dev/null; then
    echo "FAIL: service dispatcher allocates per quantum (TestDispatcherSteadyStateAllocs)" >&2
    exit 1
fi
echo "OK: multi-core dispatch round is allocation-free (TestDispatcherSteadyStateAllocs)"

echo
echo "== recorded trajectory ($trajectory) =="
grep -E '"(ns_per_op|ns_per_instr|allocs_per_op|minstrs_per_sec|speedup)"' "$trajectory"

# Hard checks: neither steady-state stepping nor block retire may allocate.
allocs=$(echo "$step" | awk '/BenchmarkCoreStep-|BenchmarkCoreStep / { print $(NF-1) }')
if [ "${allocs:-1}" != "0" ]; then
    echo "FAIL: BenchmarkCoreStep reports $allocs allocs/op (want 0)" >&2
    exit 1
fi
block_allocs=$(echo "$step" | awk '/BenchmarkCoreBlock-|BenchmarkCoreBlock / { print $(NF-1) }')
if [ "${block_allocs:-1}" != "0" ]; then
    echo "FAIL: BenchmarkCoreBlock reports $block_allocs allocs/op (want 0)" >&2
    exit 1
fi
echo
echo "OK: steady-state step and block retire are allocation-free (0 allocs/op)"

# Step-rate gate: measured ns/op vs the recorded trajectory, ±tolerance.
if [ "${BENCH_SKIP_RATE_GATE:-0}" = "1" ]; then
    echo "SKIP: step-rate gate disabled (BENCH_SKIP_RATE_GATE=1)"
    exit 0
fi
case "$benchtime" in
*x)
    # An iteration-count benchtime (CI's 1x smoke) times a single pass —
    # cold caches, no warmup — which says nothing about steady-state rate.
    echo "SKIP: step-rate gate needs a duration benchtime (got $benchtime)"
    exit 0
    ;;
esac
tol="${BENCH_TOLERANCE_PCT:-15}"
# BenchmarkCoreStep output:  name  iters  X ns/op  Y B/op  Z allocs/op
measured=$(echo "$step" | awk '/BenchmarkCoreStep-|BenchmarkCoreStep / { for (i=2; i<NF; i++) if ($(i+1) == "ns/op") print $i }')
recorded=$(awk '/"BenchmarkCoreStep":/ { found=1 } found && /"current"/ { cur=1 } cur && /"ns_per_op"/ { gsub(/[",]/,"",$2); print $2; exit }' "$trajectory")
if [ -z "$measured" ] || [ -z "$recorded" ]; then
    echo "FAIL: could not extract step rate (measured='$measured' recorded='$recorded')" >&2
    exit 1
fi

# Host-drift correction: re-measure the frozen reference kernel and take
# the ratio against the trajectory's recording of it. The reference is
# outside every product code path, so the ratio isolates what the host
# contributes to any step-rate movement.
drift=1
ref_recorded=$(awk '/"BenchmarkHostDriftReference":/ { found=1 } found && /"current"/ { cur=1 } cur && /"ns_per_op"/ { gsub(/[",]/,"",$2); print $2; exit }' "$trajectory")
if [ -n "$ref_recorded" ]; then
    ref_out=$(go test -run '^$' -bench 'BenchmarkHostDriftReference$' -benchtime "$benchtime" .)
    ref_measured=$(echo "$ref_out" | awk '/BenchmarkHostDriftReference-|BenchmarkHostDriftReference / { for (i=2; i<NF; i++) if ($(i+1) == "ns/op") print $i }')
    if [ -z "$ref_measured" ]; then
        echo "FAIL: could not measure BenchmarkHostDriftReference for the drift ratio" >&2
        exit 1
    fi
    drift=$(awk -v m="$ref_measured" -v r="$ref_recorded" 'BEGIN { printf "%.4f", m / r }')
    echo "host drift: reference ${ref_measured} ns/op vs recorded ${ref_recorded} ns/op (ratio ${drift})"
else
    echo "host drift: trajectory has no BenchmarkHostDriftReference recording; gating un-scaled"
fi

echo "step rate: measured ${measured} ns/op vs recorded ${recorded} ns/op (drift ${drift}, tolerance ±${tol}%)"
awk -v m="$measured" -v r="$recorded" -v d="$drift" -v t="$tol" 'BEGIN {
    c = r * d  # the recorded rate translated onto the gate-time host
    lo = c * (1 - t/100); hi = c * (1 + t/100)
    if (m < lo || m > hi) {
        printf "FAIL: %s ns/op outside drift-adjusted band [%.2f, %.2f]\n", m, lo, hi > "/dev/stderr"
        exit 1
    }
    printf "OK: step rate within ±%s%% of the drift-adjusted trajectory\n", t
}'

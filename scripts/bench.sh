#!/usr/bin/env sh
# bench.sh — benchmark-trajectory guardrail for the simulator hot path.
#
# Runs the two hot-path benchmarks and compares them against the recorded
# trajectory in BENCH_PR2.json. The comparison is advisory (machines
# differ); the hard line it draws is allocation count: steady-state
# stepping (BenchmarkCoreStep) must report 0 allocs/op, or the
# allocation-free hot path has regressed.
#
# Usage:  scripts/bench.sh [benchtime]     (default 2s; CI uses 1x)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2s}"

echo "== hot-path benchmarks (benchtime=$benchtime) =="
out=$(go test -run '^$' -bench 'BenchmarkCoreSimulator$' -benchmem -benchtime "$benchtime" .)
echo "$out"
step=$(go test -run '^$' -bench 'BenchmarkCoreStep$' -benchmem -benchtime "$benchtime" ./internal/cpu/)
echo "$step"

echo
echo "== recorded trajectory (BENCH_PR2.json) =="
grep -E '"(ns_per_op|allocs_per_op|minstrs_per_sec|speedup)"' BENCH_PR2.json

# Hard check: the steady-state step must not allocate.
allocs=$(echo "$step" | awk '/BenchmarkCoreStep/ { print $(NF-1) }')
if [ "${allocs:-1}" != "0" ]; then
    echo "FAIL: BenchmarkCoreStep reports $allocs allocs/op (want 0)" >&2
    exit 1
fi
echo
echo "OK: steady-state step is allocation-free (0 allocs/op)"

// This file is the flat compatibility surface: type aliases and free
// functions predating the Session entry point (see session.go) and the
// Topology-centred machine description (see topology.go). New code
// should start from NewSession + WithTopology, which own the machine
// description, experiment lookup/run, instrumentation and execution
// policy in one place. The aliases that name simulator building blocks
// (Harness, workloads, configs) are not deprecated; the free functions
// Session subsumed — DefaultMachine, Experiments, LookupExperiment,
// ExperimentIDs — have been removed (see the migration table in
// doc.go); the single-core Machine surface Topology subsumes remains
// deprecated but working.
package repro

import (
	"repro/internal/baselines"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/profile"
	"repro/internal/sfi"
	"repro/internal/smt"
	"repro/internal/workloads"
)

// ---- Machine & pipeline (internal/core) ----

type (
	// Machine describes one simulated core's platform: cache hierarchy,
	// core cost model, sampler configuration and coroutine switch
	// pricing.
	//
	// Deprecated: the public surface is cut around Topology, which
	// embeds Machine as its per-core template; a single-core machine is
	// Topology{Cores: 1, Machine: m}. The alias remains for existing
	// callers.
	Machine = experiments.Machine
	// Harness owns a composed workload scenario and builds executors.
	Harness = experiments.Harness
	// Image is a (possibly instrumented) executable program.
	Image = experiments.Image
	// TaskSet couples coroutine tasks with host-reference results.
	TaskSet = experiments.TaskSet
)

// NewHarness composes workload specs over a fresh simulated memory.
//
// Deprecated: prefer Session.NewHarness, which binds the harness to the
// session's machine (seed, caches, switch pricing) automatically.
var NewHarness = experiments.NewHarness

// NS converts simulated cycles to nanoseconds (3 GHz clock).
func NS(cycles float64) float64 { return experiments.NS(cycles) }

// ---- Coroutines & execution (internal/coro, internal/exec) ----

type (
	// Mode selects primary or scavenger behaviour for a coroutine.
	Mode = coro.Mode
	// CostModel prices context switches.
	CostModel = coro.CostModel
	// ExecConfig tunes the runtime (switch pricing, hide targets, §4.1
	// hardware assist).
	ExecConfig = exec.Config
	// ExecStats summarizes a run.
	ExecStats = exec.Stats
	// Task is one coroutine under executor control.
	Task = exec.Task
	// Executor interleaves coroutine tasks on the simulated core.
	Executor = exec.Executor
)

// Coroutine modes.
const (
	Primary   = coro.Primary
	Scavenger = coro.Scavenger
)

// DefaultCostModel returns the reference coroutine switch pricing
// (24 cycles = 8 ns full save).
func DefaultCostModel() CostModel { return coro.DefaultCostModel() }

// OSThreadCostModel prices switches at kernel-thread cost (1.5 µs).
func OSThreadCostModel() CostModel { return baselines.OSThreadCostModel() }

// ---- Instrumentation (internal/instrument) ----

type (
	// PipelineOptions configures both instrumentation phases.
	PipelineOptions = instrument.PipelineOptions
	// InstrumentOptions configures the primary phase.
	InstrumentOptions = instrument.Options
	// ScavengerOptions configures the scavenger phase.
	ScavengerOptions = instrument.ScavengerOptions
	// Policy decides which profiled loads get a prefetch+yield.
	Policy = instrument.Policy
	// ThresholdPolicy instruments loads whose miss rate exceeds a bound.
	ThresholdPolicy = instrument.ThresholdPolicy
	// CostBenefitPolicy instruments loads with positive modelled gain.
	CostBenefitPolicy = instrument.CostBenefitPolicy
)

// DefaultPipelineOptions enables both phases with reference settings.
func DefaultPipelineOptions() PipelineOptions { return instrument.DefaultPipelineOptions() }

// ---- Profiles (internal/profile, internal/pebs) ----

type (
	// Profile is the aggregated sample-based profile.
	Profile = profile.Profile
	// Sampler is the PEBS/LBR sampler attached to a profiling run.
	Sampler = pebs.Sampler
	// SamplerConfig tunes the PEBS/LBR sampler.
	SamplerConfig = pebs.Config
	// PipelineResult reports what the instrumentation pipeline did.
	PipelineResult = instrument.PipelineResult
	// Scenario is a composed set of workloads over one memory.
	Scenario = workloads.Scenario
)

// ---- Machine substrate configs ----

type (
	// MemConfig sizes the cache hierarchy.
	MemConfig = mem.Config
	// CPUConfig fixes instruction costs and the SFI sandbox.
	CPUConfig = cpu.Config
	// SMTConfig tunes the SMT baseline.
	SMTConfig = smt.Config
	// SMTStats summarizes an SMT run.
	SMTStats = smt.Stats
	// SFIOptions configures software-fault-isolation hardening.
	SFIOptions = sfi.Options
	// SFIResult reports what the SFI pass inserted.
	SFIResult = sfi.Result
)

// SMTRun multiplexes contexts on a core under the SMT baseline model.
var SMTRun = smt.Run

// SFIHarden inserts software-fault-isolation guards into a program.
var SFIHarden = sfi.Harden

// AnnotateLoads inserts CoroBase-style manual prefetch+yield annotations.
var AnnotateLoads = baselines.AnnotateLoads

// ---- Workloads (internal/workloads) ----

type (
	// WorkloadSpec is a buildable workload.
	WorkloadSpec = workloads.Spec
	// PointerChase is the canonical memory-bound kernel.
	PointerChase = workloads.PointerChase
	// PaddedChase adds configurable compute between hops.
	PaddedChase = workloads.PaddedChase
	// MultiChase advances three independent chains in lockstep.
	MultiChase = workloads.MultiChase
	// MixedChase mixes missing and cache-hot loads in one loop.
	MixedChase = workloads.MixedChase
	// HashJoin probes a chained hash table (CoroBase's workload).
	HashJoin = workloads.HashJoin
	// BinarySearch performs lower-bound probes over a sorted array.
	BinarySearch = workloads.BinarySearch
	// BST searches an unbalanced binary search tree.
	BST = workloads.BST
	// BTree searches a bulk-loaded B+-tree index.
	BTree = workloads.BTree
	// SkipList searches a four-level skip list.
	SkipList = workloads.SkipList
	// ArrayScan is the cache-friendly sequential foil.
	ArrayScan = workloads.ArrayScan
	// AccelStream submits and awaits onboard-accelerator operations.
	AccelStream = workloads.AccelStream
	// Scatter performs random store-dominated table updates.
	Scatter = workloads.Scatter
	// Compute is a pure-ALU loop (the default scavenger payload).
	Compute = workloads.Compute
	// UnrolledCompute has a long straight-line body.
	UnrolledCompute = workloads.UnrolledCompute
)

// ---- Experiments (internal/experiments) ----

type (
	// ExperimentResult is one experiment's tables and metrics.
	ExperimentResult = experiments.Result
	// ExperimentRunner produces one experiment result.
	ExperimentRunner = experiments.Runner
)

// ---- ISA (internal/isa), for tools that manipulate binaries ----

type (
	// Program is a decoded instruction sequence.
	Program = isa.Program
	// BinaryImage is the encoded form the instrumenter rewrites.
	BinaryImage = isa.Image
)

// Assemble translates assembly text into a program.
var Assemble = isa.Assemble

// Encode converts a program into its binary image.
var Encode = isa.Encode

// Decode converts a binary image back into a program.
var Decode = isa.Decode

// Disassemble renders a program as re-assemblable text.
var Disassemble = isa.Disassemble

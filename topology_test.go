package repro

import (
	"testing"
)

func TestWithTopology(t *testing.T) {
	topo := DefaultTopology(4)
	topo.Machine.MemBytes = 16 << 20
	s, err := NewSession(WithTopology(topo), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Topology(); got.Cores != 4 {
		t.Errorf("cores = %d, want 4", got.Cores)
	}
	if s.Topology().Machine.Seed != 7 {
		t.Errorf("seed = %d, want 7 (WithSeed applies after WithTopology)", s.Topology().Machine.Seed)
	}
	if s.Machine() != s.Topology().Machine {
		t.Error("deprecated Session.Machine diverged from Topology().Machine")
	}
}

func TestWithMachineIsSingleCoreTopology(t *testing.T) {
	m := DefaultTopology(1).Machine
	m.MemBytes = 32 << 20
	s, err := NewSession(WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	topo := s.Topology()
	if topo.Cores != 1 {
		t.Errorf("WithMachine built %d cores, want 1", topo.Cores)
	}
	if topo.Machine.MemBytes != 32<<20 {
		t.Error("WithMachine template lost")
	}
}

func TestSessionRunMachine(t *testing.T) {
	topo := DefaultTopology(2)
	topo.Machine.MemBytes = 16 << 20
	reg := &MetricsRegistry{}
	s, err := NewSession(WithTopology(topo),
		WithObservability(ObservabilityConfig{Metrics: reg}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunMachine(MachineRun{
		Spec: PointerChase{Nodes: 512, Hops: 100, Instances: 2},
		Mode: MachineSymmetric,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cores) != 2 {
		t.Fatalf("%d core sections, want 2", len(st.Cores))
	}
	if st.Aggregate.Retired == 0 {
		t.Error("machine retired nothing")
	}
	// The session registry's Machine section carries the rollup.
	snap := s.MetricsSnapshot()
	if snap.Machine.Cores != 2 || snap.Machine.Retired != st.Aggregate.Retired {
		t.Errorf("metrics rollup missing: %+v", snap.Machine)
	}
}

func TestSessionRunMachineValidates(t *testing.T) {
	s, err := NewSession(WithTopology(Topology{Cores: -1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunMachine(MachineRun{Spec: PointerChase{Nodes: 64, Hops: 8, Instances: 1}}); err == nil {
		t.Error("negative core count accepted")
	}
}

package repro

import (
	"context"
	"runtime"
	"testing"
)

// multicoreConfig is the multi-core acceptance sweep: one arrival
// stream per cell at a load past single-core saturation, spread over 4
// per-core policy engines by the quantum dispatcher.
func multicoreConfig() ServiceConfig {
	return ServiceConfig{
		Workload: Workload{
			Request:    PointerChase{Nodes: 1024, Hops: 8, Instances: 4},
			Background: Compute{Iters: 1500, Instances: 2},
		},
		Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Rate: 8},
		Rates:    []float64{8},
		Requests: 1500,
		Workers:  4,
		Queue:    64,
		Batch:    2,
		Policies: []ServicePolicy{PolicyAgnostic, PolicyEventAware},
		Topology: Topology{Cores: 4},
	}
}

// TestServeMulticoreDeterministic: a multi-core Serve — per-core
// engines on their own goroutines behind the quantum dispatcher —
// renders byte-identically at GOMAXPROCS 1, 2 and 8 and on a repeated
// run, and conserves every request. Run under -race this is also the
// proof the dispatcher's channel handshake is the only synchronization
// the cell needs.
func TestServeMulticoreDeterministic(t *testing.T) {
	cfg := multicoreConfig()
	s, err := NewSession(WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var ref string
	var rep *ServiceReport
	// The second 8 is the repeated-run check.
	for _, procs := range []int{1, 2, 8, 8} {
		runtime.GOMAXPROCS(procs)
		r, err := s.Serve(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := r.String()
		if ref == "" {
			ref, rep = out, r
			continue
		}
		if out != ref {
			t.Fatalf("GOMAXPROCS=%d: multi-core report diverged from reference:\n%s\n--- want ---\n%s", procs, out, ref)
		}
	}

	for _, c := range rep.Cells {
		if c.Cores != 4 {
			t.Errorf("%s rate=%g served on %d cores, want 4", c.Policy, c.Rate, c.Cores)
		}
		if c.Completed+c.Dropped+c.Shed != c.Requests {
			t.Errorf("%s rate=%g: completed %d + dropped %d + shed %d != arrivals %d",
				c.Policy, c.Rate, c.Completed, c.Dropped, c.Shed, c.Requests)
		}
	}
}

// TestServeMulticoreCacheReplay: a multi-core cell replayed from the
// result cache renders byte-identically to one served fresh, and the
// core count participates in the key — the same sweep on 1 core is a
// different cell, not a stale hit.
func TestServeMulticoreCacheReplay(t *testing.T) {
	cfg := multicoreConfig()
	cfg.Requests = 600
	cfg.Policies = []ServicePolicy{PolicyEventAware}

	dir := t.TempDir()
	fresh, err := LoadSweep(context.Background(), cfg, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := LoadSweep(context.Background(), cfg, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.String() != cached.String() {
		t.Fatalf("multi-core cache replay diverged:\nfresh:\n%s\ncached:\n%s", fresh, cached)
	}
	if got := cached.Cells[0].Cores; got != 4 {
		t.Fatalf("replayed cell reports %d cores, want 4", got)
	}

	single := cfg
	single.Topology = Topology{Cores: 1}
	srep, err := LoadSweep(context.Background(), single, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if srep.String() == fresh.String() {
		t.Fatal("1-core sweep served the 4-core cell (core count missing from the cache key)")
	}
	if got := srep.Cells[0].Cores; got != 1 {
		t.Fatalf("single-core cell reports %d cores, want 1", got)
	}
}

// TestServeInheritsSessionTopology: a Serve call with a zero Topology
// runs on the session's (WithTopology), so shrun -serve -cores N and
// library users get multi-core serving without repeating the topology
// per sweep.
func TestServeInheritsSessionTopology(t *testing.T) {
	cfg := multicoreConfig()
	cfg.Requests = 400
	cfg.Policies = []ServicePolicy{PolicyEventAware}
	cfg.Topology = Topology{}

	s, err := NewSession(WithTopology(DefaultTopology(2)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Cores; got != 2 {
		t.Fatalf("cell served on %d cores, want the session topology's 2", got)
	}
}

package machine

import (
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/smt"
)

// CoreStats is one core's view of the run.
type CoreStats struct {
	// Core is the core index; Seed is the strided workload seed the
	// core's scenario was composed with.
	Core int
	Seed int64
	// Exec is filled for ModeSymmetric/ModeSolo, SMT for ModeSMT.
	Exec exec.Stats
	SMT  smt.Stats
	// Mem is the private hierarchy's counter block.
	Mem mem.Stats
	// Metrics is the per-core registry snapshot (zero when RunConfig.
	// Metrics was false).
	Metrics metrics.Snapshot
}

// Cycles returns the core's wall-cycle count under either discipline.
func (cs *CoreStats) Cycles() uint64 {
	if cs.SMT.Cycles > cs.Exec.Cycles {
		return cs.SMT.Cycles
	}
	return cs.Exec.Cycles
}

// Stats aggregates a many-core run: per-core sections in core-index
// order plus machine-level rollups.
type Stats struct {
	// Cores holds the per-core sections, indexed by core id.
	Cores []CoreStats
	// Quanta is the number of cycle quanta (barrier commits) executed.
	Quanta uint64
	// Cycles is the simulated wall time: the maximum core clock advance.
	Cycles uint64
	// LLC is the shared-LLC counter block (zero for 1-core topologies,
	// which run the private three-level hierarchy).
	LLC mem.LLCStats
	// Aggregate sums the per-core work: Busy/Stall/Retired/Switches/
	// Halted are totals, Cycles mirrors the machine-level maximum, and
	// SMT idle time is folded into Stall.
	Aggregate exec.Stats
}

// stats assembles the result after the run completes.
func (m *Machine) stats() Stats {
	st := Stats{Quanta: m.quanta}
	if m.llc != nil {
		st.LLC = m.llc.Stats
	}
	for _, c := range m.cores {
		cs := CoreStats{Core: c.id, Seed: c.mach.Seed}
		if c.tick != nil {
			c.ex.CaptureMetrics()
			cs.Exec = c.tick.Stats()
		} else if c.smt != nil {
			if reg := c.reg; reg != nil {
				c.cpu.Hier.FillMetrics(&reg.Mem)
				c.cpu.Counters.FillMetrics(&reg.CPU)
			}
			cs.SMT = c.smt.Stats()
		}
		cs.Mem = c.cpu.Hier.Stats
		if reg := c.reg; reg != nil {
			cs.Metrics = reg.Snapshot()
		}
		st.Cores = append(st.Cores, cs)

		if cy := cs.Cycles(); cy > st.Cycles {
			st.Cycles = cy
		}
		st.Aggregate.Busy += cs.Exec.Busy + cs.SMT.Busy
		st.Aggregate.Stall += cs.Exec.Stall + cs.SMT.Idle
		st.Aggregate.Switch += cs.Exec.Switch
		st.Aggregate.Retired += cs.Exec.Retired + cs.SMT.Retired
		st.Aggregate.Switches += cs.Exec.Switches
		st.Aggregate.Halted += cs.Exec.Halted
	}
	st.Aggregate.Cycles = st.Cycles
	return st
}

// FillMetrics rolls the machine-level accounting into a registry's
// Machine section. A nil registry means observability is off.
func (st *Stats) FillMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	mm := &reg.Machine
	mm.Cores = uint64(len(st.Cores))
	mm.Quanta = st.Quanta
	mm.Cycles = st.Cycles
	mm.LLCHits = st.LLC.Hits
	mm.LLCMisses = st.LLC.Misses
	mm.LLCQueued = st.LLC.Queued
	mm.LLCQueueCycles = st.LLC.QueueCycles
	mm.LLCPeakBank = st.LLC.PeakBankLoad
	mm.Retired = st.Aggregate.Retired
	mm.BusyCycles = st.Aggregate.Busy
	mm.StallCycles = st.Aggregate.Stall
}

package machine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/smt"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func chaseSpec() workloads.Spec {
	return workloads.PointerChase{Nodes: 1024, Hops: 400, Instances: 4}
}

// testMachine shrinks the default per-core memory so tests don't
// allocate 256 MiB per harness.
func testMachine() core.Machine {
	m := core.DefaultMachine()
	m.MemBytes = 16 << 20
	return m
}

// testTopo is DefaultTopology over the smaller test machine.
func testTopo(cores int) Topology {
	t := DefaultTopology(cores)
	t.Machine = testMachine()
	return t
}

// newSMTCore mirrors the kernel's ModeSMT core construction.
func newSMTCore(t *testing.T, mach core.Machine, h *core.Harness, img *core.Image) *cpu.Core {
	t.Helper()
	return cpu.MustNewCore(mach.CPU, img.Prog, h.Sc.Mem, mem.MustNewHierarchy(mach.Mem))
}

// A 1-core machine must reproduce the existing single-core engine
// bit-for-bit: same stats, same hierarchy counters, same trace — the
// "golden tables still hold" guarantee of the API re-cut.
func TestSingleCoreMatchesEngine(t *testing.T) {
	for _, mode := range []Mode{ModeSymmetric, ModeSolo} {
		// Reference: the classic harness path, run to completion.
		mach := testMachine()
		h, err := core.NewHarness(mach, chaseSpec())
		if err != nil {
			t.Fatal(err)
		}
		img := h.Baseline()
		ring := trace.NewRing(1 << 12)
		ex := h.NewExecutor(img, exec.Config{Tracer: ring})
		ts, err := h.Tasks(img, "chase", coro.Primary, map[Mode]int{ModeSymmetric: 0, ModeSolo: 1}[mode])
		if err != nil {
			t.Fatal(err)
		}
		var refSt exec.Stats
		if mode == ModeSolo {
			refSt, err = ex.RunSolo(ts.Tasks[0])
		} else {
			refSt, err = ex.RunSymmetric(ts.Tasks)
		}
		if err != nil {
			t.Fatal(err)
		}
		refMem := ex.Core.Hier.Stats

		// Machine path, 1 core.
		m, err := New(Topology{Cores: 1, Machine: testMachine()}, RunConfig{Spec: chaseSpec(), Mode: mode, TraceN: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(st.Cores) != 1 {
			t.Fatalf("mode %v: %d core sections", mode, len(st.Cores))
		}
		if !reflect.DeepEqual(st.Cores[0].Exec, refSt) {
			t.Errorf("mode %v: stats diverged from engine\n got %+v\nwant %+v", mode, st.Cores[0].Exec, refSt)
		}
		if st.Cores[0].Mem != refMem {
			t.Errorf("mode %v: hierarchy counters diverged", mode)
		}
		if st.LLC != (mem.LLCStats{}) {
			t.Errorf("mode %v: 1-core machine used the shared LLC: %+v", mode, st.LLC)
		}
		got, want := m.TraceRing(0).Events(), ring.Events()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %v: traces diverged (%d vs %d events)", mode, len(got), len(want))
		}
	}
}

// ModeSMT under the kernel must match the classic smt.Run discipline on
// a single core.
func TestSingleCoreSMTMatchesEngine(t *testing.T) {
	mach := testMachine()
	h, err := core.NewHarness(mach, chaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	img := h.Baseline()
	cpuCore := newSMTCore(t, mach, h, img)
	ts, err := h.Tasks(img, "chase", coro.Primary, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*coro.Context, len(ts.Tasks))
	for i, tk := range ts.Tasks {
		ctxs[i] = tk.Ctx
	}
	refSt, err := smt.Run(cpuCore, smt.Config{Contexts: len(ctxs)}, ctxs)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(Topology{Cores: 1, Machine: testMachine()}, RunConfig{Spec: chaseSpec(), Mode: ModeSMT})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Cores[0].SMT, refSt) {
		t.Errorf("SMT stats diverged\n got %+v\nwant %+v", st.Cores[0].SMT, refSt)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Topology{Cores: 0}, RunConfig{Spec: chaseSpec()}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(Topology{Cores: 2}, RunConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := New(Topology{Cores: 2}, RunConfig{Spec: chaseSpec(), Mode: Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(Topology{Cores: 4, PerCoreMem: make([]mem.Config, 3)}, RunConfig{Spec: chaseSpec()}); err == nil {
		t.Error("PerCoreMem length mismatch accepted")
	}
	topo := testTopo(2)
	rc := RunConfig{Spec: chaseSpec(), Exec: exec.Config{Tracer: trace.NewRing(8)}}
	if _, err := New(topo, rc); err == nil {
		t.Error("shared tracer across cores accepted")
	}
}

// Multi-core runs make progress, produce per-core sections in index
// order, and the shared LLC sees traffic.
func TestMultiCoreRuns(t *testing.T) {
	m, err := New(testTopo(4), RunConfig{Spec: chaseSpec(), Mode: ModeSymmetric, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cores) != 4 {
		t.Fatalf("%d core sections, want 4", len(st.Cores))
	}
	for i, cs := range st.Cores {
		if cs.Core != i {
			t.Errorf("core section %d has id %d", i, cs.Core)
		}
		if cs.Exec.Retired == 0 {
			t.Errorf("core %d retired nothing", i)
		}
		if cs.Metrics.CPU.Retired != cs.Exec.Retired {
			t.Errorf("core %d: metrics retired %d != stats %d", i, cs.Metrics.CPU.Retired, cs.Exec.Retired)
		}
	}
	if st.LLC.Hits+st.LLC.Misses == 0 {
		t.Error("shared LLC saw no traffic")
	}
	if st.Quanta == 0 || st.Cycles == 0 {
		t.Errorf("degenerate rollup: %+v", st)
	}
	if st.Aggregate.Retired != 4*st.Cores[0].Exec.Retired {
		t.Errorf("aggregate retired %d != 4× per-core %d", st.Aggregate.Retired, st.Cores[0].Exec.Retired)
	}
	// Seeds are strided per core.
	if st.Cores[1].Seed != st.Cores[0].Seed+CoreSeedStride {
		t.Errorf("seed stride broken: %d vs %d", st.Cores[1].Seed, st.Cores[0].Seed)
	}
}

// Per-core registries must record request completion latencies under
// the resumable engines — exec.Ticker for the coroutine modes and
// smt.Runner for ModeSMT — so many-core service runs report latencies
// exactly like the classic single-core paths do.
func TestManyCoreRequestLatencyMetrics(t *testing.T) {
	for _, mode := range []Mode{ModeSymmetric, ModeSMT} {
		m, err := New(testTopo(2), RunConfig{Spec: chaseSpec(), Mode: mode, Metrics: true})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i, cs := range st.Cores {
			want := uint64(4) // chaseSpec instances per core
			if cs.Metrics.Sched.Requests != want {
				t.Errorf("mode %v core %d: Sched.Requests = %d, want %d", mode, i, cs.Metrics.Sched.Requests, want)
			}
			if cs.Metrics.Sched.RequestLatency.Count != want {
				t.Errorf("mode %v core %d: latency histogram has %d observations, want %d",
					mode, i, cs.Metrics.Sched.RequestLatency.Count, want)
			}
			if cs.Metrics.Sched.RequestLatency.Max == 0 {
				t.Errorf("mode %v core %d: zero max latency", mode, i)
			}
		}
	}
}

package machine

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// run8 executes the canonical 8-core determinism workload and returns
// everything observable: the full Stats (per-core exec stats, hierarchy
// counters and metrics snapshots included) plus every core's trace.
func run8(t *testing.T) (Stats, [][]trace.Event) {
	t.Helper()
	topo := testTopo(8)
	topo.Quantum = 512 // small quantum → many barriers → more interleavings stressed
	m, err := New(topo, RunConfig{Spec: chaseSpec(), Mode: ModeSymmetric, Metrics: true, TraceN: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]trace.Event, topo.Cores)
	for i := range traces {
		traces[i] = m.TraceRing(i).Events()
	}
	return st, traces
}

// The acceptance criterion of the quantum kernel: an 8-core run is
// byte-identical — Stats, per-core metrics snapshots, per-core traces —
// across GOMAXPROCS settings and across repeated runs with the same
// seed. The handshake channels give the race detector the
// happens-before edges, so `go test -race` over this test doubles as
// the data-race proof.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	refSt, refTraces := run8(t)
	if refSt.LLC.Hits+refSt.LLC.Misses == 0 {
		t.Fatal("workload generated no LLC traffic; determinism test is vacuous")
	}
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		st, traces := run8(t)
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("GOMAXPROCS=%d: stats diverged", procs)
		}
		if !reflect.DeepEqual(traces, refTraces) {
			t.Errorf("GOMAXPROCS=%d: traces diverged", procs)
		}
	}
}

func TestDeterminismAcrossRepeatedRuns(t *testing.T) {
	refSt, refTraces := run8(t)
	for rep := 0; rep < 3; rep++ {
		st, traces := run8(t)
		if !reflect.DeepEqual(st, refSt) {
			t.Fatalf("repeat %d: stats diverged", rep)
		}
		if !reflect.DeepEqual(traces, refTraces) {
			t.Fatalf("repeat %d: traces diverged", rep)
		}
	}
}

// ModeSMT under the kernel must be deterministic too.
func TestDeterminismSMT(t *testing.T) {
	run := func() Stats {
		topo := testTopo(4)
		topo.Quantum = 512
		m, err := New(topo, RunConfig{Spec: chaseSpec(), Mode: ModeSMT, Metrics: true})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SMT machine stats diverged across identical runs")
	}
}

// Package machine simulates a many-core machine: each simulated core
// owns a cpu.Core with private L1/L2, all cores share a banked L3 +
// DRAM with bandwidth/MSHR contention (mem.SharedLLC), and a
// cycle-quantum kernel steps every core on its own goroutine inside
// deterministic quanta.
//
// # Determinism
//
// The kernel is a bound-weave simulator (ZSim-style): within a quantum
// every core advances independently against a frozen snapshot of the
// shared-LLC tag state, logging its LLC traffic; at the quantum barrier
// the logs commit in fixed core-index order. Cores never observe each
// other mid-quantum, so the simulation result — per-core stats, metrics
// and traces included — is a pure function of the topology and seed,
// byte-identical regardless of GOMAXPROCS or goroutine scheduling. The
// worker handshake is two channel operations per core per quantum,
// which also gives the race detector the happens-before edges it needs
// to prove the kernel clean.
package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/smt"
	"repro/internal/workloads"
)

// CoreSeedStride separates per-core workload seeds: core i builds its
// scenario with seed Machine.Seed + i*CoreSeedStride, so core 0 of a
// 1-core topology reproduces the single-core engine exactly while other
// cores get decorrelated data layouts. The stride is a prime far from
// the experiment sweep's seed stride (7919) so sweep seeds and core
// seeds never collide.
const CoreSeedStride = 100003

// DefaultQuantum is the cycle-quantum length: long enough to amortize
// the barrier handshake (two channel ops per core), short enough that
// the one-quantum contention lag stays well under a DRAM round trip's
// worth of drift per synchronization epoch.
const DefaultQuantum = 4096

// Topology describes a many-core machine: how many cores, the per-core
// template (caches, CPU, switch costs, memory size, seed), optional
// per-core memory-hierarchy overrides, and the shared LLC every core
// contends for.
type Topology struct {
	// Cores is the number of simulated cores, each on its own goroutine.
	Cores int
	// Machine is the per-core template. Core i inherits it wholesale
	// with Seed advanced by i*CoreSeedStride. A zero template (detected
	// by MemBytes == 0) means core.DefaultMachine().
	Machine core.Machine
	// PerCoreMem optionally overrides the private hierarchy per core;
	// len must be 0 (uniform) or Cores.
	PerCoreMem []mem.Config
	// LLC configures the shared banked L3 + DRAM. The zero value means
	// mem.DefaultLLCConfig(Cores). Ignored for single-core topologies,
	// which keep the template's private three-level hierarchy so results
	// match the single-core engine bit-for-bit.
	LLC mem.LLCConfig
	// Quantum is the cycle-quantum length; 0 means DefaultQuantum.
	Quantum uint64
}

// DefaultTopology returns a topology of cores default machines sharing
// a default LLC scaled to the core count.
func DefaultTopology(cores int) Topology {
	return Topology{
		Cores:   cores,
		Machine: core.DefaultMachine(),
		LLC:     mem.DefaultLLCConfig(cores),
		Quantum: DefaultQuantum,
	}
}

// withDefaults fills zero-value fields.
func (t Topology) withDefaults() Topology {
	if t.Machine.MemBytes == 0 {
		t.Machine = core.DefaultMachine()
	}
	if t.Cores > 1 && t.LLC == (mem.LLCConfig{}) {
		t.LLC = mem.DefaultLLCConfig(t.Cores)
	}
	if t.Quantum == 0 {
		t.Quantum = DefaultQuantum
	}
	return t
}

// Validate checks the topology (after default-filling) for structural
// problems.
func (t Topology) Validate() error {
	if t.Cores < 1 {
		return fmt.Errorf("machine: core count %d must be at least 1", t.Cores)
	}
	if n := len(t.PerCoreMem); n != 0 && n != t.Cores {
		return fmt.Errorf("machine: PerCoreMem has %d entries for %d cores (want 0 or %d)", n, t.Cores, t.Cores)
	}
	if t.Machine.MemBytes > 1<<44 {
		// The shared LLC tags per-core lines with a core id above bit 40
		// (lines, i.e. bit 44+ of byte addresses at 16-byte lines or larger).
		return fmt.Errorf("machine: per-core memory %d exceeds the 2^44-byte LLC address budget", t.Machine.MemBytes)
	}
	if err := t.Machine.Mem.Validate(); err != nil {
		return err
	}
	for i := range t.PerCoreMem {
		if err := t.PerCoreMem[i].Validate(); err != nil {
			return fmt.Errorf("machine: core %d: %w", i, err)
		}
	}
	if t.Cores > 1 {
		if err := t.LLC.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CoreMachine derives core i's template: optional per-core hierarchy
// override plus the seed stride. Core 0 is the template itself, so a
// 1-core topology reproduces the single-core engine exactly; layers
// that build their own per-core scenarios over a topology (the service
// dispatcher, external harnesses) must derive machines here rather
// than striding seeds themselves, so every consumer agrees on which
// data layout core i sees.
func (t Topology) CoreMachine(i int) core.Machine {
	m := t.Machine
	if len(t.PerCoreMem) == t.Cores && t.Cores > 0 {
		m.Mem = t.PerCoreMem[i]
	}
	m.Seed += int64(i) * CoreSeedStride
	return m
}

// Mode selects the per-core execution discipline.
type Mode int

const (
	// ModeSymmetric interleaves all workload instances on each core with
	// the symmetric coroutine discipline (exec.RunSymmetric).
	ModeSymmetric Mode = iota
	// ModeSolo runs one instance per core with no software scheduling
	// (exec.RunSolo) — the baseline for scaling measurements.
	ModeSolo
	// ModeSMT multiplexes the instances as hardware threads (smt.Run).
	ModeSMT
)

func (m Mode) String() string {
	switch m {
	case ModeSymmetric:
		return "symmetric"
	case ModeSolo:
		return "solo"
	case ModeSMT:
		return "smt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// RunConfig describes what every core runs. Each core builds its own
// scenario from Spec with its strided seed, so cores execute the same
// program over decorrelated private data.
type RunConfig struct {
	// Spec is the workload every core composes and runs.
	Spec workloads.Spec
	// Part selects the program part; empty means Spec.Name().
	Part string
	// Mode is the per-core execution discipline.
	Mode Mode
	// Tasks caps the instances run per core (0 = all of Spec's
	// instances; ModeSolo always runs exactly one).
	Tasks int
	// Exec configures the executor for ModeSymmetric/ModeSolo. Tracer
	// and Metrics must be nil for multi-core topologies — observability
	// is per-core (see Metrics/TraceN), never shared across goroutines.
	Exec exec.Config
	// SMT configures ModeSMT; a zero Contexts defaults to the task count.
	SMT smt.Config
	// Metrics allocates a private metrics registry per core, snapshot
	// into CoreStats.Metrics after the run.
	Metrics bool
	// TraceN, when positive, attaches a private trace ring of that
	// capacity to each core (ModeSymmetric/ModeSolo).
	TraceN int
}

func (rc RunConfig) validate(cores int) error {
	if rc.Spec == nil {
		return fmt.Errorf("machine: RunConfig.Spec must be set")
	}
	switch rc.Mode {
	case ModeSymmetric, ModeSolo, ModeSMT:
	default:
		return fmt.Errorf("machine: unknown mode %d", int(rc.Mode))
	}
	if rc.Tasks < 0 {
		return fmt.Errorf("machine: negative task count %d", rc.Tasks)
	}
	if cores > 1 && (rc.Exec.Tracer != nil || rc.Exec.Metrics != nil || rc.SMT.Metrics != nil) {
		return fmt.Errorf("machine: Exec.Tracer/Exec.Metrics/SMT.Metrics would be shared across %d core goroutines; use RunConfig.TraceN/Metrics for per-core observability", cores)
	}
	if rc.TraceN < 0 {
		return fmt.Errorf("machine: negative trace capacity %d", rc.TraceN)
	}
	return nil
}

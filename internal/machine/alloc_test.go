package machine

import (
	"testing"

	"repro/internal/workloads"
)

// The kernel's steady state — barrier handshake, engine resume, LLC
// commit — must not allocate: allocation in the quantum loop would
// dominate small quanta and make scaling numbers garbage-collector
// noise.
func TestMachineSteadyStateAllocs(t *testing.T) {
	topo := testTopo(2)
	topo.Quantum = 1024
	spec := workloads.UnrolledCompute{BlockInstrs: 64, Iters: 1 << 20, Instances: 1}
	m, err := New(topo, RunConfig{Spec: spec, Mode: ModeSolo})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Warm the workers, channel buffers, and LLC log capacity.
	for i := 0; i < 8; i++ {
		if done, err := m.Step(); err != nil || done {
			t.Fatalf("machine finished during warm-up (done=%v err=%v); grow the workload", done, err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if done, err := m.Step(); err != nil || done {
			t.Fatalf("machine finished mid-measurement (done=%v err=%v)", done, err)
		}
	})
	if avg != 0 {
		t.Errorf("Step allocates %.1f objects per quantum in steady state, want 0", avg)
	}
}

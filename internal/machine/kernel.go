package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/smt"
	"repro/internal/trace"
)

// Machine is a running many-core simulation. Build one with New, drive
// it with Step (one quantum at a time) or Run (to completion), then
// Close. A Machine is not safe for concurrent use: Step and Run must be
// called from one goroutine (the kernel goroutine), which is also the
// only place the shared LLC commits.
type Machine struct {
	topo  Topology
	rc    RunConfig
	llc   *mem.SharedLLC
	cores []*coreRunner

	quantum  uint64
	deadline uint64
	quanta   uint64

	started  bool
	finished bool
	closed   bool
	err      error
}

// coreRunner is one simulated core: its harness-built scenario, the
// engine advancing it, per-core observability, and the worker-goroutine
// handshake channels.
type coreRunner struct {
	id   int
	mach core.Machine

	ts   *core.TaskSet
	ex   *exec.Executor // ModeSymmetric / ModeSolo
	tick *exec.Ticker
	smt  *smt.Runner // ModeSMT
	cpu  *cpu.Core   // the core driving the engine

	view *mem.LLCView
	reg  *metrics.Registry
	ring *trace.Ring

	done bool
	err  error

	start chan uint64   // kernel → worker: quantum deadline
	ack   chan struct{} // worker → kernel: quantum complete
}

// run advances the core's engine to the deadline.
//
//shsim:quantum-phase
func (c *coreRunner) run(deadline uint64) (bool, error) {
	if c.tick != nil {
		return c.tick.Run(deadline)
	}
	return c.smt.Run(deadline)
}

// loop is the worker goroutine: one quantum per handshake. It performs
// no allocation and exits when the kernel closes the start channel.
//
//shsim:quantum-phase
func (c *coreRunner) loop() {
	for deadline := range c.start {
		if !c.done && c.err == nil {
			done, err := c.run(deadline)
			c.done = done
			c.err = err
		}
		c.ack <- struct{}{}
	}
}

// New builds a many-core machine: per-core harnesses (each core
// composes the workload over its own memory with its strided seed),
// per-core engines, and — for multi-core topologies — the shared LLC
// attached to every core's hierarchy in core-index order.
func New(topo Topology, rc RunConfig) (*Machine, error) {
	topo = topo.withDefaults()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := rc.validate(topo.Cores); err != nil {
		return nil, err
	}
	part := rc.Part
	if part == "" {
		part = rc.Spec.Name()
	}

	m := &Machine{topo: topo, rc: rc, quantum: topo.Quantum}
	if topo.Cores > 1 {
		llc, err := mem.NewSharedLLC(topo.LLC)
		if err != nil {
			return nil, err
		}
		m.llc = llc
	}

	for i := 0; i < topo.Cores; i++ {
		c := &coreRunner{
			id:    i,
			mach:  topo.CoreMachine(i),
			start: make(chan uint64),
			ack:   make(chan struct{}),
		}
		h, err := core.NewHarness(c.mach, rc.Spec)
		if err != nil {
			return nil, fmt.Errorf("machine: core %d: %w", i, err)
		}
		img := h.Baseline()
		if rc.Metrics {
			c.reg = &metrics.Registry{}
		}
		if rc.TraceN > 0 {
			c.ring = trace.NewRing(rc.TraceN)
		}
		count := rc.Tasks
		if rc.Mode == ModeSolo {
			count = 1
		}
		ts, err := h.Tasks(img, part, coro.Primary, count)
		if err != nil {
			return nil, fmt.Errorf("machine: core %d: %w", i, err)
		}
		c.ts = ts

		switch rc.Mode {
		case ModeSymmetric, ModeSolo:
			cfg := rc.Exec
			if cfg.Tracer == nil && c.ring != nil {
				cfg.Tracer = c.ring
			}
			if cfg.Metrics == nil {
				cfg.Metrics = c.reg
			}
			ex := h.NewExecutor(img, cfg)
			c.ex = ex
			c.cpu = ex.Core
			if m.llc != nil {
				c.view = m.llc.NewView(i)
				ex.Core.Hier.AttachLLC(c.view)
			}
			tick, err := ex.NewTicker(ts.Tasks, rc.Mode == ModeSolo)
			if err != nil {
				return nil, fmt.Errorf("machine: core %d: %w", i, err)
			}
			c.tick = tick
		case ModeSMT:
			cpuCore := cpu.MustNewCore(c.mach.CPU, img.Prog, h.Sc.Mem, mem.MustNewHierarchy(c.mach.Mem))
			c.cpu = cpuCore
			if m.llc != nil {
				c.view = m.llc.NewView(i)
				cpuCore.Hier.AttachLLC(c.view)
			}
			ctxs := make([]*coro.Context, len(ts.Tasks))
			for j, t := range ts.Tasks {
				ctxs[j] = t.Ctx
			}
			smtCfg := rc.SMT
			if smtCfg.Contexts == 0 {
				smtCfg.Contexts = len(ctxs)
			}
			if smtCfg.Metrics == nil {
				smtCfg.Metrics = c.reg
			}
			rn, err := smt.NewRunner(cpuCore, smtCfg, ctxs)
			if err != nil {
				return nil, fmt.Errorf("machine: core %d: %w", i, err)
			}
			c.smt = rn
		}
		m.cores = append(m.cores, c)
	}
	return m, nil
}

// Step runs one cycle quantum: every core advances to the next deadline
// on its own goroutine, the kernel waits for all of them at the
// barrier, and the shared LLC commits the quantum's traffic in
// core-index order. Returns done=true once every core has halted (or an
// error stopped the run). The steady-state path performs no allocation.
//
// Step is the barrier: the only place shared LLC state commits, and a
// cycle-domain entry point in its own right (all forward progress of
// the many-core clock flows through here).
//
//shsim:commit-phase
//shsim:cycle-entry
func (m *Machine) Step() (bool, error) {
	if m.finished || m.closed {
		return true, m.err
	}
	if !m.started {
		for _, c := range m.cores {
			go c.loop()
		}
		m.started = true
	}
	m.deadline += m.quantum
	for _, c := range m.cores {
		c.start <- m.deadline
	}
	for _, c := range m.cores {
		<-c.ack
	}
	if m.llc != nil {
		m.llc.Commit()
	}
	m.quanta++
	all := true
	for _, c := range m.cores {
		if c.err != nil {
			m.err = fmt.Errorf("machine: core %d: %w", c.id, c.err)
			m.finished = true
			return true, m.err
		}
		if !c.done {
			all = false
		}
	}
	m.finished = all
	return m.finished, nil
}

// Run steps the machine to completion, validates every core's
// architectural results against the workload's expectations, and
// returns the per-core and aggregate statistics.
func (m *Machine) Run() (Stats, error) {
	defer m.Close()
	for {
		done, err := m.Step()
		if err != nil {
			return Stats{}, err
		}
		if done {
			break
		}
	}
	for _, c := range m.cores {
		if err := c.ts.Validate(); err != nil {
			return Stats{}, fmt.Errorf("machine: core %d: %w", c.id, err)
		}
	}
	return m.stats(), nil
}

// Close shuts the worker goroutines down. Idempotent; the Machine
// cannot be stepped afterwards.
func (m *Machine) Close() {
	if m.closed {
		return
	}
	m.closed = true
	if m.started {
		for _, c := range m.cores {
			close(c.start)
		}
	}
}

// Quanta returns the number of quanta stepped so far.
func (m *Machine) Quanta() uint64 { return m.quanta }

// TraceRing returns core i's trace ring, or nil when tracing is off.
func (m *Machine) TraceRing(i int) *trace.Ring { return m.cores[i].ring }

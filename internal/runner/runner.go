// Package runner is the parallel experiment execution engine: it fans
// jobs (experiment × seed × machine configuration) out over a bounded
// pool of goroutines and merges the results back in deterministic
// presentation order.
//
// Determinism argument: every experiment is a pure function of its
// Machine value — scenarios are built from a seeded rand.Source, the
// simulated core and cache hierarchy are private to the job, and no
// package-level state is mutated during a run. Jobs therefore commute,
// and the only ordering the caller can observe is the order in which
// results are delivered. Run and Stream deliver strictly in job-slice
// order regardless of completion order, so the output of a run at
// -parallel N is byte-identical to -parallel 1.
//
// An optional content-addressed cache (see Cache) short-circuits jobs
// whose (experiment ID, machine) cell has been computed before.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// Job is one executable cell of a sweep: an experiment applied to a
// fully specified machine (the machine embeds the seed).
type Job struct {
	// ID names the experiment ("E7"). It is both a display label and a
	// cache key component, so custom Run functions must use IDs distinct
	// from the registry's.
	ID string
	// Mach is the machine the experiment runs on. Each job gets the
	// value by copy, so workers can never share simulator state.
	Mach core.Machine
	// Topo, when non-nil, is the many-core topology the job simulates;
	// it is part of the cache key, so single-core (nil) and topology
	// jobs never collide. Classic registry experiments leave it nil.
	Topo *machine.Topology
	// Service, when non-nil, is the open-loop service-sweep
	// configuration the job runs (a JSON-serializable value; the repro
	// package passes the full cell description). Like Topo it is part
	// of the cache key, so two serve cells collide exactly when their
	// configurations are identical. Declared as any to keep the runner
	// decoupled from the service package.
	Service any
	// Run produces the result. When nil, the ID is resolved through the
	// experiment registry at execution time.
	Run experiments.Runner
	// Cacheable marks the job's result as safe to serve from and store
	// into the content-addressed cache. Registry experiments are pure
	// functions of the machine and set this; ad-hoc Run closures should
	// leave it false unless the ID fully identifies the computation.
	Cacheable bool
}

// Result is the outcome of one job, tagged with execution metadata.
type Result struct {
	Job Job
	// Seq is the job's index in the submitted slice: its deterministic
	// presentation position.
	Seq int
	// Res is the experiment result; nil when Err is set.
	Res *experiments.Result
	// Err is the job's failure, if any.
	Err error
	// Wall is the job's wall-clock duration (zero for cache hits).
	Wall time.Duration
	// CacheHit reports that Res was served from the cache without
	// simulating anything.
	CacheHit bool
}

// Options tunes a Run/Stream call.
type Options struct {
	// Parallelism bounds the worker pool. Values < 1 select
	// runtime.GOMAXPROCS(0). 1 reproduces fully sequential execution.
	Parallelism int
	// Cache, when non-nil, serves and stores cacheable jobs.
	Cache *Cache
	// Progress, when non-nil, is invoked after every job completes
	// (in completion order, serialized) with the number of finished
	// jobs, the total, and the just-finished result. It must not block
	// for long: it holds up result delivery.
	Progress func(done, total int, r Result)
}

func (o Options) workers(jobs int) int {
	n := o.Parallelism
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes all jobs and returns their results indexed exactly like
// the input slice. The first job error cancels the sweep; results
// computed before cancellation are still returned.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Result, error) {
	out := make([]Result, len(jobs))
	err := Stream(ctx, jobs, opts, func(r Result) error {
		out[r.Seq] = r
		return nil
	})
	return out, err
}

// Stream executes all jobs and delivers results to emit strictly in
// job-slice order, each as soon as it and all its predecessors are
// done — so a consumer can render output incrementally while later
// jobs are still executing, and the rendered bytes are independent of
// Parallelism. emit runs on the caller's goroutine. A job error or a
// non-nil emit return cancels outstanding work and is returned after
// in-flight jobs drain.
func Stream(ctx context.Context, jobs []Job, opts Options, emit func(Result) error) error {
	if len(jobs) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	results := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := execute(ctx, jobs[i], i, opts.Cache)
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder completion order into submission order, emitting each
	// result the moment its turn comes up.
	pending := make(map[int]Result)
	next, done := 0, 0
	var firstErr error
	for r := range results {
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), r)
		}
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", r.Job.ID, r.Err)
			cancel()
		}
		pending[r.Seq] = r
		for {
			nr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr == nil {
				if err := emit(nr); err != nil {
					firstErr = err
					cancel()
				}
			}
		}
		if done == len(jobs) {
			break
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// timedRun invokes one experiment body and measures its host wall
// time. Wall time here is harness telemetry (the per-job column in
// sweep tables), never an input to simulated state: every simulated
// duration derives from the core clock.
//
//shsim:nondeterministic-ok host wall-time telemetry; never feeds simulated state
func timedRun(run experiments.Runner, m core.Machine) (*experiments.Result, time.Duration, error) {
	start := time.Now()
	res, err := run(m)
	return res, time.Since(start), err
}

// execute runs one job, consulting the cache on both sides. This is
// the per-job cell executor — the runner-side cycle-domain entry: the
// experiment body it invokes owns a private simulated machine, so
// nothing nondeterministic may be reachable from here (the wall-clock
// telemetry is outlined and suppressed in timedRun).
//
//shsim:cycle-entry
func execute(ctx context.Context, j Job, seq int, cache *Cache) Result {
	r := Result{Job: j, Seq: seq}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	if cache != nil && j.Cacheable {
		if res, ok := cache.Get(j); ok {
			r.Res, r.CacheHit = res, true
			return r
		}
	}
	run := j.Run
	if run == nil {
		var err error
		run, err = experiments.MustLookup(j.ID)
		if err != nil {
			r.Err = err
			return r
		}
	}
	res, wall, err := timedRun(run, j.Mach)
	r.Wall = wall
	if err != nil {
		r.Err = err
		return r
	}
	r.Res = res
	if cache != nil && j.Cacheable {
		// A write failure degrades to a cold cache; the result stands.
		_ = cache.Put(j, res)
	}
	return r
}

// Jobs expands experiment IDs × seed repetitions into the job list for
// a sweep, in presentation order (experiment-major). Repetition i>0
// runs on base.Seed + i*7919, matching shbench's historical seed
// schedule. Unknown IDs fail upfront with an *experiments.UnknownIDError.
func Jobs(ids []string, base core.Machine, seeds int) ([]Job, error) {
	if seeds < 1 {
		seeds = 1
	}
	var jobs []Job
	for _, id := range ids {
		run, err := experiments.MustLookup(id)
		if err != nil {
			return nil, err
		}
		for i := 0; i < seeds; i++ {
			m := base
			m.Seed = base.Seed + int64(i)*7919
			jobs = append(jobs, Job{ID: id, Mach: m, Run: run, Cacheable: true})
		}
	}
	return jobs, nil
}

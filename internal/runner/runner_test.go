package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// render produces the caller-visible bytes of a sweep: tables, notes and
// metrics in presentation order — exactly what shbench prints.
func render(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Res.String())
		b.WriteString(r.Res.MetricsString())
	}
	return b.String()
}

func sweep(t *testing.T, parallelism int, cache *Cache) []Result {
	t.Helper()
	jobs, err := Jobs([]string{"E1", "E12", "E13"}, core.DefaultMachine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 9 {
		t.Fatalf("expanded %d jobs, want 9", len(jobs))
	}
	results, err := Run(context.Background(), jobs, Options{Parallelism: parallelism, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// The tentpole property: a 3-experiment × 3-seed sweep renders
// byte-identically at -parallel 1 and -parallel 8.
func TestParallelSweepIsDeterministic(t *testing.T) {
	seq := render(sweep(t, 1, nil))
	par := render(sweep(t, 8, nil))
	if seq != par {
		t.Errorf("parallel sweep diverged from sequential:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "### E1") || !strings.Contains(seq, "### E13") {
		t.Errorf("sweep output incomplete:\n%s", seq)
	}
}

// A warm cache must satisfy the entire second sweep without simulating
// anything: every job a hit, zero Run invocations, identical bytes.
func TestWarmCacheSkipsSimulation(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := sweep(t, 4, cache)
	for _, r := range cold {
		if r.CacheHit {
			t.Fatalf("%s hit a cache that should be cold", r.Job.ID)
		}
	}

	// Re-expand the jobs but count actual simulator entries.
	var simulated atomic.Int64
	jobs, err := Jobs([]string{"E1", "E12", "E13"}, core.DefaultMachine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		inner := jobs[i].Run
		jobs[i].Run = func(m core.Machine) (*experiments.Result, error) {
			simulated.Add(1)
			return inner(m)
		}
	}
	warm, err := Run(context.Background(), jobs, Options{Parallelism: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != 0 {
		t.Errorf("warm sweep re-simulated %d jobs, want 0", n)
	}
	for _, r := range warm {
		if !r.CacheHit {
			t.Errorf("%s (seed %d) missed a warm cache", r.Job.ID, r.Job.Mach.Seed)
		}
	}
	if render(cold) != render(warm) {
		t.Error("cached results render differently from computed ones")
	}
	if cache.Hits() != 9 {
		t.Errorf("cache hits = %d, want 9", cache.Hits())
	}
}

// Different machines and different experiments must never collide.
func TestCacheKeySeparatesCells(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultMachine()
	k1, err := cache.Key(Job{ID: "E1", Mach: base})
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Seed++
	k2, _ := cache.Key(Job{ID: "E1", Mach: other})
	k3, _ := cache.Key(Job{ID: "E2", Mach: base})
	shrunk := base
	shrunk.Mem.L1Size /= 2
	k4, _ := cache.Key(Job{ID: "E1", Mach: shrunk})
	seen := map[string]bool{k1: true, k2: true, k3: true, k4: true}
	if len(seen) != 4 {
		t.Errorf("cache keys collide: %v %v %v %v", k1, k2, k3, k4)
	}
	// Same cell, same key.
	again, _ := cache.Key(Job{ID: "E1", Mach: core.DefaultMachine()})
	if again != k1 {
		t.Error("identical jobs produced different keys")
	}
}

// Non-cacheable jobs must bypass the cache entirely.
func TestNonCacheableJobsBypassCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	job := Job{ID: "custom", Mach: core.DefaultMachine(), Run: func(core.Machine) (*experiments.Result, error) {
		calls.Add(1)
		return &experiments.Result{ID: "custom", Metrics: map[string]float64{"x": 1}}, nil
	}}
	for i := 0; i < 2; i++ {
		if _, err := Run(context.Background(), []Job{job}, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("non-cacheable job ran %d times, want 2", calls.Load())
	}
}

// Stream must deliver results in submission order even when completion
// order is scrambled, and progress must count every job.
func TestStreamOrderAndProgress(t *testing.T) {
	var jobs []Job
	for i := 0; i < 16; i++ {
		i := i
		jobs = append(jobs, Job{ID: fmt.Sprintf("J%02d", i), Mach: core.Machine{Seed: int64(i)},
			Run: func(core.Machine) (*experiments.Result, error) {
				return &experiments.Result{ID: fmt.Sprintf("J%02d", i)}, nil
			}})
	}
	var order []int
	var progressed atomic.Int64
	err := Stream(context.Background(), jobs, Options{
		Parallelism: 8,
		Progress:    func(done, total int, r Result) { progressed.Add(1) },
	}, func(r Result) error {
		order = append(order, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range order {
		if i != seq {
			t.Fatalf("emission order broken at %d: %v", i, order)
		}
	}
	if len(order) != 16 || progressed.Load() != 16 {
		t.Errorf("emitted %d, progressed %d, want 16/16", len(order), progressed.Load())
	}
}

func TestJobErrorCancelsSweep(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job{ID: fmt.Sprintf("J%d", i), Run: func(core.Machine) (*experiments.Result, error) {
			if i == 3 {
				return nil, boom
			}
			return &experiments.Result{}, nil
		}})
	}
	_, err := Run(context.Background(), jobs, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
	if err == nil || !strings.Contains(err.Error(), "J3") {
		t.Errorf("error does not name the failing job: %v", err)
	}
}

func TestJobsRejectsUnknownIDs(t *testing.T) {
	_, err := Jobs([]string{"E1", "Z9"}, core.DefaultMachine(), 1)
	var unknown *experiments.UnknownIDError
	if !errors.As(err, &unknown) || unknown.ID != "Z9" {
		t.Fatalf("err = %v, want UnknownIDError for Z9", err)
	}
	if !strings.Contains(err.Error(), "E20") {
		t.Errorf("error should list valid IDs: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}}
	_, err := Run(ctx, jobs, Options{})
	if err == nil {
		t.Error("cancelled context should surface an error")
	}
}

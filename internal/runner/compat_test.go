package runner

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// fixtureDir holds a cache entry written before PR 2's allocation-free
// hot-path rewrite. The rewrite claims observational equivalence, so the
// same schema version must keep serving entries cached by the old
// implementation — and the served bytes must match what the current
// implementation computes. If the entry misses, the cache key (schema,
// ID, machine shape) drifted; if the bytes differ, the simulator's
// observable behaviour changed and cacheSchema should have been bumped.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/runner -run TestCacheCompat
const fixtureDir = "testdata/cachefixture"

func compatJob() Job {
	return Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
}

func TestCacheCompatFixture(t *testing.T) {
	j := compatJob()
	run, err := experiments.MustLookup(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := run(j.Mach)
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		c, err := OpenCache(fixtureDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(j, fresh); err != nil {
			t.Fatal(err)
		}
		key, _ := c.Key(j)
		t.Logf("wrote fixture entry %s", key)
		return
	}

	c, err := OpenCache(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := c.Get(j)
	if !ok {
		key, _ := c.Key(j)
		t.Fatalf("pre-change cache entry missed (key %s): schema or machine shape drifted without a cacheSchema bump", key)
	}

	wantJSON, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("freshly computed %s result differs from pre-change cached fixture:\n got: %s\nwant: %s",
			j.ID, gotJSON, wantJSON)
	}
	if fresh.String() != cached.String() {
		t.Fatalf("rendered table differs from pre-change cached fixture")
	}
}

package runner

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// fixtureDir holds a cache entry written at the current cacheSchema.
// Later changes that claim observational equivalence must keep serving
// this entry — and the served bytes must match what the current
// implementation computes. If the entry misses, the cache key (schema,
// ID, machine or topology shape) drifted; if the bytes differ, the
// simulator's observable behaviour changed and cacheSchema should have
// been bumped.
//
// History: the fixture was regenerated at schema 4, when the service
// key gained the cell's core count, shared-LLC shape and quantum
// (multi-core serving) and cell results gained the cores metric; at
// schema 3, when the key preimage gained the job's service-sweep
// configuration and the resumable engines started recording request
// latencies; and at schema 2, when the preimage gained the job
// topology (many-core machines). Entries from prior schemas
// deliberately miss (see TestCacheSchemaBump,
// TestCacheSchema2EntriesMiss and TestCacheSchema3EntriesMiss).
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/runner -run TestCacheCompat
const fixtureDir = "testdata/cachefixture"

func compatJob() Job {
	return Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
}

func TestCacheCompatFixture(t *testing.T) {
	j := compatJob()
	run, err := experiments.MustLookup(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := run(j.Mach)
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		c, err := OpenCache(fixtureDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(j, fresh); err != nil {
			t.Fatal(err)
		}
		key, _ := c.Key(j)
		t.Logf("wrote fixture entry %s", key)
		return
	}

	c, err := OpenCache(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := c.Get(j)
	if !ok {
		key, _ := c.Key(j)
		t.Fatalf("pre-change cache entry missed (key %s): schema or machine shape drifted without a cacheSchema bump", key)
	}

	wantJSON, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("freshly computed %s result differs from pre-change cached fixture:\n got: %s\nwant: %s",
			j.ID, gotJSON, wantJSON)
	}
	if fresh.String() != cached.String() {
		t.Fatalf("rendered table differs from pre-change cached fixture")
	}
}

// TestCacheRoundTripWithObservabilityTable: results that carry the new
// "observability" table and obs.* metrics must round-trip through the
// cache byte-identically, while old-style results (no such table — the
// shape every pre-observability cache entry has) keep decoding under the
// same schema. Result's JSON shape did not change (the table list and
// metric map just gained entries), so cacheSchema stays at 1.
func TestCacheRoundTripWithObservabilityTable(t *testing.T) {
	var reg metrics.Registry
	reg.Exec.NoteEpisode(500, 360)
	reg.Exec.NoteEpisode(120, 360)
	reg.Mem.L1Hits = 77
	snap := reg.Snapshot()

	with := &experiments.Result{ID: "obs-on", Metrics: map[string]float64{"cycles": 123}}
	with.Tables = append(with.Tables, snap.Table())
	snap.Metrics(with.Metrics)
	without := &experiments.Result{ID: "obs-off", Metrics: map[string]float64{"cycles": 123}}

	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*experiments.Result{with, without} {
		j := Job{ID: res.ID, Mach: core.DefaultMachine(), Cacheable: true}
		if err := c.Put(j, res); err != nil {
			t.Fatal(err)
		}
		got, ok := c.Get(j)
		if !ok {
			t.Fatalf("%s: cache miss after put", res.ID)
		}
		want, _ := json.Marshal(res)
		have, _ := json.Marshal(got)
		if string(want) != string(have) {
			t.Fatalf("%s: cache round-trip changed the result:\n got: %s\nwant: %s", res.ID, have, want)
		}
		if got.String() != res.String() {
			t.Fatalf("%s: rendered tables differ after round-trip", res.ID)
		}
	}

	// The observability histogram rows survived: episode total equals the
	// two episodes recorded, visible in the decoded table text.
	got, _ := c.Get(Job{ID: "obs-on", Mach: core.DefaultMachine(), Cacheable: true})
	if !strings.Contains(got.String(), "episode_dur_total") {
		t.Errorf("decoded result lost observability rows:\n%s", got.String())
	}
	if got.Metrics["obs.exec.episodes"] != 2 {
		t.Errorf("obs.exec.episodes = %v, want 2", got.Metrics["obs.exec.episodes"])
	}
}

package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/experiments"
)

// cacheSchema versions the on-disk entry format. Bump it whenever the
// serialized Result shape or the simulator's observable behaviour
// changes, so stale entries miss instead of lying. Schema 2: the key
// preimage gained the job's machine topology (many-core runs). Schema
// 3: the preimage gained the job's service-sweep configuration and the
// resumable many-core engines started recording request latencies, so
// every pre-service entry deliberately misses. Schema 4: the service
// key gained the cell's core count, shared-LLC shape and quantum
// (multi-core serving), and cell results gained the cores metric.
const cacheSchema = 4

// Cache is a content-addressed store of experiment results keyed by
// (schema, experiment ID, machine). Entries are immutable JSON files
// named by the key hash, so concurrent readers and writers — including
// separate processes sharing a directory — never see partial state:
// writes go to a temp file and are renamed into place atomically.
type Cache struct {
	dir          string
	hits, misses atomic.Uint64
}

// DefaultDir returns the conventional cache location,
// $XDG_CACHE_HOME/softhide (via os.UserCacheDir).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("runner: no user cache dir: %w", err)
	}
	return filepath.Join(base, "softhide"), nil
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's directory.
func (c *Cache) Dir() string { return c.dir }

// Hits and Misses report lookup statistics since the cache was opened.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Key derives the content address of a job: a SHA-256 over the schema
// version, the experiment ID, the complete machine description (which
// embeds the seed), for many-core jobs the full topology, and for
// service-sweep jobs the full serve configuration. Two jobs share a key
// exactly when the simulator would be handed identical inputs.
func (c *Cache) Key(j Job) (string, error) {
	payload, err := json.Marshal(struct {
		Schema  int
		ID      string
		Mach    interface{}
		Topo    interface{} `json:",omitempty"`
		Service interface{} `json:",omitempty"`
	}{cacheSchema, j.ID, j.Mach, j.Topo, j.Service})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// entry is the on-disk representation: the key's preimage fields for
// debuggability plus the full result.
type entry struct {
	Schema int                 `json:"schema"`
	ID     string              `json:"id"`
	Result *experiments.Result `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for a job, if present and readable.
func (c *Cache) Get(j Job) (*experiments.Result, bool) {
	key, err := c.Key(j)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != cacheSchema || e.Result == nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Result, true
}

// Put stores a job's result under its content address.
func (c *Cache) Put(j Job, res *experiments.Result) error {
	key, err := c.Key(j)
	if err != nil {
		return err
	}
	data, err := json.Marshal(entry{Schema: cacheSchema, ID: j.ID, Result: res})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

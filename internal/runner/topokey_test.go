package runner

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// A schema-1 entry (pre-topology key preimage) must miss under the
// current schema even if a file with the current key's name exists on
// disk with old-schema contents.
func TestCacheSchemaBump(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
	key, err := c.Key(j)
	if err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(entry{Schema: 1, ID: j.ID, Result: &experiments.Result{ID: j.ID}})
	if err := os.WriteFile(c.path(key), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("schema-1 entry served under the current schema")
	}
}

// A schema-2 entry (pre-service key preimage) must likewise miss under
// schema 3, even when it sits at the current key's path.
func TestCacheSchema2EntriesMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
	key, err := c.Key(j)
	if err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(entry{Schema: 2, ID: j.ID, Result: &experiments.Result{ID: j.ID}})
	if err := os.WriteFile(c.path(key), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("schema-2 entry served under schema 3")
	}
}

// A schema-3 entry (pre-multi-core-serving key preimage) must likewise
// miss under schema 4, even when it sits at the current key's path.
func TestCacheSchema3EntriesMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
	key, err := c.Key(j)
	if err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(entry{Schema: 3, ID: j.ID, Result: &experiments.Result{ID: j.ID}})
	if err := os.WriteFile(c.path(key), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(j); ok {
		t.Fatal("schema-3 entry served under schema 4")
	}
}

// Topology participates in the key: a nil-topology job, a 1-core
// topology job and an 8-core topology job are three distinct cells.
func TestCacheKeyIncludesTopology(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Job{ID: "E1", Mach: core.DefaultMachine(), Cacheable: true}
	topo1 := machine.DefaultTopology(1)
	topo8 := machine.DefaultTopology(8)

	keys := map[string]string{}
	for name, j := range map[string]Job{
		"classic": base,
		"cores1":  {ID: base.ID, Mach: base.Mach, Topo: &topo1, Cacheable: true},
		"cores8":  {ID: base.ID, Mach: base.Mach, Topo: &topo8, Cacheable: true},
	} {
		k, err := c.Key(j)
		if err != nil {
			t.Fatal(err)
		}
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("jobs %q and %q share cache key %s", name, prev, k)
			}
		}
		keys[name] = k
	}

	// Same topology value → same key (pointer identity must not leak in).
	topo8b := machine.DefaultTopology(8)
	ka, _ := c.Key(Job{ID: base.ID, Mach: base.Mach, Topo: &topo8})
	kb, _ := c.Key(Job{ID: base.ID, Mach: base.Mach, Topo: &topo8b})
	if ka != kb {
		t.Error("identical topologies hash to different keys")
	}
}

// Service participates in the key: two serve jobs that differ only in
// their service configuration are distinct cells, identical
// configurations collide, and a nil Service marshals away (omitempty)
// so non-serve jobs keep their schema-stable keys.
func TestCacheKeyIncludesService(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type svc struct {
		Policy string
		Rate   float64
	}
	base := Job{ID: "serve/agnostic/rate=0.2", Mach: core.DefaultMachine(), Cacheable: true}
	withA := base
	withA.Service = svc{Policy: "agnostic", Rate: 0.2}
	withB := base
	withB.Service = svc{Policy: "agnostic", Rate: 0.4}
	withA2 := base
	withA2.Service = svc{Policy: "agnostic", Rate: 0.2}

	kNil, err := c.Key(base)
	if err != nil {
		t.Fatal(err)
	}
	kA, err := c.Key(withA)
	if err != nil {
		t.Fatal(err)
	}
	kB, err := c.Key(withB)
	if err != nil {
		t.Fatal(err)
	}
	kA2, err := c.Key(withA2)
	if err != nil {
		t.Fatal(err)
	}
	if kA == kNil || kB == kNil {
		t.Error("service configuration did not change the cache key")
	}
	if kA == kB {
		t.Error("distinct service configurations share a cache key")
	}
	if kA != kA2 {
		t.Error("identical service configurations hash to different keys")
	}
}

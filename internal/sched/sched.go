// Package sched implements the paper's §4.2 "runtime scheduling"
// discussion: how the event-hiding mechanism integrates with a coroutine
// scheduler that owns a stream of latency-sensitive requests plus batch
// work.
//
// Three integration policies are provided:
//
//   - Agnostic: the scheduler knows nothing about short events. Every
//     yield is an ordinary reschedule point and all tasks share a
//     round-robin queue — requests queue behind batch work.
//   - Sidecar: the paper's first approach. The scheduler runs requests
//     strictly in FIFO order and merely exposes its ready queue of batch
//     tasks; the event-hiding executor borrows those tasks to fill each
//     request's miss shadows (dual-mode per request).
//   - EventAware: the paper's second approach. The scheduler itself
//     treats a primary yield like a blocking I/O event: pending requests
//     are co-scheduled into each other's miss shadows ahead of batch
//     work, improving request throughput when several are queued.
package sched

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
)

// Policy selects the integration approach.
type Policy uint8

// Integration policies (see package comment).
const (
	Agnostic Policy = iota
	Sidecar
	EventAware
)

func (p Policy) String() string {
	switch p {
	case Agnostic:
		return "agnostic"
	case Sidecar:
		return "sidecar"
	case EventAware:
		return "event-aware"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Class separates latency-sensitive requests from batch work.
type Class uint8

// Task classes.
const (
	Request Class = iota
	Batch
)

// Stats summarizes a scheduler run.
type Stats struct {
	// RequestLatencies[i] is the wall time from run start to completion
	// of the i-th submitted request.
	RequestLatencies []uint64
	// Cycles is the wall duration until all requests completed (batch
	// tasks may still be unfinished).
	Cycles uint64
	// Busy aggregates busy cycles over all tasks.
	Busy uint64
	// Switches counts context switches.
	Switches uint64
}

// Efficiency returns busy cycles over wall cycles.
func (s Stats) Efficiency() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Cycles)
}

// MeanRequestLatency returns the mean over completed requests.
func (s Stats) MeanRequestLatency() float64 {
	if len(s.RequestLatencies) == 0 {
		return 0
	}
	var sum uint64
	for _, l := range s.RequestLatencies {
		sum += l
	}
	return float64(sum) / float64(len(s.RequestLatencies))
}

// Scheduler owns a queue of classified tasks over one executor.
type Scheduler struct {
	ex       *exec.Executor
	policy   Policy
	requests []*exec.Task
	batch    []*exec.Task
}

// New creates a scheduler with the given integration policy.
func New(ex *exec.Executor, policy Policy) *Scheduler {
	return &Scheduler{ex: ex, policy: policy}
}

// Submit queues a task.
func (s *Scheduler) Submit(t *exec.Task, class Class) {
	if class == Request {
		s.requests = append(s.requests, t)
	} else {
		s.batch = append(s.batch, t)
	}
}

// Run executes until every request has completed and returns per-request
// latencies. Batch tasks run only as far as the policy lets them.
func (s *Scheduler) Run() (Stats, error) {
	if len(s.requests) == 0 {
		return Stats{}, fmt.Errorf("sched: no requests submitted")
	}
	start := s.ex.Core.Now
	st := Stats{RequestLatencies: make([]uint64, len(s.requests))}

	record := func() {
		for i, r := range s.requests {
			if r.Ctx.Halted && st.RequestLatencies[i] == 0 {
				st.RequestLatencies[i] = s.ex.Core.Now - start
			}
		}
	}

	switch s.policy {
	case Agnostic:
		// One flat round-robin queue; yields rotate blindly. To observe
		// request completions we run the symmetric loop request by
		// request: RunSymmetric already records per-task halt times.
		all := append(append([]*exec.Task{}, s.requests...), s.batch...)
		runStats, err := s.ex.RunSymmetric(all)
		if err != nil {
			return Stats{}, err
		}
		for i := range s.requests {
			st.RequestLatencies[i] = runStats.Latencies[i]
		}

	case Sidecar:
		// Requests strictly FIFO; the executor pulls scavengers from the
		// exposed batch ready-queue during each request's miss windows.
		for _, t := range s.batch {
			t.Mode = coro.Scavenger
			t.Ctx.Mode = coro.Scavenger
		}
		for _, req := range s.requests {
			if _, err := s.ex.RunDualMode(req, s.ready(s.batch)); err != nil {
				return Stats{}, err
			}
			record()
		}

	case EventAware:
		// Like sidecar, but pending requests are co-scheduled into the
		// running request's miss shadows ahead of batch work.
		for i, req := range s.requests {
			if req.Ctx.Halted {
				record()
				continue
			}
			var pool []*exec.Task
			for j := i + 1; j < len(s.requests); j++ {
				if !s.requests[j].Ctx.Halted {
					pool = append(pool, s.requests[j])
				}
			}
			pool = append(pool, s.ready(s.batch)...)
			for _, t := range pool {
				t.Mode = coro.Scavenger
				t.Ctx.Mode = coro.Scavenger
			}
			if _, err := s.ex.RunDualMode(req, pool); err != nil {
				return Stats{}, err
			}
			record()
		}

	default:
		return Stats{}, fmt.Errorf("sched: unknown policy %v", s.policy)
	}

	record()
	st.Cycles = s.ex.Core.Now - start
	for _, t := range append(append([]*exec.Task{}, s.requests...), s.batch...) {
		st.Busy += t.Ctx.BusyCycles
		st.Switches += t.Ctx.Switches
	}
	if m := s.ex.Cfg.Metrics; m != nil {
		m.Sched.Requests += uint64(len(s.requests))
		m.Sched.BatchTasks += uint64(len(s.batch))
		for _, l := range st.RequestLatencies {
			m.Sched.RequestLatency.Observe(l)
		}
	}
	return st, nil
}

// ready filters out completed tasks — the scheduler's exposed ready queue.
func (s *Scheduler) ready(tasks []*exec.Task) []*exec.Task {
	var out []*exec.Task
	for _, t := range tasks {
		if !t.Ctx.Halted {
			out = append(out, t)
		}
	}
	return out
}

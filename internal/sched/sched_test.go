package sched

import (
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// The test image: an instrumented pointer chase (requests) and an
// instrumented compute loop (batch work with scavenger-phase yields).
const testImage = `
    chase:
        prefetch [r1]
        yield 0x800a
        load r1, [r1]
        addi r3, r3, -1
        cmpi r3, 0
        jgt chase
        halt
    batch:
        addi r5, r5, 1
        cyield 0x8030
        addi r4, r4, -1
        cmpi r4, 0
        jgt batch
        mov r1, r5
        halt
`

func tinyCaches() mem.Config {
	c := mem.DefaultConfig()
	c.L1Size = 256
	c.L1Ways = 1
	c.L2Size = 1 << 10
	c.L2Ways = 2
	c.L3Size = 4 << 10
	c.L3Ways = 4
	return c
}

func buildChain(m *mem.Memory, n int, seed int64) uint64 {
	base := m.Alloc(uint64(n)*64, 64)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for i := 0; i < n; i++ {
		m.MustWrite64(base+uint64(perm[i])*64, base+uint64(perm[(i+1)%n])*64)
	}
	return base + uint64(perm[0])*64
}

// rig builds a fresh machine with nReq chase requests and nBatch compute
// tasks, returning the scheduler.
func rig(t *testing.T, policy Policy, nReq, nBatch int, batchIters int64) (*Scheduler, []*exec.Task) {
	t.Helper()
	prog := isa.MustAssemble(testImage)
	m := mem.NewMemory(4 << 20)
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, mem.MustNewHierarchy(tinyCaches()))
	ex := exec.New(core, exec.DefaultConfig())
	s := New(ex, policy)
	var reqs []*exec.Task
	for i := 0; i < nReq; i++ {
		ctx := coro.NewContext(i, prog.Symbols["chase"], m.Size()-uint64(i+1)*2048)
		ctx.Regs[1] = buildChain(m, 128, int64(i+1))
		ctx.Regs[3] = 150
		task := exec.NewTask(ctx, coro.Primary)
		s.Submit(task, Request)
		reqs = append(reqs, task)
	}
	for i := 0; i < nBatch; i++ {
		ctx := coro.NewContext(100+i, prog.Symbols["batch"], m.Size()-uint64(nReq+i+1)*2048)
		ctx.Regs[4] = uint64(batchIters)
		s.Submit(exec.NewTask(ctx, coro.Scavenger), Batch)
	}
	return s, reqs
}

func run(t *testing.T, policy Policy, nReq, nBatch int, batchIters int64) Stats {
	t.Helper()
	s, reqs := rig(t, policy, nReq, nBatch, batchIters)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if !r.Ctx.Halted {
			t.Fatalf("%v: request %d did not complete", policy, i)
		}
		if st.RequestLatencies[i] == 0 {
			t.Fatalf("%v: request %d latency not recorded", policy, i)
		}
	}
	return st
}

func TestPoliciesCompleteAllRequests(t *testing.T) {
	for _, p := range []Policy{Agnostic, Sidecar, EventAware} {
		st := run(t, p, 3, 2, 20000)
		if st.Cycles == 0 || st.MeanRequestLatency() == 0 {
			t.Errorf("%v: empty stats", p)
		}
	}
}

func TestSidecarBeatsAgnosticLatency(t *testing.T) {
	// Under the agnostic policy requests round-robin with batch work at
	// every yield; under sidecar they run FIFO with batch only filling
	// their miss shadows. Batch work is sized so the agnostic queueing
	// penalty is visible.
	agnostic := run(t, Agnostic, 2, 2, 30000)
	sidecar := run(t, Sidecar, 2, 2, 30000)
	if sidecar.MeanRequestLatency() >= agnostic.MeanRequestLatency() {
		t.Errorf("sidecar mean latency %.0f should beat agnostic %.0f",
			sidecar.MeanRequestLatency(), agnostic.MeanRequestLatency())
	}
}

func TestEventAwareCoSchedulesRequests(t *testing.T) {
	// With several requests queued and no batch work, sidecar leaves miss
	// shadows empty while event-aware fills them with pending requests.
	sidecar := run(t, Sidecar, 4, 0, 0)
	aware := run(t, EventAware, 4, 0, 0)
	if aware.Cycles >= sidecar.Cycles {
		t.Errorf("event-aware total %d should beat sidecar %d (requests hide each other)",
			aware.Cycles, sidecar.Cycles)
	}
	if aware.MeanRequestLatency() >= sidecar.MeanRequestLatency() {
		t.Errorf("event-aware mean latency %.0f should beat sidecar %.0f",
			aware.MeanRequestLatency(), sidecar.MeanRequestLatency())
	}
}

func TestSchedulerErrors(t *testing.T) {
	prog := isa.MustAssemble("halt")
	m := mem.NewMemory(1 << 16)
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, mem.MustNewHierarchy(tinyCaches()))
	s := New(exec.New(core, exec.DefaultConfig()), Sidecar)
	if _, err := s.Run(); err == nil {
		t.Error("no requests should error")
	}
	s2 := New(exec.New(core, exec.DefaultConfig()), Policy(99))
	s2.Submit(exec.NewTask(coro.NewContext(0, 0, m.Size()-8), coro.Primary), Request)
	if _, err := s2.Run(); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{Agnostic, Sidecar, EventAware, Policy(9)} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
}

// TestSchedulerMetricsReconcile: the registry's Sched section must agree
// exactly with the run's request accounting, for every policy.
func TestSchedulerMetricsReconcile(t *testing.T) {
	for _, policy := range []Policy{Agnostic, Sidecar, EventAware} {
		var reg metrics.Registry
		s, _ := rig(t, policy, 3, 2, 3000)
		s.ex.Cfg.Metrics = &reg
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if reg.Sched.Requests != uint64(len(st.RequestLatencies)) {
			t.Errorf("%v: Sched.Requests = %d, want %d", policy, reg.Sched.Requests, len(st.RequestLatencies))
		}
		if reg.Sched.BatchTasks != 2 {
			t.Errorf("%v: Sched.BatchTasks = %d, want 2", policy, reg.Sched.BatchTasks)
		}
		if reg.Sched.RequestLatency.Count != uint64(len(st.RequestLatencies)) {
			t.Errorf("%v: RequestLatency.Count = %d, want %d", policy, reg.Sched.RequestLatency.Count, len(st.RequestLatencies))
		}
		var sum uint64
		for _, l := range st.RequestLatencies {
			sum += l
		}
		if reg.Sched.RequestLatency.Sum != sum {
			t.Errorf("%v: RequestLatency.Sum = %d, want %d", policy, reg.Sched.RequestLatency.Sum, sum)
		}
	}
}

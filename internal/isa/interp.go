package isa

import "fmt"

// RefMemory is the memory interface the reference interpreter needs.
type RefMemory interface {
	Read64(addr uint64) (uint64, error)
	Write64(addr, v uint64) error
}

// RefState is the architectural state of the reference interpreter: a
// deliberately minimal, timing-free second implementation of the ISA
// semantics. The cycle-level core in internal/cpu is differentially
// tested against it — any divergence means one of the two interpreters
// mis-implements the ISA.
type RefState struct {
	Regs   [NumRegs]uint64
	PC     int
	Flags  int
	Halted bool
	Result uint64

	AccelPending bool
	AccelResult  uint64
}

// RefStep executes one instruction of prog against the state. Prefetches,
// yields and checks are functional no-ops (checks never trap here: the
// reference models the unsandboxed machine).
func RefStep(prog *Program, st *RefState, m RefMemory) error {
	if st.Halted {
		return fmt.Errorf("isa: reference stepping a halted state")
	}
	if st.PC < 0 || st.PC >= len(prog.Instrs) {
		return fmt.Errorf("isa: reference pc %d out of range", st.PC)
	}
	in := prog.Instrs[st.PC]
	next := st.PC + 1
	r := &st.Regs
	switch in.Op {
	case OpNop, OpPrefetch, OpYield, OpCYield, OpCheck:
	case OpAccel:
		v, err := AccelChecksum(m, r[in.Rs1]+uint64(in.Imm))
		if err != nil {
			return err
		}
		st.AccelResult = v
		st.AccelPending = true
	case OpAccWait:
		// Sticky completion record: reading with nothing outstanding
		// returns the last result (initially zero).
		r[in.Rd] = st.AccelResult
		st.AccelPending = false
	case OpMovI:
		r[in.Rd] = uint64(in.Imm)
	case OpMov:
		r[in.Rd] = r[in.Rs1]
	case OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case OpDiv:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] / r[in.Rs2]
		}
	case OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case OpShl:
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 63)
	case OpShr:
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 63)
	case OpAddI:
		r[in.Rd] = r[in.Rs1] + uint64(in.Imm)
	case OpMulI:
		r[in.Rd] = r[in.Rs1] * uint64(in.Imm)
	case OpAndI:
		r[in.Rd] = r[in.Rs1] & uint64(in.Imm)
	case OpShlI:
		r[in.Rd] = r[in.Rs1] << (uint64(in.Imm) & 63)
	case OpShrI:
		r[in.Rd] = r[in.Rs1] >> (uint64(in.Imm) & 63)
	case OpLoad:
		v, err := m.Read64(r[in.Rs1] + uint64(in.Imm))
		if err != nil {
			return err
		}
		r[in.Rd] = v
	case OpStore:
		if err := m.Write64(r[in.Rs1]+uint64(in.Imm), r[in.Rs2]); err != nil {
			return err
		}
	case OpCmp:
		st.Flags = refSign(int64(r[in.Rs1]), int64(r[in.Rs2]))
	case OpCmpI:
		st.Flags = refSign(int64(r[in.Rs1]), in.Imm)
	case OpJmp:
		next = in.Target()
	case OpJeq:
		if st.Flags == 0 {
			next = in.Target()
		}
	case OpJne:
		if st.Flags != 0 {
			next = in.Target()
		}
	case OpJlt:
		if st.Flags < 0 {
			next = in.Target()
		}
	case OpJle:
		if st.Flags <= 0 {
			next = in.Target()
		}
	case OpJgt:
		if st.Flags > 0 {
			next = in.Target()
		}
	case OpJge:
		if st.Flags >= 0 {
			next = in.Target()
		}
	case OpCall:
		sp := r[SP] - 8
		if err := m.Write64(sp, uint64(st.PC+1)); err != nil {
			return err
		}
		r[SP] = sp
		next = in.Target()
	case OpRet:
		ra, err := m.Read64(r[SP])
		if err != nil {
			return err
		}
		r[SP] += 8
		if ra >= uint64(len(prog.Instrs)) {
			return fmt.Errorf("isa: reference ret to %d", ra)
		}
		next = int(ra)
	case OpHalt:
		st.Halted = true
		st.Result = r[1]
	default:
		return fmt.Errorf("isa: reference: unimplemented opcode %v", in.Op)
	}
	st.PC = next
	return nil
}

// RefRun executes until halt or fuel exhaustion.
func RefRun(prog *Program, st *RefState, m RefMemory, fuel int) error {
	for i := 0; i < fuel; i++ {
		if st.Halted {
			return nil
		}
		if err := RefStep(prog, st, m); err != nil {
			return err
		}
	}
	if !st.Halted {
		return fmt.Errorf("isa: reference: fuel exhausted after %d steps", fuel)
	}
	return nil
}

// AccelChecksum is the accelerator's functional semantics: a weighted
// checksum of the 64-byte block containing addr. Both interpreters (the
// cycle-level core and this reference) share it.
func AccelChecksum(m RefMemory, addr uint64) (uint64, error) {
	base := addr &^ 63
	var sum uint64
	for i := uint64(0); i < 8; i++ {
		v, err := m.Read64(base + i*8)
		if err != nil {
			return 0, err
		}
		sum += v * (i + 1)
	}
	return sum, nil
}

func refSign(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

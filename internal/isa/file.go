package isa

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// imageFile is the on-disk representation of an Image. Instruction words
// are base64-encoded little-endian bytes (JSON numbers cannot carry full
// 64-bit precision).
type imageFile struct {
	Magic   string         `json:"magic"`
	Words   string         `json:"words"`
	Symbols map[string]int `json:"symbols,omitempty"`
}

const imageMagic = "softhide-image-v1"

// SaveImage writes an image in the tool-interchange format.
func SaveImage(w io.Writer, img *Image) error {
	buf := make([]byte, 8*len(img.Words))
	for i, word := range img.Words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	f := imageFile{
		Magic:   imageMagic,
		Words:   base64.StdEncoding.EncodeToString(buf),
		Symbols: img.Symbols,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadImage reads an image written by SaveImage and validates that it
// decodes to a well-formed program.
func LoadImage(r io.Reader) (*Image, error) {
	var f imageFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("isa: reading image: %w", err)
	}
	if f.Magic != imageMagic {
		return nil, fmt.Errorf("isa: bad image magic %q", f.Magic)
	}
	buf, err := base64.StdEncoding.DecodeString(f.Words)
	if err != nil {
		return nil, fmt.Errorf("isa: decoding image words: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("isa: image word bytes not a multiple of 8")
	}
	img := &Image{Words: make([]uint64, len(buf)/8), Symbols: f.Symbols}
	for i := range img.Words {
		img.Words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	if _, err := Decode(img); err != nil {
		return nil, fmt.Errorf("isa: image does not decode: %w", err)
	}
	return img, nil
}

package isa

import "testing"

// FuzzDecodeInstr: decoding any 64-bit word either fails cleanly or
// yields an instruction that re-encodes to the same word.
func FuzzDecodeInstr(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(EncodeInstr(Instr{Op: OpLoad, Rd: 1, Rs1: 2, Imm: -8}))
	f.Add(EncodeInstr(Instr{Op: OpYield, Imm: int64(AllRegs)}))
	f.Add(uint64(OpHalt) << 56)
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := DecodeInstr(w)
		if err != nil {
			return
		}
		if back := EncodeInstr(in); back != w {
			t.Fatalf("decode/encode not involutive: %#x -> %v -> %#x", w, in, back)
		}
	})
}

// FuzzAssemble: the assembler never panics, and anything it accepts
// validates, encodes, decodes and disassembles back to an equivalent
// program.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n  movi r1, 5\n  halt\n")
	f.Add(sampleAsm)
	f.Add("loop: load r1, [r1]\n jmp loop")
	f.Add("yield 0xffff\ncyield\nprefetch [sp-8]\ncheck [r0]")
	f.Add(": : :")
	f.Add("movi r1, 0x7fffffff\nstore [r1-4], r2")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("assembler accepted an invalid program: %v", err)
		}
		back, err := Decode(Encode(prog))
		if err != nil {
			t.Fatalf("accepted program does not round-trip: %v", err)
		}
		re, err := Assemble(Disassemble(back))
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v", err)
		}
		if len(re.Instrs) != len(prog.Instrs) {
			t.Fatalf("instruction count changed across round trip")
		}
		for i := range prog.Instrs {
			if re.Instrs[i] != prog.Instrs[i] {
				t.Fatalf("instruction %d changed: %v -> %v", i, prog.Instrs[i], re.Instrs[i])
			}
		}
	})
}

// FuzzRefInterp: the reference interpreter never panics on any decodable
// program, under bounded fuel and a bounds-checked memory.
func FuzzRefInterp(f *testing.F) {
	f.Add("main:\n  movi r1, 5\n  halt\n")
	f.Add("load r1, [r0]\nhalt")
	f.Add("call 0")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil || len(prog.Instrs) == 0 {
			return
		}
		st := &RefState{}
		st.Regs[SP] = 1 << 10
		m := &boundedMemory{size: 1 << 12, data: map[uint64]uint64{}}
		_ = RefRun(prog, st, m, 10000) // errors are fine; panics are not
	})
}

type boundedMemory struct {
	size uint64
	data map[uint64]uint64
}

func (m *boundedMemory) Read64(addr uint64) (uint64, error) {
	if addr < 8 || addr+8 > m.size {
		return 0, errFault
	}
	return m.data[addr], nil
}

func (m *boundedMemory) Write64(addr, v uint64) error {
	if addr < 8 || addr+8 > m.size {
		return errFault
	}
	m.data[addr] = v
	return nil
}

var errFault = fmtError("fault")

type fmtError string

func (e fmtError) Error() string { return string(e) }

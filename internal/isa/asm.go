package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates textual assembly into a Program.
//
// Syntax, one instruction per line:
//
//	; comment (also #)
//	label:
//	    movi  r1, 4096
//	    load  r2, [r1+8]
//	    store [r1], r2
//	    addi  r1, r1, 8
//	    cmpi  r2, 0
//	    jne   label
//	    call  fn
//	    prefetch [r2]
//	    yield            ; optional mask operand, defaults to all registers
//	    halt
//
// Immediates may be decimal or 0x-hex, and branch operands may be labels or
// absolute indices. Labels become entries in the program symbol table.
func Assemble(src string) (*Program, error) {
	type pending struct {
		instr int    // instruction index with unresolved target
		label string // label name
		line  int    // source line for diagnostics
	}
	p := &Program{Symbols: map[string]int{}}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := p.Symbols[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
			}
			p.Symbols[label] = len(p.Instrs)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", lineNo+1, mnemonic)
		}
		ops := splitOperands(rest)

		in := Instr{Op: op}
		var err error
		switch op.Kind() {
		case KindNop, KindRet, KindHalt:
			if len(ops) != 0 {
				err = fmt.Errorf("takes no operands")
			}
		case KindALU:
			err = parseALU(&in, ops)
		case KindLoad:
			if len(ops) != 2 {
				err = fmt.Errorf("expects rd, [rs+imm]")
				break
			}
			if in.Rd, err = parseReg(ops[0]); err != nil {
				break
			}
			in.Rs1, in.Imm, err = parseMem(ops[1])
		case KindStore:
			if len(ops) != 2 {
				err = fmt.Errorf("expects [rs+imm], rs2")
				break
			}
			if in.Rs1, in.Imm, err = parseMem(ops[0]); err != nil {
				break
			}
			in.Rs2, err = parseReg(ops[1])
		case KindPrefetch, KindCheck, KindAccel:
			if len(ops) != 1 {
				err = fmt.Errorf("expects [rs+imm]")
				break
			}
			in.Rs1, in.Imm, err = parseMem(ops[0])
		case KindAccWait:
			if len(ops) != 1 {
				err = fmt.Errorf("expects rd")
				break
			}
			in.Rd, err = parseReg(ops[0])
		case KindCmp:
			if len(ops) != 2 {
				err = fmt.Errorf("expects two operands")
				break
			}
			if in.Rs1, err = parseReg(ops[0]); err != nil {
				break
			}
			if op == OpCmp {
				in.Rs2, err = parseReg(ops[1])
			} else {
				in.Imm, err = parseImm(ops[1])
			}
		case KindBranch, KindCall:
			if len(ops) != 1 {
				err = fmt.Errorf("expects one target")
				break
			}
			if v, e := parseImm(ops[0]); e == nil {
				in.Imm = v
			} else if isIdent(ops[0]) {
				fixups = append(fixups, pending{len(p.Instrs), ops[0], lineNo + 1})
			} else {
				err = fmt.Errorf("bad target %q", ops[0])
			}
		case KindYield:
			switch len(ops) {
			case 0:
				in.Imm = int64(AllRegs)
			case 1:
				var v int64
				if v, err = parseImm(ops[0]); err == nil {
					in.Imm = v & 0xFFFF
				}
			default:
				err = fmt.Errorf("expects at most one mask operand")
			}
		}
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %s: %v", lineNo+1, mnemonic, err)
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		idx, ok := p.Symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instr].Imm = int64(idx)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for statically known
// sources such as the bundled workloads.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); int(op) < NumOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

func opByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return SP, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v >= 1<<31 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return v, nil
}

// parseMem parses "[rN]", "[rN+imm]" or "[rN-imm]".
func parseMem(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	imm, err := parseImm(strings.TrimSpace(string(inner[sep]) + strings.TrimSpace(inner[sep+1:])))
	if err != nil {
		return 0, 0, err
	}
	return r, imm, nil
}

func parseALU(in *Instr, ops []string) error {
	info := opTable[in.Op]
	want := 1
	if info.hasRs1 {
		want++
	}
	if info.hasRs2 || info.hasImm {
		want++
	}
	// mov rd, rs has rd+rs1 only => want==2; movi rd, imm => rd+imm.
	if in.Op == OpMov {
		want = 2
	}
	if in.Op == OpMovI {
		want = 2
	}
	if len(ops) != want {
		return fmt.Errorf("expects %d operands, got %d", want, len(ops))
	}
	var err error
	if in.Rd, err = parseReg(ops[0]); err != nil {
		return err
	}
	i := 1
	if info.hasRs1 {
		if in.Rs1, err = parseReg(ops[i]); err != nil {
			return err
		}
		i++
	}
	if info.hasRs2 {
		if in.Rs2, err = parseReg(ops[i]); err != nil {
			return err
		}
	} else if info.hasImm {
		if in.Imm, err = parseImm(ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Disassemble renders a program back to assembly text with synthesized
// labels at branch targets. The output re-assembles to an identical
// program, which the tests verify.
func Disassemble(p *Program) string {
	// Collect branch-target labels, preferring symbol-table names.
	labels := map[int]string{}
	for name, idx := range p.Symbols {
		if idx >= 0 && idx <= len(p.Instrs) {
			if old, ok := labels[idx]; !ok || name < old {
				labels[idx] = name
			}
		}
	}
	for _, in := range p.Instrs {
		if in.Op.IsBranch() {
			t := in.Target()
			if _, ok := labels[t]; !ok {
				labels[t] = fmt.Sprintf("L%d", t)
			}
		}
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		if lbl, ok := labels[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		if in.Op.IsBranch() {
			fmt.Fprintf(&b, "    %s %s\n", in.Op, labels[in.Target()])
			continue
		}
		fmt.Fprintf(&b, "    %s\n", instrText(in))
	}
	if lbl, ok := labels[len(p.Instrs)]; ok {
		fmt.Fprintf(&b, "%s:\n", lbl)
	}
	return b.String()
}

// instrText renders an instruction in re-assemblable form (String() uses a
// friendlier but asymmetric format for yields).
func instrText(in Instr) string {
	if in.Op.IsYield() {
		return fmt.Sprintf("%s 0x%04x", in.Op, uint16(in.Imm))
	}
	if in.Op == OpMovI {
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	}
	if in.Op == OpMov {
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	}
	return in.String()
}

package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadImageRoundTrip(t *testing.T) {
	img := Encode(MustAssemble(sampleAsm))
	var buf bytes.Buffer
	if err := SaveImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Words) != len(img.Words) {
		t.Fatalf("word count %d != %d", len(got.Words), len(img.Words))
	}
	for i := range img.Words {
		if got.Words[i] != img.Words[i] {
			t.Fatalf("word %d: %#x != %#x", i, got.Words[i], img.Words[i])
		}
	}
	if got.Symbols["loop"] != img.Symbols["loop"] {
		t.Error("symbols lost")
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json at all",
		`{"magic":"wrong","words":""}`,
		`{"magic":"softhide-image-v1","words":"!!!notbase64"}`,
		`{"magic":"softhide-image-v1","words":"AAAA"}`, // 3 bytes, not multiple of 8
	}
	for _, c := range cases {
		if _, err := LoadImage(strings.NewReader(c)); err == nil {
			t.Errorf("LoadImage(%q) should fail", c)
		}
	}
	// Structurally valid JSON whose words do not decode to a program
	// (branch out of range).
	bad := Encode(&Program{Instrs: []Instr{{Op: OpHalt}}})
	bad.Words[0] = EncodeInstr(Instr{Op: OpJmp, Imm: 99})
	var buf bytes.Buffer
	if err := SaveImage(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImage(&buf); err == nil {
		t.Error("invalid program should fail validation on load")
	}
}

func TestReferenceInterpreterBasics(t *testing.T) {
	prog := MustAssemble(`
        movi r1, 6
        movi r2, 7
        mul r1, r1, r2
        halt
    `)
	st := &RefState{}
	st.Regs[SP] = 1 << 12
	m := &mapMemory{data: map[uint64]uint64{}}
	if err := RefRun(prog, st, m, 100); err != nil {
		t.Fatal(err)
	}
	if st.Result != 42 {
		t.Errorf("result = %d", st.Result)
	}
	if err := RefStep(prog, st, m); err == nil {
		t.Error("stepping halted state should fail")
	}
}

func TestReferenceInterpreterFuel(t *testing.T) {
	prog := MustAssemble("spin:\n jmp spin")
	st := &RefState{}
	if err := RefRun(prog, st, &mapMemory{data: map[uint64]uint64{}}, 100); err == nil {
		t.Error("fuel exhaustion should error")
	}
}

// mapMemory is a trivial RefMemory for interpreter unit tests.
type mapMemory struct{ data map[uint64]uint64 }

func (m *mapMemory) Read64(addr uint64) (uint64, error) { return m.data[addr], nil }
func (m *mapMemory) Write64(addr, v uint64) error       { m.data[addr] = v; return nil }

// TestReferenceInterpreterAllOps drives every opcode class through the
// reference interpreter directly (the cross-package differential tests
// cover it too, but this keeps the semantics pinned at unit level).
func TestReferenceInterpreterAllOps(t *testing.T) {
	prog := MustAssemble(`
        movi r1, 7          ; alu
        mov  r2, r1
        add  r3, r1, r2     ; 14
        sub  r3, r3, r1     ; 7
        mul  r3, r3, r2     ; 49
        movi r4, 0
        div  r5, r3, r4     ; 0 (div by zero)
        div  r5, r3, r2     ; 7
        and  r6, r3, r2
        or   r6, r6, r1
        xor  r6, r6, r6     ; 0
        movi r7, 1
        shl  r7, r7, r2     ; 1<<7
        shr  r7, r7, r2     ; 1
        addi r7, r7, 4
        muli r7, r7, 3      ; 15
        andi r7, r7, 12     ; 12
        shli r7, r7, 1      ; 24
        shri r7, r7, 2      ; 6
        movi r8, 512
        store [r8], r7
        load r9, [r8]       ; 6
        prefetch [r8]
        check [r8+8]
        yield
        cyield
        nop
        accel [r8]
        accwait r10
        cmp r9, r7
        jeq eq1
        halt
    eq1:
        cmpi r9, 100
        jlt lt1
        halt
    lt1:
        cmpi r9, 6
        jle le1
        halt
    le1:
        cmpi r9, 5
        jgt gt1
        halt
    gt1:
        cmpi r9, 6
        jge ge1
        halt
    ge1:
        cmpi r9, 0
        jne ne1
        halt
    ne1:
        jmp fin
        halt
    fin:
        call fn
        add r1, r9, r11
        halt
    fn:
        movi r11, 100
        ret
    `)
	m := &mapMemory{data: map[uint64]uint64{}}
	st := &RefState{}
	st.Regs[SP] = 1 << 11
	if err := RefRun(prog, st, m, 10000); err != nil {
		t.Fatal(err)
	}
	if st.Result != 106 {
		t.Fatalf("result = %d, want 106", st.Result)
	}
	if st.Regs[10] == 0 {
		t.Error("accwait result missing")
	}
}

func TestReferenceInterpreterErrors(t *testing.T) {
	m := &mapMemory{data: map[uint64]uint64{}}
	// Bad PC.
	st := &RefState{PC: 99}
	if err := RefStep(MustAssemble("halt"), st, m); err == nil {
		t.Error("bad pc accepted")
	}
	// Bare accwait reads the sticky (zero) record without error.
	st = &RefState{}
	if err := RefStep(MustAssemble("accwait r1\nhalt"), st, m); err != nil {
		t.Errorf("bare accwait should be benign: %v", err)
	}
	// Ret to invalid address.
	st = &RefState{}
	st.Regs[SP] = 64
	m.data[64] = 9999
	if err := RefStep(MustAssemble("ret"), st, m); err == nil {
		t.Error("ret to junk accepted")
	}
	// Faulting memory.
	bm := &boundedMemory{size: 16, data: map[uint64]uint64{}}
	st = &RefState{}
	if err := RefStep(MustAssemble("load r1, [r2+4096]\nhalt"), st, bm); err == nil {
		t.Error("faulting load accepted")
	}
	st = &RefState{}
	if err := RefStep(MustAssemble("store [r2+4096], r1\nhalt"), st, bm); err == nil {
		t.Error("faulting store accepted")
	}
	st = &RefState{}
	if err := RefStep(MustAssemble("accel [r2+4096]\nhalt"), st, bm); err == nil {
		t.Error("faulting accel accepted")
	}
	// Call pushing outside memory.
	st = &RefState{}
	st.Regs[SP] = 12
	if err := RefStep(MustAssemble("call f\nf: ret"), st, bm); err == nil {
		t.Error("faulting call accepted")
	}
}

func TestMustDecodeAndMustAssemblePanic(t *testing.T) {
	img := Encode(MustAssemble("halt"))
	if MustDecode(img) == nil {
		t.Fatal("MustDecode returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDecode of garbage should panic")
		}
	}()
	MustDecode(&Image{Words: []uint64{uint64(200) << 56}})
}

func TestInstrString(t *testing.T) {
	cases := []Instr{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpMovI, Rd: 1, Imm: -5},
		{Op: OpMov, Rd: 1, Rs1: 2},
		{Op: OpLoad, Rd: 1, Rs1: 2, Imm: 8},
		{Op: OpStore, Rs1: 2, Rs2: 3, Imm: -8},
		{Op: OpPrefetch, Rs1: 4},
		{Op: OpCheck, Rs1: 4, Imm: 16},
		{Op: OpAccel, Rs1: 4},
		{Op: OpAccWait, Rd: 5},
		{Op: OpCmp, Rs1: 1, Rs2: 2},
		{Op: OpCmpI, Rs1: 1, Imm: 3},
		{Op: OpJmp, Imm: 0},
		{Op: OpCall, Imm: 0},
		{Op: OpYield, Imm: int64(AllRegs)},
		{Op: OpCYield, Imm: 3},
		{Op: OpRet},
		{Op: OpHalt},
		{Op: OpNop},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String for %v op", in.Op)
		}
	}
	if Op(250).String() == "" || Op(250).Kind() != KindNop {
		t.Error("invalid op rendering wrong")
	}
}

package isa

import "fmt"

// Binary encoding: each instruction packs into one 64-bit word.
//
//	bits 63..56  opcode
//	bits 55..52  rd
//	bits 51..48  rs1
//	bits 47..44  rs2
//	bits 43..32  reserved (must be zero)
//	bits 31..0   immediate (two's-complement)
//
// The instrumentation pipeline operates on this representation: an image is
// decoded, rewritten and re-encoded, with branch-target relocation applied
// during rewriting, exactly as a post-link binary optimizer would.

const (
	shiftOp  = 56
	shiftRd  = 52
	shiftRs1 = 48
	shiftRs2 = 44
)

// EncodeInstr packs a single instruction into its 64-bit word.
func EncodeInstr(in Instr) uint64 {
	w := uint64(in.Op) << shiftOp
	w |= uint64(in.Rd&0xF) << shiftRd
	w |= uint64(in.Rs1&0xF) << shiftRs1
	w |= uint64(in.Rs2&0xF) << shiftRs2
	w |= uint64(uint32(int32(in.Imm)))
	return w
}

// DecodeInstr unpacks a 64-bit word into an instruction. It fails on
// undefined opcodes or nonzero reserved bits.
func DecodeInstr(w uint64) (Instr, error) {
	op := Op(w >> shiftOp)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: undefined opcode %d in word %#016x", uint8(op), w)
	}
	if (w>>32)&0xFFF != 0 {
		return Instr{}, fmt.Errorf("isa: reserved bits set in word %#016x", w)
	}
	return Instr{
		Op:  op,
		Rd:  Reg((w >> shiftRd) & 0xF),
		Rs1: Reg((w >> shiftRs1) & 0xF),
		Rs2: Reg((w >> shiftRs2) & 0xF),
		Imm: int64(int32(uint32(w))),
	}, nil
}

// Image is an encoded program: the binary artifact the profiler runs and
// the instrumenter rewrites. Symbols survive encoding so that reports can
// name functions, but execution and rewriting never need them.
type Image struct {
	Words   []uint64
	Symbols map[string]int
}

// Encode converts a program into its binary image.
func Encode(p *Program) *Image {
	img := &Image{Words: make([]uint64, len(p.Instrs))}
	for i, in := range p.Instrs {
		img.Words[i] = EncodeInstr(in)
	}
	if p.Symbols != nil {
		img.Symbols = make(map[string]int, len(p.Symbols))
		for k, v := range p.Symbols {
			img.Symbols[k] = v
		}
	}
	return img
}

// Decode converts a binary image back into a program, validating every
// word and every branch target.
func Decode(img *Image) (*Program, error) {
	p := &Program{Instrs: make([]Instr, len(img.Words))}
	for i, w := range img.Words {
		in, err := DecodeInstr(w)
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i, err)
		}
		p.Instrs[i] = in
	}
	if img.Symbols != nil {
		p.Symbols = make(map[string]int, len(img.Symbols))
		for k, v := range img.Symbols {
			p.Symbols[k] = v
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustDecode is Decode for images known to be well-formed (e.g. produced by
// Encode in the same process); it panics on error.
func MustDecode(img *Image) *Program {
	p, err := Decode(img)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of instructions in the image.
func (img *Image) Len() int { return len(img.Words) }

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	c := &Image{Words: make([]uint64, len(img.Words))}
	copy(c.Words, img.Words)
	if img.Symbols != nil {
		c.Symbols = make(map[string]int, len(img.Symbols))
		for k, v := range img.Symbols {
			c.Symbols[k] = v
		}
	}
	return c
}

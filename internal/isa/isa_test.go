package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegMask(t *testing.T) {
	var m RegMask
	if m.Count() != 0 {
		t.Fatalf("empty mask count = %d", m.Count())
	}
	m = m.With(0).With(3).With(15)
	for _, r := range []Reg{0, 3, 15} {
		if !m.Has(r) {
			t.Errorf("mask should contain r%d", r)
		}
	}
	if m.Has(1) {
		t.Error("mask should not contain r1")
	}
	if got := m.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	m = m.Without(3)
	if m.Has(3) || m.Count() != 2 {
		t.Errorf("Without(3) failed: %v", m)
	}
	if AllRegs.Count() != NumRegs {
		t.Errorf("AllRegs.Count = %d", AllRegs.Count())
	}
}

func TestOpMetadata(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
	}
	if Op(200).Valid() {
		t.Error("op 200 should be invalid")
	}
	if !OpJeq.IsConditional() || OpJmp.IsConditional() {
		t.Error("conditional classification wrong")
	}
	if !OpJmp.Terminates() || OpJeq.Terminates() {
		t.Error("terminates classification wrong")
	}
	if !OpCall.IsBranch() || OpRet.IsBranch() {
		t.Error("branch classification wrong")
	}
	if !OpYield.IsYield() || !OpCYield.IsYield() || OpNop.IsYield() {
		t.Error("yield classification wrong")
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		in   Instr
		uses RegMask
		defs RegMask
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, RegMask(0).With(2).With(3), RegMask(0).With(1)},
		{Instr{Op: OpMovI, Rd: 4, Imm: 7}, 0, RegMask(0).With(4)},
		{Instr{Op: OpLoad, Rd: 1, Rs1: 2}, RegMask(0).With(2), RegMask(0).With(1)},
		{Instr{Op: OpStore, Rs1: 2, Rs2: 3}, RegMask(0).With(2).With(3), 0},
		{Instr{Op: OpHalt}, RegMask(0).With(1), 0},
		{Instr{Op: OpRet}, RegMask(0).With(1).With(SP), 0},
		{Instr{Op: OpCall}, RegMask(0).With(1).With(2).With(3).With(SP), AllRegs.Without(SP)},
		{Instr{Op: OpYield, Imm: int64(AllRegs)}, 0, 0},
		{Instr{Op: OpPrefetch, Rs1: 5}, RegMask(0).With(5), 0},
		{Instr{Op: OpCheck, Rs1: 6}, RegMask(0).With(6), 0},
		{Instr{Op: OpCmpI, Rs1: 7, Imm: 1}, RegMask(0).With(7), 0},
	}
	for _, c := range cases {
		if got := c.in.Uses(); got != c.uses {
			t.Errorf("%s: Uses = %v, want %v", c.in, got, c.uses)
		}
		if got := c.in.Defs(); got != c.defs {
			t.Errorf("%s: Defs = %v, want %v", c.in, got, c.defs)
		}
	}
}

// randInstr generates a structurally valid instruction with branch targets
// inside [0, progLen).
func randInstr(rng *rand.Rand, progLen int) Instr {
	op := Op(rng.Intn(NumOps))
	info := opTable[op]
	in := Instr{Op: op}
	if info.hasRd {
		in.Rd = Reg(rng.Intn(NumRegs))
	}
	if info.hasRs1 {
		in.Rs1 = Reg(rng.Intn(NumRegs))
	}
	if info.hasRs2 {
		in.Rs2 = Reg(rng.Intn(NumRegs))
	}
	switch {
	case op.IsBranch():
		in.Imm = int64(rng.Intn(progLen))
	case op.IsYield():
		in.Imm = int64(uint16(rng.Uint32()))
	case info.hasImm:
		in.Imm = int64(int32(rng.Uint32()))
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		p := &Program{}
		for i := 0; i < n; i++ {
			p.Instrs = append(p.Instrs, randInstr(rng, n))
		}
		img := Encode(p)
		q, err := Decode(img)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				t.Fatalf("trial %d: instruction %d: %v != %v", trial, i, p.Instrs[i], q.Instrs[i])
			}
		}
	}
}

func TestEncodeDecodeSingleQuick(t *testing.T) {
	// Property: any instruction with a 32-bit immediate round-trips through
	// the word encoding.
	f := func(op8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{
			Op:  Op(int(op8) % NumOps),
			Rd:  Reg(rd % NumRegs),
			Rs1: Reg(rs1 % NumRegs),
			Rs2: Reg(rs2 % NumRegs),
			Imm: int64(imm),
		}
		out, err := DecodeInstr(EncodeInstr(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	if _, err := DecodeInstr(uint64(200) << shiftOp); err == nil {
		t.Error("undefined opcode should fail")
	}
	w := EncodeInstr(Instr{Op: OpAdd}) | (1 << 40) // reserved bit
	if _, err := DecodeInstr(w); err == nil {
		t.Error("reserved bits should fail")
	}
	img := &Image{Words: []uint64{EncodeInstr(Instr{Op: OpJmp, Imm: 99})}}
	if _, err := Decode(img); err == nil {
		t.Error("out-of-range branch target should fail decode validation")
	}
}

func TestValidate(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpJmp, Imm: 1}, {Op: OpHalt}}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	p = &Program{Instrs: []Instr{{Op: OpJmp, Imm: -1}}}
	if err := p.Validate(); err == nil {
		t.Error("negative branch target accepted")
	}
	p = &Program{Instrs: []Instr{{Op: Op(250)}}}
	if err := p.Validate(); err == nil {
		t.Error("invalid opcode accepted")
	}
}

const sampleAsm = `
; pointer-chase kernel
main:
    movi r2, 0          ; accumulator
    movi r3, 100        ; iterations
loop:
    load r1, [r1+0]     ; follow next pointer
    addi r2, r2, 1
    addi r3, r3, -1
    cmpi r3, 0
    jgt  loop
    mov  r1, r2
    halt
`

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 9 {
		t.Fatalf("got %d instructions, want 9", len(p.Instrs))
	}
	if p.Symbols["main"] != 0 || p.Symbols["loop"] != 2 {
		t.Fatalf("symbols wrong: %v", p.Symbols)
	}
	jgt := p.Instrs[6]
	if jgt.Op != OpJgt || jgt.Target() != 2 {
		t.Fatalf("jgt resolved wrong: %v", jgt)
	}
	ld := p.Instrs[2]
	if ld.Op != OpLoad || ld.Rd != 1 || ld.Rs1 != 1 || ld.Imm != 0 {
		t.Fatalf("load parsed wrong: %v", ld)
	}
}

func TestAssembleOperandForms(t *testing.T) {
	p, err := Assemble(`
        movi r1, 0x40
        movi r2, -8
        load r3, [sp-16]
        store [r1+24], r2
        prefetch [r3]
        check [r3+8]
        yield 0x00ff
        yield
        cyield 0x3
        add r4, r1, r2
        shli r5, r4, 3
        cmp r1, r2
        jmp 0
    `)
	if err != nil {
		t.Fatal(err)
	}
	ins := p.Instrs
	if ins[0].Imm != 0x40 || ins[1].Imm != -8 {
		t.Errorf("immediates wrong: %v %v", ins[0], ins[1])
	}
	if ins[2].Rs1 != SP || ins[2].Imm != -16 {
		t.Errorf("sp-relative load wrong: %v", ins[2])
	}
	if ins[4].Rs1 != 3 || ins[4].Imm != 0 {
		t.Errorf("bare memory operand wrong: %v", ins[4])
	}
	if ins[6].LiveMask() != 0x00ff {
		t.Errorf("yield mask = %v", ins[6].LiveMask())
	}
	if ins[7].LiveMask() != AllRegs {
		t.Errorf("default yield mask = %v", ins[7].LiveMask())
	}
	if ins[8].Op != OpCYield || ins[8].LiveMask() != 0x3 {
		t.Errorf("cyield wrong: %v", ins[8])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",
		"movi r99, 1",
		"jmp nowhere",
		"load r1, r2",
		"halt r1",
		"dup: nop\ndup: nop",
		"movi r1, 99999999999999",
		"yield 1, 2",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble(sampleAsm)
	text := Disassemble(p)
	q, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembling disassembly failed: %v\n%s", err, text)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("length mismatch: %d != %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != q.Instrs[i] {
			t.Errorf("instruction %d: %v != %v", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestDisassembleRoundTripRandomPrograms(t *testing.T) {
	// Property: disassembly of any valid program re-assembles to the same
	// instruction sequence. Generates structured random programs (no
	// symbols; labels are synthesized).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		p := &Program{}
		for i := 0; i < n; i++ {
			in := randInstr(rng, n)
			// Keep immediates in a printable range for non-branches.
			if !in.Op.IsBranch() && !in.Op.IsYield() && opTable[in.Op].hasImm {
				in.Imm = int64(rng.Intn(1<<16) - 1<<15)
			}
			p.Instrs = append(p.Instrs, in)
		}
		text := Disassemble(p)
		q, err := Assemble(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				t.Fatalf("trial %d instr %d: %v != %v\n%s", trial, i, p.Instrs[i], q.Instrs[i], text)
			}
		}
	}
}

func TestProgramClone(t *testing.T) {
	p := MustAssemble(sampleAsm)
	q := p.Clone()
	q.Instrs[0].Imm = 999
	q.Symbols["main"] = 5
	if p.Instrs[0].Imm == 999 || p.Symbols["main"] == 5 {
		t.Error("Clone aliases the original")
	}
}

func TestImageClone(t *testing.T) {
	img := Encode(MustAssemble(sampleAsm))
	c := img.Clone()
	c.Words[0] = 0
	c.Symbols["main"] = 7
	if img.Words[0] == 0 || img.Symbols["main"] == 7 {
		t.Error("Clone aliases the original")
	}
	if img.Len() != 9 {
		t.Errorf("Len = %d", img.Len())
	}
}

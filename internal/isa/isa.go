// Package isa defines the virtual instruction set that the softhide
// simulator executes and the profile-guided instrumentation pipeline
// rewrites.
//
// The ISA is a small, word-encoded, in-order RISC: 16 general-purpose
// 64-bit registers, implicit flags set by compare instructions, absolute
// branch targets expressed as instruction indices, and four instructions
// that exist purely for the paper's mechanism — PREFETCH (start an
// asynchronous cache fill), YIELD (a primary-phase yield inserted before a
// likely cache miss), CYIELD (a conditional scavenger-phase yield that only
// fires for coroutines running in scavenger mode) and CHECK (an SFI guard).
//
// Instructions carry a 32-bit immediate. For YIELD and CYIELD the low 16
// bits of the immediate hold the live-register mask computed by the
// instrumentation pipeline: only those registers are saved across the
// switch, and the runtime deliberately poisons every other register when
// the coroutine resumes, so an unsound liveness analysis breaks programs
// instead of silently costing cycles.
package isa

import "fmt"

// Reg identifies one of the 16 general-purpose registers R0..R15.
//
// Calling convention used by all bundled workloads and assumed by the
// liveness analysis:
//
//   - R1..R3 carry arguments into CALL and R1 carries the result out of RET.
//   - Every register except SP is caller-saved: a CALL may clobber R0..R14.
//   - R15 is the stack pointer (SP) and is always preserved and always live.
//   - HALT reports the value of R1 as the program result.
type Reg uint8

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// SP is the stack-pointer register.
const SP Reg = 15

// RegMask is a bitmask over the 16 registers, bit i covering Ri. It is the
// payload of YIELD/CYIELD immediates.
type RegMask uint16

// AllRegs is the mask covering every register (a full context save).
const AllRegs RegMask = 0xFFFF

// Has reports whether the mask includes register r.
func (m RegMask) Has(r Reg) bool { return m&(1<<uint(r)) != 0 }

// With returns the mask with register r added.
func (m RegMask) With(r Reg) RegMask { return m | 1<<uint(r) }

// Without returns the mask with register r removed.
func (m RegMask) Without(r Reg) RegMask { return m &^ (1 << uint(r)) }

// Count returns the number of registers in the mask.
func (m RegMask) Count() int {
	n := 0
	for v := uint16(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

func (m RegMask) String() string {
	if m == AllRegs {
		return "{all}"
	}
	s := "{"
	first := true
	for r := Reg(0); r < NumRegs; r++ {
		if m.Has(r) {
			if !first {
				s += ","
			}
			s += fmt.Sprintf("r%d", r)
			first = false
		}
	}
	return s + "}"
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The zero value is NOP so that zeroed memory decodes to a benign
// instruction.
const (
	OpNop Op = iota

	// Data movement.
	OpMovI // rd = signext(imm)
	OpMov  // rd = rs1

	// Three-register ALU: rd = rs1 <op> rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv // rd = rs1 / rs2 (rs2==0 yields 0, matching saturating hardware)
	OpAnd
	OpOr
	OpXor
	OpShl // rd = rs1 << (rs2 & 63)
	OpShr // rd = rs1 >> (rs2 & 63), logical

	// Register-immediate ALU: rd = rs1 <op> signext(imm).
	OpAddI
	OpMulI
	OpAndI
	OpShlI
	OpShrI

	// Memory. Addresses are rs1 + signext(imm); accesses are 8 bytes.
	OpLoad  // rd = mem[rs1+imm]
	OpStore // mem[rs1+imm] = rs2

	// Compare: set flags from rs1 - rhs (signed).
	OpCmp  // flags = cmp(rs1, rs2)
	OpCmpI // flags = cmp(rs1, signext(imm))

	// Control flow. Targets are absolute instruction indices in imm.
	OpJmp
	OpJeq
	OpJne
	OpJlt
	OpJle
	OpJgt
	OpJge
	OpCall // push return index, jump to imm
	OpRet  // pop return index

	// Event-hiding mechanism.
	OpPrefetch // start async fill of the line at rs1+imm
	OpYield    // primary yield; imm low 16 bits = live-register mask
	OpCYield   // conditional scavenger yield; imm low 16 bits = live mask

	// SFI guard: trap unless rs1+imm lies inside the sandbox region
	// configured on the executing core.
	OpCheck

	// Onboard accelerator (paper §1: "operations with onboard
	// accelerators", e.g. Intel DSA): ACCEL submits an asynchronous
	// operation over the 64-byte block at rs1+imm; ACCWAIT collects the
	// result into rd, stalling until the operation completes. At most one
	// operation is outstanding per coroutine; like a DSA completion
	// record the result is sticky, so an ACCWAIT with nothing outstanding
	// reads the previous record (initially zero) without stalling.
	OpAccel
	OpAccWait

	OpHalt // stop; R1 is the program result

	numOps // sentinel, keep last
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Kind classifies opcodes for analyses and the simulator.
type Kind uint8

// Operand/behaviour classes.
const (
	KindNop Kind = iota
	KindALU
	KindLoad
	KindStore
	KindCmp
	KindBranch // conditional or unconditional jump
	KindCall
	KindRet
	KindPrefetch
	KindYield
	KindCheck
	KindAccel
	KindAccWait
	KindHalt
)

type opInfo struct {
	name string
	kind Kind
	// operand presence, used by the assembler/disassembler
	hasRd, hasRs1, hasRs2, hasImm bool
}

var opTable = [NumOps]opInfo{
	OpNop:      {"nop", KindNop, false, false, false, false},
	OpMovI:     {"movi", KindALU, true, false, false, true},
	OpMov:      {"mov", KindALU, true, true, false, false},
	OpAdd:      {"add", KindALU, true, true, true, false},
	OpSub:      {"sub", KindALU, true, true, true, false},
	OpMul:      {"mul", KindALU, true, true, true, false},
	OpDiv:      {"div", KindALU, true, true, true, false},
	OpAnd:      {"and", KindALU, true, true, true, false},
	OpOr:       {"or", KindALU, true, true, true, false},
	OpXor:      {"xor", KindALU, true, true, true, false},
	OpShl:      {"shl", KindALU, true, true, true, false},
	OpShr:      {"shr", KindALU, true, true, true, false},
	OpAddI:     {"addi", KindALU, true, true, false, true},
	OpMulI:     {"muli", KindALU, true, true, false, true},
	OpAndI:     {"andi", KindALU, true, true, false, true},
	OpShlI:     {"shli", KindALU, true, true, false, true},
	OpShrI:     {"shri", KindALU, true, true, false, true},
	OpLoad:     {"load", KindLoad, true, true, false, true},
	OpStore:    {"store", KindStore, false, true, true, true},
	OpCmp:      {"cmp", KindCmp, false, true, true, false},
	OpCmpI:     {"cmpi", KindCmp, false, true, false, true},
	OpJmp:      {"jmp", KindBranch, false, false, false, true},
	OpJeq:      {"jeq", KindBranch, false, false, false, true},
	OpJne:      {"jne", KindBranch, false, false, false, true},
	OpJlt:      {"jlt", KindBranch, false, false, false, true},
	OpJle:      {"jle", KindBranch, false, false, false, true},
	OpJgt:      {"jgt", KindBranch, false, false, false, true},
	OpJge:      {"jge", KindBranch, false, false, false, true},
	OpCall:     {"call", KindCall, false, false, false, true},
	OpRet:      {"ret", KindRet, false, false, false, false},
	OpPrefetch: {"prefetch", KindPrefetch, false, true, false, true},
	OpYield:    {"yield", KindYield, false, false, false, true},
	OpCYield:   {"cyield", KindYield, false, false, false, true},
	OpCheck:    {"check", KindCheck, false, true, false, true},
	OpAccel:    {"accel", KindAccel, false, true, false, true},
	OpAccWait:  {"accwait", KindAccWait, true, false, false, false},
	OpHalt:     {"halt", KindHalt, false, false, false, false},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return int(op) < NumOps }

// Kind returns the behaviour class of op.
func (op Op) Kind() Kind {
	if !op.Valid() {
		return KindNop
	}
	return opTable[op].kind
}

// String returns the assembler mnemonic.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// IsBranch reports whether op transfers control via its immediate
// (conditional/unconditional jumps and calls). RET transfers control too
// but through the stack, not the immediate.
func (op Op) IsBranch() bool {
	k := op.Kind()
	return k == KindBranch || k == KindCall
}

// IsConditional reports whether op is a conditional branch.
func (op Op) IsConditional() bool {
	switch op {
	case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
		return true
	}
	return false
}

// IsYield reports whether op is YIELD or CYIELD.
func (op Op) IsYield() bool { return op == OpYield || op == OpCYield }

// Terminates reports whether control never falls through to the next
// instruction (unconditional jump, return, halt).
func (op Op) Terminates() bool {
	return op == OpJmp || op == OpRet || op == OpHalt
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	// Imm is the 32-bit immediate, sign-extended. For branches and calls
	// it is the absolute target instruction index; for YIELD/CYIELD its
	// low 16 bits are the live-register mask.
	Imm int64
}

// Target returns the branch target index for branch/call instructions.
func (in Instr) Target() int { return int(in.Imm) }

// LiveMask returns the live-register mask of a YIELD/CYIELD.
func (in Instr) LiveMask() RegMask { return RegMask(uint16(in.Imm)) }

// Uses returns the mask of registers read by the instruction, per the
// calling convention documented on Reg.
func (in Instr) Uses() RegMask {
	var m RegMask
	switch in.Op.Kind() {
	case KindALU:
		if opTable[in.Op].hasRs1 {
			m = m.With(in.Rs1)
		}
		if opTable[in.Op].hasRs2 {
			m = m.With(in.Rs2)
		}
	case KindLoad, KindPrefetch, KindCheck, KindAccel:
		m = m.With(in.Rs1)
	case KindStore:
		m = m.With(in.Rs1).With(in.Rs2)
	case KindCmp:
		m = m.With(in.Rs1)
		if in.Op == OpCmp {
			m = m.With(in.Rs2)
		}
	case KindCall:
		// Arguments travel in R1..R3; the call also reads SP to push the
		// return address.
		m = m.With(1).With(2).With(3).With(SP)
	case KindRet:
		// RET reads the result register and SP to pop.
		m = m.With(1).With(SP)
	case KindHalt:
		// HALT reports R1 as the program result.
		m = m.With(1)
	}
	return m
}

// Defs returns the mask of registers written by the instruction.
func (in Instr) Defs() RegMask {
	var m RegMask
	switch in.Op.Kind() {
	case KindALU, KindLoad, KindAccWait:
		m = m.With(in.Rd)
	case KindCall:
		// Everything except SP is caller-saved: the callee may clobber
		// R0..R14. SP is adjusted but restored by the matching RET; we
		// model it as both used and preserved.
		m = AllRegs.Without(SP)
	}
	return m
}

func (in Instr) String() string {
	info := opTable[in.Op]
	s := info.name
	switch in.Op.Kind() {
	case KindALU:
		switch {
		case info.hasRs2:
			s += fmt.Sprintf(" r%d, r%d, r%d", in.Rd, in.Rs1, in.Rs2)
		case info.hasRs1 && info.hasImm:
			s += fmt.Sprintf(" r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
		case info.hasRs1:
			s += fmt.Sprintf(" r%d, r%d", in.Rd, in.Rs1)
		default:
			s += fmt.Sprintf(" r%d, %d", in.Rd, in.Imm)
		}
	case KindLoad:
		s += fmt.Sprintf(" r%d, [r%d%+d]", in.Rd, in.Rs1, in.Imm)
	case KindStore:
		s += fmt.Sprintf(" [r%d%+d], r%d", in.Rs1, in.Imm, in.Rs2)
	case KindPrefetch, KindCheck, KindAccel:
		s += fmt.Sprintf(" [r%d%+d]", in.Rs1, in.Imm)
	case KindAccWait:
		s += fmt.Sprintf(" r%d", in.Rd)
	case KindCmp:
		if in.Op == OpCmp {
			s += fmt.Sprintf(" r%d, r%d", in.Rs1, in.Rs2)
		} else {
			s += fmt.Sprintf(" r%d, %d", in.Rs1, in.Imm)
		}
	case KindBranch, KindCall:
		s += fmt.Sprintf(" %d", in.Imm)
	case KindYield:
		s += " " + in.LiveMask().String()
	}
	return s
}

// Program is a decoded instruction sequence with an optional symbol table
// mapping labels to instruction indices.
type Program struct {
	Instrs  []Instr
	Symbols map[string]int
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{Instrs: make([]Instr, len(p.Instrs))}
	copy(q.Instrs, p.Instrs)
	if p.Symbols != nil {
		q.Symbols = make(map[string]int, len(p.Symbols))
		for k, v := range p.Symbols {
			q.Symbols[k] = v
		}
	}
	return q
}

// Validate checks structural invariants: opcodes are defined, registers are
// in range and every branch/call target lies inside the program.
func (p *Program) Validate() error {
	n := len(p.Instrs)
	for i, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: instruction %d: invalid opcode %d", i, in.Op)
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("isa: instruction %d (%s): register out of range", i, in)
		}
		if in.Op.IsBranch() {
			if t := in.Target(); t < 0 || t >= n {
				return fmt.Errorf("isa: instruction %d (%s): branch target %d outside program of %d instructions", i, in, t, n)
			}
		}
	}
	return nil
}

package metrics

import "math/bits"

// NumBuckets is the fixed bucket count of a Hist: one bucket for zero
// plus one per power of two up to 2^63. The storage is a fixed array so
// a Hist never allocates, no matter what it observes.
const NumBuckets = 65

// Hist is a log2-bucketed histogram over uint64 values with fixed
// storage. Bucket 0 counts zero-valued observations; bucket i (i ≥ 1)
// counts values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Observe is a few arithmetic instructions and two fixed-offset array
// writes — cheap enough to sit on episode boundaries in the cycle
// domain, and allocation-free by construction.
type Hist struct {
	Buckets [NumBuckets]uint64
	// Count and Sum summarize all observations; Count equals the sum of
	// Buckets and is kept inline so totals reconcile without a walk.
	Count uint64
	Sum   uint64
	// Min and Max track the observed range (Min is meaningful only when
	// Count > 0).
	Min uint64
	Max uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the average observed value, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Reset zeroes the histogram in place.
func (h *Hist) Reset() { *h = Hist{} }

// BucketBounds returns the half-open value range [lo, hi) covered by
// bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	if i >= 64 {
		return 1 << 63, ^uint64(0)
	}
	return 1 << (i - 1), 1 << i
}

// Quantile returns an upper bound for the q-th quantile (0 < q ≤ 1):
// the exclusive upper edge of the bucket containing the q·Count-th
// observation. With log2 buckets this is accurate to a factor of two,
// which is the resolution the hide-episode analysis needs (is the tail
// 100 ns or 1 µs?).
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < NumBuckets; i++ {
		seen += h.Buckets[i]
		if seen >= rank {
			_, hi := BucketBounds(i)
			return hi
		}
	}
	return h.Max
}

package metrics

import "math/bits"

// NumFineBuckets is the fixed bucket count of a FineHist: 16 exact
// buckets for values below 16, then 16 log-linear sub-buckets per power
// of two up to 2^63. As with Hist, the storage is a fixed array so a
// FineHist never allocates, no matter what it observes.
const NumFineBuckets = 16 + 60*16

// FineHist is a log-linear histogram over uint64 values: values below
// 16 are counted exactly, larger values land in one of 16 equal-width
// sub-buckets of their power-of-two range. Bucket edges are therefore
// at most 1/16 ≈ 6% apart, which is the resolution a p999 sojourn-time
// claim needs — Hist's factor-of-two buckets can say "the tail is
// between 65k and 131k cycles", a FineHist pins it to ±6%. Observe is a
// few shifts and two fixed-offset array writes, cheap enough to sit on
// per-request completion paths in the cycle domain.
type FineHist struct {
	Buckets [NumFineBuckets]uint64
	// Count and Sum summarize all observations; Count equals the sum of
	// Buckets and is kept inline so totals reconcile without a walk.
	Count uint64
	Sum   uint64
	// Min and Max track the observed range (Min is meaningful only when
	// Count > 0).
	Min uint64
	Max uint64
}

// fineIndex maps a value to its bucket.
func fineIndex(v uint64) int {
	if v < 16 {
		return int(v)
	}
	b := bits.Len64(v) - 1 // v in [2^b, 2^(b+1)), b ≥ 4
	sub := (v >> (uint(b) - 4)) & 15
	return 16 + (b-4)*16 + int(sub)
}

// FineBucketBounds returns the half-open value range [lo, hi) covered
// by bucket i.
func FineBucketBounds(i int) (lo, hi uint64) {
	if i < 16 {
		return uint64(i), uint64(i) + 1
	}
	g := uint(i-16)/16 + 4
	sub := uint64(i-16) % 16
	width := uint64(1) << (g - 4)
	lo = 1<<g + sub*width
	if g == 63 && sub == 15 {
		return lo, ^uint64(0)
	}
	return lo, lo + width
}

// Observe records one value.
func (h *FineHist) Observe(v uint64) {
	h.Buckets[fineIndex(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the average observed value, or 0 when empty.
func (h *FineHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Reset zeroes the histogram in place.
func (h *FineHist) Reset() { *h = FineHist{} }

// Merge folds o's observations into h: bucket-wise sums plus the
// combined range. Because every field is additive (and Min/Max are
// order-free), merging per-worker histograms is exactly equivalent to
// having observed every value on one histogram — which is what lets
// per-core sojourn histograms collapse into one service report without
// re-observing a single request.
func (h *FineHist) Merge(o *FineHist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Quantile returns an upper bound for the q-th quantile (0 < q ≤ 1):
// the exclusive upper edge of the bucket containing the q·Count-th
// observation, accurate to the bucket width (≤ 6% above 16).
func (h *FineHist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < NumFineBuckets; i++ {
		seen += h.Buckets[i]
		if seen >= rank {
			_, hi := FineBucketBounds(i)
			if hi > h.Max+1 {
				// The bucket's edge can overshoot the true maximum; the
				// answer is never above the largest observation.
				hi = h.Max + 1
			}
			return hi
		}
	}
	return h.Max
}

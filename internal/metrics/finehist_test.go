package metrics

import (
	"math/bits"
	"testing"
)

func TestFineHistBuckets(t *testing.T) {
	var h FineHist
	cases := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 255, 256, 1000, 1 << 20, 1<<20 + 1<<16, 1 << 62, ^uint64(0)}
	for _, v := range cases {
		h.Observe(v)
		i := fineIndex(v)
		if h.Buckets[i] == 0 {
			t.Errorf("Observe(%d) did not land in bucket %d", v, i)
		}
		lo, hi := FineBucketBounds(i)
		// The last bucket's hi saturates at the maximal uint64, mirroring
		// Hist's convention; the hi check does not apply there.
		if v < lo || (i < NumFineBuckets-1 && v >= hi) {
			t.Errorf("bucket %d bounds [%d,%d) exclude its own value %d", i, lo, hi, v)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	var sum uint64
	for _, b := range h.Buckets {
		sum += b
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != Count %d", sum, h.Count)
	}
	if h.Min != 0 || h.Max != ^uint64(0) {
		t.Errorf("Min/Max = %d/%d", h.Min, h.Max)
	}
}

// TestFineHistBoundsContiguous proves the bucket ranges tile the uint64
// line with no gaps or overlaps: every bucket's hi is the next one's lo.
func TestFineHistBoundsContiguous(t *testing.T) {
	for i := 0; i < NumFineBuckets-1; i++ {
		_, hi := FineBucketBounds(i)
		lo, _ := FineBucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("bucket %d ends at %d but bucket %d starts at %d", i, hi, i+1, lo)
		}
	}
	if lo, _ := FineBucketBounds(0); lo != 0 {
		t.Error("first bucket does not start at 0")
	}
}

// TestFineHistResolution pins the headline property: above 16, bucket
// width is at most lo/16, i.e. a quantile read off the histogram is
// within ~6% of the true value.
func TestFineHistResolution(t *testing.T) {
	for i := 16; i < NumFineBuckets-1; i++ {
		lo, hi := FineBucketBounds(i)
		if width := hi - lo; width*16 > lo {
			t.Fatalf("bucket %d [%d,%d) width %d exceeds lo/16", i, lo, hi, width)
		}
	}
}

func TestFineHistQuantile(t *testing.T) {
	var h FineHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty FineHist should report 0")
	}
	// Exact below 16.
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	if q := h.Quantile(0.999); q != 8 {
		t.Errorf("Quantile over constant 7 = %d, want upper bound 8", q)
	}
	h.Reset()
	// 9989 fast observations, 11 slow outliers: p99 stays fast, p999
	// resolves the outliers to ~6%.
	for i := 0; i < 9989; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 11; i++ {
		h.Observe(100_000)
	}
	if q := h.Quantile(0.99); q < 1000 || q > 1063 {
		t.Errorf("p99 = %d, want within a bucket of 1000", q)
	}
	q := h.Quantile(0.999)
	// fineIndex is exact for the observation's own bucket; the bound is
	// clipped to Max+1 so it can never exceed the largest observation.
	if q < 100_000 || q > 100_001 {
		t.Errorf("p999 = %d, want (100000, 100001]", q)
	}
	if bits.Len64(q)-bits.Len64(100_000) > 1 {
		t.Errorf("p999 lost the magnitude: %d", q)
	}
}

func TestFineHistAllocFree(t *testing.T) {
	var h FineHist
	allocs := testing.AllocsPerRun(200, func() {
		h.Observe(123456)
		_ = h.Quantile(0.999)
	})
	if allocs != 0 {
		t.Errorf("FineHist path allocated %.1f times per run, want 0", allocs)
	}
}

// Package metrics is the cycle-domain observability registry: plain
// uint64 counters and fixed-array histograms that the simulator's hot
// layers (internal/mem, internal/cpu, internal/exec, internal/sched,
// internal/pebs) bump inline, plus a typed Snapshot that renders the
// whole registry as a stats.Table or a flat metric map.
//
// # The inline-uint64 rule
//
// Everything in a Registry is a plain uint64 field or a fixed array of
// them. There are no maps, no interfaces, no mutexes and no
// allocations anywhere on a bump path — the same contract the
// nil-tracer fast path establishes for trace events (see
// internal/trace): a disabled registry costs one nil check per
// emission site, an enabled one costs a handful of inline integer
// writes. This is what lets metrics stay on during performance work
// without perturbing the ~22 ns/step, 0 allocs/op hot path that PR 2
// established.
//
// Ownership is split by domain:
//
//   - Exec and Sched sections are bumped inline by their packages
//     during a run (episode boundaries, request completions).
//   - Mem, CPU and Sampler sections are harvested from counters those
//     packages already maintain unconditionally (mem.Hierarchy.Stats,
//     cpu.Counters, the pebs sampler) via their FillMetrics methods —
//     counting twice on the demand path would be pure overhead.
//
// A Registry is not safe for concurrent use; give each worker its own
// and merge snapshots, exactly as the parallel runner does for tracers.
package metrics

import "repro/internal/stats"

// Mem aggregates cache-hierarchy counters, filled from
// mem.Hierarchy.Stats by (*mem.Hierarchy).FillMetrics.
type Mem struct {
	// Demand accesses by serving level.
	L1Hits, L2Hits, L3Hits, DRAMAccesses uint64
	// InflightHits are demand accesses that met an in-flight fill;
	// InflightFull counts the subset whose fill had already completed
	// (the prefetch fully hid the miss).
	InflightHits, InflightFull uint64
	// L2Misses counts accesses that missed both L1 and L2 — the event
	// class the paper's mechanism targets.
	L2Misses uint64
	// Prefetch activity and MSHR pressure.
	Prefetches    uint64 // software prefetches that started a fill
	PrefetchHits  uint64 // software prefetches that found the line cached/in flight
	HWPrefetches  uint64 // hardware stream-prefetcher fills
	MSHRDrops     uint64 // prefetches dropped at the MaxInflight cap
	MSHRHighWater uint64 // peak simultaneous outstanding fills
	Writebacks    uint64 // dirty L1 victims written back
}

// CPU aggregates core-level cycle accounting, filled from cpu.Counters
// by (*cpu.Counters).FillMetrics.
type CPU struct {
	Retired     uint64 // instructions retired
	BusyCycles  uint64 // cycles doing work (incl. pipeline-absorbed latency)
	StallCycles uint64 // exposed memory stall cycles
	Faults      uint64 // execution faults (bad PC, memory fault, SFI trap)
}

// Exec holds the hide-episode accounting the dual-mode executor bumps
// inline at episode boundaries.
type Exec struct {
	// Episodes counts closed hide episodes; EpisodeDur.Count equals it
	// by construction, which is the reconciliation invariant the tests
	// pin.
	Episodes uint64
	// EpisodeCycles is total away time (primary switched out);
	// HiddenCycles is the portion that covered the hide target;
	// OvershootCycles is away time beyond the target — the latency cost
	// of asymmetric concurrency, per episode.
	EpisodeCycles   uint64
	HiddenCycles    uint64
	OvershootCycles uint64
	// EpisodeDur distributes episode away times; EpisodeCover
	// distributes the covered portion min(away, target). Both are in
	// cycles, log2-bucketed.
	EpisodeDur   Hist
	EpisodeCover Hist
	// Chains counts scavenger-to-scavenger hand-offs inside episodes;
	// HWSkips counts §4.1 presence-probe suppressed yields.
	Chains  uint64
	HWSkips uint64
}

// NoteEpisode records one closed hide episode: the away time and the
// hide target it was meant to cover. Called inline by the dual-mode
// executor; must stay allocation-free.
func (x *Exec) NoteEpisode(away, target uint64) {
	covered := away
	if covered > target {
		covered = target
		x.OvershootCycles += away - target
	}
	x.Episodes++
	x.EpisodeCycles += away
	x.HiddenCycles += covered
	x.EpisodeDur.Observe(away)
	x.EpisodeCover.Observe(covered)
}

// Sched holds scheduler-level accounting bumped by internal/sched at
// the end of each Run.
type Sched struct {
	Requests   uint64 // latency-sensitive requests completed
	BatchTasks uint64 // batch tasks submitted alongside them
	// RequestLatency distributes request completion times (cycles from
	// run start), log2-bucketed.
	RequestLatency Hist
}

// Service holds the open-loop service-harness accounting bumped by
// internal/service per request lifecycle event (arrival → admit →
// dispatch → retire). The conservation invariant the tests pin:
// Arrivals = Admitted + Dropped, and Admitted = Completed + Shed once
// a run drains.
type Service struct {
	Arrivals  uint64 // requests generated by the arrival process
	Admitted  uint64 // requests accepted into the bounded queue
	Dropped   uint64 // requests rejected at a full queue (load shedding at the door)
	Shed      uint64 // admitted requests abandoned at dispatch (exceeded ShedAfter)
	Completed uint64 // requests served and validated
	BatchOps  uint64 // background batch-task completions (the scavenger tier)
	// Sojourn distributes request sojourn times (arrival to retire) in
	// cycles with ~6% resolution — fine enough for p999 claims.
	Sojourn FineHist
}

// Sampler aggregates profiling-overhead counters, filled from the PEBS
// sampler by (*pebs.Sampler).FillMetrics.
type Sampler struct {
	Samples        uint64 // samples recorded
	Dropped        uint64 // samples lost to a full buffer (still trapped)
	Branches       uint64 // taken branches fed to the LBR ring
	OverheadCycles uint64 // modelled profiling overhead
}

// Machine aggregates many-core kernel accounting, filled from
// machine.Stats after a Run: quantum/barrier counts, shared-LLC traffic
// and contention, plus aggregate work across all cores. Per-core detail
// lives in the per-core registries the kernel allocates; this section
// is the roll-up a session-level registry sees.
type Machine struct {
	Cores  uint64 // simulated cores in the topology
	Quanta uint64 // cycle quanta (barrier commits) executed
	Cycles uint64 // simulated cycles (max across cores)
	// Shared-LLC traffic: probes by outcome, plus contention queueing.
	LLCHits        uint64
	LLCMisses      uint64
	LLCQueued      uint64 // accesses that paid a contention penalty
	LLCQueueCycles uint64 // total penalty cycles added
	LLCPeakBank    uint64 // peak per-bank committed load of any quantum
	// Aggregate work across cores.
	Retired     uint64
	BusyCycles  uint64
	StallCycles uint64
}

// Registry is the top-level observability registry: one value per
// domain, all plain data. The zero value is ready to use.
type Registry struct {
	Mem     Mem
	CPU     CPU
	Exec    Exec
	Sched   Sched
	Service Service
	Sampler Sampler
	Machine Machine
}

// Reset zeroes every counter and histogram in place.
func (r *Registry) Reset() { *r = Registry{} }

// Snapshot is a point-in-time copy of a Registry, safe to render or
// serialize while the registry keeps counting.
type Snapshot struct {
	Mem     Mem
	CPU     CPU
	Exec    Exec
	Sched   Sched
	Service Service
	Sampler Sampler
	Machine Machine
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{Mem: r.Mem, CPU: r.CPU, Exec: r.Exec, Sched: r.Sched, Service: r.Service, Sampler: r.Sampler, Machine: r.Machine}
}

// Table renders the snapshot as a stats.Table (domain, metric, value
// triples), mergeable into any experiment's table list. Histograms
// contribute their totals, means and coarse tail quantiles plus one
// row per non-empty bucket, so episode-duration distributions are
// inspectable without any external tooling.
func (s Snapshot) Table() *stats.Table {
	t := stats.NewTable("observability", "domain", "metric", "value")
	row := func(domain, metric string, v uint64) {
		t.Row(domain, metric, v)
	}
	row("mem", "l1_hits", s.Mem.L1Hits)
	row("mem", "l2_hits", s.Mem.L2Hits)
	row("mem", "l3_hits", s.Mem.L3Hits)
	row("mem", "dram_accesses", s.Mem.DRAMAccesses)
	row("mem", "inflight_hits", s.Mem.InflightHits)
	row("mem", "inflight_full", s.Mem.InflightFull)
	row("mem", "l2_misses", s.Mem.L2Misses)
	row("mem", "prefetches", s.Mem.Prefetches)
	row("mem", "prefetch_hits", s.Mem.PrefetchHits)
	row("mem", "hw_prefetches", s.Mem.HWPrefetches)
	row("mem", "mshr_drops", s.Mem.MSHRDrops)
	row("mem", "mshr_high_water", s.Mem.MSHRHighWater)
	row("mem", "writebacks", s.Mem.Writebacks)
	row("cpu", "retired", s.CPU.Retired)
	row("cpu", "busy_cycles", s.CPU.BusyCycles)
	row("cpu", "stall_cycles", s.CPU.StallCycles)
	row("cpu", "faults", s.CPU.Faults)
	row("exec", "episodes", s.Exec.Episodes)
	row("exec", "episode_cycles", s.Exec.EpisodeCycles)
	row("exec", "hidden_cycles", s.Exec.HiddenCycles)
	row("exec", "overshoot_cycles", s.Exec.OvershootCycles)
	row("exec", "chains", s.Exec.Chains)
	row("exec", "hw_skips", s.Exec.HWSkips)
	histRows(t, "exec", "episode_dur", &s.Exec.EpisodeDur)
	histRows(t, "exec", "episode_cover", &s.Exec.EpisodeCover)
	row("sched", "requests", s.Sched.Requests)
	row("sched", "batch_tasks", s.Sched.BatchTasks)
	histRows(t, "sched", "request_latency", &s.Sched.RequestLatency)
	row("service", "arrivals", s.Service.Arrivals)
	row("service", "admitted", s.Service.Admitted)
	row("service", "dropped", s.Service.Dropped)
	row("service", "shed", s.Service.Shed)
	row("service", "completed", s.Service.Completed)
	row("service", "batch_ops", s.Service.BatchOps)
	fineHistRows(t, "service", "sojourn", &s.Service.Sojourn)
	row("sampler", "samples", s.Sampler.Samples)
	row("sampler", "dropped", s.Sampler.Dropped)
	row("sampler", "branches", s.Sampler.Branches)
	row("sampler", "overhead_cycles", s.Sampler.OverheadCycles)
	row("machine", "cores", s.Machine.Cores)
	row("machine", "quanta", s.Machine.Quanta)
	row("machine", "cycles", s.Machine.Cycles)
	row("machine", "llc_hits", s.Machine.LLCHits)
	row("machine", "llc_misses", s.Machine.LLCMisses)
	row("machine", "llc_queued", s.Machine.LLCQueued)
	row("machine", "llc_queue_cycles", s.Machine.LLCQueueCycles)
	row("machine", "llc_peak_bank_load", s.Machine.LLCPeakBank)
	row("machine", "retired", s.Machine.Retired)
	row("machine", "busy_cycles", s.Machine.BusyCycles)
	row("machine", "stall_cycles", s.Machine.StallCycles)
	return t
}

// histRows appends one summary block for a histogram: total, mean,
// p50/p99 bounds, then each non-empty bucket as "name[lo,hi)".
func histRows(t *stats.Table, domain, name string, h *Hist) {
	t.Row(domain, name+"_total", h.Count)
	if h.Count == 0 {
		return
	}
	t.Row(domain, name+"_mean", h.Mean())
	t.Row(domain, name+"_p50_le", h.Quantile(0.50))
	t.Row(domain, name+"_p99_le", h.Quantile(0.99))
	for i := 0; i < NumBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		t.Row(domain, bucketLabel(name, lo, hi), h.Buckets[i])
	}
}

// fineHistRows is histRows for a FineHist: total, mean, tail bounds
// (including p999, which the fine buckets resolve to ~6%), then each
// non-empty bucket.
func fineHistRows(t *stats.Table, domain, name string, h *FineHist) {
	t.Row(domain, name+"_total", h.Count)
	if h.Count == 0 {
		return
	}
	t.Row(domain, name+"_mean", h.Mean())
	t.Row(domain, name+"_p50_le", h.Quantile(0.50))
	t.Row(domain, name+"_p99_le", h.Quantile(0.99))
	t.Row(domain, name+"_p999_le", h.Quantile(0.999))
	for i := 0; i < NumFineBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		lo, hi := FineBucketBounds(i)
		t.Row(domain, bucketLabel(name, lo, hi), h.Buckets[i])
	}
}

func bucketLabel(name string, lo, hi uint64) string {
	return name + "[" + utoa(lo) + "," + utoa(hi) + ")"
}

// utoa is strconv.FormatUint without the import — the package stays
// dependency-light so every cycle-domain layer can import it.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Metrics flattens the snapshot into dst under "obs."-prefixed keys,
// the shape experiments.Result.Metrics uses. Histograms contribute
// total/mean/tail-bound entries only (buckets stay in the Table form).
func (s Snapshot) Metrics(dst map[string]float64) {
	put := func(k string, v uint64) { dst["obs."+k] = float64(v) }
	put("mem.l1_hits", s.Mem.L1Hits)
	put("mem.l2_hits", s.Mem.L2Hits)
	put("mem.l3_hits", s.Mem.L3Hits)
	put("mem.dram_accesses", s.Mem.DRAMAccesses)
	put("mem.inflight_hits", s.Mem.InflightHits)
	put("mem.inflight_full", s.Mem.InflightFull)
	put("mem.l2_misses", s.Mem.L2Misses)
	put("mem.prefetches", s.Mem.Prefetches)
	put("mem.prefetch_hits", s.Mem.PrefetchHits)
	put("mem.hw_prefetches", s.Mem.HWPrefetches)
	put("mem.mshr_drops", s.Mem.MSHRDrops)
	put("mem.mshr_high_water", s.Mem.MSHRHighWater)
	put("mem.writebacks", s.Mem.Writebacks)
	put("cpu.retired", s.CPU.Retired)
	put("cpu.busy_cycles", s.CPU.BusyCycles)
	put("cpu.stall_cycles", s.CPU.StallCycles)
	put("cpu.faults", s.CPU.Faults)
	put("exec.episodes", s.Exec.Episodes)
	put("exec.episode_cycles", s.Exec.EpisodeCycles)
	put("exec.hidden_cycles", s.Exec.HiddenCycles)
	put("exec.overshoot_cycles", s.Exec.OvershootCycles)
	put("exec.chains", s.Exec.Chains)
	put("exec.hw_skips", s.Exec.HWSkips)
	dst["obs.exec.episode_dur_mean"] = s.Exec.EpisodeDur.Mean()
	dst["obs.exec.episode_cover_mean"] = s.Exec.EpisodeCover.Mean()
	put("sched.requests", s.Sched.Requests)
	put("sched.batch_tasks", s.Sched.BatchTasks)
	dst["obs.sched.request_latency_mean"] = s.Sched.RequestLatency.Mean()
	put("service.arrivals", s.Service.Arrivals)
	put("service.admitted", s.Service.Admitted)
	put("service.dropped", s.Service.Dropped)
	put("service.shed", s.Service.Shed)
	put("service.completed", s.Service.Completed)
	put("service.batch_ops", s.Service.BatchOps)
	dst["obs.service.sojourn_mean"] = s.Service.Sojourn.Mean()
	dst["obs.service.sojourn_p50_le"] = float64(s.Service.Sojourn.Quantile(0.50))
	dst["obs.service.sojourn_p99_le"] = float64(s.Service.Sojourn.Quantile(0.99))
	dst["obs.service.sojourn_p999_le"] = float64(s.Service.Sojourn.Quantile(0.999))
	put("sampler.samples", s.Sampler.Samples)
	put("sampler.dropped", s.Sampler.Dropped)
	put("sampler.branches", s.Sampler.Branches)
	put("sampler.overhead_cycles", s.Sampler.OverheadCycles)
	put("machine.cores", s.Machine.Cores)
	put("machine.quanta", s.Machine.Quanta)
	put("machine.cycles", s.Machine.Cycles)
	put("machine.llc_hits", s.Machine.LLCHits)
	put("machine.llc_misses", s.Machine.LLCMisses)
	put("machine.llc_queued", s.Machine.LLCQueued)
	put("machine.llc_queue_cycles", s.Machine.LLCQueueCycles)
	put("machine.llc_peak_bank_load", s.Machine.LLCPeakBank)
	put("machine.retired", s.Machine.Retired)
	put("machine.busy_cycles", s.Machine.BusyCycles)
	put("machine.stall_cycles", s.Machine.StallCycles)
}

package metrics

import (
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("Observe(%d) did not land in bucket %d", c.v, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || (c.bucket < 64 && c.v >= hi) {
			t.Errorf("bucket %d bounds [%d,%d) exclude its own value %d", c.bucket, lo, hi, c.v)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	var sum uint64
	for _, b := range h.Buckets {
		sum += b
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != Count %d", sum, h.Count)
	}
	if h.Min != 0 || h.Max != ^uint64(0) {
		t.Errorf("Min/Max = %d/%d", h.Min, h.Max)
	}
}

func TestHistMeanAndQuantile(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty hist should report zeros")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100) // all in bucket 7: [64,128)
	}
	if h.Mean() != 100 {
		t.Errorf("Mean = %v, want 100", h.Mean())
	}
	if q := h.Quantile(0.5); q != 128 {
		t.Errorf("Quantile(0.5) = %d, want bucket upper bound 128", q)
	}
	h.Reset()
	if h.Count != 0 || h.Sum != 0 {
		t.Error("Reset did not zero the hist")
	}
}

func TestNoteEpisodeReconciles(t *testing.T) {
	var x Exec
	x.NoteEpisode(300, 300) // exactly covered
	x.NoteEpisode(500, 300) // 200 overshoot
	x.NoteEpisode(100, 300) // under target: covered == away
	if x.Episodes != 3 || x.EpisodeDur.Count != 3 || x.EpisodeCover.Count != 3 {
		t.Fatalf("episode totals do not reconcile: %d / %d / %d",
			x.Episodes, x.EpisodeDur.Count, x.EpisodeCover.Count)
	}
	if x.EpisodeCycles != 900 {
		t.Errorf("EpisodeCycles = %d, want 900", x.EpisodeCycles)
	}
	if x.HiddenCycles != 300+300+100 {
		t.Errorf("HiddenCycles = %d, want 700", x.HiddenCycles)
	}
	if x.OvershootCycles != 200 {
		t.Errorf("OvershootCycles = %d, want 200", x.OvershootCycles)
	}
}

func TestSnapshotTableAndMetrics(t *testing.T) {
	var r Registry
	r.Exec.NoteEpisode(450, 300)
	r.Mem.DRAMAccesses = 7
	r.CPU.Retired = 1234
	snap := r.Snapshot()

	// The registry keeps counting after the snapshot; the copy must not.
	r.Exec.NoteEpisode(10, 10)
	if snap.Exec.Episodes != 1 {
		t.Fatalf("snapshot aliases the registry: episodes = %d", snap.Exec.Episodes)
	}

	tbl := snap.Table().String()
	for _, want := range []string{"episodes", "mshr_high_water", "dram_accesses", "episode_dur_total", "request_latency_total"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("snapshot table missing %q:\n%s", want, tbl)
		}
	}

	m := map[string]float64{}
	snap.Metrics(m)
	if m["obs.exec.episodes"] != 1 || m["obs.cpu.retired"] != 1234 || m["obs.mem.dram_accesses"] != 7 {
		t.Errorf("flattened metrics wrong: %v", m)
	}
	for k := range m {
		if !strings.HasPrefix(k, "obs.") {
			t.Errorf("metric key %q lacks the obs. prefix", k)
		}
	}
}

// TestBumpPathsAllocFree guards the inline-uint64 rule: every operation
// a cycle-domain layer performs against the registry — histogram
// observes, episode notes, snapshot copies — is allocation-free.
func TestBumpPathsAllocFree(t *testing.T) {
	var r Registry
	var snap Snapshot
	allocs := testing.AllocsPerRun(200, func() {
		r.Exec.NoteEpisode(450, 300)
		r.Exec.Chains++
		r.Sched.RequestLatency.Observe(900)
		r.Mem.Writebacks++
		snap = r.Snapshot()
	})
	if allocs != 0 {
		t.Errorf("registry bump path allocated %.1f times per run, want 0", allocs)
	}
	_ = snap
}

package bincfg

import "repro/internal/isa"

// IndependentLoadRun returns the length k of the maximal run of
// consecutive LOAD instructions starting at instruction index i such that
// all k loads are mutually independent: no load in the run computes the
// address register of a later load in the run, there are no intervening
// non-load instructions, and the run stays inside one basic block.
//
// Independence is what licenses the paper's yield-coalescing optimization
// (§3.2): the k prefetch addresses are all computable before the first
// load, so k prefetches can be hoisted and a single yield amortizes the
// switch across all k potential misses.
//
// Returns at least 1 when instruction i is a LOAD, 0 otherwise.
func IndependentLoadRun(g *CFG, i int) int {
	prog := g.Prog
	if i < 0 || i >= len(prog.Instrs) || prog.Instrs[i].Op != isa.OpLoad {
		return 0
	}
	b := g.BlockOf(i)
	var defined isa.RegMask
	k := 0
	for j := i; j < b.End; j++ {
		in := prog.Instrs[j]
		if in.Op != isa.OpLoad {
			break
		}
		// Address register must not have been produced by an earlier load
		// in the run (true register dependence).
		if defined.Has(in.Rs1) {
			break
		}
		defined = defined.With(in.Rd)
		k++
	}
	return k
}

// LoadsIn returns the instruction indices of all LOADs in the program, in
// ascending order. The instrumenter iterates these as candidate sites.
func LoadsIn(prog *isa.Program) []int {
	var out []int
	for i, in := range prog.Instrs {
		if in.Op == isa.OpLoad {
			out = append(out, i)
		}
	}
	return out
}

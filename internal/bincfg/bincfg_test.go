package bincfg

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestStraightLine(t *testing.T) {
	g := MustBuild(isa.MustAssemble(`
        movi r1, 1
        addi r1, r1, 2
        halt
    `))
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != 3 || len(b.Succs) != 0 {
		t.Errorf("block: %+v", b)
	}
	if g.BlockOf(2) != b {
		t.Error("BlockOf wrong")
	}
}

const diamondSrc = `
        movi r1, 0
        cmpi r1, 5
        jlt left
        addi r1, r1, 1      ; right
        jmp join
    left:
        addi r1, r1, 2
    join:
        halt
`

func TestDiamond(t *testing.T) {
	g := MustBuild(isa.MustAssemble(diamondSrc))
	// Blocks: [0,3) entry, [3,5) right, [5,6) left, [6,7) join.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %v", len(g.Blocks), g.Blocks)
	}
	entry, right, left, join := g.Blocks[0], g.Blocks[1], g.Blocks[2], g.Blocks[3]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	has := func(list []int, id int) bool {
		for _, x := range list {
			if x == id {
				return true
			}
		}
		return false
	}
	if !has(entry.Succs, right.ID) || !has(entry.Succs, left.ID) {
		t.Error("entry should branch to both arms")
	}
	if !has(right.Succs, join.ID) || !has(left.Succs, join.ID) {
		t.Error("arms should reach join")
	}
	if !has(join.Preds, right.ID) || !has(join.Preds, left.ID) {
		t.Error("join preds wrong")
	}

	d := ComputeDominators(g)
	for _, b := range g.Blocks {
		if !d.Dominates(entry.ID, b.ID) {
			t.Errorf("entry should dominate B%d", b.ID)
		}
	}
	if d.Idom(join.ID) != entry.ID {
		t.Errorf("idom(join) = %d, want entry %d", d.Idom(join.ID), entry.ID)
	}
	if d.Dominates(left.ID, join.ID) || d.Dominates(right.ID, join.ID) {
		t.Error("neither arm dominates the join")
	}
	if loops := NaturalLoops(g, d); len(loops) != 0 {
		t.Errorf("diamond has no loops, got %v", loops)
	}
}

const loopSrc = `
        movi r2, 10
        movi r1, 0
    loop:
        addi r1, r1, 1
        addi r2, r2, -1
        cmpi r2, 0
        jgt loop
        halt
`

func TestNaturalLoop(t *testing.T) {
	g := MustBuild(isa.MustAssemble(loopSrc))
	d := ComputeDominators(g)
	loops := NaturalLoops(g, d)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	header := g.BlockOf(2).ID
	if l.Header != header {
		t.Errorf("header = %d, want %d", l.Header, header)
	}
	if len(l.Body) != 1 || !l.Body[header] {
		t.Errorf("body = %v, want only the header block", l.Blocks())
	}
	if len(l.BackEdges) != 1 || l.BackEdges[0] != [2]int{header, header} {
		t.Errorf("back edges = %v", l.BackEdges)
	}
}

func TestNestedLoops(t *testing.T) {
	g := MustBuild(isa.MustAssemble(`
        movi r2, 3
    outer:
        movi r3, 4
    inner:
        addi r1, r1, 1
        addi r3, r3, -1
        cmpi r3, 0
        jgt inner
        addi r2, r2, -1
        cmpi r2, 0
        jgt outer
        halt
    `))
	d := ComputeDominators(g)
	loops := NaturalLoops(g, d)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	inner, outer := loops[1], loops[0]
	if len(inner.Body) >= len(outer.Body) {
		inner, outer = outer, inner
	}
	if len(inner.Body) != 1 {
		t.Errorf("inner body = %v", inner.Blocks())
	}
	// The outer loop body must contain the inner loop's header.
	if !outer.Body[inner.Header] {
		t.Errorf("outer body %v should contain inner header %d", outer.Blocks(), inner.Header)
	}
}

const callSrc = `
    main:
        movi r1, 5
        call fn
        halt
    fn:
        addi r1, r1, 1
        ret
`

func TestFunctionsAreSeparateRoots(t *testing.T) {
	g := MustBuild(isa.MustAssemble(callSrc))
	roots := g.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 (main and fn)", roots)
	}
	// The block after the call is reached by fall-through.
	callBlock := g.BlockOf(1)
	if len(callBlock.Succs) != 1 {
		t.Fatalf("call block succs = %v", callBlock.Succs)
	}
	retBlock := g.BlockOf(4)
	if len(retBlock.Succs) != 0 {
		t.Error("ret block should have no successors")
	}
	d := ComputeDominators(g)
	if d.Idom(g.BlockOf(3).ID) != -1 {
		t.Error("fn entry should be a root (idom = virtual)")
	}
}

func TestReversePostorder(t *testing.T) {
	g := MustBuild(isa.MustAssemble(diamondSrc))
	rpo := g.ReversePostorder()
	if len(rpo) != len(g.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(g.Blocks))
	}
	pos := make(map[int]int)
	for i, id := range rpo {
		pos[id] = i
	}
	// Entry before arms, arms before join.
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("rpo order wrong: %v", rpo)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 1      ; 0
        movi r2, 2      ; 1
        add  r3, r1, r2 ; 2
        mov  r1, r3     ; 3: r2 dead after 2
        halt            ; 4: uses r1
    `)
	g := MustBuild(prog)
	l := ComputeLiveness(g)
	// Before instruction 3, r3 is live (used) and r2 is dead.
	in3 := l.LiveIn(3)
	if !in3.Has(3) {
		t.Error("r3 should be live before instr 3")
	}
	if in3.Has(2) {
		t.Error("r2 should be dead before instr 3")
	}
	if !in3.Has(isa.SP) {
		t.Error("SP must always be live")
	}
	// After instruction 3, only r1 (for halt) and SP.
	out3 := l.LiveOut(3)
	if !out3.Has(1) {
		t.Errorf("LiveOut(3) = %v, r1 should be live for halt", out3)
	}
	if out3.Has(2) || out3.Has(3) {
		t.Errorf("LiveOut(3) = %v, r2/r3 should be dead", out3)
	}
}

func TestLivenessAcrossBranches(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0      ; 0
        movi r4, 9      ; 1: r4 used only on the left arm
        cmpi r1, 5      ; 2
        jlt left        ; 3
        addi r1, r1, 1  ; 4 right arm
        jmp join        ; 5
    left:
        add r1, r1, r4  ; 6
    join:
        halt            ; 7
    `)
	g := MustBuild(prog)
	l := ComputeLiveness(g)
	// r4 is live before the branch (needed on one path).
	if !l.LiveIn(3).Has(4) {
		t.Error("r4 should be live before the branch")
	}
	// r4 is dead on the right arm.
	if l.LiveIn(4).Has(4) {
		t.Error("r4 should be dead on the right arm")
	}
	// r4 is live at the left arm entry.
	if !l.LiveIn(6).Has(4) {
		t.Error("r4 should be live at the left arm")
	}
	// At join, only r1/SP.
	if l.LiveIn(7).Has(4) {
		t.Error("r4 should be dead at join")
	}
}

func TestLivenessLoop(t *testing.T) {
	g := MustBuild(isa.MustAssemble(loopSrc))
	l := ComputeLiveness(g)
	// r2 (loop counter) is live at the loop header across iterations.
	if !l.LiveIn(2).Has(2) {
		t.Error("loop counter should be live at header")
	}
	// r1 is live too: accumulated across iterations and used by halt.
	if !l.LiveIn(2).Has(1) {
		t.Error("accumulator should be live at header")
	}
}

func TestLivenessCallClobbers(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r8, 42     ; 0: r8 cannot survive the call (caller-saved)
        call fn         ; 1
        add r1, r1, r8  ; 2: uses r8 -> live-in of 2 has r8
        halt
    fn:
        movi r1, 1
        ret
    `)
	g := MustBuild(prog)
	l := ComputeLiveness(g)
	// Before the call, r8 is NOT live: the call defines (clobbers) it, so
	// the use at 2 is reached by the call's def, not instruction 0.
	if l.LiveIn(1).Has(8) {
		t.Error("r8 should be killed by the call clobber set")
	}
	// The call's arguments are live before it.
	if !l.LiveIn(1).Has(1) && !l.LiveIn(1).Has(isa.SP) {
		t.Error("call uses should be live")
	}
	if !l.LiveIn(2).Has(8) {
		t.Error("r8 used at 2 should be live there")
	}
}

func TestBlockLiveInOut(t *testing.T) {
	g := MustBuild(isa.MustAssemble(loopSrc))
	l := ComputeLiveness(g)
	header := g.BlockOf(2).ID
	if !l.BlockLiveIn(header).Has(2) || !l.BlockLiveOut(header).Has(isa.SP) {
		t.Error("block-level masks wrong")
	}
}

// Property: the liveness fixpoint satisfies its defining equations, and
// LiveIn(i) always contains Uses(i), on random structured programs.
func TestLivenessEquationsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		prog := randomProgram(rng, 5+rng.Intn(60))
		g := MustBuild(prog)
		l := ComputeLiveness(g)
		for _, b := range g.Blocks {
			var out isa.RegMask
			for _, s := range b.Succs {
				out |= l.liveIn[s]
			}
			if out != l.liveOut[b.ID] {
				t.Fatalf("trial %d: liveOut[B%d] inconsistent", trial, b.ID)
			}
			if l.transferBlock(b, out) != l.liveIn[b.ID] {
				t.Fatalf("trial %d: liveIn[B%d] inconsistent", trial, b.ID)
			}
		}
		for i := range prog.Instrs {
			if uses := prog.Instrs[i].Uses(); l.LiveIn(i)&uses != uses {
				t.Fatalf("trial %d: LiveIn(%d) misses uses of %v", trial, i, prog.Instrs[i])
			}
		}
	}
}

// randomProgram emits a structured random program: straight-line ALU/load
// bodies with random forward/backward branches, ending in halt.
func randomProgram(rng *rand.Rand, n int) *isa.Program {
	p := &isa.Program{}
	for i := 0; i < n; i++ {
		r := func() isa.Reg { return isa.Reg(rng.Intn(14)) } // avoid r14/r15 for clarity
		switch rng.Intn(8) {
		case 0:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpMovI, Rd: r(), Imm: int64(rng.Intn(100))})
		case 1:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpAdd, Rd: r(), Rs1: r(), Rs2: r()})
		case 2:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpLoad, Rd: r(), Rs1: r(), Imm: 8})
		case 3:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpStore, Rs1: r(), Rs2: r(), Imm: 8})
		case 4:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpCmpI, Rs1: r(), Imm: 3})
		case 5:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpJeq, Imm: int64(rng.Intn(n))})
		case 6:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)})
		case 7:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpPrefetch, Rs1: r(), Imm: 0})
		}
	}
	p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHalt})
	return p
}

func TestIndependentLoadRun(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        load r3, [r2]       ; 1: independent of 2,3
        load r4, [r2+8]     ; 2
        load r5, [r2+16]    ; 3
        load r6, [r3]       ; 4: depends on load 1's result... but r3 defined before run?
        halt
    `)
	g := MustBuild(prog)
	// From 1: loads 1,2,3 use r2 (not defined in run); load 4 uses r3,
	// which load 1 defines -> run stops at 3 loads... but load 4 is
	// adjacent: the run from 1 is {1,2,3} because 4's address reg r3 is in
	// the defined set.
	if k := IndependentLoadRun(g, 1); k != 3 {
		t.Errorf("run(1) = %d, want 3", k)
	}
	// From 4: single load.
	if k := IndependentLoadRun(g, 4); k != 1 {
		t.Errorf("run(4) = %d, want 1", k)
	}
	// Non-load index.
	if k := IndependentLoadRun(g, 0); k != 0 {
		t.Errorf("run(0) = %d, want 0", k)
	}
}

func TestIndependentLoadRunStopsAtBlockEnd(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
    target:
        load r3, [r2]
        load r4, [r2+8]
        jmp target
    `)
	g := MustBuild(prog)
	if k := IndependentLoadRun(g, 1); k != 2 {
		t.Errorf("run = %d, want 2 (stops before jmp)", k)
	}
}

func TestIndependentLoadRunPointerChase(t *testing.T) {
	prog := isa.MustAssemble(`
        load r1, [r1]
        load r1, [r1]
        halt
    `)
	g := MustBuild(prog)
	// Second load's address depends on the first: run is 1.
	if k := IndependentLoadRun(g, 0); k != 1 {
		t.Errorf("pointer chase run = %d, want 1", k)
	}
}

func TestLoadsIn(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 64
        load r1, [r2]
        store [r2], r1
        load r3, [r2+8]
        halt
    `)
	loads := LoadsIn(prog)
	if len(loads) != 2 || loads[0] != 1 || loads[1] != 3 {
		t.Errorf("LoadsIn = %v", loads)
	}
}

func TestEmptyProgram(t *testing.T) {
	g, err := Build(&isa.Program{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 0 {
		t.Error("empty program should have no blocks")
	}
	d := ComputeDominators(g)
	if loops := NaturalLoops(g, d); len(loops) != 0 {
		t.Error("no loops expected")
	}
}

// bruteForceDominates computes dominance by definition: a dominates b iff
// removing a disconnects b from every root that reaches it.
func bruteForceDominates(g *CFG, a, b int) bool {
	if a == b {
		return true
	}
	reachable := func(skip int) []bool {
		seen := make([]bool, len(g.Blocks))
		var stack []int
		for _, r := range g.Roots() {
			if r != skip {
				stack = append(stack, r)
				seen[r] = true
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[x].Succs {
				if s != skip && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return seen
	}
	withA := reachable(-1)
	if !withA[b] {
		return false // unreachable nodes are dominated by nothing reachable
	}
	withoutA := reachable(a)
	return !withoutA[b]
}

// TestDominatorsAgainstBruteForce cross-checks the iterative dominator
// algorithm against the definition on random structured programs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng, 5+rng.Intn(40))
		g := MustBuild(prog)
		d := ComputeDominators(g)
		reach := make([]bool, len(g.Blocks))
		{
			var stack []int
			for _, r := range g.Roots() {
				stack = append(stack, r)
				reach[r] = true
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, s := range g.Blocks[x].Succs {
					if !reach[s] {
						reach[s] = true
						stack = append(stack, s)
					}
				}
			}
		}
		for a := range g.Blocks {
			for b := range g.Blocks {
				if !reach[a] || !reach[b] {
					continue
				}
				want := bruteForceDominates(g, a, b)
				got := d.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: Dominates(%d,%d) = %v, brute force says %v", trial, a, b, got, want)
				}
			}
		}
	}
}

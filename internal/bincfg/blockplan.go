package bincfg

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// This file derives the fast-path run set for the basic-block execution
// engine (cpu.RunBlock) from CFG analysis. It is cycle-domain adjacent:
// the run set feeds the block plan that decides how the simulated clock
// advances, so the determinism contract (no map iteration, no wall
// clock, no global rand) applies — detlint checks this file by name.

// fastPathStopper reports whether an instruction ends a straight-line
// run for the block engine. CFG block boundaries already stop at
// branches, calls, rets and halts; yields additionally stop runs because
// the executor must regain control at every yield to make its switch
// decision (paper §3.1 — yields are the scheduling points).
func fastPathStopper(op isa.Op) bool {
	return op.IsBranch() || op == isa.OpRet || op == isa.OpHalt || op.IsYield()
}

// FastPathRuns derives the straight-line runs of prog for the block
// engine: maximal instruction ranges containing no branch, call, ret,
// halt or yield. Each CFG basic block contributes its instructions split
// at yield points, with stopper instructions themselves excluded (the
// engine dispatches them individually). The returned runs are sorted by
// start and non-overlapping; install them with cpu.Core.InstallPlan.
func FastPathRuns(prog *isa.Program) ([]cpu.BlockRun, error) {
	g, err := Build(prog)
	if err != nil {
		return nil, err
	}
	var runs []cpu.BlockRun
	for _, b := range g.Blocks {
		start := b.Start
		for pc := b.Start; pc < b.End; pc++ {
			if fastPathStopper(prog.Instrs[pc].Op) {
				if pc > start {
					runs = append(runs, cpu.BlockRun{Start: start, End: pc})
				}
				start = pc + 1
			}
		}
		if b.End > start {
			runs = append(runs, cpu.BlockRun{Start: start, End: b.End})
		}
	}
	return runs, nil
}

// InstallFastPath builds the fast-path run set for core's program and
// installs it as the core's block plan. It is the one-call setup used by
// the executors; errors only surface for programs that fail validation,
// which a constructed core's program cannot.
func InstallFastPath(core *cpu.Core) error {
	runs, err := FastPathRuns(core.Prog)
	if err != nil {
		return err
	}
	core.InstallPlan(runs)
	return nil
}

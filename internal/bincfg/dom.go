package bincfg

import "sort"

// Dominators holds the immediate-dominator tree computed over the CFG with
// a virtual super-root that precedes every real root, so multi-function
// binaries analyze in one pass.
type Dominators struct {
	g *CFG
	// idom[b] is the immediate dominator of block b, or -1 for roots
	// (their idom is the virtual super-root).
	idom []int
}

// ComputeDominators runs the classic iterative dominator algorithm
// (Cooper-Harvey-Kennedy) in reverse postorder.
func ComputeDominators(g *CFG) *Dominators {
	n := len(g.Blocks)
	d := &Dominators{g: g, idom: make([]int, n)}
	if n == 0 {
		return d
	}
	const virtualRoot = -1
	for i := range d.idom {
		d.idom[i] = -2 // undefined
	}
	rpo := g.ReversePostorder()
	rpoIndex := make([]int, n)
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	isRoot := make([]bool, n)
	for _, r := range g.Roots() {
		isRoot[r] = true
		d.idom[r] = virtualRoot
	}

	intersect := func(a, b int) int {
		for a != b {
			if a == virtualRoot || b == virtualRoot {
				return virtualRoot
			}
			for rpoIndex[a] > rpoIndex[b] {
				a = d.idom[a]
				if a == virtualRoot {
					return virtualRoot
				}
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = d.idom[b]
				if b == virtualRoot {
					return virtualRoot
				}
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if isRoot[b] {
				continue
			}
			newIdom := -2
			for _, p := range g.Blocks[b].Preds {
				if d.idom[p] == -2 {
					continue // predecessor not yet processed
				}
				if newIdom == -2 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == -2 {
				continue // unreachable
			}
			if d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Idom returns the immediate dominator of block b, or -1 if b is a root
// (or unreachable).
func (d *Dominators) Idom(b int) int {
	if d.idom[b] == -2 {
		return -1
	}
	return d.idom[b]
}

// Dominates reports whether block a dominates block b.
func (d *Dominators) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		if d.idom[b] == -2 {
			return false
		}
		b = d.idom[b]
	}
	return false
}

// Loop is a natural loop: a header block and the set of blocks in its
// body (header included).
type Loop struct {
	Header int
	Body   map[int]bool
	// BackEdges lists the (source -> header) edges that define the loop.
	BackEdges [][2]int
}

// Blocks returns the body block IDs in ascending order.
func (l *Loop) Blocks() []int {
	ids := make([]int, 0, len(l.Body))
	for id := range l.Body {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// NaturalLoops finds all natural loops, merging loops that share a header.
func NaturalLoops(g *CFG, d *Dominators) []Loop {
	byHeader := map[int]*Loop{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if d.Dominates(s, b.ID) {
				// b -> s is a back edge with header s.
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{Header: s, Body: map[int]bool{s: true}}
					byHeader[s] = l
				}
				l.BackEdges = append(l.BackEdges, [2]int{b.ID, s})
				// Body = s plus all blocks reaching b without passing s.
				var stack []int
				if !l.Body[b.ID] {
					l.Body[b.ID] = true
					stack = append(stack, b.ID)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.Blocks[x].Preds {
						if !l.Body[p] {
							l.Body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, *byHeader[h])
	}
	return loops
}

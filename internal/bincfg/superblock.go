package bincfg

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// This file derives superblock traces for the superblock execution tier
// (cpu.InstallSuperblocks) from the instruction stream plus an optional
// LBR-style taken-edge profile (pebs.LBRStats.SortedEdges). Like
// blockplan.go it is cycle-domain adjacent: the traces it emits decide
// how the simulated clock advances, so the determinism contract (no map
// iteration, no wall clock, no global rand) applies — detlint checks
// this file by name.

// EdgeWeight is one observed taken control transfer with its sample
// count. It mirrors pebs.Edge but is declared locally so trace
// derivation does not depend on the profiling package; adapt with
// EdgeWeightsFromPairs or construct directly.
type EdgeWeight struct {
	From, To int
	Count    uint64
}

const (
	// sbMaxLen bounds a single trace; longer chains see diminishing
	// returns and cost compile time and memo slots.
	sbMaxLen = 512
	// sbMinLen is the shortest trace worth installing: below it the
	// entry check costs as much as the specialized loop saves.
	sbMinLen = 4
)

// sbChainable reports whether op may continue a trace (must agree with
// the cpu package's admissibility check: pure ALU, loads/stores,
// branches). Everything else — calls, rets, yields, halts, prefetches,
// SFI checks, accelerator ops — ends trace formation.
func sbChainable(op isa.Op) bool {
	return op <= isa.OpShrI || op == isa.OpCmp || op == isa.OpCmpI ||
		op == isa.OpLoad || op == isa.OpStore ||
		op == isa.OpJmp || op.IsConditional()
}

// predictTaken resolves the predicted direction of the branch at pc.
// With a profile, an observed taken edge predicts taken — the LBR
// records only taken transfers, so presence is the entire signal. With
// no observation the static BTFN heuristic applies: backward branches
// (loop latches) predict taken, forward branches fall through.
// Unconditional jumps are always taken.
func predictTaken(in *isa.Instr, pc int, taken map[EdgeWeight]bool) bool {
	if in.Op == isa.OpJmp {
		return true
	}
	if taken != nil {
		return taken[EdgeWeight{From: pc, To: in.Target()}]
	}
	return in.Target() <= pc
}

// SuperblockSpecs derives superblock traces for prog. Trace heads are
// the static loop-head candidates (pc 0 and every backward-branch
// target) plus the destination of every profiled taken edge; from each
// head the trace follows straight-line flow and the predicted direction
// of each branch until it meets a non-chainable instruction, re-enters
// itself (closing a loop trace when it re-enters at the head), or hits
// the length cap. Traces shorter than sbMinLen are dropped. The profile
// may be nil (pure static BTFN derivation). Output order is
// deterministic: heads are visited in ascending pc order, then in
// profile order.
func SuperblockSpecs(prog *isa.Program, profile []EdgeWeight) []cpu.SuperblockSpec {
	n := len(prog.Instrs)
	if n == 0 {
		return nil
	}
	var taken map[EdgeWeight]bool
	if profile != nil {
		taken = make(map[EdgeWeight]bool, len(profile))
		for _, e := range profile {
			if e.Count > 0 {
				taken[EdgeWeight{From: e.From, To: e.To}] = true
			}
		}
	}

	isHead := make([]bool, n)
	heads := make([]int, 0, 8)
	addHead := func(pc int) {
		if pc >= 0 && pc < n && !isHead[pc] && sbChainable(prog.Instrs[pc].Op) {
			isHead[pc] = true
			heads = append(heads, pc)
		}
	}
	addHead(0)
	for pc := range prog.Instrs {
		in := &prog.Instrs[pc]
		if (in.Op == isa.OpJmp || in.Op.IsConditional()) && in.Target() <= pc {
			addHead(in.Target())
		}
	}
	for _, e := range profile {
		if e.Count > 0 {
			addHead(e.To)
		}
	}

	inTrace := make([]bool, n) // per-trace scratch, reset after each walk
	var specs []cpu.SuperblockSpec
	for _, head := range heads {
		pcs := make([]int, 0, 16)
		loop := false
		pc := head
		for len(pcs) < sbMaxLen {
			if pc < 0 || pc >= n || inTrace[pc] || !sbChainable(prog.Instrs[pc].Op) {
				break
			}
			inTrace[pc] = true
			pcs = append(pcs, pc)
			in := &prog.Instrs[pc]
			next := pc + 1
			if in.Op == isa.OpJmp || in.Op.IsConditional() {
				if predictTaken(in, pc, taken) {
					next = in.Target()
				}
				if next == head {
					loop = true
					break
				}
			}
			pc = next
		}
		for _, p := range pcs {
			inTrace[p] = false
		}
		if len(pcs) >= sbMinLen {
			specs = append(specs, cpu.SuperblockSpec{PCs: pcs, Loop: loop})
		}
	}
	return specs
}

// InstallSuperblocks derives traces for core's program — optionally
// profile-guided — and installs them, enabling the superblock tier. A
// program with no viable trace installs an empty set, which RunBlock
// treats as plain block dispatch.
func InstallSuperblocks(core *cpu.Core, profile []EdgeWeight) error {
	return core.InstallSuperblocks(SuperblockSpecs(core.Prog, profile))
}

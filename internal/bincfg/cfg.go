// Package bincfg performs binary-level program analysis on decoded images:
// control-flow graph construction, dominators, natural-loop detection,
// backward register-liveness dataflow and load-dependence analysis.
//
// These are the classic prerequisites the paper lists for its
// instrumentation pipeline (§3.2: "disassembly and control flow graph
// construction ... similar to existing binary optimizers", register
// liveness analysis [45,52] and dependence analysis [4,43]).
//
// The CFG is intraprocedural in the usual binary-optimizer sense: CALL is
// treated as an opaque instruction that falls through (its clobber set is
// captured by isa.Instr.Defs), call targets start blocks of their own, and
// RET/HALT end blocks with no successors. Function bodies therefore form
// disconnected subgraphs, each rooted at a block with no predecessors.
package bincfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Block is a maximal straight-line run of instructions.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[%d,%d)", b.ID, b.Start, b.End)
}

// CFG is the control-flow graph of a program.
type CFG struct {
	Prog    *isa.Program
	Blocks  []*Block
	blockOf []int // instruction index -> block ID
}

// Build constructs the CFG. The program must validate.
func Build(prog *isa.Program) (*CFG, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	n := len(prog.Instrs)
	if n == 0 {
		return &CFG{Prog: prog}, nil
	}

	leader := make([]bool, n)
	leader[0] = true
	for i, in := range prog.Instrs {
		switch {
		case in.Op.IsBranch(): // jumps and calls
			leader[in.Target()] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == isa.OpRet || in.Op == isa.OpHalt:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	g := &CFG{Prog: prog, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			start = i
		}
	}

	addEdge := func(from, to int) {
		fb, tb := g.Blocks[from], g.Blocks[to]
		for _, s := range fb.Succs {
			if s == to {
				return
			}
		}
		fb.Succs = append(fb.Succs, to)
		tb.Preds = append(tb.Preds, from)
	}
	for _, b := range g.Blocks {
		last := prog.Instrs[b.End-1]
		switch {
		case last.Op == isa.OpJmp:
			addEdge(b.ID, g.blockOf[last.Target()])
		case last.Op.IsConditional():
			addEdge(b.ID, g.blockOf[last.Target()])
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
		case last.Op == isa.OpRet || last.Op == isa.OpHalt:
			// no successors
		default:
			// Fall-through (includes CALL: the callee returns here).
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
		}
	}
	return g, nil
}

// MustBuild panics on invalid programs.
func MustBuild(prog *isa.Program) *CFG {
	g, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return g
}

// BlockOf returns the block containing instruction index i.
func (g *CFG) BlockOf(i int) *Block { return g.Blocks[g.blockOf[i]] }

// Roots returns the IDs of blocks with no predecessors: the program entry
// plus every function entered only via CALL.
func (g *CFG) Roots() []int {
	var roots []int
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 {
			roots = append(roots, b.ID)
		}
	}
	return roots
}

// ReversePostorder returns block IDs in reverse postorder of a DFS from
// all roots — the canonical iteration order for forward dataflow.
func (g *CFG) ReversePostorder() []int {
	visited := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		visited[id] = true
		succs := append([]int(nil), g.Blocks[id].Succs...)
		sort.Ints(succs)
		for _, s := range succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	for _, r := range g.Roots() {
		if !visited[r] {
			dfs(r)
		}
	}
	// Unreachable blocks (e.g. dead code) go last, in ID order.
	for id := range g.Blocks {
		if !visited[id] {
			post = append([]int{id}, post...)
		}
	}
	rpo := make([]int, len(post))
	for i, id := range post {
		rpo[len(post)-1-i] = id
	}
	return rpo
}

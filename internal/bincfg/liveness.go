package bincfg

import "repro/internal/isa"

// Liveness is the fixpoint of backward register-liveness dataflow over the
// CFG. The ISA calling convention (see isa.Reg) makes the analysis sound
// intraprocedurally: CALL clobbers all caller-saved registers and RET/HALT
// use the convention's result registers.
//
// The stack pointer is treated as live everywhere: the runtime always
// preserves it, and the instrumenter's live masks must include it.
type Liveness struct {
	g *CFG
	// liveIn/liveOut per block.
	liveIn  []isa.RegMask
	liveOut []isa.RegMask
}

// ComputeLiveness runs the dataflow to fixpoint.
func ComputeLiveness(g *CFG) *Liveness {
	n := len(g.Blocks)
	l := &Liveness{
		g:       g,
		liveIn:  make([]isa.RegMask, n),
		liveOut: make([]isa.RegMask, n),
	}
	changed := true
	for changed {
		changed = false
		// Backward problems converge fastest in postorder; iterating block
		// IDs in reverse is close enough for these small programs.
		for id := n - 1; id >= 0; id-- {
			b := g.Blocks[id]
			var out isa.RegMask
			for _, s := range b.Succs {
				out |= l.liveIn[s]
			}
			in := l.transferBlock(b, out)
			if out != l.liveOut[id] || in != l.liveIn[id] {
				l.liveOut[id] = out
				l.liveIn[id] = in
				changed = true
			}
		}
	}
	return l
}

// transferBlock applies the backward transfer function across a block.
func (l *Liveness) transferBlock(b *Block, out isa.RegMask) isa.RegMask {
	live := out
	for i := b.End - 1; i >= b.Start; i-- {
		in := l.g.Prog.Instrs[i]
		live = (live &^ in.Defs()) | in.Uses()
	}
	return live
}

// LiveIn returns the registers live on entry to instruction i: the set
// that must survive if a yield is inserted immediately before i. SP is
// always included.
func (l *Liveness) LiveIn(i int) isa.RegMask {
	b := l.g.BlockOf(i)
	live := l.liveOut[b.ID]
	for j := b.End - 1; j >= i; j-- {
		in := l.g.Prog.Instrs[j]
		live = (live &^ in.Defs()) | in.Uses()
	}
	return live.With(isa.SP)
}

// LiveOut returns the registers live immediately after instruction i
// executes: the set an existing yield *at* i must preserve. SP is always
// included.
func (l *Liveness) LiveOut(i int) isa.RegMask {
	b := l.g.BlockOf(i)
	if i == b.End-1 {
		return l.liveOut[b.ID].With(isa.SP)
	}
	return l.LiveIn(i + 1)
}

// BlockLiveIn returns the live-in mask of a block.
func (l *Liveness) BlockLiveIn(id int) isa.RegMask { return l.liveIn[id].With(isa.SP) }

// BlockLiveOut returns the live-out mask of a block.
func (l *Liveness) BlockLiveOut(id int) isa.RegMask { return l.liveOut[id].With(isa.SP) }

package bincfg

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// randPlanProgram emits a random mix of straight-line, branching,
// yielding and calling code — enough shape variety to exercise every
// run-splitting rule.
func randPlanProgram(rng *rand.Rand, n int) *isa.Program {
	p := &isa.Program{}
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1})
		case 1:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpLoad, Rd: 2, Rs1: 13})
		case 2:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpCmpI, Rs1: 1, Imm: 3})
		case 3:
			target := i + 1 + rng.Intn(n-i)
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpJge, Imm: int64(target)})
		case 4:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)})
		case 5:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpCYield, Imm: int64(isa.AllRegs)})
		case 6:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpNop})
		case 7:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpMul, Rd: 3, Rs1: 1, Rs2: 1})
		}
	}
	p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHalt})
	return p
}

// TestFastPathRunsPartition checks the structural invariants FastPathRuns
// promises: runs are sorted, non-overlapping, in bounds, contain no
// stopper instruction, and cover every non-stopper instruction exactly
// once.
func TestFastPathRunsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		prog := randPlanProgram(rng, 5+rng.Intn(60))
		runs, err := FastPathRuns(prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		covered := make([]int, len(prog.Instrs))
		prevEnd := 0
		for _, r := range runs {
			if r.Start < prevEnd || r.End <= r.Start || r.End > len(prog.Instrs) {
				t.Fatalf("trial %d: malformed run %+v (prev end %d)", trial, r, prevEnd)
			}
			prevEnd = r.End
			for pc := r.Start; pc < r.End; pc++ {
				covered[pc]++
			}
		}
		for pc, in := range prog.Instrs {
			stopper := fastPathStopper(in.Op)
			switch {
			case stopper && covered[pc] != 0:
				t.Fatalf("trial %d: stopper %v at pc %d inside a run", trial, in.Op, pc)
			case !stopper && covered[pc] != 1:
				t.Fatalf("trial %d: pc %d covered %d times, want 1", trial, pc, covered[pc])
			}
		}
	}
}

// TestFastPathRunsSplitAtYields pins the one rule the CFG alone does not
// give: yields are not CFG block boundaries but must split runs, because
// the executor takes scheduling decisions there.
func TestFastPathRunsSplitAtYields(t *testing.T) {
	prog := isa.MustAssemble(`
        addi r1, r1, 1
        addi r1, r1, 2
        yield
        addi r1, r1, 3
        halt
    `)
	runs, err := FastPathRuns(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := []cpu.BlockRun{{Start: 0, End: 2}, {Start: 3, End: 4}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %+v, want %+v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs[%d] = %+v, want %+v", i, runs[i], want[i])
		}
	}
}

// TestInstallFastPath checks the one-call setup wires a plan onto the
// core.
func TestInstallFastPath(t *testing.T) {
	prog := isa.MustAssemble(`
        addi r1, r1, 1
        halt
    `)
	m := mem.NewMemory(1 << 16)
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, mem.MustNewHierarchy(mem.DefaultConfig()))
	if core.HasPlan() {
		t.Fatal("fresh core unexpectedly has a plan")
	}
	if err := InstallFastPath(core); err != nil {
		t.Fatal(err)
	}
	if !core.HasPlan() {
		t.Fatal("InstallFastPath did not install a plan")
	}
	if got := core.Plan().FusedEnd(0); got != 1 {
		t.Errorf("FusedEnd(0) = %d, want 1", got)
	}
}

// Package service is the open-loop load harness: a seeded arrival
// process offers requests at a configured rate in *simulated* cycles, a
// bounded admission queue absorbs (or drops) them, and a policy engine
// serves them on the simulated core while background batch work soaks up
// miss shadows and idle cycles. Because requests arrive on the simulated
// clock rather than when the previous one finishes, queueing delay is
// part of every latency sample — this is what makes tail percentiles
// (p99/p999) meaningful, unlike the closed-loop experiment harness where
// a slow request simply delays its successor.
//
// Everything is deterministic: arrivals come from a private splitmix64
// stream, each (policy, rate) cell is a pure single-threaded function of
// the machine and configuration, and sweeps fan cells through the runner
// without sharing any simulator state, so reports are byte-identical
// across GOMAXPROCS settings and repeated runs.
package service

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// CyclesPerMicro converts the harness's rate unit — requests per
// simulated microsecond — into cycles (the 3 GHz core retires 3000
// cycles per µs).
const CyclesPerMicro = 1000 * core.CyclesPerNS

// Kind selects the arrival process.
type Kind uint8

// Arrival processes.
const (
	// Poisson draws i.i.d. exponential inter-arrival gaps — the
	// standard open-loop model for independent datacenter clients.
	Poisson Kind = iota
	// Uniform spaces arrivals exactly 1/Rate apart: a pessimal-free
	// baseline that isolates service-time variance from arrival
	// variance.
	Uniform
	// Bursty clusters arrivals into back-to-back bursts of geometric
	// mean size Burst, with exponential gaps between bursts sized to
	// preserve the overall rate. Bursts are what stress the admission
	// queue and expose drop/shed behavior.
	Bursty
)

func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind parses an arrival-process name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("service: unknown arrival kind %q (want poisson, uniform or bursty)", s)
}

// ArrivalSpec describes the offered load.
type ArrivalSpec struct {
	// Kind is the arrival process.
	Kind Kind
	// Rate is the offered load in requests per simulated microsecond;
	// the mean inter-arrival gap is CyclesPerMicro/Rate cycles.
	Rate float64
	// Burst is the mean burst size for Bursty arrivals (≥ 1; ignored
	// otherwise).
	Burst float64
}

func (s ArrivalSpec) validate() error {
	switch s.Kind {
	case Poisson, Uniform, Bursty:
	default:
		return fmt.Errorf("service: unknown arrival kind %d", uint8(s.Kind))
	}
	if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("service: arrival rate %v must be a positive finite rate (requests/µs)", s.Rate)
	}
	if s.Kind == Bursty && !(s.Burst >= 1) {
		return fmt.Errorf("service: burst size %v must be ≥ 1", s.Burst)
	}
	return nil
}

// splitmix is a private splitmix64 stream: the cycle-domain determinism
// rules (tools/detlint) forbid the global math/rand source, and owning
// the generator pins the arrival sequence to the seed forever.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in the open interval (0, 1); the +0.5
// offset keeps log() finite.
func (r *splitmix) float() float64 {
	return (float64(r.next()>>11) + 0.5) / (1 << 53)
}

// Arrivals generates the seeded arrival sequence: Next returns absolute
// arrival times in simulated cycles, strictly from the seed, one draw
// stream per generator. Time accumulates in float64 and truncates per
// arrival, so long runs hold the configured rate without rounding
// drift.
type Arrivals struct {
	spec  ArrivalSpec
	rng   splitmix
	mean  float64 // mean inter-arrival gap, cycles
	clock float64 // absolute time of the last arrival, cycles
	burst int     // arrivals remaining in the current burst
}

// NewArrivals validates the spec and seeds the generator.
func NewArrivals(spec ArrivalSpec, seed int64) (*Arrivals, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return &Arrivals{
		spec: spec,
		rng:  splitmix{s: uint64(seed)},
		mean: CyclesPerMicro / spec.Rate,
	}, nil
}

// Next returns the absolute simulated cycle of the next arrival. The
// sequence is non-decreasing; Bursty emits equal timestamps inside a
// burst.
func (a *Arrivals) Next() uint64 {
	switch a.spec.Kind {
	case Uniform:
		a.clock += a.mean
	case Poisson:
		a.clock += a.mean * a.exp()
	case Bursty:
		if a.burst > 0 {
			a.burst--
		} else {
			// The inter-burst gap carries the whole burst's worth of
			// spacing, so the long-run rate is preserved.
			a.clock += a.mean * a.spec.Burst * a.exp()
			a.burst = a.geom() - 1
		}
	}
	return uint64(a.clock)
}

// exp draws a unit-mean exponential.
func (a *Arrivals) exp() float64 { return -math.Log(a.rng.float()) }

// geom draws the burst size: geometric with mean Burst (success
// probability 1/Burst), minimum 1.
func (a *Arrivals) geom() int {
	b := a.spec.Burst
	if b <= 1 {
		return 1
	}
	n := 1 + int(math.Log(a.rng.float())/math.Log(1-1/b))
	if n < 1 {
		n = 1
	}
	return n
}

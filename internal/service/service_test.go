package service

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// testConfig returns a small but non-trivial sweep cell configuration:
// memory-bound lookups with compute batch filler.
func testConfig() Config {
	return Config{
		Workload: Workload{
			Request:    workloads.PointerChase{Nodes: 1024, Hops: 8, Instances: 4},
			Background: workloads.Compute{Iters: 1500, Instances: 2},
		},
		Arrivals: ArrivalSpec{Kind: Poisson, Rate: 0.2},
		Requests: 400,
		Workers:  4,
		Queue:    32,
		Batch:    2,
	}
}

// conservation checks the request-accounting invariant after a drained
// run: every arrival is admitted or dropped, and every admitted request
// is completed or shed.
func conservation(t *testing.T, cs CellStats, requests uint64) {
	t.Helper()
	if cs.Requests != requests {
		t.Errorf("%s: generated %d arrivals, want %d", cs.Policy, cs.Requests, requests)
	}
	if cs.Completed+cs.Dropped+cs.Shed != cs.Requests {
		t.Errorf("%s: completed %d + dropped %d + shed %d != arrivals %d",
			cs.Policy, cs.Completed, cs.Dropped, cs.Shed, cs.Requests)
	}
}

// Every policy must serve (and validate) the full request stream.
func TestRunCellAllPolicies(t *testing.T) {
	mach := core.DefaultMachine()
	cfg := testConfig()
	for _, pol := range []Policy{Agnostic, Sidecar, EventAware, OSThread, SMT} {
		cs, err := RunCell(mach, cfg, Cell{Policy: pol, Rate: 0.2})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		conservation(t, cs, uint64(cfg.Requests))
		if cs.Completed == 0 {
			t.Fatalf("%s: no requests completed", pol)
		}
		// The class-blind policies legitimately drop here: requests
		// queue behind whole batch ops (the paper's agnostic
		// pathology), so only the request-aware policies and the
		// stall-switching hardware are held to zero drops.
		if pol == Sidecar || pol == EventAware || pol == SMT {
			if cs.Dropped > 0 {
				t.Errorf("%s: %d drops at light load with queue 32", pol, cs.Dropped)
			}
		}
		if cs.P50 == 0 || cs.P99 < cs.P50 || cs.P999 < cs.P99 {
			t.Errorf("%s: implausible quantiles p50=%d p99=%d p999=%d", pol, cs.P50, cs.P99, cs.P999)
		}
		if pol != SMT && cs.BatchOps == 0 {
			t.Errorf("%s: batch tier did no work", pol)
		}
	}
}

// The asymmetric policies must actually run the episode machinery.
func TestAsymPoliciesHideEpisodes(t *testing.T) {
	mach := core.DefaultMachine()
	cfg := testConfig()
	for _, pol := range []Policy{Sidecar, EventAware} {
		cs, err := RunCell(mach, cfg, Cell{Policy: pol, Rate: 0.2})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if cs.Episodes == 0 {
			t.Errorf("%s: no hide episodes recorded", pol)
		}
	}
}

// Overload: a tiny queue at a rate far beyond capacity must drop at
// the door, and a tight ShedAfter must shed at dispatch — with
// accounting that still conserves every arrival.
func TestOverloadDropAndShed(t *testing.T) {
	mach := core.DefaultMachine()
	cfg := testConfig()
	cfg.Queue = 4
	cfg.Requests = 300
	cs, err := RunCell(mach, cfg, Cell{Policy: Agnostic, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, cs, uint64(cfg.Requests))
	if cs.Dropped == 0 {
		t.Fatalf("no drops at 50 req/µs into a 4-deep queue: %+v", cs)
	}

	cfg = testConfig()
	cfg.Requests = 300
	cfg.ShedAfter = 2000 // far below queueing delay at overload
	cs, err = RunCell(mach, cfg, Cell{Policy: Agnostic, Rate: 20})
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, cs, uint64(cfg.Requests))
	if cs.Shed == 0 {
		t.Fatalf("no sheds with ShedAfter=2000 at 20 req/µs: %+v", cs)
	}
}

// A cell is a pure function: serving the same cell twice must produce
// identical stats, including the rendered histogram.
func TestRunCellDeterministic(t *testing.T) {
	mach := core.DefaultMachine()
	cfg := testConfig()
	cl := Cell{Policy: EventAware, Rate: 0.3}
	a, err := RunCell(mach, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(mach, cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := a.Hist, b.Hist
	a.Hist, b.Hist = nil, nil
	if a != b {
		t.Fatalf("cell stats diverged:\n%+v\n%+v", a, b)
	}
	if ha.String() != hb.String() {
		t.Fatal("sojourn histograms diverged")
	}
}

// CellStats must survive the experiments.Result round-trip (the result
// cache path) exactly.
func TestCellStatsResultRoundTrip(t *testing.T) {
	mach := core.DefaultMachine()
	cs, err := RunCell(mach, testConfig(), Cell{Policy: Sidecar, Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	back, err := CellStatsFromResult(cs.Result())
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := cs.Hist, back.Hist
	cs.Hist, back.Hist = nil, nil
	if cs != back {
		t.Fatalf("round trip changed stats:\n%+v\n%+v", cs, back)
	}
	if ha.String() != hb.String() {
		t.Fatal("round trip changed histogram")
	}
}

// Run serves the whole grid and the report renders one table per
// policy plus the cross-policy p99 comparison.
func TestRunReportShape(t *testing.T) {
	mach := core.DefaultMachine()
	cfg := testConfig()
	cfg.Requests = 150
	cfg.Rates = []float64{0.1, 0.3}
	cfg.Policies = []Policy{Agnostic, EventAware}
	rep, err := Run(mach, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	tables := rep.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 2 per-policy + 1 comparison", len(tables))
	}
	out := rep.String()
	for _, want := range []string{"agnostic", "event-aware", "p99 sojourn"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	if rep.Cell(EventAware, 0.3) == nil {
		t.Fatal("Cell lookup failed")
	}
}

func TestParsePolicies(t *testing.T) {
	ps, err := ParsePolicies("agnostic, event-aware,smt")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[0] != Agnostic || ps[1] != EventAware || ps[2] != SMT {
		t.Fatalf("got %v", ps)
	}
	if _, err := ParsePolicies("bogus"); err == nil {
		t.Fatal("want error")
	}
	for p := Agnostic; p <= SMT; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("%v does not round-trip: %v %v", p, got, err)
		}
	}
}

// Config validation catches the structural mistakes.
func TestConfigValidate(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 8 // request spec only has 4 instances
	if _, err := RunCell(core.DefaultMachine(), cfg, Cell{Policy: Agnostic, Rate: 0.1}); err == nil {
		t.Fatal("want error for workers > request instances")
	}
	cfg = testConfig()
	cfg.Batch = 5 // background spec only has 2 instances
	if _, err := RunCell(core.DefaultMachine(), cfg, Cell{Policy: Agnostic, Rate: 0.1}); err == nil {
		t.Fatal("want error for batch > background instances")
	}
}

package service

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func multiConfig(t *testing.T, cores int, rate float64, requests int) (Config, Cell) {
	t.Helper()
	cfg, err := Config{
		Requests: requests,
		Rates:    []float64{rate},
		Policies: []Policy{EventAware},
		Topology: machine.Topology{Cores: cores},
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, Cell{Policy: EventAware, Rate: rate}
}

// TestDispatcherPerCoreConservation: every request the dispatcher
// assigns to a core is accounted for by that core (completed or shed —
// local queues are sized so cores never drop), and globally every
// generated request ends as exactly one of completed, dropped or shed.
func TestDispatcherPerCoreConservation(t *testing.T) {
	cfg, cl := multiConfig(t, 4, 8, 1200)
	d, err := newDispatcher(core.DefaultMachine(), cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	if err := d.serve(); err != nil {
		t.Fatal(err)
	}

	var assigned, done uint64
	for i, sc := range d.cores {
		s := &sc.c.reg.Service
		if s.Dropped != 0 {
			t.Errorf("core %d dropped %d requests; local queues must never overflow", i, s.Dropped)
		}
		if s.Admitted != s.Arrivals {
			t.Errorf("core %d admitted %d of %d assigned", i, s.Admitted, s.Arrivals)
		}
		if s.Completed+s.Shed != s.Arrivals {
			t.Errorf("core %d: completed %d + shed %d != assigned %d", i, s.Completed, s.Shed, s.Arrivals)
		}
		if s.Arrivals == 0 {
			t.Errorf("core %d was assigned no requests; the balancer is not spreading load", i)
		}
		assigned += s.Arrivals
		done += s.Completed + s.Shed
	}
	if d.generated != uint64(cfg.Requests) {
		t.Fatalf("generated %d of %d requests", d.generated, cfg.Requests)
	}
	if assigned+d.dropped != d.generated {
		t.Errorf("assigned %d + dropped %d != generated %d", assigned, d.dropped, d.generated)
	}
	if done+d.dropped != d.generated {
		t.Errorf("completed+shed %d + dropped %d != generated %d", done, d.dropped, d.generated)
	}

	// The merged report tells the same story.
	cs := d.stats()
	if cs.Completed+cs.Dropped+cs.Shed != cs.Requests {
		t.Errorf("merged stats: completed %d + dropped %d + shed %d != arrivals %d",
			cs.Completed, cs.Dropped, cs.Shed, cs.Requests)
	}
	if cs.Cores != 4 {
		t.Errorf("merged stats report %d cores, want 4", cs.Cores)
	}
}

// TestRunCellMultiDeterministicRepeats: the same multi-core cell served
// twice in-process produces identical stats and histograms (the
// GOMAXPROCS axis is covered end-to-end in the repro package's
// TestServeMulticoreDeterministic).
func TestRunCellMultiDeterministicRepeats(t *testing.T) {
	cfg, cl := multiConfig(t, 2, 6, 600)
	var ref CellStats
	for i := 0; i < 3; i++ {
		cs, err := RunCell(core.DefaultMachine(), cfg, cl)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = cs
			continue
		}
		if cs.Hist.String() != ref.Hist.String() {
			t.Fatalf("run %d: sojourn histogram diverged", i)
		}
		a, b := cs, ref
		a.Hist, b.Hist = nil, nil
		if a != b {
			t.Fatalf("run %d: stats diverged:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

// TestDispatcherSteadyStateAllocs: once the core goroutines are up and
// the first quanta have warmed the slot/queue structures, a full
// admit → balance → quantum barrier round performs zero allocations —
// the same gate internal/machine holds its kernel to.
func TestDispatcherSteadyStateAllocs(t *testing.T) {
	// A request count the measured rounds cannot exhaust: the cell must
	// stay mid-flight (arrivals pumping, cores serving) while we count.
	cfg, cl := multiConfig(t, 2, 6, 1_000_000)
	d, err := newDispatcher(core.DefaultMachine(), cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	round := func() {
		d.pump()
		d.assign()
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("dispatch round allocates %.1f objects per quantum in steady state, want 0", avg)
	}
}

package service

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/smt"
	"repro/internal/workloads"
)

// slot is one worker: a bounded execution context re-armed for request
// after request, so a million-request run needs only Workers contexts.
type slot struct {
	task  *exec.Task
	stack uint64 // this slot's private stack top

	busy       bool
	id         uint64 // request id (selects the instance)
	arrival    uint64 // cycle the request arrived (sojourn base)
	dispatched uint64 // cycle the request took the slot
	expected   uint64 // host-reference result for validation
}

// batchTask is one background task: re-armed with the next instance at
// every halt, so batch work never runs out.
type batchTask struct {
	task  *exec.Task
	stack uint64
	inst  int // instance currently armed
}

// cell is one (policy, rate) point of the sweep: a pure single-threaded
// simulation over its own harness, executor and metrics registry. In a
// multi-core cell each core owns one of these (built from its strided
// per-core machine, arrivals owned by the dispatcher instead), and the
// engines below run it one quantum at a time.
type cell struct {
	cfg  Config
	pol  Policy
	rate float64

	h  *core.Harness
	ex *exec.Executor

	// reg is held by value: a serving cell always records (the sojourn
	// histogram IS the output), so the registry is never nil. The
	// executor observes through &c.reg.
	reg metrics.Registry

	part   *workloads.Part // request part
	entry  int             // request entry in the (possibly rewritten) image
	bpart  *workloads.Part // background part (nil without batch work)
	bentry int

	// arr is the cell-owned arrival process. nil marks a dispatched
	// (multi-core) cell: requests appear in q at quantum barriers via
	// the dispatcher instead of being pumped inline, and the engines run
	// against a quantum deadline rather than to drain.
	arr         *Arrivals
	nextArrival uint64
	generated   uint64

	q     queue
	slots []*slot
	fifo  []int // in-flight slots in arrival order; fifo[0] is the oldest
	batch []*batchTask
	bnext int // next background instance to arm

	steps uint64
	r     cpu.BlockResult

	// Engine state that single-core runs kept in loop locals. It lives
	// on the cell so a deadline-sliced engine resumes mid-discipline
	// exactly where the quantum cut it: a budget stop is a fuel split
	// (equivalence-preserving), so a cell served in quantum slices is
	// byte-identical to the same cell run unsliced.
	cur       int    // ring entity holding the CPU; -1 = none (flat/asym)
	scavIdx   int    // batch rotation cursor (asym)
	inEpisode bool   // an open hide episode (asym)
	epStart   uint64 // episode start cycle
	epTarget  uint64 // episode hide target

	smtCur       int      // SMT rotation cursor
	sliceUsed    uint64   // busy cycles used of the current SMT slice
	smtQuantum   uint64   // SMT hardware-thread slice length
	blockedUntil []uint64 // per-entity SMT memory-stall wakeups
}

// RunCell serves one sweep cell: cfg.Requests requests offered at
// cell.Rate under cell.Policy. It is a pure function of its arguments —
// sweeps may run cells concurrently (each builds its own scenario,
// core and registry) and merge results in grid order. With
// cfg.Topology.Cores > 1 the cell spreads over a many-core machine:
// one arrival stream, per-core policy engines, deterministic quantum
// dispatch (see dispatch.go).
func RunCell(mach core.Machine, cfg Config, cl Cell) (CellStats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return CellStats{}, err
	}
	if cfg.Topology.Cores > 1 {
		return runCellMulti(mach, cfg, cl)
	}
	c, err := newCell(mach, cfg, cl, true)
	if err != nil {
		return CellStats{}, err
	}
	start := c.ex.Core.Now
	if err := c.run(0); err != nil {
		return CellStats{}, err
	}
	return c.stats(c.ex.Core.Now - start), nil
}

// run advances the cell's policy engine until the cell drains
// (single-core cells, deadline 0) or the cycle deadline passes
// (quantum-sliced multi-core cells).
func (c *cell) run(deadline uint64) error {
	switch c.pol {
	case Agnostic, OSThread:
		return c.runFlat(deadline)
	case Sidecar, EventAware:
		return c.runAsym(deadline)
	case SMT:
		return c.runSMT(deadline)
	}
	return fmt.Errorf("service: unknown policy %d", uint8(c.pol))
}

// pipelineOpts builds instrumentation options consistent with the
// machine (the experiment harness uses the same recipe).
func pipelineOpts(mach core.Machine) instrument.PipelineOptions {
	opts := instrument.DefaultPipelineOptions()
	opts.Primary.Machine = mach.Mem
	opts.Primary.CPU = mach.CPU
	opts.Primary.Switch = mach.Switch
	opts.Scavenger.Machine = mach.Mem
	opts.Scavenger.CPU = mach.CPU
	return opts
}

// newCell builds one serving cell over mach. withArrivals selects the
// classic self-clocked form; a dispatched (multi-core) cell leaves arr
// nil — its local queue is fed by the dispatcher at quantum barriers.
func newCell(mach core.Machine, cfg Config, cl Cell, withArrivals bool) (*cell, error) {
	workers := cfg.Workers
	if cl.Policy == Sidecar {
		workers = 1 // the dedicated lane serves strictly one at a time
	}
	specs := []workloads.Spec{cfg.Workload.Request}
	withBatch := cfg.Batch > 0 && cfg.Workload.Background != nil
	if withBatch {
		specs = append(specs, cfg.Workload.Background)
	}
	h, err := core.NewHarness(mach, specs...)
	if err != nil {
		return nil, err
	}
	reqName := cfg.Workload.Request.Name()

	// SMT is hardware-only and runs the uninstrumented binary; every
	// software policy serves the same instrumented image (profile the
	// request part, then insert primary prefetch+yield pairs and
	// scavenger conditional yields), so policies differ only in
	// scheduling, never in code.
	var img *core.Image
	if cl.Policy == SMT {
		img = h.Baseline()
	} else {
		prof, _, err := h.Profile(reqName)
		if err != nil {
			return nil, err
		}
		img, err = h.Instrument(prof, pipelineOpts(mach))
		if err != nil {
			return nil, err
		}
	}

	c := &cell{
		cfg:   cfg,
		pol:   cl.Policy,
		rate:  cl.Rate,
		h:     h,
		part:  h.Sc.Part(reqName),
		entry: img.Entries[reqName],
		q:     newQueue(cfg.Queue),
		cur:   -1,
	}
	execCfg := exec.Config{Switch: mach.Switch, MaxSteps: cfg.MaxSteps, Metrics: &c.reg}
	if cl.Policy == OSThread {
		execCfg.Switch = baselines.OSThreadCostModel()
	}
	c.ex = h.NewExecutor(img, execCfg)
	if len(c.part.Instances) < workers {
		return nil, fmt.Errorf("service: request workload %q provides %d instances for %d workers (each concurrent slot needs its own stack)",
			reqName, len(c.part.Instances), workers)
	}
	for i := 0; i < workers; i++ {
		ctx := coro.NewContext(i, c.entry, c.part.StackTops[i])
		ctx.Name = fmt.Sprintf("worker[%d]", i)
		c.slots = append(c.slots, &slot{task: exec.NewTask(ctx, coro.Primary), stack: c.part.StackTops[i]})
	}
	if withBatch {
		bname := cfg.Workload.Background.Name()
		c.bpart = h.Sc.Part(bname)
		c.bentry = img.Entries[bname]
		if len(c.bpart.Instances) < cfg.Batch {
			return nil, fmt.Errorf("service: background workload %q provides %d instances for %d batch tasks",
				bname, len(c.bpart.Instances), cfg.Batch)
		}
		for k := 0; k < cfg.Batch; k++ {
			ctx := coro.NewContext(workers+k, c.bentry, c.bpart.StackTops[k])
			ctx.Name = fmt.Sprintf("batch[%d]", k)
			b := &batchTask{task: exec.NewTask(ctx, coro.Scavenger), stack: c.bpart.StackTops[k]}
			c.armBatch(b)
			c.batch = append(c.batch, b)
		}
		c.reg.Sched.BatchTasks = uint64(cfg.Batch)
	}
	if cl.Policy == SMT {
		c.blockedUntil = make([]uint64, c.entities())
		c.smtQuantum = smt.DefaultConfig().Quantum
	}

	if withArrivals {
		spec := cfg.Arrivals
		spec.Rate = cl.Rate
		arr, err := NewArrivals(spec, mach.Seed)
		if err != nil {
			return nil, err
		}
		c.arr = arr
		c.nextArrival = arr.Next()
	}
	return c, nil
}

// pending reports whether the engine loop has more to do. A
// self-clocked cell drains its own request budget: every request ends
// as exactly one of completed, dropped or shed. A dispatched cell runs
// until its quantum deadline — the dispatcher, not the core, decides
// when the cell as a whole is drained — so here it is always pending
// and the deadline check in the engine loop is the only exit.
func (c *cell) pending() bool {
	if c.arr == nil {
		return true
	}
	s := &c.reg.Service
	return s.Completed+s.Dropped+s.Shed < uint64(c.cfg.Requests)
}

// pump admits every arrival due at or before the current cycle. After
// pump, either all requests have been generated or the next arrival is
// strictly in the future — which is what makes clip() a positive
// budget. Dispatched cells have no arrival process: their queue is fed
// at quantum barriers and pump is a no-op.
func (c *cell) pump() {
	if c.arr == nil {
		return
	}
	now := c.ex.Core.Now
	for c.generated < uint64(c.cfg.Requests) && c.nextArrival <= now {
		c.reg.Service.Arrivals++
		if c.q.push(request{id: c.generated, arrival: c.nextArrival}) {
			c.reg.Service.Admitted++
		} else {
			c.reg.Service.Dropped++
		}
		c.generated++
		if c.generated < uint64(c.cfg.Requests) {
			c.nextArrival = c.arr.Next()
		}
	}
}

// clip returns the busy-cycle budget to the next scheduling boundary
// (0 = unbounded): the next arrival for self-clocked cells, additionally
// capped by the quantum deadline when one is set. Every engine hands it
// to RunBlock so the simulation re-enters the scheduling loop at each
// boundary. A budget stop is exactly a fuel split — equivalence-
// preserving — so clipping changes no architectural state, only where
// the engine gets to look at the clock.
func (c *cell) clip(deadline uint64) uint64 {
	now := c.ex.Core.Now
	var budget uint64
	if c.arr != nil && c.generated < uint64(c.cfg.Requests) {
		budget = c.nextArrival - now
	}
	if deadline != 0 {
		if b := deadline - now; budget == 0 || b < budget {
			budget = b
		}
	}
	return budget
}

// idle advances the clock to the next arrival (or the quantum deadline,
// whichever is sooner) when nothing is runnable.
func (c *cell) idle(deadline uint64) error {
	now := c.ex.Core.Now
	if c.arr == nil {
		// Dispatched cells idle out the quantum; new work can only
		// appear at the next barrier. The engine loop re-checks the
		// deadline and returns.
		c.ex.Core.AdvanceIdle(deadline - now)
		return nil
	}
	if c.generated >= uint64(c.cfg.Requests) {
		// Unaccounted requests with nothing runnable and nothing to
		// arrive cannot happen: queued requests fill free slots first.
		return fmt.Errorf("service: stalled with no runnable work and no pending arrivals")
	}
	next := c.nextArrival
	if deadline != 0 && deadline < next {
		next = deadline
	}
	c.ex.Core.AdvanceIdle(next - now)
	return nil
}

// arm points s at req: restore the instance's initial registers on the
// slot's private stack and clear all per-run context state. Accounting
// counters survive — they aggregate across requests.
func (c *cell) arm(s *slot, req request) {
	inst := c.part.Instances[int(req.id%uint64(len(c.part.Instances)))]
	ctx := s.task.Ctx
	ctx.Regs = inst.Regs
	ctx.Regs[isa.SP] = s.stack
	ctx.PC = c.entry
	ctx.Flags = 0
	ctx.Halted = false
	ctx.Result = 0
	ctx.LastPrefetchValid = false
	ctx.AccelPending = false
	s.task.Reset()
	s.busy = true
	s.id = req.id
	s.arrival = req.arrival
	s.dispatched = c.ex.Core.Now
	s.expected = inst.Expected
}

// armBatch re-arms b with the next background instance.
func (c *cell) armBatch(b *batchTask) {
	b.inst = c.bnext % len(c.bpart.Instances)
	c.bnext++
	inst := c.bpart.Instances[b.inst]
	ctx := b.task.Ctx
	ctx.Regs = inst.Regs
	ctx.Regs[isa.SP] = b.stack
	ctx.PC = c.bentry
	ctx.Flags = 0
	ctx.Halted = false
	ctx.Result = 0
	ctx.LastPrefetchValid = false
	ctx.AccelPending = false
	b.task.Reset()
}

// fill dispatches queued requests into free slots, shedding stale ones.
// Dispatch order is arrival order (the queue is FIFO), so fifo stays
// sorted by arrival.
func (c *cell) fill() {
	for _, s := range c.slots {
		if s.busy {
			continue
		}
		if !c.dispatch(s) {
			return
		}
	}
}

// dispatch pops the next serviceable request into s; false means the
// queue ran dry.
func (c *cell) dispatch(s *slot) bool {
	now := c.ex.Core.Now
	for {
		req, ok := c.q.pop()
		if !ok {
			return false
		}
		if c.cfg.ShedAfter > 0 && now-req.arrival > c.cfg.ShedAfter {
			c.reg.Service.Shed++
			continue
		}
		c.arm(s, req)
		c.fifo = append(c.fifo, s.task.Ctx.ID)
		return true
	}
}

// complete validates and retires the request in s, recording its
// sojourn (arrival → halt) and service (dispatch → halt) times.
func (c *cell) complete(s *slot) error {
	ctx := s.task.Ctx
	if ctx.Result != s.expected {
		return fmt.Errorf("service: request %d computed %d, reference says %d", s.id, ctx.Result, s.expected)
	}
	now := c.ex.Core.Now
	c.reg.Service.Completed++
	c.reg.Service.Sojourn.Observe(now - s.arrival)
	c.reg.Sched.Requests++
	c.reg.Sched.RequestLatency.Observe(now - s.dispatched)
	s.busy = false
	for i, id := range c.fifo {
		if id == ctx.ID {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	return nil
}

// completeBatch validates the finished batch op and re-arms the task.
func (c *cell) completeBatch(b *batchTask) error {
	if got, want := b.task.Ctx.Result, c.bpart.Instances[b.inst].Expected; got != want {
		return fmt.Errorf("service: batch instance %d computed %d, reference says %d", b.inst, got, want)
	}
	c.reg.Service.BatchOps++
	c.armBatch(b)
	return nil
}

// Ring indexing: entities 0..len(slots)-1 are worker slots,
// len(slots).. are batch tasks.

func (c *cell) entities() int { return len(c.slots) + len(c.batch) }

func (c *cell) taskAt(i int) *exec.Task {
	if i < len(c.slots) {
		return c.slots[i].task
	}
	return c.batch[i-len(c.slots)].task
}

// runnableAt reports whether ring entity i has work: busy slots always,
// batch tasks always (they re-arm on halt).
func (c *cell) runnableAt(i int) bool {
	if i < len(c.slots) {
		return c.slots[i].busy
	}
	return true
}

// nextRunnable scans the ring from cur+1, wrapping through cur itself;
// -1 means nothing is runnable.
func (c *cell) nextRunnable(cur int) int {
	n := c.entities()
	for off := 1; off <= n; off++ {
		i := (cur + off + n) % n
		if c.runnableAt(i) {
			return i
		}
	}
	return -1
}

// haltAt retires ring entity i after its context halted.
func (c *cell) haltAt(i int) error {
	if i < len(c.slots) {
		return c.complete(c.slots[i])
	}
	return c.completeBatch(c.batch[i-len(c.slots)])
}

// expired reports whether the quantum deadline has passed (never true
// for self-clocked cells, which run with deadline 0).
func (c *cell) expired(deadline uint64) bool {
	return deadline != 0 && c.ex.Core.Now >= deadline
}

// runFlat is the Agnostic/OSThread engine: one flat round-robin ring
// over in-flight requests and batch work, rotating at every primary
// yield, blind to request class — requests queue behind batch ops and
// behind each other. OSThread runs the identical discipline with
// kernel-priced switches.
//
//shsim:cycle-entry
//shsim:noalloc
func (c *cell) runFlat(deadline uint64) error {
	for c.pending() {
		if c.expired(deadline) {
			return nil
		}
		if c.steps >= c.cfg.MaxSteps {
			return fmt.Errorf("service: MaxSteps exceeded (%s at rate %g)", c.pol, c.rate) //shsim:alloc-ok cold overrun guard; fails the run
		}
		c.pump()
		c.fill()
		if c.cur < 0 || !c.runnableAt(c.cur) {
			nxt := c.nextRunnable(c.cur)
			if nxt < 0 {
				if err := c.idle(deadline); err != nil {
					return err
				}
				continue
			}
			c.cur = nxt
			c.ex.Resume(c.taskAt(c.cur))
		}
		t := c.taskAt(c.cur)
		if err := c.ex.Core.RunBlock(t.Ctx, false, c.cfg.MaxSteps-c.steps, c.clip(deadline), &c.r); err != nil {
			return err
		}
		c.steps += c.r.Steps
		switch {
		case c.r.Halted:
			if err := c.haltAt(c.cur); err != nil {
				return err
			}
			if nxt := c.nextRunnable(c.cur); nxt >= 0 {
				c.cur = nxt
				c.ex.Resume(c.taskAt(c.cur))
			} else {
				c.cur = -1
			}
		case c.r.Yield:
			if nxt := c.nextRunnable(c.cur); nxt >= 0 && nxt != c.cur {
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.cur = nxt
				c.ex.Resume(c.taskAt(c.cur))
			}
			// Conditional yields stay dormant in the flat disciplines
			// (every task runs in primary mode), and a budget stop just
			// re-enters the loop on the same task.
		}
	}
	return nil
}

// primary returns the ring entity of the oldest in-flight request,
// or -1 (asymmetric policies).
func (c *cell) primary() int {
	if len(c.fifo) == 0 {
		return -1
	}
	return c.fifo[0]
}

// nextScavenger picks the next shadow-filler: younger in-flight
// requests in arrival order, then batch tasks in rotation.
func (c *cell) nextScavenger(exclude int) int {
	if len(c.fifo) > 1 {
		for _, id := range c.fifo[1:] {
			if id != exclude {
				return id
			}
		}
	}
	for off := 0; off < len(c.batch); off++ {
		k := (c.scavIdx + off) % len(c.batch)
		e := len(c.slots) + k
		if e != exclude {
			c.scavIdx = (k + 1) % len(c.batch)
			return e
		}
	}
	return -1
}

// endEpisode closes an open hide episode, if any.
func (c *cell) endEpisode() {
	if !c.inEpisode {
		return
	}
	c.inEpisode = false
	c.reg.Exec.NoteEpisode(c.ex.Core.Now-c.epStart, c.epTarget)
}

// backToPrimary closes any open episode and resumes the oldest request.
func (c *cell) backToPrimary() {
	c.endEpisode()
	c.cur = c.primary()
	c.ex.Resume(c.taskAt(c.cur))
}

// runAsym is the Sidecar/EventAware engine: the oldest in-flight
// request is the primary; its miss shadows are filled by scavengers —
// younger in-flight requests first (EventAware only; Sidecar's single
// lane never has any), then batch tasks — using the dual-mode episode
// discipline of exec.RunDualMode. Between requests, batch tasks fill
// the idle core and hand over at their next yield boundary when a
// request arrives.
//
//shsim:cycle-entry
//shsim:noalloc
func (c *cell) runAsym(deadline uint64) error {
	for c.pending() {
		if c.expired(deadline) {
			return nil
		}
		if c.steps >= c.cfg.MaxSteps {
			return fmt.Errorf("service: MaxSteps exceeded (%s at rate %g)", c.pol, c.rate) //shsim:alloc-ok cold overrun guard; fails the run
		}
		c.pump()
		c.fill()
		if c.cur < 0 {
			// Nothing holds the CPU: the oldest request if any, else
			// batch work, else idle to the next arrival.
			if p := c.primary(); p >= 0 {
				c.cur = p
				c.ex.Resume(c.taskAt(c.cur))
			} else if len(c.batch) > 0 {
				c.cur = len(c.slots) + c.scavIdx%len(c.batch)
				c.scavIdx++
				c.ex.Resume(c.taskAt(c.cur))
			} else {
				if err := c.idle(deadline); err != nil {
					return err
				}
				continue
			}
		}
		t := c.taskAt(c.cur)
		isPrimary := c.cur == c.primary()
		if err := c.ex.Core.RunBlock(t.Ctx, false, c.cfg.MaxSteps-c.steps, c.clip(deadline), &c.r); err != nil {
			return err
		}
		c.steps += c.r.Steps
		now := c.ex.Core.Now
		targetMet := c.inEpisode && now-c.epStart >= c.epTarget

		switch {
		case c.r.Halted:
			if err := c.haltAt(c.cur); err != nil {
				return err
			}
			if isPrimary {
				// The request completed; promote the next oldest. No
				// episode can be open — the primary halts only while
				// running.
				if p := c.primary(); p >= 0 {
					c.cur = p
					c.ex.Resume(c.taskAt(c.cur))
				} else {
					c.cur = -1
				}
				continue
			}
			// A scavenger finished (younger request served in a shadow,
			// or a batch op — already re-armed). Hand back if the
			// episode's window has elapsed, else keep the shadow full;
			// with nothing in flight, fall back to the idle-fill pick.
			switch {
			case targetMet:
				c.backToPrimary()
			case c.inEpisode:
				if nxt := c.nextScavenger(c.cur); nxt >= 0 {
					if nxt != c.cur {
						c.reg.Exec.Chains++
					}
					c.cur = nxt
					c.ex.Resume(c.taskAt(c.cur))
				} else {
					c.backToPrimary()
				}
			case c.primary() >= 0:
				c.cur = c.primary()
				c.ex.Resume(c.taskAt(c.cur))
			default:
				c.cur = -1 // idle fill re-picks at the loop top
			}

		case c.r.Yield:
			if isPrimary {
				// The primary prefetched a likely miss: open a hide
				// episode sized by the prefetch's residual fill time.
				nxt := c.nextScavenger(-1)
				if nxt < 0 {
					continue // nobody to hide behind; eat the miss
				}
				target := c.ex.Cfg.HideTarget
				ctx := t.Ctx
				var residual uint64
				if ctx.LastPrefetchValid {
					residual = c.ex.Core.Hier.Residual(ctx.LastPrefetchAddr, now)
				}
				if ctx.AccelPending && ctx.AccelDone > now {
					if r := ctx.AccelDone - now; r > residual {
						residual = r
					}
				}
				if residual > 0 {
					target = residual
				}
				c.inEpisode = true
				c.epStart = now
				c.epTarget = target
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.cur = nxt
				c.ex.Resume(c.taskAt(c.cur))
				continue
			}
			// A scavenger hit its own likely miss: chain onward; or, if
			// the lane is idle-filling and a request is now waiting,
			// this yield is the hand-over boundary.
			if !c.inEpisode && c.primary() >= 0 {
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.cur = c.primary()
				c.ex.Resume(c.taskAt(c.cur))
				continue
			}
			if nxt := c.nextScavenger(c.cur); nxt >= 0 && nxt != c.cur {
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.reg.Exec.Chains++
				c.cur = nxt
				c.ex.Resume(c.taskAt(c.cur))
			}

		case c.r.CondYield:
			if isPrimary {
				continue // dormant in primary mode
			}
			// Scavenger-phase yield: the hand-back point. Return to the
			// primary once the hide window elapsed, or to a
			// newly-arrived request when the core was idle-filling.
			if targetMet {
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.backToPrimary()
			} else if !c.inEpisode && c.primary() >= 0 {
				c.ex.SwitchOut(t, c.r.LiveMask)
				c.cur = c.primary()
				c.ex.Resume(c.taskAt(c.cur))
			}
		}
	}
	return nil
}

// runSMT is the hardware baseline: worker slots plus batch contexts
// multiplex the core as hardware threads over the uninstrumented
// binary, switching on memory stalls with zero software cost — and zero
// notion of request priority, so batch work is multiplexed like any
// request (the paper's §1 critique). The loop is smt.Runner's
// stall-switch discipline with arrival-clipped budgets and slot
// re-arming.
//
//shsim:cycle-entry
//shsim:noalloc
func (c *cell) runSMT(deadline uint64) error {
	n := c.entities()
	for c.pending() {
		if c.expired(deadline) {
			return nil
		}
		if c.steps >= c.cfg.MaxSteps {
			return fmt.Errorf("service: MaxSteps exceeded (%s at rate %g)", c.pol, c.rate) //shsim:alloc-ok cold overrun guard; fails the run
		}
		c.pump()
		c.fill()
		now := c.ex.Core.Now
		picked := -1
		preemptAt := uint64(0)
		for off := 0; off < n; off++ {
			i := (c.smtCur + off) % n
			if !c.runnableAt(i) {
				continue
			}
			if c.blockedUntil[i] <= now {
				picked = i
				break
			}
			if preemptAt == 0 || c.blockedUntil[i] < preemptAt {
				preemptAt = c.blockedUntil[i]
			}
		}
		if picked < 0 {
			// Every armed context is blocked on memory (or no request
			// is in flight): idle to the earliest wake-up, arrival, or
			// quantum deadline.
			soonest := uint64(0)
			for i := 0; i < n; i++ {
				if c.runnableAt(i) && c.blockedUntil[i] > now &&
					(soonest == 0 || c.blockedUntil[i] < soonest) {
					soonest = c.blockedUntil[i]
				}
			}
			if c.arr != nil && c.generated < uint64(c.cfg.Requests) &&
				(soonest == 0 || c.nextArrival < soonest) {
				soonest = c.nextArrival
			}
			if deadline != 0 && (soonest == 0 || soonest > deadline) {
				soonest = deadline
			}
			if soonest <= now {
				return fmt.Errorf("service: smt deadlock — nothing runnable and nothing pending") //shsim:alloc-ok cold deadlock guard; fails the run
			}
			c.ex.Core.AdvanceIdle(soonest - now)
			continue
		}
		budget := c.smtQuantum - c.sliceUsed
		if preemptAt > now && preemptAt-now < budget {
			budget = preemptAt - now
		}
		if clip := c.clip(deadline); clip > 0 && clip < budget {
			budget = clip
		}
		ctx := c.taskAt(picked).Ctx
		if err := c.ex.Core.RunBlock(ctx, true, c.cfg.MaxSteps-c.steps, budget, &c.r); err != nil {
			return err
		}
		c.steps += c.r.Steps
		c.sliceUsed += c.r.Busy
		rotate := false
		if c.r.Stall > 0 {
			c.blockedUntil[picked] = c.ex.Core.Now + c.r.Stall
			ctx.StallCycles += c.r.Stall
			rotate = true
		}
		if c.r.Halted {
			if err := c.haltAt(picked); err != nil {
				return err
			}
			rotate = true
		}
		if rotate || c.sliceUsed >= c.smtQuantum {
			c.smtCur = (picked + 1) % n
			c.sliceUsed = 0
		}
	}
	return nil
}

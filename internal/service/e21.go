package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/stats"
)

// E21 lives here rather than in internal/experiments because the
// experiment harness cannot import the service package (service
// imports experiments for the Result type); the registry hook runs the
// dependency the other way.
func init() { experiments.Register("E21", E21OpenLoopScaling) }

// E21 sweep shape: offered loads spanning under- to over-saturation of
// one core serving the default memory-bound request mix, core counts
// doubling 1 → 4, and enough requests that the p99 rank sits well
// inside the sample.
var (
	e21Rates = []float64{1, 4, 8}
	e21Cores = []int{1, 2, 4}
)

const e21Requests = 800

// E21OpenLoopScaling reproduces the open-loop tail-latency scaling
// claim on the many-core machine: one Poisson arrival stream per cell,
// load-balanced by the deterministic quantum dispatcher across 1, 2 and
// 4 per-core policy engines sharing an LLC. The table reads as p99
// sojourn (µs) vs offered load, one column per core count: for the
// event-aware policy, added cores must push the saturation knee right —
// p99 at a fixed offered load improves monotonically with cores. The
// class-blind agnostic baseline rides along to show software
// event-awareness still matters once a load balancer is in front.
func E21OpenLoopScaling(mach core.Machine) (*experiments.Result, error) {
	res := &experiments.Result{
		ID:      "E21",
		Title:   "open-loop serving across cores: p99 sojourn vs offered load per core count",
		Metrics: map[string]float64{},
	}
	for _, pol := range []Policy{Agnostic, EventAware} {
		headers := []string{"rate_per_us"}
		for _, n := range e21Cores {
			headers = append(headers, fmt.Sprintf("p99_us_%dc", n))
		}
		t := stats.NewTable(
			fmt.Sprintf("E21: %s p99 sojourn (µs) vs offered load, by core count", pol),
			headers...)
		for _, rate := range e21Rates {
			row := []interface{}{rate}
			for _, n := range e21Cores {
				cfg, err := Config{
					Requests: e21Requests,
					Rates:    []float64{rate},
					Policies: []Policy{pol},
					Topology: machine.Topology{Cores: n},
				}.Normalized()
				if err != nil {
					return nil, err
				}
				cs, err := RunCell(mach, cfg, Cell{Policy: pol, Rate: rate})
				if err != nil {
					return nil, err
				}
				row = append(row, micros(cs.P99))
				prefix := fmt.Sprintf("e21.%s.rate%g.cores%d.", pol, rate, n)
				res.Metrics[prefix+"p99_us"] = micros(cs.P99)
				res.Metrics[prefix+"completed"] = float64(cs.Completed)
				res.Metrics[prefix+"dropped"] = float64(cs.Dropped)
			}
			t.Row(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		"each cell is one arrival stream load-balanced at quantum barriers across per-core policy engines sharing an LLC",
		"event-aware p99 at a fixed offered load improves monotonically as cores double 1 -> 4")
	return res, nil
}

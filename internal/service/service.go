package service

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// Policy selects the serving discipline for one sweep cell. The first
// three mirror internal/sched's closed-loop integration policies
// (§4.2); the last two are the hardware baselines the paper argues
// against.
type Policy uint8

// Serving policies.
const (
	// Agnostic knows nothing about request classes or short events: one
	// flat round-robin queue over in-flight requests and batch work,
	// rotating blindly at every yield. Requests queue behind batch.
	Agnostic Policy = iota
	// Sidecar dedicates a single FIFO lane to requests (one in flight
	// at a time) and lets the event-hiding executor borrow batch tasks
	// as scavengers for each request's miss shadows; between requests,
	// batch work fills the idle lane.
	Sidecar
	// EventAware co-schedules pending requests into the oldest
	// in-flight request's miss shadows ahead of batch work: the
	// scheduler treats a primary yield like a blocking I/O event and
	// always gives the CPU to the most latency-critical runnable task.
	EventAware
	// OSThread is the kernel-thread baseline: the Agnostic discipline
	// with every context switch priced at kernel cost
	// (baselines.OSThreadCostModel).
	OSThread
	// SMT is the hardware baseline: workers plus one batch context
	// multiplex the core as hardware threads, switching on memory
	// stalls with zero software overhead but also zero notion of
	// request priority, over the uninstrumented binary.
	SMT
)

func (p Policy) String() string {
	switch p {
	case Agnostic:
		return "agnostic"
	case Sidecar:
		return "sidecar"
	case EventAware:
		return "event-aware"
	case OSThread:
		return "os-thread"
	case SMT:
		return "smt"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a policy name as printed by Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "agnostic":
		return Agnostic, nil
	case "sidecar":
		return Sidecar, nil
	case "event-aware":
		return EventAware, nil
	case "os-thread":
		return OSThread, nil
	case "smt":
		return SMT, nil
	}
	return 0, fmt.Errorf("service: unknown policy %q (want agnostic, sidecar, event-aware, os-thread or smt)", s)
}

// ParsePolicies parses a comma-separated policy list.
func ParsePolicies(csv string) ([]Policy, error) {
	var out []Policy
	for _, s := range strings.Split(csv, ",") {
		p, err := ParsePolicy(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Workload pairs the latency-sensitive request program with the batch
// work that soaks up miss shadows and idle cycles.
type Workload struct {
	// Request is the per-request program. One request = one instance
	// run to HALT; request j re-arms a worker slot with instance
	// j mod instances, so the spec needs at least Workers instances
	// (each concurrent slot owns one instance's stack).
	Request workloads.Spec
	// Background is the batch work (nil or Batch == 0 disables it).
	// Batch tasks never finish: each halt validates the result, counts
	// a batch op, and re-arms the task with the next instance.
	Background workloads.Spec
}

// Config describes one Serve call: the workload, the offered load, the
// admission policy, and the sweep grid.
type Config struct {
	// Workload is the request/background program pair. Zero means the
	// default pointer-chase request over compute batch work.
	Workload Workload
	// Arrivals is the arrival process; its Rate is used when Rates is
	// empty, otherwise each entry of Rates overrides it per cell.
	Arrivals ArrivalSpec
	// Rates sweeps the offered load (requests per simulated µs).
	Rates []float64
	// Requests is the number of requests offered per cell.
	Requests int
	// Workers bounds concurrent in-flight requests (slots). Sidecar
	// always serves one request at a time regardless.
	Workers int
	// Queue is the admission-queue capacity; arrivals beyond it drop.
	Queue int
	// ShedAfter, when positive, sheds requests older than this many
	// cycles at dispatch time (admitted, but too stale to serve).
	ShedAfter uint64
	// Batch is the number of background batch tasks.
	Batch int
	// Policies is the serving-discipline sweep.
	Policies []Policy
	// MaxSteps bounds retired instructions per cell (runaway guard,
	// summed across cores for multi-core cells).
	MaxSteps uint64
	// Topology spreads each cell over a many-core machine: one shared
	// open-loop arrival stream is load-balanced across Cores per-core
	// policy engines contending for the shared LLC under the
	// cycle-quantum kernel. Cores ≤ 1 (the default) serves on the
	// classic single-core engine. The Machine and PerCoreMem fields are
	// ignored — RunCell's machine argument is the authoritative per-core
	// template (normalization zeroes them so a cache key never depends
	// on a field the simulation does not read).
	Topology machine.Topology
}

// DefaultConfig returns a moderate sweep: memory-bound point lookups
// arriving Poisson at three offered loads, served by the three software
// policies plus the OS-thread baseline.
func DefaultConfig() Config {
	return Config{
		Arrivals: ArrivalSpec{Kind: Poisson, Rate: 0.2, Burst: 8},
		Rates:    []float64{0.05, 0.1, 0.2},
		Requests: 2000,
		Policies: []Policy{Agnostic, Sidecar, EventAware, OSThread},
	}
}

// withDefaults fills zero-value fields.
func (cfg Config) withDefaults() Config {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.Batch == 0 && cfg.Workload.Background == nil {
		cfg.Batch = 2
	}
	if cfg.Requests == 0 {
		cfg.Requests = DefaultConfig().Requests
	}
	if cfg.Workload.Request == nil {
		// Point lookups: a short dependent-pointer walk, the paper's
		// model of a memory-bound request (§2).
		cfg.Workload.Request = workloads.PointerChase{Nodes: 4096, Hops: 24, Instances: cfg.Workers}
	}
	if cfg.Workload.Background == nil && cfg.Batch > 0 {
		cfg.Workload.Background = workloads.Compute{Iters: 3000, Instances: cfg.Batch}
	}
	if cfg.Arrivals.Kind == Poisson && cfg.Arrivals.Rate == 0 {
		cfg.Arrivals = DefaultConfig().Arrivals
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{cfg.Arrivals.Rate}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = DefaultConfig().Policies
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 40
	}
	if cfg.Topology.Cores == 0 {
		cfg.Topology.Cores = 1
	}
	// The per-core template comes from RunCell's machine argument, never
	// from the topology: zeroing the unread fields keeps the normalized
	// config (the cache-key contract) independent of them.
	cfg.Topology.Machine = core.Machine{}
	cfg.Topology.PerCoreMem = nil
	if cfg.Topology.Cores > 1 {
		if cfg.Topology.LLC == (mem.LLCConfig{}) {
			cfg.Topology.LLC = mem.DefaultLLCConfig(cfg.Topology.Cores)
		}
		if cfg.Topology.Quantum == 0 {
			cfg.Topology.Quantum = machine.DefaultQuantum
		}
	} else {
		// Single-core cells never slice quanta or touch a shared LLC, so
		// the canonical form of every ≤1-core topology is the same.
		cfg.Topology.LLC = mem.LLCConfig{}
		cfg.Topology.Quantum = 0
	}
	return cfg
}

// Normalized fills every zero field with its default and validates the
// result: the exact configuration RunCell executes. Callers deriving
// cache keys must key on the normalized value, so an explicit default
// and a zero field name the same computation.
func (cfg Config) Normalized() (Config, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the configuration after default-filling.
func (cfg Config) Validate() error {
	if cfg.Workload.Request == nil {
		return fmt.Errorf("service: no request workload")
	}
	if cfg.Requests < 1 {
		return fmt.Errorf("service: request count %d must be positive", cfg.Requests)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("service: worker count %d must be positive", cfg.Workers)
	}
	if cfg.Queue < 1 {
		return fmt.Errorf("service: queue capacity %d must be positive", cfg.Queue)
	}
	if cfg.Batch < 0 {
		return fmt.Errorf("service: negative batch task count %d", cfg.Batch)
	}
	if cfg.Batch > 0 && cfg.Workload.Background == nil {
		return fmt.Errorf("service: %d batch tasks but no background workload", cfg.Batch)
	}
	for _, r := range cfg.Rates {
		spec := cfg.Arrivals
		spec.Rate = r
		if err := spec.validate(); err != nil {
			return err
		}
	}
	for _, p := range cfg.Policies {
		if p > SMT {
			return fmt.Errorf("service: unknown policy %d", uint8(p))
		}
	}
	if cfg.Topology.Cores < 1 {
		return fmt.Errorf("service: core count %d must be at least 1", cfg.Topology.Cores)
	}
	if cfg.Topology.Cores > 1 {
		if err := cfg.Topology.LLC.Validate(); err != nil {
			return err
		}
		if cfg.Topology.Quantum == 0 {
			return fmt.Errorf("service: multi-core cells need a positive cycle quantum")
		}
	}
	return nil
}

// Cell identifies one point of the sweep grid.
type Cell struct {
	Policy Policy
	Rate   float64
}

// Cells enumerates the sweep grid in deterministic order: policies in
// configured order, rates ascending within each policy as given.
func (cfg Config) Cells() []Cell {
	var cells []Cell
	for _, p := range cfg.Policies {
		for _, r := range cfg.Rates {
			cells = append(cells, Cell{Policy: p, Rate: r})
		}
	}
	return cells
}

// Run serves the whole sweep sequentially and assembles the report.
// Each cell is a pure function of (mach, cfg, cell); parallel sweeps go
// through the runner instead (see the repro package's Session.Serve).
func Run(mach core.Machine, cfg Config) (*Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	var cells []CellStats
	for _, cell := range cfg.Cells() {
		cs, err := RunCell(mach, cfg, cell)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cs)
	}
	return &Report{Cells: cells}, nil
}

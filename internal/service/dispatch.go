package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// serveCore is one core of a multi-core serving cell: a dispatched cell
// (no arrival process of its own) advanced one quantum per handshake on
// its own goroutine, exactly like internal/machine's coreRunner. The
// two plain channel operations per quantum are both the determinism
// barrier and the happens-before edges the race detector needs.
type serveCore struct {
	c     *cell
	start chan uint64   // dispatcher → core: quantum deadline
	ack   chan struct{} // core → dispatcher: quantum complete
	err   error
}

// loop is the core goroutine: one quantum per handshake, no allocation,
// exits when the dispatcher closes the start channel.
//
//shsim:quantum-phase
func (sc *serveCore) loop() {
	for deadline := range sc.start {
		if sc.err == nil {
			sc.err = sc.run(deadline)
		}
		sc.ack <- struct{}{}
	}
}

// run advances the core's policy engine to the deadline, then tops the
// clock up to the barrier: engines return with Now ≥ deadline on every
// nil path, but an idle top-up here keeps the invariant local and
// guards causality — a core whose clock lagged the barrier could
// otherwise complete a request before its recorded arrival.
//
//shsim:quantum-phase
func (sc *serveCore) run(deadline uint64) error {
	if err := sc.c.run(deadline); err != nil {
		return err
	}
	if now := sc.c.ex.Core.Now; now < deadline {
		sc.c.ex.Core.AdvanceIdle(deadline - now)
	}
	return nil
}

// dispatcher serves one multi-core cell: a single open-loop arrival
// stream (seeded from the template machine, unstrided) feeds the shared
// bounded admission queue; at every quantum barrier the dispatcher
// drains it into per-core local run queues in deterministic core-index
// order, using each core's queue depth plus in-flight count as of the
// just-committed quantum as the load signal (one-quantum-lag feedback,
// mirroring the LLC commit protocol). Cores then advance one quantum
// concurrently against frozen shared-LLC state, and their traffic
// commits in core-index order — so the whole cell is a pure function of
// (machine, config, cell), byte-identical at any GOMAXPROCS.
type dispatcher struct {
	cfg  Config
	cl   Cell
	topo machine.Topology
	llc  *mem.SharedLLC

	cores []*serveCore

	arr         *Arrivals
	nextArrival uint64
	generated   uint64

	shared  queue  // bounded admission queue (capacity cfg.Queue)
	dropped uint64 // rejected at a full admission queue

	barrier uint64 // last committed barrier cycle
	started bool
	closed  bool
}

// newDispatcher builds the per-core cells (each over its strided
// CoreMachine, its view of the shared LLC attached in core-index
// order) and the one shared arrival process.
func newDispatcher(mach core.Machine, cfg Config, cl Cell) (*dispatcher, error) {
	topo := cfg.Topology
	topo.Machine = mach
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	llc, err := mem.NewSharedLLC(topo.LLC)
	if err != nil {
		return nil, err
	}
	d := &dispatcher{cfg: cfg, cl: cl, topo: topo, llc: llc, shared: newQueue(cfg.Queue)}
	for i := 0; i < topo.Cores; i++ {
		c, err := newCell(topo.CoreMachine(i), cfg, cl, false)
		if err != nil {
			return nil, fmt.Errorf("service: core %d: %w", i, err)
		}
		c.ex.Core.Hier.AttachLLC(llc.NewView(i))
		// The local run queue stages assigned-but-undispatched work; one
		// slot's worth per worker keeps assignment reactive (work waits
		// in the shared queue, where the balancer can still steer it,
		// rather than behind one core).
		c.q = newQueue(len(c.slots))
		d.cores = append(d.cores, &serveCore{
			c:     c,
			start: make(chan uint64),
			ack:   make(chan struct{}),
		})
	}
	spec := cfg.Arrivals
	spec.Rate = cl.Rate
	arr, err := NewArrivals(spec, mach.Seed)
	if err != nil {
		return nil, err
	}
	d.arr = arr
	d.nextArrival = arr.Next()
	return d, nil
}

// runCellMulti serves one cell over cfg.Topology.Cores cores.
func runCellMulti(mach core.Machine, cfg Config, cl Cell) (CellStats, error) {
	d, err := newDispatcher(mach, cfg, cl)
	if err != nil {
		return CellStats{}, err
	}
	defer d.close()
	if err := d.serve(); err != nil {
		return CellStats{}, err
	}
	return d.stats(), nil
}

// pump admits every arrival due at or before the committed barrier into
// the shared admission queue. Arrivals inside the quantum just run wait
// for its barrier — the same one-quantum lag the LLC commit imposes on
// contention — so admission order is a pure function of the arrival
// process, never of core timing.
func (d *dispatcher) pump() {
	for d.generated < uint64(d.cfg.Requests) && d.nextArrival <= d.barrier {
		if !d.shared.push(request{id: d.generated, arrival: d.nextArrival}) {
			d.dropped++
		}
		d.generated++
		if d.generated < uint64(d.cfg.Requests) {
			d.nextArrival = d.arr.Next()
		}
	}
}

// assign drains the shared queue into per-core local queues: each
// request goes to the least-loaded core (local queue depth plus
// in-flight requests, as of the committed barrier), lowest index
// winning ties. Assignment stops when every local queue is full — the
// remainder waits in the shared queue where the next barrier's load
// signal can still steer it.
func (d *dispatcher) assign() {
	for !d.shared.empty() {
		best, bestLoad := -1, 0
		for i, sc := range d.cores {
			c := sc.c
			if c.q.n == len(c.q.buf) {
				continue
			}
			load := c.q.n + len(c.fifo)
			if best < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
		if best < 0 {
			return
		}
		req, _ := d.shared.pop()
		c := d.cores[best].c
		c.reg.Service.Arrivals++
		c.reg.Service.Admitted++
		c.q.push(req)
	}
}

// step runs one cycle quantum: every core advances to the next barrier
// on its own goroutine, the dispatcher waits for all of them, and the
// shared LLC commits the quantum's traffic in core-index order. The
// steady-state path performs no allocation.
//
//shsim:commit-phase
//shsim:cycle-entry
func (d *dispatcher) step() error {
	if !d.started {
		for _, sc := range d.cores {
			go sc.loop()
		}
		d.started = true
	}
	d.barrier += d.topo.Quantum
	for _, sc := range d.cores {
		sc.start <- d.barrier
	}
	for _, sc := range d.cores {
		<-sc.ack
	}
	d.llc.Commit()
	var steps uint64
	for i, sc := range d.cores {
		if sc.err != nil {
			return fmt.Errorf("service: core %d: %w", i, sc.err)
		}
		steps += sc.c.steps
	}
	if steps > d.cfg.MaxSteps {
		return fmt.Errorf("service: MaxSteps exceeded across %d cores (%s at rate %g)",
			d.topo.Cores, d.cl.Policy, d.cl.Rate)
	}
	return nil
}

// drained reports whether the cell is finished: every request
// generated, and no work waiting or in flight anywhere.
func (d *dispatcher) drained() bool {
	if d.generated < uint64(d.cfg.Requests) || !d.shared.empty() {
		return false
	}
	for _, sc := range d.cores {
		if !sc.c.q.empty() || len(sc.c.fifo) > 0 {
			return false
		}
	}
	return true
}

// reconcile checks request conservation at cell end: every generated
// request ended as exactly one of completed, dropped or shed.
func (d *dispatcher) reconcile() error {
	done := d.dropped
	for _, sc := range d.cores {
		s := &sc.c.reg.Service
		done += s.Completed + s.Shed
	}
	if done != d.generated {
		return fmt.Errorf("service: conservation violated — %d requests generated, %d accounted for", d.generated, done)
	}
	return nil
}

// serve is the dispatch loop: admit (pump), balance (assign), then one
// quantum (step), until the cell drains. All forward progress of the
// multi-core serving clock flows through here.
//
//shsim:cycle-entry
func (d *dispatcher) serve() error {
	for {
		d.pump()
		d.assign()
		if d.drained() {
			return d.reconcile()
		}
		if err := d.step(); err != nil {
			return err
		}
	}
}

// close shuts the core goroutines down. Idempotent.
func (d *dispatcher) close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.started {
		for _, sc := range d.cores {
			close(sc.start)
		}
	}
}

// stats merges the per-core summaries into one CellStats: counters sum,
// per-core sojourn histograms fold together bucket-wise (exactly
// equivalent to one histogram observing every request), quantiles come
// from the merged histogram, and the cell's wall clock is the furthest
// core clock.
func (d *dispatcher) stats() CellStats {
	var merged metrics.FineHist
	cs := CellStats{
		Policy:   d.cl.Policy,
		Rate:     d.cl.Rate,
		Cores:    d.topo.Cores,
		Requests: d.generated,
		Dropped:  d.dropped,
	}
	for _, sc := range d.cores {
		c := sc.c
		s := &c.reg.Service
		cs.Completed += s.Completed
		cs.Shed += s.Shed
		cs.BatchOps += s.BatchOps
		cs.Episodes += c.reg.Exec.Episodes
		cs.Chains += c.reg.Exec.Chains
		merged.Merge(&s.Sojourn)
		if now := c.ex.Core.Now; now > cs.Cycles {
			cs.Cycles = now
		}
		for _, sl := range c.slots {
			cs.Switches += sl.task.Ctx.Switches
		}
		for _, b := range c.batch {
			cs.Switches += b.task.Ctx.Switches
		}
	}
	cs.P50 = merged.Quantile(0.50)
	cs.P99 = merged.Quantile(0.99)
	cs.P999 = merged.Quantile(0.999)
	cs.MeanSojourn = merged.Mean()
	cs.MaxSojourn = merged.Max
	cs.Hist = sojournTable(&merged, d.cl.Policy, d.cl.Rate)
	return cs
}

package service

// request is one admitted request waiting for (or holding) a worker
// slot. id doubles as the instance selector: request j runs the request
// part's instance j mod len(instances).
type request struct {
	id      uint64
	arrival uint64 // absolute simulated cycle of arrival
}

// queue is the bounded FIFO admission buffer. A fixed ring — the
// steady-state serving loop performs no allocation.
type queue struct {
	buf  []request
	head int
	n    int
}

func newQueue(capacity int) queue {
	return queue{buf: make([]request, capacity)}
}

// push admits r; false means the queue is full (the caller records a
// drop).
func (q *queue) push(r request) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
	return true
}

// pop removes the oldest request; false means empty.
func (q *queue) pop() (request, bool) {
	if q.n == 0 {
		return request{}, false
	}
	r := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r, true
}

func (q *queue) empty() bool { return q.n == 0 }

package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// e21GoldenPath pins E21's rendered tables and metrics byte-for-byte,
// the same determinism contract internal/experiments' golden fixture
// enforces for E1–E20 (E21's golden lives here because the experiment
// does: the harness package cannot import service).
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/service -run TestE21Golden
const e21GoldenPath = "testdata/e21_golden.txt"

func TestE21Registered(t *testing.T) {
	run, ok := experiments.Lookup("E21")
	if !ok {
		t.Fatal("E21 not in the experiment registry")
	}
	if run == nil {
		t.Fatal("E21 registered with a nil runner")
	}
	ids := experiments.IDs()
	if ids[len(ids)-1] != "E21" {
		t.Fatalf("registered experiments should follow the built-ins; IDs end with %q", ids[len(ids)-1])
	}
}

func TestE21Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("E21 serves 18 sweep cells; skipped under -short")
	}
	mach := core.DefaultMachine()
	res, err := E21OpenLoopScaling(mach)
	if err != nil {
		t.Fatal(err)
	}

	// The scaling claim itself: for the event-aware policy at the
	// highest offered load (well past one core's saturation), p99
	// sojourn improves strictly as cores double 1 → 2 → 4.
	rate := e21Rates[len(e21Rates)-1]
	var prev float64
	for i, n := range e21Cores {
		key := fmt.Sprintf("e21.%s.rate%g.cores%d.p99_us", EventAware, rate, n)
		p99, ok := res.Metrics[key]
		if !ok {
			t.Fatalf("E21 result lacks metric %q", key)
		}
		if i > 0 && p99 >= prev {
			t.Errorf("event-aware p99 at rate %g did not improve: %d cores %.3fµs, previous %.3fµs",
				rate, n, p99, prev)
		}
		prev = p99
	}

	got := fmt.Sprintf("golden E21 tables — seed %d\n\n%s%s\n",
		mach.Seed, res.String(), res.MetricsString())
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(e21GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(e21GoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", e21GoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(e21GoldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("E21 output diverges from golden fixture:\n got:\n%s\nwant:\n%s", got, want)
	}
}

package service

import (
	"math"
	"runtime"
	"testing"
)

// The seeded sequences are pinned exactly: the arrival stream is part
// of every cached service result's identity, so a drift here is a
// compatibility break, not a tuning change.
func TestArrivalsGoldenSequences(t *testing.T) {
	cases := []struct {
		name string
		spec ArrivalSpec
		seed int64
		want []uint64
	}{
		{
			name: "poisson",
			spec: ArrivalSpec{Kind: Poisson, Rate: 0.5},
			seed: 20230626,
			want: []uint64{70, 1358, 4509, 5694, 6488, 10587, 12719, 16359},
		},
		{
			name: "bursty",
			spec: ArrivalSpec{Kind: Bursty, Rate: 1, Burst: 4},
			seed: 7,
			want: []uint64{11304, 11304, 11304, 11304, 11304, 11304, 11304, 11304, 11304, 11304, 11304, 11304},
		},
		{
			name: "uniform",
			spec: ArrivalSpec{Kind: Uniform, Rate: 0.75},
			seed: 1,
			want: []uint64{4000, 8000, 12000, 16000, 20000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewArrivals(tc.spec, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range tc.want {
				if got := a.Next(); got != want {
					t.Fatalf("arrival %d = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// The generator is pure state: repeated runs and any GOMAXPROCS
// setting must produce the identical sequence.
func TestArrivalsDeterministic(t *testing.T) {
	gen := func() []uint64 {
		a, err := NewArrivals(ArrivalSpec{Kind: Bursty, Rate: 2, Burst: 8}, 42)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 10000)
		for i := range out {
			out[i] = a.Next()
		}
		return out
	}
	ref := gen()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got := gen()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: arrival %d = %d, want %d", procs, i, got[i], ref[i])
			}
		}
	}
}

// Every process must hold its configured long-run rate: the mean
// inter-arrival gap over a long sequence stays within tolerance of
// CyclesPerMicro/Rate.
func TestArrivalsEmpiricalRate(t *testing.T) {
	const n = 200000
	cases := []struct {
		name string
		spec ArrivalSpec
		tol  float64 // relative tolerance on the mean gap
	}{
		{"poisson", ArrivalSpec{Kind: Poisson, Rate: 0.5}, 0.02},
		{"uniform", ArrivalSpec{Kind: Uniform, Rate: 0.5}, 0.001},
		{"bursty", ArrivalSpec{Kind: Bursty, Rate: 0.5, Burst: 8}, 0.05},
		{"poisson-fast", ArrivalSpec{Kind: Poisson, Rate: 4}, 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewArrivals(tc.spec, 20230626)
			if err != nil {
				t.Fatal(err)
			}
			var last uint64
			for i := 0; i < n; i++ {
				last = a.Next()
			}
			mean := float64(last) / n
			want := CyclesPerMicro / tc.spec.Rate
			if rel := math.Abs(mean-want) / want; rel > tc.tol {
				t.Fatalf("mean gap %.1f cycles, want %.1f ± %.1f%%", mean, want, tc.tol*100)
			}
		})
	}
}

// Bursty emits non-decreasing timestamps and actually clusters:
// with mean burst 8 a long stream must contain many zero gaps.
func TestArrivalsBurstyClusters(t *testing.T) {
	a, err := NewArrivals(ArrivalSpec{Kind: Bursty, Rate: 1, Burst: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	zero := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := a.Next()
		if v < prev {
			t.Fatalf("arrival %d went backwards: %d after %d", i, v, prev)
		}
		if i > 0 && v == prev {
			zero++
		}
		prev = v
	}
	// Mean burst 8 → ~7/8 of gaps are intra-burst.
	if zero < n/2 {
		t.Fatalf("only %d/%d zero gaps; bursts are not clustering", zero, n)
	}
}

func TestArrivalSpecValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Kind: Poisson, Rate: 0},
		{Kind: Uniform, Rate: -1},
		{Kind: Bursty, Rate: 1, Burst: 0.5},
		{Kind: Kind(99), Rate: 1},
		{Kind: Poisson, Rate: math.Inf(1)},
	}
	for _, spec := range bad {
		if _, err := NewArrivals(spec, 1); err == nil {
			t.Errorf("spec %+v: want error", spec)
		}
	}
	if _, err := ParseKind("bursty"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

package service

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// CellStats summarizes one served sweep cell. All fields round-trip
// through experiments.Result (Result / CellStatsFromResult), so a cell
// replayed from the result cache renders byte-identically to one served
// fresh.
type CellStats struct {
	Policy Policy
	Rate   float64 // offered load, requests/µs
	Cores  int     // cores the cell was served on (1 = classic engine)

	Requests  uint64 // arrivals generated
	Completed uint64
	Dropped   uint64 // rejected at a full admission queue
	Shed      uint64 // abandoned at dispatch (older than ShedAfter)
	BatchOps  uint64 // background batch completions

	Cycles   uint64 // serving-loop wall cycles
	Switches uint64 // context switches enacted
	Episodes uint64 // hide episodes (asymmetric policies)
	Chains   uint64 // scavenger chain hand-offs

	// Sojourn quantiles (arrival → retire), cycles. Quantile values are
	// FineHist bucket upper bounds (≤6% wide), Mean and Max exact.
	P50, P99, P999 uint64
	MeanSojourn    float64
	MaxSojourn     uint64

	// Hist is the full sojourn histogram (non-empty fine buckets), kept
	// as a rendered table so it survives the JSON result cache.
	Hist *stats.Table
}

// Throughput returns completed requests per simulated microsecond.
func (cs CellStats) Throughput() float64 {
	if cs.Cycles == 0 {
		return 0
	}
	return float64(cs.Completed) / (float64(cs.Cycles) / CyclesPerMicro)
}

// micros converts cycles to simulated microseconds.
func micros(cycles uint64) float64 { return float64(cycles) / CyclesPerMicro }

// P50Micros, P99Micros and P999Micros report the sojourn quantiles in
// simulated microseconds.
func (cs CellStats) P50Micros() float64  { return micros(cs.P50) }
func (cs CellStats) P99Micros() float64  { return micros(cs.P99) }
func (cs CellStats) P999Micros() float64 { return micros(cs.P999) }

// stats assembles the cell summary from the private registry.
func (c *cell) stats(cycles uint64) CellStats {
	s := &c.reg.Service
	cs := CellStats{
		Policy:      c.pol,
		Rate:        c.rate,
		Cores:       1,
		Requests:    s.Arrivals,
		Completed:   s.Completed,
		Dropped:     s.Dropped,
		Shed:        s.Shed,
		BatchOps:    s.BatchOps,
		Cycles:      cycles,
		Episodes:    c.reg.Exec.Episodes,
		Chains:      c.reg.Exec.Chains,
		P50:         s.Sojourn.Quantile(0.50),
		P99:         s.Sojourn.Quantile(0.99),
		P999:        s.Sojourn.Quantile(0.999),
		MeanSojourn: s.Sojourn.Mean(),
		MaxSojourn:  s.Sojourn.Max,
		Hist:        sojournTable(&s.Sojourn, c.pol, c.rate),
	}
	for _, sl := range c.slots {
		cs.Switches += sl.task.Ctx.Switches
	}
	for _, b := range c.batch {
		cs.Switches += b.task.Ctx.Switches
	}
	return cs
}

// sojournTable renders the non-empty fine buckets. A nil histogram
// (metrics off) renders as an empty table.
func sojournTable(h *metrics.FineHist, pol Policy, rate float64) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("sojourn histogram: %s at %g req/µs (cycles)", pol, rate),
		"bucket_lo", "bucket_hi", "count")
	if h == nil {
		return t
	}
	for i := 0; i < metrics.NumFineBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		lo, hi := metrics.FineBucketBounds(i)
		t.Row(lo, hi, h.Buckets[i])
	}
	return t
}

// ResultID is the canonical experiments.Result ID for a sweep cell.
func (cl Cell) ResultID() string {
	return fmt.Sprintf("serve/%s/rate=%g", cl.Policy, cl.Rate)
}

// resultKeys are the CellStats scalars carried in Result.Metrics.
const (
	keyPolicy    = "policy_code"
	keyRate      = "rate_per_us"
	keyCores     = "cores"
	keyRequests  = "requests"
	keyCompleted = "completed"
	keyDropped   = "dropped"
	keyShed      = "shed"
	keyBatchOps  = "batch_ops"
	keyCycles    = "cycles"
	keySwitches  = "switches"
	keyEpisodes  = "episodes"
	keyChains    = "chains"
	keyP50       = "sojourn_p50_cycles"
	keyP99       = "sojourn_p99_cycles"
	keyP999      = "sojourn_p999_cycles"
	keyMean      = "sojourn_mean_cycles"
	keyMax       = "sojourn_max_cycles"
)

// Result converts the cell summary to an experiments.Result so sweep
// cells flow through the runner and its content-addressed cache like
// any experiment. The scalars ride in Metrics, the sojourn histogram in
// Tables[0].
func (cs CellStats) Result() *experiments.Result {
	res := &experiments.Result{
		ID:    Cell{Policy: cs.Policy, Rate: cs.Rate}.ResultID(),
		Title: fmt.Sprintf("open-loop service: %s at %g req/µs", cs.Policy, cs.Rate),
		Metrics: map[string]float64{
			keyPolicy:    float64(cs.Policy),
			keyRate:      cs.Rate,
			keyCores:     float64(cs.Cores),
			keyRequests:  float64(cs.Requests),
			keyCompleted: float64(cs.Completed),
			keyDropped:   float64(cs.Dropped),
			keyShed:      float64(cs.Shed),
			keyBatchOps:  float64(cs.BatchOps),
			keyCycles:    float64(cs.Cycles),
			keySwitches:  float64(cs.Switches),
			keyEpisodes:  float64(cs.Episodes),
			keyChains:    float64(cs.Chains),
			keyP50:       float64(cs.P50),
			keyP99:       float64(cs.P99),
			keyP999:      float64(cs.P999),
			keyMean:      cs.MeanSojourn,
			keyMax:       float64(cs.MaxSojourn),
		},
	}
	if cs.Hist != nil {
		res.Tables = append(res.Tables, cs.Hist)
	}
	return res
}

// CellStatsFromResult is the inverse of CellStats.Result, used when a
// sweep cell is served from the result cache.
func CellStatsFromResult(res *experiments.Result) (CellStats, error) {
	get := func(key string) (float64, error) {
		v, ok := res.Metrics[key]
		if !ok {
			return 0, fmt.Errorf("service: result %s lacks metric %q", res.ID, key)
		}
		return v, nil
	}
	var cs CellStats
	var err error
	read := func(dst *uint64, key string) {
		if err != nil {
			return
		}
		var v float64
		if v, err = get(key); err == nil {
			*dst = uint64(v)
		}
	}
	var pol float64
	if pol, err = get(keyPolicy); err != nil {
		return CellStats{}, err
	}
	cs.Policy = Policy(pol)
	if cs.Rate, err = get(keyRate); err != nil {
		return CellStats{}, err
	}
	var cores float64
	if cores, err = get(keyCores); err != nil {
		return CellStats{}, err
	}
	cs.Cores = int(cores)
	read(&cs.Requests, keyRequests)
	read(&cs.Completed, keyCompleted)
	read(&cs.Dropped, keyDropped)
	read(&cs.Shed, keyShed)
	read(&cs.BatchOps, keyBatchOps)
	read(&cs.Cycles, keyCycles)
	read(&cs.Switches, keySwitches)
	read(&cs.Episodes, keyEpisodes)
	read(&cs.Chains, keyChains)
	read(&cs.P50, keyP50)
	read(&cs.P99, keyP99)
	read(&cs.P999, keyP999)
	read(&cs.MaxSojourn, keyMax)
	if err != nil {
		return CellStats{}, err
	}
	if cs.MeanSojourn, err = get(keyMean); err != nil {
		return CellStats{}, err
	}
	if len(res.Tables) > 0 {
		cs.Hist = res.Tables[0]
	}
	return cs, nil
}

// Report is a served sweep: one CellStats per (policy, rate) grid
// point, in grid order (policies as configured, rates within).
type Report struct {
	Cells []CellStats
}

// Cell returns the stats for a grid point, or nil.
func (r *Report) Cell(p Policy, rate float64) *CellStats {
	for i := range r.Cells {
		if r.Cells[i].Policy == p && r.Cells[i].Rate == rate {
			return &r.Cells[i]
		}
	}
	return nil
}

// policies lists distinct policies in first-seen cell order.
func (r *Report) policies() []Policy {
	var out []Policy
	for _, cs := range r.Cells {
		seen := false
		for _, p := range out {
			if p == cs.Policy {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, cs.Policy)
		}
	}
	return out
}

// rates lists distinct offered loads in first-seen cell order.
func (r *Report) rates() []float64 {
	var out []float64
	for _, cs := range r.Cells {
		seen := false
		for _, v := range out {
			if v == cs.Rate {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, cs.Rate)
		}
	}
	return out
}

// Tables renders the sweep: one throughput/latency table per policy,
// then the cross-policy p99-vs-offered-load comparison.
func (r *Report) Tables() []*stats.Table {
	var tables []*stats.Table
	for _, pol := range r.policies() {
		t := stats.NewTable(
			fmt.Sprintf("service: %s — throughput and sojourn vs offered load", pol),
			"rate_per_us", "arrivals", "completed", "dropped", "shed",
			"thr_per_us", "p50_us", "p99_us", "p999_us", "mean_us", "batch_ops")
		for _, cs := range r.Cells {
			if cs.Policy != pol {
				continue
			}
			t.Row(cs.Rate, cs.Requests, cs.Completed, cs.Dropped, cs.Shed,
				cs.Throughput(), micros(cs.P50), micros(cs.P99), micros(cs.P999),
				cs.MeanSojourn/CyclesPerMicro, cs.BatchOps)
		}
		tables = append(tables, t)
	}
	if pols := r.policies(); len(pols) > 1 {
		headers := []string{"rate_per_us"}
		for _, p := range pols {
			headers = append(headers, p.String())
		}
		t := stats.NewTable("service: p99 sojourn (µs) vs offered load, by policy", headers...)
		for _, rate := range r.rates() {
			row := []interface{}{rate}
			for _, p := range pols {
				if cs := r.Cell(p, rate); cs != nil {
					row = append(row, micros(cs.P99))
				} else {
					row = append(row, "-")
				}
			}
			t.Row(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// String renders the report's summary tables.
func (r *Report) String() string {
	var b strings.Builder
	for i, t := range r.Tables() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

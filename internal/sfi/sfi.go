// Package sfi implements the software-fault-isolation extension discussed
// in the paper's §4.2: dynamic guards before memory instructions establish
// a logical protection domain for coroutines sharing an address space
// [58, 65, 69].
//
// The pass inserts a CHECK before every LOAD and STORE; the core traps if
// the guarded address leaves the sandbox configured in cpu.Config. The
// co-design question the paper raises — can SFI piggyback on yield
// instrumentation? — is modelled by the CoDesign option: a load that
// immediately follows an inserted YIELD already sits in the shadow of a
// multi-cycle context switch, so its guard evaluates concurrently with
// the switch and needs no separate instruction slot.
package sfi

import (
	"repro/internal/instrument"
	"repro/internal/isa"
)

// Options configures the hardening pass.
type Options struct {
	// CoDesign folds guards into adjacent yield switches where possible.
	CoDesign bool
	// GuardStores includes stores (on by default via DefaultOptions).
	GuardStores bool
}

// DefaultOptions guards loads and stores without co-design.
func DefaultOptions() Options { return Options{GuardStores: true} }

// Result reports what the pass did.
type Result struct {
	Checks   int   // guards inserted
	Folded   int   // guards elided by co-design
	OldToNew []int // index mapping
}

// Harden inserts SFI guards into prog. The caller is responsible for
// setting the sandbox range on the executing core's cpu.Config.
func Harden(prog *isa.Program, opts Options) (*isa.Program, *Result, error) {
	rw := instrument.NewRewriter(prog)
	res := &Result{}
	for i, in := range prog.Instrs {
		switch in.Op {
		case isa.OpLoad:
		case isa.OpStore:
			if !opts.GuardStores {
				continue
			}
		default:
			continue
		}
		if opts.CoDesign && i > 0 && prog.Instrs[i-1].Op == isa.OpYield {
			// The guard overlaps the context switch; no instruction slot
			// needed. (The switch takes tens of cycles; the 1-cycle
			// bounds check hides entirely within it.)
			res.Folded++
			continue
		}
		rw.InsertBefore(i, isa.Instr{Op: isa.OpCheck, Rs1: in.Rs1, Imm: in.Imm})
		res.Checks++
	}
	out, oldToNew, err := rw.Apply()
	if err != nil {
		return nil, nil, err
	}
	res.OldToNew = oldToNew
	return out, res, nil
}

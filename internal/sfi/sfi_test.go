package sfi

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func TestHardenInsertsGuards(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        load r1, [r2]
        store [r2+8], r1
        halt
    `)
	out, res, err := Harden(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != 2 || res.Folded != 0 {
		t.Fatalf("checks=%d folded=%d", res.Checks, res.Folded)
	}
	ld := res.OldToNew[1]
	if out.Instrs[ld-1].Op != isa.OpCheck {
		t.Error("guard missing before load")
	}
	chk := out.Instrs[ld-1]
	if chk.Rs1 != 2 || chk.Imm != 0 {
		t.Errorf("guard operands wrong: %v", chk)
	}
}

func TestHardenSkipsStoresWhenConfigured(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        store [r2], r2
        halt
    `)
	_, res, err := Harden(prog, Options{GuardStores: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != 0 {
		t.Error("stores should be unguarded")
	}
}

func TestCoDesignFoldsGuardedYieldLoads(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        prefetch [r2]
        yield
        load r1, [r2]       ; follows a yield: guard folds
        load r3, [r2+8]     ; bare: guard stays
        halt
    `)
	_, res, err := Harden(prog, Options{CoDesign: true, GuardStores: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 1 || res.Checks != 1 {
		t.Errorf("folded=%d checks=%d, want 1/1", res.Folded, res.Checks)
	}
	_, res2, err := Harden(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Checks != 2 {
		t.Errorf("without co-design: checks=%d, want 2", res2.Checks)
	}
}

func TestGuardsTrapOutsideSandbox(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        load r1, [r2]
        movi r2, 65536
        load r1, [r2]
        halt
    `)
	hardened, _, err := Harden(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory(1 << 20)
	cfg := cpu.DefaultConfig()
	cfg.SandboxLo = 4096
	cfg.SandboxHi = 8192
	core := cpu.MustNewCore(cfg, hardened, m, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m.Size()-8)
	var fault error
	var r cpu.StepResult
	for i := 0; i < 100 && !ctx.Halted; i++ {
		if err := core.StepInto(ctx, false, &r); err != nil {
			fault = err
			break
		}
	}
	if fault == nil {
		t.Fatal("out-of-sandbox access did not trap")
	}
	if ctx.Halted {
		t.Fatal("program should have been stopped by the trap")
	}
}

func TestHardenedProgramStillComputes(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        movi r3, 77
        store [r2], r3
        load r1, [r2]
        halt
    `)
	hardened, _, err := Harden(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory(1 << 20)
	core := cpu.MustNewCore(cpu.DefaultConfig(), hardened, m, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m.Size()-8)
	var r cpu.StepResult
	for i := 0; i < 100 && !ctx.Halted; i++ {
		if err := core.StepInto(ctx, false, &r); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Result != 77 {
		t.Errorf("result = %d, want 77", ctx.Result)
	}
}

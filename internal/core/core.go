// Package core is the top of the softhide library: the end-to-end
// profile → instrument → execute pipeline from the paper, assembled over
// the simulated machine.
//
// The flow mirrors §3.2's three logical steps:
//
//  1. Build a Harness over a workload scenario and call Profile — the
//     program runs in "production" under the PEBS/LBR sampler and the
//     samples aggregate into a profile (step i).
//  2. Call Instrument with the profile — the encoded binary is rewritten
//     with primary prefetch+yield pairs and conditional scavenger yields
//     (step ii).
//  3. Build tasks over the instrumented Image and run them under one of
//     the exec disciplines — solo, symmetric, or dual-mode asymmetric
//     concurrency (step iii).
//
// Every run can be validated against host-reference results via
// TaskSet.Validate, so experiments measure correct executions only.
package core

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// Machine bundles everything that defines the simulated platform.
type Machine struct {
	Mem      mem.Config
	CPU      cpu.Config
	Sampling pebs.Config
	Switch   coro.CostModel
	// MemBytes sizes the backing store for scenarios.
	MemBytes uint64
	// Seed drives all workload construction.
	Seed int64
}

// DefaultMachine returns the reference machine: the DESIGN.md server model
// with caches scaled down ~32x (latencies unchanged) so that working sets
// of a few hundred KiB exercise DRAM, keeping simulations fast.
func DefaultMachine() Machine {
	mc := mem.DefaultConfig()
	mc.L1Size = 4 << 10
	mc.L2Size = 32 << 10
	mc.L3Size = 256 << 10
	sc := pebs.DefaultConfig()
	sc.Periods[pebs.EvLoadRetired] = 31
	sc.Periods[pebs.EvLoadL2Miss] = 13
	sc.Periods[pebs.EvLoadL3Miss] = 13
	sc.Periods[pebs.EvStallCycle] = 251
	return Machine{
		Mem:      mc,
		CPU:      cpu.DefaultConfig(),
		Sampling: sc,
		Switch:   coro.DefaultCostModel(),
		MemBytes: 256 << 20,
		Seed:     20230626, // HotOS'23 week
	}
}

// CyclesPerNS is the simulated clock rate (3 GHz).
const CyclesPerNS = 3.0

// NS converts cycles to nanoseconds.
func NS(cycles float64) float64 { return cycles / CyclesPerNS }

// Harness owns one composed scenario and builds cores and executors over
// it.
type Harness struct {
	Mach Machine
	Sc   *workloads.Scenario
}

// NewHarness composes the specs on the machine.
func NewHarness(mach Machine, specs ...workloads.Spec) (*Harness, error) {
	sc, err := workloads.Compose(mach.MemBytes, mach.Seed, specs...)
	if err != nil {
		return nil, err
	}
	return &Harness{Mach: mach, Sc: sc}, nil
}

// Image is a (possibly instrumented) executable program over the
// harness's scenario, with per-part entry points remapped through any
// rewrites.
type Image struct {
	Prog    *isa.Program
	Entries map[string]int
	// Pipe carries the instrumentation report when the image came from
	// Instrument; nil otherwise.
	Pipe *instrument.PipelineResult
}

// Baseline returns the uninstrumented image.
func (h *Harness) Baseline() *Image {
	entries := map[string]int{}
	for _, p := range h.Sc.Parts {
		entries[p.Name] = p.Entry
	}
	return &Image{Prog: h.Sc.Prog, Entries: entries}
}

// FromRewrite wraps an externally rewritten program (manual annotation,
// SFI hardening) whose oldToNew mapping remaps part entries.
func (h *Harness) FromRewrite(prog *isa.Program, oldToNew []int) *Image {
	entries := map[string]int{}
	for _, p := range h.Sc.Parts {
		entries[p.Name] = oldToNew[p.Entry]
	}
	return &Image{Prog: prog, Entries: entries}
}

// Profile runs every instance of the named part solo under the machine's
// default sampler configuration and aggregates the samples into a profile.
func (h *Harness) Profile(part string) (*profile.Profile, *pebs.Sampler, error) {
	p, s, _, err := h.ProfileParts(h.Mach.Sampling, part)
	return p, s, err
}

// ProfileParts profiles several parts in one production run with an
// explicit sampler configuration. It returns the aggregated profile, the
// sampler (for overhead and drop statistics) and the core (whose
// ground-truth counters are used only for validation experiments). Every
// instance's result is checked against its host reference.
func (h *Harness) ProfileParts(cfg pebs.Config, parts ...string) (*profile.Profile, *pebs.Sampler, *cpu.Core, error) {
	core := cpu.MustNewCore(h.Mach.CPU, h.Sc.Prog, h.Sc.Mem, mem.MustNewHierarchy(h.Mach.Mem))
	sampler := pebs.NewSampler(cfg, len(h.Sc.Prog.Instrs))
	core.Observe(sampler)
	ex := exec.New(core, exec.Config{Switch: h.Mach.Switch})
	base := h.Baseline()
	for _, part := range parts {
		ts, err := h.Tasks(base, part, coro.Primary, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		for i, task := range ts.Tasks {
			if _, err := ex.RunSolo(task); err != nil {
				return nil, nil, nil, fmt.Errorf("core: profiling %s[%d]: %w", part, i, err)
			}
		}
		if err := ts.Validate(); err != nil {
			return nil, nil, nil, err
		}
	}
	return profile.Build(len(h.Sc.Prog.Instrs), sampler.Samples, sampler.LBR()), sampler, core, nil
}

// Instrument runs the full §3.2+§3.3 pipeline over the scenario binary.
func (h *Harness) Instrument(prof *profile.Profile, opts instrument.PipelineOptions) (*Image, error) {
	img, res, err := instrument.InstrumentImage(isa.Encode(h.Sc.Prog), prof, opts)
	if err != nil {
		return nil, err
	}
	prog, err := isa.Decode(img)
	if err != nil {
		return nil, err
	}
	entries := map[string]int{}
	for _, p := range h.Sc.Parts {
		entries[p.Name] = res.OldToNew[p.Entry]
	}
	return &Image{Prog: prog, Entries: entries, Pipe: res}, nil
}

// NewExecutor builds a fresh cold-cache executor over an image.
func (h *Harness) NewExecutor(img *Image, cfg exec.Config) *exec.Executor {
	if cfg.Switch == (coro.CostModel{}) {
		cfg.Switch = h.Mach.Switch
	}
	core := cpu.MustNewCore(h.Mach.CPU, img.Prog, h.Sc.Mem, mem.MustNewHierarchy(h.Mach.Mem))
	return exec.New(core, cfg)
}

// TaskSet couples executor tasks with their expected results.
type TaskSet struct {
	Tasks    []*exec.Task
	names    []string
	expected []uint64
}

// Validate checks every halted task against the host reference. Tasks
// still running (e.g. scavengers at primary completion) are skipped.
func (ts *TaskSet) Validate() error {
	for i, t := range ts.Tasks {
		if !t.Ctx.Halted {
			continue
		}
		if t.Ctx.Result != ts.expected[i] {
			return fmt.Errorf("core: %s computed %d, reference says %d",
				ts.names[i], t.Ctx.Result, ts.expected[i])
		}
	}
	return nil
}

// Merge combines another TaskSet (e.g. scavengers) into ts, renumbering
// context IDs.
func (ts *TaskSet) Merge(other *TaskSet) {
	for i, t := range other.Tasks {
		t.Ctx.ID = len(ts.Tasks) + i
	}
	ts.Tasks = append(ts.Tasks, other.Tasks...)
	ts.names = append(ts.names, other.names...)
	ts.expected = append(ts.expected, other.expected...)
}

// Tasks builds a TaskSet of count instances of the named part against an
// image (entries already remapped). count<=0 means all instances.
func (h *Harness) Tasks(img *Image, part string, mode coro.Mode, count int) (*TaskSet, error) {
	p := h.Sc.Part(part)
	if p == nil {
		return nil, fmt.Errorf("core: no part %q", part)
	}
	if count <= 0 || count > len(p.Instances) {
		count = len(p.Instances)
	}
	ts := &TaskSet{}
	for i := 0; i < count; i++ {
		inst := p.Instances[i]
		ctx := coro.NewContext(i, img.Entries[part], p.StackTops[i])
		ctx.Regs = inst.Regs
		ctx.Regs[isa.SP] = p.StackTops[i]
		ctx.Name = fmt.Sprintf("%s[%d]", part, i)
		ts.Tasks = append(ts.Tasks, exec.NewTask(ctx, mode))
		ts.names = append(ts.names, ctx.Name)
		ts.expected = append(ts.expected, inst.Expected)
	}
	return ts, nil
}

package core

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/workloads"
)

func testHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(DefaultMachine(),
		workloads.PointerChase{Nodes: 2048, Hops: 600, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEndToEndPipeline(t *testing.T) {
	h := testHarness(t)

	prof, sampler, err := h.Profile("chase")
	if err != nil {
		t.Fatal(err)
	}
	if len(sampler.Samples) == 0 || len(prof.Sites) == 0 {
		t.Fatal("profiling produced nothing")
	}

	img, err := h.Instrument(prof, instrument.DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if img.Pipe == nil || img.Pipe.Primary.Yields == 0 {
		t.Fatal("instrumentation inserted nothing")
	}
	if len(img.Prog.Instrs) <= len(h.Sc.Prog.Instrs) {
		t.Fatal("instrumented program should be longer")
	}

	ts, err := h.Tasks(img, "chase", coro.Primary, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}

	// Compare against baseline: interleaving must help.
	bts, err := h.Tasks(h.Baseline(), "chase", coro.Primary, 4)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := h.NewExecutor(h.Baseline(), exec.Config{}).RunSymmetric(bts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := bts.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Efficiency() <= bst.Efficiency() {
		t.Errorf("pipeline efficiency %.3f did not beat baseline %.3f",
			st.Efficiency(), bst.Efficiency())
	}
}

func TestTasksCountSemantics(t *testing.T) {
	h := testHarness(t)
	base := h.Baseline()
	ts, err := h.Tasks(base, "chase", coro.Primary, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Tasks) != 4 {
		t.Errorf("count 0 should mean all instances, got %d", len(ts.Tasks))
	}
	ts, err = h.Tasks(base, "chase", coro.Scavenger, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Tasks) != 2 || ts.Tasks[0].Mode != coro.Scavenger {
		t.Error("count/mode semantics wrong")
	}
	if _, err := h.Tasks(base, "nope", coro.Primary, 1); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestValidateCatchesWrongResults(t *testing.T) {
	h := testHarness(t)
	ts, err := h.Tasks(h.Baseline(), "chase", coro.Primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts.Tasks[0].Ctx.Halted = true
	ts.Tasks[0].Ctx.Result = 12345678 // not the reference value
	if err := ts.Validate(); err == nil {
		t.Error("Validate accepted a wrong result")
	}
}

func TestMergeRenumbers(t *testing.T) {
	h := testHarness(t)
	a, _ := h.Tasks(h.Baseline(), "chase", coro.Primary, 2)
	b, _ := h.Tasks(h.Baseline(), "chase", coro.Scavenger, 2)
	a.Merge(b)
	if len(a.Tasks) != 4 {
		t.Fatalf("merged size %d", len(a.Tasks))
	}
	for i, task := range a.Tasks {
		if task.Ctx.ID != i {
			t.Errorf("task %d has ID %d", i, task.Ctx.ID)
		}
	}
}

func TestFromRewriteRemapsEntries(t *testing.T) {
	h := testHarness(t)
	// Identity rewrite with one insertion before the entry.
	rw := instrument.NewRewriter(h.Sc.Prog)
	rw.InsertBefore(h.Sc.Parts[0].Entry, isa.Instr{Op: isa.OpNop})
	prog, oldToNew, err := rw.Apply()
	if err != nil {
		t.Fatal(err)
	}
	img := h.FromRewrite(prog, oldToNew)
	if img.Entries["chase"] != h.Sc.Parts[0].Entry+1 {
		t.Errorf("entry not remapped: %d", img.Entries["chase"])
	}
}

func TestProfilePartsValidates(t *testing.T) {
	h := testHarness(t)
	if _, _, _, err := h.ProfileParts(h.Mach.Sampling, "nope"); err == nil {
		t.Error("unknown part accepted")
	}
	prof, sampler, cpuCore, err := h.ProfileParts(h.Mach.Sampling, "chase")
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || sampler == nil || cpuCore == nil {
		t.Fatal("nil outputs")
	}
	if cpuCore.Counters.TotalRetired == 0 {
		t.Error("profiling run retired nothing")
	}
}

func TestDefaultMachine(t *testing.T) {
	m := DefaultMachine()
	if err := m.Mem.Validate(); err != nil {
		t.Error(err)
	}
	if err := m.CPU.Validate(); err != nil {
		t.Error(err)
	}
	if NS(3000) != 1000 {
		t.Error("NS conversion wrong")
	}
}

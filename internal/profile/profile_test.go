package profile

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/pebs"
)

func sample(ev pebs.EventKind, pc int, weight uint64) pebs.Sample {
	return pebs.Sample{Event: ev, PC: pc, Weight: weight}
}

func TestBuildAggregatesSites(t *testing.T) {
	samples := []pebs.Sample{
		sample(pebs.EvLoadRetired, 5, 100),
		sample(pebs.EvLoadRetired, 5, 100),
		sample(pebs.EvLoadL2Miss, 5, 50),
		sample(pebs.EvLoadL3Miss, 5, 50),
		sample(pebs.EvStallCycle, 5, 1000),
		sample(pebs.EvLoadRetired, 9, 100),
	}
	p := Build(20, samples, nil)
	if len(p.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(p.Sites))
	}
	s := p.Site(5)
	if s == nil {
		t.Fatal("site 5 missing")
	}
	if s.Execs != 200 || s.L2Misses != 50 || s.L3Misses != 50 || s.StallCycles != 1000 {
		t.Errorf("site 5: %+v", s)
	}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %f, want 0.25", got)
	}
	if got := s.DRAMFraction(); got != 1.0 {
		t.Errorf("DRAMFraction = %f, want 1", got)
	}
	if p.Site(3) != nil {
		t.Error("unsampled site should be nil")
	}
	if p.TotalStallCycles != 1000 || p.TotalSamples != 6 {
		t.Errorf("totals wrong: %+v", p)
	}
}

func TestBuildIgnoresOutOfRangeSamples(t *testing.T) {
	p := Build(4, []pebs.Sample{sample(pebs.EvLoadRetired, 99, 1)}, nil)
	if len(p.Sites) != 0 {
		t.Error("out-of-range sample aggregated")
	}
}

func TestMissRateClamped(t *testing.T) {
	// Sampling noise can make misses exceed execs; the rate must clamp.
	p := Build(10, []pebs.Sample{
		sample(pebs.EvLoadRetired, 1, 10),
		sample(pebs.EvLoadL2Miss, 1, 100),
	}, nil)
	if got := p.Site(1).MissRate(); got != 1.0 {
		t.Errorf("MissRate = %f, want clamped 1.0", got)
	}
	// No retire samples: unknown denominator, rate 0.
	p2 := Build(10, []pebs.Sample{sample(pebs.EvLoadL2Miss, 1, 100)}, nil)
	if got := p2.Site(1).MissRate(); got != 0 {
		t.Errorf("MissRate without execs = %f, want 0", got)
	}
}

func TestBuildWithLBR(t *testing.T) {
	lbr := pebs.NewLBRStats(16)
	lbr.Edges[pebs.Edge{From: 10, To: 2}] = 7
	lbr.BlockCycleSum[2] = 300
	lbr.BlockCycleCount[2] = 10
	p := Build(20, nil, lbr)
	if len(p.Edges) != 1 || p.Edges[0].Count != 7 {
		t.Errorf("edges: %+v", p.Edges)
	}
	lat, ok := p.BlockLatencyAt(2)
	if !ok || lat != 30 {
		t.Errorf("block latency = %v ok=%v", lat, ok)
	}
	if _, ok := p.BlockLatencyAt(3); ok {
		t.Error("unknown block latency should be absent")
	}
}

func TestHotLoads(t *testing.T) {
	p := Build(20, []pebs.Sample{
		sample(pebs.EvStallCycle, 3, 100),
		sample(pebs.EvStallCycle, 7, 500),
		sample(pebs.EvStallCycle, 9, 300),
	}, nil)
	hot := p.HotLoads()
	if len(hot) != 3 || hot[0] != 7 || hot[1] != 9 || hot[2] != 3 {
		t.Errorf("HotLoads = %v", hot)
	}
}

func TestMerge(t *testing.T) {
	a := Build(20, []pebs.Sample{
		sample(pebs.EvLoadRetired, 5, 100),
		sample(pebs.EvLoadL2Miss, 5, 40),
	}, nil)
	lbr := pebs.NewLBRStats(16)
	lbr.Edges[pebs.Edge{From: 8, To: 2}] = 3
	lbr.BlockCycleSum[2] = 40
	lbr.BlockCycleCount[2] = 2
	b := Build(20, []pebs.Sample{
		sample(pebs.EvLoadRetired, 5, 100),
		sample(pebs.EvLoadRetired, 11, 100),
	}, lbr)
	lbr2 := pebs.NewLBRStats(16)
	lbr2.Edges[pebs.Edge{From: 8, To: 2}] = 1
	lbr2.BlockCycleSum[2] = 60
	lbr2.BlockCycleCount[2] = 2
	c := Build(20, nil, lbr2)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if a.Site(5).Execs != 200 || a.Site(5).L2Misses != 40 {
		t.Errorf("merged site 5: %+v", a.Site(5))
	}
	if a.Site(11) == nil {
		t.Error("merged site 11 missing")
	}
	var edge *EdgeCount
	for i := range a.Edges {
		if a.Edges[i].From == 8 {
			edge = &a.Edges[i]
		}
	}
	if edge == nil || edge.Count != 4 {
		t.Errorf("merged edge: %+v", a.Edges)
	}
	lat, ok := a.BlockLatencyAt(2)
	if !ok || math.Abs(lat-25) > 1e-9 { // (20*2 + 30*2)/4
		t.Errorf("merged block latency = %v", lat)
	}

	d := Build(30, nil, nil)
	if err := a.Merge(d); err == nil {
		t.Error("merging different programs should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	lbr := pebs.NewLBRStats(16)
	lbr.Edges[pebs.Edge{From: 4, To: 1}] = 9
	lbr.BlockCycleSum[1] = 90
	lbr.BlockCycleCount[1] = 3
	p := Build(16, []pebs.Sample{
		sample(pebs.EvLoadRetired, 5, 100),
		sample(pebs.EvLoadL2Miss, 5, 40),
		sample(pebs.EvStallCycle, 5, 900),
	}, lbr)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Profile
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.ProgramLen != p.ProgramLen || len(q.Sites) != len(p.Sites) ||
		len(q.Edges) != len(p.Edges) || len(q.Blocks) != len(p.Blocks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	if q.Site(5).StallCycles != 900 {
		t.Errorf("site after round trip: %+v", q.Site(5))
	}
}

func TestDRAMFractionEdgeCases(t *testing.T) {
	s := &LoadSite{L2Misses: 0, L3Misses: 5}
	if s.DRAMFraction() != 0 {
		t.Error("zero L2 misses should give zero fraction")
	}
	s = &LoadSite{L2Misses: 2, L3Misses: 5}
	if s.DRAMFraction() != 1 {
		t.Error("fraction should clamp to 1")
	}
}

// Package profile turns raw PEBS samples and LBR aggregates into the
// per-instruction statistics that drive yield instrumentation.
//
// A profile is an *estimate*: every quantity here is reconstructed from
// sparse samples (sample count × sampling period), exactly as a
// production AutoFDO/BOLT-style pipeline would reconstruct behaviour from
// perf data. Ground-truth counters exist in internal/cpu for validation
// but are never consumed here.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/pebs"
)

// LoadSite summarizes one static load instruction.
type LoadSite struct {
	PC int `json:"pc"`
	// Execs estimates how many times the load retired.
	Execs float64 `json:"execs"`
	// L2Misses and L3Misses estimate how many executions missed L2 (i.e.
	// were served by L3 or DRAM) and L3 (served by DRAM).
	L2Misses float64 `json:"l2_misses"`
	L3Misses float64 `json:"l3_misses"`
	// StallCycles estimates the exposed stall cycles attributed to this
	// load.
	StallCycles float64 `json:"stall_cycles"`
}

// MissRate returns the estimated probability that the load misses L2,
// clamped to [0,1]. Loads with no retire samples report a rate of 0 even
// if miss samples exist (the denominator is unknown); ColdMissRate covers
// that case.
func (s *LoadSite) MissRate() float64 {
	if s.Execs <= 0 {
		return 0
	}
	r := s.L2Misses / s.Execs
	if r > 1 {
		r = 1
	}
	return r
}

// DRAMFraction estimates what fraction of L2 misses went all the way to
// DRAM (used to pick the expected miss latency).
func (s *LoadSite) DRAMFraction() float64 {
	if s.L2Misses <= 0 {
		return 0
	}
	f := s.L3Misses / s.L2Misses
	if f > 1 {
		f = 1
	}
	return f
}

// EdgeCount is one observed CFG edge with its traversal estimate.
type EdgeCount struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Count uint64 `json:"count"`
}

// BlockLatency is the observed mean latency of the straight-line region
// entered at StartPC, from LBR cycle deltas.
type BlockLatency struct {
	StartPC   int     `json:"start_pc"`
	AvgCycles float64 `json:"avg_cycles"`
	Samples   uint64  `json:"samples"`
}

// Profile is the aggregated result of one profiling run.
type Profile struct {
	ProgramLen int            `json:"program_len"`
	Sites      []LoadSite     `json:"sites"`
	Edges      []EdgeCount    `json:"edges"`
	Blocks     []BlockLatency `json:"blocks"`
	// TotalStallCycles is the estimated program-wide exposed stall total.
	TotalStallCycles float64 `json:"total_stall_cycles"`
	// TotalSamples counts raw samples aggregated into this profile.
	TotalSamples int `json:"total_samples"`

	siteIdx map[int]int // lazy PC -> Sites index
}

// Build aggregates sampler output into a profile for a program of
// programLen instructions. Samples attributed outside the program (e.g.
// skid past the end) are ignored.
func Build(programLen int, samples []pebs.Sample, lbr *pebs.LBRStats) *Profile {
	p := &Profile{ProgramLen: programLen, TotalSamples: len(samples)}
	sites := map[int]*LoadSite{}
	site := func(pc int) *LoadSite {
		s, ok := sites[pc]
		if !ok {
			s = &LoadSite{PC: pc}
			sites[pc] = s
		}
		return s
	}
	for _, smp := range samples {
		if smp.PC < 0 || smp.PC >= programLen {
			continue
		}
		w := float64(smp.Weight)
		switch smp.Event {
		case pebs.EvLoadRetired, pebs.EvAccWaitRetired, pebs.EvStoreRetired:
			site(smp.PC).Execs += w
		case pebs.EvLoadL2Miss, pebs.EvStoreL2Miss:
			site(smp.PC).L2Misses += w
		case pebs.EvLoadL3Miss, pebs.EvStoreL3Miss:
			site(smp.PC).L3Misses += w
		case pebs.EvStallCycle:
			site(smp.PC).StallCycles += w
			p.TotalStallCycles += w
		}
	}
	for _, s := range sites {
		p.Sites = append(p.Sites, *s)
	}
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].PC < p.Sites[j].PC })

	if lbr != nil {
		for e, n := range lbr.Edges {
			p.Edges = append(p.Edges, EdgeCount{From: e.From, To: e.To, Count: n})
		}
		sort.Slice(p.Edges, func(i, j int) bool {
			if p.Edges[i].From != p.Edges[j].From {
				return p.Edges[i].From < p.Edges[j].From
			}
			return p.Edges[i].To < p.Edges[j].To
		})
		for pc, n := range lbr.BlockCycleCount {
			if n == 0 {
				continue
			}
			p.Blocks = append(p.Blocks, BlockLatency{
				StartPC:   pc,
				AvgCycles: float64(lbr.BlockCycleSum[pc]) / float64(n),
				Samples:   n,
			})
		}
		sort.Slice(p.Blocks, func(i, j int) bool { return p.Blocks[i].StartPC < p.Blocks[j].StartPC })
	}
	return p
}

// Site returns the load-site record for pc, or nil if none was sampled.
func (p *Profile) Site(pc int) *LoadSite {
	if p.siteIdx == nil {
		p.siteIdx = make(map[int]int, len(p.Sites))
		for i := range p.Sites {
			p.siteIdx[p.Sites[i].PC] = i
		}
	}
	i, ok := p.siteIdx[pc]
	if !ok {
		return nil
	}
	return &p.Sites[i]
}

// HotLoads returns the PCs of sampled loads ordered by estimated stall
// contribution, heaviest first.
func (p *Profile) HotLoads() []int {
	idx := make([]int, len(p.Sites))
	for i := range p.Sites {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return p.Sites[idx[a]].StallCycles > p.Sites[idx[b]].StallCycles
	})
	pcs := make([]int, len(idx))
	for i, j := range idx {
		pcs[i] = p.Sites[j].PC
	}
	return pcs
}

// Merge combines another profile of the same program into p (e.g. profiles
// from multiple production shards). Estimates are additive; block
// latencies are sample-weighted means.
func (p *Profile) Merge(q *Profile) error {
	if q.ProgramLen != p.ProgramLen {
		return fmt.Errorf("profile: merging profiles of different programs (%d vs %d instructions)", p.ProgramLen, q.ProgramLen)
	}
	bySite := map[int]*LoadSite{}
	for i := range p.Sites {
		bySite[p.Sites[i].PC] = &p.Sites[i]
	}
	for _, s := range q.Sites {
		if dst, ok := bySite[s.PC]; ok {
			dst.Execs += s.Execs
			dst.L2Misses += s.L2Misses
			dst.L3Misses += s.L3Misses
			dst.StallCycles += s.StallCycles
		} else {
			p.Sites = append(p.Sites, s)
		}
	}
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].PC < p.Sites[j].PC })
	p.siteIdx = nil

	byEdge := map[[2]int]*EdgeCount{}
	for i := range p.Edges {
		byEdge[[2]int{p.Edges[i].From, p.Edges[i].To}] = &p.Edges[i]
	}
	for _, e := range q.Edges {
		if dst, ok := byEdge[[2]int{e.From, e.To}]; ok {
			dst.Count += e.Count
		} else {
			p.Edges = append(p.Edges, e)
		}
	}
	byBlock := map[int]*BlockLatency{}
	for i := range p.Blocks {
		byBlock[p.Blocks[i].StartPC] = &p.Blocks[i]
	}
	for _, b := range q.Blocks {
		if dst, ok := byBlock[b.StartPC]; ok {
			total := dst.Samples + b.Samples
			if total > 0 {
				dst.AvgCycles = (dst.AvgCycles*float64(dst.Samples) + b.AvgCycles*float64(b.Samples)) / float64(total)
			}
			dst.Samples = total
		} else {
			p.Blocks = append(p.Blocks, b)
		}
	}
	p.TotalStallCycles += q.TotalStallCycles
	p.TotalSamples += q.TotalSamples
	return nil
}

// BlockLatencyAt returns the LBR-observed latency of the region entered at
// pc, if any.
func (p *Profile) BlockLatencyAt(pc int) (float64, bool) {
	for i := range p.Blocks {
		if p.Blocks[i].StartPC == pc {
			return p.Blocks[i].AvgCycles, true
		}
	}
	return 0, false
}

// MarshalJSON/UnmarshalJSON use the plain exported fields; the alias type
// avoids recursion while keeping the lazy index private.
type profileJSON Profile

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal((*profileJSON)(p))
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(data []byte) error {
	p.siteIdx = nil
	return json.Unmarshal(data, (*profileJSON)(p))
}

// Package trace records executor-level scheduling events — switches,
// yields, hide episodes, halts — into a bounded ring for debugging and
// for inspecting dual-mode behaviour. The runtime emits events through
// the Tracer interface.
//
// # The nil-tracer fast path
//
// Tracing is off by default: an exec.Config with a nil Tracer is the
// common case, and every emission site in the executor guards the
// interface call with a single nil check (see Executor.emit). No Event
// is constructed and nothing escapes to the heap on that path, so an
// untraced run pays one predictable branch per scheduling event and
// nothing more. Code that emits events must preserve this property:
// never build an Event before checking the tracer for nil.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	// SwitchOut: a coroutine yielded and was switched away from.
	SwitchOut Kind = iota
	// Resume: a coroutine was switched back in.
	Resume
	// EpisodeStart: a primary yield opened a hide window.
	EpisodeStart
	// EpisodeEnd: control returned to the primary.
	EpisodeEnd
	// Chain: a scavenger handed off to another scavenger.
	Chain
	// Halt: a coroutine completed.
	Halt
	// Skip: a §4.1 presence probe suppressed a yield.
	Skip
)

func (k Kind) String() string {
	switch k {
	case SwitchOut:
		return "switch-out"
	case Resume:
		return "resume"
	case EpisodeStart:
		return "episode-start"
	case EpisodeEnd:
		return "episode-end"
	case Chain:
		return "chain"
	case Halt:
		return "halt"
	case Skip:
		return "skip"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduling occurrence.
type Event struct {
	Kind Kind
	// Now is the global cycle at the event.
	Now uint64
	// Ctx is the coroutine's context ID.
	Ctx int
	// PC is the program counter at the event (where meaningful).
	PC int
	// Arg carries kind-specific detail: hide target for EpisodeStart,
	// away-time for EpisodeEnd, switch cost for SwitchOut.
	Arg uint64
}

func (e Event) String() string {
	return fmt.Sprintf("[%10d] ctx%-3d pc=%-6d %-14s arg=%d", e.Now, e.Ctx, e.PC, e.Kind, e.Arg)
}

// Tracer receives events.
type Tracer interface {
	Emit(Event)
}

// Ring is a bounded in-memory tracer keeping the most recent events.
type Ring struct {
	buf   []Event
	pos   int
	full  bool
	total uint64
}

// NewRing creates a tracer retaining up to n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.buf[r.pos] = e
	r.pos = (r.pos + 1) % len(r.buf)
	if r.pos == 0 {
		r.full = true
	}
	r.total++
}

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 { return r.total }

// Reset empties the ring without reallocating its buffer, so a single
// Ring can be reused across executor runs (the parallel runner resets
// per-job tracers instead of constructing new ones).
func (r *Ring) Reset() {
	r.pos = 0
	r.full = false
	r.total = 0
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.pos]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}

// CountByKind tallies retained events per kind.
func (r *Ring) CountByKind() map[Kind]int {
	m := map[Kind]int{}
	for _, e := range r.Events() {
		m[e.Kind]++
	}
	return m
}

// Dump writes the retained events as text.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-line per-kind tally.
func (r *Ring) Summary() string {
	counts := r.CountByKind()
	var parts []string
	for k := Kind(0); k <= Skip; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return fmt.Sprintf("%d events retained (%d total): %s",
		len(r.Events()), r.total, strings.Join(parts, " "))
}

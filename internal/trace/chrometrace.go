package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTraceOptions tunes the trace-event export.
type ChromeTraceOptions struct {
	// CyclesPerMicro converts simulated cycles to trace microseconds.
	// Defaults to 3000 (a 3 GHz clock) when zero. Perfetto's timeline is
	// microsecond-based, so without a conversion a cycle-domain trace
	// would span "seconds" of UI time per millisecond simulated.
	CyclesPerMicro uint64
	// Pid labels the process row in the viewer. Useful when merging
	// exports from several runs into one file.
	Pid int
}

// chromeEvent is one entry of the Chrome trace-event format's
// array-of-events form, loadable by chrome://tracing and Perfetto.
// Field names and phase letters are fixed by that format:
// ph "X" = complete (ts+dur), "i" = instant, "M" = metadata.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts executor trace events into Chrome
// trace-event JSON (the array-of-events form) on w.
//
// Hide episodes become "X" (complete) slices on the primary's thread
// row: an EpisodeEnd event carries the away-time in Arg, so each one
// yields a closed slice even when the ring's bounded retention dropped
// the matching EpisodeStart. Every other kind becomes a thread-scoped
// "i" (instant) mark on its context's row, with the cycle-domain detail
// (cycle stamp, PC, kind-specific arg) preserved under args. Metadata
// ("M") records name the process and per-context threads so the viewer
// shows "ctx N" rows instead of bare thread IDs.
func WriteChromeTrace(w io.Writer, events []Event, opt ChromeTraceOptions) error {
	cpm := opt.CyclesPerMicro
	if cpm == 0 {
		cpm = 3000
	}
	us := func(cycles uint64) float64 { return float64(cycles) / float64(cpm) }

	out := make([]chromeEvent, 0, len(events)+8)
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", Pid: opt.Pid,
		Args: map[string]any{"name": "softhide sim"},
	})
	seenCtx := map[int]bool{}
	for _, e := range events {
		if !seenCtx[e.Ctx] {
			seenCtx[e.Ctx] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: opt.Pid, Tid: e.Ctx,
				Args: map[string]any{"name": fmt.Sprintf("ctx %d", e.Ctx)},
			})
		}
		args := map[string]any{"cycle": e.Now, "pc": e.PC}
		switch e.Kind {
		case EpisodeEnd:
			// Arg is the away-time: reconstruct the whole slice from the
			// end event alone.
			args["away_cycles"] = e.Arg
			out = append(out, chromeEvent{
				Name: "hide episode", Phase: "X",
				TS: us(e.Now - e.Arg), Dur: us(e.Arg),
				Pid: opt.Pid, Tid: e.Ctx, Args: args,
			})
		case EpisodeStart:
			// The matching EpisodeEnd draws the slice; keep the start as
			// an instant so the hide target stays visible.
			args["hide_target"] = e.Arg
			out = append(out, instant(e, us, opt.Pid, args))
		case SwitchOut:
			args["switch_cost"] = e.Arg
			out = append(out, instant(e, us, opt.Pid, args))
		default:
			out = append(out, instant(e, us, opt.Pid, args))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func instant(e Event, us func(uint64) float64, pid int, args map[string]any) chromeEvent {
	return chromeEvent{
		Name: e.Kind.String(), Phase: "i", TS: us(e.Now),
		Pid: pid, Tid: e.Ctx, Scope: "t", Args: args,
	}
}

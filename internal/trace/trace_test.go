package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: SwitchOut, Now: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Now != 2 || evs[2].Now != 4 {
		t.Errorf("wrong window: %v", evs)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{Kind: Halt, Now: 1})
	r.Emit(Event{Kind: Resume, Now: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != Halt {
		t.Errorf("partial ring wrong: %v", evs)
	}
}

func TestCountByKindAndSummary(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{Kind: EpisodeStart})
	r.Emit(Event{Kind: EpisodeEnd})
	r.Emit(Event{Kind: EpisodeEnd})
	counts := r.CountByKind()
	if counts[EpisodeStart] != 1 || counts[EpisodeEnd] != 2 {
		t.Errorf("counts: %v", counts)
	}
	s := r.Summary()
	if !strings.Contains(s, "episode-end=2") {
		t.Errorf("summary: %s", s)
	}
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{Kind: Chain, Now: 42, Ctx: 1, PC: 7, Arg: 9})
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chain") || !strings.Contains(out, "42") {
		t.Errorf("dump: %s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k <= Skip; k++ {
		if k.String() == "" {
			t.Errorf("kind %d empty", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: SwitchOut, Now: uint64(i)})
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Total() != 0 {
		t.Errorf("reset ring not empty: %d events, total %d", len(r.Events()), r.Total())
	}
	// The ring must behave exactly like a fresh one after Reset.
	r.Emit(Event{Kind: Halt, Now: 100})
	evs := r.Events()
	if len(evs) != 1 || evs[0].Now != 100 || r.Total() != 1 {
		t.Errorf("reused ring wrong: %v total=%d", evs, r.Total())
	}
}

func TestNewRingMinimumSize(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{Kind: Halt})
	if len(r.Events()) != 1 {
		t.Error("ring of zero should clamp to one")
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRingEventsExactlyFull pins the wraparound boundary: a ring that
// has received exactly its capacity must return every event, oldest
// first, not an empty or doubled slice (pos has wrapped to 0 and full
// is set — the two halves of the copy are [pos:] = everything and
// [:pos] = nothing).
func TestRingEventsExactlyFull(t *testing.T) {
	const n = 8
	r := NewRing(n)
	for i := 0; i < n; i++ {
		r.Emit(Event{Kind: Resume, Now: uint64(i), Ctx: i})
	}
	got := r.Events()
	if len(got) != n {
		t.Fatalf("exactly-full ring returned %d events, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Now != uint64(i) || e.Ctx != i {
			t.Fatalf("event %d = %+v, want Now=%d Ctx=%d (oldest first)", i, e, i, i)
		}
	}
	if r.Total() != n {
		t.Errorf("Total = %d, want %d", r.Total(), n)
	}
	// One more emission must evict exactly the oldest.
	r.Emit(Event{Kind: Resume, Now: n, Ctx: n})
	got = r.Events()
	if len(got) != n || got[0].Now != 1 || got[n-1].Now != n {
		t.Fatalf("after wrap: got %d events, first Now=%d last Now=%d; want %d, 1, %d",
			len(got), got[0].Now, got[len(got)-1].Now, n, n)
	}
}

// traceEvents runs a representative event sequence through the exporter
// and decodes the result.
func traceEvents(t *testing.T, opt ChromeTraceOptions) []map[string]any {
	t.Helper()
	events := []Event{
		{Kind: EpisodeStart, Now: 1000, Ctx: 0, PC: 4, Arg: 360},
		{Kind: SwitchOut, Now: 1000, Ctx: 0, PC: 4, Arg: 30},
		{Kind: Resume, Now: 1030, Ctx: 1, PC: 10},
		{Kind: Chain, Now: 1200, Ctx: 1, PC: 12},
		{Kind: Halt, Now: 1390, Ctx: 1, PC: 15},
		{Kind: EpisodeEnd, Now: 1400, Ctx: 0, PC: 4, Arg: 400},
		{Kind: Skip, Now: 1500, Ctx: 0, PC: 4},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, opt); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exporter did not produce a JSON array of events: %v", err)
	}
	return decoded
}

// TestChromeTraceSchema validates the export against the Chrome
// trace-event format's array-of-events form: every entry needs a name,
// a known phase letter, numeric ts/pid/tid, and phase-specific extras
// (dur on "X", scope on "i", args.name on "M").
func TestChromeTraceSchema(t *testing.T) {
	decoded := traceEvents(t, ChromeTraceOptions{})
	if len(decoded) == 0 {
		t.Fatal("empty trace")
	}
	var complete, instants, meta int
	for i, ev := range decoded {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			t.Fatalf("event %d: missing name: %v", i, ev)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event %d: missing ph: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d: missing numeric pid: %v", i, ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event %d: missing numeric tid: %v", i, ev)
		}
		switch ph {
		case "X":
			complete++
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d: complete event needs ts >= 0: %v", i, ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
				t.Fatalf("event %d: complete event needs dur > 0: %v", i, ev)
			}
		case "i":
			instants++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d: instant needs ts: %v", i, ev)
			}
			if s, ok := ev["s"].(string); !ok || s != "t" {
				t.Fatalf("event %d: instant needs thread scope: %v", i, ev)
			}
		case "M":
			meta++
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("event %d: metadata needs args: %v", i, ev)
			}
			if _, ok := args["name"].(string); !ok {
				t.Fatalf("event %d: metadata needs args.name: %v", i, ev)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
	}
	// process_name + two thread_names, one episode slice, six instants
	// (episode-start, switch-out, resume, chain, halt, skip).
	if meta != 3 || complete != 1 || instants != 6 {
		t.Errorf("got %d metadata / %d complete / %d instant events, want 3/1/6",
			meta, complete, instants)
	}
}

// TestChromeTraceEpisodeSlice checks the cycle→µs conversion and the
// reconstruction of a complete slice from an EpisodeEnd alone.
func TestChromeTraceEpisodeSlice(t *testing.T) {
	decoded := traceEvents(t, ChromeTraceOptions{CyclesPerMicro: 1000, Pid: 3})
	for _, ev := range decoded {
		if ev["ph"] != "X" {
			continue
		}
		// EpisodeEnd at cycle 1400 with away=400 → slice [1.0µs, 1.4µs].
		if ts := ev["ts"].(float64); ts != 1.0 {
			t.Errorf("episode ts = %v µs, want 1.0", ts)
		}
		if dur := ev["dur"].(float64); dur != 0.4 {
			t.Errorf("episode dur = %v µs, want 0.4", dur)
		}
		if pid := ev["pid"].(float64); pid != 3 {
			t.Errorf("pid = %v, want 3", pid)
		}
		args := ev["args"].(map[string]any)
		if args["away_cycles"].(float64) != 400 {
			t.Errorf("args.away_cycles = %v, want 400", args["away_cycles"])
		}
		return
	}
	t.Fatal("no complete episode slice in export")
}

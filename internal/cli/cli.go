// Package cli holds the flag plumbing shared by the shprof / shinstr /
// shrun / shbench tools: workload selection by name and machine options.
// The tools rebuild scenarios deterministically from (workload, instances,
// seed), so a profile collected by shprof applies to the binary shinstr
// rewrites and shrun executes.
package cli

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/workloads"
)

// specFactory builds a workload spec with the requested instance count.
type specFactory func(instances int) workloads.Spec

var specs = map[string]specFactory{
	"chase": func(n int) workloads.Spec {
		return workloads.PointerChase{Nodes: 8192, Hops: 3000, Instances: n}
	},
	"hashjoin": func(n int) workloads.Spec {
		return workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 400, MatchFraction: 0.7, Instances: n}
	},
	"bst": func(n int) workloads.Spec {
		return workloads.BST{Keys: 8192, Lookups: 300, Instances: n}
	},
	"btree": func(n int) workloads.Spec {
		return workloads.BTree{Keys: 8192, Lookups: 300, Instances: n}
	},
	"skiplist": func(n int) workloads.Spec {
		return workloads.SkipList{Keys: 8192, Lookups: 300, Instances: n}
	},
	"binsearch": func(n int) workloads.Spec {
		return workloads.BinarySearch{N: 65536, Lookups: 300, Instances: n}
	},
	"scatter": func(n int) workloads.Spec {
		return workloads.Scatter{Slots: 8192, Updates: 3000, Instances: n}
	},
	"scan": func(n int) workloads.Spec {
		return workloads.ArrayScan{N: 65536, Instances: n}
	},
	"multichase": func(n int) workloads.Spec {
		return workloads.MultiChase{Nodes: 4096, Hops: 1000, Instances: n}
	},
	"mixedchase": func(n int) workloads.Spec {
		return workloads.MixedChase{ColdNodes: 8192, HotNodes: 16, Hops: 1500, Instances: n}
	},
	"accelstream": func(n int) workloads.Spec {
		return workloads.AccelStream{Blocks: 2000, Pad: 8, Instances: n}
	},
	"compute": func(n int) workloads.Spec {
		return workloads.Compute{Iters: 200000, Instances: n}
	},
}

// Names lists the selectable workloads.
func Names() []string {
	var names []string
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SpecByName resolves a workload name.
func SpecByName(name string, instances int) (workloads.Spec, error) {
	f, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (have %v)", name, Names())
	}
	if instances < 1 {
		return nil, fmt.Errorf("instances must be ≥ 1")
	}
	return f(instances), nil
}

// WorkloadFlags is the common workload/machine flag set.
type WorkloadFlags struct {
	Workload  string
	Instances int
	Seed      int64
}

// Register installs the common flags into fs.
func (w *WorkloadFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.Workload, "workload", "chase", fmt.Sprintf("workload name %v", Names()))
	fs.IntVar(&w.Instances, "instances", 8, "independent workload instances (coroutines)")
	fs.Int64Var(&w.Seed, "seed", 20230626, "deterministic scenario seed")
}

// CanonicalFlags is the cross-tool flag vocabulary: every tool that
// offers one of these behaviours must spell it exactly this way, so a
// flag learned on shbench works unchanged on shrun.
var CanonicalFlags = []struct{ Name, Meaning string }{
	{"seed", "deterministic scenario seed"},
	{"seeds", "sweep the scenario across N seeds"},
	{"parallel", "worker goroutines for sweeps (0 = GOMAXPROCS)"},
	{"metrics", "print the cycle-domain observability counters"},
	{"cache", "serve and store results in the content-addressed cache"},
	{"cache-dir", "cache directory (implies -cache; default ~/.cache/softhide)"},
	{"trace-out", "write retained trace events as Chrome trace-event JSON"},
	{"cores", "simulated cores sharing the banked LLC (1 = classic single-core engine)"},
	{"llc-banks", "shared-LLC bank count override (power of two; needs -cores > 1)"},
	{"llc-size", "shared-LLC capacity override in bytes (needs -cores > 1)"},
	{"quantum", "cycle-quantum length of the many-core kernel (0 = default)"},
	{"serve", "run the open-loop service harness (arrivals on their own clock)"},
	{"arrivals", "arrival process: poisson | uniform | bursty (needs -serve)"},
	{"rate", "offered load sweep in requests/µs, comma-separated (needs -serve)"},
	{"requests", "requests offered per sweep cell (needs -serve)"},
	{"policy", "serving policies, comma-separated: agnostic,sidecar,event-aware,os-thread,smt"},
}

// TopologyFlags is the common many-core flag set: core count plus
// shared-LLC and quantum overrides.
type TopologyFlags struct {
	Cores    int
	LLCBanks int
	LLCSize  uint64
	Quantum  uint64
}

// Register installs the topology flags into fs.
func (tf *TopologyFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&tf.Cores, "cores", 1, "simulated cores sharing the banked LLC (1 = classic single-core engine)")
	fs.IntVar(&tf.LLCBanks, "llc-banks", 0, "shared-LLC bank count override (power of two; needs -cores > 1)")
	fs.Uint64Var(&tf.LLCSize, "llc-size", 0, "shared-LLC capacity override in bytes (needs -cores > 1)")
	fs.Uint64Var(&tf.Quantum, "quantum", 0, "cycle-quantum length of the many-core kernel (0 = default)")
}

// Check validates flag consistency upfront, so tools that only build a
// topology when -cores > 1 still reject bad combinations before any
// simulation starts.
func (tf *TopologyFlags) Check() error {
	if tf.Cores < 1 {
		return fmt.Errorf("-cores must be ≥ 1 (got %d)", tf.Cores)
	}
	if tf.Cores == 1 && (tf.LLCBanks != 0 || tf.LLCSize != 0 || tf.Quantum != 0) {
		return fmt.Errorf("-llc-banks/-llc-size/-quantum tune the many-core kernel, which needs -cores > 1")
	}
	return nil
}

// Topology builds the machine topology described by the flags over the
// given per-core template, validating everything upfront so a bad flag
// combination fails before any simulation starts.
func (tf *TopologyFlags) Topology(mach core.Machine) (machine.Topology, error) {
	var topo machine.Topology
	if tf.Cores < 1 {
		return topo, fmt.Errorf("-cores must be ≥ 1 (got %d)", tf.Cores)
	}
	if tf.Cores == 1 && (tf.LLCBanks != 0 || tf.LLCSize != 0) {
		return topo, fmt.Errorf("-llc-banks/-llc-size configure the shared LLC, which needs -cores > 1")
	}
	topo = machine.DefaultTopology(tf.Cores)
	topo.Machine = mach
	if tf.LLCBanks != 0 {
		topo.LLC.Banks = tf.LLCBanks
	}
	if tf.LLCSize != 0 {
		topo.LLC.Size = tf.LLCSize
	}
	if tf.Quantum != 0 {
		topo.Quantum = tf.Quantum
	}
	if err := topo.Validate(); err != nil {
		return topo, err
	}
	return topo, nil
}

// ServiceFlags is the open-loop service-harness flag set: tools that
// can drive a Serve sweep spell these flags identically. The workload
// flag picks the request program (sized to -workers instances); the
// background batch tier defaults to the service package's compute
// filler.
type ServiceFlags struct {
	Serve    bool
	Arrivals string
	Rate     string
	Requests int
	Policy   string
	Workers  int
	Queue    int
	Shed     uint64
	Batch    int
	Burst    float64
}

// serviceDefaults mirrors Register's defaults so Check can tell an
// untouched flag set from a misused one.
var serviceDefaults = ServiceFlags{
	Arrivals: "poisson",
	Policy:   "agnostic,sidecar,event-aware,os-thread",
	Requests: 2000,
	Workers:  4,
	Queue:    64,
	Batch:    2,
	Burst:    8,
}

// Register installs the service flags into fs.
func (sf *ServiceFlags) Register(fs *flag.FlagSet) {
	d := serviceDefaults
	fs.BoolVar(&sf.Serve, "serve", false, "run the open-loop service harness (arrivals on their own clock)")
	fs.StringVar(&sf.Arrivals, "arrivals", d.Arrivals, "arrival process: poisson | uniform | bursty")
	fs.StringVar(&sf.Rate, "rate", "", "offered load sweep in requests/µs, comma-separated (default 0.05,0.1,0.2)")
	fs.IntVar(&sf.Requests, "requests", d.Requests, "requests offered per sweep cell")
	fs.StringVar(&sf.Policy, "policy", d.Policy, "serving policies, comma-separated")
	fs.IntVar(&sf.Workers, "workers", d.Workers, "concurrent in-flight request slots")
	fs.IntVar(&sf.Queue, "queue", d.Queue, "admission-queue capacity (arrivals beyond it drop)")
	fs.Uint64Var(&sf.Shed, "shed", d.Shed, "shed requests older than this many cycles at dispatch (0 = never)")
	fs.IntVar(&sf.Batch, "batch", d.Batch, "background batch tasks soaking up miss shadows and idle cycles")
	fs.Float64Var(&sf.Burst, "burst", d.Burst, "mean burst size for -arrivals bursty")
}

// Check validates the service flags upfront: with -serve, every value
// must parse; without it, touching a service knob is an error rather
// than a silent no-op.
func (sf *ServiceFlags) Check() error {
	if !sf.Serve {
		// Both the registered defaults and the zero value (programmatic
		// callers that never touch the service surface) are "untouched".
		if *sf != serviceDefaults && *sf != (ServiceFlags{}) {
			return fmt.Errorf("-arrivals/-rate/-requests/-policy/-workers/-queue/-shed/-batch/-burst tune the service harness, which needs -serve")
		}
		return nil
	}
	if _, err := service.ParseKind(sf.Arrivals); err != nil {
		return err
	}
	if _, err := service.ParsePolicies(sf.Policy); err != nil {
		return err
	}
	if _, err := sf.rates(); err != nil {
		return err
	}
	if sf.Requests < 1 {
		return fmt.Errorf("-requests must be ≥ 1 (got %d)", sf.Requests)
	}
	return nil
}

// rates parses the -rate list.
func (sf *ServiceFlags) rates() ([]float64, error) {
	if sf.Rate == "" {
		return nil, nil // service.Config defaults apply
	}
	var out []float64
	for _, s := range strings.Split(sf.Rate, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("-rate: %q is not a number", s)
		}
		out = append(out, r)
	}
	return out, nil
}

// ServiceConfig assembles the serve-sweep configuration described by
// the flags around the given request workload (typically built from the
// -workload flag with Instances = sf.Workers). The background batch
// tier is left to the service package's default compute filler.
func (sf *ServiceFlags) ServiceConfig(request workloads.Spec) (service.Config, error) {
	if err := sf.Check(); err != nil {
		return service.Config{}, err
	}
	kind, err := service.ParseKind(sf.Arrivals)
	if err != nil {
		return service.Config{}, err
	}
	pols, err := service.ParsePolicies(sf.Policy)
	if err != nil {
		return service.Config{}, err
	}
	rates, err := sf.rates()
	if err != nil {
		return service.Config{}, err
	}
	if len(rates) == 0 {
		rates = service.DefaultConfig().Rates
	}
	return service.Config{
		Workload:  service.Workload{Request: request},
		Arrivals:  service.ArrivalSpec{Kind: kind, Rate: rates[0], Burst: sf.Burst},
		Rates:     rates,
		Requests:  sf.Requests,
		Workers:   sf.Workers,
		Queue:     sf.Queue,
		ShedAfter: sf.Shed,
		Batch:     sf.Batch,
		Policies:  pols,
	}, nil
}

// InstallUsage wraps fs.Usage so that help output — including the
// message printed after an unknown-flag error — ends with the canonical
// cross-tool flag set.
func InstallUsage(fs *flag.FlagSet) {
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage of %s:\n", fs.Name())
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\ncanonical flags shared across tools (same name, same meaning):\n")
		for _, f := range CanonicalFlags {
			fmt.Fprintf(fs.Output(), "  -%-10s %s\n", f.Name, f.Meaning)
		}
	}
}

// Harness builds the scenario described by the flags.
func (w *WorkloadFlags) Harness() (*core.Harness, string, error) {
	spec, err := SpecByName(w.Workload, w.Instances)
	if err != nil {
		return nil, "", err
	}
	mach := core.DefaultMachine()
	mach.Seed = w.Seed
	h, err := core.NewHarness(mach, spec)
	if err != nil {
		return nil, "", err
	}
	return h, spec.Name(), nil
}

// Package cli holds the flag plumbing shared by the shprof / shinstr /
// shrun / shbench tools: workload selection by name and machine options.
// The tools rebuild scenarios deterministically from (workload, instances,
// seed), so a profile collected by shprof applies to the binary shinstr
// rewrites and shrun executes.
package cli

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// specFactory builds a workload spec with the requested instance count.
type specFactory func(instances int) workloads.Spec

var specs = map[string]specFactory{
	"chase": func(n int) workloads.Spec {
		return workloads.PointerChase{Nodes: 8192, Hops: 3000, Instances: n}
	},
	"hashjoin": func(n int) workloads.Spec {
		return workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 400, MatchFraction: 0.7, Instances: n}
	},
	"bst": func(n int) workloads.Spec {
		return workloads.BST{Keys: 8192, Lookups: 300, Instances: n}
	},
	"btree": func(n int) workloads.Spec {
		return workloads.BTree{Keys: 8192, Lookups: 300, Instances: n}
	},
	"skiplist": func(n int) workloads.Spec {
		return workloads.SkipList{Keys: 8192, Lookups: 300, Instances: n}
	},
	"binsearch": func(n int) workloads.Spec {
		return workloads.BinarySearch{N: 65536, Lookups: 300, Instances: n}
	},
	"scatter": func(n int) workloads.Spec {
		return workloads.Scatter{Slots: 8192, Updates: 3000, Instances: n}
	},
	"scan": func(n int) workloads.Spec {
		return workloads.ArrayScan{N: 65536, Instances: n}
	},
	"multichase": func(n int) workloads.Spec {
		return workloads.MultiChase{Nodes: 4096, Hops: 1000, Instances: n}
	},
	"mixedchase": func(n int) workloads.Spec {
		return workloads.MixedChase{ColdNodes: 8192, HotNodes: 16, Hops: 1500, Instances: n}
	},
	"accelstream": func(n int) workloads.Spec {
		return workloads.AccelStream{Blocks: 2000, Pad: 8, Instances: n}
	},
	"compute": func(n int) workloads.Spec {
		return workloads.Compute{Iters: 200000, Instances: n}
	},
}

// Names lists the selectable workloads.
func Names() []string {
	var names []string
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SpecByName resolves a workload name.
func SpecByName(name string, instances int) (workloads.Spec, error) {
	f, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (have %v)", name, Names())
	}
	if instances < 1 {
		return nil, fmt.Errorf("instances must be ≥ 1")
	}
	return f(instances), nil
}

// WorkloadFlags is the common workload/machine flag set.
type WorkloadFlags struct {
	Workload  string
	Instances int
	Seed      int64
}

// Register installs the common flags into fs.
func (w *WorkloadFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.Workload, "workload", "chase", fmt.Sprintf("workload name %v", Names()))
	fs.IntVar(&w.Instances, "instances", 8, "independent workload instances (coroutines)")
	fs.Int64Var(&w.Seed, "seed", 20230626, "deterministic scenario seed")
}

// CanonicalFlags is the cross-tool flag vocabulary: every tool that
// offers one of these behaviours must spell it exactly this way, so a
// flag learned on shbench works unchanged on shrun.
var CanonicalFlags = []struct{ Name, Meaning string }{
	{"seed", "deterministic scenario seed"},
	{"seeds", "sweep the scenario across N seeds"},
	{"parallel", "worker goroutines for sweeps (0 = GOMAXPROCS)"},
	{"metrics", "print the cycle-domain observability counters"},
	{"cache", "serve and store results in the content-addressed cache"},
	{"cache-dir", "cache directory (implies -cache; default ~/.cache/softhide)"},
	{"trace-out", "write retained trace events as Chrome trace-event JSON"},
	{"cores", "simulated cores sharing the banked LLC (1 = classic single-core engine)"},
	{"llc-banks", "shared-LLC bank count override (power of two; needs -cores > 1)"},
	{"llc-size", "shared-LLC capacity override in bytes (needs -cores > 1)"},
	{"quantum", "cycle-quantum length of the many-core kernel (0 = default)"},
}

// TopologyFlags is the common many-core flag set: core count plus
// shared-LLC and quantum overrides.
type TopologyFlags struct {
	Cores    int
	LLCBanks int
	LLCSize  uint64
	Quantum  uint64
}

// Register installs the topology flags into fs.
func (tf *TopologyFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&tf.Cores, "cores", 1, "simulated cores sharing the banked LLC (1 = classic single-core engine)")
	fs.IntVar(&tf.LLCBanks, "llc-banks", 0, "shared-LLC bank count override (power of two; needs -cores > 1)")
	fs.Uint64Var(&tf.LLCSize, "llc-size", 0, "shared-LLC capacity override in bytes (needs -cores > 1)")
	fs.Uint64Var(&tf.Quantum, "quantum", 0, "cycle-quantum length of the many-core kernel (0 = default)")
}

// Check validates flag consistency upfront, so tools that only build a
// topology when -cores > 1 still reject bad combinations before any
// simulation starts.
func (tf *TopologyFlags) Check() error {
	if tf.Cores < 1 {
		return fmt.Errorf("-cores must be ≥ 1 (got %d)", tf.Cores)
	}
	if tf.Cores == 1 && (tf.LLCBanks != 0 || tf.LLCSize != 0 || tf.Quantum != 0) {
		return fmt.Errorf("-llc-banks/-llc-size/-quantum tune the many-core kernel, which needs -cores > 1")
	}
	return nil
}

// Topology builds the machine topology described by the flags over the
// given per-core template, validating everything upfront so a bad flag
// combination fails before any simulation starts.
func (tf *TopologyFlags) Topology(mach core.Machine) (machine.Topology, error) {
	var topo machine.Topology
	if tf.Cores < 1 {
		return topo, fmt.Errorf("-cores must be ≥ 1 (got %d)", tf.Cores)
	}
	if tf.Cores == 1 && (tf.LLCBanks != 0 || tf.LLCSize != 0) {
		return topo, fmt.Errorf("-llc-banks/-llc-size configure the shared LLC, which needs -cores > 1")
	}
	topo = machine.DefaultTopology(tf.Cores)
	topo.Machine = mach
	if tf.LLCBanks != 0 {
		topo.LLC.Banks = tf.LLCBanks
	}
	if tf.LLCSize != 0 {
		topo.LLC.Size = tf.LLCSize
	}
	if tf.Quantum != 0 {
		topo.Quantum = tf.Quantum
	}
	if err := topo.Validate(); err != nil {
		return topo, err
	}
	return topo, nil
}

// InstallUsage wraps fs.Usage so that help output — including the
// message printed after an unknown-flag error — ends with the canonical
// cross-tool flag set.
func InstallUsage(fs *flag.FlagSet) {
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage of %s:\n", fs.Name())
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\ncanonical flags shared across tools (same name, same meaning):\n")
		for _, f := range CanonicalFlags {
			fmt.Fprintf(fs.Output(), "  -%-10s %s\n", f.Name, f.Meaning)
		}
	}
}

// Harness builds the scenario described by the flags.
func (w *WorkloadFlags) Harness() (*core.Harness, string, error) {
	spec, err := SpecByName(w.Workload, w.Instances)
	if err != nil {
		return nil, "", err
	}
	mach := core.DefaultMachine()
	mach.Seed = w.Seed
	h, err := core.NewHarness(mach, spec)
	if err != nil {
		return nil, "", err
	}
	return h, spec.Name(), nil
}

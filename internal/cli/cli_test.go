package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
)

func TestSpecByName(t *testing.T) {
	for _, name := range Names() {
		spec, err := SpecByName(name, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if spec.Name() == "" {
			t.Errorf("%s: empty spec name", name)
		}
	}
	if _, err := SpecByName("bogus", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := SpecByName("chase", 0); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestWorkloadFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var wf WorkloadFlags
	wf.Register(fs)
	if err := fs.Parse([]string{"-workload", "bst", "-instances", "3", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	h, part, err := wf.Harness()
	if err != nil {
		t.Fatal(err)
	}
	if part != "bst" {
		t.Errorf("part = %s", part)
	}
	if len(h.Sc.Part("bst").Instances) != 3 {
		t.Error("instance count not honored")
	}
	if h.Mach.Seed != 42 {
		t.Error("seed not honored")
	}
}

func TestHarnessRejectsBadWorkload(t *testing.T) {
	wf := WorkloadFlags{Workload: "nope", Instances: 1}
	if _, _, err := wf.Harness(); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestEveryNamedWorkloadBuildsAndValidates(t *testing.T) {
	// Each registry entry must compose successfully at small scale.
	for _, name := range Names() {
		wf := WorkloadFlags{Workload: name, Instances: 1, Seed: 7}
		h, part, err := wf.Harness()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if h.Sc.Part(part) == nil {
			t.Errorf("%s: part missing", name)
		}
	}
}

// TestInstallUsageListsCanonicalFlags: the usage text every tool prints
// — including after an unknown-flag error — must end with the shared
// cross-tool flag vocabulary.
func TestInstallUsageListsCanonicalFlags(t *testing.T) {
	fs := flag.NewFlagSet("shtest", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	var wf WorkloadFlags
	wf.Register(fs)
	InstallUsage(fs)

	// Unknown flags route through the usage text.
	if err := fs.Parse([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag must error")
	}
	out := buf.String()
	for _, f := range CanonicalFlags {
		if !strings.Contains(out, "-"+f.Name) {
			t.Errorf("usage missing canonical flag -%s:\n%s", f.Name, out)
		}
	}
	if !strings.Contains(out, "canonical flags shared across tools") {
		t.Errorf("usage missing canonical-set banner:\n%s", out)
	}
}

func TestTopologyFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var tf TopologyFlags
	tf.Register(fs)
	if err := fs.Parse([]string{"-cores", "4", "-llc-banks", "16", "-llc-size", "4194304", "-quantum", "2048"}); err != nil {
		t.Fatal(err)
	}
	if err := tf.Check(); err != nil {
		t.Fatal(err)
	}
	topo, err := tf.Topology(core.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if topo.Cores != 4 || topo.LLC.Banks != 16 || topo.LLC.Size != 4194304 || topo.Quantum != 2048 {
		t.Errorf("overrides lost: %+v", topo)
	}

	for _, bad := range []TopologyFlags{
		{Cores: 0},
		{Cores: 1, LLCBanks: 8},
		{Cores: 1, Quantum: 512},
	} {
		bad := bad
		if err := bad.Check(); err == nil {
			t.Errorf("Check accepted %+v", bad)
		}
	}
	badBanks := TopologyFlags{Cores: 4, LLCBanks: 3}
	if _, err := badBanks.Topology(core.DefaultMachine()); err == nil {
		t.Error("non-power-of-two bank count accepted")
	}
}

// Every topology flag is part of the canonical cross-tool vocabulary.
func TestTopologyFlagsAreCanonical(t *testing.T) {
	canon := map[string]bool{}
	for _, f := range CanonicalFlags {
		canon[f.Name] = true
	}
	for _, name := range []string{"cores", "llc-banks", "llc-size", "quantum"} {
		if !canon[name] {
			t.Errorf("flag -%s missing from CanonicalFlags", name)
		}
	}
}

func TestServiceFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var sf ServiceFlags
	sf.Register(fs)
	args := []string{"-serve", "-arrivals", "bursty", "-rate", "0.1, 0.25", "-requests", "500",
		"-policy", "agnostic,smt", "-workers", "2", "-queue", "16", "-shed", "9000", "-batch", "1", "-burst", "4"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := sf.Check(); err != nil {
		t.Fatal(err)
	}
	req, err := SpecByName("bst", sf.Workers)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sf.ServiceConfig(req)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arrivals.Kind != service.Bursty || cfg.Arrivals.Burst != 4 {
		t.Errorf("arrival spec lost: %+v", cfg.Arrivals)
	}
	if len(cfg.Rates) != 2 || cfg.Rates[0] != 0.1 || cfg.Rates[1] != 0.25 {
		t.Errorf("rates lost: %v", cfg.Rates)
	}
	if cfg.Requests != 500 || cfg.Workers != 2 || cfg.Queue != 16 || cfg.ShedAfter != 9000 || cfg.Batch != 1 {
		t.Errorf("admission knobs lost: %+v", cfg)
	}
	if len(cfg.Policies) != 2 || cfg.Policies[0] != service.Agnostic || cfg.Policies[1] != service.SMT {
		t.Errorf("policies lost: %v", cfg.Policies)
	}
	if _, err := cfg.Normalized(); err != nil {
		t.Errorf("flag-built config does not normalize: %v", err)
	}
}

// Service knobs without -serve are a hard error, not a silent no-op —
// but both the registered defaults and the zero value pass.
func TestServiceFlagsNeedServe(t *testing.T) {
	var zero ServiceFlags
	if err := zero.Check(); err != nil {
		t.Errorf("zero value rejected: %v", err)
	}
	def := serviceDefaults
	if err := def.Check(); err != nil {
		t.Errorf("registered defaults rejected: %v", err)
	}
	touched := serviceDefaults
	touched.Rate = "0.5"
	if err := touched.Check(); err == nil {
		t.Error("-rate without -serve accepted")
	}

	bad := serviceDefaults
	bad.Serve = true
	bad.Arrivals = "nope"
	if err := bad.Check(); err == nil {
		t.Error("unknown arrival kind accepted")
	}
	bad = serviceDefaults
	bad.Serve = true
	bad.Rate = "fast"
	if err := bad.Check(); err == nil {
		t.Error("non-numeric rate accepted")
	}
	bad = serviceDefaults
	bad.Serve = true
	bad.Policy = "bogus"
	if err := bad.Check(); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Every service flag is part of the canonical cross-tool vocabulary.
func TestServiceFlagsAreCanonical(t *testing.T) {
	canon := map[string]bool{}
	for _, f := range CanonicalFlags {
		canon[f.Name] = true
	}
	for _, name := range []string{"serve", "arrivals", "rate", "requests", "policy"} {
		if !canon[name] {
			t.Errorf("flag -%s missing from CanonicalFlags", name)
		}
	}
}

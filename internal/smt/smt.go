// Package smt models simultaneous multithreading as a baseline: K hardware
// contexts multiplex one core, switching on memory stalls with zero
// software overhead.
//
// This captures both limitations the paper attributes to SMT (§1): the
// degree of concurrency is capped at the hardware context count (2–8 on
// real cores), and the hardware has no notion of application priority — a
// latency-sensitive thread is multiplexed like any other, so its latency
// inflates with the number of co-runners.
package smt

import (
	"fmt"

	"repro/internal/bincfg"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/metrics"
)

// Config tunes the SMT model.
type Config struct {
	// Contexts is the number of hardware threads (2-8 on real parts).
	Contexts int
	// Quantum is the fine-grained multiplexing grain in cycles: the model
	// rotates runnable contexts every Quantum busy cycles, approximating
	// per-cycle issue-slot sharing. This is what makes SMT inflate the
	// latency of a thread sharing the core with compute-bound peers —
	// the hardware cannot prioritize.
	Quantum uint64
	// MaxSteps bounds total retired instructions (runaway guard).
	MaxSteps uint64
	// DisableSuperblocks keeps the superblock trace tier off (see
	// exec.Config.DisableSuperblocks); superblock exits respect the
	// quantum budget and stall-block boundaries exactly, so this is an
	// A/B and differential-testing knob, not a correctness one.
	DisableSuperblocks bool
	// Metrics, when non-nil, receives per-context completion latencies
	// in the Sched section at each halt — the same contract exec.Config
	// has, so SMT baseline runs (including resumable many-core ones)
	// report request latencies like the coroutine engines do. One nil
	// check per halt is the whole disabled-path cost.
	Metrics *metrics.Registry
}

// DefaultConfig models 2-way SMT (Intel Hyper-Threading) with a fine
// multiplexing grain.
func DefaultConfig() Config {
	return Config{Contexts: 2, Quantum: 4, MaxSteps: 200_000_000}
}

// Stats summarizes an SMT run.
type Stats struct {
	// Cycles is the wall-clock duration.
	Cycles uint64
	// Busy is the sum of busy cycles across hardware contexts.
	Busy uint64
	// Idle counts cycles during which every context was blocked on
	// memory — the stalls SMT failed to hide.
	Idle uint64
	// Retired counts instructions retired by all contexts.
	Retired uint64
	// Latencies[i] is the wall time from run start to context i's halt.
	Latencies []uint64
}

// Efficiency returns busy cycles as a fraction of wall cycles.
func (s Stats) Efficiency() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Cycles)
}

// Run multiplexes the contexts on the core until all halt. Software
// yields (YIELD/CYIELD) retire as no-ops: SMT is hardware-only and cannot
// see them. len(ctxs) must not exceed cfg.Contexts.
//
//shsim:cycle-entry
func Run(core *cpu.Core, cfg Config, ctxs []*coro.Context) (Stats, error) {
	r, err := NewRunner(core, cfg, ctxs)
	if err != nil {
		return Stats{}, err
	}
	if _, err := r.Run(^uint64(0)); err != nil {
		return Stats{}, err
	}
	return r.Stats(), nil
}

// Runner is the resumable form of Run for the cycle-quantum kernel
// (internal/machine): Run(deadline) multiplexes the contexts until the
// core clock reaches the deadline, and a later call picks up exactly
// where the previous one stopped. Run(^uint64(0)) is the classic
// run-to-completion discipline — the free Run function is that wrapper.
type Runner struct {
	core *cpu.Core
	cfg  Config
	ctxs []*coro.Context

	latencies    []uint64
	blockedUntil []uint64
	idle         uint64
	running      int
	cur          int
	steps        uint64
	sliceUsed    uint64
	start        uint64
	done         bool
	r            cpu.BlockResult
}

// NewRunner validates the configuration and prepares a resumable run.
func NewRunner(core *cpu.Core, cfg Config, ctxs []*coro.Context) (*Runner, error) {
	if cfg.Contexts <= 0 {
		return nil, fmt.Errorf("smt: context count must be positive")
	}
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("smt: no contexts")
	}
	if len(ctxs) > cfg.Contexts {
		return nil, fmt.Errorf("smt: %d software threads exceed %d hardware contexts", len(ctxs), cfg.Contexts)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultConfig().MaxSteps
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultConfig().Quantum
	}
	if !core.HasPlan() {
		// Enable the basic-block fast path; the program was validated at
		// core construction, so this cannot fail (and a nil plan would
		// only mean per-instruction dispatch, never a wrong answer).
		_ = bincfg.InstallFastPath(core)
	}
	if !cfg.DisableSuperblocks && !core.HasSuperblocks() {
		_ = bincfg.InstallSuperblocks(core, nil)
	}
	return &Runner{
		core:         core,
		cfg:          cfg,
		ctxs:         ctxs,
		latencies:    make([]uint64, len(ctxs)),
		blockedUntil: make([]uint64, len(ctxs)),
		running:      len(ctxs),
		start:        core.Now,
	}, nil
}

// Done reports whether every context has halted.
func (rn *Runner) Done() bool { return rn.done }

// Run advances the multiplexed contexts until the core clock reaches
// deadline or all contexts halt. done=false means the quantum expired;
// call again with a later deadline. The loop is the original Run's,
// with two deadline clips: the busy budget handed to the block engine
// never extends past the deadline (in block mode the clock advances by
// exactly the busy cycles retired, so a budget stop lands at or past
// the deadline), and an all-blocked idle advance stops at the deadline
// (the remaining idle is re-derived next quantum from blockedUntil, so
// splitting the wait changes no state).
//
//shsim:cycle-entry
func (rn *Runner) Run(deadline uint64) (bool, error) {
	if rn.done {
		return true, nil
	}
	core := rn.core
	cfg := rn.cfg
	ctxs := rn.ctxs
	for rn.running > 0 {
		if core.Now >= deadline {
			return false, nil
		}
		if rn.steps >= cfg.MaxSteps {
			return false, fmt.Errorf("smt: MaxSteps exceeded")
		}
		// Pick the next runnable context, round-robin from cur. Contexts
		// skipped over (earlier in scan order but currently blocked) may
		// unblock while the picked one runs; preemptAt records the
		// earliest such wake-up so the block engine hands control back at
		// exactly the instruction boundary where the per-instruction loop
		// would have re-picked them.
		picked := -1
		preemptAt := uint64(0)
		for off := 0; off < len(ctxs); off++ {
			i := (rn.cur + off) % len(ctxs)
			if ctxs[i].Halted {
				continue
			}
			if rn.blockedUntil[i] <= core.Now {
				picked = i
				break
			}
			if preemptAt == 0 || rn.blockedUntil[i] < preemptAt {
				preemptAt = rn.blockedUntil[i]
			}
		}
		if picked < 0 {
			// All runnable contexts are blocked: idle until the earliest
			// fill completes. This is the exposed stall SMT cannot hide.
			var soonest uint64
			first := true
			for i := range ctxs {
				if ctxs[i].Halted {
					continue
				}
				if first || rn.blockedUntil[i] < soonest {
					soonest = rn.blockedUntil[i]
					first = false
				}
			}
			if first || soonest <= core.Now {
				return false, fmt.Errorf("smt: deadlock — nothing runnable and nothing blocked")
			}
			if soonest > deadline {
				soonest = deadline
			}
			rn.idle += soonest - core.Now
			core.AdvanceIdle(soonest - core.Now)
			continue
		}
		// The busy budget is the remaining quantum, clipped to the next
		// wake-up of a skipped-over peer and to the kernel deadline: in
		// block mode the clock advances by exactly the busy cycles
		// retired, so a budget of (preemptAt − Now) stops at the first
		// boundary where that peer is runnable.
		budget := cfg.Quantum - rn.sliceUsed
		if preemptAt > core.Now && preemptAt-core.Now < budget {
			budget = preemptAt - core.Now
		}
		if deadline-core.Now < budget {
			budget = deadline - core.Now
		}
		if err := core.RunBlock(ctxs[picked], true, cfg.MaxSteps-rn.steps, budget, &rn.r); err != nil {
			return false, err
		}
		rn.steps += rn.r.Steps
		rn.sliceUsed += rn.r.Busy
		rotate := false
		if rn.r.Stall > 0 {
			// Block on the fill; the hardware switches to a peer for free.
			rn.blockedUntil[picked] = core.Now + rn.r.Stall
			ctxs[picked].StallCycles += rn.r.Stall
			rotate = true
		}
		if rn.r.Halted {
			rn.latencies[picked] = core.Now - rn.start
			if m := cfg.Metrics; m != nil {
				m.Sched.Requests++
				m.Sched.RequestLatency.Observe(core.Now - rn.start)
			}
			rn.running--
			rotate = true
		}
		if rotate || rn.sliceUsed >= cfg.Quantum {
			rn.cur = (picked + 1) % len(ctxs)
			rn.sliceUsed = 0
		}
	}
	rn.done = true
	return true, nil
}

// Stats assembles the run statistics; the fields match what the free
// Run would have returned for the same inputs.
func (rn *Runner) Stats() Stats {
	st := Stats{
		Cycles:    rn.core.Now - rn.start,
		Idle:      rn.idle,
		Latencies: rn.latencies,
	}
	for _, c := range rn.ctxs {
		st.Busy += c.BusyCycles
		st.Retired += c.Retired
	}
	return st
}

package smt

import (
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

const chaseSrc = `
    main:
        load r1, [r1]
        addi r3, r3, -1
        cmpi r3, 0
        jgt main
        halt
`

func tinyCaches() mem.Config {
	c := mem.DefaultConfig()
	c.L1Size = 256
	c.L1Ways = 1
	c.L2Size = 1 << 10
	c.L2Ways = 2
	c.L3Size = 4 << 10
	c.L3Ways = 4
	return c
}

func buildChain(m *mem.Memory, n int, seed int64) uint64 {
	base := m.Alloc(uint64(n)*64, 64)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for i := 0; i < n; i++ {
		m.MustWrite64(base+uint64(perm[i])*64, base+uint64(perm[(i+1)%n])*64)
	}
	return base + uint64(perm[0])*64
}

func machine(t *testing.T) (*cpu.Core, *mem.Memory) {
	t.Helper()
	prog := isa.MustAssemble(chaseSrc)
	m := mem.NewMemory(4 << 20)
	h := mem.MustNewHierarchy(tinyCaches())
	return cpu.MustNewCore(cpu.DefaultConfig(), prog, m, h), m
}

func chaser(m *mem.Memory, id int, iters int64, head uint64) *coro.Context {
	ctx := coro.NewContext(id, 0, m.Size()-uint64(id+1)*4096)
	ctx.Regs[1] = head
	ctx.Regs[3] = uint64(iters)
	return ctx
}

func run(t *testing.T, k int, nthreads int) Stats {
	t.Helper()
	core, m := machine(t)
	var ctxs []*coro.Context
	for i := 0; i < nthreads; i++ {
		ctxs = append(ctxs, chaser(m, i, 300, buildChain(m, 256, int64(10+i))))
	}
	st, err := Run(core, Config{Contexts: k, MaxSteps: 1 << 24}, ctxs)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ctxs {
		if !c.Halted {
			t.Fatalf("context %d did not halt", i)
		}
	}
	return st
}

func TestSingleContextExposesStalls(t *testing.T) {
	st := run(t, 1, 1)
	if st.Efficiency() > 0.3 {
		t.Errorf("1-context chase efficiency %.2f, want low", st.Efficiency())
	}
	if st.Idle == 0 {
		t.Error("single context should idle on every miss")
	}
}

func TestMoreContextsImproveEfficiency(t *testing.T) {
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8} {
		st := run(t, k, k)
		eff := st.Efficiency()
		if eff < prev-0.02 {
			t.Errorf("efficiency not monotone: k=%d eff=%.3f prev=%.3f", k, eff, prev)
		}
		prev = eff
	}
	// Even 8 contexts cannot fully hide DRAM-bound pointer chasing: the
	// compute-per-miss ratio is ~7 cycles against a ~300-cycle miss.
	st8 := run(t, 8, 8)
	if st8.Efficiency() > 0.5 {
		t.Errorf("8-way SMT efficiency %.2f unexpectedly high", st8.Efficiency())
	}
}

func TestLatencyInflationForComputeBoundPeers(t *testing.T) {
	// A compute-bound thread sharing the core with three equal peers gets
	// roughly a quarter of the issue slots: its latency inflates ~4x. This
	// is the paper's §1 point — SMT cannot prioritize.
	prog := isa.MustAssemble(`
    main:
        addi r3, r3, -1
        cmpi r3, 0
        jgt main
        halt
    `)
	runCompute := func(n int) Stats {
		m := mem.NewMemory(1 << 20)
		core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, mem.MustNewHierarchy(tinyCaches()))
		var ctxs []*coro.Context
		for i := 0; i < n; i++ {
			ctx := coro.NewContext(i, 0, m.Size()-uint64(i+1)*1024)
			ctx.Regs[3] = 2000
			ctxs = append(ctxs, ctx)
		}
		st, err := Run(core, Config{Contexts: 4, Quantum: 4, MaxSteps: 1 << 24}, ctxs)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	solo := runCompute(1)
	shared := runCompute(4)
	minLat := shared.Latencies[0]
	for _, l := range shared.Latencies {
		if l < minLat {
			minLat = l
		}
	}
	if minLat < solo.Latencies[0]*3 {
		t.Errorf("co-running latency %d vs solo %d: expected ~4x inflation", minLat, solo.Latencies[0])
	}
}

func TestContextLimitEnforced(t *testing.T) {
	core, m := machine(t)
	var ctxs []*coro.Context
	for i := 0; i < 3; i++ {
		ctxs = append(ctxs, chaser(m, i, 10, buildChain(m, 16, int64(i))))
	}
	if _, err := Run(core, Config{Contexts: 2}, ctxs); err == nil {
		t.Error("exceeding hardware contexts should fail")
	}
	if _, err := Run(core, Config{Contexts: 0}, ctxs[:1]); err == nil {
		t.Error("zero contexts should fail")
	}
	if _, err := Run(core, Config{Contexts: 2}, nil); err == nil {
		t.Error("no contexts should fail")
	}
}

func TestYieldsAreInvisibleToSMT(t *testing.T) {
	prog := isa.MustAssemble(`
    main:
        yield
        cyield
        addi r3, r3, -1
        cmpi r3, 0
        jgt main
        movi r1, 7
        halt
    `)
	m := mem.NewMemory(1 << 16)
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, mem.MustNewHierarchy(tinyCaches()))
	ctx := coro.NewContext(0, 0, m.Size()-8)
	ctx.Regs[3] = 5
	st, err := Run(core, Config{Contexts: 2, MaxSteps: 1000}, []*coro.Context{ctx})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Result != 7 || ctx.Switches != 0 {
		t.Error("yields must retire as no-ops under SMT")
	}
	if st.Retired == 0 {
		t.Error("stats empty")
	}
}

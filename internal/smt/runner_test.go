package smt

import (
	"reflect"
	"testing"

	"repro/internal/coro"
)

// A Runner driven in fixed cycle quanta must be byte-identical to the
// run-to-completion Run: same stats, same final clock, same memory
// counters, same architectural results — the block engine's busy-budget
// stop is a fuel split, and the idle advance splits losslessly because
// the remaining wait is re-derived from blockedUntil.
func TestRunnerSlicedEquivalence(t *testing.T) {
	build := func() (st Stats, now uint64, results []uint64) {
		core, m := machine(t)
		var ctxs []*coro.Context
		for i := 0; i < 4; i++ {
			ctxs = append(ctxs, chaser(m, i, 300, buildChain(m, 256, int64(30+i))))
		}
		st, err := Run(core, Config{Contexts: 4, MaxSteps: 1 << 24}, ctxs)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range ctxs {
			results = append(results, c.Result)
		}
		return st, core.Now, results
	}
	refSt, refNow, refRes := build()

	for _, quantum := range []uint64{32, 257, 2048, 1 << 24} {
		core, m := machine(t)
		var ctxs []*coro.Context
		for i := 0; i < 4; i++ {
			ctxs = append(ctxs, chaser(m, i, 300, buildChain(m, 256, int64(30+i))))
		}
		rn, err := NewRunner(core, Config{Contexts: 4, MaxSteps: 1 << 24}, ctxs)
		if err != nil {
			t.Fatal(err)
		}
		deadline := core.Now
		quanta := 0
		for {
			deadline += quantum
			done, err := rn.Run(deadline)
			if err != nil {
				t.Fatal(err)
			}
			quanta++
			if done {
				break
			}
			if quanta > 1<<22 {
				t.Fatal("runner did not converge")
			}
		}
		if !rn.Done() {
			t.Fatal("Done() false after completion")
		}
		st := rn.Stats()
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("quantum %d: stats diverged\n got %+v\nwant %+v", quantum, st, refSt)
		}
		if core.Now != refNow {
			t.Errorf("quantum %d: clock diverged: %d vs %d", quantum, core.Now, refNow)
		}
		for i, c := range ctxs {
			if c.Result != refRes[i] {
				t.Errorf("quantum %d: context %d result diverged", quantum, i)
			}
		}
		if quantum == 32 && quanta < 2 {
			t.Error("slicing untested: one quantum sufficed")
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	core, m := machine(t)
	ctx := chaser(m, 0, 1, buildChain(m, 16, 1))
	if _, err := NewRunner(core, Config{Contexts: 0}, []*coro.Context{ctx}); err == nil {
		t.Error("zero contexts accepted")
	}
	if _, err := NewRunner(core, Config{Contexts: 2}, nil); err == nil {
		t.Error("empty context list accepted")
	}
	if _, err := NewRunner(core, Config{Contexts: 1}, []*coro.Context{ctx, ctx}); err == nil {
		t.Error("oversubscription accepted")
	}
}

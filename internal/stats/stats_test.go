package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %f", s.P50)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("Stddev = %f", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Error("empty summary should be zero")
	}
	one := Summarize([]float64{7})
	if one.Stddev != 0 || one.P99 != 7 {
		t.Errorf("single-sample summary: %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestPercentileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8) bool {
		k := int(n%50) + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Errorf("table content wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: every line after the title has the same prefix width
	// for column 1.
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "b    ") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Error("division by zero not guarded")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("cache demo", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("beta", 42)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tb.String() {
		t.Errorf("round trip changed rendering:\n%s\nvs\n%s", back.String(), tb.String())
	}
	if back.Markdown() != tb.Markdown() {
		t.Error("round trip changed markdown rendering")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("md demo", "a", "b")
	tb.Row("x|y", 1.0)
	out := tb.Markdown()
	if !strings.Contains(out, "**md demo**") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Error("pipe escaping missing")
	}
}

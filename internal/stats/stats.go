// Package stats provides the small numeric and formatting helpers the
// benchmark harness uses: summaries, percentiles and fixed-width tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample distribution.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of xs. An empty input yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum, sq float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if len(sorted) > 1 {
		s.Stddev = math.Sqrt(sq / float64(len(sorted)-1))
	}
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// slice using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table renders rows with aligned columns, suitable for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v, floats with 3
// significant decimals.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// tableJSON is the serialized form of a Table. Rows travel as the
// already-formatted cell strings, so a decoded table renders exactly the
// bytes the original produced — the property the result cache relies on.
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON implements json.Marshaler, including the unexported rows.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Title: t.Title, Headers: t.Headers, Rows: t.rows})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	t.Title, t.Headers, t.rows = tj.Title, tj.Headers, tj.Rows
	return nil
}

// Ratio formats a/b as "x.xx×", guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Markdown renders the table as a GitHub-flavored markdown table (with
// the title as a heading when present), for pasting into reports like
// EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

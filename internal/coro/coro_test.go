package coro

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestSaveRestoreFull(t *testing.T) {
	c := NewContext(0, 10, 0x1000)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		c.Regs[r] = uint64(r) * 7
	}
	c.Regs[isa.SP] = 0x1000
	c.Flags = -1
	s := c.SaveLive(isa.AllRegs)
	for r := range c.Regs {
		c.Regs[r] = 0
	}
	c.PC = 99
	c.RestoreFrom(s)
	if c.PC != 10 || c.Flags != -1 {
		t.Errorf("PC/flags not restored: pc=%d flags=%d", c.PC, c.Flags)
	}
	for r := isa.Reg(0); r < isa.SP; r++ {
		if c.Regs[r] != uint64(r)*7 {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], uint64(r)*7)
		}
	}
}

func TestRestorePoisonsDeadRegisters(t *testing.T) {
	c := NewContext(0, 0, 0x2000)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		c.Regs[r] = 1000 + uint64(r)
	}
	c.Regs[isa.SP] = 0x2000
	mask := isa.RegMask(0).With(1).With(3)
	s := c.SaveLive(mask)
	c.RestoreFrom(s)
	if c.Regs[1] != 1001 || c.Regs[3] != 1003 {
		t.Error("live registers not preserved")
	}
	if c.Regs[isa.SP] != 0x2000 {
		t.Error("SP must always be preserved")
	}
	for _, r := range []isa.Reg{0, 2, 4, 5, 14} {
		if c.Regs[r] != PoisonValue {
			t.Errorf("dead register r%d = %#x, want poison", r, c.Regs[r])
		}
	}
}

func TestSaveLiveAlwaysKeepsSP(t *testing.T) {
	f := func(mask uint16) bool {
		c := NewContext(0, 0, 0xABCD)
		s := c.SaveLive(isa.RegMask(mask))
		c.RestoreFrom(s)
		return c.Regs[isa.SP] == 0xABCD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	full := m.FullCost()
	if full != 8+16 {
		t.Errorf("FullCost = %d, want 24", full)
	}
	// A minimal mask still pays for SP.
	if got := m.Cost(0); got != 8+1 {
		t.Errorf("Cost(empty) = %d, want 9", got)
	}
	small := m.Cost(isa.RegMask(0).With(1).With(2))
	if small >= full {
		t.Errorf("partial save (%d) should be cheaper than full (%d)", small, full)
	}
	// Monotonicity property: adding registers never lowers the cost.
	f := func(mask uint16, reg uint8) bool {
		r := isa.Reg(reg % isa.NumRegs)
		base := isa.RegMask(mask)
		return m.Cost(base.With(r)) >= m.Cost(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextAccounting(t *testing.T) {
	c := NewContext(3, 0, 0)
	c.Name = "worker"
	c.BusyCycles = 10
	c.StallCycles = 20
	c.SwitchCycles = 5
	if c.TotalCycles() != 35 {
		t.Errorf("TotalCycles = %d", c.TotalCycles())
	}
	if s := c.String(); s == "" {
		t.Error("empty String")
	}
	c2 := NewContext(4, 0, 0)
	if s := c2.String(); s == "" {
		t.Error("empty String for unnamed context")
	}
}

func TestModeString(t *testing.T) {
	if Primary.String() != "primary" || Scavenger.String() != "scavenger" {
		t.Error("mode strings wrong")
	}
}

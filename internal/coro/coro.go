// Package coro models light-weight coroutine contexts on the simulated
// machine.
//
// A context is the software-visible execution state of one coroutine:
// the register file and program counter. Switching between contexts is a
// first-class simulated cost governed by CostModel — the base cost plus a
// per-register charge for every register preserved across the switch. The
// instrumentation pipeline's register-liveness optimization (paper §3.2)
// reduces the preserved set, which directly reduces the charged cost.
//
// Correctness of that optimization is enforced, not assumed: RestoreFrom
// poisons every register outside the saved mask, so a program resumed with
// an unsound live mask computes wrong results and fails the semantics
// tests.
package coro

import (
	"fmt"

	"repro/internal/isa"
)

// PoisonValue is written to every non-preserved register when a context is
// resumed from a partial (live-mask) save. The value is chosen to make
// accidental use fail loudly: as an address it faults, as a counter it is
// absurd.
const PoisonValue uint64 = 0xDEAD_BEEF_DEAD_BEEF

// Mode distinguishes the two roles of the paper's asymmetric concurrency.
type Mode uint8

const (
	// Primary coroutines are latency-sensitive: they yield only at
	// primary-phase yields (likely cache misses) and expect control back
	// as soon as the miss is hidden.
	Primary Mode = iota
	// Scavenger coroutines exist to soak up cycles that would otherwise
	// stall: their conditional (scavenger-phase) yields are enabled, and
	// they hand the CPU back once they have run long enough.
	Scavenger
)

func (m Mode) String() string {
	if m == Primary {
		return "primary"
	}
	return "scavenger"
}

// Context is one coroutine's architectural state.
type Context struct {
	ID   int
	Name string
	Mode Mode

	Regs  [isa.NumRegs]uint64
	PC    int
	Flags int // comparison result: <0, 0, >0

	Halted bool
	// Result is R1 at the time HALT retired.
	Result uint64

	// LastPrefetchAddr/LastPrefetchValid record the most recent PREFETCH
	// issued by this context. The §4.1 hardware-assist option consults
	// them at the following YIELD to skip the switch when the line is
	// already cached.
	LastPrefetchAddr  uint64
	LastPrefetchValid bool

	// Accelerator state: at most one outstanding asynchronous operation
	// per coroutine (OpAccel/OpAccWait). The executor treats an
	// incomplete operation like an in-flight prefetch when sizing hide
	// windows.
	AccelPending bool
	AccelDone    uint64 // completion cycle
	AccelResult  uint64

	// Accounting, maintained by the executor.
	BusyCycles   uint64 // cycles spent executing instructions
	StallCycles  uint64 // cycles spent waiting on memory
	SwitchCycles uint64 // cycles charged for context switches out of this context
	Switches     uint64 // number of times this context was switched out
	Yields       uint64 // yields taken (primary-phase)
	CondYields   uint64 // conditional yields taken (scavenger-phase)
	Retired      uint64 // instructions retired
}

// NewContext returns a fresh context starting at entry with the given
// stack pointer.
func NewContext(id int, entry int, sp uint64) *Context {
	c := &Context{ID: id, PC: entry}
	c.Regs[isa.SP] = sp
	return c
}

// Saved is a partial register save produced by SaveLive.
type Saved struct {
	Mask  isa.RegMask
	Regs  [isa.NumRegs]uint64
	PC    int
	Flags int
}

// SaveLive captures the registers in mask (plus PC and flags). The stack
// pointer is always preserved regardless of the mask, mirroring the ISA
// calling convention.
func (c *Context) SaveLive(mask isa.RegMask) Saved {
	mask = mask.With(isa.SP)
	s := Saved{Mask: mask, PC: c.PC, Flags: c.Flags}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if mask.Has(r) {
			s.Regs[r] = c.Regs[r]
		}
	}
	return s
}

// RestoreFrom reinstates a partial save: saved registers come back, every
// other register is poisoned. This is what makes liveness analysis
// load-bearing (see the package comment).
func (c *Context) RestoreFrom(s Saved) {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.Mask.Has(r) {
			c.Regs[r] = s.Regs[r]
		} else {
			c.Regs[r] = PoisonValue
		}
	}
	c.PC = s.PC
	c.Flags = s.Flags
}

// TotalCycles returns all cycles attributed to this context.
func (c *Context) TotalCycles() uint64 {
	return c.BusyCycles + c.StallCycles + c.SwitchCycles
}

func (c *Context) String() string {
	name := c.Name
	if name == "" {
		name = fmt.Sprintf("ctx%d", c.ID)
	}
	return fmt.Sprintf("%s(%s pc=%d halted=%v)", name, c.Mode, c.PC, c.Halted)
}

// CostModel prices a context switch in cycles.
//
// Defaults follow the paper's numbers: a full 16-register save/restore
// pair lands at 24 cycles = 8 ns at 3 GHz, within the "<10 ns" envelope
// cited for Boost fcontext [6]; OS-thread-style switching is three orders
// of magnitude more expensive (see baselines).
type CostModel struct {
	// Base covers the control transfer itself: swapping PC/SP and the
	// scheduler hand-off.
	Base uint64
	// PerReg is charged for every general-purpose register preserved
	// across the switch (save on the way out plus restore on the way in).
	PerReg uint64
}

// DefaultCostModel returns the reference coroutine cost model: 8 + 16×1 =
// 24 cycles (8 ns) for a full save.
func DefaultCostModel() CostModel { return CostModel{Base: 8, PerReg: 1} }

// Cost returns the cycle cost of a switch that preserves the registers in
// mask. SP is always preserved and always charged.
func (m CostModel) Cost(mask isa.RegMask) uint64 {
	return m.Base + uint64(mask.With(isa.SP).Count())*m.PerReg
}

// FullCost returns the cost of a full-context switch.
func (m CostModel) FullCost() uint64 { return m.Cost(isa.AllRegs) }

package experiments

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// E10SamplingPeriod reproduces the §2/§3.2 sampling trade-off: denser
// sampling converges faster to the ground-truth miss rates at higher
// (modelled) overhead; sparse sampling is nearly free but noisy. This is
// the knob production PGO pipelines tune [1, 47, 50].
func E10SamplingPeriod(mach Machine) (*Result, error) {
	res := newResult("E10", "sampling-period trade-off: profile fidelity vs overhead (§3.2)")
	tbl := stats.NewTable("pointer-chase + binary-search profiling run",
		"period_scale", "samples", "dropped", "overhead_frac", "missrate_mae", "stall_err")
	res.Tables = append(res.Tables, tbl)

	h, err := NewHarness(mach,
		workloads.PointerChase{Nodes: 8192, Hops: 3000, Instances: 1},
		workloads.BinarySearch{N: 65536, Lookups: 300, Instances: 1},
	)
	if err != nil {
		return nil, err
	}

	for _, scale := range []uint64{1, 4, 16, 64, 256} {
		smpCfg := mach.Sampling
		for e := range smpCfg.Periods {
			if smpCfg.Periods[e] > 0 {
				p := smpCfg.Periods[e] * scale / 4
				if p == 0 {
					p = 1
				}
				smpCfg.Periods[e] = p
			}
		}
		prof, sampler, cpuCore, err := h.ProfileParts(smpCfg, "chase", "binsearch")
		if err != nil {
			return nil, err
		}

		// Fidelity: mean absolute error of per-site miss-rate estimates
		// against the ground-truth hardware counters, over loads that
		// executed at least 100 times.
		var mae float64
		var sites int
		for pc := range h.Sc.Prog.Instrs {
			if cpuCore.Counters.Loads[pc] < 100 {
				continue
			}
			truth := cpuCore.Counters.MissRateL2(pc)
			est := 0.0
			if s := prof.Site(pc); s != nil {
				est = s.MissRate()
			}
			mae += math.Abs(est - truth)
			sites++
		}
		if sites > 0 {
			mae /= float64(sites)
		}
		stallErr := 0.0
		if cpuCore.Counters.TotalStall > 0 {
			stallErr = math.Abs(prof.TotalStallCycles-float64(cpuCore.Counters.TotalStall)) /
				float64(cpuCore.Counters.TotalStall)
		}
		overheadFrac := float64(sampler.OverheadCycles()) / float64(cpuCore.Now)

		label := fmt.Sprintf("%.2fx", float64(scale)/4)
		tbl.Row(label, len(sampler.Samples), sampler.Dropped, overheadFrac, mae, stallErr)
		res.Metrics[fmt.Sprintf("scale_%d_mae", scale)] = mae
		res.Metrics[fmt.Sprintf("scale_%d_overhead", scale)] = overheadFrac
		res.Metrics[fmt.Sprintf("scale_%d_samples", scale)] = float64(len(sampler.Samples))
	}
	res.Notes = append(res.Notes,
		"period_scale 1x = the machine's default periods; larger = sparser sampling",
		"fidelity is measured against ground-truth counters the pipeline itself never sees")
	return res, nil
}

package experiments

import (
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E19SamplingPrecision isolates why the paper builds on *precise*
// event-based sampling (PEBS [1]) rather than ordinary sampling
// interrupts: imprecise samples skid to the following instruction, so
// miss and stall evidence lands on the wrong PC, the loads never become
// candidates, and the whole pipeline silently degrades to the baseline.
// This is §3.2's accuracy argument at the sampling layer (the companion
// to E13's mapping-level argument).
func E19SamplingPrecision(mach Machine) (*Result, error) {
	res := newResult("E19", "precise vs skidded sample attribution (§2/§3.2, PEBS [1])")
	tbl := stats.NewTable("pointer chase, 8-way interleaving",
		"attribution", "profiled_load_sites", "yields", "cycles", "efficiency")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	h, err := NewHarness(mach, workloads.PointerChase{Nodes: 8192, Hops: 1500, Instances: n})
	if err != nil {
		return nil, err
	}
	run := func(img *Image) (exec.Stats, error) {
		ts, err := h.Tasks(img, "chase", coro.Primary, n)
		if err != nil {
			return exec.Stats{}, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return exec.Stats{}, err
		}
		return st, ts.Validate()
	}

	for _, precise := range []bool{true, false} {
		smpCfg := mach.Sampling
		smpCfg.Precise = precise
		prof, _, _, err := h.ProfileParts(smpCfg, "chase")
		if err != nil {
			return nil, err
		}
		img, err := h.Instrument(prof, primaryOnlyOpts(mach))
		if err != nil {
			return nil, err
		}
		st, err := run(img)
		if err != nil {
			return nil, err
		}
		// Count profiled sites that are actually loads.
		loadSites := 0
		for _, s := range prof.Sites {
			if s.PC < len(h.Sc.Prog.Instrs) && h.Sc.Prog.Instrs[s.PC].Op.String() == "load" {
				loadSites++
			}
		}
		y, _ := yieldCount(img.Prog)
		label, key := "precise (PEBS)", "precise"
		if !precise {
			label, key = "skid +1 (ordinary PMU interrupt)", "skid"
		}
		tbl.Row(label, loadSites, y, st.Cycles, st.Efficiency())
		res.Metrics[key+"_eff"] = st.Efficiency()
		res.Metrics[key+"_yields"] = float64(y)
		res.Metrics[key+"_load_sites"] = float64(loadSites)
	}
	res.Notes = append(res.Notes,
		"with skid, miss samples attribute to the instruction after the load — never a candidate site",
		"the paper's footnote 1 makes the same point about imprecise stall events on real CPUs")
	return res, nil
}

package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E18WindowWidth reproduces the paper's intro claim that software
// mechanisms provide "on-demand scaling of concurrency": a request stream
// flows through a bounded window of interleaved coroutines (the database
// batch-execution model), and the window width is a runtime knob. CPU
// efficiency climbs with the width until the concurrency matches the
// latency/compute ratio, then flattens at the switch-overhead bound —
// no hardware redesign involved at any point.
func E18WindowWidth(mach Machine) (*Result, error) {
	res := newResult("E18", "on-demand concurrency scaling: request-window width (§1)")
	tbl := stats.NewTable("48 hash-join requests streamed through a W-wide window",
		"width", "cycles", "efficiency", "ipc", "switches")
	res.Tables = append(res.Tables, tbl)

	const nReq = 48
	h, err := NewHarness(mach, workloads.HashJoin{
		BuildRows: 8192, Buckets: 4096, Probes: 60, MatchFraction: 0.7, Instances: nReq,
	})
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	img, err := h.Instrument(prof, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		ts, err := h.Tasks(img, "hashjoin", coro.Primary, nReq)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunWindowed(ts.Tasks, w)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		tbl.Row(w, st.Cycles, st.Efficiency(), st.IPC(), st.Switches)
		res.Metrics[fmt.Sprintf("w%d_eff", w)] = st.Efficiency()
		res.Metrics[fmt.Sprintf("w%d_cycles", w)] = float64(st.Cycles)
	}
	res.Notes = append(res.Notes,
		"the window is replenished from the stream as requests retire (CoroBase-style batching)",
		"width is a pure software knob — contrast with SMT's fixed 2–8 hardware contexts (E3)")
	return res, nil
}

package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// dualScenario composes the latency-sensitive request (a hash-join probe
// batch) with the given background workload in one image.
func dualScenario(mach Machine, scavSpec workloads.Spec) (*Harness, error) {
	return NewHarness(mach,
		workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 250, MatchFraction: 0.7, Instances: 1},
		scavSpec,
	)
}

// E7DualMode reproduces §3.3's central claim: asymmetric concurrency
// achieves near-solo latency for the primary *and* high CPU efficiency,
// where symmetric interleaving trades one for the other.
func E7DualMode(mach Machine) (*Result, error) {
	res := newResult("E7", "asymmetric concurrency: primary latency vs CPU efficiency (§3.3)")
	tbl := stats.NewTable("hash-join primary + 4 batch-compute scavengers",
		"discipline", "primary_cycles", "latency_vs_solo", "efficiency", "episodes")
	res.Tables = append(res.Tables, tbl)

	// Batch co-runners with substantial work each: under symmetric
	// scheduling the primary waits behind them; under dual-mode they run
	// only inside its miss shadows.
	h, err := dualScenario(mach, workloads.Compute{Iters: 100000, Instances: 4})
	if err != nil {
		return nil, err
	}
	profJoin, _, err := h.Profile("hashjoin")
	if err != nil {
		return nil, err
	}

	// Solo baseline latency (uninstrumented).
	base := h.Baseline()
	bts, err := h.Tasks(base, "hashjoin", coro.Primary, 1)
	if err != nil {
		return nil, err
	}
	baseStats, err := h.NewExecutor(base, exec.Config{}).RunSolo(bts.Tasks[0])
	if err != nil {
		return nil, err
	}
	if err := bts.Validate(); err != nil {
		return nil, err
	}
	solo := baseStats.Cycles
	tbl.Row("solo (no interleaving)", solo, "1.00x", baseStats.Efficiency(), 0)
	res.Metrics["solo_latency"] = float64(solo)
	res.Metrics["solo_eff"] = baseStats.Efficiency()

	img, err := h.Instrument(profJoin, pipelineOptsFor(mach))
	if err != nil {
		return nil, err
	}

	newTasks := func() (*TaskSet, *TaskSet, error) {
		pts, err := h.Tasks(img, "hashjoin", coro.Primary, 1)
		if err != nil {
			return nil, nil, err
		}
		sts, err := h.Tasks(img, "compute", coro.Scavenger, 4)
		if err != nil {
			return nil, nil, err
		}
		return pts, sts, nil
	}

	// Symmetric interleaving: throughput discipline, no priorities.
	pts, sts, err := newTasks()
	if err != nil {
		return nil, err
	}
	all := &TaskSet{}
	all.Merge(pts)
	all.Merge(sts)
	symStats, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(all.Tasks)
	if err != nil {
		return nil, err
	}
	if err := all.Validate(); err != nil {
		return nil, err
	}
	symLat := symStats.Latencies[0]
	tbl.Row("symmetric (5 equals)", symLat,
		stats.Ratio(float64(symLat), float64(solo)), symStats.Efficiency(), 0)
	res.Metrics["sym_latency"] = float64(symLat)
	res.Metrics["sym_eff"] = symStats.Efficiency()

	// Dual mode: primary + scavengers.
	pts, sts, err = newTasks()
	if err != nil {
		return nil, err
	}
	dualStats, err := h.NewExecutor(img, exec.Config{}).RunDualMode(pts.Tasks[0], sts.Tasks)
	if err != nil {
		return nil, err
	}
	if err := pts.Validate(); err != nil {
		return nil, err
	}
	tbl.Row("dual-mode (1 primary + 4 scavengers)", dualStats.PrimaryLatency,
		stats.Ratio(float64(dualStats.PrimaryLatency), float64(solo)),
		dualStats.Efficiency(), dualStats.Episodes)
	res.Metrics["dual_latency"] = float64(dualStats.PrimaryLatency)
	res.Metrics["dual_eff"] = dualStats.Efficiency()
	res.Metrics["dual_episodes"] = float64(dualStats.Episodes)

	res.Notes = append(res.Notes,
		"symmetric interleaving inflates primary latency toward Nx; dual-mode stays near solo",
		"dual-mode efficiency approaches symmetric: scavengers run precisely in the miss shadows")
	return res, nil
}

// E8ScavengerScaling reproduces §3.3's on-demand scaling: a pointer-chasing
// scavenger hits its own misses and must chain to further scavengers,
// whereas a compute-bound scavenger hides a miss alone.
func E8ScavengerScaling(mach Machine) (*Result, error) {
	res := newResult("E8", "scavenger chaining on demand (§3.3)")
	tbl := stats.NewTable("chained scavengers per primary miss episode",
		"scavenger_kind", "episodes", "chain_switches", "chains_per_episode", "efficiency")
	res.Tables = append(res.Tables, tbl)

	kinds := []struct {
		label string
		spec  workloads.Spec
	}{
		{"compute (no misses)", workloads.Compute{Iters: 100_000_000, Instances: 4}},
		{"pointer chase (missing)", workloads.PointerChase{Nodes: 8192, Hops: 20000, Instances: 4}},
	}
	for _, kind := range kinds {
		h, err := dualScenario(mach, kind.spec)
		if err != nil {
			return nil, err
		}
		prof, _, err := h.Profile("hashjoin")
		if err != nil {
			return nil, err
		}
		if kind.spec.Name() == "chase" {
			pc, _, err := h.Profile("chase")
			if err != nil {
				return nil, err
			}
			if err := prof.Merge(pc); err != nil {
				return nil, err
			}
		}
		img, err := h.Instrument(prof, pipelineOptsFor(mach))
		if err != nil {
			return nil, err
		}
		pts, err := h.Tasks(img, "hashjoin", coro.Primary, 1)
		if err != nil {
			return nil, err
		}
		sts, err := h.Tasks(img, kind.spec.Name(), coro.Scavenger, 4)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunDualMode(pts.Tasks[0], sts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := pts.Validate(); err != nil {
			return nil, err
		}
		chains := 0.0
		if st.Episodes > 0 {
			chains = float64(st.ChainSwitches) / float64(st.Episodes)
		}
		tbl.Row(kind.label, st.Episodes, st.ChainSwitches, chains, st.Efficiency())
		res.Metrics[kind.spec.Name()+"_chains_per_episode"] = chains
	}
	res.Notes = append(res.Notes,
		"a compute scavenger reaches a scavenger-phase yield and returns directly",
		"a chasing scavenger yields at its own misses and hands on to the next scavenger (§3.3's example)")
	return res, nil
}

// E9IntervalSweep reproduces §3.3's scavenger-instrumentation knob: the
// target inter-yield interval trades yield-check overhead (too small)
// against primary-visible delay (too large). The paper suggests ~100 ns.
func E9IntervalSweep(mach Machine) (*Result, error) {
	res := newResult("E9", "scavenger inter-yield interval sweep (§3.3)")
	tbl := stats.NewTable("hash-join primary + compute scavengers",
		"interval_ns", "primary_cycles", "avg_overshoot", "efficiency", "switches")
	res.Tables = append(res.Tables, tbl)

	// The scavenger's straight-line body is ~4000 cycles long, so its
	// yield spacing is governed by the target interval (the loop-edge
	// guarantee alone would be far too sparse).
	h, err := dualScenario(mach, workloads.UnrolledCompute{BlockInstrs: 4000, Iters: 1 << 20, Instances: 2})
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	for _, interval := range []uint64{30, 100, 300, 1000, 3000} {
		opts := pipelineOptsFor(mach)
		opts.Scavenger.TargetInterval = interval
		img, err := h.Instrument(prof, opts)
		if err != nil {
			return nil, err
		}
		pts, err := h.Tasks(img, "hashjoin", coro.Primary, 1)
		if err != nil {
			return nil, err
		}
		sts, err := h.Tasks(img, "unrolled", coro.Scavenger, 2)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunDualMode(pts.Tasks[0], sts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := pts.Validate(); err != nil {
			return nil, err
		}
		overshoot := 0.0
		if st.Episodes > 0 {
			overshoot = float64(st.PrimaryDelay) / float64(st.Episodes)
		}
		tbl.Row(fmt.Sprintf("%.0f", NS(float64(interval))), st.PrimaryLatency, overshoot,
			st.Efficiency(), st.Switches)
		res.Metrics[fmt.Sprintf("interval_%d_latency", interval)] = float64(st.PrimaryLatency)
		res.Metrics[fmt.Sprintf("interval_%d_overshoot", interval)] = overshoot
		res.Metrics[fmt.Sprintf("interval_%d_eff", interval)] = st.Efficiency()
	}
	res.Notes = append(res.Notes,
		"overshoot = cycles the primary waited beyond its residual fill, averaged per episode",
		"paper §3.3: the interval must be bounded but sufficient to hide L2/L3 misses (~100 ns)")
	return res, nil
}

package experiments

import (
	"strings"
	"testing"
)

// runExp executes one experiment on the default machine and sanity-checks
// the result envelope.
func runExp(t *testing.T, id string) *Result {
	t.Helper()
	run, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := run(Default())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || len(res.Tables) == 0 || len(res.Metrics) == 0 {
		t.Fatalf("%s: malformed result: %+v", id, res)
	}
	if !strings.Contains(res.String(), res.Title) {
		t.Errorf("%s: String() missing title", id)
	}
	if res.MetricsString() == "" {
		t.Errorf("%s: no metrics", id)
	}
	return res
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(ids))
	}
	if _, ok := Lookup("F1"); !ok {
		t.Error("F1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestF1Spectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "F1")
	m := res.Metrics
	// OoOE wins (or ties at ~full efficiency) for ~4 ns events and cannot
	// help at 100 ns.
	if m["d4ns_ooo"] < 0.9 {
		t.Errorf("OoOE at 4ns = %.2f, want ~1", m["d4ns_ooo"])
	}
	if m["d100ns_ooo"] > m["d100ns_coro"] {
		t.Errorf("OoOE (%.2f) should lose to coroutines (%.2f) at 100ns",
			m["d100ns_ooo"], m["d100ns_coro"])
	}
	// Coroutines dominate the 100–300 ns band (memory-access latencies,
	// where full hiding needs ~30 concurrent streams) over SMT-8 and OS
	// threads. At ~10 ns SMT's free switches are competitive — the paper
	// targets the band hardware cannot cover.
	for _, d := range []string{"d100ns", "d300ns"} {
		if m[d+"_coro"] <= m[d+"_smt8"] {
			t.Errorf("%s: coro %.2f should beat smt8 %.2f", d, m[d+"_coro"], m[d+"_smt8"])
		}
		if m[d+"_coro"] <= m[d+"_os"] {
			t.Errorf("%s: coro %.2f should beat OS threads %.2f", d, m[d+"_coro"], m[d+"_os"])
		}
	}
	// OS-thread interleaving is hopeless at 100 ns but becomes viable at
	// 10 µs (the paper's "sufficiently long events" regime).
	if m["d100ns_os"] > 0.2 {
		t.Errorf("OS threads at 100ns = %.2f, want tiny", m["d100ns_os"])
	}
	if m["d10000ns_os"] < 0.25 {
		t.Errorf("OS threads at 10µs = %.2f, want viable", m["d10000ns_os"])
	}
	if m["d10000ns_os"] < 5*m["d100ns_os"] {
		t.Errorf("OS viability should grow with duration (%.3f vs %.3f)",
			m["d10000ns_os"], m["d100ns_os"])
	}
}

func TestE1SwitchCost(t *testing.T) {
	res := runExp(t, "E1")
	m := res.Metrics
	if m["coro_full_ns"] >= 10 {
		t.Errorf("full coroutine switch %.1f ns, paper wants <10 ns", m["coro_full_ns"])
	}
	if m["coro_live_ns"] >= m["coro_full_ns"] {
		t.Errorf("live-mask switch %.1f ns should beat full save %.1f ns",
			m["coro_live_ns"], m["coro_full_ns"])
	}
	if m["ratio_thread_over_coro"] < 100 {
		t.Errorf("thread/coro ratio %.0f, want orders of magnitude", m["ratio_thread_over_coro"])
	}
}

func TestE2StallFraction(t *testing.T) {
	res := runExp(t, "E2")
	m := res.Metrics
	// The paper's >60% claim must hold for the memory-bound kernels.
	for _, w := range []string{"chase", "hashjoin", "bst", "scatter"} {
		if m[w+"_stall_frac"] < 0.6 {
			t.Errorf("%s stall fraction %.2f, want >0.6", w, m[w+"_stall_frac"])
		}
	}
	if m["scan_stall_frac"] > 0.4 {
		t.Errorf("cache-friendly scan stalls %.2f of cycles, want small", m["scan_stall_frac"])
	}
	// The B+-tree sits in between: it is the cache-conscious index (wide
	// nodes, shallow depth), stalling less than the binary structures but
	// far more than the scan.
	if !(m["btree_stall_frac"] > 0.4 && m["btree_stall_frac"] < m["bst_stall_frac"]) {
		t.Errorf("btree stall %.2f should sit between scan and bst (%.2f)",
			m["btree_stall_frac"], m["bst_stall_frac"])
	}
}

func TestE3SMTvsCoro(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E3")
	m := res.Metrics
	if !(m["smt1"] < m["smt2"] && m["smt2"] < m["smt8"]) {
		t.Errorf("SMT efficiency should grow with contexts: %v %v %v", m["smt1"], m["smt2"], m["smt8"])
	}
	// SMT-8 plateaus well below full hiding; 32 coroutines go beyond it.
	if m["smt8"] > 0.6 {
		t.Errorf("SMT-8 = %.2f, expected a plateau below 0.6", m["smt8"])
	}
	if m["coro32"] <= m["smt8"]*1.3 {
		t.Errorf("coro-32 (%.2f) should clearly beat SMT-8 (%.2f)", m["coro32"], m["smt8"])
	}
	if m["coro32"] <= m["coro8"] {
		t.Errorf("software concurrency beyond 8 should keep helping: %v vs %v", m["coro32"], m["coro8"])
	}
}

func TestE4PipelineThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E4")
	m := res.Metrics
	for _, w := range []string{"chase", "hashjoin", "bst", "scatter", "binsearch"} {
		if m[w+"_pgo_speedup"] < 1.5 {
			t.Errorf("%s: profile-guided speedup %.2fx, want >1.5x", w, m[w+"_pgo_speedup"])
		}
		if m[w+"_pgo_eff"] < m[w+"_base_eff"] {
			t.Errorf("%s: pipeline reduced efficiency", w)
		}
		// Zero manual annotations, competitive with hand placement.
		if m[w+"_pgo_eff"] < 0.8*m[w+"_manual_eff"] {
			t.Errorf("%s: pgo eff %.2f far below manual %.2f", w, m[w+"_pgo_eff"], m[w+"_manual_eff"])
		}
	}
	// The cache-conscious B+-tree gains least of the indexes — consistent
	// with why databases prefer it — but must still gain, while blind
	// manual annotation actively hurts it.
	if m["btree_pgo_speedup"] < 1.15 {
		t.Errorf("btree: pgo speedup %.2fx, want >1.15x", m["btree_pgo_speedup"])
	}
	if m["btree_manual_eff"] >= m["btree_pgo_eff"] {
		t.Error("btree: manual annotation should lose to profile-guided")
	}
	// The cache-friendly scan must stay essentially uninstrumented.
	if m["scan_pgo_yields"] > 2 {
		t.Errorf("scan got %v yields, want ~0", m["scan_pgo_yields"])
	}
}

func TestE5ThresholdSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E5")
	m := res.Metrics
	never := m["theta_1.01"]
	always := m["theta_0.00"]
	best := m["best_theta"]
	bestEff := -1.0
	for k, v := range m {
		if strings.HasPrefix(k, "theta_") && v > bestEff {
			bestEff = v
		}
	}
	// A tuned threshold beats both extremes (the §3.2 trade-off).
	if bestEff <= never || bestEff <= always {
		t.Errorf("no interior optimum: best %.3f vs always %.3f / never %.3f (θ*=%.2f)",
			bestEff, always, never, best)
	}
}

func TestE6Ablations(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E6")
	m := res.Metrics
	// Coalescing cuts switches roughly 3x on the 3-stream chase.
	if m["ctrue_ltrue_switches"] >= m["cfalse_ltrue_switches"]*0.6 {
		t.Errorf("coalescing did not reduce switches: %v vs %v",
			m["ctrue_ltrue_switches"], m["cfalse_ltrue_switches"])
	}
	// Live masks cut switch cycles at equal switch counts.
	if m["ctrue_ltrue_switch_cycles"] >= m["ctrue_lfalse_switch_cycles"] {
		t.Errorf("live masks did not reduce switch cost: %v vs %v",
			m["ctrue_ltrue_switch_cycles"], m["ctrue_lfalse_switch_cycles"])
	}
	// Both optimizations together give the best efficiency.
	for _, k := range []string{"cfalse_ltrue_eff", "ctrue_lfalse_eff", "cfalse_lfalse_eff"} {
		if m["ctrue_ltrue_eff"] < m[k]-0.005 {
			t.Errorf("full optimizations (%.3f) lost to %s (%.3f)", m["ctrue_ltrue_eff"], k, m[k])
		}
	}
}

func TestE7DualMode(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E7")
	m := res.Metrics
	// Symmetric interleaving inflates primary latency badly; dual-mode
	// stays close to solo.
	if m["sym_latency"] < 2*m["solo_latency"] {
		t.Errorf("symmetric latency %.0f vs solo %.0f: expected inflation", m["sym_latency"], m["solo_latency"])
	}
	if m["dual_latency"] > 1.5*m["solo_latency"] {
		t.Errorf("dual-mode latency %.0f vs solo %.0f: want near-solo", m["dual_latency"], m["solo_latency"])
	}
	// And dual-mode recovers most of the efficiency headroom.
	if m["dual_eff"] < 2*m["solo_eff"] {
		t.Errorf("dual-mode efficiency %.2f vs solo %.2f: scavengers should soak stalls",
			m["dual_eff"], m["solo_eff"])
	}
	if m["dual_episodes"] == 0 {
		t.Error("no episodes")
	}
}

func TestE8ScavengerScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E8")
	m := res.Metrics
	if m["chase_chains_per_episode"] <= m["compute_chains_per_episode"] {
		t.Errorf("chasing scavengers should chain more: %.2f vs %.2f",
			m["chase_chains_per_episode"], m["compute_chains_per_episode"])
	}
	if m["chase_chains_per_episode"] < 0.5 {
		t.Errorf("chase scavengers chains/episode = %.2f, want substantial", m["chase_chains_per_episode"])
	}
}

func TestE9IntervalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E9")
	m := res.Metrics
	// Larger intervals mean more primary-visible overshoot.
	if m["interval_3000_overshoot"] <= m["interval_100_overshoot"] {
		t.Errorf("overshoot should grow with interval: %.0f vs %.0f",
			m["interval_3000_overshoot"], m["interval_100_overshoot"])
	}
	// And longer primary latency.
	if m["interval_3000_latency"] <= m["interval_100_latency"] {
		t.Errorf("latency should grow with interval: %.0f vs %.0f",
			m["interval_3000_latency"], m["interval_100_latency"])
	}
}

func TestE10SamplingPeriod(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E10")
	m := res.Metrics
	// Denser sampling: more samples, more overhead, better fidelity.
	if m["scale_1_samples"] <= m["scale_256_samples"] {
		t.Error("denser sampling should take more samples")
	}
	if m["scale_1_overhead"] <= m["scale_256_overhead"] {
		t.Error("denser sampling should cost more")
	}
	if m["scale_1_mae"] > m["scale_256_mae"]+0.02 {
		t.Errorf("denser sampling should not be less accurate: %.3f vs %.3f",
			m["scale_1_mae"], m["scale_256_mae"])
	}
	if m["scale_1_mae"] > 0.15 {
		t.Errorf("dense-sampling miss-rate MAE %.3f too high", m["scale_1_mae"])
	}
}

func TestE11HWAssist(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E11")
	m := res.Metrics
	if m["hw_skips"] == 0 {
		t.Error("presence probe never skipped a yield")
	}
	if m["hw_episodes"] >= m["static_episodes"] {
		t.Errorf("probe should reduce episodes: %v vs %v", m["hw_episodes"], m["static_episodes"])
	}
	if m["hw_latency"] >= m["static_latency"] {
		t.Errorf("probe should reduce primary latency: %v vs %v", m["hw_latency"], m["static_latency"])
	}
}

func TestE12SFI(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E12")
	m := res.Metrics
	if m["sfi_overhead"] <= 0 {
		t.Error("SFI should have measurable overhead")
	}
	if m["codesign_folded"] == 0 {
		t.Error("co-design folded nothing")
	}
	if m["codesign_cycles"] >= m["naive_cycles"] {
		t.Errorf("co-design (%v) should beat naive composition (%v)",
			m["codesign_cycles"], m["naive_cycles"])
	}
}

func TestE13InlineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E13")
	m := res.Metrics
	if m["bin_yields"] >= m["src_yields"] {
		t.Errorf("binary-level should instrument fewer sites: %v vs %v", m["bin_yields"], m["src_yields"])
	}
	if m["bin_switches"] >= m["src_switches"] {
		t.Errorf("binary-level should switch less: %v vs %v", m["bin_switches"], m["src_switches"])
	}
	if m["bin_eff"] < m["src_eff"] {
		t.Errorf("binary-level efficiency %.3f below source-level %.3f", m["bin_eff"], m["src_eff"])
	}
	if m["bin_eff"] < m["base_eff"] {
		t.Error("instrumentation should not lose to baseline here")
	}
}

func TestE14SchedulerIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E14")
	m := res.Metrics
	if m["sidecar_mean"] >= m["agnostic_mean"] {
		t.Errorf("sidecar mean latency %.0f should beat agnostic %.0f",
			m["sidecar_mean"], m["agnostic_mean"])
	}
	if m["event-aware_mean"] > m["sidecar_mean"]*1.05 {
		t.Errorf("event-aware mean %.0f should be at or below sidecar %.0f",
			m["event-aware_mean"], m["sidecar_mean"])
	}
	if m["sidecar_eff"] < 0.5 {
		t.Errorf("sidecar efficiency %.2f too low — batch work should fill shadows", m["sidecar_eff"])
	}
}

func TestE15ProfilePortability(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E15")
	m := res.Metrics
	if m["fresh_eff"] <= m["base_eff"] {
		t.Error("fresh profile should beat baseline")
	}
	// The stale, distribution-shifted profile must retain nearly all of
	// the fresh profile's benefit (the production-PGO premise).
	if m["stale_eff"] < 0.9*m["fresh_eff"] {
		t.Errorf("stale profile efficiency %.3f lost too much vs fresh %.3f",
			m["stale_eff"], m["fresh_eff"])
	}
	if m["stale_vs_fresh"] < 0.9 {
		t.Errorf("stale-instrumented binary %.2fx slower than fresh", 1/m["stale_vs_fresh"])
	}
}

func TestE16Accelerator(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E16")
	m := res.Metrics
	for _, lat := range []string{"lat150", "lat450", "lat1500"} {
		if m[lat+"_speedup"] < 1.5 {
			t.Errorf("%s: speedup %.2fx, want >1.5x", lat, m[lat+"_speedup"])
		}
		if m[lat+"_yields"] == 0 {
			t.Errorf("%s: no yields inserted at the wait site", lat)
		}
	}
	// Longer operations leave more shadow to fill: speedup grows.
	if m["lat1500_speedup"] <= m["lat150_speedup"] {
		t.Errorf("speedup should grow with latency: %.2f vs %.2f",
			m["lat1500_speedup"], m["lat150_speedup"])
	}
}

func TestE17PrefetcherInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E17")
	m := res.Metrics
	// Hardware on: the scan needs (and gets) no software help.
	if m["scan_hwtrue_yields"] > 2 {
		t.Errorf("scan with HW prefetch got %v yields", m["scan_hwtrue_yields"])
	}
	if m["scan_hwtrue_base_eff"] < 0.9 {
		t.Errorf("scan with HW prefetch baseline eff %.2f", m["scan_hwtrue_base_eff"])
	}
	// Hardware off: the gain/cost model correctly declines the scan too —
	// only 1 access in 8 misses, so per-access yields are net-negative.
	// The mechanisms are complementary, not substitutes.
	if m["scan_hwfalse_yields"] > 2 {
		t.Errorf("scan without HW prefetch got %v yields; model should decline", m["scan_hwfalse_yields"])
	}
	if m["scan_hwfalse_pgo_eff"] < 0.95*m["scan_hwfalse_base_eff"] {
		t.Errorf("declining must not hurt: %.2f vs %.2f",
			m["scan_hwfalse_pgo_eff"], m["scan_hwfalse_base_eff"])
	}
	// The chase does not care about the hardware prefetcher.
	if d := m["chase_hwtrue_base_eff"] - m["chase_hwfalse_base_eff"]; d > 0.05 || d < -0.05 {
		t.Errorf("HW prefetch moved chase baseline by %.3f", d)
	}
	if m["chase_hwtrue_pgo_eff"] < 2*m["chase_hwtrue_base_eff"] {
		t.Error("software mechanism should dominate on the chase")
	}
}

func TestE18WindowWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E18")
	m := res.Metrics
	// Efficiency grows with window width...
	if !(m["w1_eff"] < m["w4_eff"] && m["w4_eff"] < m["w16_eff"]) {
		t.Errorf("efficiency not increasing: %.3f %.3f %.3f", m["w1_eff"], m["w4_eff"], m["w16_eff"])
	}
	// ...with strongly diminishing returns past the latency/compute ratio.
	gainEarly := m["w8_eff"] - m["w1_eff"]
	gainLate := m["w32_eff"] - m["w16_eff"]
	if gainLate > gainEarly/3 {
		t.Errorf("no plateau: early gain %.3f, late gain %.3f", gainEarly, gainLate)
	}
	if m["w16_eff"] < 2*m["w1_eff"] {
		t.Errorf("w16 (%.3f) should be far above w1 (%.3f)", m["w16_eff"], m["w1_eff"])
	}
}

func TestE19SamplingPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E19")
	m := res.Metrics
	if m["precise_yields"] == 0 {
		t.Error("precise profile should instrument the chase")
	}
	if m["skid_yields"] >= m["precise_yields"] {
		t.Errorf("skidded profile should miss sites: %v vs %v yields",
			m["skid_yields"], m["precise_yields"])
	}
	if m["precise_eff"] < 2*m["skid_eff"] {
		t.Errorf("precision should matter: precise %.3f vs skid %.3f",
			m["precise_eff"], m["skid_eff"])
	}
}

func TestE20SwitchCostSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := runExp(t, "E20")
	m := res.Metrics
	// The §4.1 conjecture: going from the reference 8 ns switch to a
	// compiler-optimized ~1.7 ns switch buys comparatively little...
	ref := m["cost24_eff"]
	opt := m["cost4_eff"]
	if opt < ref {
		t.Errorf("cheaper switches should not hurt: %.3f vs %.3f", opt, ref)
	}
	if opt > ref*1.5 {
		t.Errorf("switch cost is not the bottleneck, but optimized (%.3f) >> reference (%.3f)", opt, ref)
	}
	// ...and even 4x the reference cost retains a solid win (the knee sits
	// well above the sub-10 ns regime).
	if m["cost96_speedup"] < 3 {
		t.Errorf("4x switch cost should still win clearly: %.2fx", m["cost96_speedup"])
	}
	// Kernel-thread-class costs destroy it — the E1/F1 story.
	if m["cost1500_speedup"] > m["cost24_speedup"]*0.8 {
		t.Errorf("µs-class switches should forfeit the benefit (%.2fx vs %.2fx)",
			m["cost1500_speedup"], m["cost24_speedup"])
	}
}

// TestSeedRobustness guards against seed-overfitting: the headline E7
// shape (dual-mode ≈ solo latency, near-symmetric efficiency) must hold
// across unrelated scenario seeds.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, seed := range []int64{1, 424242, 987654321} {
		mach := Default()
		mach.Seed = seed
		res, err := E7DualMode(mach)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := res.Metrics
		if m["dual_latency"] > 1.5*m["solo_latency"] {
			t.Errorf("seed %d: dual latency %.0f vs solo %.0f", seed, m["dual_latency"], m["solo_latency"])
		}
		if m["sym_latency"] < 2*m["solo_latency"] {
			t.Errorf("seed %d: symmetric latency not inflated", seed)
		}
		if m["dual_eff"] < 0.5 {
			t.Errorf("seed %d: dual efficiency %.2f", seed, m["dual_eff"])
		}
	}
}

func TestResultMarkdown(t *testing.T) {
	res, err := E1SwitchCost(Default())
	if err != nil {
		t.Fatal(err)
	}
	md := res.Markdown()
	if !strings.Contains(md, "### E1") || !strings.Contains(md, "| --- |") || !strings.Contains(md, "> paper:") {
		t.Errorf("markdown rendering wrong:\n%s", md)
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/bincfg"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sfi"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E11HWAssist reproduces §4.1: with a cache-presence probe, yields become
// conditional on the event actually happening, eliminating the wasted
// switches that static instrumentation pays on cache hits. Binary search
// is the mixed-locality stressor: upper levels hit, leaves miss, and the
// aggressive policy instruments everything.
func E11HWAssist(mach Machine) (*Result, error) {
	res := newResult("E11", "hardware-assisted conditional yields (§4.1)")
	tbl := stats.NewTable("aggressively instrumented binary search, dual-mode",
		"variant", "primary_cycles", "episodes", "hw_skips", "efficiency")
	res.Tables = append(res.Tables, tbl)

	h, err := NewHarness(mach,
		workloads.BinarySearch{N: 131072, Lookups: 400, Instances: 1},
		workloads.Compute{Iters: 100_000_000, Instances: 2},
	)
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("binsearch")
	if err != nil {
		return nil, err
	}
	opts := pipelineOptsFor(mach)
	opts.Primary.Policy = instrument.AlwaysPolicy{}
	img, err := h.Instrument(prof, opts)
	if err != nil {
		return nil, err
	}

	for _, hw := range []bool{false, true} {
		pts, err := h.Tasks(img, "binsearch", coro.Primary, 1)
		if err != nil {
			return nil, err
		}
		sts, err := h.Tasks(img, "compute", coro.Scavenger, 2)
		if err != nil {
			return nil, err
		}
		cfg := exec.Config{HWAssist: hw, HWAssistProbeCost: 2}
		st, err := h.NewExecutor(img, cfg).RunDualMode(pts.Tasks[0], sts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := pts.Validate(); err != nil {
			return nil, err
		}
		name := "static yields"
		key := "static"
		if hw {
			name = "presence-conditional yields"
			key = "hw"
		}
		tbl.Row(name, st.PrimaryLatency, st.Episodes, st.HWSkips, st.Efficiency())
		res.Metrics[key+"_latency"] = float64(st.PrimaryLatency)
		res.Metrics[key+"_episodes"] = float64(st.Episodes)
		res.Metrics[key+"_skips"] = float64(st.HWSkips)
		res.Metrics[key+"_eff"] = st.Efficiency()
	}
	res.Notes = append(res.Notes,
		"the probe (2 cycles) checks L1/L2 presence of the prefetched line before committing to a switch",
		"paper §4.1: place conditional yields where events happen often but not always")
	return res, nil
}

// E12SFI reproduces the §4.2 co-design question: SFI guards and yield
// instrumentation each cost instruction slots; folding guards into the
// shadow of adjacent context switches makes the combination cheaper than
// the sum.
func E12SFI(mach Machine) (*Result, error) {
	res := newResult("E12", "SFI isolation overhead and yield co-design (§4.2)")
	tbl := stats.NewTable("hash join, 8-way symmetric",
		"variant", "checks", "folded", "cycles", "efficiency", "overhead_vs_peer")
	res.Tables = append(res.Tables, tbl)

	// Sandbox spans all of simulated memory above the null page: guards
	// execute (and cost) but never trap.
	mach.CPU.SandboxLo = 64
	mach.CPU.SandboxHi = mach.MemBytes

	const n = 8
	h, err := NewHarness(mach, workloads.HashJoin{
		BuildRows: 8192, Buckets: 4096, Probes: 300, MatchFraction: 0.7, Instances: n,
	})
	if err != nil {
		return nil, err
	}
	run := func(img *Image) (exec.Stats, error) {
		ts, err := h.Tasks(img, "hashjoin", coro.Primary, n)
		if err != nil {
			return exec.Stats{}, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return exec.Stats{}, err
		}
		return st, ts.Validate()
	}
	harden := func(img *Image, codesign bool) (*Image, *sfi.Result, error) {
		prog, sres, err := sfi.Harden(img.Prog, sfi.Options{CoDesign: codesign, GuardStores: true})
		if err != nil {
			return nil, nil, err
		}
		entries := map[string]int{}
		for name, e := range img.Entries {
			entries[name] = sres.OldToNew[e]
		}
		return &Image{Prog: prog, Entries: entries}, sres, nil
	}

	base := h.Baseline()
	baseStats, err := run(base)
	if err != nil {
		return nil, err
	}
	tbl.Row("baseline", 0, 0, baseStats.Cycles, baseStats.Efficiency(), "-")

	sfiImg, sfiRes, err := harden(base, false)
	if err != nil {
		return nil, err
	}
	sfiStats, err := run(sfiImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("SFI only", sfiRes.Checks, 0, sfiStats.Cycles, sfiStats.Efficiency(),
		stats.Ratio(float64(sfiStats.Cycles), float64(baseStats.Cycles)))
	res.Metrics["sfi_overhead"] = float64(sfiStats.Cycles)/float64(baseStats.Cycles) - 1

	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	pgoImg, err := h.Instrument(prof, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	pgoStats, err := run(pgoImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("yields only", 0, 0, pgoStats.Cycles, pgoStats.Efficiency(),
		stats.Ratio(float64(pgoStats.Cycles), float64(baseStats.Cycles)))

	naiveImg, naiveRes, err := harden(pgoImg, false)
	if err != nil {
		return nil, err
	}
	naiveStats, err := run(naiveImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("yields + SFI (naive)", naiveRes.Checks, 0, naiveStats.Cycles, naiveStats.Efficiency(),
		stats.Ratio(float64(naiveStats.Cycles), float64(pgoStats.Cycles)))
	res.Metrics["naive_cycles"] = float64(naiveStats.Cycles)

	coImg, coRes, err := harden(pgoImg, true)
	if err != nil {
		return nil, err
	}
	coStats, err := run(coImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("yields + SFI (co-designed)", coRes.Checks, coRes.Folded, coStats.Cycles, coStats.Efficiency(),
		stats.Ratio(float64(coStats.Cycles), float64(pgoStats.Cycles)))
	res.Metrics["codesign_cycles"] = float64(coStats.Cycles)
	res.Metrics["codesign_folded"] = float64(coRes.Folded)
	res.Metrics["pgo_eff"] = pgoStats.Efficiency()
	res.Metrics["naive_eff"] = naiveStats.Efficiency()
	res.Metrics["codesign_eff"] = coStats.Efficiency()

	res.Notes = append(res.Notes,
		"co-design folds the guard of an instrumented load into the adjacent switch's shadow",
		"paper §4.2: can a co-design of SFI and event hiding reduce SFI's runtime overhead?")
	return res, nil
}

// inlineChase is the E13 workload: the same lookup-loop "function" is
// inlined at two sites — site A chases a DRAM-resident chain, site B a
// cache-resident one. Only site A deserves instrumentation, and only a
// binary-level pipeline can tell the two inlined copies apart (§3.2's
// inlining argument).
type inlineChase struct {
	BigNodes, SmallNodes, HopsA, HopsB, Instances int
}

// Name implements workloads.Spec.
func (inlineChase) Name() string { return "inline" }

const inlineChaseAsm = `
main:
loop_a:
    load r1, [r1]        ; inlined copy A: hot chain
    addi r3, r3, -1
    cmpi r3, 0
    jgt  loop_a
loop_b:
    load r2, [r2]        ; inlined copy B: cache-resident chain
    addi r4, r4, -1
    cmpi r4, 0
    jgt  loop_b
    add  r1, r1, r2
    halt
`

// Build implements workloads.Spec.
func (w inlineChase) Build(m *mem.Memory, rng *rand.Rand) (*workloads.Built, error) {
	if w.BigNodes < 2 || w.SmallNodes < 2 || w.HopsA < 1 || w.HopsB < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("inline chase: bad config")
	}
	b := &workloads.Built{Prog: isa.MustAssemble(inlineChaseAsm)}
	mkChain := func(n int) (uint64, map[uint64]uint64) {
		base := m.Alloc(uint64(n)*64, 64)
		perm := rng.Perm(n)
		next := make(map[uint64]uint64, n)
		for i := 0; i < n; i++ {
			from := base + uint64(perm[i])*64
			to := base + uint64(perm[(i+1)%n])*64
			m.MustWrite64(from, to)
			next[from] = to
		}
		return base + uint64(perm[0])*64, next
	}
	for inst := 0; inst < w.Instances; inst++ {
		headA, nextA := mkChain(w.BigNodes)
		headB, nextB := mkChain(w.SmallNodes)
		curA, curB := headA, headB
		for i := 0; i < w.HopsA; i++ {
			curA = nextA[curA]
		}
		for i := 0; i < w.HopsB; i++ {
			curB = nextB[curB]
		}
		var in workloads.Instance
		in.Regs[1] = headA
		in.Regs[2] = headB
		in.Regs[3] = uint64(w.HopsA)
		in.Regs[4] = uint64(w.HopsB)
		in.Expected = curA + curB
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// E13InlineAccuracy reproduces the §3.2 binary-level-accuracy argument: a
// function inlined at several sites needs instrumentation at only some of
// them, and profile data maps back to the binary exactly, whereas a
// source-level decision is forced to treat all inline sites alike.
func E13InlineAccuracy(mach Machine) (*Result, error) {
	res := newResult("E13", "binary-level vs source-level instrumentation accuracy (§3.2)")
	tbl := stats.NewTable("inlined lookup loop: hot site A, cache-resident site B (8-way)",
		"variant", "yields", "switches", "cycles", "efficiency")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	spec := inlineChase{BigNodes: 8192, SmallNodes: 32, HopsA: 1200, HopsB: 1200, Instances: n}
	h, err := NewHarness(mach, spec)
	if err != nil {
		return nil, err
	}

	run := func(img *Image) (exec.Stats, error) {
		ts, err := h.Tasks(img, "inline", coro.Primary, n)
		if err != nil {
			return exec.Stats{}, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return exec.Stats{}, err
		}
		return st, ts.Validate()
	}

	base := h.Baseline()
	baseStats, err := run(base)
	if err != nil {
		return nil, err
	}
	tbl.Row("baseline", 0, 0, baseStats.Cycles, baseStats.Efficiency())
	res.Metrics["base_eff"] = baseStats.Efficiency()

	// Source-level: both inline copies of the "function" get the yield.
	srcProg, oldToNew, err := baselines.AnnotateLoads(h.Sc.Prog, bincfg.LoadsIn(h.Sc.Prog))
	if err != nil {
		return nil, err
	}
	srcImg := h.FromRewrite(srcProg, oldToNew)
	srcStats, err := run(srcImg)
	if err != nil {
		return nil, err
	}
	sy, _ := yieldCount(srcProg)
	tbl.Row("source-level (both sites)", sy, srcStats.Switches, srcStats.Cycles, srcStats.Efficiency())
	res.Metrics["src_eff"] = srcStats.Efficiency()
	res.Metrics["src_switches"] = float64(srcStats.Switches)

	// Binary-level: the profile distinguishes the two copies by PC.
	prof, _, err := h.Profile("inline")
	if err != nil {
		return nil, err
	}
	img, err := h.Instrument(prof, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	binStats, err := run(img)
	if err != nil {
		return nil, err
	}
	by, _ := yieldCount(img.Prog)
	tbl.Row("binary-level (site A only)", by, binStats.Switches, binStats.Cycles, binStats.Efficiency())
	res.Metrics["bin_eff"] = binStats.Efficiency()
	res.Metrics["bin_switches"] = float64(binStats.Switches)
	res.Metrics["bin_yields"] = float64(by)
	res.Metrics["src_yields"] = float64(sy)

	res.Notes = append(res.Notes,
		"site B's loads hit after one lap of its 2 KiB chain; yielding there is pure overhead",
		"paper §3.2: profile data maps most accurately onto the representation closest to the binary")
	return res, nil
}

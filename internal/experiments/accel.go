package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E16Accelerator reproduces the paper's second motivating event family
// (§1): operations with onboard accelerators (Intel DSA-class engines on
// server parts [26, 32]). The submit/wait pattern leaves a 10s–100s-of-ns
// stall at every wait; the same profile-guided yields that hide cache
// misses hide these too — the profiler attributes the stalls to the
// ACCWAIT site and the instrumenter places a yield there, with the hide
// window sized from the operation's actual residual time.
func E16Accelerator(mach Machine) (*Result, error) {
	res := newResult("E16", "hiding onboard-accelerator waits (§1 motivation)")
	tbl := stats.NewTable("accelerator stream, 8-way interleaving",
		"accel_latency_ns", "variant", "cycles", "efficiency", "speedup")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	for _, lat := range []uint64{150, 450, 1500} {
		m := mach
		m.CPU.AccelLatency = lat
		h, err := NewHarness(m, workloads.AccelStream{Blocks: 1500, Pad: 8, Instances: n})
		if err != nil {
			return nil, err
		}
		run := func(img *Image) (exec.Stats, error) {
			ts, err := h.Tasks(img, "accelstream", coro.Primary, n)
			if err != nil {
				return exec.Stats{}, err
			}
			st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
			if err != nil {
				return exec.Stats{}, err
			}
			return st, ts.Validate()
		}

		base, err := run(h.Baseline())
		if err != nil {
			return nil, err
		}
		prof, _, err := h.Profile("accelstream")
		if err != nil {
			return nil, err
		}
		img, err := h.Instrument(prof, pipelineOptsFor(m))
		if err != nil {
			return nil, err
		}
		pg, err := run(img)
		if err != nil {
			return nil, err
		}

		ns := fmt.Sprintf("%.0f", NS(float64(lat)))
		tbl.Row(ns, "baseline", base.Cycles, base.Efficiency(), "1.00x")
		tbl.Row(ns, "profile-guided", pg.Cycles, pg.Efficiency(),
			stats.Ratio(float64(base.Cycles), float64(pg.Cycles)))
		key := fmt.Sprintf("lat%d", lat)
		res.Metrics[key+"_base_eff"] = base.Efficiency()
		res.Metrics[key+"_pgo_eff"] = pg.Efficiency()
		res.Metrics[key+"_speedup"] = float64(base.Cycles) / float64(pg.Cycles)
		res.Metrics[key+"_yields"] = float64(img.Pipe.Primary.Yields)
	}
	res.Notes = append(res.Notes,
		"the profiler sees the wait-site stalls via the same sampled events as cache misses",
		"no prefetch is inserted: the accelerator submission is already asynchronous, so a bare yield suffices",
		"speedup grows with the operation latency — more shadow to fill per yield")
	return res, nil
}

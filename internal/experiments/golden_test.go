package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenPath is the committed fixture holding every experiment's rendered
// tables and metrics at the default machine. It is the §3a determinism
// contract made executable: any change to the simulator that alters even
// one byte of one table fails this test, so perf rewrites (like PR 2's
// flat MSHR table) must prove observational equivalence to land.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenTables
//
// and justify the diff in the PR description.
const goldenPath = "testdata/golden_tables.txt"

// render produces the canonical byte representation of one experiment
// result: the human tables followed by the sorted flat metrics.
func renderGolden(r *Result) string {
	return r.String() + r.MetricsString() + "\n"
}

func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation regeneration is slow; skipped under -short")
	}
	mach := Default()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "golden evaluation tables — seed %d\n\n", mach.Seed)
	for _, e := range All() {
		res, err := e.Run(mach)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		buf.WriteString(renderGolden(res))
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	// Pinpoint the first divergence so the failure names the experiment
	// and line rather than dumping two ~100KiB blobs.
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("evaluation output diverges from golden fixture at line %d:\n  got:  %q\n  want: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("evaluation output length diverges from golden fixture: got %d lines, want %d", len(gotLines), len(wantLines))
}

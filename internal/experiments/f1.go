package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/smt"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// f1Durations are the modelled event durations in cycles (at 3 GHz:
// 4 ns … 10 µs), spanning Figure 1's x-axis.
var f1Durations = []uint64{12, 30, 90, 300, 900, 3000, 9000, 30000}

// oooWindowCycles models the latency an out-of-order window hides for
// free (~10 ns: a ROB's worth of independent work).
const oooWindowCycles = 30

// F1Spectrum reproduces Figure 1: for events of increasing duration,
// which mechanism keeps the CPU busy? The event is a dependent load whose
// service latency is the event duration (the chase workload with the
// memory latency set to D); each mechanism runs the same total work.
//
// Expected shape: out-of-order execution wins below ~10 ns; SMT helps but
// plateaus (2–8 contexts) in the 10–100 ns band; coroutines + PGO own
// 10 ns–1 µs; OS scheduling becomes viable only at µs scale, where its
// switch cost amortizes.
func F1Spectrum(mach Machine) (*Result, error) {
	res := newResult("F1", "event-duration spectrum: efficiency by hiding mechanism (Figure 1)")
	tbl := stats.NewTable("CPU efficiency vs event duration",
		"event_ns", "none", "OoOE", "SMT-2", "SMT-8", "coro-16", "OS-16", "winner")
	res.Tables = append(res.Tables, tbl)

	const nInstances = 16
	for _, d := range f1Durations {
		// Short events (cache misses) arrive densely — ~10 cycles of
		// compute per event, so full hiding needs tens of concurrent
		// streams, beyond any SMT. Long events (I/O-scale) come from
		// workloads that also compute more per event (pad grows), which
		// is what lets heavyweight mechanisms amortize their switches.
		pad := 0
		if d > 900 {
			pad = int(d / 20)
		}
		workPerHop := 3*pad + 12
		hops := 240000 / workPerHop
		if hops > 800 {
			hops = 800
		}
		if hops < 80 {
			hops = 80
		}
		spec := workloads.PaddedChase{Nodes: 8192, Hops: hops, Pad: pad, Instances: nInstances}

		m := mach
		m.Mem.LatDRAM = d
		m.Mem.LatL3 = minU64(m.Mem.LatL3, d)
		m.Mem.LatL2 = minU64(m.Mem.LatL2, m.Mem.LatL3)
		m.Mem.LatL1 = minU64(m.Mem.LatL1, m.Mem.LatL2)
		m.CPU.PipelineAbsorb = m.Mem.LatL1

		h, err := NewHarness(m, spec)
		if err != nil {
			return nil, err
		}
		base := h.Baseline()

		// Mechanism: nothing.
		effNone, err := f1Solo(h, base)
		if err != nil {
			return nil, err
		}

		// Mechanism: out-of-order window (absorbs up to ~10 ns of latency).
		mOoO := m
		mOoO.CPU.PipelineAbsorb = maxU64(oooWindowCycles, m.CPU.PipelineAbsorb)
		hOoO, err := NewHarness(mOoO, spec)
		if err != nil {
			return nil, err
		}
		effOoO, err := f1Solo(hOoO, hOoO.Baseline())
		if err != nil {
			return nil, err
		}

		// Mechanism: SMT with 2 and 8 hardware contexts.
		effSMT2, err := f1SMT(h, base, 2)
		if err != nil {
			return nil, err
		}
		effSMT8, err := f1SMT(h, base, 8)
		if err != nil {
			return nil, err
		}

		// Mechanism: profile-guided coroutines, 16-way symmetric.
		prof, _, err := h.Profile("padchase")
		if err != nil {
			return nil, err
		}
		opts := instrument.DefaultPipelineOptions()
		opts.Primary.Machine = m.Mem
		opts.Primary.CPU = m.CPU
		opts.Scavenger.Machine = m.Mem
		opts.Scavenger.CPU = m.CPU
		img, err := h.Instrument(prof, opts)
		if err != nil {
			return nil, err
		}
		effCoro, err := f1Symmetric(h, img, nInstances, h.Mach.Switch)
		if err != nil {
			return nil, err
		}

		// Mechanism: the same interleaving priced at OS-thread switches.
		effOS, err := f1Symmetric(h, img, nInstances, baselines.OSThreadCostModel())
		if err != nil {
			return nil, err
		}

		winner := "none"
		best := effNone
		for _, c := range []struct {
			name string
			eff  float64
		}{{"OoOE", effOoO}, {"SMT-2", effSMT2}, {"SMT-8", effSMT8}, {"coro-16", effCoro}, {"OS-16", effOS}} {
			if c.eff > best {
				best = c.eff
				winner = c.name
			}
		}
		ns := NS(float64(d))
		tbl.Row(fmt.Sprintf("%.0f", ns), effNone, effOoO, effSMT2, effSMT8, effCoro, effOS, winner)
		key := fmt.Sprintf("d%dns", int(ns))
		res.Metrics[key+"_none"] = effNone
		res.Metrics[key+"_ooo"] = effOoO
		res.Metrics[key+"_smt2"] = effSMT2
		res.Metrics[key+"_smt8"] = effSMT8
		res.Metrics[key+"_coro"] = effCoro
		res.Metrics[key+"_os"] = effOS
	}
	res.Notes = append(res.Notes,
		"event = dependent-load service latency; all mechanisms run the same 16-instance pointer-chase work",
		fmt.Sprintf("OoOE modelled as a %d-cycle absorb window; SMT switches on stall with zero overhead", oooWindowCycles))
	return res, nil
}

func f1Solo(h *Harness, img *Image) (float64, error) {
	ts, err := h.Tasks(img, "padchase", coro.Primary, 1)
	if err != nil {
		return 0, err
	}
	ex := h.NewExecutor(img, exec.Config{})
	st, err := ex.RunSolo(ts.Tasks[0])
	if err != nil {
		return 0, err
	}
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	return st.Efficiency(), nil
}

func f1Symmetric(h *Harness, img *Image, n int, switchModel coro.CostModel) (float64, error) {
	ts, err := h.Tasks(img, "padchase", coro.Primary, n)
	if err != nil {
		return 0, err
	}
	ex := h.NewExecutor(img, exec.Config{Switch: switchModel})
	st, err := ex.RunSymmetric(ts.Tasks)
	if err != nil {
		return 0, err
	}
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	return st.Efficiency(), nil
}

func f1SMT(h *Harness, img *Image, k int) (float64, error) {
	ts, err := h.Tasks(img, "padchase", coro.Primary, k)
	if err != nil {
		return 0, err
	}
	core := h.NewExecutor(img, exec.Config{}).Core
	var ctxs []*coro.Context
	for _, t := range ts.Tasks {
		ctxs = append(ctxs, t.Ctx)
	}
	st, err := smt.Run(core, smt.Config{Contexts: k, Quantum: 4, MaxSteps: 1 << 28}, ctxs)
	if err != nil {
		return 0, err
	}
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	return st.Efficiency(), nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E17PrefetcherInteraction is the substrate ablation DESIGN.md calls out:
// how does the software mechanism coexist with the hardware stream
// prefetcher? The hardware covers regular (sequential) access patterns
// and nothing else; the software mechanism must pick up exactly the
// irregular remainder — and must not double-instrument what the hardware
// already handles.
func E17PrefetcherInteraction(mach Machine) (*Result, error) {
	res := newResult("E17", "hardware stream prefetcher vs software yields (substrate ablation)")
	tbl := stats.NewTable("8-way interleaving, solo-profiled per configuration",
		"workload", "hw_prefetch", "variant", "cycles", "efficiency", "yields")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	kinds := []workloads.Spec{
		workloads.ArrayScan{N: 65536, Instances: n},                   // regular: hardware territory
		workloads.PointerChase{Nodes: 8192, Hops: 1500, Instances: n}, // irregular: software territory
	}
	for _, spec := range kinds {
		for _, hw := range []bool{true, false} {
			m := mach
			if !hw {
				m.Mem.HWPrefetchDistance = 0
			}
			h, err := NewHarness(m, spec)
			if err != nil {
				return nil, err
			}
			name := spec.Name()
			run := func(img *Image) (exec.Stats, error) {
				ts, err := h.Tasks(img, name, coro.Primary, n)
				if err != nil {
					return exec.Stats{}, err
				}
				st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
				if err != nil {
					return exec.Stats{}, err
				}
				return st, ts.Validate()
			}
			base, err := run(h.Baseline())
			if err != nil {
				return nil, err
			}
			prof, _, err := h.Profile(name)
			if err != nil {
				return nil, err
			}
			img, err := h.Instrument(prof, primaryOnlyOpts(m))
			if err != nil {
				return nil, err
			}
			pg, err := run(img)
			if err != nil {
				return nil, err
			}
			y, _ := yieldCount(img.Prog)
			hwLabel := "on"
			if !hw {
				hwLabel = "off"
			}
			tbl.Row(name, hwLabel, "baseline", base.Cycles, base.Efficiency(), 0)
			tbl.Row(name, hwLabel, "profile-guided", pg.Cycles, pg.Efficiency(), y)
			key := fmt.Sprintf("%s_hw%v", name, hw)
			res.Metrics[key+"_base_eff"] = base.Efficiency()
			res.Metrics[key+"_pgo_eff"] = pg.Efficiency()
			res.Metrics[key+"_yields"] = float64(y)
		}
	}
	res.Notes = append(res.Notes,
		"scan + HW prefetch: no stalls, and the profile-guided pass correctly inserts nothing",
		"scan without HW prefetch: only 1 access in 8 misses, so the gain/cost model correctly declines too —",
		"  per-access yields cannot express next-line prefetching; the mechanisms are complementary",
		"the chase is indifferent to the hardware prefetcher — dependent random accesses defeat stream detection")
	return res, nil
}

package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E1SwitchCost reproduces the paper's §2 cost comparison: coroutine
// switches land under 10 ns (9 ns for Boost fcontext [6]) while
// process/kernel-thread switches take hundreds of ns to µs [14, 38], and
// liveness-optimized saves go below the full-save cost.
func E1SwitchCost(mach Machine) (*Result, error) {
	res := newResult("E1", "context-switch cost: coroutines vs threads (§2)")
	tbl := stats.NewTable("switch cost", "mechanism", "cycles", "ns")
	res.Tables = append(res.Tables, tbl)

	full := mach.Switch.FullCost()
	tbl.Row("coroutine (full save)", full, NS(float64(full)))
	res.Metrics["coro_full_ns"] = NS(float64(full))

	// Measured liveness-optimized switches: instrument the chase and
	// observe the actual per-switch charge in a symmetric run.
	h, err := NewHarness(mach, workloads.PointerChase{Nodes: 4096, Hops: 1500, Instances: 4})
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("chase")
	if err != nil {
		return nil, err
	}
	img, err := h.Instrument(prof, pipelineOptsFor(mach))
	if err != nil {
		return nil, err
	}
	ts, err := h.Tasks(img, "chase", coro.Primary, 4)
	if err != nil {
		return nil, err
	}
	st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
	if err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if st.Switches == 0 {
		return nil, fmt.Errorf("E1: no switches measured")
	}
	avg := float64(st.Switch) / float64(st.Switches)
	tbl.Row("coroutine (live-mask save, measured)", fmt.Sprintf("%.1f", avg), NS(avg))
	res.Metrics["coro_live_ns"] = NS(avg)

	osCost := baselines.OSThreadCostModel().FullCost()
	tbl.Row("kernel thread / process", osCost, NS(float64(osCost)))
	res.Metrics["thread_ns"] = NS(float64(osCost))
	res.Metrics["ratio_thread_over_coro"] = float64(osCost) / float64(full)

	res.Notes = append(res.Notes,
		"paper: coroutine switches ~9 ns [6], thread switches 100s of ns to a few µs [14,38]")
	return res, nil
}

// E2StallFraction reproduces the §1 claim that memory-bound applications
// lose more than 60% of processor cycles to stalls [3, 13, 31, 62]: solo,
// uninstrumented runs of each workload on the reference machine.
func E2StallFraction(mach Machine) (*Result, error) {
	res := newResult("E2", "memory-bound CPU stall fractions (§1)")
	tbl := stats.NewTable("stall fraction, solo uninstrumented run",
		"workload", "cycles", "stall_frac", "ipc", "memory_bound")
	res.Tables = append(res.Tables, tbl)

	specs := []workloads.Spec{
		workloads.PointerChase{Nodes: 8192, Hops: 3000, Instances: 1},
		workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 600, MatchFraction: 0.7, Instances: 1},
		workloads.BST{Keys: 8192, Lookups: 400, Instances: 1},
		workloads.BTree{Keys: 8192, Lookups: 400, Instances: 1},
		workloads.SkipList{Keys: 8192, Lookups: 300, Instances: 1},
		workloads.Scatter{Slots: 8192, Updates: 3000, Instances: 1},
		workloads.BinarySearch{N: 65536, Lookups: 400, Instances: 1},
		workloads.ArrayScan{N: 65536, Instances: 1},
	}
	for _, spec := range specs {
		h, err := NewHarness(mach, spec)
		if err != nil {
			return nil, err
		}
		img := h.Baseline()
		ts, err := h.Tasks(img, spec.Name(), coro.Primary, 1)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSolo(ts.Tasks[0])
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		frac := st.StallFraction()
		bound := "no"
		if frac > 0.6 {
			bound = "yes (>60%)"
		}
		tbl.Row(spec.Name(), st.Cycles, frac, st.IPC(), bound)
		res.Metrics[spec.Name()+"_stall_frac"] = frac
	}
	res.Notes = append(res.Notes,
		"paper §1: widely-used applications lose >60% of cycles to memory-bound stalls [3,13,31,62]",
		"array scan is the cache-friendly foil: sequential lines hit after first touch")
	return res, nil
}

// pipelineOptsFor builds instrumentation options consistent with the
// experiment machine.
func pipelineOptsFor(mach Machine) instrument.PipelineOptions {
	opts := instrument.DefaultPipelineOptions()
	opts.Primary.Machine = mach.Mem
	opts.Primary.CPU = mach.CPU
	opts.Primary.Switch = mach.Switch
	opts.Scavenger.Machine = mach.Mem
	opts.Scavenger.CPU = mach.CPU
	return opts
}

// primaryOnlyOpts disables the scavenger phase (throughput-only runs).
func primaryOnlyOpts(mach Machine) instrument.PipelineOptions {
	opts := pipelineOptsFor(mach)
	opts.Scavenger = nil
	return opts
}

// yieldCount counts yields by kind in a program.
func yieldCount(prog *isa.Program) (yields, condYields int) {
	for _, in := range prog.Instrs {
		switch in.Op {
		case isa.OpYield:
			yields++
		case isa.OpCYield:
			condYields++
		}
	}
	return
}

// Package experiments regenerates every display item of the reproduction:
// Figure 1 and experiments E1–E20 from DESIGN.md §3. Each experiment is a
// pure function of a machine description, returns a formatted table plus
// flat metrics for assertions, and validates every simulated run against
// the workloads' host-reference results.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Aliases into internal/core: the experiments are written against the
// library's own end-to-end API.
type (
	// Machine is the simulated platform description.
	Machine = core.Machine
	// Harness owns one composed scenario.
	Harness = core.Harness
	// Image is a (possibly instrumented) executable program.
	Image = core.Image
	// TaskSet couples tasks with expected results.
	TaskSet = core.TaskSet
)

// Default returns the reference experiment machine.
func Default() Machine { return core.DefaultMachine() }

// NewHarness composes workload specs on a machine.
var NewHarness = core.NewHarness

// NS converts simulated cycles to nanoseconds.
func NS(cycles float64) float64 { return core.NS(cycles) }

// Result is one experiment's output.
type Result struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Metrics map[string]float64
	Notes   []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}}
}

// String renders the result for terminal output.
func (r *Result) String() string {
	s := fmt.Sprintf("### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Markdown renders the result as markdown (shbench -format md).
func (r *Result) Markdown() string {
	s := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.Markdown() + "\n"
	}
	for _, n := range r.Notes {
		s += "> " + n + "\n"
	}
	return s
}

// MetricsString renders metrics deterministically (used by shbench -v).
func (r *Result) MetricsString() string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%.4f\n", k, r.Metrics[k])
	}
	return s
}

// Runner produces one experiment result.
type Runner func(Machine) (*Result, error)

// registered holds experiments contributed by higher layers via
// Register, appended to the built-in registry in registration order.
var registered []struct {
	ID  string
	Run Runner
}

// Register adds an experiment to the registry. It exists for packages
// the experiment harness cannot import without a cycle (internal/
// service registers E21 here from an init function: service imports
// experiments for the Result type, so the open-loop experiments must
// flow in this direction). Register panics on a duplicate ID — that is
// a programming error, not an input error.
func Register(id string, run Runner) {
	if _, ok := Lookup(id); ok {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", id))
	}
	registered = append(registered, struct {
		ID  string
		Run Runner
	}{id, run})
}

// All returns the experiment registry in presentation order: the
// built-in experiments, then registered ones in registration order.
func All() []struct {
	ID  string
	Run Runner
} {
	all := []struct {
		ID  string
		Run Runner
	}{
		{"F1", F1Spectrum},
		{"E1", E1SwitchCost},
		{"E2", E2StallFraction},
		{"E3", E3SMTvsCoro},
		{"E4", E4PipelineThroughput},
		{"E5", E5ThresholdSweep},
		{"E6", E6Ablations},
		{"E7", E7DualMode},
		{"E8", E8ScavengerScaling},
		{"E9", E9IntervalSweep},
		{"E10", E10SamplingPeriod},
		{"E11", E11HWAssist},
		{"E12", E12SFI},
		{"E13", E13InlineAccuracy},
		{"E14", E14SchedulerIntegration},
		{"E15", E15ProfilePortability},
		{"E16", E16Accelerator},
		{"E17", E17PrefetcherInteraction},
		{"E18", E18WindowWidth},
		{"E19", E19SamplingPrecision},
		{"E20", E20SwitchCostSensitivity},
	}
	return append(all, registered...)
}

// Lookup finds a runner by (case-sensitive) ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// UnknownIDError reports a failed experiment lookup. Its message lists
// every valid ID so a mistyped -exp value is immediately actionable.
type UnknownIDError struct {
	ID string
}

func (e *UnknownIDError) Error() string {
	return fmt.Sprintf("unknown experiment %q; valid IDs: %s",
		e.ID, strings.Join(IDs(), ", "))
}

// MustLookup resolves an ID or returns an *UnknownIDError naming every
// valid choice.
func MustLookup(id string) (Runner, error) {
	r, ok := Lookup(id)
	if !ok {
		return nil, &UnknownIDError{ID: id}
	}
	return r, nil
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

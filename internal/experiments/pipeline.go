package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/instrument"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E4PipelineThroughput is the headline end-to-end result: the full
// profile → instrument → interleave pipeline recovers stall cycles on
// every memory-bound workload with zero manual annotation, matching or
// beating CoroBase-style hand annotation (§3.2).
func E4PipelineThroughput(mach Machine) (*Result, error) {
	res := newResult("E4", "end-to-end pipeline: throughput recovery without manual annotation (§3.2)")
	tbl := stats.NewTable("8-way interleaving, same total work",
		"workload", "variant", "cycles", "efficiency", "speedup", "yields")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	specs := []workloads.Spec{
		workloads.PointerChase{Nodes: 8192, Hops: 1500, Instances: n},
		workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 300, MatchFraction: 0.7, Instances: n},
		workloads.BST{Keys: 8192, Lookups: 250, Instances: n},
		workloads.BTree{Keys: 8192, Lookups: 250, Instances: n},
		workloads.SkipList{Keys: 8192, Lookups: 200, Instances: n},
		workloads.Scatter{Slots: 8192, Updates: 2500, Instances: n},
		workloads.BinarySearch{N: 65536, Lookups: 250, Instances: n},
		workloads.ArrayScan{N: 65536, Instances: n},
	}
	for _, spec := range specs {
		h, err := NewHarness(mach, spec)
		if err != nil {
			return nil, err
		}
		name := spec.Name()

		run := func(img *Image) (exec.Stats, error) {
			ts, err := h.Tasks(img, name, coro.Primary, n)
			if err != nil {
				return exec.Stats{}, err
			}
			st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
			if err != nil {
				return exec.Stats{}, err
			}
			return st, ts.Validate()
		}

		base := h.Baseline()
		baseStats, err := run(base)
		if err != nil {
			return nil, fmt.Errorf("E4 %s baseline: %w", name, err)
		}
		tbl.Row(name, "baseline", baseStats.Cycles, baseStats.Efficiency(), "1.00x", 0)

		// Manual (CoroBase-style): every load annotated, full saves.
		manualProg, oldToNew, err := baselines.AnnotateAllLoads(h.Sc.Prog)
		if err != nil {
			return nil, err
		}
		manualImg := h.FromRewrite(manualProg, oldToNew)
		manualStats, err := run(manualImg)
		if err != nil {
			return nil, fmt.Errorf("E4 %s manual: %w", name, err)
		}
		my, _ := yieldCount(manualProg)
		tbl.Row(name, "manual-all-loads", manualStats.Cycles, manualStats.Efficiency(),
			stats.Ratio(float64(baseStats.Cycles), float64(manualStats.Cycles)), my)

		// Profile-guided pipeline.
		prof, _, err := h.Profile(name)
		if err != nil {
			return nil, err
		}
		img, err := h.Instrument(prof, primaryOnlyOpts(mach))
		if err != nil {
			return nil, err
		}
		pgStats, err := run(img)
		if err != nil {
			return nil, fmt.Errorf("E4 %s pgo: %w", name, err)
		}
		py, _ := yieldCount(img.Prog)
		tbl.Row(name, "profile-guided", pgStats.Cycles, pgStats.Efficiency(),
			stats.Ratio(float64(baseStats.Cycles), float64(pgStats.Cycles)), py)

		res.Metrics[name+"_base_eff"] = baseStats.Efficiency()
		res.Metrics[name+"_manual_eff"] = manualStats.Efficiency()
		res.Metrics[name+"_pgo_eff"] = pgStats.Efficiency()
		res.Metrics[name+"_pgo_speedup"] = float64(baseStats.Cycles) / float64(pgStats.Cycles)
		res.Metrics[name+"_pgo_yields"] = float64(py)
		res.Metrics[name+"_manual_yields"] = float64(my)
	}
	res.Notes = append(res.Notes,
		"profile-guided achieves manual-level throughput with no developer-placed yields (§2 critique)",
		"array scan: the policy leaves cache-friendly code essentially untouched")
	return res, nil
}

// E5ThresholdSweep reproduces the §3.2 instrumentation trade-off:
// aggressive yields waste switches on hits, conservative yields leave
// stalls exposed. The mixed chase puts one missing load next to two
// cache-hot loads, so the threshold must discriminate per site.
func E5ThresholdSweep(mach Machine) (*Result, error) {
	res := newResult("E5", "yield-insertion threshold trade-off (§3.2)")
	tbl := stats.NewTable("threshold policy θ on the mixed chase (8-way)",
		"theta", "sites", "cycles", "efficiency", "switches")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	h, err := NewHarness(mach, workloads.MixedChase{ColdNodes: 8192, HotNodes: 16, Hops: 1500, Instances: n})
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("mixedchase")
	if err != nil {
		return nil, err
	}
	best, bestTheta := -1.0, 0.0
	for _, theta := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.01} {
		opts := primaryOnlyOpts(mach)
		opts.Primary.Policy = instrument.ThresholdPolicy{MinMissRate: theta}
		img, err := h.Instrument(prof, opts)
		if err != nil {
			return nil, err
		}
		ts, err := h.Tasks(img, "mixedchase", coro.Primary, n)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		eff := st.Efficiency()
		tbl.Row(fmt.Sprintf("%.2f", theta), len(img.Pipe.Primary.Sites), st.Cycles, eff, st.Switches)
		res.Metrics[fmt.Sprintf("theta_%.2f", theta)] = eff
		if eff > best {
			best, bestTheta = eff, theta
		}
	}
	res.Metrics["best_theta"] = bestTheta
	res.Notes = append(res.Notes,
		"θ=0 instruments every sampled load (aggressive); θ>1 instruments nothing (baseline)",
		fmt.Sprintf("best efficiency at θ=%.2f — the quantitative model's sweet spot", bestTheta))
	return res, nil
}

// E6Ablations isolates the two §3.2 optimizations: liveness-derived save
// masks (cheaper switches) and yield coalescing across independent
// adjacent loads (fewer switches). The multi-stream chase has three
// independent adjacent misses per iteration — the coalescing target.
func E6Ablations(mach Machine) (*Result, error) {
	res := newResult("E6", "optimization ablations: live-mask saves and yield coalescing (§3.2)")
	tbl := stats.NewTable("multi-stream chase (8-way)",
		"variant", "static_yields", "switches", "switch_cycles", "cycles", "efficiency")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	h, err := NewHarness(mach, workloads.MultiChase{Nodes: 4096, Hops: 800, Instances: n})
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("multichase")
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name     string
		coalesce bool
		liveMask bool
	}{
		{"both optimizations", true, true},
		{"no coalescing", false, true},
		{"no live masks", true, false},
		{"neither", false, false},
	}
	for _, v := range variants {
		opts := primaryOnlyOpts(mach)
		opts.Primary.Coalesce = v.coalesce
		opts.Primary.LiveMasks = v.liveMask
		img, err := h.Instrument(prof, opts)
		if err != nil {
			return nil, err
		}
		ts, err := h.Tasks(img, "multichase", coro.Primary, n)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		y, _ := yieldCount(img.Prog)
		tbl.Row(v.name, y, st.Switches, st.Switch, st.Cycles, st.Efficiency())
		key := fmt.Sprintf("c%v_l%v", v.coalesce, v.liveMask)
		res.Metrics[key+"_eff"] = st.Efficiency()
		res.Metrics[key+"_switches"] = float64(st.Switches)
		res.Metrics[key+"_switch_cycles"] = float64(st.Switch)
		res.Metrics[key+"_yields"] = float64(y)
	}
	res.Notes = append(res.Notes,
		"coalescing: one yield covers three prefetched independent misses (3x fewer switches)",
		"live masks: only live registers cross the switch; dead registers are poisoned, not saved")
	return res, nil
}

package experiments

import (
	"fmt"
	"sort"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E14SchedulerIntegration reproduces the §4.2 runtime-scheduling
// discussion: an event-agnostic coroutine scheduler versus the two
// integration approaches the paper sketches — a side-car that borrows the
// scheduler's ready queue during miss shadows, and an event-aware
// scheduler that additionally co-schedules pending requests into each
// other's shadows.
func E14SchedulerIntegration(mach Machine) (*Result, error) {
	res := newResult("E14", "scheduler integration: agnostic vs sidecar vs event-aware (§4.2)")
	tbl := stats.NewTable("6 hash-join requests + 4 batch-compute tasks",
		"policy", "mean_latency", "p95_latency", "drain_cycles", "efficiency")
	res.Tables = append(res.Tables, tbl)

	const nReq, nBatch = 6, 4
	h, err := NewHarness(mach,
		workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 150, MatchFraction: 0.7, Instances: nReq},
		workloads.Compute{Iters: 60000, Instances: nBatch},
	)
	if err != nil {
		return nil, err
	}
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	img, err := h.Instrument(prof, pipelineOptsFor(mach))
	if err != nil {
		return nil, err
	}

	for _, policy := range []sched.Policy{sched.Agnostic, sched.Sidecar, sched.EventAware} {
		reqs, err := h.Tasks(img, "hashjoin", coro.Primary, nReq)
		if err != nil {
			return nil, err
		}
		batch, err := h.Tasks(img, "compute", coro.Scavenger, nBatch)
		if err != nil {
			return nil, err
		}
		s := sched.New(h.NewExecutor(img, exec.Config{}), policy)
		for _, t := range reqs.Tasks {
			s.Submit(t, sched.Request)
		}
		for _, t := range batch.Tasks {
			s.Submit(t, sched.Batch)
		}
		st, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("E14 %v: %w", policy, err)
		}
		if err := reqs.Validate(); err != nil {
			return nil, err
		}
		if err := batch.Validate(); err != nil {
			return nil, err
		}
		lat := make([]float64, len(st.RequestLatencies))
		for i, l := range st.RequestLatencies {
			lat[i] = float64(l)
		}
		sort.Float64s(lat)
		p95 := stats.Percentile(lat, 95)
		tbl.Row(policy.String(), st.MeanRequestLatency(), p95, st.Cycles, st.Efficiency())
		key := policy.String()
		res.Metrics[key+"_mean"] = st.MeanRequestLatency()
		res.Metrics[key+"_p95"] = p95
		res.Metrics[key+"_eff"] = st.Efficiency()
	}
	res.Notes = append(res.Notes,
		"agnostic: requests round-robin with batch work at every yield (no event knowledge)",
		"sidecar: FIFO requests; the executor borrows the scheduler's ready batch tasks per miss (§4.2 approach 1)",
		"event-aware: pending requests are co-scheduled into each other's miss shadows (§4.2 approach 2)")
	return res, nil
}

// E15ProfilePortability probes the PGO deployment story behind §3.2: the
// profile is collected on one production run and applied to later builds
// serving different data. Instrumentation decisions must survive both a
// different data seed and a moderate workload shift (probe match fraction
// 0.7 → 0.4).
func E15ProfilePortability(mach Machine) (*Result, error) {
	res := newResult("E15", "profile portability: stale and shifted profiles (§3.2 deployment)")
	tbl := stats.NewTable("hash join, 8-way symmetric",
		"profile_source", "cycles", "efficiency", "vs_fresh")
	res.Tables = append(res.Tables, tbl)

	const n = 8
	target := workloads.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 300, MatchFraction: 0.4, Instances: n}

	// The deployment target: different seed and match fraction than the
	// profiled run.
	machB := mach
	machB.Seed = mach.Seed + 777
	hTarget, err := NewHarness(machB, target)
	if err != nil {
		return nil, err
	}

	run := func(img *Image) (exec.Stats, error) {
		ts, err := hTarget.Tasks(img, "hashjoin", coro.Primary, n)
		if err != nil {
			return exec.Stats{}, err
		}
		st, err := hTarget.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return exec.Stats{}, err
		}
		return st, ts.Validate()
	}

	base, err := run(hTarget.Baseline())
	if err != nil {
		return nil, err
	}
	tbl.Row("none (baseline)", base.Cycles, base.Efficiency(), "-")
	res.Metrics["base_eff"] = base.Efficiency()

	// Fresh profile: collected on the target itself.
	freshProf, _, err := hTarget.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	freshImg, err := hTarget.Instrument(freshProf, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	fresh, err := run(freshImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("fresh (same run)", fresh.Cycles, fresh.Efficiency(), "1.00x")
	res.Metrics["fresh_eff"] = fresh.Efficiency()

	// Stale profile: collected on last week's production shard — other
	// data (seed) and a different probe mix (match fraction 0.7).
	profSpec := target
	profSpec.MatchFraction = 0.7
	hProf, err := NewHarness(mach, profSpec)
	if err != nil {
		return nil, err
	}
	staleProf, _, err := hProf.Profile("hashjoin")
	if err != nil {
		return nil, err
	}
	// The binary is structurally identical, so the profile's PCs apply.
	staleImg, err := hTarget.Instrument(staleProf, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	stale, err := run(staleImg)
	if err != nil {
		return nil, err
	}
	tbl.Row("stale+shifted", stale.Cycles, stale.Efficiency(),
		stats.Ratio(float64(fresh.Cycles), float64(stale.Cycles)))
	res.Metrics["stale_eff"] = stale.Efficiency()
	res.Metrics["stale_vs_fresh"] = float64(fresh.Cycles) / float64(stale.Cycles)

	res.Notes = append(res.Notes,
		"the stale profile saw different data and a 0.7 match fraction; the target serves 0.4",
		"miss behaviour is a property of the code+structure, so PGO decisions transfer — the production deployment premise")
	return res, nil
}

package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E20SwitchCostSensitivity tests the paper's §4.1 conjecture head-on:
// "switching overhead is not the most critical issue ... the sub-10 ns
// overhead of coroutine switching is acceptable" for events of 10s–100s
// of ns. We sweep the full-context switch cost across two orders of
// magnitude and measure how much of the mechanism's benefit survives.
func E20SwitchCostSensitivity(mach Machine) (*Result, error) {
	res := newResult("E20", "switch-cost sensitivity: is sub-10 ns overhead the bottleneck? (§4.1)")
	tbl := stats.NewTable("instrumented pointer chase, 16-way symmetric",
		"switch_cost_ns", "model", "cycles", "efficiency", "vs_baseline")
	res.Tables = append(res.Tables, tbl)

	const n = 16
	h, err := NewHarness(mach, workloads.PointerChase{Nodes: 8192, Hops: 1200, Instances: n})
	if err != nil {
		return nil, err
	}
	bts, err := h.Tasks(h.Baseline(), "chase", coro.Primary, n)
	if err != nil {
		return nil, err
	}
	baseStats, err := h.NewExecutor(h.Baseline(), exec.Config{}).RunSymmetric(bts.Tasks)
	if err != nil {
		return nil, err
	}
	if err := bts.Validate(); err != nil {
		return nil, err
	}

	prof, _, err := h.Profile("chase")
	if err != nil {
		return nil, err
	}

	models := []struct {
		label string
		model coro.CostModel
	}{
		{"compiler-optimized [16,46]", coro.CostModel{Base: 4, PerReg: 0}},
		{"reference (Boost-class [6])", coro.DefaultCostModel()},
		{"2x reference", coro.CostModel{Base: 16, PerReg: 2}},
		{"4x reference", coro.CostModel{Base: 32, PerReg: 4}},
		{"green threads (~100 ns)", coro.CostModel{Base: 300, PerReg: 0}},
		{"kernel-thread class", coro.CostModel{Base: 1500, PerReg: 0}},
	}
	for _, mdl := range models {
		// The gain/cost model must see the same switch price the runtime
		// will charge, so instrumentation decisions adapt too.
		m := mach
		m.Switch = mdl.model
		opts := primaryOnlyOpts(m)
		img, err := h.Instrument(prof, opts)
		if err != nil {
			return nil, err
		}
		ts, err := h.Tasks(img, "chase", coro.Primary, n)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{Switch: mdl.model}).RunSymmetric(ts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		ns := NS(float64(mdl.model.FullCost()))
		tbl.Row(fmt.Sprintf("%.1f", ns), mdl.label, st.Cycles, st.Efficiency(),
			stats.Ratio(float64(baseStats.Cycles), float64(st.Cycles)))
		res.Metrics[fmt.Sprintf("cost%d_eff", mdl.model.FullCost())] = st.Efficiency()
		res.Metrics[fmt.Sprintf("cost%d_speedup", mdl.model.FullCost())] =
			float64(baseStats.Cycles) / float64(st.Cycles)
	}
	res.Metrics["base_eff"] = baseStats.Efficiency()
	res.Notes = append(res.Notes,
		"the gain/cost model re-decides instrumentation at every price point (a costlier switch raises the bar)",
		"on this miss-dense chase cheaper switches do help (compiler support is worth having) — but the",
		"sub-10 ns reference already delivers ~11x of the ~15x ceiling, supporting §4.1's priority on visibility")
	return res, nil
}

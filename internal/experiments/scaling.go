package experiments

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/exec"
	"repro/internal/smt"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E3SMTvsCoro reproduces the §1 argument that SMT's 2–8 hardware contexts
// are insufficient to hide memory latency [28, 31, 53], while software
// coroutines scale concurrency to whatever the latency/compute ratio
// demands.
func E3SMTvsCoro(mach Machine) (*Result, error) {
	res := newResult("E3", "SMT contexts vs software coroutines on DRAM-bound pointer chasing (§1)")
	tbl := stats.NewTable("CPU efficiency by concurrency degree",
		"mechanism", "degree", "efficiency", "ipc")
	res.Tables = append(res.Tables, tbl)

	const maxN = 32
	spec := workloads.PointerChase{Nodes: 8192, Hops: 1200, Instances: maxN}
	h, err := NewHarness(mach, spec)
	if err != nil {
		return nil, err
	}
	base := h.Baseline()

	for _, k := range []int{1, 2, 4, 8} {
		ts, err := h.Tasks(base, "chase", coro.Primary, k)
		if err != nil {
			return nil, err
		}
		core := h.NewExecutor(base, exec.Config{}).Core
		var ctxs []*coro.Context
		for _, t := range ts.Tasks {
			ctxs = append(ctxs, t.Ctx)
		}
		st, err := smt.Run(core, smt.Config{Contexts: k, Quantum: 4, MaxSteps: 1 << 28}, ctxs)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		tbl.Row("SMT", k, st.Efficiency(), float64(st.Retired)/float64(st.Cycles))
		res.Metrics[fmt.Sprintf("smt%d", k)] = st.Efficiency()
	}

	prof, _, err := h.Profile("chase")
	if err != nil {
		return nil, err
	}
	img, err := h.Instrument(prof, primaryOnlyOpts(mach))
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ts, err := h.Tasks(img, "chase", coro.Primary, n)
		if err != nil {
			return nil, err
		}
		st, err := h.NewExecutor(img, exec.Config{}).RunSymmetric(ts.Tasks)
		if err != nil {
			return nil, err
		}
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		tbl.Row("coroutines", n, st.Efficiency(), st.IPC())
		res.Metrics[fmt.Sprintf("coro%d", n)] = st.Efficiency()
	}
	res.Notes = append(res.Notes,
		"hardware caps SMT at 2–8 contexts; the chase needs latency/compute ≈ 30 concurrent streams",
		"coroutine counts beyond the hardware limit keep improving efficiency — the paper's flexibility argument")
	return res, nil
}

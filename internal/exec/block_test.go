package exec

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/trace"
)

// countingObserver is a minimal PEBS-shaped observer: attaching it must
// force the executor onto the per-instruction fallback without changing
// any simulated outcome.
type countingObserver struct {
	retires  uint64
	branches uint64
}

func (o *countingObserver) OnRetire(cpu.RetireEvent) { o.retires++ }
func (o *countingObserver) OnBranch(cpu.BranchEvent) { o.branches++ }

// blockDualModeRun executes the standard dual-mode scenario (chase primary +
// two compute scavengers) and returns its stats and scheduling trace.
// setup tweaks the core after executor construction (clear the plan,
// attach observers) and before the run.
func blockDualModeRun(t *testing.T, setup func(*cpu.Core)) (Stats, []trace.Event) {
	t.Helper()
	core, m := newMachine(t, testImage, 8<<20)
	head := buildChain(m, 512, 99)
	ring := trace.NewRing(1 << 14)
	cfg := DefaultConfig()
	cfg.Tracer = ring
	e := New(core, cfg)
	setup(core)
	primary := chaseTask(core, m, 0, 400, head)
	scavs := []*Task{scavTask(core, m, 1, 2000), scavTask(core, m, 2, 2000)}
	st, err := e.RunDualMode(primary, scavs)
	if err != nil {
		t.Fatal(err)
	}
	return st, ring.Events()
}

// TestObserverFallbackMatchesFastPath pins the profiling contract at the
// executor level: a dual-mode run with an attached observer (which
// forces per-instruction StepInto, the pre-block engine) must produce
// Stats and a scheduling trace identical to both the block fast path and
// the plan-free slow path — and the observer must see every retirement.
func TestObserverFallbackMatchesFastPath(t *testing.T) {
	fastStats, fastTrace := blockDualModeRun(t, func(c *cpu.Core) {})

	slowStats, slowTrace := blockDualModeRun(t, func(c *cpu.Core) {
		c.ClearPlan()
	})

	obs := &countingObserver{}
	obsStats, obsTrace := blockDualModeRun(t, func(c *cpu.Core) {
		c.Observe(obs)
	})

	if !reflect.DeepEqual(fastStats, slowStats) {
		t.Fatalf("fast vs slow stats diverge:\n fast: %+v\n slow: %+v", fastStats, slowStats)
	}
	if !reflect.DeepEqual(fastStats, obsStats) {
		t.Fatalf("fast vs observer stats diverge:\n fast: %+v\n obs:  %+v", fastStats, obsStats)
	}
	if !reflect.DeepEqual(fastTrace, slowTrace) {
		t.Fatalf("fast vs slow traces diverge: %d vs %d events", len(fastTrace), len(slowTrace))
	}
	if !reflect.DeepEqual(fastTrace, obsTrace) {
		t.Fatalf("fast vs observer traces diverge: %d vs %d events", len(fastTrace), len(obsTrace))
	}
	if obs.retires != obsStats.Retired {
		t.Fatalf("observer saw %d retires, stats retired %d", obs.retires, obsStats.Retired)
	}
	if obs.branches == 0 {
		t.Fatal("observer saw no branch events in a looping workload")
	}
}

// TestExecutorsAgreeWithPlanCleared drives every executor discipline
// with the plan cleared mid-setup and compares against the fast path:
// the block engine must be a pure optimization at every call site.
func TestExecutorsAgreeWithPlanCleared(t *testing.T) {
	type result struct {
		st  Stats
		now uint64
	}
	run := func(fast bool, mode string) result {
		core, m := newMachine(t, testImage, 8<<20)
		head := buildChain(m, 512, 7)
		e := New(core, DefaultConfig())
		if !fast {
			core.ClearPlan()
		}
		var st Stats
		var err error
		switch mode {
		case "solo":
			st, err = e.RunSolo(chaseTask(core, m, 0, 300, head))
		case "symmetric":
			st, err = e.RunSymmetric([]*Task{
				chaseTask(core, m, 0, 300, head),
				scavTask(core, m, 1, 1500),
			})
		case "windowed":
			st, err = e.RunWindowed([]*Task{
				chaseTask(core, m, 0, 200, head),
				scavTask(core, m, 1, 800),
				scavTask(core, m, 2, 800),
			}, 2)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		return result{st, core.Now}
	}
	for _, mode := range []string{"solo", "symmetric", "windowed"} {
		fast := run(true, mode)
		slow := run(false, mode)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("%s: fast vs slow diverge:\n fast: %+v\n slow: %+v", mode, fast, slow)
		}
	}
}

package exec

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// RunSolo executes a single task to completion. Yields retire but never
// switch (there is nobody to switch to) — this measures both the baseline
// and the pure overhead of instrumentation on an otherwise idle runtime.
//
//shsim:cycle-entry
func (e *Executor) RunSolo(t *Task) (Stats, error) {
	start := e.Core.Now
	var steps uint64
	var r cpu.BlockResult
	for !t.Ctx.Halted {
		if steps >= e.Cfg.MaxSteps {
			return Stats{}, ErrFuelExhausted
		}
		if err := e.Core.RunBlock(t.Ctx, false, e.Cfg.MaxSteps-steps, 0, &r); err != nil {
			return Stats{}, err
		}
		steps += r.Steps
	}
	st := Stats{Cycles: e.Core.Now - start}
	collect(&st, t)
	return st, nil
}

// RunSymmetric interleaves equal-priority tasks: every primary-phase yield
// rotates to the next runnable task (conditional yields stay dormant —
// every task runs in primary mode). This is the batch/throughput discipline
// of CoroBase-style systems.
//
//shsim:cycle-entry
func (e *Executor) RunSymmetric(tasks []*Task) (Stats, error) {
	if len(tasks) == 0 {
		return Stats{}, fmt.Errorf("exec: no tasks")
	}
	for _, t := range tasks {
		t.Mode = coro.Primary
		t.Ctx.Mode = coro.Primary
	}
	start := e.Core.Now
	cur := 0
	running := len(tasks)
	var steps uint64
	var r cpu.BlockResult
	latencies := make([]uint64, len(tasks))
	e.resume(tasks[cur])
	for running > 0 {
		if steps >= e.Cfg.MaxSteps {
			return Stats{}, ErrFuelExhausted
		}
		t := tasks[cur]
		if err := e.Core.RunBlock(t.Ctx, false, e.Cfg.MaxSteps-steps, 0, &r); err != nil {
			return Stats{}, err
		}
		steps += r.Steps
		switch {
		case r.Halted:
			latencies[cur] = e.Core.Now - start
			running--
			if running == 0 {
				break
			}
			nxt := e.nextRunnable(tasks, cur)
			cur = nxt
			e.resume(tasks[cur])
		case r.Yield:
			nxt := e.nextRunnable(tasks, cur)
			if nxt != cur {
				e.switchFrom(t, r.LiveMask)
				cur = nxt
				e.resume(tasks[cur])
			}
		}
	}
	st := Stats{Cycles: e.Core.Now - start, Latencies: latencies}
	collect(&st, tasks...)
	return st, nil
}

// nextRunnable returns the next non-halted task index after cur, or cur if
// none other is runnable.
func (e *Executor) nextRunnable(tasks []*Task, cur int) int {
	for off := 1; off <= len(tasks); off++ {
		i := (cur + off) % len(tasks)
		if !tasks[i].Ctx.Halted {
			return i
		}
	}
	return cur
}

// RunDualMode executes one latency-sensitive primary with a pool of
// scavengers (§3.3, asymmetric concurrency).
//
// Discipline:
//   - The primary runs until a primary-phase YIELD (inserted before a
//     likely miss, after its prefetch). The executor sizes the hide window
//     from the prefetch's residual fill time and switches to a scavenger.
//   - A scavenger hands the CPU back at the first conditional yield once
//     the window has elapsed. If it hits a primary-phase yield of its own
//     (its own likely miss) it chains to another scavenger instead,
//     scaling concurrency on demand; with no peer available it simply
//     keeps running (and absorbs its own stall).
//   - Scavenger halts rotate to the next scavenger, or return to the
//     primary when the pool is exhausted.
//
// The run ends when the primary halts (then optionally drains scavengers).
//
//shsim:cycle-entry
func (e *Executor) RunDualMode(primary *Task, scavengers []*Task) (Stats, error) {
	primary.Mode = coro.Primary
	primary.Ctx.Mode = coro.Primary
	for _, s := range scavengers {
		s.Mode = coro.Scavenger
		s.Ctx.Mode = coro.Scavenger
	}
	start := e.Core.Now
	st := Stats{}

	cur := primary
	scavIdx := 0
	var episodeStart, episodeTarget uint64
	inEpisode := false

	nextScavenger := func(exclude *Task) *Task {
		for off := 0; off < len(scavengers); off++ {
			s := scavengers[(scavIdx+off)%len(scavengers)]
			if s != exclude && !s.Ctx.Halted {
				scavIdx = (scavIdx + off + 1) % len(scavengers)
				return s
			}
		}
		return nil
	}

	endEpisode := func() {
		if inEpisode {
			inEpisode = false
			away := e.Core.Now - episodeStart
			if away > episodeTarget {
				st.PrimaryDelay += away - episodeTarget
			}
			if m := e.Cfg.Metrics; m != nil {
				m.Exec.NoteEpisode(away, episodeTarget)
			}
			e.emit(trace.EpisodeEnd, primary, away)
		}
	}

	backToPrimary := func() {
		endEpisode()
		cur = primary
		e.resume(primary)
	}

	var steps uint64
	var r cpu.BlockResult
	for {
		if steps >= e.Cfg.MaxSteps {
			return Stats{}, ErrFuelExhausted
		}
		if err := e.Core.RunBlock(cur.Ctx, false, e.Cfg.MaxSteps-steps, 0, &r); err != nil {
			return Stats{}, err
		}
		steps += r.Steps

		if r.Halted {
			e.emit(trace.Halt, cur, 0)
			if cur == primary {
				st.PrimaryLatency = e.Core.Now - start
				break
			}
			if next := nextScavenger(cur); next != nil {
				cur = next
				e.resume(cur)
				if inEpisode {
					st.ChainSwitches++
					if m := e.Cfg.Metrics; m != nil {
						m.Exec.Chains++
					}
				}
				continue
			}
			backToPrimary()
			continue
		}

		if r.Yield { // primary-phase yield: a likely miss was prefetched
			if cur == primary {
				next := nextScavenger(nil)
				if next == nil {
					continue // nobody to hide behind; eat the miss
				}
				target := e.Cfg.HideTarget
				var residual uint64
				if cur.Ctx.LastPrefetchValid {
					residual = e.Core.Hier.Residual(cur.Ctx.LastPrefetchAddr, e.Core.Now)
				}
				if cur.Ctx.AccelPending && cur.Ctx.AccelDone > e.Core.Now {
					if r := cur.Ctx.AccelDone - e.Core.Now; r > residual {
						residual = r
					}
				}
				if e.Cfg.HWAssist && (cur.Ctx.LastPrefetchValid || cur.Ctx.AccelPending) {
					// §4.1 probe: skip the switch when every pending event
					// has already completed (line cached, accelerator done).
					e.Core.AdvanceIdle(e.Cfg.HWAssistProbeCost)
					satisfied := residual == 0
					if satisfied && cur.Ctx.LastPrefetchValid &&
						!e.Core.Hier.Contains(cur.Ctx.LastPrefetchAddr, e.Core.Now, mem.LevelL2) {
						satisfied = false
					}
					if satisfied {
						st.HWSkips++
						if m := e.Cfg.Metrics; m != nil {
							m.Exec.HWSkips++
						}
						e.emit(trace.Skip, cur, 0)
						continue
					}
				}
				if residual > 0 {
					target = residual
				}
				st.Episodes++
				inEpisode = true
				episodeStart = e.Core.Now
				episodeTarget = target
				e.emit(trace.EpisodeStart, primary, target)
				e.switchFrom(primary, r.LiveMask)
				cur = next
				e.resume(cur)
			} else {
				// A scavenger hit its own likely miss: chain onward.
				if next := nextScavenger(cur); next != nil {
					e.switchFrom(cur, r.LiveMask)
					e.emit(trace.Chain, cur, 0)
					cur = next
					e.resume(cur)
					if inEpisode {
						st.ChainSwitches++
						if m := e.Cfg.Metrics; m != nil {
							m.Exec.Chains++
						}
					}
				}
				// else: no peer; keep running and absorb the stall.
			}
			continue
		}

		if r.CondYield && cur != primary {
			// Scavenger-phase yield: hand back once the window elapsed.
			if inEpisode && e.Core.Now-episodeStart >= episodeTarget {
				e.switchFrom(cur, r.LiveMask)
				backToPrimary()
			}
			continue
		}
	}

	if e.Cfg.KeepScavengersAfterPrimary {
		// Drain remaining scavengers round-robin (pure throughput mode).
		rem := make([]*Task, 0, len(scavengers))
		for _, s := range scavengers {
			if !s.Ctx.Halted {
				rem = append(rem, s)
			}
		}
		if len(rem) > 0 {
			if _, err := e.RunSymmetric(rem); err != nil {
				return Stats{}, err
			}
		}
	}

	st.Cycles = e.Core.Now - start
	collect(&st, append([]*Task{primary}, scavengers...)...)
	return st, nil
}

// RunWindowed processes a stream of tasks through a bounded window of W
// concurrently interleaved coroutines: when one completes, the next task
// from the stream takes its slot. This is the execution model of
// coroutine-oriented database engines (a batch of requests in flight,
// replenished as they retire) and the embodiment of the paper's intro
// point that software mechanisms support on-demand scaling of
// concurrency: W is a runtime knob, not a hardware property.
//
//shsim:cycle-entry
func (e *Executor) RunWindowed(stream []*Task, width int) (Stats, error) {
	if len(stream) == 0 {
		return Stats{}, fmt.Errorf("exec: no tasks")
	}
	if width < 1 {
		return Stats{}, fmt.Errorf("exec: window width must be ≥ 1")
	}
	for _, t := range stream {
		t.Mode = coro.Primary
		t.Ctx.Mode = coro.Primary
	}
	start := e.Core.Now
	window := make([]*Task, 0, width)
	next := 0
	for next < len(stream) && len(window) < width {
		window = append(window, stream[next])
		next++
	}
	cur := 0
	var steps uint64
	var r cpu.BlockResult
	e.resume(window[cur])
	for len(window) > 0 {
		if steps >= e.Cfg.MaxSteps {
			return Stats{}, ErrFuelExhausted
		}
		t := window[cur]
		if err := e.Core.RunBlock(t.Ctx, false, e.Cfg.MaxSteps-steps, 0, &r); err != nil {
			return Stats{}, err
		}
		steps += r.Steps
		switch {
		case r.Halted:
			e.emit(trace.Halt, t, 0)
			if next < len(stream) {
				// Replenish the slot from the stream.
				window[cur] = stream[next]
				next++
				e.resume(window[cur])
			} else {
				window = append(window[:cur], window[cur+1:]...)
				if len(window) == 0 {
					break
				}
				cur %= len(window)
				e.resume(window[cur])
			}
		case r.Yield:
			if len(window) > 1 {
				e.switchFrom(t, r.LiveMask)
				cur = (cur + 1) % len(window)
				e.resume(window[cur])
			}
		}
	}
	st := Stats{Cycles: e.Core.Now - start}
	collect(&st, stream...)
	return st, nil
}

package exec

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// dualModeRun builds the standard chase-plus-scavengers machine and runs
// it in dual mode with the given config, returning the run stats and the
// executor (for post-run metric harvesting).
func dualModeRun(t *testing.T, cfg Config) (Stats, *Executor) {
	t.Helper()
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 256, 7)
	p := chaseTask(core, m, 0, 400, head)
	scavs := []*Task{scavTask(core, m, 1, 4000), scavTask(core, m, 2, 4000)}
	e := New(core, cfg)
	st, err := e.RunDualMode(p, scavs)
	if err != nil {
		t.Fatal(err)
	}
	return st, e
}

// TestMetricsReconcileWithStats pins the tentpole's reconciliation
// invariant: the registry counters bumped inline at episode boundaries
// must agree exactly with the Stats the run returns, and the harvested
// Mem/CPU sections must mirror the always-on core counters.
func TestMetricsReconcileWithStats(t *testing.T) {
	var reg metrics.Registry
	cfg := DefaultConfig()
	cfg.Metrics = &reg
	st, e := dualModeRun(t, cfg)

	if st.Episodes == 0 {
		t.Fatal("run produced no episodes; test is vacuous")
	}
	if reg.Exec.Episodes != st.Episodes {
		t.Errorf("Exec.Episodes = %d, Stats.Episodes = %d", reg.Exec.Episodes, st.Episodes)
	}
	if reg.Exec.EpisodeDur.Count != st.Episodes {
		t.Errorf("EpisodeDur.Count = %d, want %d", reg.Exec.EpisodeDur.Count, st.Episodes)
	}
	if reg.Exec.EpisodeCover.Count != st.Episodes {
		t.Errorf("EpisodeCover.Count = %d, want %d", reg.Exec.EpisodeCover.Count, st.Episodes)
	}
	if reg.Exec.Chains != st.ChainSwitches {
		t.Errorf("Exec.Chains = %d, Stats.ChainSwitches = %d", reg.Exec.Chains, st.ChainSwitches)
	}
	if reg.Exec.HWSkips != st.HWSkips {
		t.Errorf("Exec.HWSkips = %d, Stats.HWSkips = %d", reg.Exec.HWSkips, st.HWSkips)
	}
	// Away time decomposes into hidden + overshoot, and overshoot must
	// reconcile with the primary-delay the run reported (scavenger halts
	// return to the primary through the same endEpisode path).
	if reg.Exec.HiddenCycles+reg.Exec.OvershootCycles != reg.Exec.EpisodeCycles {
		t.Errorf("hidden %d + overshoot %d != episode cycles %d",
			reg.Exec.HiddenCycles, reg.Exec.OvershootCycles, reg.Exec.EpisodeCycles)
	}
	if reg.Exec.EpisodeDur.Sum != reg.Exec.EpisodeCycles {
		t.Errorf("EpisodeDur.Sum = %d, want EpisodeCycles %d",
			reg.Exec.EpisodeDur.Sum, reg.Exec.EpisodeCycles)
	}

	e.CaptureMetrics()
	if reg.CPU.Retired != e.Core.Counters.TotalRetired {
		t.Errorf("CPU.Retired = %d, core retired %d", reg.CPU.Retired, e.Core.Counters.TotalRetired)
	}
	hs := e.Core.Hier.Stats
	if reg.Mem.Prefetches != hs.Prefetches {
		t.Errorf("Mem.Prefetches = %d, hierarchy %d", reg.Mem.Prefetches, hs.Prefetches)
	}
	if reg.Mem.MSHRHighWater != hs.MSHRPeak {
		t.Errorf("Mem.MSHRHighWater = %d, hierarchy peak %d", reg.Mem.MSHRHighWater, hs.MSHRPeak)
	}
}

// TestMetricsHWSkipsReconcile exercises the presence-probe skip counter.
func TestMetricsHWSkipsReconcile(t *testing.T) {
	var reg metrics.Registry
	cfg := DefaultConfig()
	cfg.HWAssist = true
	cfg.Metrics = &reg
	st, _ := dualModeRun(t, cfg)
	if reg.Exec.HWSkips != st.HWSkips {
		t.Errorf("Exec.HWSkips = %d, Stats.HWSkips = %d", reg.Exec.HWSkips, st.HWSkips)
	}
}

// TestMetricsDoNotPerturbRun: attaching a registry is pure observation —
// the simulated run must be cycle-for-cycle identical with and without.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	plain, _ := dualModeRun(t, DefaultConfig())
	var reg metrics.Registry
	cfg := DefaultConfig()
	cfg.Metrics = &reg
	observed, _ := dualModeRun(t, cfg)
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", observed) {
		t.Errorf("metrics perturbed the run:\n  plain:    %+v\n  observed: %+v", plain, observed)
	}
}

// TestMetricsOnPathAllocFree guards the inline-uint64 rule at the
// executor level: the metrics-on bump and harvest paths must not
// allocate (the same contract the nil-tracer fast path has).
func TestMetricsOnPathAllocFree(t *testing.T) {
	var reg metrics.Registry
	cfg := DefaultConfig()
	cfg.Metrics = &reg
	_, e := dualModeRun(t, cfg)
	allocs := testing.AllocsPerRun(100, func() {
		reg.Exec.NoteEpisode(321, 300)
		reg.Exec.Chains++
		reg.Exec.HWSkips++
		e.CaptureMetrics()
	})
	if allocs != 0 {
		t.Errorf("metrics-on bump/harvest path allocates %.1f/op, want 0", allocs)
	}
}

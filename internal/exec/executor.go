// Package exec is the runtime half of the paper's proposal: it interleaves
// instrumented coroutines on the simulated core.
//
// Three execution disciplines are provided:
//
//   - Solo: one coroutine, yields are no-ops (the uninstrumented baseline,
//     and the measure of pure instrumentation overhead).
//   - Symmetric: N equal coroutines round-robin at primary yields — the
//     CoroBase-style throughput mode the paper's §2 describes for
//     databases.
//   - Dual-mode (§3.3, asymmetric concurrency): one latency-sensitive
//     primary plus scavengers. The primary yields only at likely misses;
//     scavengers run in the shadow of those misses and hand the CPU back
//     at a conditional yield once the miss is hidden, chaining to more
//     scavengers on demand when they hit misses of their own.
//
// Context switches are physically enacted: the outgoing coroutine's
// registers are saved per the yield's live mask and every register outside
// the mask is poisoned on resume, so the instrumenter's liveness analysis
// is verified by execution, not trusted.
package exec

import (
	"fmt"

	"repro/internal/bincfg"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config tunes the runtime.
type Config struct {
	// Switch prices context switches.
	Switch coro.CostModel
	// HideTarget is the fallback hide window (cycles) for a primary yield
	// whose prefetch residual is unknown. Defaults to the machine's DRAM
	// latency when zero.
	HideTarget uint64
	// HWAssist enables the §4.1 cache-presence probe: a primary yield is
	// skipped when the just-prefetched line is already in L1/L2.
	HWAssist bool
	// HWAssistProbeCost is the probe's cycle cost.
	HWAssistProbeCost uint64
	// MaxSteps bounds total retired instructions per run (runaway guard).
	MaxSteps uint64
	// DisableSuperblocks keeps the superblock trace tier off: New
	// installs statically derived superblocks (bincfg.SuperblockSpecs)
	// alongside the block plan unless this is set. The tier is
	// observation-equivalent to block dispatch, and attached observers
	// bypass it entirely (profiling sees per-instruction retires either
	// way), so the knob exists for A/B measurement and differential
	// tests, not correctness.
	DisableSuperblocks bool
	// KeepScavengersAfterPrimary lets scavengers run to completion after
	// the primary halts (throughput accounting); when false the run ends
	// at primary halt.
	KeepScavengersAfterPrimary bool
	// Tracer, when non-nil, receives scheduling events (switches, hide
	// episodes, chains, halts) for debugging.
	Tracer trace.Tracer
	// Metrics, when non-nil, receives cycle-domain observability
	// counters: the executor bumps hide-episode histograms inline at
	// episode boundaries, and CaptureMetrics harvests the core- and
	// hierarchy-level counters on demand. The nil check per emission
	// site is the whole disabled-path cost — the same contract as
	// Tracer.
	Metrics *metrics.Registry
}

// DefaultConfig returns the reference runtime configuration.
func DefaultConfig() Config {
	return Config{
		Switch:            coro.DefaultCostModel(),
		HWAssistProbeCost: 2,
		MaxSteps:          200_000_000,
	}
}

// Task wraps a coroutine context under executor control.
type Task struct {
	Ctx  *coro.Context
	Mode coro.Mode

	saved    coro.Saved
	hasSaved bool
}

// NewTask wraps a context.
func NewTask(ctx *coro.Context, mode coro.Mode) *Task {
	ctx.Mode = mode
	return &Task{Ctx: ctx, Mode: mode}
}

// Reset discards any pending switched-out register save, so the task's
// context can be re-armed for fresh work (the open-loop service harness
// re-points a bounded pool of tasks at millions of requests). A task
// that ran to halt has no pending save — the executor only saves at
// yields — so this is defensive bookkeeping, but it makes re-arming
// correct even for a task abandoned mid-run.
func (t *Task) Reset() {
	t.saved = coro.Saved{}
	t.hasSaved = false
}

// Stats summarizes one run.
type Stats struct {
	// Cycles is the wall-clock duration of the run.
	Cycles uint64
	// Busy, Stall and Switch are aggregated over all tasks.
	Busy, Stall, Switch uint64
	// Retired counts instructions retired by all tasks.
	Retired uint64
	// Switches counts context switches enacted.
	Switches uint64
	// PrimaryLatency is the wall time from run start to primary halt
	// (dual-mode runs only).
	PrimaryLatency uint64
	// PrimaryDelay accumulates cycles the primary spent switched out
	// beyond the residual fill time it was hiding (dual-mode runs only):
	// the latency cost of asymmetric concurrency.
	PrimaryDelay uint64
	// Episodes counts primary yield episodes; ChainSwitches counts
	// scavenger-to-scavenger hand-offs inside episodes. ChainSwitches /
	// Episodes is the paper's "scavengers invoked per miss" (§3.3).
	Episodes      uint64
	ChainSwitches uint64
	// HWSkips counts primary yields skipped by the §4.1 presence probe.
	HWSkips uint64
	// Latencies[i] is the wall time from run start to task i's halt
	// (symmetric runs only; zero for tasks still running).
	Latencies []uint64
	// Halted counts tasks that ran to completion.
	Halted int
}

// Efficiency returns busy cycles as a fraction of wall cycles: the
// paper's CPU-efficiency metric.
func (s Stats) Efficiency() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Cycles)
}

// StallFraction returns stall cycles as a fraction of wall cycles.
func (s Stats) StallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Stall) / float64(s.Cycles)
}

// IPC returns retired instructions per wall cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Executor drives tasks on a core.
type Executor struct {
	Core *cpu.Core
	Cfg  Config
}

// New creates an executor. It installs the basic-block fast-path plan on
// the core (unless one is already present), enabling cpu.RunBlock's fused
// straight-line retire for measured runs; profiling runs with observers
// attached automatically fall back to per-instruction dispatch.
func New(core *cpu.Core, cfg Config) *Executor {
	if cfg.HideTarget == 0 {
		cfg.HideTarget = core.Hier.Config().LatDRAM
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultConfig().MaxSteps
	}
	if !core.HasPlan() {
		// The program was validated when the core was built, so plan
		// construction cannot fail; a nil plan would only mean the slow
		// path, never a wrong answer.
		_ = bincfg.InstallFastPath(core)
	}
	if !cfg.DisableSuperblocks && !core.HasSuperblocks() {
		// Static BTFN derivation (no profile at construction time); a
		// failure or empty trace set degrades to block dispatch.
		_ = bincfg.InstallSuperblocks(core, nil)
	}
	return &Executor{Core: core, Cfg: cfg}
}

// ErrFuelExhausted is returned when a run exceeds Config.MaxSteps.
var ErrFuelExhausted = fmt.Errorf("exec: MaxSteps exceeded (likely livelock)")

// switchFrom enacts a context switch away from t at a yield with the given
// live mask: save the live set, charge the cost, and mark for poisoned
// restore.
func (e *Executor) switchFrom(t *Task, mask isa.RegMask) {
	t.saved = t.Ctx.SaveLive(mask)
	t.hasSaved = true
	cost := e.Cfg.Switch.Cost(mask)
	e.Core.ChargeSwitch(t.Ctx, cost)
	e.emit(trace.SwitchOut, t, cost)
}

// resume reinstates a previously switched-out task, poisoning registers
// outside its saved mask.
func (e *Executor) resume(t *Task) {
	if t.hasSaved {
		t.Ctx.RestoreFrom(t.saved)
		t.hasSaved = false
	}
	e.emit(trace.Resume, t, 0)
}

// SwitchOut is the exported form of switchFrom for external scheduling
// disciplines (internal/service's open-loop engines): it enacts a
// context switch away from t at a yield with the given live mask,
// saving the live set, charging the switch cost and marking the task
// for poisoned restore.
func (e *Executor) SwitchOut(t *Task, mask isa.RegMask) { e.switchFrom(t, mask) }

// Resume is the exported form of resume: it reinstates a previously
// switched-out task, poisoning registers outside its saved mask.
func (e *Executor) Resume(t *Task) { e.resume(t) }

// emit sends a trace event if tracing is enabled.
func (e *Executor) emit(kind trace.Kind, t *Task, arg uint64) {
	if e.Cfg.Tracer == nil {
		return
	}
	e.Cfg.Tracer.Emit(trace.Event{
		Kind: kind,
		Now:  e.Core.Now,
		Ctx:  t.Ctx.ID,
		PC:   t.Ctx.PC,
		Arg:  arg,
	})
}

// CaptureMetrics harvests the always-on core and hierarchy counters
// into the configured registry's Mem and CPU sections. The executor's
// own histogram sections are bumped inline during runs and need no
// harvest. A nil-metrics executor makes this a no-op, so callers can
// invoke it unconditionally after a run.
func (e *Executor) CaptureMetrics() {
	m := e.Cfg.Metrics
	if m == nil {
		return
	}
	e.Core.Hier.FillMetrics(&m.Mem)
	e.Core.Counters.FillMetrics(&m.CPU)
}

// collect aggregates task accounting into stats.
func collect(st *Stats, tasks ...*Task) {
	for _, t := range tasks {
		st.Busy += t.Ctx.BusyCycles
		st.Stall += t.Ctx.StallCycles
		st.Switch += t.Ctx.SwitchCycles
		st.Retired += t.Ctx.Retired
		st.Switches += t.Ctx.Switches
		if t.Ctx.Halted {
			st.Halted++
		}
	}
}

package exec

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// runTicker drives a ticker in fixed cycle quanta until completion and
// returns its stats plus the quanta consumed.
func runTicker(t *testing.T, tk *Ticker, quantum uint64) (Stats, int) {
	t.Helper()
	deadline := tk.e.Core.Now
	quanta := 0
	for {
		deadline += quantum
		done, err := tk.Run(deadline)
		if err != nil {
			t.Fatal(err)
		}
		quanta++
		if done {
			return tk.Stats(), quanta
		}
		if quanta > 1<<22 {
			t.Fatal("ticker did not converge")
		}
	}
}

// A ticker sliced at arbitrary cycle deadlines must be byte-identical
// to the unsliced RunSolo: same stats, same final clock, same memory
// hierarchy counters, same architectural result.
func TestTickerSoloEquivalence(t *testing.T) {
	ref := func() (Stats, uint64, mem.Stats, uint64) {
		core, m := newMachine(t, testImage, 1<<20)
		task := chaseTask(core, m, 0, 400, buildChain(m, 256, 7))
		st, err := New(core, DefaultConfig()).RunSolo(task)
		if err != nil {
			t.Fatal(err)
		}
		return st, core.Now, core.Hier.Stats, task.Ctx.Result
	}
	refSt, refNow, refMem, refRes := ref()

	for _, quantum := range []uint64{64, 257, 1000, 1 << 20} {
		core, m := newMachine(t, testImage, 1<<20)
		task := chaseTask(core, m, 0, 400, buildChain(m, 256, 7))
		e := New(core, DefaultConfig())
		tk, err := e.NewTicker([]*Task{task}, true)
		if err != nil {
			t.Fatal(err)
		}
		st, quanta := runTicker(t, tk, quantum)
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("quantum %d: stats diverged\n got %+v\nwant %+v", quantum, st, refSt)
		}
		if core.Now != refNow || task.Ctx.Result != refRes {
			t.Errorf("quantum %d: clock/result diverged", quantum)
		}
		if core.Hier.Stats != refMem {
			t.Errorf("quantum %d: memory stats diverged", quantum)
		}
		if quantum == 64 && quanta < 2 {
			t.Errorf("quantum %d: run finished in %d quanta; slicing untested", quantum, quanta)
		}
	}
}

// Same property for the symmetric discipline, where slicing interacts
// with yields, context switches, and the rotation order.
func TestTickerSymmetricEquivalence(t *testing.T) {
	build := func() (*Executor, []*Task) {
		core, m := newMachine(t, testImage, 4<<20)
		var tasks []*Task
		var heads []uint64
		for i := 0; i < 6; i++ {
			heads = append(heads, buildChain(m, 256, 3))
		}
		for i := 0; i < 6; i++ {
			tasks = append(tasks, chaseTask(core, m, i, 300, heads[i]))
		}
		return New(core, DefaultConfig()), tasks
	}

	eRef, refTasks := build()
	refSt, err := eRef.RunSymmetric(refTasks)
	if err != nil {
		t.Fatal(err)
	}
	refNow := eRef.Core.Now
	refMem := eRef.Core.Hier.Stats

	for _, quantum := range []uint64{64, 509, 4096, 1 << 24} {
		e, tasks := build()
		tk, err := e.NewTicker(tasks, false)
		if err != nil {
			t.Fatal(err)
		}
		st, quanta := runTicker(t, tk, quantum)
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("quantum %d: stats diverged\n got %+v\nwant %+v", quantum, st, refSt)
		}
		if e.Core.Now != refNow {
			t.Errorf("quantum %d: clock diverged: %d vs %d", quantum, e.Core.Now, refNow)
		}
		if e.Core.Hier.Stats != refMem {
			t.Errorf("quantum %d: memory stats diverged", quantum)
		}
		for i := range tasks {
			if tasks[i].Ctx.Result != refTasks[i].Ctx.Result {
				t.Errorf("quantum %d: task %d result diverged", quantum, i)
			}
		}
		if quantum == 64 && quanta < 2 {
			t.Error("slicing untested: one quantum sufficed")
		}
	}
}

func TestTickerValidation(t *testing.T) {
	core, _ := newMachine(t, testImage, 1<<20)
	e := New(core, DefaultConfig())
	if _, err := e.NewTicker(nil, false); err == nil {
		t.Error("empty task set accepted")
	}
	core2, m := newMachine(t, testImage, 1<<20)
	e2 := New(core2, DefaultConfig())
	t0 := chaseTask(core2, m, 0, 1, buildChain(m, 16, 1))
	t1 := chaseTask(core2, m, 1, 1, buildChain(m, 16, 1))
	if _, err := e2.NewTicker([]*Task{t0, t1}, true); err == nil {
		t.Error("solo ticker accepted two tasks")
	}
}

func TestTickerFuelExhaustion(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	cfg := DefaultConfig()
	cfg.MaxSteps = 50
	e := New(core, cfg)
	task := chaseTask(core, m, 0, 1<<20, buildChain(m, 256, 5))
	tk, err := e.NewTicker([]*Task{task}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<16; i++ {
		done, err := tk.Run(core.Now + 100)
		if err == ErrFuelExhausted {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("run completed despite tiny fuel budget")
		}
	}
	t.Fatal("fuel exhaustion never reported")
}

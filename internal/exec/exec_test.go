package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// tinyCaches returns a hierarchy config small enough that modest working
// sets generate L2/L3 misses deterministically.
func tinyCaches() mem.Config {
	c := mem.DefaultConfig()
	c.L1Size = 256 // 4 lines
	c.L1Ways = 1
	c.L2Size = 1 << 10 // 16 lines
	c.L2Ways = 2
	c.L3Size = 4 << 10 // 64 lines
	c.L3Ways = 4
	return c
}

// buildChain writes a pseudo-random circular pointer chain of n nodes
// (64-byte spacing) and returns the base address.
func buildChain(m *mem.Memory, n int, seed int64) uint64 {
	base := m.Alloc(uint64(n)*64, 64)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for i := 0; i < n; i++ {
		from := base + uint64(perm[i])*64
		to := base + uint64(perm[(i+1)%n])*64
		m.MustWrite64(from, to)
	}
	return base + uint64(perm[0])*64
}

// The combined test image: an instrumented pointer chase (primary-style
// yields) and an instrumented compute loop (scavenger-style conditional
// yields). Masks are hand-derived live sets (r1,r3,SP for the chase;
// r4,r5,SP for the compute loop).
const testImage = `
    chase:
        prefetch [r1]
        yield 0x800a        ; r1, r3, sp
        load r1, [r1]
        addi r3, r3, -1
        cmpi r3, 0
        jgt chase
        halt
    scav:
        addi r5, r5, 1
        cyield 0x8030       ; r4, r5, sp
        addi r4, r4, -1
        cmpi r4, 0
        jgt scav
        mov r1, r5
        halt
`

func newMachine(t *testing.T, src string, memBytes uint64) (*cpu.Core, *mem.Memory) {
	t.Helper()
	prog := isa.MustAssemble(src)
	m := mem.NewMemory(memBytes)
	h := mem.MustNewHierarchy(tinyCaches())
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, h)
	return core, m
}

func chaseTask(core *cpu.Core, m *mem.Memory, id int, iters int64, head uint64) *Task {
	ctx := coro.NewContext(id, core.Prog.Symbols["chase"], m.Size()-uint64(id+1)*4096)
	ctx.Regs[1] = head
	ctx.Regs[3] = uint64(iters)
	return NewTask(ctx, coro.Primary)
}

func scavTask(core *cpu.Core, m *mem.Memory, id int, iters int64) *Task {
	ctx := coro.NewContext(id, core.Prog.Symbols["scav"], m.Size()-uint64(id+1)*4096)
	ctx.Regs[4] = uint64(iters)
	return NewTask(ctx, coro.Scavenger)
}

func TestRunSoloChase(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 256, 1)
	task := chaseTask(core, m, 0, 500, head)
	e := New(core, DefaultConfig())
	st, err := e.RunSolo(task)
	if err != nil {
		t.Fatal(err)
	}
	if !task.Ctx.Halted {
		t.Fatal("task did not halt")
	}
	if st.Cycles == 0 || st.Busy == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	// 256 nodes × 64 B = 16 KiB footprint over tiny caches: heavy misses.
	// Note: the prefetch immediately before each load absorbs the miss
	// into busy cycles only if time passes in between — solo, it doesn't,
	// so stall must dominate.
	if st.StallFraction() < 0.5 {
		t.Errorf("solo chase stall fraction = %.2f, want > 0.5", st.StallFraction())
	}
	if st.Switches != 0 {
		t.Error("solo run must not switch")
	}
}

func TestRunSymmetricPreservesResultsAndHidesStall(t *testing.T) {
	// Solo reference.
	coreA, mA := newMachine(t, testImage, 1<<20)
	headA := buildChain(mA, 256, 2)
	soloTask := chaseTask(coreA, mA, 0, 400, headA)
	eA := New(coreA, DefaultConfig())
	soloStats, err := eA.RunSolo(soloTask)
	if err != nil {
		t.Fatal(err)
	}

	// Eight interleaved chases over identical chains in separate regions.
	coreB, mB := newMachine(t, testImage, 4<<20)
	e := New(coreB, DefaultConfig())
	var tasks []*Task
	var heads []uint64
	for i := 0; i < 8; i++ {
		heads = append(heads, buildChain(mB, 256, 2))
	}
	for i := 0; i < 8; i++ {
		tasks = append(tasks, chaseTask(coreB, mB, i, 400, heads[i]))
	}
	symStats, err := e.RunSymmetric(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if !task.Ctx.Halted {
			t.Fatalf("task %d did not halt", i)
		}
		// Every chase starts at an identical chain layout, so all results
		// (final pointer, relative to base) must agree with the solo run.
		if task.Ctx.Result-heads[i] != soloTask.Ctx.Result-headA {
			t.Errorf("task %d result diverged after interleaving", i)
		}
	}
	if symStats.Switches == 0 {
		t.Fatal("no switches happened")
	}
	// The whole point: interleaving hides stalls.
	if symStats.Efficiency() <= soloStats.Efficiency()*1.5 {
		t.Errorf("symmetric efficiency %.3f did not beat solo %.3f",
			symStats.Efficiency(), soloStats.Efficiency())
	}
}

func TestUnsoundMaskBreaksProgram(t *testing.T) {
	// The chase yield mask deliberately omits r3 (the live iteration
	// counter). Poisoning must corrupt the loop — the run must fault or
	// diverge, proving that liveness is enforced rather than cosmetic.
	badImage := `
    chase:
        prefetch [r1]
        yield 0x8002        ; r1, sp only — r3 is live but unsaved!
        load r1, [r1]
        addi r3, r3, -1
        cmpi r3, 0
        jgt chase
        halt
    scav:
        addi r5, r5, 1
        cyield 0x8030
        addi r4, r4, -1
        cmpi r4, 0
        jgt scav
        mov r1, r5
        halt
    `
	// Reference: the sound image retires a known instruction count.
	coreRef, mRef := newMachine(t, testImage, 1<<20)
	refA := chaseTask(coreRef, mRef, 0, 50, buildChain(mRef, 64, 3))
	refB := chaseTask(coreRef, mRef, 1, 50, buildChain(mRef, 64, 3))
	if _, err := New(coreRef, DefaultConfig()).RunSymmetric([]*Task{refA, refB}); err != nil {
		t.Fatal(err)
	}

	core, m := newMachine(t, badImage, 1<<20)
	a := chaseTask(core, m, 0, 50, buildChain(m, 64, 3))
	b := chaseTask(core, m, 1, 50, buildChain(m, 64, 3))
	cfg := DefaultConfig()
	cfg.MaxSteps = 1 << 20
	_, err := New(core, cfg).RunSymmetric([]*Task{a, b})
	// The poisoned counter (0xDEADBEEF...) either aborts the loop early
	// (wrong iteration count), spins into fuel exhaustion, or faults.
	// Matching the reference exactly would mean poisoning is broken.
	if err == nil && a.Ctx.Retired == refA.Ctx.Retired && b.Ctx.Retired == refB.Ctx.Retired {
		t.Error("unsound live mask went unnoticed — poisoning is broken")
	}
}

func TestRunDualModeHidesPrimaryMisses(t *testing.T) {
	// Solo instrumented primary (no scavengers): stalls exposed.
	coreA, mA := newMachine(t, testImage, 1<<20)
	headA := buildChain(mA, 256, 4)
	pA := chaseTask(coreA, mA, 0, 400, headA)
	soloStats, err := New(coreA, DefaultConfig()).RunSolo(pA)
	if err != nil {
		t.Fatal(err)
	}

	// Dual mode: same primary plus 4 compute scavengers.
	coreB, mB := newMachine(t, testImage, 1<<20)
	headB := buildChain(mB, 256, 4)
	p := chaseTask(coreB, mB, 0, 400, headB)
	var scavs []*Task
	for i := 1; i <= 4; i++ {
		scavs = append(scavs, scavTask(coreB, mB, i, 1_000_000))
	}
	e := New(coreB, DefaultConfig())
	st, err := e.RunDualMode(p, scavs)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Ctx.Halted {
		t.Fatal("primary did not halt")
	}
	if p.Ctx.Result-headB != pA.Ctx.Result-headA {
		t.Error("dual-mode primary computed a different result")
	}
	if st.Episodes == 0 {
		t.Fatal("no hide episodes")
	}
	// Efficiency must beat the solo run (scavengers soak the stalls).
	if st.Efficiency() <= soloStats.Efficiency()*1.5 {
		t.Errorf("dual efficiency %.3f vs solo %.3f", st.Efficiency(), soloStats.Efficiency())
	}
	// The primary's own stall cycles must collapse: misses were hidden.
	if p.Ctx.StallCycles >= pA.Ctx.StallCycles/2 {
		t.Errorf("primary stall %d not meaningfully below solo %d",
			p.Ctx.StallCycles, pA.Ctx.StallCycles)
	}
	// Latency accounting exists and the primary wasn't starved.
	if st.PrimaryLatency == 0 || st.PrimaryLatency > soloStats.Cycles*3 {
		t.Errorf("primary latency %d implausible vs solo %d", st.PrimaryLatency, soloStats.Cycles)
	}
}

func TestDualModeScavengerChaining(t *testing.T) {
	// Scavengers that are themselves pointer chases (primary-phase yields
	// inside): hiding one primary miss requires chaining scavengers, the
	// paper's on-demand scaling.
	core, m := newMachine(t, testImage, 2<<20)
	head := buildChain(m, 256, 5)
	p := chaseTask(core, m, 0, 300, head)
	var scavs []*Task
	for i := 1; i <= 4; i++ {
		h := buildChain(m, 256, int64(5+i))
		scavs = append(scavs, chaseTask(core, m, i, 1_000_000, h))
		scavs[i-1].Mode = coro.Scavenger
	}
	st, err := New(core, DefaultConfig()).RunDualMode(p, scavs)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainSwitches == 0 {
		t.Error("pointer-chase scavengers should chain")
	}
	if st.Episodes == 0 || !p.Ctx.Halted {
		t.Error("dual mode did not run properly")
	}
}

func TestDualModeWithoutScavengersDegradesToSolo(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 64, 6)
	p := chaseTask(core, m, 0, 100, head)
	st, err := New(core, DefaultConfig()).RunDualMode(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Episodes != 0 || st.Switches != 0 {
		t.Error("no scavengers: no episodes or switches expected")
	}
	if !p.Ctx.Halted {
		t.Error("primary did not halt")
	}
}

func TestHWAssistSkipsUselessYields(t *testing.T) {
	// A chase over a 2-line working set: everything is L1-hot after the
	// first lap, so the presence probe should skip nearly every yield.
	core, m := newMachine(t, testImage, 1<<20)
	base := m.Alloc(128, 64)
	m.MustWrite64(base, base+64)
	m.MustWrite64(base+64, base)
	p := chaseTask(core, m, 0, 200, base)
	scav := scavTask(core, m, 1, 1_000_000)
	cfg := DefaultConfig()
	cfg.HWAssist = true
	st, err := New(core, cfg).RunDualMode(p, []*Task{scav})
	if err != nil {
		t.Fatal(err)
	}
	if st.HWSkips < 190 {
		t.Errorf("HWSkips = %d, want nearly all 200 yields skipped", st.HWSkips)
	}
	if st.Episodes > 10 {
		t.Errorf("episodes = %d, want almost none", st.Episodes)
	}
}

func TestFuelExhaustion(t *testing.T) {
	core, m := newMachine(t, `
    spin:
        jmp spin
    `, 1<<16)
	task := NewTask(coro.NewContext(0, 0, m.Size()-8), coro.Primary)
	cfg := DefaultConfig()
	cfg.MaxSteps = 1000
	_, err := New(core, cfg).RunSolo(task)
	if err != ErrFuelExhausted {
		t.Errorf("err = %v, want fuel exhaustion", err)
	}
}

func TestRunSymmetricEmpty(t *testing.T) {
	core, _ := newMachine(t, "halt", 1<<16)
	if _, err := New(core, DefaultConfig()).RunSymmetric(nil); err == nil {
		t.Error("empty task list should error")
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	st := Stats{Cycles: 100, Busy: 60, Stall: 30, Retired: 50}
	if st.Efficiency() != 0.6 || st.StallFraction() != 0.3 || st.IPC() != 0.5 {
		t.Error("derived metrics wrong")
	}
	var zero Stats
	if zero.Efficiency() != 0 || zero.StallFraction() != 0 || zero.IPC() != 0 {
		t.Error("zero stats should not divide by zero")
	}
}

func TestDualModeDrainScavengers(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 64, 7)
	p := chaseTask(core, m, 0, 50, head)
	s1 := scavTask(core, m, 1, 3000)
	s2 := scavTask(core, m, 2, 3000)
	cfg := DefaultConfig()
	cfg.KeepScavengersAfterPrimary = true
	st, err := New(core, cfg).RunDualMode(p, []*Task{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted != 3 {
		t.Errorf("halted = %d, want all 3 (drain enabled)", st.Halted)
	}
}

func TestTracerReceivesSchedulingEvents(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 128, 21)
	p := chaseTask(core, m, 0, 100, head)
	scav := scavTask(core, m, 1, 1_000_000)
	cfg := DefaultConfig()
	ring := trace.NewRing(1 << 16)
	cfg.Tracer = ring
	st, err := New(core, cfg).RunDualMode(p, []*Task{scav})
	if err != nil {
		t.Fatal(err)
	}
	counts := ring.CountByKind()
	if uint64(counts[trace.EpisodeStart]) != st.Episodes {
		t.Errorf("episode-start events %d != episodes %d", counts[trace.EpisodeStart], st.Episodes)
	}
	if counts[trace.EpisodeEnd] == 0 || counts[trace.SwitchOut] == 0 || counts[trace.Resume] == 0 {
		t.Errorf("missing event kinds: %v", counts)
	}
	if counts[trace.Halt] != 1 {
		t.Errorf("halt events = %d, want 1 (primary)", counts[trace.Halt])
	}
	// Events must be time-ordered.
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Now < evs[i-1].Now {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

// The nil-tracer fast path: a run without a tracer must produce exactly
// the same statistics as a traced run (tracing observes, never perturbs),
// and a tracer reused across runs via Reset must see each run in
// isolation.
func TestNilTracerFastPathAndRingReuse(t *testing.T) {
	run := func(tracer trace.Tracer) Stats {
		core, m := newMachine(t, testImage, 1<<20)
		head := buildChain(m, 128, 21)
		p := chaseTask(core, m, 0, 100, head)
		scav := scavTask(core, m, 1, 1_000_000)
		cfg := DefaultConfig()
		cfg.Tracer = tracer
		st, err := New(core, cfg).RunDualMode(p, []*Task{scav})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	ring := trace.NewRing(1 << 16)
	traced := run(ring)
	untraced := run(nil)
	if fmt.Sprintf("%+v", traced) != fmt.Sprintf("%+v", untraced) {
		t.Errorf("tracing perturbed the run:\ntraced   %+v\nuntraced %+v", traced, untraced)
	}
	firstTotal := ring.Total()
	if firstTotal == 0 {
		t.Fatal("traced run emitted no events")
	}
	ring.Reset()
	rerun := run(ring)
	if fmt.Sprintf("%+v", rerun) != fmt.Sprintf("%+v", traced) {
		t.Errorf("rerun after Reset diverged: %+v vs %+v", rerun, traced)
	}
	if ring.Total() != firstTotal {
		t.Errorf("reused ring saw %d events, first run saw %d", ring.Total(), firstTotal)
	}
}

func TestRunWindowed(t *testing.T) {
	core, m := newMachine(t, testImage, 8<<20)
	var tasks []*Task
	for i := 0; i < 24; i++ {
		tasks = append(tasks, chaseTask(core, m, i, 150, buildChain(m, 128, int64(40+i))))
	}
	st, err := New(core, DefaultConfig()).RunWindowed(tasks, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if !task.Ctx.Halted {
			t.Fatalf("task %d never ran to completion", i)
		}
	}
	if st.Switches == 0 {
		t.Error("windowed run should interleave")
	}

	// Wider windows improve efficiency up to the latency/compute ratio.
	effAt := func(w int) float64 {
		c2, m2 := newMachine(t, testImage, 8<<20)
		var ts []*Task
		for i := 0; i < 24; i++ {
			ts = append(ts, chaseTask(c2, m2, i, 150, buildChain(m2, 128, int64(40+i))))
		}
		s, err := New(c2, DefaultConfig()).RunWindowed(ts, w)
		if err != nil {
			t.Fatal(err)
		}
		return s.Efficiency()
	}
	if e8, e1 := effAt(8), effAt(1); e8 <= e1*1.5 {
		t.Errorf("window 8 (%.3f) should clearly beat window 1 (%.3f)", e8, e1)
	}
}

func TestRunWindowedErrors(t *testing.T) {
	core, m := newMachine(t, testImage, 1<<20)
	task := chaseTask(core, m, 0, 10, buildChain(m, 16, 1))
	e := New(core, DefaultConfig())
	if _, err := e.RunWindowed(nil, 4); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := e.RunWindowed([]*Task{task}, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestEpisodeDurationsBounded(t *testing.T) {
	// The §3.3 runtime promise: the primary waits no longer than its hide
	// target plus one scavenger inter-yield interval (plus switch costs).
	core, m := newMachine(t, testImage, 1<<20)
	head := buildChain(m, 256, 31)
	p := chaseTask(core, m, 0, 300, head)
	scav := scavTask(core, m, 1, 10_000_000)
	cfg := DefaultConfig()
	ring := trace.NewRing(1 << 16)
	cfg.Tracer = ring
	if _, err := New(core, cfg).RunDualMode(p, []*Task{scav}); err != nil {
		t.Fatal(err)
	}
	var target uint64
	checked := 0
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case trace.EpisodeStart:
			target = ev.Arg
		case trace.EpisodeEnd:
			checked++
			// The scav loop yields every ~7 cycles; allow switch costs
			// and one full iteration of slack.
			if ev.Arg > target+120 {
				t.Fatalf("episode ran %d cycles for a %d-cycle target", ev.Arg, target)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no episodes observed")
	}
}

func TestDualModeScavengerHaltsMidEpisode(t *testing.T) {
	// A scavenger that finishes inside a hide window must hand off to the
	// next scavenger (or back to the primary) without losing the episode.
	core, m := newMachine(t, testImage, 1<<20)
	p := chaseTask(core, m, 0, 120, buildChain(m, 256, 51))
	short := scavTask(core, m, 1, 5) // halts almost immediately
	long := scavTask(core, m, 2, 1_000_000)
	st, err := New(core, DefaultConfig()).RunDualMode(p, []*Task{short, long})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Ctx.Halted || !short.Ctx.Halted {
		t.Fatal("tasks did not progress")
	}
	if short.Ctx.Result != 5 {
		t.Errorf("short scavenger result %d, want 5", short.Ctx.Result)
	}
	if st.Episodes == 0 {
		t.Error("no episodes despite misses")
	}
}

func TestDualModeAllScavengersExhausted(t *testing.T) {
	// When every scavenger halts, the primary must keep running alone.
	core, m := newMachine(t, testImage, 1<<20)
	p := chaseTask(core, m, 0, 200, buildChain(m, 256, 52))
	s1 := scavTask(core, m, 1, 3)
	s2 := scavTask(core, m, 2, 3)
	_, err := New(core, DefaultConfig()).RunDualMode(p, []*Task{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Ctx.Halted || !s1.Ctx.Halted || !s2.Ctx.Halted {
		t.Error("run did not complete after scavenger exhaustion")
	}
}

func TestWindowedFuelExhaustion(t *testing.T) {
	core, m := newMachine(t, "spin:\n jmp spin", 1<<16)
	task := NewTask(coro.NewContext(0, 0, m.Size()-8), coro.Primary)
	cfg := DefaultConfig()
	cfg.MaxSteps = 500
	if _, err := New(core, cfg).RunWindowed([]*Task{task}, 1); err != ErrFuelExhausted {
		t.Errorf("err = %v, want fuel exhaustion", err)
	}
}

func TestHideTargetDefaultsToDRAM(t *testing.T) {
	core, _ := newMachine(t, "halt", 1<<16)
	e := New(core, Config{})
	if e.Cfg.HideTarget != core.Hier.Config().LatDRAM {
		t.Errorf("HideTarget = %d, want DRAM latency", e.Cfg.HideTarget)
	}
	if e.Cfg.MaxSteps == 0 {
		t.Error("MaxSteps default missing")
	}
}

package exec

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/cpu"
)

// Ticker is the resumable form of RunSolo/RunSymmetric for the
// cycle-quantum kernel (internal/machine): instead of running a task
// set to completion, the kernel calls Run with a cycle deadline, the
// ticker advances until the core clock reaches it, and the kernel
// resumes it next quantum. Splitting a run at arbitrary cycle deadlines
// is byte-identical to running it unsplit: RunBlock's busy-budget stop
// is exactly a fuel split, which the block-engine differential tests
// pin as equivalence-preserving.
type Ticker struct {
	e         *Executor
	tasks     []*Task
	solo      bool
	cur       int
	running   int
	steps     uint64
	start     uint64
	latencies []uint64
	done      bool
	r         cpu.BlockResult
}

// NewTicker prepares a resumable run over the tasks. solo mirrors
// RunSolo (exactly one task, no mode forcing, no resume events);
// otherwise the ticker replays RunSymmetric's setup: all tasks enter
// primary mode and the first is resumed at the current cycle.
func (e *Executor) NewTicker(tasks []*Task, solo bool) (*Ticker, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("exec: no tasks")
	}
	if solo && len(tasks) != 1 {
		return nil, fmt.Errorf("exec: solo ticker takes exactly one task, got %d", len(tasks))
	}
	t := &Ticker{e: e, tasks: tasks, solo: solo, running: len(tasks), start: e.Core.Now}
	if !solo {
		for _, tk := range tasks {
			tk.Mode = coro.Primary
			tk.Ctx.Mode = coro.Primary
		}
		t.latencies = make([]uint64, len(tasks))
		e.resume(tasks[0])
	}
	return t, nil
}

// Done reports whether every task has halted (or an error stopped the run).
func (t *Ticker) Done() bool { return t.done }

// Run advances the task set until the core clock reaches deadline or
// all tasks halt, whichever comes first. It returns done=true when the
// run is complete; done=false means the quantum expired and the kernel
// should call Run again with a later deadline. The loop body is
// RunSymmetric's verbatim, with the unlimited busy budget replaced by
// the cycles remaining in the quantum — a budget stop neither yields
// nor halts, so control simply returns to the deadline check, which
// fires because a budget stop advances the clock by at least the
// budget.
//
//shsim:cycle-entry
func (t *Ticker) Run(deadline uint64) (bool, error) {
	if t.done {
		return true, nil
	}
	e := t.e
	for t.running > 0 {
		if e.Core.Now >= deadline {
			return false, nil
		}
		if t.steps >= e.Cfg.MaxSteps {
			return false, ErrFuelExhausted
		}
		task := t.tasks[t.cur]
		if task.Ctx.Halted {
			// Solo over an already-halted context: nothing to run.
			t.running--
			continue
		}
		if err := e.Core.RunBlock(task.Ctx, false, e.Cfg.MaxSteps-t.steps, deadline-e.Core.Now, &t.r); err != nil {
			return false, err
		}
		t.steps += t.r.Steps
		switch {
		case t.r.Halted:
			if !t.solo {
				t.latencies[t.cur] = e.Core.Now - t.start
				// Mirror what internal/sched records at the end of a
				// classic single-core run, so many-core service runs
				// report request latencies too.
				if m := e.Cfg.Metrics; m != nil {
					m.Sched.Requests++
					m.Sched.RequestLatency.Observe(e.Core.Now - t.start)
				}
			}
			t.running--
			if t.running == 0 {
				break
			}
			t.cur = e.nextRunnable(t.tasks, t.cur)
			e.resume(t.tasks[t.cur])
		case t.r.Yield && !t.solo:
			nxt := e.nextRunnable(t.tasks, t.cur)
			if nxt != t.cur {
				e.switchFrom(task, t.r.LiveMask)
				t.cur = nxt
				e.resume(t.tasks[t.cur])
			}
		}
	}
	t.done = true
	return true, nil
}

// Stats assembles the run statistics. Valid once Done; the fields match
// what RunSolo/RunSymmetric would have returned for the same task set.
func (t *Ticker) Stats() Stats {
	st := Stats{Cycles: t.e.Core.Now - t.start, Latencies: t.latencies}
	collect(&st, t.tasks...)
	return st
}

package pebs

import (
	"repro/internal/cpu"
	"repro/internal/metrics"
)

// Sampler implements cpu.Observer, turning the retire stream into PEBS
// samples and LBR aggregates.
type Sampler struct {
	cfg Config

	countdown [NumEvents]uint64
	occurred  [NumEvents]uint64 // ground-truth occurrence counts (for tests/E10)

	Samples []Sample
	Dropped uint64

	ring     []BranchRecord
	ringPos  int
	ringFull bool
	branches uint64
	lbr      *LBRStats

	progLen int
}

var _ cpu.Observer = (*Sampler)(nil)

// NewSampler creates a sampler for a program of progLen instructions.
func NewSampler(cfg Config, progLen int) *Sampler {
	s := &Sampler{cfg: cfg, progLen: progLen, lbr: NewLBRStats(progLen)}
	for e := 0; e < NumEvents; e++ {
		s.countdown[e] = cfg.Periods[e]
	}
	if cfg.LBRDepth > 0 {
		s.ring = make([]BranchRecord, cfg.LBRDepth)
	}
	return s
}

// Config returns the sampler configuration.
func (s *Sampler) Config() Config { return s.cfg }

// LBR returns the aggregated last-branch statistics.
func (s *Sampler) LBR() *LBRStats { return s.lbr }

// Occurrences returns the true number of occurrences of an event seen by
// the sampler (all of them, not just the sampled ones).
func (s *Sampler) Occurrences(e EventKind) uint64 { return s.occurred[e] }

// OverheadCycles reports the modelled profiling overhead: per-sample cost
// times samples taken (including dropped ones, which still trapped).
func (s *Sampler) OverheadCycles() uint64 {
	return (uint64(len(s.Samples)) + s.Dropped) * s.cfg.CostPerSample
}

// FillMetrics harvests the sampler's overhead accounting into the
// registry's Sampler section. The counters are maintained
// unconditionally, so this copies rather than double-counting on the
// sampling path.
func (s *Sampler) FillMetrics(m *metrics.Sampler) {
	m.Samples = uint64(len(s.Samples))
	m.Dropped = s.Dropped
	m.Branches = s.branches
	m.OverheadCycles = s.OverheadCycles()
}

// attributePC applies the skid model.
func (s *Sampler) attributePC(pc int) int {
	if s.cfg.Precise {
		return pc
	}
	if pc+1 < s.progLen {
		return pc + 1
	}
	return pc
}

// bump advances the event counter by n occurrences and records samples at
// every period crossing.
func (s *Sampler) bump(e EventKind, n uint64, pc int, now uint64) {
	s.occurred[e] += n
	period := s.cfg.Periods[e]
	if period == 0 {
		return
	}
	for n > 0 {
		if s.countdown[e] > n {
			s.countdown[e] -= n
			return
		}
		n -= s.countdown[e]
		s.countdown[e] = period
		s.record(Sample{Event: e, PC: s.attributePC(pc), Weight: period, Now: now})
	}
}

func (s *Sampler) record(smp Sample) {
	if s.cfg.BufferSize > 0 && len(s.Samples) >= s.cfg.BufferSize {
		s.Dropped++
		return
	}
	s.Samples = append(s.Samples, smp)
}

// OnRetire implements cpu.Observer.
func (s *Sampler) OnRetire(e cpu.RetireEvent) {
	if e.IsLoad {
		s.bump(EvLoadRetired, 1, e.PC, e.Now)
		if e.MissedL2 {
			s.bump(EvLoadL2Miss, 1, e.PC, e.Now)
		}
		if e.MissedL3 {
			s.bump(EvLoadL3Miss, 1, e.PC, e.Now)
		}
	}
	if e.IsStore {
		s.bump(EvStoreRetired, 1, e.PC, e.Now)
		if e.MissedL2 {
			s.bump(EvStoreL2Miss, 1, e.PC, e.Now)
		}
		if e.MissedL3 {
			s.bump(EvStoreL3Miss, 1, e.PC, e.Now)
		}
	}
	if e.IsAccWait {
		s.bump(EvAccWaitRetired, 1, e.PC, e.Now)
	}
	if e.Stall > 0 {
		s.bump(EvStallCycle, e.Stall, e.PC, e.Now)
	}
}

// OnBranch implements cpu.Observer: it feeds the LBR ring and takes a
// snapshot every cfg.LBREvery taken branches.
func (s *Sampler) OnBranch(e cpu.BranchEvent) {
	if len(s.ring) == 0 {
		return
	}
	s.ring[s.ringPos] = BranchRecord{From: e.From, To: e.To, Cycles: e.Cycles}
	s.ringPos = (s.ringPos + 1) % len(s.ring)
	if s.ringPos == 0 {
		s.ringFull = true
	}
	s.branches++
	if s.cfg.LBREvery > 0 && s.branches%s.cfg.LBREvery == 0 {
		s.snapshot()
	}
}

// snapshot walks the ring oldest-to-newest, crediting edges and block
// latencies. The Cycles of record i measure the straight-line region
// entered at record i-1's target, so consecutive pairs are required.
func (s *Sampler) snapshot() {
	n := len(s.ring)
	if !s.ringFull {
		n = s.ringPos
	}
	if n == 0 {
		return
	}
	start := 0
	if s.ringFull {
		start = s.ringPos // oldest entry
	}
	prevTo := -1
	for i := 0; i < n; i++ {
		rec := s.ring[(start+i)%len(s.ring)]
		s.lbr.credit(Edge{rec.From, rec.To})
		if prevTo >= 0 && prevTo < len(s.lbr.BlockCycleSum) {
			s.lbr.BlockCycleSum[prevTo] += rec.Cycles
			s.lbr.BlockCycleCount[prevTo]++
		}
		prevTo = rec.To
	}
}

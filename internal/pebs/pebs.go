// Package pebs models sample-based profiling with hardware performance
// counters, after Intel's Precise Event Based Sampling (PEBS) and Last
// Branch Records (LBR).
//
// The sampler observes the simulated core's retire stream. For each
// enabled event it maintains a countdown initialized to the sampling
// period; when an event occurrence crosses the period boundary, one sample
// is recorded into a bounded in-memory buffer. A sample therefore
// represents approximately Period occurrences — exactly the estimate
// real PEBS gives — and everything downstream (internal/profile,
// internal/instrument) consumes these estimates, never the ground-truth
// counters.
//
// The skid model matters for the paper's §3.2 accuracy argument: precise
// sampling attributes a sample to the instruction that caused the event,
// imprecise sampling to the following instruction, which degrades
// profile-to-binary mapping fidelity.
package pebs

import (
	"fmt"
	"sort"
)

// EventKind enumerates sampleable hardware events.
type EventKind uint8

// The event set from the paper's §3.2: load instructions that miss L2/L3,
// and stalled cycles, plus loads-retired as the denominator for miss
// likelihoods.
const (
	EvLoadRetired    EventKind = iota
	EvLoadL2Miss               // load missed both L1 and L2
	EvLoadL3Miss               // load missed all caches
	EvStallCycle               // one exposed stall cycle
	EvAccWaitRetired           // accelerator wait retired
	EvStoreRetired             // store retired
	EvStoreL2Miss              // store missed both L1 and L2 (RFO miss)
	EvStoreL3Miss              // store missed all caches
	numEvents
)

// NumEvents is the number of defined event kinds.
const NumEvents = int(numEvents)

func (e EventKind) String() string {
	switch e {
	case EvLoadRetired:
		return "loads_retired"
	case EvLoadL2Miss:
		return "load_l2_miss"
	case EvLoadL3Miss:
		return "load_l3_miss"
	case EvStallCycle:
		return "stall_cycles"
	case EvAccWaitRetired:
		return "accwait_retired"
	case EvStoreRetired:
		return "store_retired"
	case EvStoreL2Miss:
		return "store_l2_miss"
	case EvStoreL3Miss:
		return "store_l3_miss"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Config controls the sampler.
type Config struct {
	// Periods holds the sampling period per event; 0 disables the event.
	Periods [NumEvents]uint64
	// BufferSize bounds the number of retained samples; once full, new
	// samples are dropped and counted (real PEBS buffers overflow into an
	// interrupt + drain; we model the loss, the dominant fidelity effect).
	BufferSize int
	// Precise selects PEBS-style precise attribution. When false, samples
	// skid to the following instruction.
	Precise bool

	// LBREvery takes a snapshot of the last-branch ring every N taken
	// branches; 0 disables LBR.
	LBREvery uint64
	// LBRDepth is the ring capacity (32 on contemporary cores).
	LBRDepth int

	// CostPerSample models the (small) per-sample overhead in cycles,
	// reported by OverheadCycles for the E10 trade-off experiment. It
	// does not perturb the simulation.
	CostPerSample uint64
}

// DefaultConfig returns a production-style configuration: sparse sampling
// with precise attribution and a 64Ki-sample buffer.
func DefaultConfig() Config {
	var p [NumEvents]uint64
	p[EvLoadRetired] = 127
	p[EvLoadL2Miss] = 31
	p[EvLoadL3Miss] = 31
	p[EvStallCycle] = 1021
	p[EvAccWaitRetired] = 127
	p[EvStoreRetired] = 127
	p[EvStoreL2Miss] = 31
	p[EvStoreL3Miss] = 31
	return Config{
		Periods:       p,
		BufferSize:    64 << 10,
		Precise:       true,
		LBREvery:      64,
		LBRDepth:      32,
		CostPerSample: 20,
	}
}

// Sample is one recorded event.
type Sample struct {
	Event EventKind
	PC    int
	// Weight is the sampling period at record time: the sample stands for
	// approximately Weight occurrences of the event.
	Weight uint64
	Now    uint64
}

// BranchRecord is one LBR entry: a taken control transfer and the cycle
// count since the previous one (the latency of the block that just ran).
type BranchRecord struct {
	From   int
	To     int
	Cycles uint64
}

// Edge is a CFG edge observed via LBR.
type Edge struct {
	From int
	To   int
}

// LBRStats aggregates LBR snapshots: edge traversal counts and the
// latency of the straight-line region entered at each branch target.
type LBRStats struct {
	Edges map[Edge]uint64
	// edgeOrder remembers first-observation order so SortedEdges can
	// export the edge profile without ranging over the map (forbidden in
	// this cycle-domain package — iteration order would leak host
	// randomness into anything keyed off the export).
	edgeOrder []Edge
	// BlockCycleSum and BlockCycleCount accumulate, per region-entry PC,
	// the cycles until the next taken branch (sum and count, for
	// averaging). Branch targets are program counters, so the aggregates
	// are dense slices indexed by PC — snapshotting the LBR ring stays
	// allocation-free instead of probing a map per record.
	BlockCycleSum   []uint64
	BlockCycleCount []uint64
}

// NewLBRStats returns empty aggregation state for a program of progLen
// instructions.
func NewLBRStats(progLen int) *LBRStats {
	if progLen < 0 {
		progLen = 0
	}
	return &LBRStats{
		Edges:           make(map[Edge]uint64, 64),
		BlockCycleSum:   make([]uint64, progLen),
		BlockCycleCount: make([]uint64, progLen),
	}
}

// credit counts one traversal of e, tracking first-observation order for
// the deterministic export.
func (l *LBRStats) credit(e Edge) {
	if l.Edges[e] == 0 {
		l.edgeOrder = append(l.edgeOrder, e)
	}
	l.Edges[e]++
}

// EdgeCount is one exported LBR edge with its snapshot-traversal count.
type EdgeCount struct {
	From, To int
	Count    uint64
}

// SortedEdges exports the observed taken-edge profile ordered by
// (From, To) — deterministic regardless of map iteration order, so the
// export can seed superblock derivation (bincfg.SuperblockSpecs) and
// appear in reports without perturbing run-to-run reproducibility.
func (l *LBRStats) SortedEdges() []EdgeCount {
	out := make([]EdgeCount, 0, len(l.edgeOrder))
	for _, e := range l.edgeOrder {
		out = append(out, EdgeCount{From: e.From, To: e.To, Count: l.Edges[e]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// AvgBlockCycles returns the observed mean latency of the region entered
// at pc, and whether any observation exists.
func (l *LBRStats) AvgBlockCycles(pc int) (float64, bool) {
	if pc < 0 || pc >= len(l.BlockCycleCount) {
		return 0, false
	}
	n := l.BlockCycleCount[pc]
	if n == 0 {
		return 0, false
	}
	return float64(l.BlockCycleSum[pc]) / float64(n), true
}

package pebs

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/metrics"
)

func loadEvent(pc int, stall uint64, missL2, missL3 bool, now uint64) cpu.RetireEvent {
	return cpu.RetireEvent{PC: pc, Now: now, IsLoad: true, Stall: stall, MissedL2: missL2, MissedL3: missL3}
}

func TestSamplingPeriod(t *testing.T) {
	cfg := Config{BufferSize: 1000, Precise: true}
	cfg.Periods[EvLoadRetired] = 10
	s := NewSampler(cfg, 100)
	for i := 0; i < 95; i++ {
		s.OnRetire(loadEvent(5, 0, false, false, uint64(i)))
	}
	if len(s.Samples) != 9 {
		t.Fatalf("got %d samples from 95 events at period 10, want 9", len(s.Samples))
	}
	for _, smp := range s.Samples {
		if smp.Event != EvLoadRetired || smp.PC != 5 || smp.Weight != 10 {
			t.Errorf("bad sample: %+v", smp)
		}
	}
	if s.Occurrences(EvLoadRetired) != 95 {
		t.Errorf("occurrences = %d", s.Occurrences(EvLoadRetired))
	}
}

func TestWeightedStallEvents(t *testing.T) {
	cfg := Config{BufferSize: 1000, Precise: true}
	cfg.Periods[EvStallCycle] = 100
	s := NewSampler(cfg, 10)
	// One retire contributing 250 stall cycles must produce 2 samples and
	// leave 50 toward the next.
	s.OnRetire(loadEvent(3, 250, true, true, 0))
	if len(s.Samples) != 2 {
		t.Fatalf("got %d stall samples, want 2", len(s.Samples))
	}
	s.OnRetire(loadEvent(3, 50, true, true, 1))
	if len(s.Samples) != 3 {
		t.Fatalf("got %d stall samples after 300 total, want 3", len(s.Samples))
	}
}

func TestSkidAttribution(t *testing.T) {
	cfg := Config{BufferSize: 10, Precise: false}
	cfg.Periods[EvLoadRetired] = 1
	s := NewSampler(cfg, 100)
	s.OnRetire(loadEvent(7, 0, false, false, 0))
	if s.Samples[0].PC != 8 {
		t.Errorf("imprecise sample PC = %d, want 8 (skid)", s.Samples[0].PC)
	}
	// Skid clamps at the end of the program.
	s2 := NewSampler(cfg, 8)
	s2.OnRetire(loadEvent(7, 0, false, false, 0))
	if s2.Samples[0].PC != 7 {
		t.Errorf("clamped skid PC = %d, want 7", s2.Samples[0].PC)
	}
}

func TestBufferOverflow(t *testing.T) {
	cfg := Config{BufferSize: 5, Precise: true}
	cfg.Periods[EvLoadRetired] = 1
	s := NewSampler(cfg, 10)
	for i := 0; i < 12; i++ {
		s.OnRetire(loadEvent(1, 0, false, false, uint64(i)))
	}
	if len(s.Samples) != 5 || s.Dropped != 7 {
		t.Errorf("samples=%d dropped=%d, want 5 and 7", len(s.Samples), s.Dropped)
	}
	if s.OverheadCycles() != 12*s.cfg.CostPerSample {
		t.Errorf("overhead = %d", s.OverheadCycles())
	}
}

func TestDisabledEventRecordsNothing(t *testing.T) {
	cfg := Config{BufferSize: 10}
	s := NewSampler(cfg, 10)
	s.OnRetire(loadEvent(1, 500, true, true, 0))
	if len(s.Samples) != 0 {
		t.Error("disabled events must not sample")
	}
	if s.Occurrences(EvLoadL2Miss) != 1 {
		t.Error("occurrences should still count")
	}
}

func TestMissEventClassification(t *testing.T) {
	cfg := Config{BufferSize: 100, Precise: true}
	cfg.Periods[EvLoadL2Miss] = 1
	cfg.Periods[EvLoadL3Miss] = 1
	s := NewSampler(cfg, 10)
	s.OnRetire(loadEvent(2, 0, true, false, 0)) // L3 hit
	s.OnRetire(loadEvent(2, 0, true, true, 1))  // DRAM
	var l2, l3 int
	for _, smp := range s.Samples {
		switch smp.Event {
		case EvLoadL2Miss:
			l2++
		case EvLoadL3Miss:
			l3++
		}
	}
	if l2 != 2 || l3 != 1 {
		t.Errorf("l2=%d l3=%d, want 2 and 1", l2, l3)
	}
}

func TestLBRRingAndSnapshot(t *testing.T) {
	cfg := Config{LBRDepth: 4, LBREvery: 4}
	s := NewSampler(cfg, 100)
	// Simulated loop: 10 -> 2 edge taken repeatedly, each block taking 30
	// cycles (region entered at 2 runs until the branch at 10).
	now := uint64(0)
	for i := 0; i < 8; i++ {
		now += 30
		s.OnBranch(cpu.BranchEvent{From: 10, To: 2, Now: now, Cycles: 30})
	}
	lbr := s.LBR()
	if lbr.Edges[Edge{10, 2}] == 0 {
		t.Fatal("loop edge not observed")
	}
	avg, ok := lbr.AvgBlockCycles(2)
	if !ok || avg != 30 {
		t.Errorf("block latency = %v (ok=%v), want 30", avg, ok)
	}
	if _, ok := lbr.AvgBlockCycles(99); ok {
		t.Error("unknown block should have no observation")
	}
}

func TestLBRPartialRing(t *testing.T) {
	cfg := Config{LBRDepth: 32, LBREvery: 2}
	s := NewSampler(cfg, 100)
	s.OnBranch(cpu.BranchEvent{From: 5, To: 1, Cycles: 10})
	s.OnBranch(cpu.BranchEvent{From: 5, To: 1, Cycles: 12})
	// Snapshot of a partially filled ring must still count edges.
	if s.LBR().Edges[Edge{5, 1}] != 2 {
		t.Errorf("edges = %v", s.LBR().Edges)
	}
}

func TestLBRDisabled(t *testing.T) {
	s := NewSampler(Config{}, 10)
	s.OnBranch(cpu.BranchEvent{From: 1, To: 0, Cycles: 5})
	if len(s.LBR().Edges) != 0 {
		t.Error("LBR disabled should record nothing")
	}
}

// Property: the estimate (samples × period) converges to the true count as
// events accumulate, within statistical tolerance.
func TestEstimateConvergence(t *testing.T) {
	cfg := Config{BufferSize: 1 << 20, Precise: true}
	cfg.Periods[EvLoadL2Miss] = 17
	s := NewSampler(cfg, 2)
	rng := rand.New(rand.NewSource(3))
	trueMisses := 0
	for i := 0; i < 100000; i++ {
		miss := rng.Float64() < 0.3
		if miss {
			trueMisses++
		}
		s.OnRetire(loadEvent(0, 0, miss, false, uint64(i)))
	}
	est := float64(len(s.Samples)) * 17
	err := est/float64(trueMisses) - 1
	if err < -0.05 || err > 0.05 {
		t.Errorf("estimate %f vs true %d: error %.3f", est, trueMisses, err)
	}
}

func TestEventKindString(t *testing.T) {
	for e := EventKind(0); int(e) < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has empty name", e)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown event should still render")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	for e := 0; e < NumEvents; e++ {
		if cfg.Periods[e] == 0 {
			t.Errorf("default config disables %v", EventKind(e))
		}
	}
	if cfg.LBRDepth != 32 {
		t.Errorf("LBRDepth = %d", cfg.LBRDepth)
	}
}

// TestFillMetrics: the harvested Sampler section must mirror the
// sampler's own accounting, including buffer drops.
func TestFillMetrics(t *testing.T) {
	cfg := Config{BufferSize: 5, Precise: true, CostPerSample: 7, LBRDepth: 4, LBREvery: 1}
	cfg.Periods[EvLoadRetired] = 1
	s := NewSampler(cfg, 100)
	for i := 0; i < 9; i++ {
		s.OnRetire(loadEvent(5, 0, false, false, uint64(i)))
	}
	for i := 0; i < 6; i++ {
		s.OnBranch(cpu.BranchEvent{From: i, To: i + 1, Now: uint64(i), Cycles: 10})
	}
	var m metrics.Sampler
	s.FillMetrics(&m)
	if m.Samples != uint64(len(s.Samples)) || m.Samples != 5 {
		t.Errorf("Samples = %d, want %d (= buffer size 5)", m.Samples, len(s.Samples))
	}
	if m.Dropped != s.Dropped || m.Dropped != 4 {
		t.Errorf("Dropped = %d, want 4", m.Dropped)
	}
	if m.Branches != 6 {
		t.Errorf("Branches = %d, want 6", m.Branches)
	}
	if m.OverheadCycles != s.OverheadCycles() || m.OverheadCycles != (5+4)*7 {
		t.Errorf("OverheadCycles = %d, want %d", m.OverheadCycles, (5+4)*7)
	}
}

package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// BTree searches a bulk-loaded B+-tree — the index structure main-memory
// databases actually use (and the subject of the paper's CoroBase [23]
// and index-join [53] citations). Each probe descends a handful of
// 128-byte nodes: a short chain of dependent cache misses with a linear
// key scan inside each node.
type BTree struct {
	// Keys is the number of indexed entries.
	Keys int
	// Lookups is the number of searches per instance.
	Lookups int
	// Instances is the number of independent trees/coroutines.
	Instances int
}

// Name implements Spec.
func (BTree) Name() string { return "btree" }

// btreeFanout is the number of keys per node. Node layout (128 bytes):
//
//	word 0      : count (number of keys)
//	word 1      : leaf flag (1 = leaf)
//	words 2..8  : keys[0..6]
//	words 9..15 : children[0..6] (inner) or values[0..6] (leaf)
//
// Inner-node semantics: descend into children[i] for the first i with
// key < keys[i]... specifically children[i] covers keys < keys[i]; the
// last child covers the remainder. For simplicity keys[i] is the
// *smallest* key of children[i+1]'s subtree and children has count+1
// entries... we instead use the common "route to first key > probe"
// formulation below, mirrored exactly by the host builder.
const btreeFanout = 7

// Register plan: r12=root, r3=lookup cursor, r4=remaining lookups,
// r5=accumulator, r6=probe key, r7=cur node, r8=index, r9=count,
// r10=key/value scratch, r11=address scratch, r13=leaf flag.
const btreeAsm = `
main:
    mov  r12, r1
lookup:
    load r6, [r3]
    mov  r7, r12
descend:
    load r9, [r7]        ; count (likely miss: first touch of the node)
    load r13, [r7+8]     ; leaf flag (same line: hit)
    movi r8, 0
scan:
    cmp  r8, r9
    jge  scan_done
    shli r11, r8, 3
    add  r11, r11, r7
    load r10, [r11+16]   ; keys[i]
    cmp  r10, r6
    jgt  scan_done       ; first key greater than probe
    jeq  exact
    addi r8, r8, 1
    jmp  scan
exact:
    addi r8, r8, 1       ; position after the matching key
scan_done:
    cmpi r13, 1
    jeq  at_leaf
    ; inner: child index = r8
    shli r11, r8, 3
    add  r11, r11, r7
    load r7, [r11+72]    ; children[i] (likely miss after descent)
    jmp  descend
at_leaf:
    ; r8 is the position after the probe key if present; check r8-1.
    cmpi r8, 0
    jeq  not_found
    addi r8, r8, -1
    shli r11, r8, 3
    add  r11, r11, r7
    load r10, [r11+16]   ; keys[r8]
    cmp  r10, r6
    jne  not_found
    load r10, [r11+72]   ; values[r8]
    add  r5, r5, r10
not_found:
    addi r3, r3, 8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  lookup
    mov  r1, r5
    halt
`

// btreeNode is the host-side mirror used during construction and search.
type btreeNode struct {
	addr     uint64
	leaf     bool
	keys     []uint64
	children []*btreeNode // inner
	values   []uint64     // leaf
}

// Build implements Spec.
func (w BTree) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Keys < 1 || w.Lookups < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("btree: need ≥1 keys, lookups and instances")
	}
	b := &Built{Prog: isa.MustAssemble(btreeAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		// Distinct sorted keys and values.
		keySet := map[uint64]bool{}
		for len(keySet) < w.Keys {
			keySet[uint64(1+rng.Intn(1<<30))] = true
		}
		keys := make([]uint64, 0, w.Keys)
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		values := make(map[uint64]uint64, w.Keys)

		// Bulk-load leaves.
		var level []*btreeNode
		for i := 0; i < len(keys); i += btreeFanout {
			end := i + btreeFanout
			if end > len(keys) {
				end = len(keys)
			}
			n := &btreeNode{leaf: true}
			for _, k := range keys[i:end] {
				v := uint64(rng.Intn(1 << 20))
				values[k] = v
				n.keys = append(n.keys, k)
				n.values = append(n.values, v)
			}
			level = append(level, n)
		}
		// Build inner levels: an inner node holds up to btreeFanout-1
		// separator keys (the smallest key of each child after the first)
		// and up to btreeFanout children.
		for len(level) > 1 {
			var up []*btreeNode
			for i := 0; i < len(level); i += btreeFanout {
				end := i + btreeFanout
				if end > len(level) {
					end = len(level)
				}
				n := &btreeNode{}
				n.children = append(n.children, level[i:end]...)
				for _, c := range level[i+1 : end] {
					n.keys = append(n.keys, smallestKey(c))
				}
				up = append(up, n)
			}
			level = up
		}
		root := level[0]

		// Materialize nodes in shuffled allocation order.
		var all []*btreeNode
		var collect func(*btreeNode)
		collect = func(n *btreeNode) {
			all = append(all, n)
			for _, c := range n.children {
				collect(c)
			}
		}
		collect(root)
		order := rng.Perm(len(all))
		for _, i := range order {
			all[i].addr = m.Alloc(128, 128)
		}
		for _, n := range all {
			m.MustWrite64(n.addr, uint64(len(n.keys)))
			leafFlag := uint64(0)
			if n.leaf {
				leafFlag = 1
			}
			m.MustWrite64(n.addr+8, leafFlag)
			for i, k := range n.keys {
				m.MustWrite64(n.addr+16+uint64(i)*8, k)
			}
			if n.leaf {
				for i, v := range n.values {
					m.MustWrite64(n.addr+72+uint64(i)*8, v)
				}
			} else {
				for i, c := range n.children {
					m.MustWrite64(n.addr+72+uint64(i)*8, c.addr)
				}
			}
		}

		// Lookup keys (mixed present/absent) and host-reference search.
		lkBase := m.Alloc(uint64(w.Lookups)*8, 64)
		var expected uint64
		for i := 0; i < w.Lookups; i++ {
			var key uint64
			if rng.Intn(2) == 0 {
				key = keys[rng.Intn(len(keys))]
			} else {
				key = uint64(1+rng.Intn(1<<30)) | 1<<30
			}
			m.MustWrite64(lkBase+uint64(i)*8, key)
			if v, ok := hostSearch(root, key); ok {
				expected += v
			} else if hv, hok := values[key]; hok && hv != v {
				return nil, fmt.Errorf("btree: host search inconsistent")
			}
		}
		var in Instance
		in.Regs[1] = root.addr
		in.Regs[3] = lkBase
		in.Regs[4] = uint64(w.Lookups)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

func smallestKey(n *btreeNode) uint64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// hostSearch mirrors the assembly's routing exactly: within a node, find
// the first position whose key exceeds the probe (stepping past an exact
// match); descend into that child, or check position-1 at a leaf.
func hostSearch(n *btreeNode, key uint64) (uint64, bool) {
	for {
		i := 0
		for i < len(n.keys) {
			if n.keys[i] > key {
				break
			}
			if n.keys[i] == key {
				i++
				break
			}
			i++
		}
		if n.leaf {
			if i == 0 {
				return 0, false
			}
			if n.keys[i-1] == key {
				return n.values[i-1], true
			}
			return 0, false
		}
		n = n.children[i]
	}
}

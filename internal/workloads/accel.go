package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// AccelStream drives the onboard accelerator (paper §1: "operations with
// onboard accelerators", the second family of 10s–100s-of-ns events): for
// each 64-byte block of a buffer it submits an asynchronous accelerator
// operation, does a little bookkeeping, then waits for the result. The
// wait is the hideable event — exactly a cache miss with a different
// producer.
type AccelStream struct {
	// Blocks is the number of 64-byte blocks processed per instance.
	Blocks int
	// Pad is the number of filler-loop iterations between submit and
	// wait (~3 cycles each): the work the application naturally overlaps.
	Pad int
	// Instances is the number of independent buffers/coroutines.
	Instances int
}

// Name implements Spec.
func (AccelStream) Name() string { return "accelstream" }

// Register plan: r1=block cursor, r2=remaining blocks, r4=result,
// r5=accumulator, r6=pad scratch, r7=pad count.
const accelStreamAsm = `
main:
    accel [r1]           ; submit the async operation
    mov  r6, r7
pad:
    cmpi r6, 0
    jle  pad_done
    addi r6, r6, -1
    jmp  pad
pad_done:
    accwait r4           ; the hideable 100ns-class wait
    add  r5, r5, r4
    addi r1, r1, 64
    addi r2, r2, -1
    cmpi r2, 0
    jgt  main
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w AccelStream) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Blocks < 1 || w.Instances < 1 || w.Pad < 0 {
		return nil, fmt.Errorf("accel stream: need ≥1 blocks, ≥1 instances, pad ≥ 0")
	}
	b := &Built{Prog: isa.MustAssemble(accelStreamAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		base := m.Alloc(uint64(w.Blocks)*64, 64)
		var expected uint64
		for blk := 0; blk < w.Blocks; blk++ {
			var sum uint64
			for i := uint64(0); i < 8; i++ {
				v := uint64(rng.Intn(1 << 16))
				m.MustWrite64(base+uint64(blk)*64+i*8, v)
				sum += v * (i + 1)
			}
			expected += sum
		}
		var in Instance
		in.Regs[1] = base
		in.Regs[2] = uint64(w.Blocks)
		in.Regs[7] = uint64(w.Pad)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

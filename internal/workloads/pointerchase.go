package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"

	"repro/internal/isa"
)

// PointerChase is the canonical memory-latency-bound kernel: follow a
// pseudo-random circular linked list, summing node payloads. With a
// footprint beyond the last-level cache, every hop is a DRAM miss and the
// dependent load chain defeats any hardware prefetcher — the exact shape
// the paper's mechanism targets.
type PointerChase struct {
	// Nodes is the chain length; footprint is Nodes × 64 bytes.
	Nodes int
	// Hops is the number of pointer dereferences per instance.
	Hops int
	// Instances is the number of independent chains/coroutines.
	Instances int
}

// Name implements Spec.
func (PointerChase) Name() string { return "chase" }

// chaseAsm: r1=current node, r2=payload accumulator, r3=remaining hops.
const chaseAsm = `
main:
    load r4, [r1+8]      ; payload
    add  r2, r2, r4
    load r1, [r1]        ; next (the dependent, likely-missing load)
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    mov  r1, r2
    halt
`

// Build implements Spec.
func (w PointerChase) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Nodes < 2 || w.Hops < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("pointer chase: need ≥2 nodes, ≥1 hops, ≥1 instances")
	}
	b := &Built{Prog: isa.MustAssemble(chaseAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		base := m.Alloc(uint64(w.Nodes)*64, 64)
		perm := rng.Perm(w.Nodes)
		values := make([]uint64, w.Nodes)
		next := make(map[uint64]uint64, w.Nodes)
		for i := 0; i < w.Nodes; i++ {
			from := base + uint64(perm[i])*64
			to := base + uint64(perm[(i+1)%w.Nodes])*64
			v := uint64(rng.Intn(1 << 20))
			values[perm[i]] = v
			m.MustWrite64(from, to)
			m.MustWrite64(from+8, v)
			next[from] = to
		}
		head := base + uint64(perm[0])*64

		// Host reference walk.
		var sum uint64
		cur := head
		for h := 0; h < w.Hops; h++ {
			sum += values[(cur-base)/64]
			cur = next[cur]
		}
		var in Instance
		in.Regs[1] = head
		in.Regs[3] = uint64(w.Hops)
		in.Expected = sum
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// Compute is a pure-ALU loop: the cache-resident foil (and the default
// scavenger payload). It increments a counter Iters times.
type Compute struct {
	Iters     int
	Instances int
}

// Name implements Spec.
func (Compute) Name() string { return "compute" }

const computeAsm = `
main:
    addi r2, r2, 1
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    mov  r1, r2
    halt
`

// Build implements Spec.
func (w Compute) Build(_ *mem.Memory, _ *rand.Rand) (*Built, error) {
	if w.Iters < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("compute: need ≥1 iters and instances")
	}
	b := &Built{Prog: isa.MustAssemble(computeAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		var in Instance
		in.Regs[3] = uint64(w.Iters)
		in.Expected = uint64(w.Iters)
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// ArrayScan sums a contiguous array: sequential accesses that hit in the
// caches after the first touch of each line, so profile-guided
// instrumentation should leave it essentially alone.
type ArrayScan struct {
	N         int
	Instances int
}

// Name implements Spec.
func (ArrayScan) Name() string { return "scan" }

const scanAsm = `
main:
    load r4, [r1]
    add  r3, r3, r4
    addi r1, r1, 8
    addi r2, r2, -1
    cmpi r2, 0
    jgt  main
    mov  r1, r3
    halt
`

// Build implements Spec.
func (w ArrayScan) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.N < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("array scan: need ≥1 elements and instances")
	}
	b := &Built{Prog: isa.MustAssemble(scanAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		base := m.Alloc(uint64(w.N)*8, 64)
		var sum uint64
		for i := 0; i < w.N; i++ {
			v := uint64(rng.Intn(1 << 16))
			m.MustWrite64(base+uint64(i)*8, v)
			sum += v
		}
		var in Instance
		in.Regs[1] = base
		in.Regs[2] = uint64(w.N)
		in.Expected = sum
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// PaddedChase is a pointer chase with a configurable compute loop between
// hops. The F1 spectrum experiment uses it to model applications whose
// per-event compute scales with event duration (keeping the un-hidden
// stall fraction roughly constant across the duration axis).
type PaddedChase struct {
	// Nodes, Hops and Instances as in PointerChase.
	Nodes, Hops, Instances int
	// Pad is the number of filler-loop iterations between hops; each
	// iteration costs ~3 cycles.
	Pad int
}

// Name implements Spec.
func (PaddedChase) Name() string { return "padchase" }

// Register plan: r1=cursor, r2=payload accumulator, r3=remaining hops,
// r7=pad count, r6=pad scratch.
const paddedChaseAsm = `
main:
    load r4, [r1+8]
    add  r2, r2, r4
    load r1, [r1]
    mov  r6, r7
pad:
    cmpi r6, 0
    jle  pad_done
    addi r6, r6, -1
    jmp  pad
pad_done:
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    mov  r1, r2
    halt
`

// Build implements Spec.
func (w PaddedChase) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Nodes < 2 || w.Hops < 1 || w.Instances < 1 || w.Pad < 0 {
		return nil, fmt.Errorf("padded chase: need ≥2 nodes, ≥1 hops, ≥1 instances, pad ≥ 0")
	}
	inner := PointerChase{Nodes: w.Nodes, Hops: w.Hops, Instances: w.Instances}
	built, err := inner.Build(m, rng)
	if err != nil {
		return nil, err
	}
	built.Prog = isa.MustAssemble(paddedChaseAsm)
	for i := range built.Instances {
		built.Instances[i].Regs[7] = uint64(w.Pad)
	}
	return built, nil
}

// Package workloads provides the benchmark programs the experiments run:
// memory-bound kernels from the paper's motivating domains (pointer
// chasing, database hash joins and index lookups — the "killer
// nanoseconds" workloads [28]) plus cache-friendly and compute-bound
// foils.
//
// Each workload is built twice: the virtual-ISA program that the simulator
// executes and the instrumenter rewrites, and a host-side Go reference
// that computes the expected result over the same simulated memory. Every
// run of every experiment validates against the reference, so a
// miscompiled rewrite or an unsound live mask turns into a hard test
// failure rather than a plausible-looking number.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Instance is one coroutine's worth of work: its initial registers and
// the architecturally expected result (R1 at HALT).
type Instance struct {
	Regs     [isa.NumRegs]uint64
	Expected uint64
}

// Built is the output of one Spec build: the program (entry at symbol
// "main") and its instances.
type Built struct {
	Prog      *isa.Program
	Instances []Instance
}

// Spec describes a buildable workload.
type Spec interface {
	// Name identifies the workload in scenarios and reports.
	Name() string
	// Build allocates the workload's data in m and returns its program
	// and instances. Builders draw all randomness from rng so scenarios
	// are reproducible.
	Build(m *mem.Memory, rng *rand.Rand) (*Built, error)
}

// Part is one workload inside a composed scenario.
type Part struct {
	Name      string
	Entry     int
	Instances []Instance
	// StackTops holds one stack top per instance, allocated by Compose.
	StackTops []uint64
}

// Scenario is a composed machine program: one or more workloads linked
// into a single image over a shared memory.
type Scenario struct {
	Mem   *mem.Memory
	Prog  *isa.Program
	Image *isa.Image
	Parts []Part
}

// Part returns the named part, or nil.
func (s *Scenario) Part(name string) *Part {
	for i := range s.Parts {
		if s.Parts[i].Name == name {
			return &s.Parts[i]
		}
	}
	return nil
}

// stackSize is the per-instance simulated stack reservation.
const stackSize = 4096

// Compose builds the specs into a fresh memory of memBytes and links
// their programs into one image. Each instance gets its own stack.
func Compose(memBytes uint64, seed int64, specs ...Spec) (*Scenario, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workloads: no specs")
	}
	m := mem.NewMemory(memBytes)
	rng := rand.New(rand.NewSource(seed))
	combined := &isa.Program{Symbols: map[string]int{}}
	sc := &Scenario{Mem: m}

	for _, spec := range specs {
		built, err := safeBuild(spec, m, rng)
		if err != nil {
			return nil, fmt.Errorf("workloads: building %s: %w", spec.Name(), err)
		}
		offset := len(combined.Instrs)
		for _, in := range built.Prog.Instrs {
			if in.Op.IsBranch() {
				in.Imm += int64(offset)
			}
			combined.Instrs = append(combined.Instrs, in)
		}
		entry := offset
		for name, idx := range built.Prog.Symbols {
			combined.Symbols[spec.Name()+"."+name] = idx + offset
			if name == "main" {
				entry = idx + offset
			}
		}
		part := Part{Name: spec.Name(), Entry: entry, Instances: built.Instances}
		for range built.Instances {
			base := m.Alloc(stackSize, 16)
			part.StackTops = append(part.StackTops, base+stackSize)
		}
		sc.Parts = append(sc.Parts, part)
	}
	if err := combined.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: linked program invalid: %w", err)
	}
	sc.Prog = combined
	sc.Image = isa.Encode(combined)
	return sc, nil
}

// safeBuild converts allocator exhaustion panics into errors.
func safeBuild(spec Spec, m *mem.Memory, rng *rand.Rand) (b *Built, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return spec.Build(m, rng)
}

package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// SkipList searches a four-level skip list — the ordered-index structure
// used by main-memory databases (e.g. MemSQL) and LSM memtables. Every
// level descent is a dependent pointer dereference over nodes scattered
// through memory, so a large list is miss-bound at every step: the
// paper's §2 database motivation with a more irregular access pattern
// than the BST.
type SkipList struct {
	// Keys is the number of list elements.
	Keys int
	// Lookups is the number of searches per instance.
	Lookups int
	// Instances is the number of independent lists/coroutines.
	Instances int
}

// Name implements Spec.
func (SkipList) Name() string { return "skiplist" }

// maxLevel is the fixed tower height: ~log2 of the largest supported list,
// so searches visit O(log n) nodes as in a production skip list.
const maxLevel = 13

// Node layout: [key, value, next0 .. next12], 120 bytes in a 128-byte
// slot. Register plan: r12=head, r3=lookup cursor, r4=remaining,
// r5=accumulator, r6=key, r7=cur, r8=level offset (16 + 8*level),
// r9=candidate, r10=candidate key, r11=scratch.
const skipListAsm = `
main:
    mov  r12, r1
kloop:
    load r6, [r3]
    mov  r7, r12
    movi r8, 112         ; next[maxLevel-1]
lvl:
    add  r11, r7, r8
    load r9, [r11]       ; cur.next[lvl] (likely miss)
    cmpi r9, 0
    jeq  descend
    load r10, [r9]       ; next key (likely miss)
    cmp  r10, r6
    jge  descend
    mov  r7, r9
    jmp  lvl
descend:
    addi r8, r8, -8
    cmpi r8, 15
    jgt  lvl
    load r9, [r7+16]     ; candidate = cur.next[0]
    cmpi r9, 0
    jeq  not_found
    load r10, [r9]
    cmp  r10, r6
    jne  not_found
    load r11, [r9+8]
    add  r5, r5, r11
not_found:
    addi r3, r3, 8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  kloop
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w SkipList) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Keys < 1 || w.Lookups < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("skip list: need ≥1 keys, lookups and instances")
	}
	b := &Built{Prog: isa.MustAssemble(skipListAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		// Distinct keys ≥ 1 (0 is the head sentinel), sorted.
		keySet := map[uint64]bool{}
		for len(keySet) < w.Keys {
			keySet[uint64(1+rng.Intn(1<<30))] = true
		}
		keys := make([]uint64, 0, w.Keys)
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		// Geometric tower heights, and node slots allocated in shuffled
		// order so addresses are uncorrelated with key order (no stream
		// prefetching during descent).
		heights := make([]int, w.Keys)
		for i := range heights {
			h := 1
			for h < maxLevel && rng.Intn(2) == 0 {
				h++
			}
			heights[i] = h
		}
		addrs := make([]uint64, w.Keys)
		for _, i := range rng.Perm(w.Keys) {
			addrs[i] = m.Alloc(128, 64)
		}
		head := m.Alloc(128, 64)
		values := make(map[uint64]uint64, w.Keys)
		for i, k := range keys {
			v := uint64(rng.Intn(1 << 20))
			values[k] = v
			m.MustWrite64(addrs[i], k)
			m.MustWrite64(addrs[i]+8, v)
			for l := 0; l < maxLevel; l++ {
				m.MustWrite64(addrs[i]+16+uint64(l)*8, 0)
			}
		}
		m.MustWrite64(head, 0)
		m.MustWrite64(head+8, 0)
		for l := 0; l < maxLevel; l++ {
			m.MustWrite64(head+16+uint64(l)*8, 0)
			prev := head
			for i := range keys {
				if heights[i] > l {
					m.MustWrite64(prev+16+uint64(l)*8, addrs[i])
					prev = addrs[i]
				}
			}
		}

		lkBase := m.Alloc(uint64(w.Lookups)*8, 64)
		var expected uint64
		for i := 0; i < w.Lookups; i++ {
			var key uint64
			if rng.Intn(2) == 0 {
				key = keys[rng.Intn(len(keys))]
			} else {
				key = uint64(1+rng.Intn(1<<30)) | 1<<30
			}
			m.MustWrite64(lkBase+uint64(i)*8, key)
			if v, ok := values[key]; ok {
				expected += v
			}
		}
		var in Instance
		in.Regs[1] = head
		in.Regs[3] = lkBase
		in.Regs[4] = uint64(w.Lookups)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// lcgMul/lcgAdd are the scatter workload's inline LCG constants; they fit
// in positive int32 so MULI sign-extension is a no-op and the host mirror
// is exact.
const (
	lcgMul = 0x41c64e6d
	lcgAdd = 12345
)

// Scatter performs random store-dominated updates over a large table —
// the write-side counterpart of the pointer chase. Each update computes a
// pseudo-random slot and stores into it: a write-allocate RFO miss on a
// cold line, the event class the store-instrumentation path hides. A
// final sequential pass checksums the table (validating the stores).
type Scatter struct {
	// Slots is the table size; footprint Slots × 64 bytes (one slot per
	// line so every cold store is an RFO miss).
	Slots int
	// Updates is the number of scattered stores per instance.
	Updates int
	// Instances is the number of independent tables/coroutines.
	Instances int
}

// Name implements Spec.
func (Scatter) Name() string { return "scatter" }

// Register plan: r1=table base, r2=slot mask, r3=remaining updates,
// r4=LCG state, r5=checksum accumulator, r6=slot scratch, r7=cursor,
// r8=remaining slots.
const scatterAsm = `
main:
    muli r4, r4, 0x41c64e6d
    addi r4, r4, 12345
    shri r6, r4, 8
    and  r6, r6, r2
    shli r6, r6, 6
    add  r6, r6, r1
    store [r6], r4        ; scattered store: RFO miss on a cold line
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    mov  r7, r1           ; checksum pass (sequential, prefetcher-covered)
    mov  r8, r2
    addi r8, r8, 1
csum:
    load r9, [r7]
    add  r5, r5, r9
    addi r7, r7, 64
    addi r8, r8, -1
    cmpi r8, 0
    jgt  csum
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w Scatter) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Slots < 1 || w.Slots&(w.Slots-1) != 0 {
		return nil, fmt.Errorf("scatter: slot count %d must be a power of two", w.Slots)
	}
	if w.Updates < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("scatter: need ≥1 updates and instances")
	}
	b := &Built{Prog: isa.MustAssemble(scatterAsm)}
	mask := uint64(w.Slots - 1)
	for inst := 0; inst < w.Instances; inst++ {
		base := m.Alloc(uint64(w.Slots)*64, 64)
		table := make([]uint64, w.Slots)
		for i := range table {
			m.MustWrite64(base+uint64(i)*64, 0)
		}
		seed := uint64(1 + rng.Intn(1<<30))
		// Host mirror of the update loop.
		state := seed
		for u := 0; u < w.Updates; u++ {
			state = state*lcgMul + lcgAdd
			slot := (state >> 8) & mask
			table[slot] = state
		}
		var expected uint64
		for _, v := range table {
			expected += v
		}
		var in Instance
		in.Regs[1] = base
		in.Regs[2] = mask
		in.Regs[3] = uint64(w.Updates)
		in.Regs[4] = seed
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

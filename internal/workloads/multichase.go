package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// MultiChase advances three independent pointer chains in lockstep. The
// three loads per iteration are adjacent and mutually independent — the
// exact shape the paper's yield-coalescing optimization targets (§3.2):
// one yield can amortize the switch across three prefetched misses.
type MultiChase struct {
	// Nodes is the length of each chain.
	Nodes int
	// Hops is the number of lockstep iterations per instance.
	Hops int
	// Instances is the number of independent chain triples.
	Instances int
}

// Name implements Spec.
func (MultiChase) Name() string { return "multichase" }

// Register plan: r1,r2,r3 = chain cursors, r4 = remaining hops,
// r5 = payload accumulator.
const multiChaseAsm = `
main:
    load r1, [r1]        ; three independent likely-missing loads
    load r2, [r2]
    load r3, [r3]
    load r6, [r1+8]      ; payloads (same lines, hot after the chase loads)
    load r7, [r2+8]
    load r8, [r3+8]
    add  r5, r5, r6
    add  r5, r5, r7
    add  r5, r5, r8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  main
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w MultiChase) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Nodes < 2 || w.Hops < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("multichase: need ≥2 nodes, ≥1 hops, ≥1 instances")
	}
	b := &Built{Prog: isa.MustAssemble(multiChaseAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		var heads [3]uint64
		nexts := make([]map[uint64]uint64, 3)
		vals := make([]map[uint64]uint64, 3)
		for c := 0; c < 3; c++ {
			base := m.Alloc(uint64(w.Nodes)*64, 64)
			perm := rng.Perm(w.Nodes)
			nexts[c] = make(map[uint64]uint64, w.Nodes)
			vals[c] = make(map[uint64]uint64, w.Nodes)
			for i := 0; i < w.Nodes; i++ {
				from := base + uint64(perm[i])*64
				to := base + uint64(perm[(i+1)%w.Nodes])*64
				v := uint64(rng.Intn(1 << 16))
				m.MustWrite64(from, to)
				m.MustWrite64(from+8, v)
				nexts[c][from] = to
				vals[c][from] = v
			}
			heads[c] = base + uint64(perm[0])*64
		}
		// Host reference: advance all three, then sum the payloads of the
		// new positions, exactly as the assembly does.
		cur := heads
		var sum uint64
		for h := 0; h < w.Hops; h++ {
			for c := 0; c < 3; c++ {
				cur[c] = nexts[c][cur[c]]
			}
			for c := 0; c < 3; c++ {
				sum += vals[c][cur[c]]
			}
		}
		var in Instance
		in.Regs[1] = heads[0]
		in.Regs[2] = heads[1]
		in.Regs[3] = heads[2]
		in.Regs[4] = uint64(w.Hops)
		in.Expected = sum
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

package workloads

import (
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// runScenario executes every instance of every part solo and checks the
// architectural result against the host reference.
func runScenario(t *testing.T, sc *Scenario) {
	t.Helper()
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := cpu.MustNewCore(cpu.DefaultConfig(), sc.Prog, sc.Mem, h)
	id := 0
	for _, part := range sc.Parts {
		for i, inst := range part.Instances {
			ctx := coro.NewContext(id, part.Entry, part.StackTops[i])
			id++
			ctx.Regs = inst.Regs
			ctx.Regs[15] = part.StackTops[i]
			var r cpu.StepResult
			for steps := 0; ; steps++ {
				if steps > 20_000_000 {
					t.Fatalf("%s[%d]: did not halt", part.Name, i)
				}
				if err := core.StepInto(ctx, false, &r); err != nil {
					t.Fatalf("%s[%d]: %v", part.Name, i, err)
				}
				if r.Halted {
					break
				}
			}
			if ctx.Result != inst.Expected {
				t.Errorf("%s[%d]: result %d, want %d", part.Name, i, ctx.Result, inst.Expected)
			}
		}
	}
}

func TestPointerChaseMatchesReference(t *testing.T) {
	sc, err := Compose(8<<20, 1, PointerChase{Nodes: 512, Hops: 2000, Instances: 3})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestComputeMatchesReference(t *testing.T) {
	sc, err := Compose(1<<20, 2, Compute{Iters: 1000, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestArrayScanMatchesReference(t *testing.T) {
	sc, err := Compose(8<<20, 3, ArrayScan{N: 4096, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestHashJoinMatchesReference(t *testing.T) {
	sc, err := Compose(32<<20, 4, HashJoin{
		BuildRows: 2000, Buckets: 1024, Probes: 500, MatchFraction: 0.7, Instances: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
	// Sanity: expected sums are nonzero (matches actually happen).
	for _, in := range sc.Parts[0].Instances {
		if in.Expected == 0 {
			t.Error("hash join expected sum is zero — no matches?")
		}
	}
}

func TestBinarySearchMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 5, BinarySearch{N: 8192, Lookups: 300, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestBSTMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 6, BST{Keys: 2000, Lookups: 300, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestComposeLinksMultipleWorkloads(t *testing.T) {
	sc, err := Compose(32<<20, 7,
		HashJoin{BuildRows: 500, Buckets: 256, Probes: 100, MatchFraction: 0.5, Instances: 1},
		PointerChase{Nodes: 128, Hops: 200, Instances: 2},
		Compute{Iters: 500, Instances: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Parts) != 3 {
		t.Fatalf("parts = %d", len(sc.Parts))
	}
	// Entries are distinct and ordered.
	if !(sc.Parts[0].Entry < sc.Parts[1].Entry && sc.Parts[1].Entry < sc.Parts[2].Entry) {
		t.Errorf("entries not ordered: %d %d %d", sc.Parts[0].Entry, sc.Parts[1].Entry, sc.Parts[2].Entry)
	}
	if sc.Part("chase") == nil || sc.Part("nope") != nil {
		t.Error("Part lookup wrong")
	}
	// Linked branches stay inside the program (Validate enforced), and
	// all results still match references after relocation.
	runScenario(t, sc)
}

func TestComposeDeterminism(t *testing.T) {
	build := func() *Scenario {
		sc, err := Compose(8<<20, 42, PointerChase{Nodes: 64, Hops: 100, Instances: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := build(), build()
	if a.Parts[0].Instances[0].Expected != b.Parts[0].Instances[0].Expected {
		t.Error("same seed must give identical scenarios")
	}
	if a.Parts[0].Instances[0].Regs != b.Parts[0].Instances[0].Regs {
		t.Error("initial registers differ across identical builds")
	}
}

func TestSpecValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	bad := []Spec{
		PointerChase{Nodes: 1, Hops: 1, Instances: 1},
		PointerChase{Nodes: 8, Hops: 0, Instances: 1},
		Compute{Iters: 0, Instances: 1},
		ArrayScan{N: 0, Instances: 1},
		HashJoin{BuildRows: 10, Buckets: 100, Probes: 10, Instances: 1}, // non-power-of-2
		HashJoin{BuildRows: 10, Buckets: 16, Probes: 10, MatchFraction: 2, Instances: 1},
		BinarySearch{N: 0, Lookups: 1, Instances: 1},
		BST{Keys: 0, Lookups: 1, Instances: 1},
	}
	for _, s := range bad {
		if _, err := s.Build(m, rng); err == nil {
			t.Errorf("%T should reject its config", s)
		}
	}
	if _, err := Compose(1<<20, 1); err == nil {
		t.Error("Compose with no specs should fail")
	}
}

func TestComposeOutOfMemoryIsError(t *testing.T) {
	_, err := Compose(1<<16, 1, PointerChase{Nodes: 1 << 20, Hops: 1, Instances: 1})
	if err == nil {
		t.Error("allocator exhaustion should surface as an error, not a panic")
	}
}

func TestMultiChaseMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 8, MultiChase{Nodes: 256, Hops: 500, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestMultiChaseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	if _, err := (MultiChase{Nodes: 1, Hops: 1, Instances: 1}).Build(m, rng); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSkipListMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 9, SkipList{Keys: 2000, Lookups: 300, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
	for _, in := range sc.Parts[0].Instances {
		if in.Expected == 0 {
			t.Error("skip list found nothing — links broken?")
		}
	}
}

func TestSkipListValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	if _, err := (SkipList{Keys: 0, Lookups: 1, Instances: 1}).Build(m, rng); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMixedChaseMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 10, MixedChase{ColdNodes: 512, HotNodes: 16, Hops: 800, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestUnrolledComputeMatchesReference(t *testing.T) {
	sc, err := Compose(4<<20, 11, UnrolledCompute{BlockInstrs: 200, Iters: 50, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestPaddedChaseMatchesReference(t *testing.T) {
	sc, err := Compose(8<<20, 12, PaddedChase{Nodes: 256, Hops: 400, Pad: 5, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
}

func TestAccelStreamMatchesReference(t *testing.T) {
	sc, err := Compose(8<<20, 13, AccelStream{Blocks: 300, Pad: 5, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
	for _, in := range sc.Parts[0].Instances {
		if in.Expected == 0 {
			t.Error("accelerator checksum is zero")
		}
	}
}

func TestAccelStreamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	if _, err := (AccelStream{Blocks: 0, Pad: 1, Instances: 1}).Build(m, rng); err == nil {
		t.Error("bad config accepted")
	}
}

func TestScatterMatchesReference(t *testing.T) {
	sc, err := Compose(16<<20, 14, Scatter{Slots: 1024, Updates: 2000, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
	for _, in := range sc.Parts[0].Instances {
		if in.Expected == 0 {
			t.Error("scatter checksum is zero")
		}
	}
}

func TestScatterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	if _, err := (Scatter{Slots: 1000, Updates: 1, Instances: 1}).Build(m, rng); err == nil {
		t.Error("non-power-of-two slots accepted")
	}
	if _, err := (Scatter{Slots: 16, Updates: 0, Instances: 1}).Build(m, rng); err == nil {
		t.Error("zero updates accepted")
	}
}

func TestBTreeMatchesReference(t *testing.T) {
	sc, err := Compose(32<<20, 15, BTree{Keys: 5000, Lookups: 400, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, sc)
	for _, in := range sc.Parts[0].Instances {
		if in.Expected == 0 {
			t.Error("btree found nothing")
		}
	}
}

func TestBTreeSmallTrees(t *testing.T) {
	// Single-leaf and two-level trees exercise the degenerate shapes.
	for _, keys := range []int{1, 3, 7, 8, 50} {
		sc, err := Compose(8<<20, int64(20+keys), BTree{Keys: keys, Lookups: 60, Instances: 1})
		if err != nil {
			t.Fatalf("keys=%d: %v", keys, err)
		}
		runScenario(t, sc)
	}
}

func TestBTreeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mem.NewMemory(1 << 20)
	if _, err := (BTree{Keys: 0, Lookups: 1, Instances: 1}).Build(m, rng); err == nil {
		t.Error("bad config accepted")
	}
}

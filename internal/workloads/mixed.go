package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// MixedChase interleaves a DRAM-resident pointer chase with an L1-resident
// one in the same loop: one static load that nearly always misses next to
// two that nearly always hit. It is the discriminating workload for the
// instrumentation-threshold trade-off (E5) — a per-site policy must
// instrument the cold load and leave the hot ones alone.
type MixedChase struct {
	// ColdNodes sizes the missing chain (footprint ColdNodes × 64 B).
	ColdNodes int
	// HotNodes sizes the cache-resident chain; keep it within L1.
	HotNodes int
	// Hops is the iterations per instance.
	Hops int
	// Instances is the number of independent chain pairs.
	Instances int
}

// Name implements Spec.
func (MixedChase) Name() string { return "mixedchase" }

// Register plan: r1=cold cursor, r2=hot cursor, r5=hot payload, r6=payload
// accumulator, r3=remaining hops.
const mixedChaseAsm = `
main:
    load r1, [r1]        ; cold chain: likely miss
    load r2, [r2]        ; hot chain: cache hit
    load r5, [r2+8]      ; hot payload: cache hit
    add  r6, r6, r5
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    add  r1, r1, r6
    halt
`

// Build implements Spec.
func (w MixedChase) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.ColdNodes < 2 || w.HotNodes < 2 || w.Hops < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("mixed chase: need ≥2 nodes per chain, ≥1 hops and instances")
	}
	b := &Built{Prog: isa.MustAssemble(mixedChaseAsm)}
	mkChain := func(n int) (uint64, map[uint64]uint64, map[uint64]uint64) {
		base := m.Alloc(uint64(n)*64, 64)
		perm := rng.Perm(n)
		next := make(map[uint64]uint64, n)
		vals := make(map[uint64]uint64, n)
		for i := 0; i < n; i++ {
			from := base + uint64(perm[i])*64
			to := base + uint64(perm[(i+1)%n])*64
			v := uint64(rng.Intn(1 << 16))
			m.MustWrite64(from, to)
			m.MustWrite64(from+8, v)
			next[from] = to
			vals[from] = v
		}
		return base + uint64(perm[0])*64, next, vals
	}
	for inst := 0; inst < w.Instances; inst++ {
		coldHead, coldNext, _ := mkChain(w.ColdNodes)
		hotHead, hotNext, hotVals := mkChain(w.HotNodes)
		cold, hot := coldHead, hotHead
		var acc uint64
		for i := 0; i < w.Hops; i++ {
			cold = coldNext[cold]
			hot = hotNext[hot]
			acc += hotVals[hot]
		}
		var in Instance
		in.Regs[1] = coldHead
		in.Regs[2] = hotHead
		in.Regs[3] = uint64(w.Hops)
		in.Expected = cold + acc
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// UnrolledCompute is a compute loop with a long straight-line body — the
// workload whose scavenger-yield spacing is governed by the target
// interval rather than by loop back-edges (E9). The body is BlockInstrs
// unrolled increments.
type UnrolledCompute struct {
	// BlockInstrs is the straight-line body length in instructions.
	BlockInstrs int
	// Iters is the number of body executions per instance.
	Iters int
	// Instances is the coroutine count.
	Instances int
}

// Name implements Spec.
func (UnrolledCompute) Name() string { return "unrolled" }

// Build implements Spec.
func (w UnrolledCompute) Build(_ *mem.Memory, _ *rand.Rand) (*Built, error) {
	if w.BlockInstrs < 1 || w.Iters < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("unrolled compute: need ≥1 block instrs, iters and instances")
	}
	var src strings.Builder
	src.WriteString("main:\n")
	for i := 0; i < w.BlockInstrs; i++ {
		src.WriteString("    addi r2, r2, 1\n")
	}
	src.WriteString(`
    addi r3, r3, -1
    cmpi r3, 0
    jgt  main
    mov  r1, r2
    halt
`)
	b := &Built{Prog: isa.MustAssemble(src.String())}
	for inst := 0; inst < w.Instances; inst++ {
		var in Instance
		in.Regs[3] = uint64(w.Iters)
		in.Expected = uint64(w.BlockInstrs) * uint64(w.Iters)
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

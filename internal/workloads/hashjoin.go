package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// HashJoin probes a chained hash table — the database index-join kernel
// that motivated coroutine interleaving in CoroBase [23] and Psaropoulos
// et al. [53]. Each probe hashes a key, loads the bucket head (miss #1)
// and walks the chain (dependent misses), accumulating matched values.
type HashJoin struct {
	// BuildRows is the hash table's row count.
	BuildRows int
	// Buckets is the bucket-array size; must be a power of two.
	Buckets int
	// Probes is the number of lookups per instance.
	Probes int
	// MatchFraction is the probability a probe key exists in the table.
	MatchFraction float64
	// Instances is the number of independent tables/coroutines.
	Instances int
}

// Name implements Spec.
func (HashJoin) Name() string { return "hashjoin" }

// hashMul is the multiplicative hash constant; it fits in a positive
// int32 so MULI sign-extension is a no-op and the host mirror below is
// exact.
const hashMul = 0x45d9f3b

// hashIndex mirrors the assembly hash: ((key * hashMul) >> 16) & mask.
func hashIndex(key uint64, mask uint64) uint64 {
	return (key * hashMul >> 16) & mask
}

// Register plan: r1=bucket base, r2=bucket mask, r3=probe-key cursor,
// r4=remaining probes, r5=accumulator, r6=key, r7=scratch/bucket addr,
// r8=node, r9=node key, r10=node value.
const hashJoinAsm = `
main:
    load r6, [r3]            ; probe key
    muli r7, r6, 0x45d9f3b
    shri r7, r7, 16
    and  r7, r7, r2
    shli r7, r7, 3
    add  r7, r7, r1
    load r8, [r7]            ; bucket head (likely miss)
chain:
    cmpi r8, 0
    jeq  next_probe
    load r9, [r8]            ; node key (likely miss)
    cmp  r9, r6
    jeq  match
    load r8, [r8+16]         ; next node (likely miss)
    jmp  chain
match:
    load r10, [r8+8]         ; value
    add  r5, r5, r10
next_probe:
    addi r3, r3, 8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  main
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w HashJoin) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.BuildRows < 1 || w.Probes < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("hash join: need ≥1 rows, probes and instances")
	}
	if w.Buckets < 1 || w.Buckets&(w.Buckets-1) != 0 {
		return nil, fmt.Errorf("hash join: bucket count %d must be a power of two", w.Buckets)
	}
	if w.MatchFraction < 0 || w.MatchFraction > 1 {
		return nil, fmt.Errorf("hash join: match fraction %f out of range", w.MatchFraction)
	}
	mask := uint64(w.Buckets - 1)
	b := &Built{Prog: isa.MustAssemble(hashJoinAsm)}

	for inst := 0; inst < w.Instances; inst++ {
		bucketBase := m.Alloc(uint64(w.Buckets)*8, 64)
		for i := 0; i < w.Buckets; i++ {
			m.MustWrite64(bucketBase+uint64(i)*8, 0)
		}
		// Host mirror of the table: bucket -> chain of (key, value) in
		// walk order (push-front, so reverse insertion order).
		type row struct{ key, value, addr uint64 }
		chains := make([][]row, w.Buckets)
		keys := make([]uint64, 0, w.BuildRows)
		for i := 0; i < w.BuildRows; i++ {
			key := uint64(rng.Intn(1 << 30))
			value := uint64(rng.Intn(1 << 20))
			keys = append(keys, key)
			node := m.Alloc(32, 64) // [key, value, next]
			idx := hashIndex(key, mask)
			head := m.MustRead64(bucketBase + idx*8)
			m.MustWrite64(node, key)
			m.MustWrite64(node+8, value)
			m.MustWrite64(node+16, head)
			m.MustWrite64(bucketBase+idx*8, node)
			chains[idx] = append([]row{{key, value, node}}, chains[idx]...)
		}
		// Probe keys.
		probeBase := m.Alloc(uint64(w.Probes)*8, 64)
		var expected uint64
		for i := 0; i < w.Probes; i++ {
			var key uint64
			if rng.Float64() < w.MatchFraction {
				key = keys[rng.Intn(len(keys))]
			} else {
				key = uint64(rng.Intn(1<<30)) | 1<<30 // outside build range
			}
			m.MustWrite64(probeBase+uint64(i)*8, key)
			// Host walk: first key match in chain order wins.
			for _, r := range chains[hashIndex(key, mask)] {
				if r.key == key {
					expected += r.value
					break
				}
			}
		}
		var in Instance
		in.Regs[1] = bucketBase
		in.Regs[2] = mask
		in.Regs[3] = probeBase
		in.Regs[4] = uint64(w.Probes)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

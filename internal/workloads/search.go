package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// BinarySearch performs repeated lower-bound searches over a large sorted
// array — the other classic "killer nanoseconds" kernel [28]: every probe
// visits O(log n) cache lines scattered across the array.
type BinarySearch struct {
	// N is the array length (footprint N × 8 bytes).
	N int
	// Lookups is the number of searches per instance.
	Lookups int
	// Instances is the number of independent arrays/coroutines.
	Instances int
}

// Name implements Spec.
func (BinarySearch) Name() string { return "binsearch" }

// Register plan: r1=array base, r2=n, r3=lookup-key cursor, r4=remaining
// lookups, r5=accumulator (sum of lower-bound indices), r6=key, r7=lo,
// r8=hi, r9=mid, r10=addr, r11=A[mid].
const binSearchAsm = `
main:
    load r6, [r3]
    movi r7, 0
    mov  r8, r2
bs:
    cmp  r7, r8
    jge  bs_done
    add  r9, r7, r8
    shri r9, r9, 1
    shli r10, r9, 3
    add  r10, r10, r1
    load r11, [r10]          ; A[mid] (likely miss on a big array)
    cmp  r11, r6
    jge  keep_hi
    addi r7, r9, 1
    jmp  bs
keep_hi:
    mov  r8, r9
    jmp  bs
bs_done:
    add  r5, r5, r7
    addi r3, r3, 8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  main
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w BinarySearch) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.N < 1 || w.Lookups < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("binary search: need ≥1 elements, lookups and instances")
	}
	b := &Built{Prog: isa.MustAssemble(binSearchAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		arr := make([]uint64, w.N)
		var k uint64
		base := m.Alloc(uint64(w.N)*8, 64)
		for i := 0; i < w.N; i++ {
			k += uint64(1 + rng.Intn(9))
			arr[i] = k
			m.MustWrite64(base+uint64(i)*8, k)
		}
		keyBase := m.Alloc(uint64(w.Lookups)*8, 64)
		var expected uint64
		maxKey := arr[w.N-1]
		for i := 0; i < w.Lookups; i++ {
			key := uint64(rng.Int63n(int64(maxKey) + 2))
			m.MustWrite64(keyBase+uint64(i)*8, key)
			// Host lower bound, mirroring the assembly exactly.
			lo, hi := uint64(0), uint64(w.N)
			for lo < hi {
				mid := (lo + hi) >> 1
				if arr[mid] < key {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			expected += lo
		}
		var in Instance
		in.Regs[1] = base
		in.Regs[2] = uint64(w.N)
		in.Regs[3] = keyBase
		in.Regs[4] = uint64(w.Lookups)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

// BST looks up keys in an unbalanced binary search tree built from random
// insertions: the pointer-chasing index structure from the paper's §2
// database motivation, with data-dependent branch structure.
type BST struct {
	// Keys is the number of tree nodes.
	Keys int
	// Lookups is the number of searches per instance.
	Lookups int
	// Instances is the number of independent trees/coroutines.
	Instances int
}

// Name implements Spec.
func (BST) Name() string { return "bst" }

// Node layout: [key, value, left, right], 32 bytes. Register plan:
// r1=root (then result), r3=lookup cursor, r4=remaining, r5=accumulator,
// r6=key, r7=cur, r8=node key, r9=value.
const bstAsm = `
main:
    mov  r12, r1             ; preserve root across the loop
lookup:
    load r6, [r3]
    mov  r7, r12
walk:
    cmpi r7, 0
    jeq  not_found
    load r8, [r7]            ; node key (likely miss)
    cmp  r8, r6
    jeq  found
    jlt  go_right
    load r7, [r7+16]         ; left child (likely miss)
    jmp  walk
go_right:
    load r7, [r7+24]         ; right child (likely miss)
    jmp  walk
found:
    load r9, [r7+8]
    add  r5, r5, r9
not_found:
    addi r3, r3, 8
    addi r4, r4, -1
    cmpi r4, 0
    jgt  lookup
    mov  r1, r5
    halt
`

// Build implements Spec.
func (w BST) Build(m *mem.Memory, rng *rand.Rand) (*Built, error) {
	if w.Keys < 1 || w.Lookups < 1 || w.Instances < 1 {
		return nil, fmt.Errorf("bst: need ≥1 keys, lookups and instances")
	}
	b := &Built{Prog: isa.MustAssemble(bstAsm)}
	for inst := 0; inst < w.Instances; inst++ {
		values := map[uint64]uint64{}
		var root uint64 // node address, 0 = empty
		var keys []uint64
		for len(values) < w.Keys {
			key := uint64(1 + rng.Intn(1<<30))
			if _, dup := values[key]; dup {
				continue
			}
			value := uint64(rng.Intn(1 << 20))
			values[key] = value
			keys = append(keys, key)
			node := m.Alloc(32, 64)
			m.MustWrite64(node, key)
			m.MustWrite64(node+8, value)
			m.MustWrite64(node+16, 0)
			m.MustWrite64(node+24, 0)
			if root == 0 {
				root = node
				continue
			}
			cur := root
			for {
				ck := m.MustRead64(cur)
				var slot uint64
				if key < ck {
					slot = cur + 16
				} else {
					slot = cur + 24
				}
				child := m.MustRead64(slot)
				if child == 0 {
					m.MustWrite64(slot, node)
					break
				}
				cur = child
			}
		}
		lkBase := m.Alloc(uint64(w.Lookups)*8, 64)
		var expected uint64
		for i := 0; i < w.Lookups; i++ {
			var key uint64
			if rng.Intn(2) == 0 {
				key = keys[rng.Intn(len(keys))]
			} else {
				key = uint64(1+rng.Intn(1<<30)) | 1<<30
			}
			m.MustWrite64(lkBase+uint64(i)*8, key)
			if v, ok := values[key]; ok {
				expected += v
			}
		}
		var in Instance
		in.Regs[1] = root
		in.Regs[3] = lkBase
		in.Regs[4] = uint64(w.Lookups)
		in.Expected = expected
		b.Instances = append(b.Instances, in)
	}
	return b, nil
}

package cpu

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestRunSuperblockSteadyStateAllocFree pins the trace tier's allocation
// contract: activations — specialized ALU loops, memoized memory steps,
// guarded branches, lap-batched counter flushes — perform zero heap
// allocations per RunBlock call.
func TestRunSuperblockSteadyStateAllocFree(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	core.InstallPlan(fastRuns(prog))
	if err := core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
		t.Fatal(err)
	}
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res BlockResult
	for i := 0; i < 50; i++ {
		if err := core.RunBlock(ctx, false, 100, 0, &res); err != nil {
			t.Fatalf("warm-up block %d: %v", i, err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := core.RunBlock(ctx, false, 100, 0, &res); err != nil {
			t.Fatalf("block: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state superblock RunBlock allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCoreSuperblock measures the superblock tier on the identical
// ALU-heavy loop BenchmarkCoreBlock runs: the 64-instruction body plus
// latch compiles into one loop trace whose homogeneous addi run takes
// the switch-free micro-op loop. The ns/instr metric against
// BenchmarkCoreBlock's is the tier's speedup.
func BenchmarkCoreSuperblock(b *testing.B) {
	const blockFuel = 1024
	prog := aluLoopProgram(64)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	core.InstallPlan(fastRuns(prog))
	if err := core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
		b.Fatal(err)
	}
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res BlockResult
	if err := core.RunBlock(ctx, false, 10_000, 0, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.RunBlock(ctx, false, blockFuel, 0, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blockFuel), "ns/instr")
}

// BenchmarkCoreSuperblockMem measures the trace tier on a loop with
// resident memory traffic — the shape the residency memo targets: after
// the first lap both lines are L1-resident and every subsequent access
// should take the memoized AccessResident path instead of the full
// hierarchy walk.
func BenchmarkCoreSuperblockMem(b *testing.B) {
	const blockFuel = 1024
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        load r3, [r13]
        load r4, [r13+8]
        add  r5, r3, r4
        cmpi r1, 1073741824
        jlt  loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	core.InstallPlan(fastRuns(prog))
	if err := core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
		b.Fatal(err)
	}
	ctx := coro.NewContext(0, 0, m.Size()-8)
	ctx.Regs[13] = 4096

	var res BlockResult
	if err := core.RunBlock(ctx, false, 10_000, 0, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.RunBlock(ctx, false, blockFuel, 0, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blockFuel), "ns/instr")
}

package cpu

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file is the basic-block fast-path engine. The paper's measured
// runs spend almost all retired instructions in straight-line code
// between yield points — that is exactly why profile-guided yield
// insertion works — so the per-instruction dispatch cost of StepInto
// (call, StepResult reset, observer nil-check) dominates simulator time
// in exactly the runs we care most about. RunBlock retires whole
// straight-line runs in one tight loop: pure-ALU prefixes execute fused
// with their aggregate busy cost precomputed in a BlockPlan, memory
// operations still consult the hierarchy at their exact per-instruction
// cycle (MSHR and fill timing are unchanged), and control returns to the
// executor only at yields, halts, faults, fuel exhaustion, or — in SMT
// block mode — exposed stalls and quantum expiry.
//
// The contract with StepInto is byte-identical observable behaviour:
// registers, flags, the clock, every per-PC counter, hierarchy state and
// fault surfaces must not differ. internal/cpu/block_test.go pins this
// differentially over random programs; FuzzBlockVsStep extends it to
// arbitrary seeds. Profiling runs must see every retirement, so RunBlock
// falls back to a StepInto loop whenever observers are attached (or no
// plan is installed) — the PEBS/LBR event stream stays bit-identical.

// BlockRun is one straight-line run [Start, End) of instructions
// containing no control transfer (branch, call, ret), no yield and no
// halt. Runs are typically derived from the binary CFG by
// bincfg.FastPathRuns and installed on a core with InstallPlan.
type BlockRun struct {
	Start, End int
}

// BlockPlan is the per-program fast-path metadata, precomputed once and
// indexed by PC in RunBlock's inner loop. All three tables carry a
// sentinel entry at len(instrs) so the backward construction scan and
// the engine never bounds-branch separately.
type BlockPlan struct {
	// runEnd[pc] is one past the last instruction of the straight-line
	// run containing pc: the position of the next branch/call/ret/
	// yield/halt at or after pc. Stopper PCs map to themselves.
	runEnd []int32
	// aluEnd[pc] is one past the last instruction of the maximal fused
	// prefix starting at pc: consecutive pure-ALU instructions (moves,
	// arithmetic, logic, shifts, compares) that cannot fault, stall,
	// touch memory, or transfer control. Non-fusable PCs map to
	// themselves.
	aluEnd []int32
	// aluCost[pc] is the aggregate busy cost of [pc, aluEnd[pc]).
	aluCost []uint64
}

// RunEnd returns one past the last instruction of the straight-line run
// containing pc (pc itself for branches, calls, rets, yields and halts).
func (p *BlockPlan) RunEnd(pc int) int { return int(p.runEnd[pc]) }

// FusedEnd returns one past the last instruction of the fused pure-ALU
// segment starting at pc (pc itself when instrs[pc] is not fusable).
func (p *BlockPlan) FusedEnd(pc int) int { return int(p.aluEnd[pc]) }

// FusedCost returns the aggregate busy cost of [pc, FusedEnd(pc)).
func (p *BlockPlan) FusedCost(pc int) uint64 { return p.aluCost[pc] }

// fusableALU reports whether op can run inside a fused segment: it
// writes only registers and flags, costs a statically known number of
// busy cycles, and can neither fault nor stall nor transfer control.
func fusableALU(op isa.Op) bool {
	return op <= isa.OpShrI || op == isa.OpCmp || op == isa.OpCmpI
}

// blockStopper reports whether op ends a straight-line run: the
// executor (or the engine's own branch handling) takes over at it.
func blockStopper(op isa.Op) bool {
	return op.IsBranch() || op == isa.OpRet || op == isa.OpHalt || op.IsYield()
}

// InstallPlan precomputes the fast-path metadata over the given
// straight-line runs (typically bincfg.FastPathRuns) and enables the
// block engine on this core. Runs only widen runEnd bookkeeping; the
// fused-segment tables are derived from the instruction stream and the
// core's cost table alone, so a conservative (even empty) run set is
// safe — RunBlock degrades to per-instruction dispatch, never to wrong
// answers.
func (c *Core) InstallPlan(runs []BlockRun) {
	n := len(c.instrs)
	p := &BlockPlan{
		runEnd:  make([]int32, n+1),
		aluEnd:  make([]int32, n+1),
		aluCost: make([]uint64, n+1),
	}
	for i := 0; i <= n; i++ {
		p.runEnd[i] = int32(i)
	}
	for _, r := range runs {
		if r.Start < 0 || r.End > n || r.Start >= r.End {
			continue
		}
		for pc := r.Start; pc < r.End; pc++ {
			p.runEnd[pc] = int32(r.End)
		}
	}
	// Backward scan: aluEnd[pc+1] is always >= pc+1 (non-fusable PCs map
	// to themselves, the sentinel maps to n), so a fusable pc simply
	// inherits its successor's segment end and adds its own cost.
	p.aluEnd[n] = int32(n)
	for pc := n - 1; pc >= 0; pc-- {
		if fusableALU(c.instrs[pc].Op) {
			p.aluEnd[pc] = p.aluEnd[pc+1]
			p.aluCost[pc] = c.costs[c.instrs[pc].Op] + p.aluCost[pc+1]
		} else {
			p.aluEnd[pc] = int32(pc)
		}
	}
	c.plan = p
}

// HasPlan reports whether a block plan is installed.
func (c *Core) HasPlan() bool { return c.plan != nil }

// ClearPlan removes the block plan, forcing RunBlock onto the
// per-instruction StepInto fallback (used by equivalence tests).
func (c *Core) ClearPlan() { c.plan = nil }

// Plan returns the installed block plan, or nil.
func (c *Core) Plan() *BlockPlan { return c.plan }

// BlockResult reports why a RunBlock call stopped and what it retired.
type BlockResult struct {
	// Steps is the number of instructions retired by this call.
	Steps uint64
	// Busy is the busy-cycle total retired by this call (the SMT
	// executor accounts its quantum from it).
	Busy uint64
	// Stall is the exposed stall of the final instruction, reported
	// only in block mode (the SMT executor blocks the context on it).
	// In coroutine mode stalls are applied to the clock inline, exactly
	// as StepInto does.
	Stall uint64

	Halted    bool
	Yield     bool // an OpYield retired; the executor decides whether to switch
	CondYield bool // an OpCYield retired
	LiveMask  isa.RegMask
}

// RunBlock retires straight-line instructions for ctx until one of:
//
//   - a YIELD or CYIELD retires (reported, with its live mask);
//   - the context halts;
//   - an execution fault (identical surface to StepInto);
//   - fuel instructions have retired;
//   - block mode only: an instruction exposes a memory stall, or the
//     accumulated busy cycles reach busyBudget (0 means unbounded).
//
// Branches, calls and returns are followed inline — they do not return
// control to the executor, which only ever needs to act at yields and
// halts. Semantics, clock movement and counter updates are byte-for-byte
// those of an equivalent StepInto sequence; when observers are attached
// (profiling runs) or no plan is installed, the call literally is a
// StepInto sequence, so the observer event stream is unchanged.
//
//shsim:noalloc
func (c *Core) RunBlock(ctx *coro.Context, block bool, fuel, busyBudget uint64, res *BlockResult) error {
	*res = BlockResult{}
	if len(c.observers) > 0 || c.plan == nil {
		return c.runBlockSlow(ctx, block, fuel, busyBudget, res)
	}
	if ctx.Halted {
		return c.fault(ctx.ID, ctx.PC, fmt.Errorf("stepping a halted context")) //shsim:alloc-ok cold fault path; ends the run
	}

	var (
		pc       = ctx.PC
		regs     = &ctx.Regs
		instrs   = c.instrs
		counters = c.Counters
		plan     = c.plan
		absorb   = c.Cfg.PipelineAbsorb
		steps    uint64
		busyAcc  uint64
		sbEntry  = c.sbEntry
		// InstallSuperblocks builds the entry table even when the deriver
		// found no traces; probing it per PC would then be pure overhead,
		// so the tier arms only when at least one trace exists.
		trySB = len(c.sbs) > 0
	)
	finish := func() {
		ctx.PC = pc
		res.Steps = steps
		res.Busy = busyAcc
	}

	for steps < fuel {
		if pc < 0 || pc >= len(instrs) {
			finish()
			return c.fault(ctx.ID, pc, fmt.Errorf("pc out of range")) //shsim:alloc-ok cold fault path; ends the run
		}

		// Superblock tier: when pc heads an installed trace, run its
		// specialized retire loop until it exits back to an exact
		// instruction boundary. A trace that cannot retire even one
		// instruction (fuel or budget on the very first step) disables
		// the tier for the rest of this call — fuel and budget only
		// shrink, so retrying it would loop forever.
		if trySB {
			if sbi := sbEntry[pc]; sbi >= 0 {
				done, progressed, err := c.runSuper(&c.sbs[sbi], ctx, block, fuel, busyBudget, res, &pc, &steps, &busyAcc)
				if err != nil {
					finish()
					return err
				}
				if done {
					finish()
					return nil
				}
				if !progressed {
					trySB = false
				}
				continue
			}
		}

		// Fused pure-ALU segment: registers and flags update in a tight
		// loop, clock and bulk counters are bumped once with the
		// precomputed aggregate cost. Falls through to scalar dispatch
		// when fuel or the SMT busy budget could expire mid-segment.
		if end := int(plan.aluEnd[pc]); end > pc {
			n := uint64(end - pc)
			segCost := plan.aluCost[pc]
			if n <= fuel-steps && (busyBudget == 0 || busyAcc+segCost < busyBudget) {
				for i := pc; i < end; i++ {
					in := &instrs[i]
					switch in.Op {
					case isa.OpNop:
					case isa.OpMovI:
						regs[in.Rd] = uint64(in.Imm)
					case isa.OpMov:
						regs[in.Rd] = regs[in.Rs1]
					case isa.OpAdd:
						regs[in.Rd] = regs[in.Rs1] + regs[in.Rs2]
					case isa.OpSub:
						regs[in.Rd] = regs[in.Rs1] - regs[in.Rs2]
					case isa.OpMul:
						regs[in.Rd] = regs[in.Rs1] * regs[in.Rs2]
					case isa.OpDiv:
						if regs[in.Rs2] == 0 {
							regs[in.Rd] = 0
						} else {
							regs[in.Rd] = regs[in.Rs1] / regs[in.Rs2]
						}
					case isa.OpAnd:
						regs[in.Rd] = regs[in.Rs1] & regs[in.Rs2]
					case isa.OpOr:
						regs[in.Rd] = regs[in.Rs1] | regs[in.Rs2]
					case isa.OpXor:
						regs[in.Rd] = regs[in.Rs1] ^ regs[in.Rs2]
					case isa.OpShl:
						regs[in.Rd] = regs[in.Rs1] << (regs[in.Rs2] & 63)
					case isa.OpShr:
						regs[in.Rd] = regs[in.Rs1] >> (regs[in.Rs2] & 63)
					case isa.OpAddI:
						regs[in.Rd] = regs[in.Rs1] + uint64(in.Imm)
					case isa.OpMulI:
						regs[in.Rd] = regs[in.Rs1] * uint64(in.Imm)
					case isa.OpAndI:
						regs[in.Rd] = regs[in.Rs1] & uint64(in.Imm)
					case isa.OpShlI:
						regs[in.Rd] = regs[in.Rs1] << (uint64(in.Imm) & 63)
					case isa.OpShrI:
						regs[in.Rd] = regs[in.Rs1] >> (uint64(in.Imm) & 63)
					case isa.OpCmp:
						ctx.Flags = sign(int64(regs[in.Rs1]), int64(regs[in.Rs2]))
					case isa.OpCmpI:
						ctx.Flags = sign(int64(regs[in.Rs1]), in.Imm)
					}
					counters.Exec[i]++
				}
				c.Now += segCost
				ctx.BusyCycles += segCost
				counters.TotalBusy += segCost
				counters.TotalRetired += n
				ctx.Retired += n
				busyAcc += segCost
				steps += n
				pc = end
				continue
			}
		}

		// Scalar dispatch: one instruction, StepInto semantics inlined
		// without the StepResult writes and observer checks.
		in := &instrs[pc]
		busy := c.costs[in.Op]
		var stall uint64
		next := pc + 1
		takenBranch := false
		halted := false
		yield := false
		condYield := false

		switch in.Op {
		case isa.OpNop:
		case isa.OpMovI:
			regs[in.Rd] = uint64(in.Imm)
		case isa.OpMov:
			regs[in.Rd] = regs[in.Rs1]
		case isa.OpAdd:
			regs[in.Rd] = regs[in.Rs1] + regs[in.Rs2]
		case isa.OpSub:
			regs[in.Rd] = regs[in.Rs1] - regs[in.Rs2]
		case isa.OpMul:
			regs[in.Rd] = regs[in.Rs1] * regs[in.Rs2]
		case isa.OpDiv:
			if regs[in.Rs2] == 0 {
				regs[in.Rd] = 0
			} else {
				regs[in.Rd] = regs[in.Rs1] / regs[in.Rs2]
			}
		case isa.OpAnd:
			regs[in.Rd] = regs[in.Rs1] & regs[in.Rs2]
		case isa.OpOr:
			regs[in.Rd] = regs[in.Rs1] | regs[in.Rs2]
		case isa.OpXor:
			regs[in.Rd] = regs[in.Rs1] ^ regs[in.Rs2]
		case isa.OpShl:
			regs[in.Rd] = regs[in.Rs1] << (regs[in.Rs2] & 63)
		case isa.OpShr:
			regs[in.Rd] = regs[in.Rs1] >> (regs[in.Rs2] & 63)
		case isa.OpAddI:
			regs[in.Rd] = regs[in.Rs1] + uint64(in.Imm)
		case isa.OpMulI:
			regs[in.Rd] = regs[in.Rs1] * uint64(in.Imm)
		case isa.OpAndI:
			regs[in.Rd] = regs[in.Rs1] & uint64(in.Imm)
		case isa.OpShlI:
			regs[in.Rd] = regs[in.Rs1] << (uint64(in.Imm) & 63)
		case isa.OpShrI:
			regs[in.Rd] = regs[in.Rs1] >> (uint64(in.Imm) & 63)
		case isa.OpCmp:
			ctx.Flags = sign(int64(regs[in.Rs1]), int64(regs[in.Rs2]))
		case isa.OpCmpI:
			ctx.Flags = sign(int64(regs[in.Rs1]), in.Imm)

		case isa.OpLoad, isa.OpStore:
			addr := regs[in.Rs1] + uint64(in.Imm)
			acc := c.Hier.AccessW(addr, c.Now, in.Op == isa.OpStore)
			if acc.Latency > absorb {
				stall += acc.Latency - absorb
				busy += absorb
			} else {
				busy += acc.Latency
			}
			if in.Op == isa.OpLoad {
				v, err := c.Mem.Read64(addr)
				if err != nil {
					finish()
					return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
				}
				regs[in.Rd] = v
				counters.Loads[pc]++
			} else {
				if err := c.Mem.Write64(addr, regs[in.Rs2]); err != nil {
					finish()
					return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
				}
				counters.Stores[pc]++
			}
			if acc.MissedL2 {
				counters.MissL2[pc]++
			}
			if acc.Level == mem.LevelDRAM {
				counters.MissL3[pc]++
			}

		case isa.OpJmp:
			next = in.Target()
			takenBranch = true
		case isa.OpJeq, isa.OpJne, isa.OpJlt, isa.OpJle, isa.OpJgt, isa.OpJge:
			if condHolds(in.Op, ctx.Flags) {
				next = in.Target()
				takenBranch = true
			}
		case isa.OpCall:
			sp := regs[isa.SP] - 8
			if err := c.Mem.Write64(sp, uint64(pc+1)); err != nil {
				finish()
				return c.fault(ctx.ID, pc, fmt.Errorf("call push: %w", err)) //shsim:alloc-ok cold fault path; ends the run
			}
			acc := c.Hier.Access(sp, c.Now)
			if acc.Latency > absorb {
				stall += acc.Latency - absorb
				busy += absorb
			} else {
				busy += acc.Latency
			}
			regs[isa.SP] = sp
			next = in.Target()
			takenBranch = true
		case isa.OpRet:
			sp := regs[isa.SP]
			ra, err := c.Mem.Read64(sp)
			if err != nil {
				finish()
				return c.fault(ctx.ID, pc, fmt.Errorf("ret pop: %w", err)) //shsim:alloc-ok cold fault path; ends the run
			}
			acc := c.Hier.Access(sp, c.Now)
			if acc.Latency > absorb {
				stall += acc.Latency - absorb
				busy += absorb
			} else {
				busy += acc.Latency
			}
			regs[isa.SP] = sp + 8
			if ra >= uint64(len(instrs)) {
				finish()
				return c.fault(ctx.ID, pc, fmt.Errorf("ret to invalid address %d", ra)) //shsim:alloc-ok cold fault path; ends the run
			}
			next = int(ra)
			takenBranch = true

		case isa.OpPrefetch:
			addr := regs[in.Rs1] + uint64(in.Imm)
			c.Hier.Prefetch(addr, c.Now)
			ctx.LastPrefetchAddr = addr
			ctx.LastPrefetchValid = true

		case isa.OpYield:
			yield = true
			res.LiveMask = in.LiveMask()
		case isa.OpCYield:
			condYield = true
			res.LiveMask = in.LiveMask()

		case isa.OpCheck:
			if c.Cfg.SandboxHi > c.Cfg.SandboxLo {
				addr := regs[in.Rs1] + uint64(in.Imm)
				if addr < c.Cfg.SandboxLo || addr+8 > c.Cfg.SandboxHi {
					finish()
					return c.fault(ctx.ID, pc, fmt.Errorf("SFI trap: %#x outside [%#x,%#x)", addr, c.Cfg.SandboxLo, c.Cfg.SandboxHi)) //shsim:alloc-ok cold fault path; ends the run
				}
			}

		case isa.OpAccel:
			addr := regs[in.Rs1] + uint64(in.Imm)
			v, err := isa.AccelChecksum(c.Mem, addr)
			if err != nil {
				finish()
				return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
			}
			ctx.AccelResult = v
			ctx.AccelPending = true
			ctx.AccelDone = c.Now + c.Cfg.AccelLatency
		case isa.OpAccWait:
			if ctx.AccelPending && ctx.AccelDone > c.Now {
				stall += ctx.AccelDone - c.Now
			}
			regs[in.Rd] = ctx.AccelResult
			ctx.AccelPending = false
			counters.AccWaits[pc]++

		case isa.OpHalt:
			halted = true
			ctx.Halted = true
			ctx.Result = regs[1]

		default:
			finish()
			return c.fault(ctx.ID, pc, fmt.Errorf("unimplemented opcode %v", in.Op)) //shsim:alloc-ok cold fault path; ends the run
		}

		// Clock and accounting, in StepInto's exact order.
		c.Now += busy
		ctx.BusyCycles += busy
		if stall > 0 && !block {
			c.Now += stall
			ctx.StallCycles += stall
			counters.StallCycles[pc] += stall
			counters.TotalStall += stall
		}
		counters.Exec[pc]++
		counters.TotalRetired++
		counters.TotalBusy += busy
		ctx.Retired++
		busyAcc += busy
		steps++
		pc = next
		if takenBranch {
			c.lastBranchAt = c.Now
		}

		if halted || yield || condYield {
			finish()
			res.Halted = halted
			res.Yield = yield
			res.CondYield = condYield
			return nil
		}
		if block && stall > 0 {
			finish()
			res.Stall = stall
			return nil
		}
		if busyBudget != 0 && busyAcc >= busyBudget {
			finish()
			return nil
		}
	}
	finish()
	return nil
}

// runBlockSlow is RunBlock's per-instruction fallback: it drives the
// same stop conditions through StepInto, so attached observers see every
// retirement exactly as the pre-block engine delivered them.
func (c *Core) runBlockSlow(ctx *coro.Context, block bool, fuel, busyBudget uint64, res *BlockResult) error {
	var r StepResult
	for res.Steps < fuel {
		if err := c.StepInto(ctx, block, &r); err != nil {
			return err
		}
		res.Steps++
		res.Busy += r.Busy
		switch {
		case r.Halted:
			res.Halted = true
			return nil
		case r.Yield:
			res.Yield = true
			res.LiveMask = r.LiveMask
			return nil
		case r.CondYield:
			res.CondYield = true
			res.LiveMask = r.LiveMask
			return nil
		}
		if block && r.Stall > 0 {
			res.Stall = r.Stall
			return nil
		}
		if busyBudget != 0 && res.Busy >= busyBudget {
			return nil
		}
	}
	return nil
}

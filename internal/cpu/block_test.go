package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// fastRuns derives straight-line runs by a linear stopper scan — the
// in-package mirror of bincfg.FastPathRuns, which cannot be imported
// here without an import cycle. The engine's correctness does not depend
// on run granularity (InstallPlan treats runs as advisory), so the two
// derivations are interchangeable for these tests.
func fastRuns(prog *isa.Program) []BlockRun {
	stopper := func(op isa.Op) bool {
		return op.IsBranch() || op == isa.OpRet || op == isa.OpHalt || op.IsYield()
	}
	var runs []BlockRun
	start := 0
	for pc := range prog.Instrs {
		if stopper(prog.Instrs[pc].Op) {
			if pc > start {
				runs = append(runs, BlockRun{Start: start, End: pc})
			}
			start = pc + 1
		}
	}
	if len(prog.Instrs) > start {
		runs = append(runs, BlockRun{Start: start, End: len(prog.Instrs)})
	}
	return runs
}

// engineRig is one independent core+memory+context triple, so the two
// engines under differential test cannot share mutable state.
type engineRig struct {
	core *Core
	ctx  *coro.Context
	m    *mem.Memory
	err  error
}

func newEngineRig(prog *isa.Program, initRegs [isa.NumRegs]uint64, arena []uint64) *engineRig {
	m := mem.NewMemory(1 << 16)
	base := m.Alloc(uint64(len(arena))*8, 64)
	for i, v := range arena {
		m.MustWrite64(base+uint64(i)*8, v)
	}
	core := MustNewCore(DefaultConfig(), prog, m, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m.Size()-8)
	ctx.Regs = initRegs
	ctx.Regs[13] = base
	ctx.Regs[isa.SP] = m.Size() - 8
	return &engineRig{core: core, ctx: ctx, m: m}
}

// driveStep retires through the per-instruction reference engine.
func (r *engineRig) driveStep(block bool, maxSteps int) {
	var res StepResult
	for i := 0; i < maxSteps && !r.ctx.Halted; i++ {
		if err := r.core.StepInto(r.ctx, block, &res); err != nil {
			r.err = err
			return
		}
		if block && res.Stall > 0 {
			// Single-context SMT caller: block on the fill, idle to it.
			r.ctx.StallCycles += res.Stall
			r.core.AdvanceIdle(res.Stall)
		}
	}
}

// driveBlock retires through the block engine with a plan installed,
// deliberately chopping fuel into rng-sized pieces so calls stop at
// arbitrary points inside and between fused segments.
func (r *engineRig) driveBlock(block bool, budget uint64, maxSteps int, rng *rand.Rand) {
	r.core.InstallPlan(fastRuns(r.core.Prog))
	var res BlockResult
	var used int
	for used < maxSteps && !r.ctx.Halted {
		fuel := uint64(1 + rng.Intn(40))
		if rem := uint64(maxSteps - used); fuel > rem {
			fuel = rem
		}
		if err := r.core.RunBlock(r.ctx, block, fuel, budget, &res); err != nil {
			r.err = err
			return
		}
		used += int(res.Steps)
		if block && res.Stall > 0 {
			r.ctx.StallCycles += res.Stall
			r.core.AdvanceIdle(res.Stall)
		}
	}
}

// assertRigsEqual compares every observable the two engines could have
// diverged on: fault surface, full architectural context, the clock,
// every per-PC counter, the hierarchy's fill metrics and all of memory.
func assertRigsEqual(t *testing.T, label string, a, b *engineRig) {
	t.Helper()
	switch {
	case (a.err == nil) != (b.err == nil):
		t.Fatalf("%s: fault divergence: step=%v block=%v\n%s", label, a.err, b.err, isa.Disassemble(a.core.Prog))
	case a.err != nil && a.err.Error() != b.err.Error():
		t.Fatalf("%s: fault text divergence:\n step:  %v\n block: %v", label, a.err, b.err)
	}
	if !reflect.DeepEqual(a.ctx, b.ctx) {
		t.Fatalf("%s: context divergence:\n step:  %+v\n block: %+v\n%s", label, a.ctx, b.ctx, isa.Disassemble(a.core.Prog))
	}
	if a.core.Now != b.core.Now {
		t.Fatalf("%s: clock divergence: step=%d block=%d", label, a.core.Now, b.core.Now)
	}
	if !reflect.DeepEqual(a.core.Counters, b.core.Counters) {
		t.Fatalf("%s: counter divergence:\n step:  %+v\n block: %+v\n%s", label, a.core.Counters, b.core.Counters, isa.Disassemble(a.core.Prog))
	}
	var ma, mb metrics.Mem
	a.core.Hier.FillMetrics(&ma)
	b.core.Hier.FillMetrics(&mb)
	if ma != mb {
		t.Fatalf("%s: hierarchy metrics divergence:\n step:  %+v\n block: %+v", label, ma, mb)
	}
	sa, sb := a.m.Snapshot(), b.m.Snapshot()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: memory divergence at %#x", label, i)
		}
	}
}

// diffOneProgram runs prog through both engines from identical initial
// state and asserts byte-identical observables.
func diffOneProgram(t *testing.T, label string, prog *isa.Program, rng *rand.Rand, block bool, budget uint64) {
	t.Helper()
	var initRegs [isa.NumRegs]uint64
	for r := 0; r < 12; r++ {
		initRegs[r] = uint64(rng.Intn(1 << 20))
	}
	arena := make([]uint64, 512)
	for i := range arena {
		arena[i] = uint64(rng.Intn(1 << 24))
	}
	a := newEngineRig(prog, initRegs, arena)
	b := newEngineRig(prog, initRegs, arena)
	const maxSteps = 1 << 20
	a.driveStep(block, maxSteps)
	b.driveBlock(block, budget, maxSteps, rng)
	assertRigsEqual(t, label, a, b)
}

// TestBlockVsStepDifferential is the acceptance pin for the block
// engine: across ≥1000 random programs the fused fast path must be
// byte-identical to per-instruction StepInto — registers, flags, clock,
// per-PC counters, hierarchy metrics and memory.
func TestBlockVsStepDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 1000; trial++ {
		prog := randRunnableProgram(rng, 10+rng.Intn(80), 4096)
		diffOneProgram(t, "trial", prog, rng, false, 0)
	}
}

// TestBlockVsStepDifferentialSMT replays random programs in block mode
// (the SMT executor's contract): exposed stalls must surface on exactly
// the same instruction with exactly the same magnitude, under both a
// tight quantum budget and an effectively unbounded one.
func TestBlockVsStepDifferentialSMT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		prog := randRunnableProgram(rng, 10+rng.Intn(80), 4096)
		budget := uint64(1 + rng.Intn(8)) // incl. quantum 4, the SMT default
		diffOneProgram(t, "smt-trial", prog, rng, true, budget)
	}
}

// TestBlockVsStepCallsAndLoops covers what the random generator omits:
// backward branches (real loops) and CALL/RET, including nested calls,
// with memory traffic inside the loop body so fill timing is exercised
// across iteration boundaries.
func TestBlockVsStepCallsAndLoops(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 0
    loop:
        add  r4, r2, r13
        load r3, [r4]
        add  r1, r1, r3
        call bump
        addi r2, r2, 64
        andi r2, r2, 0xFFF
        cmpi r0, 400
        jlt  loop
        halt
    bump:
        addi r0, r0, 1
        mul  r5, r0, r0
        ret
    `)
	rng := rand.New(rand.NewSource(7))
	diffOneProgram(t, "calls-loops", prog, rng, false, 0)
}

// TestBlockVsStepYields pins yield reporting: the block engine must
// return at every YIELD/CYIELD with the same live mask StepInto reports,
// and retire the same accounting around it.
func TestBlockVsStepYields(t *testing.T) {
	prog := &isa.Program{}
	for i := 0; i < 6; i++ {
		prog.Instrs = append(prog.Instrs,
			isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 3},
			isa.Instr{Op: isa.OpPrefetch, Rs1: 13, Imm: int64(i * 64)},
			isa.Instr{Op: isa.OpYield, Imm: int64(isa.RegMask(0x7).With(13))},
			isa.Instr{Op: isa.OpLoad, Rd: 2, Rs1: 13, Imm: int64(i * 64)},
			isa.Instr{Op: isa.OpCYield, Imm: int64(isa.AllRegs)},
		)
	}
	prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpHalt})

	var initRegs [isa.NumRegs]uint64
	arena := make([]uint64, 512)
	a := newEngineRig(prog, initRegs, arena)
	b := newEngineRig(prog, initRegs, arena)
	b.core.InstallPlan(fastRuns(prog))

	// Drive both engines yield-by-yield, checking mask parity at each.
	var sr StepResult
	var br BlockResult
	for !b.ctx.Halted {
		if err := b.core.RunBlock(b.ctx, false, 1<<20, 0, &br); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < br.Steps; i++ {
			if err := a.core.StepInto(a.ctx, false, &sr); err != nil {
				t.Fatal(err)
			}
		}
		if sr.Yield != br.Yield || sr.CondYield != br.CondYield || sr.LiveMask != br.LiveMask {
			t.Fatalf("yield divergence: step={y:%v cy:%v mask:%v} block={y:%v cy:%v mask:%v}",
				sr.Yield, sr.CondYield, sr.LiveMask, br.Yield, br.CondYield, br.LiveMask)
		}
	}
	assertRigsEqual(t, "yields", a, b)
}

// TestBlockVsStepFaults pins the fault surface: same fault text, same
// context state (PC parked on the faulting instruction), same counters
// — including the Faults counter and the partial hierarchy effects of
// the faulting access.
func TestBlockVsStepFaults(t *testing.T) {
	cases := []struct {
		name  string
		instr []isa.Instr
	}{
		{"load out of bounds", []isa.Instr{
			{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 5},
			{Op: isa.OpMovI, Rd: 2, Imm: 1 << 30},
			{Op: isa.OpLoad, Rd: 3, Rs1: 2},
			{Op: isa.OpHalt},
		}},
		{"store out of bounds", []isa.Instr{
			{Op: isa.OpMovI, Rd: 2, Imm: 1 << 30},
			{Op: isa.OpStore, Rs1: 2, Rs2: 1},
			{Op: isa.OpHalt},
		}},
		{"ret to invalid address", []isa.Instr{
			{Op: isa.OpMovI, Rd: 3, Imm: 999999},
			{Op: isa.OpStore, Rs1: 15, Rs2: 3},
			{Op: isa.OpRet},
			{Op: isa.OpHalt},
		}},
	}
	for _, tc := range cases {
		prog := &isa.Program{Instrs: tc.instr}
		rng := rand.New(rand.NewSource(9))
		diffOneProgram(t, tc.name, prog, rng, false, 0)
	}
}

// TestRunBlockHaltedContextFaults matches StepInto's halted-context
// fault, including the Faults counter bump.
func TestRunBlockHaltedContextFaults(t *testing.T) {
	prog := &isa.Program{Instrs: []isa.Instr{{Op: isa.OpHalt}}}
	rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 8))
	rig.core.InstallPlan(fastRuns(prog))
	var res BlockResult
	if err := rig.core.RunBlock(rig.ctx, false, 10, 0, &res); err != nil || !res.Halted {
		t.Fatalf("halt run: err=%v halted=%v", err, res.Halted)
	}
	if err := rig.core.RunBlock(rig.ctx, false, 10, 0, &res); err == nil {
		t.Fatal("stepping a halted context through RunBlock did not fault")
	}
	if rig.core.Counters.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", rig.core.Counters.Faults)
	}
}

// TestInstallPlanTables checks the precomputed plan against a hand-worked
// program: fused segment extents, aggregate costs, and run extents.
func TestInstallPlanTables(t *testing.T) {
	prog := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}, // 0: fusable
		{Op: isa.OpCmpI, Rs1: 1, Imm: 10},       // 1: fusable
		{Op: isa.OpLoad, Rd: 2, Rs1: 13},        // 2: memory — not fusable
		{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 2}, // 3: fusable
		{Op: isa.OpJlt, Imm: 0},                 // 4: stopper
		{Op: isa.OpHalt},                        // 5: stopper
	}}
	rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 8))
	rig.core.InstallPlan(fastRuns(prog))
	p := rig.core.Plan()

	wantALUEnd := []int{2, 2, 2, 4, 4, 5}
	for pc, want := range wantALUEnd {
		if got := p.FusedEnd(pc); got != want {
			t.Errorf("FusedEnd(%d) = %d, want %d", pc, got, want)
		}
	}
	alu := rig.core.Cfg.CostALU
	wantCost := []uint64{2 * alu, alu, 0, alu, 0, 0}
	for pc, want := range wantCost {
		if got := p.FusedCost(pc); got != want {
			t.Errorf("FusedCost(%d) = %d, want %d", pc, got, want)
		}
	}
	wantRunEnd := []int{4, 4, 4, 4, 4, 5}
	for pc, want := range wantRunEnd {
		if got := p.RunEnd(pc); got != want {
			t.Errorf("RunEnd(%d) = %d, want %d", pc, got, want)
		}
	}
}

// TestRunBlockObserverFallback pins the profiling contract at the core
// level: with an observer attached, RunBlock must deliver the identical
// per-instruction event stream StepInto does, even with a plan
// installed.
func TestRunBlockObserverFallback(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        add  r4, r1, r13
        andi r4, r4, 0xFF8
        add  r4, r4, r13
        load r3, [r4]
        cmpi r1, 200
        jlt  loop
        halt
    `)
	run := func(useBlock bool) (*engineRig, []RetireEvent, []BranchEvent) {
		rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 1024))
		rec := &blockEventRecorder{}
		rig.core.Observe(rec)
		if useBlock {
			rig.core.InstallPlan(fastRuns(prog))
			var res BlockResult
			for !rig.ctx.Halted {
				if err := rig.core.RunBlock(rig.ctx, false, 1<<20, 0, &res); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			var res StepResult
			for !rig.ctx.Halted {
				if err := rig.core.StepInto(rig.ctx, false, &res); err != nil {
					t.Fatal(err)
				}
			}
		}
		return rig, rec.retires, rec.branches
	}
	a, aRet, aBr := run(false)
	b, bRet, bBr := run(true)
	if !reflect.DeepEqual(aRet, bRet) {
		t.Fatalf("retire event streams diverge: %d vs %d events", len(aRet), len(bRet))
	}
	if !reflect.DeepEqual(aBr, bBr) {
		t.Fatalf("branch event streams diverge: %d vs %d events", len(aBr), len(bBr))
	}
	assertRigsEqual(t, "observer-fallback", a, b)
	if got := uint64(len(bRet)); got != b.ctx.Retired {
		t.Fatalf("observer saw %d retires, context retired %d", got, b.ctx.Retired)
	}
}

type blockEventRecorder struct {
	retires  []RetireEvent
	branches []BranchEvent
}

func (r *blockEventRecorder) OnRetire(ev RetireEvent) { r.retires = append(r.retires, ev) }
func (r *blockEventRecorder) OnBranch(ev BranchEvent) { r.branches = append(r.branches, ev) }

package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// randRunnableProgram generates a random but guaranteed-terminating
// program: straight-line ALU/memory/compare instructions with only
// forward branches, all memory accesses confined to a valid arena
// addressed through pinned register r13, ending in HALT.
func randRunnableProgram(rng *rand.Rand, n int, arenaSize int64) *isa.Program {
	p := &isa.Program{}
	reg := func() isa.Reg { return isa.Reg(rng.Intn(12)) } // r0..r11
	off := func() int64 { return int64(rng.Intn(int(arenaSize/8)-1)) * 8 }
	for i := 0; i < n; i++ {
		switch rng.Intn(13) {
		case 0:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpMovI, Rd: reg(), Imm: int64(rng.Intn(1<<16) - 1<<15)})
		case 1:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpAdd, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 2:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpSub, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 3:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpMul, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 4:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpDiv, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 5:
			ops := []isa.Op{isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr}
			p.Instrs = append(p.Instrs, isa.Instr{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 6:
			ops := []isa.Op{isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpShlI, isa.OpShrI}
			p.Instrs = append(p.Instrs, isa.Instr{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Imm: int64(rng.Intn(64))})
		case 7:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpLoad, Rd: reg(), Rs1: 13, Imm: off()})
		case 8:
			p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpStore, Rs1: 13, Rs2: reg(), Imm: off()})
		case 9:
			if rng.Intn(2) == 0 {
				p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpCmp, Rs1: reg(), Rs2: reg()})
			} else {
				p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpCmpI, Rs1: reg(), Imm: int64(rng.Intn(200) - 100)})
			}
		case 10:
			// Forward conditional branch (guarantees termination).
			ops := []isa.Op{isa.OpJeq, isa.OpJne, isa.OpJlt, isa.OpJle, isa.OpJgt, isa.OpJge, isa.OpJmp}
			target := i + 1 + rng.Intn(n-i) // in (i, n]
			p.Instrs = append(p.Instrs, isa.Instr{Op: ops[rng.Intn(len(ops))], Imm: int64(target)})
		case 12:
			// Adjacent submit/collect accelerator pair (the reference and
			// the core must agree on the checksum semantics).
			p.Instrs = append(p.Instrs,
				isa.Instr{Op: isa.OpAccel, Rs1: 13, Imm: off()},
				isa.Instr{Op: isa.OpAccWait, Rd: reg()},
			)
			i++ // emitted two instructions
		case 11:
			ops := []isa.Op{isa.OpNop, isa.OpPrefetch, isa.OpYield, isa.OpCYield, isa.OpCheck}
			in := isa.Instr{Op: ops[rng.Intn(len(ops))]}
			if in.Op == isa.OpPrefetch || in.Op == isa.OpCheck {
				in.Rs1, in.Imm = 13, off()
			}
			if in.Op.IsYield() {
				in.Imm = int64(isa.AllRegs)
			}
			p.Instrs = append(p.Instrs, in)
		}
	}
	p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHalt})
	return p
}

// TestDifferentialAgainstReference cross-checks the cycle-level core's
// architectural semantics against the timing-free reference interpreter
// on random programs: final registers, flags, results and memory must
// agree exactly.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const arenaSize = 4096
	for trial := 0; trial < 300; trial++ {
		prog := randRunnableProgram(rng, 10+rng.Intn(80), arenaSize)

		memA := mem.NewMemory(1 << 16)
		memB := mem.NewMemory(1 << 16)
		arenaA := memA.Alloc(arenaSize, 64)
		arenaB := memB.Alloc(arenaSize, 64)
		if arenaA != arenaB {
			t.Fatal("arenas diverge")
		}
		var initRegs [isa.NumRegs]uint64
		for r := 0; r < 12; r++ {
			initRegs[r] = uint64(rng.Intn(1 << 20))
		}
		initRegs[13] = arenaA
		for i := uint64(0); i < arenaSize; i += 8 {
			v := uint64(rng.Intn(1 << 24))
			memA.MustWrite64(arenaA+i, v)
			memB.MustWrite64(arenaB+i, v)
		}

		// Cycle-level core.
		core := MustNewCore(DefaultConfig(), prog, memA, mem.MustNewHierarchy(mem.DefaultConfig()))
		ctx := coro.NewContext(0, 0, memA.Size()-8)
		ctx.Regs = initRegs
		ctx.Regs[isa.SP] = memA.Size() - 8
		for !ctx.Halted {
			if _, err := step(core, ctx, false); err != nil {
				t.Fatalf("trial %d: core: %v\n%s", trial, err, isa.Disassemble(prog))
			}
		}

		// Reference interpreter.
		ref := &isa.RefState{PC: 0}
		ref.Regs = initRegs
		ref.Regs[isa.SP] = memB.Size() - 8
		if err := isa.RefRun(prog, ref, memB, 1<<20); err != nil {
			t.Fatalf("trial %d: reference: %v\n%s", trial, err, isa.Disassemble(prog))
		}

		if ctx.Result != ref.Result {
			t.Fatalf("trial %d: result %d != reference %d\n%s", trial, ctx.Result, ref.Result, isa.Disassemble(prog))
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if ctx.Regs[r] != ref.Regs[r] {
				t.Fatalf("trial %d: r%d = %#x != reference %#x\n%s", trial, r, ctx.Regs[r], ref.Regs[r], isa.Disassemble(prog))
			}
		}
		if ctx.Flags != ref.Flags {
			t.Fatalf("trial %d: flags %d != reference %d", trial, ctx.Flags, ref.Flags)
		}
		a, b := memA.Snapshot(), memB.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: memory diverges at %#x", trial, i)
			}
		}
	}
}

// TestDifferentialWithCalls cross-checks CALL/RET handling specifically
// (the random generator above omits them to guarantee termination).
func TestDifferentialWithCalls(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 3
        call f
        call g
        halt
    f:
        addi r1, r1, 10
        ret
    g:
        call f
        addi r1, r1, 100
        ret
    `)
	m1 := mem.NewMemory(1 << 16)
	core := MustNewCore(DefaultConfig(), prog, m1, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m1.Size()-8)
	for !ctx.Halted {
		if _, err := step(core, ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	m2 := mem.NewMemory(1 << 16)
	ref := &isa.RefState{}
	ref.Regs[isa.SP] = m2.Size() - 8
	if err := isa.RefRun(prog, ref, m2, 1000); err != nil {
		t.Fatal(err)
	}
	if ctx.Result != ref.Result || ctx.Result != 123 {
		t.Fatalf("core %d, reference %d, want 123", ctx.Result, ref.Result)
	}
}

// TestDifferentialAccelerator cross-checks the accelerator's functional
// semantics (timing aside) between the core and the reference.
func TestDifferentialAccelerator(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        movi r3, 4
    loop:
        accel [r2]
        addi r0, r0, 1
        accwait r4
        add r1, r1, r4
        addi r2, r2, 64
        addi r3, r3, -1
        cmpi r3, 0
        jgt loop
        halt
    `)
	mkMem := func() *mem.Memory {
		m := mem.NewMemory(1 << 16)
		for i := uint64(0); i < 4*64; i += 8 {
			m.MustWrite64(4096+i, i*3+7)
		}
		return m
	}
	m1 := mkMem()
	core := MustNewCore(DefaultConfig(), prog, m1, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m1.Size()-8)
	var sawStall bool
	for !ctx.Halted {
		r, err := step(core, ctx, false)
		if err != nil {
			t.Fatal(err)
		}
		if r.Op == isa.OpAccWait && r.Stall > 0 {
			sawStall = true
		}
	}
	if !sawStall {
		t.Error("accwait never stalled despite minimal intervening work")
	}
	m2 := mkMem()
	ref := &isa.RefState{}
	ref.Regs[isa.SP] = m2.Size() - 8
	if err := isa.RefRun(prog, ref, m2, 10000); err != nil {
		t.Fatal(err)
	}
	if ctx.Result != ref.Result || ctx.Result == 0 {
		t.Fatalf("core %d != reference %d", ctx.Result, ref.Result)
	}
}

// TestAccWaitWithoutSubmit covers the sticky-completion-record semantics:
// waiting with nothing outstanding reads the last (zero) record and does
// not stall or fault.
func TestAccWaitWithoutSubmit(t *testing.T) {
	prog := isa.MustAssemble("accwait r1\nhalt")
	m := mem.NewMemory(1 << 12)
	core := MustNewCore(DefaultConfig(), prog, m, mem.MustNewHierarchy(mem.DefaultConfig()))
	ctx := coro.NewContext(0, 0, m.Size()-8)
	r, err := step(core, ctx, false)
	if err != nil {
		t.Fatalf("bare ACCWAIT should read the sticky record: %v", err)
	}
	if r.Stall != 0 || ctx.Regs[1] != 0 {
		t.Errorf("bare ACCWAIT: stall=%d r1=%d, want zero record", r.Stall, ctx.Regs[1])
	}
}

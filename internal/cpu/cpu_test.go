package cpu

import (
	"errors"
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// step drives one instruction through StepInto, the value-returning shape
// the tests prefer (the hot paths use StepInto / RunBlock directly).
func step(c *Core, ctx *coro.Context, block bool) (StepResult, error) {
	var r StepResult
	err := c.StepInto(ctx, block, &r)
	return r, err
}

// testRig builds a core over the given assembly with a 1 MiB memory and a
// context whose stack sits at the top of memory.
func testRig(t *testing.T, src string) (*Core, *coro.Context, *mem.Memory) {
	t.Helper()
	prog := isa.MustAssemble(src)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)
	return core, ctx, m
}

// runToHalt steps until halt or fuel exhaustion.
func runToHalt(t *testing.T, core *Core, ctx *coro.Context, fuel int) {
	t.Helper()
	for i := 0; i < fuel; i++ {
		r, err := step(core, ctx, false)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if r.Halted {
			return
		}
	}
	t.Fatalf("program did not halt within %d steps", fuel)
}

func TestArithmetic(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r1, 6
        movi r2, 7
        mul  r3, r1, r2
        add  r3, r3, r1     ; 48
        sub  r3, r3, r2     ; 41
        movi r4, 2
        div  r5, r3, r4     ; 20
        shli r5, r5, 2      ; 80
        shri r5, r5, 1      ; 40
        movi r6, 0xF0
        andi r6, r6, 0x3C   ; 0x30
        xor  r6, r6, r5     ; 0x30 ^ 40 = 0x18^... computed below
        or   r6, r6, r4
        mov  r1, r3
        halt
    `)
	runToHalt(t, core, ctx, 100)
	if ctx.Result != 41 {
		t.Errorf("result = %d, want 41", ctx.Result)
	}
	if ctx.Regs[5] != 40 {
		t.Errorf("r5 = %d, want 40", ctx.Regs[5])
	}
	want := (uint64(0x30) ^ 40) | 2
	if ctx.Regs[6] != want {
		t.Errorf("r6 = %#x, want %#x", ctx.Regs[6], want)
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r1, 5
        movi r2, 0
        div  r1, r1, r2
        halt
    `)
	runToHalt(t, core, ctx, 10)
	if ctx.Result != 0 {
		t.Errorf("div by zero = %d, want 0", ctx.Result)
	}
}

func TestLoopAndFlags(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r1, 0
        movi r2, 10
    loop:
        addi r1, r1, 3
        addi r2, r2, -1
        cmpi r2, 0
        jgt loop
        halt
    `)
	runToHalt(t, core, ctx, 200)
	if ctx.Result != 30 {
		t.Errorf("result = %d, want 30", ctx.Result)
	}
}

func TestAllConditionals(t *testing.T) {
	// For (a,b) pairs exercise each condition.
	core, ctx, _ := testRig(t, `
        movi r1, 0
        movi r2, 5
        movi r3, 5
        cmp r2, r3
        jeq eq_ok
        halt
    eq_ok:
        addi r1, r1, 1
        cmpi r2, 4
        jne ne_ok
        halt
    ne_ok:
        addi r1, r1, 1
        cmpi r2, 6
        jlt lt_ok
        halt
    lt_ok:
        addi r1, r1, 1
        cmpi r2, 5
        jle le_ok
        halt
    le_ok:
        addi r1, r1, 1
        cmpi r2, 4
        jgt gt_ok
        halt
    gt_ok:
        addi r1, r1, 1
        cmpi r2, 5
        jge ge_ok
        halt
    ge_ok:
        addi r1, r1, 1
        halt
    `)
	runToHalt(t, core, ctx, 100)
	if ctx.Result != 6 {
		t.Errorf("took %d of 6 conditional paths", ctx.Result)
	}
}

func TestSignedComparison(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, -3
        cmpi r2, 1
        jlt ok
        movi r1, 0
        halt
    ok:
        movi r1, 1
        halt
    `)
	runToHalt(t, core, ctx, 10)
	if ctx.Result != 1 {
		t.Error("-3 < 1 should hold under signed comparison")
	}
}

func TestLoadStore(t *testing.T) {
	core, ctx, m := testRig(t, `
        movi r2, 4096
        movi r3, 777
        store [r2+8], r3
        load r1, [r2+8]
        halt
    `)
	runToHalt(t, core, ctx, 10)
	if ctx.Result != 777 {
		t.Errorf("result = %d", ctx.Result)
	}
	if m.MustRead64(4104) != 777 {
		t.Error("store did not reach memory")
	}
}

func TestCallRet(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r1, 5
        call double
        call double
        halt             ; r1 = 20
    double:
        add r1, r1, r1
        ret
    `)
	runToHalt(t, core, ctx, 50)
	if ctx.Result != 20 {
		t.Errorf("result = %d, want 20", ctx.Result)
	}
}

func TestNestedCalls(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r1, 1
        call a
        halt
    a:
        addi r1, r1, 10
        call b
        addi r1, r1, 100
        ret
    b:
        addi r1, r1, 1000
        ret
    `)
	runToHalt(t, core, ctx, 50)
	if ctx.Result != 1111 {
		t.Errorf("result = %d, want 1111", ctx.Result)
	}
}

func TestMemoryFaultSurfaces(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 0
        load r1, [r2]
        halt
    `)
	if _, err := step(core, ctx, false); err != nil {
		t.Fatalf("movi should not fault: %v", err)
	}
	_, err := step(core, ctx, false)
	if err == nil {
		t.Fatal("null load should fault")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %T is not a Fault", err)
	}
	if f.PC != 1 {
		t.Errorf("fault PC = %d, want 1", f.PC)
	}
}

func TestStallAccounting(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 4096
        load r1, [r2]      ; cold: DRAM
        load r3, [r2]      ; hot: L1
        halt
    `)
	cfg := core.Hier.Config()
	step(core, ctx, false) // movi
	r, err := step(core, ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Level != mem.LevelDRAM {
		t.Fatalf("cold load level = %v", r.Level)
	}
	wantStall := cfg.LatDRAM - core.Cfg.PipelineAbsorb
	if r.Stall != wantStall {
		t.Errorf("cold load stall = %d, want %d", r.Stall, wantStall)
	}
	r, _ = step(core, ctx, false)
	if r.Stall != 0 {
		t.Errorf("hot load stall = %d, want 0", r.Stall)
	}
	if core.Counters.StallCycles[1] != wantStall {
		t.Errorf("per-PC stall = %d", core.Counters.StallCycles[1])
	}
	if core.Counters.MissL2[1] != 1 || core.Counters.MissL3[1] != 1 {
		t.Error("miss counters wrong")
	}
	if core.Counters.MissRateL2(1) != 1.0 {
		t.Errorf("MissRateL2 = %f", core.Counters.MissRateL2(1))
	}
	if core.Counters.MissRateL2(0) != 0 {
		t.Error("non-load PC should have zero miss rate")
	}
}

func TestBlockModeDoesNotAdvanceClockByStall(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 4096
        load r1, [r2]
        halt
    `)
	step(core, ctx, true)
	before := core.Now
	r, _ := step(core, ctx, true)
	if r.Stall == 0 {
		t.Fatal("cold load should stall")
	}
	if core.Now != before+r.Busy {
		t.Errorf("clock advanced by %d, want busy %d only", core.Now-before, r.Busy)
	}
	if ctx.StallCycles != 0 {
		t.Error("block mode must not attribute stall to the context")
	}
}

func TestPrefetchThenLoadHidesStall(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 4096
        prefetch [r2]
        movi r3, 0
        movi r4, 200
    spin:
        addi r3, r3, 1
        addi r4, r4, -1
        cmpi r4, 0
        jgt spin
        load r1, [r2]
        halt
    `)
	var loadStall uint64
	for i := 0; i < 5000; i++ {
		r, err := step(core, ctx, false)
		if err != nil {
			t.Fatal(err)
		}
		if r.Op == isa.OpLoad {
			loadStall = r.Stall
		}
		if r.Halted {
			break
		}
	}
	// The spin loop runs ~200*4 cycles > DRAM latency, so the prefetch
	// completes and the load must not stall at all.
	if loadStall != 0 {
		t.Errorf("load after long prefetch window stalled %d cycles", loadStall)
	}
	if !ctx.LastPrefetchValid || ctx.LastPrefetchAddr != 4096 {
		t.Error("prefetch bookkeeping missing")
	}
}

func TestYieldResults(t *testing.T) {
	core, ctx, _ := testRig(t, `
        yield 0x0006
        cyield 0x0002
        halt
    `)
	r, _ := step(core, ctx, false)
	if !r.Yield || r.LiveMask != 0x0006 {
		t.Errorf("yield result wrong: %+v", r)
	}
	r, _ = step(core, ctx, false)
	if !r.CondYield || r.LiveMask != 0x0002 {
		t.Errorf("cyield result wrong: %+v", r)
	}
}

func TestSFICheck(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        check [r2]
        movi r2, 100000
        check [r2]
        halt
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.SandboxLo = 4096
	cfg.SandboxHi = 8192
	core := MustNewCore(cfg, prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)
	step(core, ctx, false)
	if _, err := step(core, ctx, false); err != nil {
		t.Fatalf("in-bounds check trapped: %v", err)
	}
	step(core, ctx, false)
	if _, err := step(core, ctx, false); err == nil {
		t.Fatal("out-of-bounds check did not trap")
	}
}

func TestSFIDisabledNeverTraps(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 999999999
        check [r2]
        movi r1, 1
        halt
    `)
	runToHalt(t, core, ctx, 10)
	if ctx.Result != 1 {
		t.Error("check with disabled sandbox should be a no-op")
	}
}

type recordingObserver struct {
	retires  []RetireEvent
	branches []BranchEvent
}

func (r *recordingObserver) OnRetire(e RetireEvent) { r.retires = append(r.retires, e) }
func (r *recordingObserver) OnBranch(e BranchEvent) { r.branches = append(r.branches, e) }

func TestObserverEvents(t *testing.T) {
	core, ctx, _ := testRig(t, `
        movi r2, 4096
        movi r3, 2
    loop:
        load r1, [r2]
        addi r3, r3, -1
        cmpi r3, 0
        jgt loop
        halt
    `)
	obs := &recordingObserver{}
	core.Observe(obs)
	runToHalt(t, core, ctx, 100)
	var loads, misses int
	for _, e := range obs.retires {
		if e.IsLoad {
			loads++
			if e.MissedL2 {
				misses++
			}
		}
	}
	if loads != 2 || misses != 1 {
		t.Errorf("loads=%d misses=%d, want 2 and 1", loads, misses)
	}
	if len(obs.branches) != 1 {
		t.Fatalf("branches = %d, want 1 (one taken jgt)", len(obs.branches))
	}
	b := obs.branches[0]
	if b.From != 5 || b.To != 2 {
		t.Errorf("branch edge %d->%d, want 5->2", b.From, b.To)
	}
	if b.Cycles == 0 {
		t.Error("branch delta should be nonzero")
	}
	core.ClearObservers()
	step(core, ctx, false) // would panic-ish if observers fired on halted ctx; just ensure no append
	if len(obs.retires) != 11 {
		t.Errorf("retires = %d, want 11", len(obs.retires))
	}
}

func TestChargeSwitchAndIdle(t *testing.T) {
	core, ctx, _ := testRig(t, "halt")
	core.ChargeSwitch(ctx, 24)
	if core.Now != 24 || ctx.SwitchCycles != 24 || ctx.Switches != 1 {
		t.Error("ChargeSwitch accounting wrong")
	}
	core.AdvanceIdle(10)
	if core.Now != 34 {
		t.Error("AdvanceIdle wrong")
	}
}

func TestSteppingHaltedContextFails(t *testing.T) {
	core, ctx, _ := testRig(t, "halt")
	runToHalt(t, core, ctx, 2)
	if _, err := step(core, ctx, false); err == nil {
		t.Error("stepping halted context should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CostALU = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ALU cost accepted")
	}
	cfg = DefaultConfig()
	cfg.SandboxLo = 10
	cfg.SandboxHi = 5
	if err := cfg.Validate(); err == nil {
		t.Error("inverted sandbox accepted")
	}
}

func TestBusyCostsDistinguishOps(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.busyCost(isa.OpMul) <= cfg.busyCost(isa.OpAdd) {
		t.Error("mul should cost more than add")
	}
	if cfg.busyCost(isa.OpDiv) <= cfg.busyCost(isa.OpMul) {
		t.Error("div should cost more than mul")
	}
	if cfg.busyCost(isa.OpNop) == 0 || cfg.busyCost(isa.OpHalt) == 0 {
		t.Error("all ops must have nonzero cost")
	}
}

func TestFaultErrorAndCounterAccessors(t *testing.T) {
	f := &Fault{Ctx: 1, PC: 2, Err: errors.New("boom")}
	if f.Error() == "" || f.Unwrap() == nil {
		t.Error("Fault accessors broken")
	}
	c := NewCounters(4)
	c.TotalBusy = 60
	c.TotalStall = 40
	if c.StallFraction() != 0.4 {
		t.Errorf("StallFraction = %f", c.StallFraction())
	}
	if (&Counters{}).StallFraction() != 0 {
		t.Error("empty counters should not divide by zero")
	}
	cfg := DefaultConfig()
	if cfg.BusyCost(isa.OpMul) != cfg.busyCost(isa.OpMul) {
		t.Error("BusyCost accessor diverges")
	}
	if _, err := NewCore(Config{}, isa.MustAssemble("halt"), nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
	bad := isa.MustAssemble("halt")
	bad.Instrs[0].Imm = 0
	bad.Instrs = append(bad.Instrs, isa.Instr{Op: isa.Op(240)})
	if _, err := NewCore(DefaultConfig(), bad, nil, nil); err == nil {
		t.Error("invalid program accepted")
	}
}

// TestFaultCounting pins the fault accounting exported through
// FillMetrics: every surfaced *Fault increments Counters.Faults.
func TestFaultCounting(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        load r2, [r1]   ; null-guard fault
        halt
    `)
	m := mem.NewMemory(1 << 16)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	c := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	if c.Counters.Faults != 0 {
		t.Fatalf("fresh core reports %d faults", c.Counters.Faults)
	}
	var res StepResult
	if err := c.StepInto(ctx, false, &res); err != nil { // movi
		t.Fatal(err)
	}
	err := c.StepInto(ctx, false, &res) // faulting load
	if err == nil {
		t.Fatal("expected a fault from the null load")
	}
	if c.Counters.Faults != 1 {
		t.Errorf("Faults = %d after one fault, want 1", c.Counters.Faults)
	}

	var mm metrics.CPU
	c.Counters.FillMetrics(&mm)
	if mm.Faults != 1 || mm.Retired != c.Counters.TotalRetired || mm.BusyCycles != c.Counters.TotalBusy {
		t.Errorf("FillMetrics mismatch: %+v vs %+v", mm, *c.Counters)
	}
}

package cpu

import (
	"repro/internal/mem"
	"repro/internal/metrics"
)

// Counters are the ground-truth per-PC hardware counters. The
// instrumentation pipeline never reads these directly — it consumes PEBS
// estimates — but tests and the E10 experiment compare estimates against
// them.
type Counters struct {
	// Per static instruction, indexed by PC.
	Exec        []uint64 // retire count
	Loads       []uint64 // loads retired
	Stores      []uint64 // stores retired
	MissL2      []uint64 // loads/stores that missed both L1 and L2
	MissL3      []uint64 // loads/stores that missed L1, L2 and L3
	StallCycles []uint64 // exposed memory stall cycles attributed to the PC
	AccWaits    []uint64 // accelerator waits retired

	// Program-wide totals.
	TotalRetired uint64
	TotalBusy    uint64
	TotalStall   uint64
	// Faults counts execution faults raised by Step (bad PC, memory
	// fault, SFI trap, stepping a halted context).
	Faults uint64
}

// NewCounters allocates counters for a program of n instructions.
func NewCounters(n int) *Counters {
	return &Counters{
		Exec:        make([]uint64, n),
		Loads:       make([]uint64, n),
		Stores:      make([]uint64, n),
		MissL2:      make([]uint64, n),
		MissL3:      make([]uint64, n),
		StallCycles: make([]uint64, n),
		AccWaits:    make([]uint64, n),
	}
}

// MissRateL2 returns the ground-truth probability that the load at pc
// misses L2, or 0 if it never executed.
func (c *Counters) MissRateL2(pc int) float64 {
	if c.Loads[pc] == 0 {
		return 0
	}
	return float64(c.MissL2[pc]) / float64(c.Loads[pc])
}

// StallFraction returns stall cycles as a fraction of all cycles.
func (c *Counters) StallFraction() float64 {
	total := c.TotalBusy + c.TotalStall
	if total == 0 {
		return 0
	}
	return float64(c.TotalStall) / float64(total)
}

// FillMetrics harvests the core-wide totals into an observability
// registry section. Per-PC counters stay here; the registry carries
// only the program-wide cycle accounting.
func (c *Counters) FillMetrics(m *metrics.CPU) {
	m.Retired = c.TotalRetired
	m.BusyCycles = c.TotalBusy
	m.StallCycles = c.TotalStall
	m.Faults = c.Faults
}

// RetireEvent describes one retired instruction for observers (the PEBS
// sampler). Fields are populated only as applicable.
type RetireEvent struct {
	Ctx       int // context ID
	PC        int
	Op        byte   // isa.Op, widened to avoid an import cycle in observers that only switch on class
	Now       uint64 // clock after the instruction (and its stall) retired
	IsLoad    bool
	IsStore   bool
	IsAccWait bool
	Level     mem.Level
	MemLat    uint64 // raw memory latency (loads/stores)
	Stall     uint64 // exposed stall cycles
	MissedL2  bool
	MissedL3  bool
}

// BranchEvent describes one taken control transfer for the LBR model.
type BranchEvent struct {
	Ctx    int
	From   int    // PC of the branch
	To     int    // target PC
	Now    uint64 // clock at retire
	Cycles uint64 // cycles since the previous taken transfer on this core
}

// Observer receives retire and branch events. Implementations must be
// cheap; they run inline with simulation.
type Observer interface {
	OnRetire(RetireEvent)
	OnBranch(BranchEvent)
}

package cpu

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// StepResult reports what one instruction did and cost.
type StepResult struct {
	PC     int
	Op     isa.Op
	Busy   uint64 // busy cycles, including pipeline-absorbed memory latency
	Stall  uint64 // exposed memory stall cycles (already applied per policy)
	MemLat uint64
	Level  mem.Level

	Halted    bool
	Yield     bool // an OpYield retired; the executor decides whether to switch
	CondYield bool // an OpCYield retired
	LiveMask  isa.RegMask

	DidPrefetch  bool
	PrefetchAddr uint64
}

// Core executes instructions for coroutine contexts and owns the global
// clock.
type Core struct {
	Cfg  Config
	Prog *isa.Program
	Mem  *mem.Memory
	Hier *mem.Hierarchy

	Now      uint64
	Counters *Counters

	// instrs aliases Prog.Instrs; fetching through it saves a dependent
	// pointer load per step.
	instrs []isa.Instr

	// costs caches Cfg's per-opcode busy cost so Step indexes an array
	// instead of running the cost-model switch on every instruction.
	costs [isa.NumOps]uint64

	// plan, when installed, enables the basic-block fast path
	// (RunBlock); see block.go. Nil means per-instruction dispatch.
	plan *BlockPlan

	// Superblock tier (superblock.go): sbEntry[pc] indexes sbs when pc
	// heads an installed trace, -1 otherwise; nil disables the tier.
	// sbLineMask caches the hierarchy's line mask for the residency
	// memos.
	sbs        []superblock
	sbEntry    []int32
	sbLineMask uint64

	observers    []Observer
	lastBranchAt uint64 // clock of the previous taken transfer (LBR delta base)
}

// NewCore assembles a core over a program, backing memory and hierarchy.
func NewCore(cfg Config, prog *isa.Program, m *mem.Memory, h *mem.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Core{
		Cfg:      cfg,
		Prog:     prog,
		Mem:      m,
		Hier:     h,
		instrs:   prog.Instrs,
		costs:    cfg.costTable(),
		Counters: NewCounters(len(prog.Instrs)),
	}, nil
}

// MustNewCore panics on configuration errors.
func MustNewCore(cfg Config, prog *isa.Program, m *mem.Memory, h *mem.Hierarchy) *Core {
	c, err := NewCore(cfg, prog, m, h)
	if err != nil {
		panic(err)
	}
	return c
}

// Observe registers an observer for retire and branch events.
func (c *Core) Observe(o Observer) { c.observers = append(c.observers, o) }

// ClearObservers removes all observers (e.g. after the profiling run).
func (c *Core) ClearObservers() { c.observers = nil }

// Fault is an execution fault (bad PC, memory fault, SFI trap).
type Fault struct {
	Ctx int
	PC  int
	Err error
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cpu: ctx %d at pc %d: %v", f.Ctx, f.PC, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// fault counts and constructs an execution fault. Outlined so StepInto's
// retire path pays nothing for the accounting.
func (c *Core) fault(ctx, pc int, err error) *Fault {
	c.Counters.Faults++
	return &Fault{ctx, pc, err}
}

func sign(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// StepInto executes the next instruction of ctx, writing what it did and
// cost into the caller-provided result (reused across loop iterations so
// nothing is copied out of the core per retired instruction).
//
// If block is false (coroutine executors), exposed memory stall cycles are
// applied to the clock and attributed to the context immediately — the
// in-order core sits and waits.
//
// If block is true (the SMT executor), the clock advances by busy cycles
// only and the exposed stall is returned in the result for the executor to
// model as a blocked hardware context.
//
// Measured runs normally retire through RunBlock (block.go), which fuses
// straight-line stretches; StepInto remains the semantic reference and
// the only path that delivers per-instruction observer events.
//
//shsim:noalloc
func (c *Core) StepInto(ctx *coro.Context, block bool, res *StepResult) error {
	if ctx.Halted {
		*res = StepResult{}
		return c.fault(ctx.ID, ctx.PC, fmt.Errorf("stepping a halted context")) //shsim:alloc-ok cold fault path; ends the run
	}
	pc := ctx.PC
	if pc < 0 || pc >= len(c.instrs) {
		*res = StepResult{}
		return c.fault(ctx.ID, pc, fmt.Errorf("pc out of range")) //shsim:alloc-ok cold fault path; ends the run
	}
	in := &c.instrs[pc]
	*res = StepResult{PC: pc, Op: in.Op, Busy: c.costs[in.Op]}
	next := pc + 1
	takenBranch := false

	regs := &ctx.Regs
	switch in.Op {
	case isa.OpNop:
	case isa.OpMovI:
		regs[in.Rd] = uint64(in.Imm)
	case isa.OpMov:
		regs[in.Rd] = regs[in.Rs1]
	case isa.OpAdd:
		regs[in.Rd] = regs[in.Rs1] + regs[in.Rs2]
	case isa.OpSub:
		regs[in.Rd] = regs[in.Rs1] - regs[in.Rs2]
	case isa.OpMul:
		regs[in.Rd] = regs[in.Rs1] * regs[in.Rs2]
	case isa.OpDiv:
		if regs[in.Rs2] == 0 {
			regs[in.Rd] = 0
		} else {
			regs[in.Rd] = regs[in.Rs1] / regs[in.Rs2]
		}
	case isa.OpAnd:
		regs[in.Rd] = regs[in.Rs1] & regs[in.Rs2]
	case isa.OpOr:
		regs[in.Rd] = regs[in.Rs1] | regs[in.Rs2]
	case isa.OpXor:
		regs[in.Rd] = regs[in.Rs1] ^ regs[in.Rs2]
	case isa.OpShl:
		regs[in.Rd] = regs[in.Rs1] << (regs[in.Rs2] & 63)
	case isa.OpShr:
		regs[in.Rd] = regs[in.Rs1] >> (regs[in.Rs2] & 63)
	case isa.OpAddI:
		regs[in.Rd] = regs[in.Rs1] + uint64(in.Imm)
	case isa.OpMulI:
		regs[in.Rd] = regs[in.Rs1] * uint64(in.Imm)
	case isa.OpAndI:
		regs[in.Rd] = regs[in.Rs1] & uint64(in.Imm)
	case isa.OpShlI:
		regs[in.Rd] = regs[in.Rs1] << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		regs[in.Rd] = regs[in.Rs1] >> (uint64(in.Imm) & 63)

	case isa.OpLoad, isa.OpStore:
		addr := regs[in.Rs1] + uint64(in.Imm)
		acc := c.Hier.AccessW(addr, c.Now, in.Op == isa.OpStore)
		applyMem(res, acc, c.Cfg.PipelineAbsorb)
		if in.Op == isa.OpLoad {
			v, err := c.Mem.Read64(addr)
			if err != nil {
				return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
			}
			regs[in.Rd] = v
			c.Counters.Loads[pc]++
		} else {
			if err := c.Mem.Write64(addr, regs[in.Rs2]); err != nil {
				return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
			}
			c.Counters.Stores[pc]++
		}
		if acc.MissedL2 {
			c.Counters.MissL2[pc]++
		}
		if acc.Level == mem.LevelDRAM {
			c.Counters.MissL3[pc]++
		}

	case isa.OpCmp:
		ctx.Flags = sign(int64(regs[in.Rs1]), int64(regs[in.Rs2]))
	case isa.OpCmpI:
		ctx.Flags = sign(int64(regs[in.Rs1]), in.Imm)

	case isa.OpJmp:
		next = in.Target()
		takenBranch = true
	case isa.OpJeq, isa.OpJne, isa.OpJlt, isa.OpJle, isa.OpJgt, isa.OpJge:
		if condHolds(in.Op, ctx.Flags) {
			next = in.Target()
			takenBranch = true
		}
	case isa.OpCall:
		sp := regs[isa.SP] - 8
		if err := c.Mem.Write64(sp, uint64(pc+1)); err != nil {
			return c.fault(ctx.ID, pc, fmt.Errorf("call push: %w", err)) //shsim:alloc-ok cold fault path; ends the run
		}
		applyMem(res, c.Hier.Access(sp, c.Now), c.Cfg.PipelineAbsorb)
		regs[isa.SP] = sp
		next = in.Target()
		takenBranch = true
	case isa.OpRet:
		sp := regs[isa.SP]
		ra, err := c.Mem.Read64(sp)
		if err != nil {
			return c.fault(ctx.ID, pc, fmt.Errorf("ret pop: %w", err)) //shsim:alloc-ok cold fault path; ends the run
		}
		applyMem(res, c.Hier.Access(sp, c.Now), c.Cfg.PipelineAbsorb)
		regs[isa.SP] = sp + 8
		if ra >= uint64(len(c.instrs)) {
			return c.fault(ctx.ID, pc, fmt.Errorf("ret to invalid address %d", ra)) //shsim:alloc-ok cold fault path; ends the run
		}
		next = int(ra)
		takenBranch = true

	case isa.OpPrefetch:
		addr := regs[in.Rs1] + uint64(in.Imm)
		c.Hier.Prefetch(addr, c.Now)
		res.DidPrefetch = true
		res.PrefetchAddr = addr
		ctx.LastPrefetchAddr = addr
		ctx.LastPrefetchValid = true

	case isa.OpYield:
		res.Yield = true
		res.LiveMask = in.LiveMask()
	case isa.OpCYield:
		res.CondYield = true
		res.LiveMask = in.LiveMask()

	case isa.OpCheck:
		if c.Cfg.SandboxHi > c.Cfg.SandboxLo {
			addr := regs[in.Rs1] + uint64(in.Imm)
			if addr < c.Cfg.SandboxLo || addr+8 > c.Cfg.SandboxHi {
				return c.fault(ctx.ID, pc, fmt.Errorf("SFI trap: %#x outside [%#x,%#x)", addr, c.Cfg.SandboxLo, c.Cfg.SandboxHi)) //shsim:alloc-ok cold fault path; ends the run
			}
		}

	case isa.OpAccel:
		addr := regs[in.Rs1] + uint64(in.Imm)
		v, err := isa.AccelChecksum(c.Mem, addr)
		if err != nil {
			return c.fault(ctx.ID, pc, err) //shsim:alloc-ok cold fault path; ends the run
		}
		ctx.AccelResult = v
		ctx.AccelPending = true
		ctx.AccelDone = c.Now + c.Cfg.AccelLatency
	case isa.OpAccWait:
		// Like a DSA completion record, the result is sticky: waiting with
		// nothing outstanding re-reads the last record (initially zero)
		// without stalling.
		if ctx.AccelPending && ctx.AccelDone > c.Now {
			res.Stall += ctx.AccelDone - c.Now
		}
		regs[in.Rd] = ctx.AccelResult
		ctx.AccelPending = false
		c.Counters.AccWaits[pc]++

	case isa.OpHalt:
		res.Halted = true
		ctx.Halted = true
		ctx.Result = regs[1]

	default:
		return c.fault(ctx.ID, pc, fmt.Errorf("unimplemented opcode %v", in.Op)) //shsim:alloc-ok cold fault path; ends the run
	}

	// Clock and accounting.
	c.Now += res.Busy
	ctx.BusyCycles += res.Busy
	if res.Stall > 0 && !block {
		c.Now += res.Stall
		ctx.StallCycles += res.Stall
		c.Counters.StallCycles[pc] += res.Stall
		c.Counters.TotalStall += res.Stall
	}
	c.Counters.Exec[pc]++
	c.Counters.TotalRetired++
	c.Counters.TotalBusy += res.Busy
	ctx.Retired++
	ctx.PC = next

	if len(c.observers) > 0 {
		ev := RetireEvent{
			Ctx:       ctx.ID,
			PC:        pc,
			Op:        byte(in.Op),
			Now:       c.Now,
			IsLoad:    in.Op == isa.OpLoad,
			IsStore:   in.Op == isa.OpStore,
			IsAccWait: in.Op == isa.OpAccWait,
			Level:     res.Level,
			MemLat:    res.MemLat,
			Stall:     res.Stall,
			MissedL2: (in.Op == isa.OpLoad || in.Op == isa.OpStore) &&
				(res.Level == mem.LevelL3 || res.Level == mem.LevelDRAM),
			MissedL3: (in.Op == isa.OpLoad || in.Op == isa.OpStore) &&
				res.Level == mem.LevelDRAM,
		}
		for _, o := range c.observers {
			o.OnRetire(ev)
		}
		if takenBranch {
			bev := BranchEvent{Ctx: ctx.ID, From: pc, To: next, Now: c.Now, Cycles: c.Now - c.lastBranchAt}
			for _, o := range c.observers {
				o.OnBranch(bev)
			}
		}
	}
	if takenBranch {
		c.lastBranchAt = c.Now
	}
	return nil
}

// applyMem folds a memory access into the step's busy/stall split: up to
// `absorb` cycles of latency are pipeline-absorbed (busy), the rest is
// exposed stall.
func applyMem(res *StepResult, acc mem.AccessResult, absorb uint64) {
	res.MemLat = acc.Latency
	res.Level = acc.Level
	if acc.Latency > absorb {
		res.Stall += acc.Latency - absorb
		res.Busy += absorb
	} else {
		res.Busy += acc.Latency
	}
}

func condHolds(op isa.Op, flags int) bool {
	switch op {
	case isa.OpJeq:
		return flags == 0
	case isa.OpJne:
		return flags != 0
	case isa.OpJlt:
		return flags < 0
	case isa.OpJle:
		return flags <= 0
	case isa.OpJgt:
		return flags > 0
	case isa.OpJge:
		return flags >= 0
	}
	return false
}

// AdvanceIdle moves the clock forward by n cycles without attributing work
// (used by executors when every context is blocked).
func (c *Core) AdvanceIdle(n uint64) { c.Now += n }

// ChargeSwitch advances the clock by a context-switch cost and attributes
// it to the context being switched out.
func (c *Core) ChargeSwitch(ctx *coro.Context, cost uint64) {
	c.Now += cost
	ctx.SwitchCycles += cost
	ctx.Switches++
}

// Package cpu simulates an in-order core executing the virtual ISA with
// cycle-accurate accounting against the mem hierarchy.
//
// The core owns the global clock. Executors (internal/exec, internal/smt)
// drive one Step at a time and decide what happens at yields; the core
// decides what everything costs. Per-PC hardware counters (ground truth)
// and retire/branch observer hooks (consumed by the PEBS/LBR samplers) are
// both maintained here.
package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Config fixes the instruction cost model and optional SFI sandbox.
type Config struct {
	// Per-class busy costs in cycles.
	CostALU      uint64 // simple ALU, moves, compares
	CostMul      uint64
	CostDiv      uint64
	CostBranch   uint64 // taken or not; the in-order model has no misprediction
	CostLoad     uint64 // issue cost; memory latency is added on top
	CostStore    uint64
	CostPrefetch uint64 // prefetch issue
	CostYield    uint64 // yield instruction retire cost (check only; switch cost is the executor's)
	CostCheck    uint64 // SFI guard
	CostAccel    uint64 // accelerator submission (descriptor write)

	// PipelineAbsorb is the number of memory-latency cycles the in-order
	// pipeline hides for free; latency beyond it counts as stall. It is
	// normally the L1 hit latency, so L1 hits never stall.
	PipelineAbsorb uint64

	// AccelLatency is the onboard accelerator's service time in cycles
	// (450 = 150 ns at 3 GHz, the DSA-class band the paper's §1 names).
	AccelLatency uint64

	// SFI sandbox for OpCheck: accesses must fall in [SandboxLo,
	// SandboxHi). A zero range disables checking (guards retire but never
	// trap).
	SandboxLo uint64
	SandboxHi uint64
}

// DefaultConfig returns the reference core model.
func DefaultConfig() Config {
	return Config{
		CostALU:        1,
		CostMul:        3,
		CostDiv:        20,
		CostBranch:     1,
		CostLoad:       1,
		CostStore:      1,
		CostPrefetch:   1,
		CostYield:      1,
		CostCheck:      1,
		CostAccel:      2,
		PipelineAbsorb: 4,

		AccelLatency: 450,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.CostALU == 0 || c.CostBranch == 0 || c.CostLoad == 0 {
		return fmt.Errorf("cpu: instruction costs must be nonzero")
	}
	if c.SandboxHi < c.SandboxLo {
		return fmt.Errorf("cpu: sandbox range inverted")
	}
	return nil
}

// BusyCost returns the base cost of an opcode (memory latency excluded).
// The instrumentation pipeline uses it for static latency estimates.
func (c Config) BusyCost(op isa.Op) uint64 { return c.busyCost(op) }

// costTable precomputes busyCost for every opcode. The core indexes it
// per retired instruction instead of re-deriving the class switch.
func (c Config) costTable() [isa.NumOps]uint64 {
	var t [isa.NumOps]uint64
	for op := 0; op < isa.NumOps; op++ {
		t[op] = c.busyCost(isa.Op(op))
	}
	return t
}

// busyCost returns the base cost of an opcode (memory latency excluded).
func (c Config) busyCost(op isa.Op) uint64 {
	switch op {
	case isa.OpMul, isa.OpMulI:
		return c.CostMul
	case isa.OpDiv:
		return c.CostDiv
	case isa.OpLoad:
		return c.CostLoad
	case isa.OpStore:
		return c.CostStore
	case isa.OpPrefetch:
		return c.CostPrefetch
	case isa.OpYield, isa.OpCYield:
		return c.CostYield
	case isa.OpCheck:
		return c.CostCheck
	case isa.OpAccel:
		return c.CostAccel
	case isa.OpNop:
		return 1
	default:
		switch op.Kind() {
		case isa.KindBranch, isa.KindCall, isa.KindRet:
			return c.CostBranch
		case isa.KindHalt:
			return 1
		default:
			return c.CostALU
		}
	}
}

package cpu

import (
	"math/rand"
	"testing"
)

// FuzzSuperblockVsBlock is the fuzzing face of
// TestSuperblockVsStepDifferential: any seed must produce byte-identical
// behaviour between the superblock trace tier and per-instruction
// StepInto (which the block engine is separately pinned to by
// FuzzBlockVsStep, making the three-way equivalence transitive). The
// loop flag wraps the random body in a counted backward branch so the
// fuzzer exercises loop superblocks — trace re-entry, residency memos
// across iterations, lap-batched counter flushes — not just one-shot
// traces. The corpus seeds cover both program shapes and both modes.
func FuzzSuperblockVsBlock(f *testing.F) {
	f.Add(int64(1), uint8(20), false, uint8(0), false)
	f.Add(int64(2), uint8(80), false, uint8(0), true)
	f.Add(int64(3), uint8(40), true, uint8(4), true)
	f.Add(int64(4), uint8(90), true, uint8(1), false)
	f.Add(int64(5), uint8(30), false, uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, size uint8, block bool, budget uint8, loop bool) {
		n := 5 + int(size)%86 // program length in [5, 90]
		rng := rand.New(rand.NewSource(seed))
		var b uint64
		if block {
			b = 1 + uint64(budget)%16
		}
		if loop {
			prog := randLoopProgram(rng, n, int64(2+seed%5), 4096)
			diffSuperProgram(t, "fuzz-loop", prog, rng, block, b)
		} else {
			prog := randRunnableProgram(rng, n, 4096)
			diffSuperProgram(t, "fuzz", prog, rng, block, b)
		}
	})
}

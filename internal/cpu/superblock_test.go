package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
)

// sbDeriveSpecs derives static-BTFN superblock traces by a linear scan —
// the in-package mirror of bincfg.SuperblockSpecs, which cannot be
// imported here without an import cycle. Correctness does not depend on
// which traces are chosen (InstallSuperblocks validates and the engine
// side-exits on any misprediction), so the two derivations are
// interchangeable for these tests.
func sbDeriveSpecs(prog *isa.Program) []SuperblockSpec {
	n := len(prog.Instrs)
	chainable := func(op isa.Op) bool {
		return fusableALU(op) || op == isa.OpLoad || op == isa.OpStore ||
			op == isa.OpJmp || op.IsConditional()
	}
	isHead := make([]bool, n)
	var heads []int
	addHead := func(pc int) {
		if pc >= 0 && pc < n && !isHead[pc] && chainable(prog.Instrs[pc].Op) {
			isHead[pc] = true
			heads = append(heads, pc)
		}
	}
	addHead(0)
	for pc := range prog.Instrs {
		in := &prog.Instrs[pc]
		if (in.Op == isa.OpJmp || in.Op.IsConditional()) && in.Target() <= pc {
			addHead(in.Target())
		}
	}
	inTrace := make([]bool, n)
	var specs []SuperblockSpec
	for _, head := range heads {
		var pcs []int
		loop := false
		pc := head
		for len(pcs) < 512 {
			if pc < 0 || pc >= n || inTrace[pc] || !chainable(prog.Instrs[pc].Op) {
				break
			}
			inTrace[pc] = true
			pcs = append(pcs, pc)
			in := &prog.Instrs[pc]
			next := pc + 1
			if in.Op == isa.OpJmp || (in.Op.IsConditional() && in.Target() <= pc) {
				next = in.Target()
			}
			if (in.Op == isa.OpJmp || in.Op.IsConditional()) && next == head {
				loop = true
				break
			}
			pc = next
		}
		for _, p := range pcs {
			inTrace[p] = false
		}
		if len(pcs) >= 2 {
			// Deliberately lower than bincfg's minimum: short traces widen
			// differential coverage of entry/exit boundaries.
			specs = append(specs, SuperblockSpec{PCs: pcs, Loop: loop})
		}
	}
	return specs
}

// driveSuper retires through the superblock tier (block plan plus
// derived traces), chopping fuel into rng-sized pieces so calls stop at
// arbitrary points inside and between trace activations.
func (r *engineRig) driveSuper(block bool, budget uint64, maxSteps int, rng *rand.Rand) {
	r.core.InstallPlan(fastRuns(r.core.Prog))
	if err := r.core.InstallSuperblocks(sbDeriveSpecs(r.core.Prog)); err != nil {
		r.err = err
		return
	}
	var res BlockResult
	var used int
	for used < maxSteps && !r.ctx.Halted {
		fuel := uint64(1 + rng.Intn(40))
		if rem := uint64(maxSteps - used); fuel > rem {
			fuel = rem
		}
		if err := r.core.RunBlock(r.ctx, block, fuel, budget, &res); err != nil {
			r.err = err
			return
		}
		used += int(res.Steps)
		if block && res.Stall > 0 {
			r.ctx.StallCycles += res.Stall
			r.core.AdvanceIdle(res.Stall)
		}
	}
}

// diffSuperProgram runs prog through the per-instruction reference and
// the superblock tier from identical initial state and asserts
// byte-identical observables — the same contract block_test.go pins for
// the block engine, extended one tier up.
func diffSuperProgram(t *testing.T, label string, prog *isa.Program, rng *rand.Rand, block bool, budget uint64) {
	t.Helper()
	var initRegs [isa.NumRegs]uint64
	for r := 0; r < 12; r++ {
		initRegs[r] = uint64(rng.Intn(1 << 20))
	}
	arena := make([]uint64, 512)
	for i := range arena {
		arena[i] = uint64(rng.Intn(1 << 24))
	}
	a := newEngineRig(prog, initRegs, arena)
	b := newEngineRig(prog, initRegs, arena)
	const maxSteps = 1 << 20
	a.driveStep(block, maxSteps)
	b.driveSuper(block, budget, maxSteps, rng)
	assertRigsEqual(t, label, a, b)
}

// randLoopProgram wraps a random straight-line body in a counted loop:
// the body (forward branches only, memory confined to the r13 arena)
// falls through into a loop latch on r12, which the generator's body
// never touches. The backward latch makes the whole program a loop-
// superblock candidate, and re-running the body exercises residency
// memos across iterations.
func randLoopProgram(rng *rand.Rand, n int, iters int64, arenaSize int64) *isa.Program {
	p := randRunnableProgram(rng, n, arenaSize)
	p.Instrs = p.Instrs[:len(p.Instrs)-1] // drop HALT; targets of n now hit the latch
	p.Instrs = append(p.Instrs,
		isa.Instr{Op: isa.OpAddI, Rd: 12, Rs1: 12, Imm: 1},
		isa.Instr{Op: isa.OpCmpI, Rs1: 12, Imm: iters},
		isa.Instr{Op: isa.OpJlt, Imm: 0},
		isa.Instr{Op: isa.OpHalt},
	)
	return p
}

// TestSuperblockVsStepDifferential is the acceptance pin for the
// superblock tier: across ≥1000 random programs — straight-line and
// looping — the specialized trace loops must be byte-identical to
// per-instruction StepInto.
func TestSuperblockVsStepDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 700; trial++ {
		prog := randRunnableProgram(rng, 10+rng.Intn(80), 4096)
		diffSuperProgram(t, "sb-trial", prog, rng, false, 0)
	}
	for trial := 0; trial < 300; trial++ {
		prog := randLoopProgram(rng, 5+rng.Intn(40), int64(2+rng.Intn(6)), 4096)
		diffSuperProgram(t, "sb-loop-trial", prog, rng, false, 0)
	}
}

// TestSuperblockVsStepSMT replays random loop programs in block mode
// under tight quantum budgets: a superblock activation must clip at
// exactly the busy cycle the reference does, expose the same stalls on
// the same instructions, and resume mid-trace without drift.
func TestSuperblockVsStepSMT(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		prog := randRunnableProgram(rng, 10+rng.Intn(80), 4096)
		budget := uint64(1 + rng.Intn(8)) // incl. quantum 4, the SMT default
		diffSuperProgram(t, "sb-smt", prog, rng, true, budget)
	}
	for trial := 0; trial < 150; trial++ {
		prog := randLoopProgram(rng, 5+rng.Intn(40), int64(2+rng.Intn(6)), 4096)
		budget := uint64(1 + rng.Intn(8))
		diffSuperProgram(t, "sb-smt-loop", prog, rng, true, budget)
	}
}

// TestSuperblockCallsAndLoops covers mixed trace/non-trace flow: a hot
// loop with memory traffic (loop-superblock candidate) interrupted every
// iteration by a CALL, which is not traceable — so execution alternates
// between trace activations and generic dispatch.
func TestSuperblockCallsAndLoops(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 0
    loop:
        add  r4, r2, r13
        load r3, [r4]
        add  r1, r1, r3
        call bump
        addi r2, r2, 64
        andi r2, r2, 0xFFF
        cmpi r0, 400
        jlt  loop
        halt
    bump:
        addi r0, r0, 1
        mul  r5, r0, r0
        ret
    `)
	rng := rand.New(rand.NewSource(7))
	diffSuperProgram(t, "sb-calls-loops", prog, rng, false, 0)
}

// TestSuperblockFaults pins the fault surface through the trace loop: a
// faulting memory step must park the PC on the faulting instruction with
// the exact counter state — including the batched per-PC Exec flush of
// every instruction retired before the fault — StepInto produces.
func TestSuperblockFaults(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 0
    loop:
        addi r1, r1, 1
        add  r4, r2, r13
        load r3, [r4]
        addi r2, r2, 1048576
        cmpi r1, 10
        jlt  loop
        halt
    `)
	rng := rand.New(rand.NewSource(11))
	diffSuperProgram(t, "sb-fault", prog, rng, false, 0)
	// Same program, store side.
	sprog := isa.MustAssemble(`
        movi r2, 0
    loop:
        addi r1, r1, 1
        add  r4, r2, r13
        store [r4], r1
        addi r2, r2, 1048576
        cmpi r1, 10
        jlt  loop
        halt
    `)
	diffSuperProgram(t, "sb-fault-store", sprog, rng, false, 0)
}

// TestSuperblockFlushInvalidation drives the reference and the trace
// tier in lockstep with a hierarchy Flush injected at every pause: the
// flush advances the residency generation, so armed memos must re-prove
// (and fail, falling back to the full walk) instead of replaying stale
// hits.
func TestSuperblockFlushInvalidation(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        load r3, [r13]
        load r4, [r13+8]
        add  r5, r3, r4
        cmpi r1, 300
        jlt  loop
        halt
    `)
	var initRegs [isa.NumRegs]uint64
	arena := make([]uint64, 512)
	for i := range arena {
		arena[i] = uint64(i * 3)
	}
	a := newEngineRig(prog, initRegs, arena)
	b := newEngineRig(prog, initRegs, arena)
	b.core.InstallPlan(fastRuns(prog))
	if err := b.core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
		t.Fatal(err)
	}
	var sr StepResult
	var br BlockResult
	for !b.ctx.Halted {
		if err := b.core.RunBlock(b.ctx, false, 17, 0, &br); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < br.Steps; i++ {
			if err := a.core.StepInto(a.ctx, false, &sr); err != nil {
				t.Fatal(err)
			}
		}
		a.core.Hier.Flush()
		b.core.Hier.Flush()
	}
	assertRigsEqual(t, "sb-flush", a, b)
}

// TestSuperblockMemoArms is the white-box check that the residency memo
// actually engages: after a hot loop whose loads hit one resident line,
// some compiled mem step must hold an armed memo (otherwise the
// AccessResident path was never reachable and the differential suite was
// vacuously passing on the slow path).
func TestSuperblockMemoArms(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        load r3, [r13]
        add  r5, r5, r3
        cmpi r1, 200
        jlt  loop
        halt
    `)
	rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 64))
	rig.core.InstallPlan(fastRuns(prog))
	if err := rig.core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
		t.Fatal(err)
	}
	var res BlockResult
	for !rig.ctx.Halted {
		if err := rig.core.RunBlock(rig.ctx, false, 1<<20, 0, &res); err != nil {
			t.Fatal(err)
		}
	}
	armed := false
	for i := range rig.core.sbs {
		for _, st := range rig.core.sbs[i].steps {
			if st.kind == sbMem && st.memoGen != 0 {
				armed = true
			}
		}
	}
	if !armed {
		t.Fatal("no mem step armed its residency memo after a hot resident loop")
	}
	if got := rig.core.Hier.Gen(); got == 0 {
		t.Fatalf("hierarchy generation = 0, want nonzero (reserved as 'never proven')")
	}
}

// TestSuperblockObserverFallback pins the profiling contract one tier
// up: with an observer attached, a core with superblocks installed must
// deliver the identical per-instruction event stream StepInto does —
// the trace tier, like the block engine, is bypassed entirely.
func TestSuperblockObserverFallback(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        add  r4, r1, r13
        andi r4, r4, 0xFF8
        add  r4, r4, r13
        load r3, [r4]
        cmpi r1, 200
        jlt  loop
        halt
    `)
	run := func(useSuper bool) (*engineRig, []RetireEvent, []BranchEvent) {
		rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 1024))
		rec := &blockEventRecorder{}
		rig.core.Observe(rec)
		if useSuper {
			rig.core.InstallPlan(fastRuns(prog))
			if err := rig.core.InstallSuperblocks(sbDeriveSpecs(prog)); err != nil {
				t.Fatal(err)
			}
			var res BlockResult
			for !rig.ctx.Halted {
				if err := rig.core.RunBlock(rig.ctx, false, 1<<20, 0, &res); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			var res StepResult
			for !rig.ctx.Halted {
				if err := rig.core.StepInto(rig.ctx, false, &res); err != nil {
					t.Fatal(err)
				}
			}
		}
		return rig, rec.retires, rec.branches
	}
	a, aRet, aBr := run(false)
	b, bRet, bBr := run(true)
	if !reflect.DeepEqual(aRet, bRet) {
		t.Fatalf("retire event streams diverge: %d vs %d events", len(aRet), len(bRet))
	}
	if !reflect.DeepEqual(aBr, bBr) {
		t.Fatalf("branch event streams diverge: %d vs %d events", len(aBr), len(bBr))
	}
	assertRigsEqual(t, "sb-observer-fallback", a, b)
}

// TestInstallSuperblocksValidation exercises the defensive checks: a
// buggy deriver must be rejected at install, never mis-executed.
func TestInstallSuperblocksValidation(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
    loop:
        addi r1, r1, 1
        load r3, [r13]
        cmpi r1, 10
        jlt  loop
        call sub
        halt
    sub:
        ret
    `)
	rig := newEngineRig(prog, [isa.NumRegs]uint64{}, make([]uint64, 64))
	cases := []struct {
		name string
		spec SuperblockSpec
	}{
		{"empty", SuperblockSpec{}},
		{"pc out of range", SuperblockSpec{PCs: []int{0, 99}}},
		{"negative pc", SuperblockSpec{PCs: []int{-1}}},
		{"not traceable (call)", SuperblockSpec{PCs: []int{5}}},
		{"disconnected", SuperblockSpec{PCs: []int{0, 2}}},
		{"branch to unrelated pc", SuperblockSpec{PCs: []int{3, 4, 0}}},
		{"loop closing on non-branch", SuperblockSpec{PCs: []int{1, 2}, Loop: true}},
	}
	for _, tc := range cases {
		if err := rig.core.InstallSuperblocks([]SuperblockSpec{tc.spec}); err == nil {
			t.Errorf("%s: install accepted invalid spec %+v", tc.name, tc.spec)
		}
	}
	// And the valid loop trace installs.
	valid := SuperblockSpec{PCs: []int{1, 2, 3, 4}, Loop: true}
	if err := rig.core.InstallSuperblocks([]SuperblockSpec{valid}); err != nil {
		t.Fatalf("valid loop spec rejected: %v", err)
	}
	if !rig.core.HasSuperblocks() {
		t.Fatal("HasSuperblocks false after install")
	}
	rig.core.ClearSuperblocks()
	if rig.core.HasSuperblocks() {
		t.Fatal("HasSuperblocks true after clear")
	}
}

package cpu

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestStepSteadyStateAllocFree guards the tentpole property on the core:
// once warmed up, stepping instructions — loads and stores included —
// performs zero heap allocations.
func TestStepSteadyStateAllocFree(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2    ; address in [4096, 8192): clear of the null guard
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res StepResult
	// Warm-up: past cold caches and any first-use growth.
	for i := 0; i < 2000; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			t.Fatalf("warm-up step %d: %v", i, err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := core.StepInto(ctx, false, &res); err != nil {
			t.Fatalf("step: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocated %.1f times per run, want 0", allocs)
	}
}

// aluLoopProgram builds the block engine's best case and the dispatch
// overhead's worst case: a straight-line body of `body` fusable ALU
// instructions closed by a compare and backward branch, matching the
// paper's observation that retired instructions concentrate in
// straight-line stretches between yields.
func aluLoopProgram(body int) *isa.Program {
	p := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 0},
	}}
	for i := 0; i < body; i++ {
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpAddI, Rd: isa.Reg(2 + i%6), Rs1: isa.Reg(2 + i%6), Imm: int64(i)})
	}
	p.Instrs = append(p.Instrs,
		isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1},
		isa.Instr{Op: isa.OpCmpI, Rs1: 1, Imm: 1 << 30},
		isa.Instr{Op: isa.OpJlt, Imm: 1},
	)
	return p
}

// TestRunBlockSteadyStateAllocFree pins the block engine's allocation
// contract: retiring whole blocks — fused ALU segments, memory ops and
// branches included — performs zero heap allocations per call.
func TestRunBlockSteadyStateAllocFree(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	core.InstallPlan(fastRuns(prog))
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res BlockResult
	for i := 0; i < 50; i++ {
		if err := core.RunBlock(ctx, false, 100, 0, &res); err != nil {
			t.Fatalf("warm-up block %d: %v", i, err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := core.RunBlock(ctx, false, 100, 0, &res); err != nil {
			t.Fatalf("block: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunBlock allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCoreBlock measures the block engine on an ALU-heavy loop (a
// 64-instruction straight-line body), the shape the fast path exists
// for. Each op retires blockFuel instructions; ns/instr is reported as
// its own metric for comparison against BenchmarkCoreStep's ns/op.
func BenchmarkCoreBlock(b *testing.B) {
	const blockFuel = 1024
	prog := aluLoopProgram(64)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	core.InstallPlan(fastRuns(prog))
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res BlockResult
	if err := core.RunBlock(ctx, false, 10_000, 0, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.RunBlock(ctx, false, blockFuel, 0, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blockFuel), "ns/instr")
}

// BenchmarkCoreStepALU is BenchmarkCoreBlock's control: the identical
// ALU-heavy loop retired per-instruction through StepInto. The ratio of
// the two ns/instr metrics is the block engine's speedup.
func BenchmarkCoreStepALU(b *testing.B) {
	prog := aluLoopProgram(64)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res StepResult
	for i := 0; i < 2000; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/instr")
}

// BenchmarkCoreStep measures the bare per-instruction step cost in steady
// state. Run with -benchmem: the expectation is 0 allocs/op.
func BenchmarkCoreStep(b *testing.B) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res StepResult
	for i := 0; i < 2000; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
}

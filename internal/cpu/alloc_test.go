package cpu

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestStepSteadyStateAllocFree guards the tentpole property on the core:
// once warmed up, stepping instructions — loads and stores included —
// performs zero heap allocations.
func TestStepSteadyStateAllocFree(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2    ; address in [4096, 8192): clear of the null guard
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res StepResult
	// Warm-up: past cold caches and any first-use growth.
	for i := 0; i < 2000; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			t.Fatalf("warm-up step %d: %v", i, err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := core.StepInto(ctx, false, &res); err != nil {
			t.Fatalf("step: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCoreStep measures the bare per-instruction step cost in steady
// state. Run with -benchmem: the expectation is 0 allocs/op.
func BenchmarkCoreStep(b *testing.B) {
	prog := isa.MustAssemble(`
        movi r1, 0
        movi r2, 4096
    loop:
        add   r4, r1, r2
        load  r3, [r4]
        store [r4+8], r3
        addi  r1, r1, 64
        andi  r1, r1, 0xFFF
        jmp   loop
    `)
	m := mem.NewMemory(1 << 20)
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := MustNewCore(DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)

	var res StepResult
	for i := 0; i < 2000; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.StepInto(ctx, false, &res); err != nil {
			b.Fatal(err)
		}
	}
}

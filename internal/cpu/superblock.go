package cpu

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file is the superblock (trace) execution tier above the
// basic-block engine. A superblock chains hot basic blocks across
// predicted-taken branches — typically discovered by bincfg from the CFG
// plus pebs LBR edge counts — into one pre-decoded trace with a
// specialized retire loop:
//
//   - pure-ALU stretches are compiled to micro-ops with pre-extended
//     immediates, pre-masked shift amounts and pre-masked register
//     indices, so the retire loop runs with no bounds checks and no
//     per-instruction operand decoding; homogeneous `addi r, r, imm`
//     runs get their own switch-free loop;
//   - per-PC Exec counters are batched: the trace counts completed
//     traversals and flushes the per-PC increments once on exit, instead
//     of one read-modify-write per retired instruction;
//   - memory steps memoize the line they last found L1-resident, keyed
//     to the hierarchy's residency generation (mem.Hierarchy.Gen, which
//     advances on every fill, eviction and flush). While the memo holds,
//     the access takes mem.AccessResident — a self-verifying replay of
//     the MRU-hit case that skips the full set walk;
//   - every branch in the trace is a guarded side exit: the branch
//     executes with full scalar semantics, and if its actual successor
//     differs from the predicted chain the trace exits to RunBlock's
//     generic loop at the real target. Mispredictions cost speed, never
//     correctness.
//
// The fallback ladder is literal: a superblock step that cannot proceed
// (fuel, SMT busy budget, side exit) drops to RunBlock's block dispatch
// at an exact instruction boundary, and RunBlock itself drops to the
// per-instruction StepInto loop when observers are attached or no plan
// is installed. Every stop condition, fault surface, counter and clock
// movement is byte-identical to the equivalent RunBlock (and therefore
// StepInto) sequence; internal/cpu/superblock_test.go pins this
// differentially and FuzzSuperblockVsBlock extends it to arbitrary
// seeds.

// SuperblockSpec describes one trace to compile: the chained program
// counters in predicted execution order. Consecutive entries must be
// connected — pcs[i+1] is pcs[i]+1 for straight-line instructions, and
// either the fall-through or the branch target for branches (the chain
// direction *is* the prediction). Loop marks a trace whose final branch
// is predicted to re-enter the trace head (a loop superblock); a
// non-loop trace simply exits after its last instruction.
type SuperblockSpec struct {
	PCs  []int
	Loop bool
}

// Superblock step kinds.
const (
	sbALU     uint8 = iota // fused ALU segment, generic micro-op loop
	sbALUAddI              // homogeneous `addi r, r, imm` segment, pre-aggregated
	sbMem                  // one load or store
	sbBranch               // one branch: guarded side exit
)

// sbAddISelfMin is the shortest homogeneous `addi r, r, imm` run that is
// split out of a generic ALU segment into the switch-free loop.
const sbAddISelfMin = 8

// sbUop is one pre-decoded ALU micro-op. Register indices are
// pre-masked to [0,16) so the retire loop's `&15` proves in-bounds
// indexing to the compiler; immediates are pre-sign-extended, and shift
// immediates pre-masked to [0,64).
type sbUop struct {
	op           uint8
	rd, rs1, rs2 uint8
	imm          uint64
}

// sbStep is one compiled superblock step. The fields form a tagged
// union over kind; mem steps additionally carry the mutable residency
// memo (superblocks are per-core state, like the block plan).
type sbStep struct {
	kind uint8
	op   uint8 // isa.Op: mem (Load/Store) and branch steps
	rd   uint8 // mem: load destination / store source register
	rs1  uint8 // mem: base address register
	pc   int32 // pc of the step's first instruction
	n    int32 // ALU: instruction count
	lo   int32 // ALU: micro-op range start in superblock.uops
	nu   int32 // ALU: micro-op count (< n for aggregated addi segments)

	target   int32 // branch: taken target
	predNext int32 // branch: successor pc on the predicted path (-1: none)
	nextStep int32 // branch: step index on the predicted path (-1: exit)

	cost uint64 // ALU: aggregate busy cost; mem/branch: base op cost
	imm  uint64 // mem: address displacement (two's complement)

	memoLine uint64 // mem: line last observed L1-resident
	memoGen  uint64 // mem: hierarchy generation of that observation (0 = none)
}

// superblock is one compiled trace.
type superblock struct {
	entry int32
	steps []sbStep
	uops  []sbUop
}

// InstallSuperblocks compiles and installs the given traces, enabling
// the superblock tier in RunBlock. Specs are validated defensively —
// connectivity, op admissibility, loop closure — so a buggy deriver
// surfaces as an install error, never as wrong execution. A later spec
// with the same entry pc replaces the earlier one. Superblocks compose
// with (and require, at run time) an installed block plan; observers
// disable them along with the whole block engine.
func (c *Core) InstallSuperblocks(specs []SuperblockSpec) error {
	entry := make([]int32, len(c.instrs))
	for i := range entry {
		entry[i] = -1
	}
	sbs := make([]superblock, 0, len(specs))
	for si := range specs {
		sb, err := c.compileSuperblock(&specs[si])
		if err != nil {
			return err
		}
		if prev := entry[sb.entry]; prev >= 0 {
			sbs[prev] = *sb
			continue
		}
		entry[sb.entry] = int32(len(sbs))
		sbs = append(sbs, *sb)
	}
	c.sbs = sbs
	c.sbEntry = entry
	c.sbLineMask = c.Hier.LineMask()
	return nil
}

// HasSuperblocks reports whether a superblock set is installed.
func (c *Core) HasSuperblocks() bool { return c.sbEntry != nil }

// ClearSuperblocks removes the superblock set, dropping RunBlock back to
// plain block dispatch (used by equivalence tests).
func (c *Core) ClearSuperblocks() {
	c.sbs = nil
	c.sbEntry = nil
}

// sbTraceable reports whether op may appear inside a superblock: pure
// ALU, loads/stores, and branches. Calls, returns, yields, halts,
// prefetches, SFI checks and accelerator ops end trace formation — they
// carry executor-visible or cross-instruction state the specialized
// loop does not model.
func sbTraceable(op isa.Op) bool {
	return fusableALU(op) || op == isa.OpLoad || op == isa.OpStore ||
		op == isa.OpJmp || op.IsConditional()
}

// compileSuperblock validates one spec against the program and compiles
// it into step/micro-op form.
func (c *Core) compileSuperblock(spec *SuperblockSpec) (*superblock, error) {
	pcs := spec.PCs
	if len(pcs) == 0 {
		return nil, fmt.Errorf("cpu: empty superblock spec")
	}
	n := len(c.instrs)
	for i, pc := range pcs {
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("cpu: superblock pc %d out of range", pc)
		}
		in := &c.instrs[pc]
		if !sbTraceable(in.Op) {
			return nil, fmt.Errorf("cpu: superblock pc %d: %v is not traceable", pc, in.Op)
		}
		branch := in.Op == isa.OpJmp || in.Op.IsConditional()
		next := -1
		if i+1 < len(pcs) {
			next = pcs[i+1]
		} else if spec.Loop {
			next = pcs[0]
		}
		if next < 0 {
			continue
		}
		switch {
		case !branch && next != pc+1:
			return nil, fmt.Errorf("cpu: superblock pcs %d -> %d not connected", pc, next)
		case branch && next != pc+1 && next != in.Target():
			return nil, fmt.Errorf("cpu: superblock branch %d -> %d is neither fall-through nor target", pc, next)
		case in.Op == isa.OpJmp && next != in.Target():
			return nil, fmt.Errorf("cpu: superblock jmp %d predicted fall-through", pc)
		}
	}
	if spec.Loop {
		lastOp := c.instrs[pcs[len(pcs)-1]].Op
		if lastOp != isa.OpJmp && !lastOp.IsConditional() {
			return nil, fmt.Errorf("cpu: loop superblock must close with a branch, got %v", lastOp)
		}
	}

	sb := &superblock{entry: int32(pcs[0])}
	i := 0
	for i < len(pcs) {
		pc := pcs[i]
		in := &c.instrs[pc]
		switch {
		case fusableALU(in.Op):
			j := i
			for j < len(pcs) && fusableALU(c.instrs[pcs[j]].Op) {
				j++
			}
			c.compileALURun(sb, pcs[i:j])
			i = j
		case in.Op == isa.OpLoad || in.Op == isa.OpStore:
			st := sbStep{
				kind: sbMem,
				op:   uint8(in.Op),
				rs1:  uint8(in.Rs1) & 15,
				pc:   int32(pc),
				cost: c.costs[in.Op],
				imm:  uint64(in.Imm),
			}
			if in.Op == isa.OpLoad {
				st.rd = uint8(in.Rd) & 15
			} else {
				st.rd = uint8(in.Rs2) & 15
			}
			sb.steps = append(sb.steps, st)
			i++
		default: // branch
			st := sbStep{
				kind:     sbBranch,
				op:       uint8(in.Op),
				pc:       int32(pc),
				target:   int32(in.Target()),
				predNext: -1,
				nextStep: -1,
				cost:     c.costs[in.Op],
			}
			if i+1 < len(pcs) {
				st.predNext = int32(pcs[i+1])
				st.nextStep = int32(len(sb.steps)) + 1
			} else if spec.Loop {
				st.predNext = int32(pcs[0])
				st.nextStep = 0
			}
			sb.steps = append(sb.steps, st)
			i++
		}
	}
	return sb, nil
}

// compileALURun compiles one maximal fusable stretch (consecutive pcs)
// into ALU steps, splitting out homogeneous `addi r, r, imm` runs of at
// least sbAddISelfMin instructions into the switch-free kind.
func (c *Core) compileALURun(sb *superblock, pcs []int) {
	selfLen := make([]int, len(pcs)+1)
	for k := len(pcs) - 1; k >= 0; k-- {
		in := &c.instrs[pcs[k]]
		if in.Op == isa.OpAddI && in.Rd == in.Rs1 {
			selfLen[k] = selfLen[k+1] + 1
		}
	}
	k := 0
	for k < len(pcs) {
		kind := sbALU
		j := k + 1
		if selfLen[k] >= sbAddISelfMin {
			kind = sbALUAddI
			j = k + selfLen[k]
		} else {
			for j < len(pcs) && selfLen[j] < sbAddISelfMin {
				j++
			}
		}
		st := sbStep{kind: kind, pc: int32(pcs[k]), n: int32(j - k), lo: int32(len(sb.uops))}
		if kind == sbALUAddI {
			// Strength-reduce the run to per-register deltas: a segment
			// of `addi r, r, imm` only ever adds immediates into
			// registers, the segment executes all-or-nothing, and nothing
			// inside it observes intermediate values — so its whole
			// architectural effect is at most 16 aggregated additions,
			// independent of run length. uint64 addition commutes modulo
			// 2^64, so wrap-around is bit-identical too.
			var sum [16]uint64
			var touched [16]bool
			var order [16]uint8
			nu := 0
			for _, pc := range pcs[k:j] {
				in := &c.instrs[pc]
				rd := uint8(in.Rd) & 15
				if !touched[rd] {
					touched[rd] = true
					order[nu] = rd
					nu++
				}
				sum[rd] += uint64(in.Imm)
				st.cost += c.costs[in.Op]
			}
			for _, rd := range order[:nu] {
				sb.uops = append(sb.uops, sbUop{op: uint8(isa.OpAddI), rd: rd, rs1: rd, imm: sum[rd]})
			}
			st.nu = int32(nu)
		} else {
			for _, pc := range pcs[k:j] {
				in := &c.instrs[pc]
				imm := uint64(in.Imm)
				if in.Op == isa.OpShlI || in.Op == isa.OpShrI {
					imm &= 63
				}
				sb.uops = append(sb.uops, sbUop{
					op:  uint8(in.Op),
					rd:  uint8(in.Rd) & 15,
					rs1: uint8(in.Rs1) & 15,
					rs2: uint8(in.Rs2) & 15,
					imm: imm,
				})
				st.cost += c.costs[in.Op]
			}
			st.nu = st.n
		}
		sb.steps = append(sb.steps, st)
		k = j
	}
}

// flushSuperExec applies the batched per-PC Exec increments of one
// runSuper activation: every step retired `laps` full traversals, plus
// one more for the first `partial` steps of the unfinished lap. Totals
// (TotalRetired, TotalBusy, clock) are maintained live during the run —
// only the per-PC array writes are batched — so this must run before
// any return to generic dispatch, including faults.
func (c *Core) flushSuperExec(sb *superblock, laps uint64, partial int) {
	exec := c.Counters.Exec
	for k := range sb.steps {
		st := &sb.steps[k]
		add := laps
		if k < partial {
			add++
		}
		if add == 0 {
			return // laps == 0 and k >= partial: nothing later retired either
		}
		if st.kind == sbMem || st.kind == sbBranch {
			exec[st.pc] += add
		} else {
			seg := exec[st.pc : st.pc+st.n]
			for i := range seg {
				seg[i] += add
			}
		}
	}
}

// runSuper executes one superblock activation for RunBlock: it enters at
// the trace head and retires steps — looping for loop superblocks —
// until a side exit, fuel or busy-budget expiry, an exposed stall in
// block mode, or a fault. State is exchanged with RunBlock's locals
// through pointers; on return pc is always an exact instruction
// boundary. done=true means RunBlock must stop (res is filled as the
// generic loop would have); progressed=false means not a single
// instruction retired, so the caller must fall back to generic dispatch
// to guarantee forward progress.
//
//shsim:noalloc
func (c *Core) runSuper(sb *superblock, ctx *coro.Context, block bool, fuel, busyBudget uint64, res *BlockResult, pcp *int, stepsp, busyAccp *uint64) (done, progressed bool, err error) {
	var (
		regs     = &ctx.Regs
		counters = c.Counters
		absorb   = c.Cfg.PipelineAbsorb
		steps    = *stepsp
		busyAcc  = *busyAccp
		start    = steps
		laps     uint64
		si       int
		stepsA   = sb.steps
	)
	leave := func(pc, partial int) {
		c.flushSuperExec(sb, laps, partial)
		*pcp = pc
		*stepsp = steps
		*busyAccp = busyAcc
	}

	for {
		st := &stepsA[si]
		switch st.kind {
		case sbALU, sbALUAddI:
			// Mirrors RunBlock's fused segment: all-or-nothing against
			// fuel and the busy budget (strict <, so the budget can never
			// expire mid-segment), bulk accounting afterwards.
			nn := uint64(st.n)
			if nn > fuel-steps || (busyBudget != 0 && busyAcc+st.cost >= busyBudget) {
				leave(int(st.pc), si)
				return false, steps > start, nil
			}
			uops := sb.uops[st.lo : st.lo+st.nu]
			if st.kind == sbALUAddI {
				for j := range uops {
					u := &uops[j]
					regs[u.rd&15] += u.imm
				}
			} else {
				for j := range uops {
					u := &uops[j]
					switch isa.Op(u.op) {
					case isa.OpNop:
					case isa.OpMovI:
						regs[u.rd&15] = u.imm
					case isa.OpMov:
						regs[u.rd&15] = regs[u.rs1&15]
					case isa.OpAdd:
						regs[u.rd&15] = regs[u.rs1&15] + regs[u.rs2&15]
					case isa.OpSub:
						regs[u.rd&15] = regs[u.rs1&15] - regs[u.rs2&15]
					case isa.OpMul:
						regs[u.rd&15] = regs[u.rs1&15] * regs[u.rs2&15]
					case isa.OpDiv:
						if regs[u.rs2&15] == 0 {
							regs[u.rd&15] = 0
						} else {
							regs[u.rd&15] = regs[u.rs1&15] / regs[u.rs2&15]
						}
					case isa.OpAnd:
						regs[u.rd&15] = regs[u.rs1&15] & regs[u.rs2&15]
					case isa.OpOr:
						regs[u.rd&15] = regs[u.rs1&15] | regs[u.rs2&15]
					case isa.OpXor:
						regs[u.rd&15] = regs[u.rs1&15] ^ regs[u.rs2&15]
					case isa.OpShl:
						regs[u.rd&15] = regs[u.rs1&15] << (regs[u.rs2&15] & 63)
					case isa.OpShr:
						regs[u.rd&15] = regs[u.rs1&15] >> (regs[u.rs2&15] & 63)
					case isa.OpAddI:
						regs[u.rd&15] = regs[u.rs1&15] + u.imm
					case isa.OpMulI:
						regs[u.rd&15] = regs[u.rs1&15] * u.imm
					case isa.OpAndI:
						regs[u.rd&15] = regs[u.rs1&15] & u.imm
					case isa.OpShlI:
						regs[u.rd&15] = regs[u.rs1&15] << u.imm
					case isa.OpShrI:
						regs[u.rd&15] = regs[u.rs1&15] >> u.imm
					case isa.OpCmp:
						ctx.Flags = sign(int64(regs[u.rs1&15]), int64(regs[u.rs2&15]))
					case isa.OpCmpI:
						ctx.Flags = sign(int64(regs[u.rs1&15]), int64(u.imm))
					}
				}
			}
			c.Now += st.cost
			ctx.BusyCycles += st.cost
			counters.TotalBusy += st.cost
			counters.TotalRetired += nn
			ctx.Retired += nn
			busyAcc += st.cost
			steps += nn
			si++
			if si == len(stepsA) {
				leave(int(st.pc)+int(st.n), si)
				return false, true, nil
			}

		case sbMem:
			if steps >= fuel {
				leave(int(st.pc), si)
				return false, steps > start, nil
			}
			pc := int(st.pc)
			isStore := isa.Op(st.op) == isa.OpStore
			addr := regs[st.rs1&15] + st.imm
			var acc mem.AccessResult
			if st.memoGen == c.Hier.Gen() && addr&c.sbLineMask == st.memoLine {
				r, ok := c.Hier.AccessResident(addr, c.Now, isStore)
				if ok {
					acc = r
				} else {
					st.memoGen = 0
					acc = c.Hier.AccessW(addr, c.Now, isStore)
				}
			} else {
				acc = c.Hier.AccessW(addr, c.Now, isStore)
				if acc.Level == mem.LevelL1 {
					// An L1 hit leaves the line MRU at every level: arm
					// the memo for the next traversal.
					st.memoLine = addr & c.sbLineMask
					st.memoGen = c.Hier.Gen()
				}
			}
			busy := st.cost
			var stall uint64
			if acc.Latency > absorb {
				stall = acc.Latency - absorb
				busy += absorb
			} else {
				busy += acc.Latency
			}
			if !isStore {
				v, rerr := c.Mem.Read64(addr)
				if rerr != nil {
					leave(pc, si)
					return false, steps > start, c.fault(ctx.ID, pc, rerr) //shsim:alloc-ok cold fault path; ends the run
				}
				regs[st.rd&15] = v
				counters.Loads[pc]++
			} else {
				if werr := c.Mem.Write64(addr, regs[st.rd&15]); werr != nil {
					leave(pc, si)
					return false, steps > start, c.fault(ctx.ID, pc, werr) //shsim:alloc-ok cold fault path; ends the run
				}
				counters.Stores[pc]++
			}
			if acc.MissedL2 {
				counters.MissL2[pc]++
			}
			if acc.Level == mem.LevelDRAM {
				counters.MissL3[pc]++
			}
			c.Now += busy
			ctx.BusyCycles += busy
			if stall > 0 && !block {
				c.Now += stall
				ctx.StallCycles += stall
				counters.StallCycles[pc] += stall
				counters.TotalStall += stall
			}
			counters.TotalRetired++
			counters.TotalBusy += busy
			ctx.Retired++
			busyAcc += busy
			steps++
			si++
			if block && stall > 0 {
				leave(pc+1, si)
				res.Stall = stall
				return true, true, nil
			}
			if busyBudget != 0 && busyAcc >= busyBudget {
				leave(pc+1, si)
				return true, true, nil
			}
			if si == len(stepsA) {
				leave(pc+1, si)
				return false, true, nil
			}

		case sbBranch:
			if steps >= fuel {
				leave(int(st.pc), si)
				return false, steps > start, nil
			}
			pc := int(st.pc)
			op := isa.Op(st.op)
			next := pc + 1
			taken := false
			if op == isa.OpJmp || condHolds(op, ctx.Flags) {
				next = int(st.target)
				taken = true
			}
			busy := st.cost
			c.Now += busy
			ctx.BusyCycles += busy
			counters.TotalRetired++
			counters.TotalBusy += busy
			ctx.Retired++
			busyAcc += busy
			steps++
			if taken {
				c.lastBranchAt = c.Now
			}
			predicted := st.nextStep >= 0 && int32(next) == st.predNext
			if predicted {
				if st.nextStep == 0 {
					laps++
					si = 0
				} else {
					si = int(st.nextStep)
				}
			} else {
				si++ // count the branch in the partial lap; exiting below
			}
			if busyBudget != 0 && busyAcc >= busyBudget {
				leave(next, si)
				return true, true, nil
			}
			if !predicted {
				leave(next, si)
				return false, true, nil
			}
		}
	}
}

package cpu

import (
	"math/rand"
	"testing"
)

// FuzzBlockVsStep is the fuzzing face of TestBlockVsStepDifferential:
// any seed must produce byte-identical behaviour between the block
// engine and per-instruction StepInto, in both coroutine and SMT
// (block) mode. The corpus seeds cover both modes and a spread of
// program sizes; the fuzzer explores the seed space from there.
func FuzzBlockVsStep(f *testing.F) {
	f.Add(int64(1), uint8(20), false, uint8(0))
	f.Add(int64(2), uint8(80), false, uint8(0))
	f.Add(int64(3), uint8(40), true, uint8(4))
	f.Add(int64(4), uint8(90), true, uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, size uint8, block bool, budget uint8) {
		n := 5 + int(size)%86 // program length in [5, 90]
		rng := rand.New(rand.NewSource(seed))
		prog := randRunnableProgram(rng, n, 4096)
		var b uint64
		if block {
			b = 1 + uint64(budget)%16
		}
		diffOneProgram(t, "fuzz", prog, rng, block, b)
	})
}

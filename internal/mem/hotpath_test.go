package mem

import (
	"math/rand"
	"testing"
)

// This file pins the hierarchy hot-path invariants the superblock tier's
// residency memos and the MRU-way fast path lean on: exact-LRU promotion
// order through the packed-order probe, the read-only contract of the
// presence probes, fills landing into a set mid-sequence, the residency
// generation protocol behind AccessResident, and SharedLLC bank-conflict
// accounting across quantum boundaries.

// orderTags reconstructs a packed-order set's recency order, MRU first,
// from the order word — the ground truth victim selection reads.
func orderTags(c *cache, set uint64) []uint64 {
	n := int(c.used[set])
	base := set * uint64(c.ways)
	out := make([]uint64, 0, n)
	for p := 0; p < n; p++ {
		w := (c.order[set] >> uint(4*p)) & 0xF
		out = append(out, c.tags[base+w])
	}
	return out
}

// TestCacheAccessMatchesReferenceLRU drives the fused access probe —
// including its MRU-way fast path — against a straightforward
// list-shuffling exact-LRU model and compares the full recency order,
// hit/miss outcome, and dirty-victim signal after every access.
func TestCacheAccessMatchesReferenceLRU(t *testing.T) {
	const ways = 4
	c := newCache(ways*64, 64, ways) // single set
	type refEntry struct {
		tag   uint64
		dirty bool
	}
	var model []refEntry // front = MRU
	refAccess := func(tag uint64, write bool) (bool, bool) {
		for i := range model {
			if model[i].tag == tag {
				e := model[i]
				e.dirty = e.dirty || write
				model = append(model[:i], model[i+1:]...)
				model = append([]refEntry{e}, model...)
				return true, false
			}
		}
		e := refEntry{tag, write}
		if len(model) < ways {
			model = append([]refEntry{e}, model...)
			return false, false
		}
		victim := model[len(model)-1]
		model = append([]refEntry{e}, model[:len(model)-1]...)
		return false, victim.dirty
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		tag := uint64(1 + rng.Intn(8)) // 8 hot lines over 4 ways: hits and evictions
		write := rng.Intn(3) == 0
		hit, wasDirty := c.access(tag, write)
		wantHit, wantDirty := refAccess(tag, write)
		if hit != wantHit || wasDirty != wantDirty {
			t.Fatalf("access %d (tag %d, write %v): got (hit=%v, dirty=%v), want (%v, %v)",
				i, tag, write, hit, wasDirty, wantHit, wantDirty)
		}
		got := orderTags(c, 0)
		if len(got) != len(model) {
			t.Fatalf("access %d: occupancy %d, want %d", i, len(got), len(model))
		}
		for p := range got {
			if got[p] != model[p].tag {
				t.Fatalf("access %d: recency position %d holds tag %d, want %d (order %v)",
					i, p, got[p], model[p].tag, got)
			}
		}
	}
}

// TestCacheMRUFastPathNoReorder pins the property the fast path depends
// on: a hit on the most-recent way is a recency no-op, so skipping the
// promotion entirely must leave the order word bit-identical — while a
// write through the fast path must still raise the dirty bit.
func TestCacheMRUFastPathNoReorder(t *testing.T) {
	c := newCache(4*64, 64, 4)
	for tag := uint64(1); tag <= 3; tag++ {
		c.access(tag, false)
	}
	before := c.order[0]
	if hit, _ := c.access(3, false); !hit {
		t.Fatal("re-access of MRU tag 3 missed")
	}
	if c.order[0] != before {
		t.Errorf("MRU re-access changed order word: %#x -> %#x", before, c.order[0])
	}
	idx, ok := c.mruIndex(3)
	if !ok {
		t.Fatal("mruIndex(3) refused after MRU access")
	}
	if c.dirty[idx] {
		t.Fatal("line dirty before any write")
	}
	if hit, _ := c.access(3, true); !hit {
		t.Fatal("MRU write hit missed")
	}
	if !c.dirty[idx] {
		t.Error("MRU fast-path write did not mark the line dirty")
	}
	if c.order[0] != before {
		t.Errorf("MRU write changed order word: %#x -> %#x", before, c.order[0])
	}
	// A non-MRU hit must still promote.
	if hit, _ := c.access(1, false); !hit {
		t.Fatal("tag 1 missed")
	}
	if got := orderTags(c, 0); got[0] != 1 {
		t.Errorf("non-MRU hit did not promote: order %v", got)
	}
}

// TestContainsLeavesStateUntouched checks the presence probes against a
// byte-for-byte snapshot of the replacement state: contains/containsTag
// must not move recency, occupancy, tags, or dirty bits, and a
// subsequent miss must evict the same victim it would have without the
// probes.
func TestContainsLeavesStateUntouched(t *testing.T) {
	c := newCache(2*64, 64, 2) // single 2-way set
	c.access(1, false)
	c.access(2, true) // MRU=2, LRU=1

	snapOrder, snapUsed := c.order[0], c.used[0]
	snapTags := append([]uint64(nil), c.tags...)
	snapDirty := append([]bool(nil), c.dirty...)
	for i := 0; i < 10; i++ {
		c.contains(0)      // hit on LRU line (line 0 → tag 1)
		c.contains(5 * 64) // miss
		c.containsTag(2)   // hit on MRU
		c.containsTag(99)  // miss
	}
	if c.order[0] != snapOrder || c.used[0] != snapUsed {
		t.Fatalf("presence probes perturbed recency: order %#x->%#x used %d->%d",
			snapOrder, c.order[0], snapUsed, c.used[0])
	}
	for i := range snapTags {
		if c.tags[i] != snapTags[i] || c.dirty[i] != snapDirty[i] {
			t.Fatalf("presence probes changed way %d: tag %d->%d dirty %v->%v",
				i, snapTags[i], c.tags[i], snapDirty[i], c.dirty[i])
		}
	}
	// Victim unchanged: the probed-but-never-accessed tag 1 is still LRU.
	c.access(3, false)
	if c.containsTag(1) {
		t.Error("eviction spared tag 1: Contains probes must not have refreshed it")
	}
	if !c.containsTag(2) {
		t.Error("eviction took MRU tag 2 instead of LRU tag 1")
	}
}

// oneSetConfig shrinks L1 to a single 8-way set so eviction order is
// directly observable, with the stream prefetcher off so only explicit
// calls start fills.
func oneSetConfig() Config {
	cfg := DefaultConfig()
	cfg.L1Size = 8 * 64
	cfg.L1Ways = 8
	cfg.MaxInflight = 1
	cfg.HWPrefetchDistance = 0
	return cfg
}

// TestFillLandsMidWalk drives a fill landing into a full set between two
// probes of that set: the reclaim walk inside a later Prefetch call must
// install the completed fill over the exact LRU way, leave every other
// way resident, and advance the residency generation.
func TestFillLandsMidWalk(t *testing.T) {
	h := MustNewHierarchy(oneSetConfig())
	now := uint64(0)
	for i := uint64(0); i < 8; i++ { // fill the single L1 set; line 0 ends up LRU
		h.AccessW(i*64, now, false)
		now += 10
	}

	const fillLine = 0x2000
	lvl, completion := h.Prefetch(fillLine, 1000)
	if lvl != LevelDRAM || completion != 1000+h.cfg.LatDRAM {
		t.Fatalf("prefetch served from %v completing at %d, want DRAM at %d", lvl, completion, 1000+h.cfg.LatDRAM)
	}
	genBefore := h.Gen()

	// The MSHR budget is 1, so this second prefetch must reclaim the
	// completed fill — installing fillLine into the full set mid-call.
	h.Prefetch(0x4000, completion+100)

	if h.Gen() == genBefore {
		t.Error("fill landing did not advance the residency generation")
	}
	if !h.l1.contains(fillLine) {
		t.Error("completed fill not installed in L1")
	}
	if h.l1.contains(0) {
		t.Error("fill install evicted the wrong way: LRU line 0 still resident means another line was lost")
	}
	for i := uint64(1); i < 8; i++ {
		if !h.l1.contains(i * 64) {
			t.Errorf("fill install evicted non-LRU line %#x", i*64)
		}
	}
	if got := h.fills.len(); got != 1 {
		t.Fatalf("fill table holds %d entries, want 1 (the second prefetch)", got)
	}

	// A demand access that meets its own in-flight fill consumes the MSHR
	// and pays the residual latency.
	res := h.AccessW(0x4000, completion+150, false)
	if res.Level != LevelInflight {
		t.Fatalf("demand access on in-flight line served from %v, want inflight", res.Level)
	}
	if want := (completion + 100 + h.cfg.LatDRAM) - (completion + 150); res.Latency != want {
		t.Errorf("residual latency %d, want %d", res.Latency, want)
	}
	if h.fills.len() != 0 {
		t.Error("demand access did not consume the in-flight fill")
	}
}

// TestAccessResidentMatchesAccessW locks the fast path to the slow one:
// on a provably MRU-resident line the two must return identical results
// and leave identical statistics, generation, and dirty state behind.
func TestAccessResidentMatchesAccessW(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetchDistance = 0
	slow, fast := MustNewHierarchy(cfg), MustNewHierarchy(cfg)
	const addr = 0x1234
	slow.AccessW(addr, 10, false)
	fast.AccessW(addr, 10, false)

	want := slow.AccessW(addr, 20, true)
	got, ok := fast.AccessResident(addr, 20, true)
	if !ok {
		t.Fatal("AccessResident refused an MRU-resident line with no fills outstanding")
	}
	if got != want {
		t.Fatalf("AccessResident = %+v, AccessW = %+v", got, want)
	}
	if slow.Stats != fast.Stats {
		t.Errorf("stats diverged: slow %+v fast %+v", slow.Stats, fast.Stats)
	}
	if slow.Gen() != fast.Gen() {
		t.Errorf("generation diverged: slow %d fast %d", slow.Gen(), fast.Gen())
	}
	// The write must have dirtied L1 on both paths: evicting the line
	// later owes a write-back either way.
	for name, h := range map[string]*Hierarchy{"slow": slow, "fast": fast} {
		idx, ok := h.l1.mruIndex((h.lineAddr(addr) >> h.lineShift) + 1)
		if !ok {
			t.Fatalf("%s: line no longer MRU", name)
		}
		if !h.l1.dirty[idx] {
			t.Errorf("%s: store did not dirty the L1 line", name)
		}
	}
}

// TestAccessResidentRefusals enumerates the disqualifiers: absent line,
// resident-but-not-MRU line, and any outstanding fill. A refusal must
// change nothing.
func TestAccessResidentRefusals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetchDistance = 0
	h := MustNewHierarchy(cfg)

	if _, ok := h.AccessResident(0, 0, false); ok {
		t.Fatal("AccessResident hit on an empty hierarchy")
	}

	h.AccessW(0, 10, false)
	h.AccessW(4096, 20, false) // same L1 set (64 sets × 64 B): line 0 no longer MRU
	statsBefore, genBefore := h.Stats, h.Gen()
	if _, ok := h.AccessResident(0, 30, false); ok {
		t.Fatal("AccessResident hit on a non-MRU line")
	}
	if h.Stats != statsBefore || h.Gen() != genBefore {
		t.Error("refused AccessResident changed stats or generation")
	}

	// MRU line, but a fill is outstanding: must refuse.
	h.Prefetch(1<<20, 40)
	if _, ok := h.AccessResident(4096, 50, false); ok {
		t.Fatal("AccessResident hit while a fill was outstanding")
	}
}

// TestResidencyGenerationProtocol walks the events that must (and must
// not) advance Gen: misses, fill starts, fill landings, Touch, and Flush
// advance it; pure MRU hits on both paths leave it alone.
func TestResidencyGenerationProtocol(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetchDistance = 0
	h := MustNewHierarchy(cfg)
	if h.Gen() == 0 {
		t.Fatal("generation must start nonzero so 0 can mean \"never proven\"")
	}

	g := h.Gen()
	h.AccessW(0, 10, false) // miss: installs at every level
	if h.Gen() <= g {
		t.Fatal("demand miss did not advance the generation")
	}

	g = h.Gen()
	h.AccessW(0, 20, false) // MRU hit at every level: no state change
	if h.Gen() != g {
		t.Error("full MRU hit advanced the generation")
	}
	if _, ok := h.AccessResident(0, 30, false); !ok {
		t.Fatal("resident fast path refused after an MRU hit")
	}
	if h.Gen() != g {
		t.Error("AccessResident advanced the generation")
	}

	h.Prefetch(1<<20, 40)
	if h.Gen() == g {
		t.Error("prefetch fill start did not advance the generation")
	}

	g = h.Gen()
	h.AccessW(1<<20, 40+h.cfg.LatDRAM, false) // consumes the fill, installs
	if h.Gen() == g {
		t.Error("fill consumption did not advance the generation")
	}

	g = h.Gen()
	h.Touch(1 << 21)
	if h.Gen() == g {
		t.Error("Touch did not advance the generation")
	}

	g = h.Gen()
	h.Flush()
	if h.Gen() == g {
		t.Error("Flush did not advance the generation")
	}
	if _, ok := h.AccessResident(0, 100, false); ok {
		t.Fatal("AccessResident hit after Flush")
	}
}

// smallLLC builds a two-bank LLC with tiny port and MSHR budgets so a
// handful of accesses oversubscribes it.
func smallLLC(t *testing.T) *SharedLLC {
	t.Helper()
	llc, err := NewSharedLLC(LLCConfig{
		Banks:        2,
		Size:         2048, // 4 sets × 4 ways × 64 B per bank
		Ways:         4,
		LineSize:     64,
		LatL3:        50,
		LatDRAM:      300,
		BankPorts:    4,
		QueuePenalty: 8,
		MSHRs:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return llc
}

// TestLLCBankConflictAcrossQuantumBoundaries pins the bound-weave
// contention accounting: an oversubscribed quantum is itself penalty-free,
// the derived bank and MSHR penalties bite exactly one quantum later, and
// a light quantum clears them at the next boundary.
func TestLLCBankConflictAcrossQuantumBoundaries(t *testing.T) {
	llc := smallLLC(t)
	v := llc.NewView(0)
	bank0 := func(k uint64) uint64 { return 2 * k * 64 } // even line index → bank 0

	// Quantum 1: 12 misses, all to bank 0. Penalties derive from the
	// PREVIOUS quantum's committed load, so none apply yet.
	for k := uint64(0); k < 12; k++ {
		lvl, lat := v.Demand(bank0(k))
		if lvl != LevelDRAM || lat != 300 {
			t.Fatalf("quantum 1 access %d: (%v, %d), want uncontended DRAM at 300", k, lvl, lat)
		}
	}
	llc.Commit()
	if llc.Stats.Misses != 12 || llc.Stats.Queued != 0 {
		t.Fatalf("after quantum 1: misses %d queued %d, want 12 and 0", llc.Stats.Misses, llc.Stats.Queued)
	}
	if llc.Stats.PeakBankLoad != 12 {
		t.Errorf("peak bank load %d, want 12", llc.Stats.PeakBankLoad)
	}

	// Quantum 2: bank 0 committed 12 accesses against 4 ports → queue
	// penalty 8×⌊(12−4)/4⌋ = 16 per access; 12 misses against 4 MSHRs add
	// another 16 to DRAM-bound accesses. The hit pays only the bank
	// penalty; the miss (bank 1, load 0 last quantum) pays only MSHR
	// pressure.
	if lvl, lat := v.Demand(bank0(0)); lvl != LevelL3 || lat != 50+16 {
		t.Fatalf("quantum 2 hot-bank hit: (%v, %d), want L3 at 66", lvl, lat)
	}
	if lvl, lat := v.Demand(64); lvl != LevelDRAM || lat != 300+16 {
		t.Fatalf("quantum 2 cold-bank miss: (%v, %d), want DRAM at 316", lvl, lat)
	}
	llc.Commit()
	if llc.Stats.Hits != 1 || llc.Stats.Misses != 13 {
		t.Errorf("after quantum 2: hits %d misses %d, want 1 and 13", llc.Stats.Hits, llc.Stats.Misses)
	}
	if llc.Stats.Queued != 2 || llc.Stats.QueueCycles != 32 {
		t.Errorf("after quantum 2: queued %d cycles %d, want 2 and 32", llc.Stats.Queued, llc.Stats.QueueCycles)
	}

	// Quantum 3: last quantum was light (one access per bank), so the
	// boundary cleared every penalty.
	if lvl, lat := v.Demand(bank0(0)); lvl != LevelL3 || lat != 50 {
		t.Fatalf("quantum 3 hit after light quantum: (%v, %d), want uncontended L3 at 50", lvl, lat)
	}
}

// TestLLCFillTrafficQueuesAndClamps checks that Fill logs (private-level
// fills landing) count toward bank load, and that oversubscription of
// less than one full BankPorts quantum still charges the minimum
// QueuePenalty — the clamp branch.
func TestLLCFillTrafficQueuesAndClamps(t *testing.T) {
	llc := smallLLC(t)
	v := llc.NewView(0)
	for k := uint64(0); k < 5; k++ { // 5 fills > 4 ports, but (5−4)/4 rounds to 0
		v.Fill(2 * k * 64)
	}
	llc.Commit()
	if llc.Stats.PeakBankLoad != 5 {
		t.Errorf("peak bank load %d, want 5 (fills must count)", llc.Stats.PeakBankLoad)
	}
	// Fills were committed, so the re-probe hits; the penalty clamps up
	// to one QueuePenalty rather than rounding down to zero.
	if lvl, lat := v.Demand(0); lvl != LevelL3 || lat != 50+8 {
		t.Fatalf("post-fill probe: (%v, %d), want L3 at 58 (clamped queue penalty)", lvl, lat)
	}
}

package mem

import (
	"fmt"

	"repro/internal/metrics"
)

// Config sizes the cache hierarchy and fixes its latencies in cycles.
// Defaults model a contemporary server core at 3 GHz: L1 hits absorbable by
// the pipeline, L2/L3 in the paper's 10s-of-ns "out of hand" band, DRAM at
// 100 ns.
type Config struct {
	LineSize uint64

	L1Size uint64
	L1Ways int
	L2Size uint64
	L2Ways int
	L3Size uint64
	L3Ways int

	// Latencies are total load-to-use cycles when served from each level.
	LatL1   uint64
	LatL2   uint64
	LatL3   uint64
	LatDRAM uint64

	// WritebackPenalty is added to an access that evicts a dirty line
	// from L1 (the victim must be written back before the fill lands).
	WritebackPenalty uint64

	// MaxInflight caps outstanding prefetch-initiated fills (the MSHR
	// budget). Software and hardware prefetches beyond the cap are
	// dropped, bounding memory-level parallelism as real cores do.
	// Zero means unlimited.
	MaxInflight int

	// HWPrefetchDistance enables the hardware stream prefetcher: when an
	// access to line L follows a recent access to line L-1 (an ascending
	// stream), fills are started for the next HWPrefetchDistance lines.
	// Zero disables it. Sequential scans hit steady-state with no stalls,
	// as on real cores; pointer chases see no benefit — exactly the
	// asymmetry the paper's software mechanism targets.
	HWPrefetchDistance int
}

// DefaultConfig returns the reference machine used throughout the
// experiments (see DESIGN.md §1).
func DefaultConfig() Config {
	return Config{
		LineSize: 64,
		L1Size:   32 << 10,
		L1Ways:   8,
		L2Size:   256 << 10,
		L2Ways:   8,
		L3Size:   8 << 20,
		L3Ways:   16,
		LatL1:    4,
		LatL2:    14,
		LatL3:    50,
		LatDRAM:  300,

		WritebackPenalty:   12,
		MaxInflight:        64,
		HWPrefetchDistance: 4,
	}
}

// Validate checks the configuration for structural problems.
func (c Config) Validate() error {
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: line size %d must be a power of two", c.LineSize)
	}
	if c.L1Ways <= 0 || c.L2Ways <= 0 || c.L3Ways <= 0 {
		return fmt.Errorf("mem: cache ways must be positive")
	}
	if !(c.LatL1 <= c.LatL2 && c.LatL2 <= c.LatL3 && c.LatL3 <= c.LatDRAM) {
		return fmt.Errorf("mem: latencies must be monotone across levels")
	}
	return nil
}

// Latency returns the configured total latency for a given serving level.
func (c Config) Latency(l Level) uint64 {
	switch l {
	case LevelL1:
		return c.LatL1
	case LevelL2:
		return c.LatL2
	case LevelL3:
		return c.LatL3
	default:
		return c.LatDRAM
	}
}

// Stats counts accesses by serving level plus prefetch activity.
type Stats struct {
	Accesses     [NumLevels]uint64 // loads+stores served per level
	Prefetches   uint64            // prefetch instructions that started a fill
	PrefetchHits uint64            // prefetches that found the line already cached
	HWPrefetches uint64            // fills started by the hardware stream prefetcher
	MSHRDrops    uint64            // prefetches dropped at the MaxInflight cap
	Writebacks   uint64            // dirty L1 victims written back
	// InflightFull counts residual-latency accesses whose fill had already
	// completed (the prefetch fully hid the miss).
	InflightFull uint64
	// MSHRPeak is the occupancy high-water mark of the fill table: the
	// most fills ever simultaneously outstanding. Against MaxInflight it
	// tells whether a workload actually saturates the MSHR budget.
	MSHRPeak uint64
}

// Total returns the total number of demand accesses.
func (s *Stats) Total() uint64 {
	var t uint64
	for _, n := range s.Accesses {
		t += n
	}
	return t
}

// Hierarchy is the three-level cache model. All methods take the current
// global cycle `now`; callers must present non-decreasing timestamps.
type Hierarchy struct {
	cfg Config
	l1  *cache
	l2  *cache
	l3  *cache

	// lineShift is log2(LineSize); the demand path computes each line's
	// tag once and hands it to all three cache probes.
	lineShift uint
	// lat caches Config.Latency per level so the demand path indexes an
	// array instead of running the level switch.
	lat [NumLevels]uint64

	// fills is the flat MSHR file of outstanding fills (see fillTable).
	fills fillTable

	// recent holds the last few accessed line addresses for stream
	// detection (hardware prefetcher).
	recent    [8]uint64
	recentPos int

	// llc, when non-nil, replaces the private l3: L2 misses are served by
	// the shared banked LLC through this per-core view. Nil (the default)
	// keeps the original private three-level model bit-for-bit.
	llc *LLCView

	// gen is the residency generation: it advances whenever cache
	// contents could have changed — a line installed or evicted at any
	// level (demand misses, fill landings, Touch), a fill started
	// (prefetch or hardware stream), or a Flush. Callers that cache a
	// residency proof (see AccessResident) key it to Gen(): a matching
	// generation means no fill/evict/flush happened since the proof, so
	// re-attempting the resident fast path is worthwhile. The generation
	// is a staleness hint, never a soundness argument — AccessResident
	// re-verifies residency on every call.
	gen uint64

	Stats Stats
}

// NewHierarchy builds a hierarchy from the configuration.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:   cfg,
		l1:    newCache(cfg.L1Size, cfg.LineSize, cfg.L1Ways),
		l2:    newCache(cfg.L2Size, cfg.LineSize, cfg.L2Ways),
		l3:    newCache(cfg.L3Size, cfg.LineSize, cfg.L3Ways),
		fills: newFillTable(cfg.MaxInflight),
		gen:   1, // so a zero generation in caller state means "never proven"
	}
	h.lineShift = h.l1.lineBits
	for l := LevelL1; l < Level(NumLevels); l++ {
		h.lat[l] = cfg.Latency(l)
	}
	return h, nil
}

// MustNewHierarchy panics on configuration errors.
func MustNewHierarchy(cfg Config) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// AttachLLC replaces the private L3 with a per-core view of a shared
// banked LLC (see llc.go). Attach before the first access: the private
// l3 keeps whatever state it had and is never consulted again. Flush
// still clears only the private levels — the shared LLC belongs to the
// machine, not to any one core.
func (h *Hierarchy) AttachLLC(v *LLCView) { h.llc = v }

// LLC returns the attached shared-LLC view, or nil when the hierarchy
// runs its private three-level model.
func (h *Hierarchy) LLC() *LLCView { return h.llc }

func (h *Hierarchy) lineAddr(addr uint64) uint64 {
	return addr &^ (h.cfg.LineSize - 1)
}

// AccessResult describes one demand access.
type AccessResult struct {
	// Latency is the total cycles the access takes from issue to data.
	Latency uint64
	// Level is where the access was served from. LevelInflight means an
	// earlier prefetch was still (or had finished) bringing the line in.
	Level Level
	// MissedL2 reports whether the access missed both L1 and L2 — the
	// event class the paper's mechanism targets ("L2/L3 cache misses").
	MissedL2 bool
}

// Access performs a demand load of the line containing addr at cycle
// `now` and returns its latency and serving level. The line is installed
// in all levels afterwards.
//
//shsim:noalloc inline
func (h *Hierarchy) Access(addr, now uint64) AccessResult {
	return h.AccessW(addr, now, false)
}

// AccessW is Access with an explicit read/write flag: stores mark the L1
// line dirty (write-back, write-allocate), and a fill that evicts a dirty
// victim pays the write-back penalty.
//
//shsim:noalloc
func (h *Hierarchy) AccessW(addr, now uint64, write bool) AccessResult {
	ln := h.lineAddr(addr)
	h.streamDetect(ln, now)

	if len(h.fills.entries) > 0 {
		if i, ok := h.fills.search(ln); ok {
			f := h.fills.entries[i]
			h.fills.removeAt(i)
			wb := h.install(ln, write)
			res := AccessResult{Level: LevelInflight, MissedL2: f.level == LevelL3 || f.level == LevelDRAM}
			if f.completion <= now {
				// Fill already completed; the access behaves like an L1 hit.
				res.Latency = h.cfg.LatL1
				h.Stats.InflightFull++
			} else {
				res.Latency = f.completion - now
				if res.Latency < h.cfg.LatL1 {
					res.Latency = h.cfg.LatL1
				}
			}
			res.Latency += wb
			h.Stats.Accesses[LevelInflight]++
			return res
		}
	}

	// One fused probe per level: hit detection and install/LRU-refresh in
	// a single set walk (the old code walked each set twice, once to look
	// up and once to install).
	tag := (ln >> h.lineShift) + 1
	h1, dirty := h.l1.access(tag, write)
	h2, _ := h.l2.access(tag, false)
	if !h1 || !h2 {
		h.gen++ // a miss installed the line (and may have evicted a victim)
	}
	if h.llc != nil {
		// Shared-LLC mode: L2 misses are served by the banked LLC view.
		// L1/L2 hits generate no LLC traffic; the miss is logged by
		// Demand and installed at the next quantum commit.
		var lvl Level
		var lat uint64
		switch {
		case h1:
			lvl, lat = LevelL1, h.lat[LevelL1]
		case h2:
			lvl, lat = LevelL2, h.lat[LevelL2]
		default:
			lvl, lat = h.llc.Demand(ln)
		}
		var wb uint64
		if dirty {
			h.Stats.Writebacks++
			wb = h.cfg.WritebackPenalty
		}
		h.Stats.Accesses[lvl]++
		return AccessResult{
			Latency:  lat + wb,
			Level:    lvl,
			MissedL2: lvl == LevelL3 || lvl == LevelDRAM,
		}
	}
	h3, _ := h.l3.access(tag, false)
	if h1 && h2 && !h3 {
		h.gen++ // non-inclusive L3 re-install still changes cache contents
	}
	var lvl Level
	switch {
	case h1:
		lvl = LevelL1
	case h2:
		lvl = LevelL2
	case h3:
		lvl = LevelL3
	default:
		lvl = LevelDRAM
	}
	var wb uint64
	if dirty {
		h.Stats.Writebacks++
		wb = h.cfg.WritebackPenalty
	}
	h.Stats.Accesses[lvl]++
	return AccessResult{
		Latency:  h.lat[lvl] + wb,
		Level:    lvl,
		MissedL2: lvl == LevelL3 || lvl == LevelDRAM,
	}
}

// Gen returns the current residency generation (see the field comment).
// It is never zero, so callers can use 0 as "no proof cached".
func (h *Hierarchy) Gen() uint64 { return h.gen }

// LineMask returns the mask that truncates an address to its line
// address (^(LineSize-1)), for callers that key cached state by line.
func (h *Hierarchy) LineMask() uint64 { return ^(h.cfg.LineSize - 1) }

// AccessResident is the residency fast path for AccessW: when the line
// containing addr is provably an L1 hit whose access would change no
// cache state beyond what the fast path replays itself, it performs the
// access — stream detection, dirty marking, stats — and returns ok.
// Otherwise it returns ok=false having changed nothing, and the caller
// must take the full AccessW walk.
//
// The proof obligations mirror AccessW's walk exactly. The fill table
// must be empty (a non-empty table would be searched, and stream
// detection below may insert fills only for *later* lines, which that
// search cannot match). The line must be the MRU way of L1 and L2 — an
// MRU hit is the one case where the fused probe's promotion is a no-op —
// and, in private-L3 mode, of L3 too (AccessW probes all three levels
// unconditionally; a non-MRU hit or a miss at any of them would move
// recency state or install). Under those conditions the only state
// AccessW would change is the stream-detector ring (replayed here via
// the same streamDetect call), the L1 dirty bit on a store, and the L1
// access counter — so the replay is bit-identical, just without the set
// walks. The superblock engine (internal/cpu) memoizes per-instruction
// lines against Gen() to decide when attempting this path is worthwhile.
//
//shsim:noalloc
func (h *Hierarchy) AccessResident(addr, now uint64, write bool) (AccessResult, bool) {
	if len(h.fills.entries) != 0 {
		return AccessResult{}, false
	}
	ln := h.lineAddr(addr)
	tag := (ln >> h.lineShift) + 1
	i1, ok := h.l1.mruIndex(tag)
	if !ok {
		return AccessResult{}, false
	}
	if _, ok := h.l2.mruIndex(tag); !ok {
		return AccessResult{}, false
	}
	if h.llc == nil {
		if _, ok := h.l3.mruIndex(tag); !ok {
			return AccessResult{}, false
		}
	}
	h.streamDetect(ln, now)
	if write {
		h.l1.dirty[i1] = true
	}
	h.Stats.Accesses[LevelL1]++
	return AccessResult{Latency: h.lat[LevelL1], Level: LevelL1}, true
}

// Prefetch starts an asynchronous fill of the line containing addr at cycle
// `now`. It returns the level the fill is served from and the completion
// cycle; if the line is already in L1 (or already being filled) it is a
// no-op.
func (h *Hierarchy) Prefetch(addr, now uint64) (Level, uint64) {
	ln := h.lineAddr(addr)
	if h.fills.has(ln) {
		h.Stats.PrefetchHits++
		return LevelInflight, now
	}
	if h.l1.contains(ln) {
		h.Stats.PrefetchHits++
		// Refresh LRU: a prefetch of a cached line is still a touch.
		h.l1.lookup(ln)
		return LevelL1, now
	}
	if h.cfg.MaxInflight > 0 && h.fills.len() >= h.cfg.MaxInflight {
		// MSHRs free at fill completion: reclaim finished entries before
		// concluding the budget is exhausted.
		h.reclaim(now)
	}
	if h.cfg.MaxInflight > 0 && h.fills.len() >= h.cfg.MaxInflight {
		// MSHRs genuinely exhausted: the prefetch is dropped, as on real
		// cores.
		h.Stats.MSHRDrops++
		return LevelDRAM, now
	}
	var lvl Level
	var completion uint64
	if h.llc != nil {
		if h.l2.contains(ln) {
			lvl, completion = LevelL2, now+h.cfg.Latency(LevelL2)
		} else {
			var lat uint64
			lvl, lat = h.llc.Demand(ln)
			completion = now + lat
		}
	} else {
		switch {
		case h.l2.contains(ln):
			lvl = LevelL2
		case h.l3.contains(ln):
			lvl = LevelL3
		default:
			lvl = LevelDRAM
		}
		completion = now + h.cfg.Latency(lvl)
	}
	h.fills.insert(ln, completion, lvl)
	h.gen++ // a fill is now outstanding
	if n := uint64(h.fills.len()); n > h.Stats.MSHRPeak {
		h.Stats.MSHRPeak = n
	}
	h.Stats.Prefetches++
	return lvl, completion
}

// reclaim installs completed fills into the caches and frees their MSHRs.
// Installs happen in ascending line order — install order decides
// evictions, so it must not depend on anything run-varying (this was the
// PR 1 nondeterminism fix, which sorted a scratch slice of due lines on
// every call). The fill table is sorted by line address, so a single
// in-place compaction walk installs in exactly that order for free.
func (h *Hierarchy) reclaim(now uint64) {
	w := 0
	for i := range h.fills.entries {
		e := h.fills.entries[i]
		if e.completion <= now {
			h.install(e.line, false)
			continue
		}
		h.fills.entries[w] = e
		w++
	}
	h.fills.entries = h.fills.entries[:w]
}

// streamDetect implements the hardware next-line prefetcher: if the line
// preceding ln was accessed recently, the access pattern looks like an
// ascending stream and the next HWPrefetchDistance lines are filled.
func (h *Hierarchy) streamDetect(ln, now uint64) {
	dist := h.cfg.HWPrefetchDistance
	if dist > 0 && ln >= h.cfg.LineSize {
		prev := ln - h.cfg.LineSize
		for _, r := range h.recent {
			if r == prev+1 { // stored with +1 so zero means empty
				for d := 1; d <= dist; d++ {
					h.hwPrefetch(ln+uint64(d)*h.cfg.LineSize, now)
				}
				break
			}
		}
	}
	h.recent[h.recentPos] = ln + 1
	h.recentPos = (h.recentPos + 1) & (len(h.recent) - 1)
}

// hwPrefetch starts a fill on behalf of the hardware prefetcher.
func (h *Hierarchy) hwPrefetch(ln, now uint64) {
	if h.fills.has(ln) {
		return
	}
	if h.l1.contains(ln) {
		return
	}
	if h.cfg.MaxInflight > 0 && h.fills.len() >= h.cfg.MaxInflight {
		h.reclaim(now)
		if h.fills.len() >= h.cfg.MaxInflight {
			h.Stats.MSHRDrops++
			return
		}
	}
	var lvl Level
	var completion uint64
	if h.llc != nil {
		if h.l2.contains(ln) {
			lvl, completion = LevelL2, now+h.cfg.Latency(LevelL2)
		} else {
			var lat uint64
			lvl, lat = h.llc.Demand(ln)
			completion = now + lat
		}
	} else {
		switch {
		case h.l2.contains(ln):
			lvl = LevelL2
		case h.l3.contains(ln):
			lvl = LevelL3
		default:
			lvl = LevelDRAM
		}
		completion = now + h.cfg.Latency(lvl)
	}
	h.fills.insert(ln, completion, lvl)
	h.gen++ // a fill is now outstanding
	if n := uint64(h.fills.len()); n > h.Stats.MSHRPeak {
		h.Stats.MSHRPeak = n
	}
	h.Stats.HWPrefetches++
}

// Residual returns the cycles remaining until the in-flight fill of the
// line containing addr completes, or 0 if there is no outstanding fill (or
// it already completed). The dual-mode executor uses it to size the hide
// window after a primary yield.
func (h *Hierarchy) Residual(addr, now uint64) uint64 {
	if f, ok := h.fills.get(h.lineAddr(addr)); ok && f.completion > now {
		return f.completion - now
	}
	return 0
}

// Contains reports whether the line containing addr is present at or above
// the given level, counting in-flight fills that have completed by `now`.
// This is the §4.1 hardware-assist probe; it does not perturb LRU state.
func (h *Hierarchy) Contains(addr, now uint64, level Level) bool {
	ln := h.lineAddr(addr)
	if f, ok := h.fills.get(ln); ok && f.completion <= now {
		return true
	}
	if h.l1.contains(ln) {
		return true
	}
	if level >= LevelL2 && h.l2.contains(ln) {
		return true
	}
	if level >= LevelL3 {
		if h.llc != nil {
			return h.llc.Contains(ln)
		}
		return h.l3.contains(ln)
	}
	return false
}

// Touch installs the line containing addr in every level without timing
// effects. Workload builders use it to pre-warm caches deterministically.
func (h *Hierarchy) Touch(addr uint64) {
	h.install(h.lineAddr(addr), false)
}

// Flush invalidates all cache levels and drops outstanding fills, e.g.
// between the profiling run and the measurement run. Storage (tag arrays,
// the MSHR file) is reset in place, never reallocated.
func (h *Hierarchy) Flush() {
	h.l1.flush()
	h.l2.flush()
	h.l3.flush()
	h.fills.reset()
	h.recent = [8]uint64{}
	h.recentPos = 0
	h.gen++
}

// ResetStats zeroes the counters without touching cache state.
func (h *Hierarchy) ResetStats() { h.Stats = Stats{} }

// FillMetrics harvests the hierarchy's always-on counters into an
// observability registry section. The demand path never counts twice:
// these are the same uint64 fields Stats has been bumping inline all
// along, copied out at snapshot time.
func (h *Hierarchy) FillMetrics(m *metrics.Mem) {
	m.L1Hits = h.Stats.Accesses[LevelL1]
	m.L2Hits = h.Stats.Accesses[LevelL2]
	m.L3Hits = h.Stats.Accesses[LevelL3]
	m.DRAMAccesses = h.Stats.Accesses[LevelDRAM]
	m.InflightHits = h.Stats.Accesses[LevelInflight]
	m.InflightFull = h.Stats.InflightFull
	m.L2Misses = h.Stats.Accesses[LevelL3] + h.Stats.Accesses[LevelDRAM]
	m.Prefetches = h.Stats.Prefetches
	m.PrefetchHits = h.Stats.PrefetchHits
	m.HWPrefetches = h.Stats.HWPrefetches
	m.MSHRDrops = h.Stats.MSHRDrops
	m.MSHRHighWater = h.Stats.MSHRPeak
	m.Writebacks = h.Stats.Writebacks
}

// install fills the line into every level (dirtying L1 when write is
// set) and returns the write-back penalty incurred if L1 had to evict a
// dirty victim.
func (h *Hierarchy) install(ln uint64, write bool) uint64 {
	h.gen++
	tag := (ln >> h.lineShift) + 1
	_, dirty := h.l1.access(tag, write)
	h.l2.access(tag, false)
	if h.llc != nil {
		h.llc.Fill(ln)
	} else {
		h.l3.access(tag, false)
	}
	if dirty {
		h.Stats.Writebacks++
		return h.cfg.WritebackPenalty
	}
	return 0
}

package mem

import (
	"math/rand"
	"slices"
	"testing"
)

// This file pins the flat-MSHR/packed-LRU hierarchy to the PR 1 reference
// implementation: a map-keyed MSHR file with a sorted reclaim scratch, and
// stamp-based LRU caches probed with a lookup walk followed by an install
// walk. The reference below is that implementation, kept verbatim modulo
// renames. The differential test drives both models with identical random
// operation streams and demands identical observable behavior: every
// AccessResult, every Prefetch/Residual/Contains return, and the final
// Stats.

type refInflight struct {
	completion uint64
	level      Level
}

type refCache struct {
	sets     uint64
	ways     int
	lineBits uint
	tags     []uint64
	lru      []uint64
	dirty    []bool
	stamp    uint64
}

func newRefCache(sizeBytes, lineSize uint64, ways int) *refCache {
	lines := sizeBytes / lineSize
	sets := lines / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	lb := uint(0)
	for s := lineSize; s > 1; s >>= 1 {
		lb++
	}
	return &refCache{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*uint64(ways)),
		lru:      make([]uint64, sets*uint64(ways)),
		dirty:    make([]bool, sets*uint64(ways)),
	}
}

func (c *refCache) line(addr uint64) uint64 { return addr >> c.lineBits }

func (c *refCache) lookup(addr uint64) bool {
	ln := c.line(addr) + 1
	base := ((ln - 1) % c.sets) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			c.stamp++
			c.lru[base+uint64(w)] = c.stamp
			return true
		}
	}
	return false
}

func (c *refCache) contains(addr uint64) bool {
	ln := c.line(addr) + 1
	base := ((ln - 1) % c.sets) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			return true
		}
	}
	return false
}

func (c *refCache) install(addr uint64) (evicted uint64, didEvict, wasDirty bool) {
	ln := c.line(addr) + 1
	base := ((ln - 1) % c.sets) * uint64(c.ways)
	victim := 0
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		t := c.tags[base+uint64(w)]
		if t == ln { // already present
			c.stamp++
			c.lru[base+uint64(w)] = c.stamp
			return 0, false, false
		}
		if t == 0 { // free way
			c.stamp++
			c.tags[base+uint64(w)] = ln
			c.lru[base+uint64(w)] = c.stamp
			c.dirty[base+uint64(w)] = false
			return 0, false, false
		}
		if c.lru[base+uint64(w)] < victimStamp {
			victimStamp = c.lru[base+uint64(w)]
			victim = w
		}
	}
	old := c.tags[base+uint64(victim)] - 1
	dirty := c.dirty[base+uint64(victim)]
	c.stamp++
	c.tags[base+uint64(victim)] = ln
	c.lru[base+uint64(victim)] = c.stamp
	c.dirty[base+uint64(victim)] = false
	return old << c.lineBits, true, dirty
}

func (c *refCache) markDirty(addr uint64) {
	ln := c.line(addr) + 1
	base := ((ln - 1) % c.sets) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			c.dirty[base+uint64(w)] = true
			return
		}
	}
}

func (c *refCache) flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
		c.dirty[i] = false
	}
	c.stamp = 0
}

type refHierarchy struct {
	cfg       Config
	l1        *refCache
	l2        *refCache
	l3        *refCache
	fills     map[uint64]refInflight
	due       []uint64
	recent    [8]uint64
	recentPos int
	Stats     Stats
}

func newRefHierarchy(cfg Config) *refHierarchy {
	return &refHierarchy{
		cfg:   cfg,
		l1:    newRefCache(cfg.L1Size, cfg.LineSize, cfg.L1Ways),
		l2:    newRefCache(cfg.L2Size, cfg.LineSize, cfg.L2Ways),
		l3:    newRefCache(cfg.L3Size, cfg.LineSize, cfg.L3Ways),
		fills: make(map[uint64]refInflight),
	}
}

func (h *refHierarchy) lineAddr(addr uint64) uint64 { return addr &^ (h.cfg.LineSize - 1) }

func (h *refHierarchy) AccessW(addr, now uint64, write bool) AccessResult {
	ln := h.lineAddr(addr)
	h.streamDetect(ln, now)

	if f, ok := h.fills[ln]; ok {
		delete(h.fills, ln)
		wb := h.installAll(ln)
		res := AccessResult{Level: LevelInflight, MissedL2: f.level == LevelL3 || f.level == LevelDRAM}
		if f.completion <= now {
			res.Latency = h.cfg.LatL1
			h.Stats.InflightFull++
		} else {
			res.Latency = f.completion - now
			if res.Latency < h.cfg.LatL1 {
				res.Latency = h.cfg.LatL1
			}
		}
		res.Latency += wb
		if write {
			h.l1.markDirty(ln)
		}
		h.Stats.Accesses[LevelInflight]++
		return res
	}

	var lvl Level
	switch {
	case h.l1.lookup(ln):
		lvl = LevelL1
	case h.l2.lookup(ln):
		lvl = LevelL2
	case h.l3.lookup(ln):
		lvl = LevelL3
	default:
		lvl = LevelDRAM
	}
	wb := h.installAll(ln)
	if write {
		h.l1.markDirty(ln)
	}
	h.Stats.Accesses[lvl]++
	return AccessResult{
		Latency:  h.cfg.Latency(lvl) + wb,
		Level:    lvl,
		MissedL2: lvl == LevelL3 || lvl == LevelDRAM,
	}
}

func (h *refHierarchy) Prefetch(addr, now uint64) (Level, uint64) {
	ln := h.lineAddr(addr)
	if _, ok := h.fills[ln]; ok {
		h.Stats.PrefetchHits++
		return LevelInflight, now
	}
	if h.l1.contains(ln) {
		h.Stats.PrefetchHits++
		h.l1.lookup(ln)
		return LevelL1, now
	}
	if h.cfg.MaxInflight > 0 && len(h.fills) >= h.cfg.MaxInflight {
		h.reclaim(now)
	}
	if h.cfg.MaxInflight > 0 && len(h.fills) >= h.cfg.MaxInflight {
		h.Stats.MSHRDrops++
		return LevelDRAM, now
	}
	var lvl Level
	switch {
	case h.l2.contains(ln):
		lvl = LevelL2
	case h.l3.contains(ln):
		lvl = LevelL3
	default:
		lvl = LevelDRAM
	}
	completion := now + h.cfg.Latency(lvl)
	h.fills[ln] = refInflight{completion: completion, level: lvl}
	if n := uint64(len(h.fills)); n > h.Stats.MSHRPeak {
		h.Stats.MSHRPeak = n
	}
	h.Stats.Prefetches++
	return lvl, completion
}

func (h *refHierarchy) reclaim(now uint64) {
	h.due = h.due[:0]
	for ln, f := range h.fills {
		if f.completion <= now {
			h.due = append(h.due, ln)
		}
	}
	slices.Sort(h.due)
	for _, ln := range h.due {
		h.installAll(ln)
		delete(h.fills, ln)
	}
}

func (h *refHierarchy) streamDetect(ln, now uint64) {
	dist := h.cfg.HWPrefetchDistance
	if dist > 0 && ln >= h.cfg.LineSize {
		prev := ln - h.cfg.LineSize
		for _, r := range h.recent {
			if r == prev+1 {
				for d := 1; d <= dist; d++ {
					h.hwPrefetch(ln+uint64(d)*h.cfg.LineSize, now)
				}
				break
			}
		}
	}
	h.recent[h.recentPos] = ln + 1
	h.recentPos = (h.recentPos + 1) % len(h.recent)
}

func (h *refHierarchy) hwPrefetch(ln, now uint64) {
	if _, ok := h.fills[ln]; ok {
		return
	}
	if h.l1.contains(ln) {
		return
	}
	if h.cfg.MaxInflight > 0 && len(h.fills) >= h.cfg.MaxInflight {
		h.reclaim(now)
		if len(h.fills) >= h.cfg.MaxInflight {
			h.Stats.MSHRDrops++
			return
		}
	}
	var lvl Level
	switch {
	case h.l2.contains(ln):
		lvl = LevelL2
	case h.l3.contains(ln):
		lvl = LevelL3
	default:
		lvl = LevelDRAM
	}
	h.fills[ln] = refInflight{completion: now + h.cfg.Latency(lvl), level: lvl}
	if n := uint64(len(h.fills)); n > h.Stats.MSHRPeak {
		h.Stats.MSHRPeak = n
	}
	h.Stats.HWPrefetches++
}

func (h *refHierarchy) Residual(addr, now uint64) uint64 {
	if f, ok := h.fills[h.lineAddr(addr)]; ok && f.completion > now {
		return f.completion - now
	}
	return 0
}

func (h *refHierarchy) Contains(addr, now uint64, level Level) bool {
	ln := h.lineAddr(addr)
	if f, ok := h.fills[ln]; ok && f.completion <= now {
		return true
	}
	if h.l1.contains(ln) {
		return true
	}
	if level >= LevelL2 && h.l2.contains(ln) {
		return true
	}
	if level >= LevelL3 && h.l3.contains(ln) {
		return true
	}
	return false
}

func (h *refHierarchy) Touch(addr uint64) { h.installAll(h.lineAddr(addr)) }

func (h *refHierarchy) Flush() {
	h.l1.flush()
	h.l2.flush()
	h.l3.flush()
	h.fills = make(map[uint64]refInflight)
	h.recent = [8]uint64{}
	h.recentPos = 0
}

func (h *refHierarchy) installAll(ln uint64) uint64 {
	_, _, dirty := h.l1.install(ln)
	h.l2.install(ln)
	h.l3.install(ln)
	if dirty {
		h.Stats.Writebacks++
		return h.cfg.WritebackPenalty
	}
	return 0
}

// differentialConfigs are the machine shapes the random streams run
// against: conflict-heavy tiny caches, the reference-machine way mix, a
// tight MSHR budget, an unlimited one, a disabled stream prefetcher, and
// a >16-way shape that exercises the stamp fallback path.
func differentialConfigs() map[string]Config {
	tiny := Config{
		LineSize: 64,
		L1Size:   512, L1Ways: 2,
		L2Size: 2048, L2Ways: 4,
		L3Size: 8192, L3Ways: 4,
		LatL1: 4, LatL2: 14, LatL3: 50, LatDRAM: 300,
		WritebackPenalty:   12,
		MaxInflight:        8,
		HWPrefetchDistance: 4,
	}
	deflike := DefaultConfig()
	deflike.L1Size = 4 << 10
	deflike.L2Size = 32 << 10
	deflike.L3Size = 256 << 10

	tightMSHR := tiny
	tightMSHR.MaxInflight = 2

	unlimited := tiny
	unlimited.MaxInflight = 0

	noStream := tiny
	noStream.HWPrefetchDistance = 0

	wide := Config{
		LineSize: 64,
		L1Size:   64 * 24 * 2, L1Ways: 24, // 24 ways > 16: stamp fallback
		L2Size: 64 * 24 * 8, L2Ways: 24,
		L3Size: 64 * 32 * 16, L3Ways: 32,
		LatL1: 4, LatL2: 14, LatL3: 50, LatDRAM: 300,
		WritebackPenalty:   12,
		MaxInflight:        8,
		HWPrefetchDistance: 4,
	}
	return map[string]Config{
		"tiny":      tiny,
		"deflike":   deflike,
		"tightMSHR": tightMSHR,
		"unlimited": unlimited,
		"noStream":  noStream,
		"wideWays":  wide,
	}
}

// TestDifferentialAgainstMapModel drives the production hierarchy and the
// PR 1 reference through identical random operation streams and requires
// identical outputs at every step.
func TestDifferentialAgainstMapModel(t *testing.T) {
	for name, cfg := range differentialConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				h := MustNewHierarchy(cfg)
				ref := newRefHierarchy(cfg)
				rng := rand.New(rand.NewSource(seed))
				now := uint64(0)
				// Address pool small enough to force conflicts and
				// evictions; includes ascending runs to trigger the
				// stream prefetcher.
				addr := func() uint64 { return uint64(rng.Intn(1 << 14)) }
				for op := 0; op < 20000; op++ {
					now += uint64(rng.Intn(40))
					switch k := rng.Intn(100); {
					case k < 45: // demand access, some writes
						a := addr()
						write := rng.Intn(4) == 0
						got := h.AccessW(a, now, write)
						want := ref.AccessW(a, now, write)
						if got != want {
							t.Fatalf("seed %d op %d: AccessW(%#x, %d, %v) = %+v, ref %+v",
								seed, op, a, now, write, got, want)
						}
					case k < 60: // short ascending run (stream food)
						base := addr() &^ (cfg.LineSize - 1)
						for j := uint64(0); j < 3; j++ {
							a := base + j*cfg.LineSize
							got := h.AccessW(a, now, false)
							want := ref.AccessW(a, now, false)
							if got != want {
								t.Fatalf("seed %d op %d: scan AccessW(%#x) = %+v, ref %+v",
									seed, op, a, got, want)
							}
						}
					case k < 75: // software prefetch
						a := addr()
						gl, gc := h.Prefetch(a, now)
						wl, wc := ref.Prefetch(a, now)
						if gl != wl || gc != wc {
							t.Fatalf("seed %d op %d: Prefetch(%#x, %d) = (%v,%d), ref (%v,%d)",
								seed, op, a, now, gl, gc, wl, wc)
						}
					case k < 85: // residual probe
						a := addr()
						if got, want := h.Residual(a, now), ref.Residual(a, now); got != want {
							t.Fatalf("seed %d op %d: Residual(%#x, %d) = %d, ref %d",
								seed, op, a, now, got, want)
						}
					case k < 95: // presence probe
						a := addr()
						lvl := Level(rng.Intn(3))
						if got, want := h.Contains(a, now, lvl), ref.Contains(a, now, lvl); got != want {
							t.Fatalf("seed %d op %d: Contains(%#x, %d, %v) = %v, ref %v",
								seed, op, a, now, lvl, got, want)
						}
					case k < 98: // warm a line
						a := addr()
						h.Touch(a)
						ref.Touch(a)
					default: // rare full flush
						h.Flush()
						ref.Flush()
					}
				}
				if h.Stats != ref.Stats {
					t.Fatalf("seed %d: final stats diverged:\n got %+v\n ref %+v", seed, h.Stats, ref.Stats)
				}
			}
		})
	}
}

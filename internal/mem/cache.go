package mem

import "fmt"

// Level identifies where an access was served from.
type Level uint8

// Hierarchy levels, ordered closest-first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
	// LevelInflight marks an access that met an in-flight fill started by
	// an earlier prefetch; the access pays only the residual latency.
	LevelInflight
	numLevels
)

// NumLevels is the number of Level values (including LevelInflight).
const NumLevels = int(numLevels)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	case LevelInflight:
		return "inflight"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// cache is one set-associative level with LRU replacement. Only tags are
// tracked; data lives in the flat Memory (the hierarchy models timing, not
// coherence).
//
// Replacement state is exact LRU. For up to 16 ways the full recency
// order of a set packs into one uint64 in `order` (sixteen 4-bit way
// indices, most-recent in the low nibble): victim selection reads one
// nibble and a touch is a few register shifts, instead of scanning and
// rewriting a per-way stamp array. Wider configurations fall back to
// per-way stamps. Both encode the same total recency order, so they are
// behaviorally identical.
type cache struct {
	sets uint64
	// setMask is sets-1: the set count is a power of two, so indexing is a
	// mask rather than a modulo on the hot path.
	setMask  uint64
	ways     int
	lineBits uint
	// tags[set*ways+way] holds the line address (addr >> lineBits) + 1,
	// with 0 meaning invalid.
	tags []uint64
	// dirty[set*ways+way] marks lines with unwritten-back stores.
	dirty []bool
	// used[set] counts occupied ways. Installs never invalidate and only
	// flush clears, so occupied ways are always the prefix [0, used).
	used []int32
	// order[set] is the packed recency order (ways <= 16): nibble 0 holds
	// the most-recently-used way index, nibble used-1 the LRU victim.
	// Nibbles at positions >= used are stale and never read.
	order []uint64
	// lru/stamp are the fallback replacement state for ways > 16:
	// lru[set*ways+way] holds the last-touch stamp.
	lru   []uint64
	stamp uint64
}

func newCache(sizeBytes, lineSize uint64, ways int) *cache {
	if ways <= 0 {
		panic("mem: cache ways must be positive")
	}
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	lines := sizeBytes / lineSize
	sets := lines / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache set count %d must be a power of two (size %d, line %d, ways %d)", sets, sizeBytes, lineSize, ways))
	}
	lb := uint(0)
	for s := lineSize; s > 1; s >>= 1 {
		lb++
	}
	c := &cache{
		sets:     sets,
		setMask:  sets - 1,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*uint64(ways)),
		dirty:    make([]bool, sets*uint64(ways)),
		used:     make([]int32, sets),
	}
	if ways <= 16 {
		c.order = make([]uint64, sets)
	} else {
		c.lru = make([]uint64, sets*uint64(ways))
	}
	return c
}

func (c *cache) line(addr uint64) uint64 { return addr >> c.lineBits }

// promote moves the way at recency position p of the packed order word to
// the front (nibble 0), preserving everything else.
func promote(word uint64, p int, way uint64) uint64 {
	keep := word &^ ((uint64(1) << uint(4*(p+1))) - 1)
	moved := (word & ((uint64(1) << uint(4*p)) - 1)) << 4
	return keep | moved | way
}

// access is the fused lookup+install probe: one set walk that refreshes
// recency on a hit, or installs the line over a free or LRU way on a
// miss. It returns whether the probe hit and whether a dirty victim was
// evicted (the caller owes a write-back). When write is set the line's
// dirty bit is raised in place of a separate markDirty walk.
//
// The probe takes the line tag (line address >> lineBits, plus 1 so zero
// means invalid) rather than a byte address: every level shares the line
// size, so the hierarchy computes the tag once per access and probes all
// three levels with it.
//
// Equivalence with the old lookup-then-install pair: both make the
// accessed line the most recent in its set (the pair bumped its stamp
// twice per access, this probe once — relative recency order, the only
// thing victim selection reads, is identical), free ways are claimed
// first-ascending, and the victim is the unique least-recent way.
func (c *cache) access(tag uint64, write bool) (hit, wasDirty bool) {
	if c.order == nil {
		return c.accessStamp(tag, write)
	}
	set := (tag - 1) & c.setMask
	base := set * uint64(c.ways)
	n := uint64(c.used[set])
	// MRU-way fast path: hit-dominated streams overwhelmingly re-touch
	// the most-recent line of a set, whose way index is nibble 0 of the
	// packed order word. One tag compare decides, and a front hit needs
	// neither the occupied-prefix scan nor a promotion (p == 0 is the
	// no-op case of the general walk below), so the common hit costs a
	// couple of loads instead of a scan.
	if n > 0 {
		if w := c.order[set] & 0xF; c.tags[base+w] == tag {
			if write {
				c.dirty[base+w] = true
			}
			return true, false
		}
	}
	occ := c.tags[base : base+n : base+n]
	// Hit scan covers only the occupied prefix; free ways cannot hit.
	for i, t := range occ {
		if t == tag { // hit: move to recency front
			word := c.order[set]
			wi := uint64(i)
			p := 0
			for (word>>uint(4*p))&0xF != wi {
				p++
			}
			if p != 0 {
				c.order[set] = promote(word, p, wi)
			}
			if write {
				c.dirty[base+uint64(i)] = true
			}
			return true, false
		}
	}
	// Miss with a free way: claim the first, which is the occupancy
	// count itself (free ways are claimed in ascending order).
	if int(n) < c.ways {
		c.used[set] = int32(n) + 1
		c.order[set] = c.order[set]<<4 | n
		c.tags[base+n] = tag
		c.dirty[base+n] = write
		return false, false
	}
	// Miss with the set full: evict the least-recent way — the victim
	// nibble — and move it to the front as the freshly installed line.
	word := c.order[set]
	p := c.ways - 1
	w := (word >> uint(4*p)) & 0xF
	c.order[set] = promote(word, p, w)
	wasDirty = c.dirty[base+w]
	c.tags[base+w] = tag
	c.dirty[base+w] = write
	return false, wasDirty
}

// accessStamp is the access probe for ways > 16, using per-way stamps.
func (c *cache) accessStamp(tag uint64, write bool) (hit, wasDirty bool) {
	set := (tag - 1) & c.setMask
	base := set * uint64(c.ways)
	n := uint64(c.used[set])
	occ := c.tags[base : base+n : base+n]
	for i, t := range occ {
		if t == tag {
			c.stamp++
			c.lru[base+uint64(i)] = c.stamp
			if write {
				c.dirty[base+uint64(i)] = true
			}
			return true, false
		}
	}
	if int(n) < c.ways {
		c.used[set] = int32(n) + 1
		c.stamp++
		c.tags[base+n] = tag
		c.lru[base+n] = c.stamp
		c.dirty[base+n] = write
		return false, false
	}
	hi := base + uint64(c.ways)
	lru := c.lru[base:hi:hi]
	w := 0
	victimStamp := lru[0]
	for i := 1; i < len(lru); i++ {
		if lru[i] < victimStamp {
			victimStamp = lru[i]
			w = i
		}
	}
	wasDirty = c.dirty[base+uint64(w)]
	c.stamp++
	c.tags[base+uint64(w)] = tag
	lru[w] = c.stamp
	c.dirty[base+uint64(w)] = write
	return false, wasDirty
}

// mruIndex returns the flat tags/dirty index of tag's way when tag is
// the most-recently-used line of its set, for the packed-order layout.
// Read-only: recency, occupancy and dirty state are untouched. ok is
// false when the stamp fallback is active (ways > 16), the set is
// empty, or the MRU way holds a different line — callers must then take
// the full access path.
func (c *cache) mruIndex(tag uint64) (uint64, bool) {
	if c.order == nil {
		return 0, false
	}
	set := (tag - 1) & c.setMask
	if c.used[set] == 0 {
		return 0, false
	}
	idx := set*uint64(c.ways) + (c.order[set] & 0xF)
	if c.tags[idx] != tag {
		return 0, false
	}
	return idx, true
}

// touch makes an occupied way the most recent in its set.
func (c *cache) touch(set uint64, way int) {
	if c.order != nil {
		word := c.order[set]
		wi := uint64(way)
		p := 0
		for (word>>uint(4*p))&0xF != wi {
			p++
		}
		if p != 0 {
			c.order[set] = promote(word, p, wi)
		}
		return
	}
	c.stamp++
	c.lru[set*uint64(c.ways)+uint64(way)] = c.stamp
}

// lookup probes the cache; on hit it refreshes recency and returns true.
func (c *cache) lookup(addr uint64) bool {
	ln := c.line(addr) + 1
	set := (ln - 1) & c.setMask
	base := set * uint64(c.ways)
	n := uint64(c.used[set])
	for w := uint64(0); w < n; w++ {
		if c.tags[base+w] == ln {
			c.touch(set, int(w))
			return true
		}
	}
	return false
}

// contains probes without disturbing recency state (used by the §4.1
// cache-presence probe, which must not behave like a touch).
func (c *cache) contains(addr uint64) bool {
	return c.containsTag(c.line(addr) + 1)
}

// containsTag is the tag-keyed form of contains, for callers (the
// shared-LLC banks) whose key space is not a byte address. tag is a
// line index plus one, as stored in the tag array. Read-only: no
// recency update, safe for concurrent readers between commits.
func (c *cache) containsTag(tag uint64) bool {
	base := ((tag - 1) & c.setMask) * uint64(c.ways)
	tags := c.tags[base : base+uint64(c.ways)]
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// install fills the line, evicting the LRU way if needed. Returns the
// evicted line address, whether an eviction happened, and whether the
// victim was dirty (needs writing back). The hot path uses the fused
// access probe instead; install remains for tests that assert on victim
// identity.
func (c *cache) install(addr uint64) (evicted uint64, didEvict, wasDirty bool) {
	ln := c.line(addr) + 1
	set := (ln - 1) & c.setMask
	base := set * uint64(c.ways)
	n := uint64(c.used[set])
	for w := uint64(0); w < n; w++ {
		if c.tags[base+w] == ln { // already present
			c.touch(set, int(w))
			return 0, false, false
		}
	}
	if int(n) < c.ways { // free way
		c.used[set] = int32(n) + 1
		if c.order != nil {
			c.order[set] = c.order[set]<<4 | n
		} else {
			c.stamp++
			c.lru[base+n] = c.stamp
		}
		c.tags[base+n] = ln
		c.dirty[base+n] = false
		return 0, false, false
	}
	w := uint64(c.evictWay(set))
	old := c.tags[base+w] - 1
	d := c.dirty[base+w]
	c.tags[base+w] = ln
	c.dirty[base+w] = false
	return old << c.lineBits, true, d
}

// evictWay selects the LRU victim of a full set and makes it the most
// recent (the caller installs over it).
func (c *cache) evictWay(set uint64) int {
	if c.order != nil {
		word := c.order[set]
		p := c.ways - 1
		w := (word >> uint(4*p)) & 0xF
		c.order[set] = promote(word, p, w)
		return int(w)
	}
	base := set * uint64(c.ways)
	w := 0
	victimStamp := c.lru[base]
	for i := 1; i < c.ways; i++ {
		if c.lru[base+uint64(i)] < victimStamp {
			victimStamp = c.lru[base+uint64(i)]
			w = i
		}
	}
	c.stamp++
	c.lru[base+uint64(w)] = c.stamp
	return w
}

// markDirty flags a resident line as modified; no-op when absent.
func (c *cache) markDirty(addr uint64) {
	ln := c.line(addr) + 1
	base := ((ln - 1) & c.setMask) * uint64(c.ways)
	tags := c.tags[base : base+uint64(c.ways)]
	for w, t := range tags {
		if t == ln {
			c.dirty[base+uint64(w)] = true
			return
		}
	}
}

// flush invalidates every line.
func (c *cache) flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.dirty[i] = false
	}
	for i := range c.used {
		c.used[i] = 0
	}
	for i := range c.order {
		c.order[i] = 0
	}
	for i := range c.lru {
		c.lru[i] = 0
	}
	c.stamp = 0
}

package mem

import "fmt"

// Level identifies where an access was served from.
type Level uint8

// Hierarchy levels, ordered closest-first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
	// LevelInflight marks an access that met an in-flight fill started by
	// an earlier prefetch; the access pays only the residual latency.
	LevelInflight
	numLevels
)

// NumLevels is the number of Level values (including LevelInflight).
const NumLevels = int(numLevels)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	case LevelInflight:
		return "inflight"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// cache is one set-associative level with LRU replacement. Only tags are
// tracked; data lives in the flat Memory (the hierarchy models timing, not
// coherence).
type cache struct {
	sets     uint64
	ways     int
	lineBits uint
	// tags[set*ways+way] holds the line address (addr >> lineBits) + 1,
	// with 0 meaning invalid.
	tags []uint64
	// lru[set*ways+way] holds the last-touch stamp for LRU selection.
	lru []uint64
	// dirty[set*ways+way] marks lines with unwritten-back stores.
	dirty []bool
	stamp uint64
}

func newCache(sizeBytes, lineSize uint64, ways int) *cache {
	if ways <= 0 {
		panic("mem: cache ways must be positive")
	}
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	lines := sizeBytes / lineSize
	sets := lines / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache set count %d must be a power of two (size %d, line %d, ways %d)", sets, sizeBytes, lineSize, ways))
	}
	lb := uint(0)
	for s := lineSize; s > 1; s >>= 1 {
		lb++
	}
	return &cache{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*uint64(ways)),
		lru:      make([]uint64, sets*uint64(ways)),
		dirty:    make([]bool, sets*uint64(ways)),
	}
}

func (c *cache) line(addr uint64) uint64 { return addr >> c.lineBits }

// lookup probes the cache; on hit it refreshes LRU and returns true.
func (c *cache) lookup(addr uint64) bool {
	ln := c.line(addr) + 1
	set := (ln - 1) % c.sets
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			c.stamp++
			c.lru[base+uint64(w)] = c.stamp
			return true
		}
	}
	return false
}

// contains probes without disturbing LRU state (used by the §4.1
// cache-presence probe, which must not behave like a touch).
func (c *cache) contains(addr uint64) bool {
	ln := c.line(addr) + 1
	set := (ln - 1) % c.sets
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			return true
		}
	}
	return false
}

// install fills the line, evicting the LRU way if needed. Returns the
// evicted line address, whether an eviction happened, and whether the
// victim was dirty (needs writing back).
func (c *cache) install(addr uint64) (evicted uint64, didEvict, wasDirty bool) {
	ln := c.line(addr) + 1
	set := (ln - 1) % c.sets
	base := set * uint64(c.ways)
	victim := 0
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		t := c.tags[base+uint64(w)]
		if t == ln { // already present
			c.stamp++
			c.lru[base+uint64(w)] = c.stamp
			return 0, false, false
		}
		if t == 0 { // free way
			c.stamp++
			c.tags[base+uint64(w)] = ln
			c.lru[base+uint64(w)] = c.stamp
			c.dirty[base+uint64(w)] = false
			return 0, false, false
		}
		if c.lru[base+uint64(w)] < victimStamp {
			victimStamp = c.lru[base+uint64(w)]
			victim = w
		}
	}
	old := c.tags[base+uint64(victim)] - 1
	dirty := c.dirty[base+uint64(victim)]
	c.stamp++
	c.tags[base+uint64(victim)] = ln
	c.lru[base+uint64(victim)] = c.stamp
	c.dirty[base+uint64(victim)] = false
	return old << c.lineBits, true, dirty
}

// markDirty flags a resident line as modified; no-op when absent.
func (c *cache) markDirty(addr uint64) {
	ln := c.line(addr) + 1
	set := (ln - 1) % c.sets
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			c.dirty[base+uint64(w)] = true
			return
		}
	}
}

// flush invalidates every line.
func (c *cache) flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
		c.dirty[i] = false
	}
	c.stamp = 0
}

package mem

import (
	"reflect"
	"testing"
)

func testLLCConfig() LLCConfig {
	cfg := DefaultLLCConfig(4)
	cfg.BankPorts = 4
	cfg.QueuePenalty = 8
	cfg.MSHRs = 4
	return cfg
}

func TestLLCConfigValidate(t *testing.T) {
	good := DefaultLLCConfig(8)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LLCConfig)
	}{
		{"banks not power of two", func(c *LLCConfig) { c.Banks = 3 }},
		{"zero banks", func(c *LLCConfig) { c.Banks = 0 }},
		{"line size", func(c *LLCConfig) { c.LineSize = 48 }},
		{"ways", func(c *LLCConfig) { c.Ways = 0 }},
		{"sets not power of two", func(c *LLCConfig) { c.Size = 3 * (256 << 10) }},
		{"latency order", func(c *LLCConfig) { c.LatL3 = 400 }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// Demand must not change committed tag state until Commit runs: two
// probes of the same missing line both miss, and the line hits only
// after the barrier.
func TestLLCCommitVisibility(t *testing.T) {
	llc, err := NewSharedLLC(testLLCConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := llc.NewView(0)
	if lvl, _ := v.Demand(0x1000); lvl != LevelDRAM {
		t.Fatalf("cold probe served from %v, want DRAM", lvl)
	}
	if lvl, _ := v.Demand(0x1000); lvl != LevelDRAM {
		t.Fatalf("pre-commit re-probe served from %v, want DRAM (tags frozen in-quantum)", lvl)
	}
	if v.Contains(0x1000) {
		t.Fatal("Contains sees uncommitted line")
	}
	llc.Commit()
	if !v.Contains(0x1000) {
		t.Fatal("committed line not visible")
	}
	if lvl, lat := v.Demand(0x1000); lvl != LevelL3 || lat != llc.Config().LatL3 {
		t.Fatalf("post-commit probe = (%v, %d), want (L3, %d)", lvl, lat, llc.Config().LatL3)
	}
}

// Cores see their own address space: the same line address from two
// cores must not hit on each other's install, but still contends for
// the same sets.
func TestLLCViewIsolation(t *testing.T) {
	llc, err := NewSharedLLC(testLLCConfig())
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := llc.NewView(0), llc.NewView(1)
	v0.Demand(0x2000)
	llc.Commit()
	if !v0.Contains(0x2000) {
		t.Fatal("owner does not see its committed line")
	}
	if v1.Contains(0x2000) {
		t.Fatal("core 1 false-hits core 0's line")
	}
	if lvl, _ := v1.Demand(0x2000); lvl != LevelDRAM {
		t.Fatalf("core 1 demand served from %v, want DRAM", lvl)
	}
}

// Queue penalties derive from the PREVIOUS quantum's committed load:
// overloading one bank in quantum 1 taxes accesses to that bank in
// quantum 2 and expires by quantum 3 if the load subsides.
func TestLLCBankQueueing(t *testing.T) {
	cfg := testLLCConfig()
	llc, err := NewSharedLLC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := llc.NewView(0)
	// 3*BankPorts accesses, all to bank 0 (stride = banks*lineSize keeps
	// the bank index constant while varying the line).
	stride := uint64(cfg.Banks) * cfg.LineSize
	n := 3 * cfg.BankPorts
	for i := uint64(0); i < n; i++ {
		v.Demand(i * stride)
	}
	llc.Commit()
	if llc.Stats.PeakBankLoad != n {
		t.Fatalf("peak bank load = %d, want %d", llc.Stats.PeakBankLoad, n)
	}
	// Quantum 2: the oversubscription was (3-1)*BankPorts → factor 2.
	wantExtra := cfg.QueuePenalty * 2
	_, lat := v.Demand(0) // hits now (installed at commit)
	if want := cfg.LatL3 + wantExtra; lat != want {
		t.Fatalf("queued hit latency = %d, want %d", lat, want)
	}
	if v.qQueued != 1 || v.qQueueCycles != wantExtra {
		t.Fatalf("queue counters = (%d, %d), want (1, %d)", v.qQueued, v.qQueueCycles, wantExtra)
	}
	llc.Commit()
	// Quantum 3: only one access committed last quantum — no penalty.
	if _, lat := v.Demand(0); lat != cfg.LatL3 {
		t.Fatalf("latency after load subsided = %d, want %d", lat, cfg.LatL3)
	}
}

// Miss bursts beyond the shared MSHR budget tax DRAM-bound accesses in
// the following quantum; LLC hits pay only bank queueing.
func TestLLCMSHRPressure(t *testing.T) {
	cfg := testLLCConfig()
	cfg.BankPorts = 0 // isolate the MSHR term
	llc, err := NewSharedLLC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := llc.NewView(0)
	n := 2 * cfg.MSHRs
	for i := uint64(0); i < n; i++ {
		v.Demand(i * cfg.LineSize)
	}
	llc.Commit()
	if _, lat := v.Demand(0); lat != cfg.LatL3 {
		t.Fatalf("hit pays MSHR penalty: lat = %d, want %d", lat, cfg.LatL3)
	}
	wantMiss := cfg.LatDRAM + cfg.QueuePenalty // (2-1)*MSHRs over → factor 1
	if _, lat := v.Demand((n + 1) * cfg.LineSize); lat != wantMiss {
		t.Fatalf("pressured miss latency = %d, want %d", lat, wantMiss)
	}
}

// Commit applies logs in view-registration order, so a capacity
// conflict between cores resolves identically no matter which core's
// goroutine ran first — replaying the same quantum gives the same tags.
func TestLLCCommitOrderDeterministic(t *testing.T) {
	run := func() LLCStats {
		cfg := testLLCConfig()
		llc, err := NewSharedLLC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		v0, v1 := llc.NewView(0), llc.NewView(1)
		// Both cores stream cold lines (set pressure) while re-touching a
		// hot set (hits after the first commit).
		for i := uint64(0); i < 4096; i++ {
			v0.Demand(i * cfg.LineSize)
			v0.Demand((i % 32) * cfg.LineSize)
			v1.Demand(i * cfg.LineSize)
			v1.Demand((i % 32) * cfg.LineSize)
			if i%64 == 63 {
				llc.Commit()
			}
		}
		llc.Commit()
		return llc.Stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Misses == 0 || a.Hits == 0 {
		t.Fatalf("degenerate workload: %+v", a)
	}
}

// A hierarchy with an attached view routes L2 misses to the LLC and
// leaves the private-l3 model untouched when detached.
func TestHierarchyAttachLLC(t *testing.T) {
	cfg := DefaultConfig()
	llcCfg := DefaultLLCConfig(1)
	llc, err := NewSharedLLC(llcCfg)
	if err != nil {
		t.Fatal(err)
	}
	h := MustNewHierarchy(cfg)
	h.AttachLLC(llc.NewView(0))
	if h.LLC() == nil {
		t.Fatal("LLC() lost the attached view")
	}

	r := h.Access(0x4000, 0)
	if r.Level != LevelDRAM || r.Latency != llcCfg.LatDRAM {
		t.Fatalf("cold access = %+v, want DRAM @%d", r, llcCfg.LatDRAM)
	}
	llc.Commit()
	// Still an L1 hit on re-access (installed privately).
	if r := h.Access(0x4000, 10); r.Level != LevelL1 {
		t.Fatalf("re-access level = %v, want L1", r.Level)
	}
	// Contains at L3 scope consults the shared LLC.
	if !h.Contains(0x4000, 10, LevelL3) {
		t.Fatal("Contains(L3) misses committed shared line")
	}
	if h.Stats.Accesses[LevelDRAM] != 1 || h.Stats.Accesses[LevelL1] != 1 {
		t.Fatalf("stats = %+v", h.Stats.Accesses)
	}
}

package mem

// fillTable is the MSHR file: the set of outstanding fills, kept as a
// flat array sorted by line address. It replaces the map the hierarchy
// used through PR 1. The table is small — bounded by Config.MaxInflight
// (64 on the reference machine) — so open-addressed probing or hashing
// buys nothing: a binary search touches one or two cache lines, inserts
// and deletes are short memmoves, and the sorted order makes reclaim's
// ascending-line-address install order (the determinism contract from
// the PR 1 nondeterminism fix) fall out of a plain array walk instead of
// a per-call sort.
//
// With MaxInflight > 0 the backing array is allocated once at its fixed
// capacity and never grows; Flush truncates in place. Steady-state
// operation is therefore allocation-free. MaxInflight == 0 (unlimited)
// falls back to amortized append growth.
type fillEntry struct {
	line       uint64 // line address (low lineBits clear)
	completion uint64 // cycle at which the line arrives
	level      Level  // level servicing the fill
}

type fillTable struct {
	entries []fillEntry // sorted by line
}

// newFillTable sizes the table for an MSHR budget; cap<=0 means unlimited
// and starts with a modest capacity that grows on demand.
func newFillTable(capacity int) fillTable {
	if capacity <= 0 {
		capacity = 64
	}
	return fillTable{entries: make([]fillEntry, 0, capacity)}
}

func (t *fillTable) len() int { return len(t.entries) }

// search returns the index of line in the table, or, when absent, the
// index at which it would be inserted, with found=false.
func (t *fillTable) search(line uint64) (int, bool) {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.entries[mid].line < line {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(t.entries) && t.entries[lo].line == line
}

// get returns the entry for line, if outstanding.
func (t *fillTable) get(line uint64) (fillEntry, bool) {
	i, ok := t.search(line)
	if !ok {
		return fillEntry{}, false
	}
	return t.entries[i], true
}

// has reports whether a fill for line is outstanding.
func (t *fillTable) has(line uint64) bool {
	_, ok := t.search(line)
	return ok
}

// insert records a new outstanding fill. The caller has already checked
// the line is absent and the MSHR budget has room.
func (t *fillTable) insert(line, completion uint64, level Level) {
	i, _ := t.search(line)
	t.entries = append(t.entries, fillEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = fillEntry{line: line, completion: completion, level: level}
}

// removeAt frees the MSHR at index i.
func (t *fillTable) removeAt(i int) {
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
}

// remove frees the MSHR for line, if present.
func (t *fillTable) remove(line uint64) {
	if i, ok := t.search(line); ok {
		t.removeAt(i)
	}
}

// reset drops every entry, keeping the backing array.
func (t *fillTable) reset() { t.entries = t.entries[:0] }

// Package mem simulates the machine's memory system: a flat byte-addressed
// backing store with a bump allocator, and a three-level set-associative
// cache hierarchy with in-flight fill tracking.
//
// The in-flight fill table is the heart of the paper's mechanism: a
// PREFETCH starts an asynchronous fill whose completion timestamp is
// recorded; a later LOAD of the same line pays only the residual latency
// max(0, completion-now). Interleaving coroutine execution between the
// prefetch and the load is therefore genuinely what hides the miss.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Memory is the flat simulated backing store. Addresses are byte offsets.
// Address 0 is kept unmapped so that null-pointer chases fault loudly.
type Memory struct {
	data []byte
	brk  uint64 // bump-allocation watermark
}

// NewMemory creates a backing store of the given size in bytes. The first
// 64 bytes are reserved (never allocated) so address 0 stays invalid.
func NewMemory(size uint64) *Memory {
	if size < 128 {
		size = 128
	}
	return &Memory{data: make([]byte, size), brk: 64}
}

// Size returns the size of the backing store in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Brk returns the current allocation watermark.
func (m *Memory) Brk() uint64 { return m.brk }

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address. It panics if the store is exhausted — workload construction
// bugs should fail fast.
func (m *Memory) Alloc(n, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	if base+n > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: out of simulated memory (want %d bytes at %#x, have %d)", n, base, len(m.data)))
	}
	m.brk = base + n
	return base
}

// InBounds reports whether an 8-byte access at addr is valid.
func (m *Memory) InBounds(addr uint64) bool {
	return addr >= 8 && addr+8 <= uint64(len(m.data))
}

// Read64 loads the 8-byte little-endian word at addr. The fault path is
// outlined so the bounds-checked fast path stays within the inlining
// budget of the core's load/store dispatch.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if m.InBounds(addr) {
		return binary.LittleEndian.Uint64(m.data[addr:]), nil
	}
	return 0, m.fault("load", addr)
}

// Write64 stores the 8-byte little-endian word v at addr.
func (m *Memory) Write64(addr, v uint64) error {
	if m.InBounds(addr) {
		binary.LittleEndian.PutUint64(m.data[addr:], v)
		return nil
	}
	return m.fault("store", addr)
}

//go:noinline
func (m *Memory) fault(kind string, addr uint64) error {
	return fmt.Errorf("mem: %s fault at %#x (store size %#x)", kind, addr, len(m.data))
}

// MustRead64 is Read64 for host-side data construction; it panics on fault.
func (m *Memory) MustRead64(addr uint64) uint64 {
	v, err := m.Read64(addr)
	if err != nil {
		panic(err)
	}
	return v
}

// MustWrite64 is Write64 for host-side data construction; it panics on
// fault.
func (m *Memory) MustWrite64(addr, v uint64) {
	if err := m.Write64(addr, v); err != nil {
		panic(err)
	}
}

// Snapshot returns a copy of the populated region of memory (up to the
// allocation watermark). Tests use it to compare architectural state across
// original and instrumented runs.
func (m *Memory) Snapshot() []byte {
	out := make([]byte, m.brk)
	copy(out, m.data[:m.brk])
	return out
}

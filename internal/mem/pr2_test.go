package mem

import "testing"

// TestStreamPrefetchDistanceFills pins the stream prefetcher's fan-out:
// detecting an ascending stream at distance D must start exactly D fills,
// for the next D lines, all initially DRAM-latency deep.
func TestStreamPrefetchDistanceFills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetchDistance = 4
	h := MustNewHierarchy(cfg)

	h.Access(0*cfg.LineSize, 0) // no stream yet
	h.Access(1*cfg.LineSize, 0) // line 1 follows line 0: stream detected
	if got := h.Stats.HWPrefetches; got != 4 {
		t.Fatalf("stream detection started %d fills, want HWPrefetchDistance=4", got)
	}
	// The fills cover exactly lines 2..5 and are DRAM-deep.
	for line := uint64(2); line <= 5; line++ {
		if got := h.Residual(line*cfg.LineSize, 0); got != cfg.LatDRAM {
			t.Errorf("line %d residual = %d, want %d", line, got, cfg.LatDRAM)
		}
	}
	if got := h.Residual(6*cfg.LineSize, 0); got != 0 {
		t.Errorf("line 6 beyond the prefetch distance has residual %d, want 0", got)
	}
	// A demand access to a covered line is served from the in-flight fill.
	if r := h.Access(2*cfg.LineSize, 0); r.Level != LevelInflight {
		t.Errorf("covered line served from %v, want inflight", r.Level)
	}
}

// TestContainsDoesNotPerturbLRU checks that the §4.1 presence probe is
// side-effect free: probing a line must not refresh its recency, so a
// probed-but-not-accessed line is still the eviction victim.
func TestContainsDoesNotPerturbLRU(t *testing.T) {
	cfg := Config{
		LineSize: 64,
		L1Size:   256, L1Ways: 2, // 2 sets of 2 ways
		L2Size: 1024, L2Ways: 2,
		L3Size: 4096, L3Ways: 4,
		LatL1: 4, LatL2: 14, LatL3: 50, LatDRAM: 300,
		HWPrefetchDistance: 0,
	}
	h := MustNewHierarchy(cfg)

	// Lines 0, 2, 4 all map to L1 set 0 (2 sets): the set is full after A
	// and B, with A the LRU way.
	const a, b, c = 0 * 64, 2 * 64, 4 * 64
	h.Access(a, 0)
	h.Access(b, 10)

	// Probe A repeatedly. If Contains behaved like a touch, A would become
	// MRU and the next fill would evict B instead.
	for i := 0; i < 4; i++ {
		if !h.Contains(a, 20, LevelL1) {
			t.Fatal("resident line not found by Contains")
		}
	}

	h.Access(c, 30) // fills set 0: must evict A, the true LRU
	if r := h.Access(a, 40); r.Level != LevelL2 {
		t.Errorf("probed line served from %v, want L2 (evicted from L1 despite probes)", r.Level)
	}
}

// TestDirtyVictimTargetsLRUWay checks the write-back penalty is tied to
// the victim way specifically: evicting a clean LRU way costs nothing
// even while a dirty line sits in the same set.
func TestDirtyVictimTargetsLRUWay(t *testing.T) {
	cfg := Config{
		LineSize: 64,
		L1Size:   256, L1Ways: 2,
		L2Size: 1024, L2Ways: 2,
		L3Size: 4096, L3Ways: 4,
		LatL1: 4, LatL2: 14, LatL3: 50, LatDRAM: 300,
		WritebackPenalty:   12,
		HWPrefetchDistance: 0,
	}
	h := MustNewHierarchy(cfg)

	const a, b, c, d = 0 * 64, 2 * 64, 4 * 64, 6 * 64
	h.AccessW(a, 0, false) // clean
	h.AccessW(b, 10, true) // dirty
	h.AccessW(b, 20, true) // B is MRU and dirty; A is clean LRU

	// Fill C: evicts clean A, no penalty even though dirty B is resident.
	if r := h.AccessW(c, 30, false); r.Latency != cfg.LatDRAM {
		t.Errorf("clean-victim fill cost %d, want bare %d", r.Latency, cfg.LatDRAM)
	}
	if h.Stats.Writebacks != 0 {
		t.Fatalf("clean eviction recorded %d writebacks", h.Stats.Writebacks)
	}

	// Fill D: now the victim is dirty B and the fill pays the penalty.
	if r := h.AccessW(d, 40, false); r.Latency != cfg.LatDRAM+cfg.WritebackPenalty {
		t.Errorf("dirty-victim fill cost %d, want %d", r.Latency, cfg.LatDRAM+cfg.WritebackPenalty)
	}
	if h.Stats.Writebacks != 1 {
		t.Errorf("dirty eviction recorded %d writebacks, want 1", h.Stats.Writebacks)
	}
}

// TestHierarchySteadyStateAllocFree guards the tentpole property: with a
// bounded MSHR budget, the entire demand/prefetch/probe/flush surface
// runs without allocating.
func TestHierarchySteadyStateAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 8
	h := MustNewHierarchy(cfg)

	// Warm up: populate caches and cycle the MSHR file through growth,
	// reclaim, and flush once so every buffer is at steady-state size.
	now := uint64(0)
	for i := uint64(0); i < 512; i++ {
		h.AccessW(i*64, now, i%3 == 0)
		h.Prefetch((i+100)*64, now)
		now += 20
	}
	h.Flush()

	allocs := testing.AllocsPerRun(200, func() {
		h.AccessW(now%(1<<16), now, now%5 == 0)
		h.Prefetch((now+4096)%(1<<16), now)
		h.Residual(now%(1<<16), now)
		h.Contains(now%(1<<16), now, LevelL3)
		h.Touch((now + 8192) % (1 << 16))
		now += 37
		if now%4000 < 37 {
			h.Flush() // includes the satellite fix: flush must not reallocate
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state hierarchy ops allocated %.1f times per run, want 0", allocs)
	}
}

// fillTable unit tests: ordering, membership, removal, reset-in-place.

func TestFillTableSortedInsert(t *testing.T) {
	ft := newFillTable(8)
	for _, ln := range []uint64{0x500, 0x100, 0x300, 0x200, 0x400} {
		ft.insert(ln, ln+1000, LevelDRAM)
	}
	if ft.len() != 5 {
		t.Fatalf("len = %d, want 5", ft.len())
	}
	for i := 1; i < ft.len(); i++ {
		if ft.entries[i-1].line >= ft.entries[i].line {
			t.Fatalf("entries out of order at %d: %#x >= %#x", i, ft.entries[i-1].line, ft.entries[i].line)
		}
	}
	if f, ok := ft.get(0x300); !ok || f.completion != 0x300+1000 || f.level != LevelDRAM {
		t.Errorf("get(0x300) = %+v, %v", f, ok)
	}
	if ft.has(0x250) {
		t.Error("has reported an absent line")
	}
}

func TestFillTableRemove(t *testing.T) {
	ft := newFillTable(8)
	for _, ln := range []uint64{0x100, 0x200, 0x300} {
		ft.insert(ln, 50, LevelL3)
	}
	ft.remove(0x200)
	if ft.has(0x200) || !ft.has(0x100) || !ft.has(0x300) {
		t.Error("remove(0x200) disturbed the wrong entries")
	}
	ft.remove(0x999) // absent: no-op
	if ft.len() != 2 {
		t.Errorf("len = %d after removals, want 2", ft.len())
	}
}

func TestFillTableResetKeepsCapacity(t *testing.T) {
	ft := newFillTable(16)
	before := cap(ft.entries)
	for i := uint64(0); i < 16; i++ {
		ft.insert(i*64, 10, LevelDRAM)
	}
	ft.reset()
	if ft.len() != 0 {
		t.Errorf("len = %d after reset, want 0", ft.len())
	}
	if cap(ft.entries) != before {
		t.Errorf("reset changed capacity %d -> %d; must reuse storage", before, cap(ft.entries))
	}
}

func TestFillTableUnlimitedGrowth(t *testing.T) {
	ft := newFillTable(0) // unlimited budget: table grows on demand
	for i := uint64(0); i < 200; i++ {
		ft.insert(i*64, 10, LevelDRAM)
	}
	if ft.len() != 200 {
		t.Fatalf("len = %d, want 200", ft.len())
	}
	for i := uint64(0); i < 200; i++ {
		if !ft.has(i * 64) {
			t.Fatalf("line %#x lost during growth", i*64)
		}
	}
}

package mem

import "fmt"

// This file is the shared half of the PR-6 private/shared split: the
// banked last-level cache that every core of a many-core machine
// contends for. A Hierarchy owns the private L1/L2 and the MSHR file as
// before; when a core is part of a machine, its hierarchy is attached to
// an LLCView and the L3 probes route here instead of the private l3.
//
// # Quantum discipline (determinism contract)
//
// The LLC is shared across goroutines, so it follows the bound-weave
// discipline of the cycle-quantum kernel (internal/machine):
//
//   - During a quantum, views only READ committed bank tag state
//     (containsTag — no recency touch, no install) plus the per-bank
//     contention figures frozen at the last barrier. Every access is
//     appended to the view's private log.
//   - At the quantum barrier, Commit applies the logs in fixed
//     core-index order: installs update bank tags/LRU, per-bank load
//     and shared-MSHR pressure are tallied, and the next quantum's
//     queue penalties are derived from this quantum's committed load.
//
// Tag state therefore changes only between quanta, on the kernel
// goroutine, with the barrier providing the happens-before edges — the
// race detector proves the absence of unsynchronized access, and the
// outcome is a pure function of the seed: cross-core interactions
// resolve in core-index order no matter how the host schedules the
// worker goroutines.
//
// # Contention model
//
// Latency is LatL3 on a tag hit and LatDRAM on a miss, plus two
// feedback penalties derived from the PREVIOUS quantum's committed
// traffic (using the current quantum's would make latency depend on
// in-quantum ordering across cores):
//
//   - bank queueing: a bank that committed more than BankPorts accesses
//     last quantum adds QueuePenalty cycles per access per BankPorts of
//     oversubscription this quantum;
//   - shared MSHRs: misses beyond MSHRs last quantum add the same
//     per-access penalty to DRAM-bound accesses this quantum.
//
// One quantum of lag is the standard lax-synchronization trade
// (ZSim-style bound-weave): contention affects timing with a bounded
// delay, never correctness, and stays deterministic.

// LLCConfig sizes the shared last-level cache and its contention model.
type LLCConfig struct {
	// Banks is the number of independently ported banks; must be a
	// power of two. Consecutive lines interleave across banks.
	Banks int
	// Size is the total capacity in bytes across all banks.
	Size uint64
	// Ways is the associativity of each bank.
	Ways int
	// LineSize must match the private hierarchies' line size.
	LineSize uint64

	// LatL3 and LatDRAM are the uncontended service latencies.
	LatL3   uint64
	LatDRAM uint64

	// BankPorts is the number of accesses one bank can absorb per
	// quantum before queueing sets in. Zero disables bank queueing.
	BankPorts uint64
	// QueuePenalty is the extra latency per access per BankPorts (or
	// MSHRs) of oversubscription observed in the previous quantum.
	QueuePenalty uint64
	// MSHRs caps the misses the shared miss-handling registers absorb
	// per quantum before DRAM-bound accesses queue. Zero disables the
	// MSHR pressure model.
	MSHRs uint64
}

// DefaultLLCConfig returns a shared LLC scaled for the given core
// count: 256 KiB of capacity per core (matching the scaled private L3
// of the reference machine), rounded up to a power-of-two core count so
// bank sets stay powers of two.
func DefaultLLCConfig(cores int) LLCConfig {
	if cores < 1 {
		cores = 1
	}
	p := 1
	for p < cores {
		p <<= 1
	}
	return LLCConfig{
		Banks:        8,
		Size:         uint64(p) * (256 << 10),
		Ways:         16,
		LineSize:     64,
		LatL3:        50,
		LatDRAM:      300,
		BankPorts:    256,
		QueuePenalty: 8,
		MSHRs:        64,
	}
}

// Validate checks the configuration for structural problems.
func (c LLCConfig) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("mem: LLC bank count %d must be a positive power of two", c.Banks)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: LLC line size %d must be a power of two", c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: LLC ways must be positive")
	}
	bankBytes := c.Size / uint64(c.Banks)
	sets := bankBytes / c.LineSize / uint64(c.Ways)
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("mem: LLC bank set count %d must be a positive power of two (size %d, banks %d, line %d, ways %d)",
			sets, c.Size, c.Banks, c.LineSize, c.Ways)
	}
	if c.LatL3 > c.LatDRAM {
		return fmt.Errorf("mem: LLC LatL3 %d must not exceed LatDRAM %d", c.LatL3, c.LatDRAM)
	}
	return nil
}

// LLCStats counts shared-LLC activity, committed in core-index order so
// the totals are deterministic.
type LLCStats struct {
	// Hits and Misses count probes by outcome (demand and prefetch).
	Hits, Misses uint64
	// Queued counts accesses that paid a contention penalty;
	// QueueCycles is the total penalty added.
	Queued      uint64
	QueueCycles uint64
	// PeakBankLoad is the highest per-bank committed load of any quantum.
	PeakBankLoad uint64
	// Quanta counts commits.
	Quanta uint64
}

// asidLineShift positions the core tag above every line-index bit.
// Per-core memories are at most 2^44 bytes (enforced by the machine
// layer), so line indexes fit in 40 bits at any line size ≥ 16 B.
const asidLineShift = 40

// SharedLLC is the banked shared last-level cache. Construct with
// NewSharedLLC, hand each core a view via NewView, and call Commit at
// every quantum barrier — from a single goroutine, with the barrier
// ordering commits against the quantum's probes.
type SharedLLC struct {
	cfg       LLCConfig
	banks     []*cache
	bankMask  uint64
	bankShift uint
	lineShift uint

	// prevLoad/curLoad are per-bank committed access counts; prev is
	// frozen for reading during a quantum, cur accumulates at commit.
	prevLoad []uint64
	curLoad  []uint64
	// bankExtra is the per-access queue penalty per bank for the
	// current quantum, derived from prevLoad at the last commit.
	bankExtra []uint64
	// dramExtra is the shared-MSHR penalty for DRAM-bound accesses this
	// quantum, derived from last quantum's committed miss count.
	dramExtra  uint64
	prevMisses uint64

	views []*LLCView

	Stats LLCStats
}

// NewSharedLLC builds the shared LLC.
func NewSharedLLC(cfg LLCConfig) (*SharedLLC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SharedLLC{
		cfg:      cfg,
		banks:    make([]*cache, cfg.Banks),
		bankMask: uint64(cfg.Banks) - 1,
	}
	for i := range s.banks {
		s.banks[i] = newCache(cfg.Size/uint64(cfg.Banks), cfg.LineSize, cfg.Ways)
	}
	s.lineShift = s.banks[0].lineBits
	for b := cfg.Banks; b > 1; b >>= 1 {
		s.bankShift++
	}
	s.prevLoad = make([]uint64, cfg.Banks)
	s.curLoad = make([]uint64, cfg.Banks)
	s.bankExtra = make([]uint64, cfg.Banks)
	return s, nil
}

// Config returns the LLC configuration.
//
//shsim:llc-read
func (s *SharedLLC) Config() LLCConfig { return s.cfg }

// NewView registers a per-core view. The view's position in the commit
// order is its registration order, so cores must register views in
// core-index order. Setup-only: reshapes shared state, so it is off
// limits once core goroutines exist.
//
//shsim:llc-mutate
func (s *SharedLLC) NewView(coreID int) *LLCView {
	v := &LLCView{llc: s, asid: uint64(coreID+1) << asidLineShift}
	s.views = append(s.views, v)
	return v
}

// Commit applies every view's access log to the bank tag state in
// registration (core-index) order, merges per-view statistics, and
// derives the next quantum's contention penalties from the committed
// load. Call exactly once per quantum barrier, from one goroutine.
//
//shsim:llc-mutate
func (s *SharedLLC) Commit() {
	for i := range s.curLoad {
		s.curLoad[i] = 0
	}
	var misses uint64
	for _, v := range s.views {
		for _, key := range v.log {
			bank := key & s.bankMask
			s.banks[bank].access((key>>s.bankShift)+1, false)
			s.curLoad[bank]++
		}
		v.log = v.log[:0]
		s.Stats.Hits += v.qHits
		s.Stats.Misses += v.qMisses
		s.Stats.Queued += v.qQueued
		s.Stats.QueueCycles += v.qQueueCycles
		misses += v.qMisses
		v.qHits, v.qMisses, v.qQueued, v.qQueueCycles = 0, 0, 0, 0
	}
	for b, load := range s.curLoad {
		if load > s.Stats.PeakBankLoad {
			s.Stats.PeakBankLoad = load
		}
		s.bankExtra[b] = 0
		if s.cfg.BankPorts > 0 && load > s.cfg.BankPorts {
			s.bankExtra[b] = s.cfg.QueuePenalty * ((load - s.cfg.BankPorts) / s.cfg.BankPorts)
			if s.bankExtra[b] == 0 {
				s.bankExtra[b] = s.cfg.QueuePenalty
			}
		}
	}
	s.dramExtra = 0
	if s.cfg.MSHRs > 0 && misses > s.cfg.MSHRs {
		s.dramExtra = s.cfg.QueuePenalty * ((misses - s.cfg.MSHRs) / s.cfg.MSHRs)
		if s.dramExtra == 0 {
			s.dramExtra = s.cfg.QueuePenalty
		}
	}
	s.prevLoad, s.curLoad = s.curLoad, s.prevLoad
	s.prevMisses = misses
	s.Stats.Quanta++
}

// LLCView is one core's window onto the shared LLC: a read-only probe
// of the committed tag state plus a private access log replayed at the
// barrier. Views are not safe for concurrent use; each belongs to
// exactly one core goroutine.
type LLCView struct {
	llc *SharedLLC
	// asid disambiguates per-core address spaces: each core runs over
	// its own private Memory, so line indexes are tagged with the core
	// to prevent cross-core false hits while still contending for the
	// same sets and banks.
	asid uint64

	// log holds the bank-keyed lines touched this quantum, in access
	// order. Reset (capacity retained) at every commit.
	log []uint64

	// Per-quantum counters, merged into SharedLLC.Stats at commit in
	// core-index order.
	qHits, qMisses, qQueued, qQueueCycles uint64
}

// key maps a byte line address into the banked key space: low bits pick
// the bank, the rest (with the core tag on top) form the in-bank line.
//
//shsim:llc-read
//shsim:noalloc inline
func (v *LLCView) key(ln uint64) uint64 {
	return v.asid | (ln >> v.llc.lineShift)
}

// Demand probes the committed LLC state for the line containing byte
// line address ln, logs the access for commit, and returns the serving
// level (LevelL3 or LevelDRAM) plus the total latency including any
// contention penalty carried over from the previous quantum. Probes
// committed tag state and writes only the view's core-private log.
//
//shsim:llc-read
//shsim:noalloc
func (v *LLCView) Demand(ln uint64) (Level, uint64) {
	s := v.llc
	key := v.key(ln)
	bank := key & s.bankMask
	extra := s.bankExtra[bank]
	var lvl Level
	var lat uint64
	if s.banks[bank].containsTag((key >> s.bankShift) + 1) {
		lvl, lat = LevelL3, s.cfg.LatL3
		v.qHits++
	} else {
		lvl, lat = LevelDRAM, s.cfg.LatDRAM
		extra += s.dramExtra
		v.qMisses++
	}
	if extra > 0 {
		v.qQueued++
		v.qQueueCycles += extra
	}
	v.log = append(v.log, key)
	return lvl, lat + extra
}

// Fill logs an install (a private-level fill landing, a pre-warm touch)
// without probing: the line enters the LLC at the next commit and
// counts toward bank load. Appends to the core-private log only.
//
//shsim:llc-read
//shsim:noalloc inline
func (v *LLCView) Fill(ln uint64) {
	v.log = append(v.log, v.key(ln))
}

// Contains reports whether the committed LLC state holds the line. It
// neither logs nor perturbs recency — the §4.1 presence-probe contract.
//
//shsim:llc-read
//shsim:noalloc inline
func (v *LLCView) Contains(ln uint64) bool {
	s := v.llc
	key := v.key(ln)
	return s.banks[key&s.bankMask].containsTag((key >> s.bankShift) + 1)
}

package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestMemoryAllocAndAccess(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc(64, 8)
	b := m.Alloc(64, 64)
	if a < 64 {
		t.Errorf("first allocation %#x overlaps reserved page", a)
	}
	if b%64 != 0 {
		t.Errorf("aligned allocation %#x not 64-byte aligned", b)
	}
	if b < a+64 {
		t.Errorf("allocations overlap: a=%#x b=%#x", a, b)
	}
	m.MustWrite64(a, 0xdeadbeef)
	if got := m.MustRead64(a); got != 0xdeadbeef {
		t.Errorf("read back %#x", got)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMemory(1 << 12)
	if _, err := m.Read64(0); err == nil {
		t.Error("null load should fault")
	}
	if _, err := m.Read64(m.Size() - 4); err == nil {
		t.Error("partially out-of-range load should fault")
	}
	if err := m.Write64(0, 1); err == nil {
		t.Error("null store should fault")
	}
	if err := m.Write64(m.Size(), 1); err == nil {
		t.Error("out-of-range store should fault")
	}
}

func TestMemoryAllocExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	m := NewMemory(1 << 10)
	m.Alloc(1<<20, 8)
}

func TestMemorySnapshot(t *testing.T) {
	m := NewMemory(1 << 12)
	a := m.Alloc(16, 8)
	m.MustWrite64(a, 42)
	snap := m.Snapshot()
	m.MustWrite64(a, 99)
	if uint64(len(snap)) != m.Brk() {
		t.Errorf("snapshot length %d != brk %d", len(snap), m.Brk())
	}
	snap2 := m.Snapshot()
	if snap[a] == snap2[a] {
		t.Error("snapshot should be a copy, not a view")
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way, 2 sets, 64B lines => 256 bytes.
	c := newCache(256, 64, 2)
	if c.sets != 2 {
		t.Fatalf("sets = %d, want 2", c.sets)
	}
	// Three lines mapping to the same set (stride = sets*lineSize = 128).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.install(a)
	c.install(b)
	if !c.lookup(a) || !c.lookup(b) {
		t.Fatal("both lines should be resident")
	}
	// Touch a so b becomes LRU, then install d: b must be evicted.
	c.lookup(a)
	evicted, did, _ := c.install(d)
	if !did {
		t.Fatal("install into full set should evict")
	}
	if evicted != b {
		t.Errorf("evicted %#x, want %#x", evicted, b)
	}
	if c.contains(b) {
		t.Error("b should be gone")
	}
	if !c.contains(a) || !c.contains(d) {
		t.Error("a and d should be resident")
	}
}

func TestCacheInstallIdempotent(t *testing.T) {
	c := newCache(256, 64, 2)
	c.install(1)
	if _, did, _ := c.install(1); did {
		t.Error("reinstalling a resident line must not evict")
	}
}

func TestCacheFlush(t *testing.T) {
	c := newCache(256, 64, 2)
	c.install(1)
	c.flush()
	if c.contains(1) {
		t.Error("flush should invalidate")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	// Cold access: DRAM.
	r := h.Access(0x1000, 0)
	if r.Level != LevelDRAM || r.Latency != cfg.LatDRAM || !r.MissedL2 {
		t.Fatalf("cold access: %+v", r)
	}
	// Now hot in L1.
	r = h.Access(0x1000, 100)
	if r.Level != LevelL1 || r.Latency != cfg.LatL1 || r.MissedL2 {
		t.Fatalf("hot access: %+v", r)
	}
	// Same line, different word.
	r = h.Access(0x1008, 200)
	if r.Level != LevelL1 {
		t.Fatalf("same-line access should hit L1: %+v", r)
	}
}

func TestHierarchyEvictionCascade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Size = 128 // 2 lines
	cfg.L1Ways = 1
	cfg.L2Size = 256 // 4 lines
	cfg.L2Ways = 1
	cfg.L3Size = 1 << 12
	cfg.L3Ways = 1
	h := MustNewHierarchy(cfg)
	h.Access(0, 0)
	// Evict from direct-mapped L1 set 0 (stride = 2 lines * 64B = 128).
	h.Access(128, 10)
	r := h.Access(0, 20)
	if r.Level != LevelL2 {
		t.Fatalf("expected L2 hit after L1 eviction, got %v", r.Level)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)

	// Fully hidden: prefetch at t=0, access after the DRAM latency.
	lvl, done := h.Prefetch(0x4000, 0)
	if lvl != LevelDRAM || done != cfg.LatDRAM {
		t.Fatalf("prefetch: lvl=%v done=%d", lvl, done)
	}
	r := h.Access(0x4000, cfg.LatDRAM+10)
	if r.Level != LevelInflight || r.Latency != cfg.LatL1 {
		t.Fatalf("fully hidden access: %+v", r)
	}
	if h.Stats.InflightFull != 1 {
		t.Errorf("InflightFull = %d", h.Stats.InflightFull)
	}

	// Partially hidden: access 100 cycles after prefetch.
	h2 := MustNewHierarchy(cfg)
	h2.Prefetch(0x8000, 0)
	r = h2.Access(0x8000, 100)
	want := cfg.LatDRAM - 100
	if r.Level != LevelInflight || r.Latency != want {
		t.Fatalf("partially hidden access: got %+v, want latency %d", r, want)
	}
	if !r.MissedL2 {
		t.Error("DRAM-sourced inflight access should report MissedL2")
	}
}

func TestPrefetchOfCachedLineIsNoop(t *testing.T) {
	h := MustNewHierarchy(DefaultConfig())
	h.Access(0x100, 0)
	lvl, done := h.Prefetch(0x100, 10)
	if lvl != LevelL1 || done != 10 {
		t.Errorf("prefetch of resident line: lvl=%v done=%d", lvl, done)
	}
	if h.Stats.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d", h.Stats.PrefetchHits)
	}
	// Duplicate prefetch of an in-flight line is also a no-op.
	h.Prefetch(0x9000, 20)
	if lvl, _ := h.Prefetch(0x9000, 25); lvl != LevelInflight {
		t.Errorf("duplicate prefetch level = %v", lvl)
	}
}

func TestPrefetchFromL2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Size = 128
	cfg.L1Ways = 1
	h := MustNewHierarchy(cfg)
	h.Access(0, 0)
	h.Access(128, 10) // evicts line 0 from tiny L1; still in L2
	lvl, done := h.Prefetch(0, 20)
	if lvl != LevelL2 || done != 20+cfg.LatL2 {
		t.Errorf("prefetch from L2: lvl=%v done=%d", lvl, done)
	}
}

func TestContainsProbe(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	if h.Contains(0x2000, 0, LevelL2) {
		t.Error("cold line should not be present")
	}
	h.Access(0x2000, 0)
	if !h.Contains(0x2000, 10, LevelL1) {
		t.Error("hot line should be present in L1")
	}
	// In-flight fill counts only once complete.
	h.Prefetch(0x7000, 100)
	if h.Contains(0x7000, 150, LevelL2) {
		t.Error("incomplete fill should not count as present")
	}
	if !h.Contains(0x7000, 100+cfg.LatDRAM, LevelL2) {
		t.Error("completed fill should count as present")
	}
}

func TestTouchAndFlush(t *testing.T) {
	h := MustNewHierarchy(DefaultConfig())
	h.Touch(0x3000)
	if r := h.Access(0x3000, 0); r.Level != LevelL1 {
		t.Errorf("touched line should hit L1, got %v", r.Level)
	}
	h.Flush()
	if r := h.Access(0x3000, 10); r.Level != LevelDRAM {
		t.Errorf("flushed line should miss, got %v", r.Level)
	}
}

func TestStats(t *testing.T) {
	h := MustNewHierarchy(DefaultConfig())
	h.Access(0, 0)
	h.Access(0, 1)
	h.Access(64, 2)
	s := h.Stats
	if s.Accesses[LevelDRAM] != 2 || s.Accesses[LevelL1] != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
	h.ResetStats()
	if h.Stats.Total() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.LineSize = 48
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultConfig()
	bad.LatL3 = bad.LatDRAM + 1
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("non-monotone latencies accepted")
	}
	bad = DefaultConfig()
	bad.L2Ways = 0
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("zero ways accepted")
	}
}

// Property: after any access the line is L1-resident, and a repeated access
// at the same cycle is always an L1 hit.
func TestAccessIdempotencyQuick(t *testing.T) {
	h := MustNewHierarchy(DefaultConfig())
	var now uint64
	f := func(addr uint32) bool {
		now += 7
		h.Access(uint64(addr), now)
		r := h.Access(uint64(addr), now)
		return r.Level == LevelL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: latencies are always bounded by [LatL1, LatDRAM].
func TestLatencyBoundsQuick(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	rng := rand.New(rand.NewSource(7))
	var now uint64
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 24))
		now += uint64(rng.Intn(50))
		if rng.Intn(4) == 0 {
			h.Prefetch(addr, now)
			continue
		}
		r := h.Access(addr, now)
		if r.Latency < cfg.LatL1 || r.Latency > cfg.LatDRAM {
			t.Fatalf("access %d: latency %d out of bounds (%+v)", i, r.Latency, r)
		}
	}
}

// Property: the LRU working set is fully resident — accessing W distinct
// lines that fit in one level keeps them all at that level or better.
func TestWorkingSetResidency(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	lines := int(cfg.L1Size / cfg.LineSize / 2) // half of L1
	var now uint64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			addr := uint64(i) * cfg.LineSize
			r := h.Access(addr, now)
			now += r.Latency
			if pass > 0 && r.Level != LevelL1 {
				t.Fatalf("pass %d line %d: level %v, want L1", pass, i, r.Level)
			}
		}
	}
}

func TestHardwareStreamPrefetcher(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	// Sequential line-by-line scan: after the stream is detected, accesses
	// are served by in-flight (or completed) hardware prefetches.
	now := uint64(0)
	var dramAfterWarmup uint64
	for i := 0; i < 64; i++ {
		r := h.Access(uint64(i)*cfg.LineSize, now)
		now += r.Latency + 76 // ~80 cycles of compute per line, like a scan
		if i >= 8 && r.Level == LevelDRAM {
			dramAfterWarmup++
		}
	}
	if h.Stats.HWPrefetches == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	if dramAfterWarmup > 0 {
		t.Errorf("%d demand DRAM accesses after warmup; stream should be covered", dramAfterWarmup)
	}
	// Random pattern: the prefetcher must stay quiet.
	h2 := MustNewHierarchy(cfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		h2.Access(uint64(rng.Intn(1<<20))&^63*7, uint64(i*10))
	}
	if h2.Stats.HWPrefetches > 20 {
		t.Errorf("prefetcher fired %d times on a random pattern", h2.Stats.HWPrefetches)
	}
	// Disabled by config.
	cfg.HWPrefetchDistance = 0
	h3 := MustNewHierarchy(cfg)
	for i := 0; i < 16; i++ {
		h3.Access(uint64(i)*cfg.LineSize, uint64(i*400))
	}
	if h3.Stats.HWPrefetches != 0 {
		t.Error("disabled prefetcher fired")
	}
}

func TestMSHRCapDropsPrefetches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 2
	cfg.HWPrefetchDistance = 0
	h := MustNewHierarchy(cfg)
	h.Prefetch(0x10000, 0)
	h.Prefetch(0x20000, 0)
	// Third prefetch exceeds the MSHR budget and is dropped.
	h.Prefetch(0x30000, 0)
	if h.Stats.MSHRDrops != 1 {
		t.Fatalf("MSHRDrops = %d, want 1", h.Stats.MSHRDrops)
	}
	// The dropped line pays the full miss on access.
	if r := h.Access(0x30000, 10); r.Level != LevelDRAM {
		t.Errorf("dropped prefetch should leave a full miss, got %v", r.Level)
	}
	// Draining a fill frees an MSHR.
	h.Access(0x10000, 500)
	h.Prefetch(0x40000, 500)
	if h.Stats.MSHRDrops != 1 {
		t.Errorf("freed MSHR should accept a new fill (drops=%d)", h.Stats.MSHRDrops)
	}
	// Unlimited when zero.
	cfg.MaxInflight = 0
	h2 := MustNewHierarchy(cfg)
	for i := 0; i < 100; i++ {
		h2.Prefetch(uint64(0x1000+i*64), 0)
	}
	if h2.Stats.MSHRDrops != 0 {
		t.Error("unlimited config dropped prefetches")
	}
}

func TestWritebackPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Size = 128 // 2 lines, direct-mapped sets of 1
	cfg.L1Ways = 1
	cfg.HWPrefetchDistance = 0
	h := MustNewHierarchy(cfg)
	// Dirty line 0, then force its eviction (same set: stride 128).
	h.AccessW(0, 0, true)
	r := h.Access(128, 100)
	if r.Latency != cfg.LatDRAM+cfg.WritebackPenalty {
		t.Errorf("evicting a dirty victim: latency %d, want %d",
			r.Latency, cfg.LatDRAM+cfg.WritebackPenalty)
	}
	if h.Stats.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", h.Stats.Writebacks)
	}
	// Clean eviction pays no penalty.
	h2 := MustNewHierarchy(cfg)
	h2.Access(0, 0)
	r = h2.Access(128, 100)
	if r.Latency != cfg.LatDRAM {
		t.Errorf("clean eviction: latency %d, want %d", r.Latency, cfg.LatDRAM)
	}
	if h2.Stats.Writebacks != 0 {
		t.Error("clean eviction recorded a writeback")
	}
	// Re-dirtying an inflight-filled line works too.
	h3 := MustNewHierarchy(cfg)
	h3.Prefetch(0, 0)
	h3.AccessW(0, 400, true) // completes the fill and dirties it
	r = h3.Access(128, 500)
	if r.Latency != cfg.LatDRAM+cfg.WritebackPenalty {
		t.Errorf("dirty-after-inflight eviction: latency %d", r.Latency)
	}
}

func TestResidualAndConfigAccessors(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNewHierarchy(cfg)
	if h.Config().LatDRAM != cfg.LatDRAM {
		t.Error("Config accessor wrong")
	}
	if h.Residual(0x5000, 0) != 0 {
		t.Error("no fill should have zero residual")
	}
	h.Prefetch(0x5000, 100)
	if got := h.Residual(0x5000, 150); got != cfg.LatDRAM-50 {
		t.Errorf("residual = %d, want %d", got, cfg.LatDRAM-50)
	}
	if h.Residual(0x5000, 100+cfg.LatDRAM+1) != 0 {
		t.Error("completed fill should have zero residual")
	}
}

func TestMustNewHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	bad := DefaultConfig()
	bad.LineSize = 3
	MustNewHierarchy(bad)
}

func TestMustAccessorsPanic(t *testing.T) {
	m := NewMemory(1 << 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRead64(0) should panic")
			}
		}()
		m.MustRead64(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustWrite64(0) should panic")
			}
		}()
		m.MustWrite64(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Alloc with bad alignment should panic")
			}
		}()
		m.Alloc(8, 3)
	}()
	// Tiny memories are rounded up to a usable floor.
	if NewMemory(1).Size() < 128 {
		t.Error("minimum size not enforced")
	}
	// Zero alignment defaults to 8.
	if a := m.Alloc(8, 0); a%8 != 0 {
		t.Error("default alignment wrong")
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelL1, LevelL2, LevelL3, LevelDRAM, LevelInflight, Level(99)} {
		if l.String() == "" {
			t.Errorf("level %d renders empty", l)
		}
	}
}

func TestNewCachePanics(t *testing.T) {
	for _, f := range []func(){
		func() { newCache(256, 64, 0) },    // no ways
		func() { newCache(256, 48, 2) },    // bad line size
		func() { newCache(64*3*2, 64, 2) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestMSHRPeakAndFillMetrics pins the occupancy high-water mark and its
// export into the observability registry.
func TestMSHRPeakAndFillMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetchDistance = 0 // only software prefetches occupy MSHRs
	cfg.MaxInflight = 8
	h := MustNewHierarchy(cfg)

	// Start 5 fills at distinct lines, all outstanding at cycle 0.
	for i := 0; i < 5; i++ {
		h.Prefetch(uint64(i)*cfg.LineSize, 0)
	}
	if h.Stats.MSHRPeak != 5 {
		t.Fatalf("MSHRPeak = %d after 5 concurrent fills, want 5", h.Stats.MSHRPeak)
	}
	// Drain them via demand accesses; the peak must not move.
	for i := 0; i < 5; i++ {
		h.Access(uint64(i)*cfg.LineSize, 1000)
	}
	if h.Stats.MSHRPeak != 5 {
		t.Fatalf("MSHRPeak moved on drain: %d", h.Stats.MSHRPeak)
	}
	// Three more simultaneous fills peak at 3, below the high water.
	for i := 10; i < 13; i++ {
		h.Prefetch(uint64(i)*cfg.LineSize, 2000)
	}
	if h.Stats.MSHRPeak != 5 {
		t.Fatalf("MSHRPeak regressed: %d", h.Stats.MSHRPeak)
	}

	var m metrics.Mem
	h.FillMetrics(&m)
	if m.MSHRHighWater != 5 {
		t.Errorf("FillMetrics MSHRHighWater = %d, want 5", m.MSHRHighWater)
	}
	if m.Prefetches != h.Stats.Prefetches || m.Writebacks != h.Stats.Writebacks {
		t.Errorf("FillMetrics did not mirror Stats: %+v vs %+v", m, h.Stats)
	}
	if m.L2Misses != h.Stats.Accesses[LevelL3]+h.Stats.Accesses[LevelDRAM] {
		t.Errorf("L2Misses = %d, want L3+DRAM accesses", m.L2Misses)
	}
}

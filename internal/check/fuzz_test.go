package check

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bincfg"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/pebs"
	"repro/internal/profile"
)

// genProgram assembles a random but well-formed kernel: straight-line
// prologue, a counted loop with loads/stores/ALU ops, an optional
// called function, halt. Registers r1..r7 carry data, r8 the loop
// counter; branch structure is always reducible so the scavenger and
// liveness analyses see realistic shapes.
func genProgram(rng *rand.Rand) *isa.Program {
	var b strings.Builder
	reg := func() int { return 1 + rng.Intn(7) }
	emitBody := func(n int) {
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "    load r%d, [r%d+%d]\n", reg(), reg(), 8*rng.Intn(4))
			case 1:
				fmt.Fprintf(&b, "    store [r%d+%d], r%d\n", reg(), 8*rng.Intn(4), reg())
			case 2:
				fmt.Fprintf(&b, "    add r%d, r%d, r%d\n", reg(), reg(), reg())
			case 3:
				fmt.Fprintf(&b, "    addi r%d, r%d, %d\n", reg(), reg(), rng.Intn(64))
			case 4:
				fmt.Fprintf(&b, "    mov r%d, r%d\n", reg(), reg())
			default:
				fmt.Fprintf(&b, "    muli r%d, r%d, %d\n", reg(), reg(), 1+rng.Intn(8))
			}
		}
	}
	withCall := rng.Intn(3) == 0
	fmt.Fprintf(&b, "    movi r8, %d\n", 10+rng.Intn(100))
	emitBody(rng.Intn(4))
	if withCall {
		b.WriteString("    call fn\n")
	}
	b.WriteString("loop:\n")
	emitBody(1 + rng.Intn(8))
	b.WriteString("    addi r8, r8, -1\n    cmpi r8, 0\n    jgt loop\n    halt\n")
	if withCall {
		b.WriteString("fn:\n")
		emitBody(rng.Intn(3))
		b.WriteString("    ret\n")
	}
	return isa.MustAssemble(b.String())
}

// genProfile marks a random subset of the program's loads (and stores)
// hot with random intensities.
func genProfile(rng *rand.Rand, prog *isa.Program) *profile.Profile {
	var samples []pebs.Sample
	for pc, in := range prog.Instrs {
		if rng.Intn(2) == 0 {
			continue
		}
		var retired, miss pebs.EventKind
		switch in.Op {
		case isa.OpLoad:
			retired, miss = pebs.EvLoadRetired, pebs.EvLoadL3Miss
		case isa.OpStore:
			retired, miss = pebs.EvStoreRetired, pebs.EvStoreL3Miss
		default:
			continue
		}
		execs := uint64(100 + rng.Intn(1000))
		misses := uint64(rng.Intn(int(execs) + 1))
		samples = append(samples,
			pebs.Sample{Event: retired, PC: pc, Weight: execs},
			pebs.Sample{Event: miss, PC: pc, Weight: misses},
			pebs.Sample{Event: pebs.EvStallCycle, PC: pc, Weight: misses * 250},
		)
	}
	return profile.Build(len(prog.Instrs), samples, nil)
}

// genPipeline instruments a random program with random pipeline options.
func genPipeline(t testing.TB, rng *rand.Rand) (orig, final *isa.Program, oldToNew []int) {
	orig = genProgram(rng)
	prof := genProfile(rng, orig)
	opts := instrument.DefaultPipelineOptions()
	opts.Primary.Coalesce = rng.Intn(2) == 0
	opts.Primary.LiveMasks = rng.Intn(2) == 0
	if rng.Intn(2) == 0 {
		opts.Primary.Policy = instrument.AlwaysPolicy{}
	}
	if rng.Intn(4) == 0 {
		opts.Scavenger = nil
	} else {
		opts.Scavenger.TargetInterval = uint64(20 + rng.Intn(400))
		opts.Scavenger.LiveMasks = opts.Primary.LiveMasks
	}
	img, res, err := instrument.InstrumentImage(isa.Encode(orig), prof, opts)
	if err != nil {
		t.Fatalf("pipeline: %v\nprogram:\n%s", err, isa.Disassemble(orig))
	}
	return orig, isa.MustDecode(img), res.OldToNew
}

// TestFuzzPipelineAlwaysVerifies is the positive half of the fuzz
// harness: across many random programs × profiles × pipeline options,
// the checker accepts the pipeline's own output. A failure here is a
// genuine instrumentation bug (or an over-strict rule).
func TestFuzzPipelineAlwaysVerifies(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		orig, final, oldToNew := genPipeline(t, rng)
		rep := Program(orig, final, oldToNew, Options{})
		if !rep.Clean() {
			t.Fatalf("seed %d: pipeline output rejected:\n%s\noriginal:\n%s\nrewritten:\n%s",
				seed, rep, isa.Disassemble(orig), isa.Disassemble(final))
		}
	}
}

// mutation applies one seeded defect to final and returns the rules the
// checker may attribute it to. ok=false means the mutation does not
// apply to this program (e.g. no insertions to corrupt).
type mutation struct {
	name  string
	apply func(rng *rand.Rand, final *isa.Program, oldToNew []int) (expect []Rule, ok bool)
}

func insertedPCs(final *isa.Program, oldToNew []int) []int {
	isOrig := make([]bool, len(final.Instrs))
	for _, nw := range oldToNew {
		isOrig[nw] = true
	}
	var out []int
	for p := range final.Instrs {
		if !isOrig[p] {
			out = append(out, p)
		}
	}
	return out
}

var mutations = []mutation{
	{"clear live mask bit", func(rng *rand.Rand, final *isa.Program, oldToNew []int) ([]Rule, bool) {
		live := bincfg.ComputeLiveness(bincfg.MustBuild(final))
		var cands []int
		for p, in := range final.Instrs {
			if in.Op.IsYield() && live.LiveOut(p)&in.LiveMask() != 0 {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			return nil, false
		}
		p := cands[rng.Intn(len(cands))]
		need := live.LiveOut(p) & final.Instrs[p].LiveMask()
		// Clear one register the program provably needs across the yield.
		for r := isa.Reg(0); r < 16; r++ {
			if need.Has(r) {
				final.Instrs[p].Imm &^= int64(1) << r
				return []Rule{RuleLiveness}, true
			}
		}
		return nil, false
	}},
	{"alter original instruction", func(rng *rand.Rand, final *isa.Program, oldToNew []int) ([]Rule, bool) {
		nw := oldToNew[rng.Intn(len(oldToNew))]
		final.Instrs[nw].Imm += 3
		// A branch immediate change may additionally break target closure.
		return []Rule{RuleOriginal, RuleBranchTarget}, true
	}},
	{"effectful insertion", func(rng *rand.Rand, final *isa.Program, oldToNew []int) ([]Rule, bool) {
		ins := insertedPCs(final, oldToNew)
		if len(ins) == 0 {
			return nil, false
		}
		p := ins[rng.Intn(len(ins))]
		final.Instrs[p] = isa.Instr{Op: isa.OpAddI, Rd: isa.Reg(1 + rng.Intn(7)), Rs1: 1, Imm: 1}
		return []Rule{RuleEffectFree, RuleLiveness, RuleYieldPolicy}, true
	}},
	{"branch into group", func(rng *rand.Rand, final *isa.Program, oldToNew []int) ([]Rule, bool) {
		// Retarget a branch one past its group start; flagged as a broken
		// branch target and/or an altered original.
		for p, in := range final.Instrs {
			if in.Op.IsConditional() {
				final.Instrs[p].Imm++
				return []Rule{RuleBranchTarget, RuleOriginal}, true
			}
		}
		return nil, false
	}},
	{"shuffle mapping", func(rng *rand.Rand, final *isa.Program, oldToNew []int) ([]Rule, bool) {
		if len(oldToNew) < 2 {
			return nil, false
		}
		i := rng.Intn(len(oldToNew) - 1)
		oldToNew[i], oldToNew[i+1] = oldToNew[i+1], oldToNew[i]
		return []Rule{RuleMapping}, true
	}},
}

// TestFuzzMutationsAreCaught is the negative half: a single random
// defect injected into sound pipeline output must always be detected,
// and attributed to one of the rules that class of defect can violate.
func TestFuzzMutationsAreCaught(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		orig, final, oldToNew := genPipeline(t, rng)
		m := mutations[rng.Intn(len(mutations))]
		mapCopy := append([]int(nil), oldToNew...)
		expect, ok := m.apply(rng, final, mapCopy)
		if !ok {
			continue
		}
		rep := Program(orig, final, mapCopy, Options{})
		if rep.Clean() {
			t.Fatalf("seed %d: mutation %q escaped detection\noriginal:\n%s\nrewritten:\n%s",
				seed, m.name, isa.Disassemble(orig), isa.Disassemble(final))
		}
		attributed := false
		for _, r := range expect {
			if rep.HasRule(r) {
				attributed = true
				break
			}
		}
		if !attributed {
			t.Fatalf("seed %d: mutation %q detected but attributed to none of %v:\n%s",
				seed, m.name, expect, rep)
		}
	}
}

// FuzzPipelineVerifies exposes the positive property to `go test
// -fuzz`: arbitrary fuzzer-chosen seeds drive program/profile/option
// generation, and the pipeline's output must verify clean.
func FuzzPipelineVerifies(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		orig, final, oldToNew := genPipeline(t, rng)
		rep := Program(orig, final, oldToNew, Options{})
		if !rep.Clean() {
			t.Fatalf("pipeline output rejected:\n%s\noriginal:\n%s", rep, isa.Disassemble(orig))
		}
	})
}

// Package check is the whole-program semantic verifier for instrumented
// binaries — the second, deeper trust gate behind instrument.Verify.
//
// instrument.Verify proves the rewrite is *positionally* sound: originals
// in place, insertions effect-free, branches remapped. This package
// consumes the binary analyses the pipeline already paid for
// (internal/bincfg: CFG, dominators, liveness) to prove the properties a
// positional diff cannot:
//
//   - liveness: every YIELD/CYIELD save mask covers every register live
//     at its program point. The runtime deliberately poisons unsaved
//     registers on resume (see isa), so an unsound mask is an
//     architectural miscompile — the exact silent failure mode that
//     ruins PGO deployments.
//   - yield-policy: primary yields sit immediately before the memory
//     operation they expose, and every save mask includes SP.
//   - branch-target: branch-target closure holds after rewriting — no
//     branch lands inside an insertion group, skipping its prefetches.
//   - call-discipline: call/ret block discipline holds — no RET is
//     reachable in an entry frame without an intervening CALL (a
//     guaranteed return-stack underflow fault at runtime).
//   - unreachable-group: every insertion group is executable from some
//     entry (dead instrumentation indicates a broken policy or a
//     corrupted image).
//   - sfi: in SFI-hardened images, every LOAD (and STORE when guarded)
//     is preceded by a CHECK guarding the same address, or sits in the
//     co-design shadow of a yield (internal/sfi).
//
// Findings are accumulated into a Report — a structured diagnostic list
// (rule, severity, old/new PC, message) rather than a first-error — so a
// corrupted image surfaces its full damage in one pass. The report is
// exposed through the shcheck CLI (tool image in, JSON or human
// diagnostics out) and the Session WithVerification gate.
package check

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Severity classifies a diagnostic.
type Severity uint8

const (
	// SevWarning marks findings that do not change architectural
	// results but indicate the pipeline misbehaved.
	SevWarning Severity = iota
	// SevError marks soundness violations: executing the image can
	// produce wrong results or fault.
	SevError
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the name form written by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("check: unknown severity %q", name)
	}
	return nil
}

// Rule identifies which invariant a diagnostic violates. Every rule has
// a seeded-defect case in the negative corpus (corpus_test.go) proving
// the checker rejects it.
type Rule string

const (
	// RuleMapping: the old→new index mapping is malformed (wrong length,
	// non-monotone, out of range) or the rewritten program is invalid.
	RuleMapping Rule = "mapping"
	// RuleOriginal: an original instruction was altered by the rewrite
	// (beyond branch-target remapping).
	RuleOriginal Rule = "original-changed"
	// RuleEffectFree: an inserted instruction is not from the effect-free
	// set (NOP, PREFETCH, YIELD, CYIELD, CHECK).
	RuleEffectFree Rule = "effect-free"
	// RuleLiveness: a yield's save mask misses a live register, or an
	// inserted instruction writes a register that is live at its point.
	RuleLiveness Rule = "liveness"
	// RuleYieldPolicy: an inserted primary YIELD is not immediately
	// followed by the original memory operation it exposes, or a save
	// mask omits SP.
	RuleYieldPolicy Rule = "yield-policy"
	// RuleBranchTarget: a branch or call lands somewhere other than an
	// insertion-group start (e.g. inside a group, skipping prefetches).
	RuleBranchTarget Rule = "branch-target"
	// RuleCallDiscipline: call/ret block discipline is broken — a RET is
	// reachable from an entry without an intervening CALL.
	RuleCallDiscipline Rule = "call-discipline"
	// RuleUnreachableGroup: an insertion group can never execute from
	// any entry point.
	RuleUnreachableGroup Rule = "unreachable-group"
	// RuleSFI: an SFI-hardened image has a memory access without a
	// matching CHECK guard (or co-designed yield shadow).
	RuleSFI Rule = "sfi"
)

// Diagnostic is one finding: which rule, where, and why.
type Diagnostic struct {
	Rule     Rule     `json:"rule"`
	Severity Severity `json:"severity"`
	// NewPC is the instruction index in the rewritten program, -1 when
	// the finding has no single position.
	NewPC int `json:"new_pc"`
	// OldPC is the corresponding original-program index, -1 when the
	// finding concerns an inserted instruction or has no original.
	OldPC int    `json:"old_pc"`
	Msg   string `json:"msg"`
}

func (d Diagnostic) String() string {
	pos := "-"
	if d.NewPC >= 0 {
		pos = fmt.Sprintf("pc=%d", d.NewPC)
		if d.OldPC >= 0 {
			pos += fmt.Sprintf(" (old=%d)", d.OldPC)
		}
	}
	return fmt.Sprintf("%s: [%s] %s: %s", d.Severity, d.Rule, pos, d.Msg)
}

// Report is the accumulated outcome of one verification pass.
type Report struct {
	// Diags lists every finding in program order (by NewPC, positionless
	// findings first).
	Diags []Diagnostic `json:"diagnostics"`
	// Checked counts rewritten-program instructions examined; Inserted
	// counts how many of them were insertions.
	Checked  int `json:"checked"`
	Inserted int `json:"inserted"`
}

func (r *Report) add(rule Rule, sev Severity, newPC, oldPC int, format string, args ...any) {
	r.Diags = append(r.Diags, Diagnostic{
		Rule: rule, Severity: sev, NewPC: newPC, OldPC: oldPC,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return len(r.Diags) - r.Errors() }

// Clean reports whether the image passed: no findings of any severity.
func (r *Report) Clean() bool { return len(r.Diags) == 0 }

// HasRule reports whether any finding violates the given rule.
func (r *Report) HasRule(rule Rule) bool {
	for _, d := range r.Diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// String renders the report in the shcheck human format: one line per
// finding plus a summary line.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "checked %d instructions (%d inserted): %d errors, %d warnings\n",
		r.Checked, r.Inserted, r.Errors(), r.Warnings())
	return b.String()
}

// Err returns nil for a clean report and a *ReportError otherwise, so
// callers can gate ("verification must be clean") in one line.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	return &ReportError{Report: r}
}

// ReportError wraps a non-clean Report as an error for gating call
// sites (Session.WithVerification, the instrumentation pipeline).
type ReportError struct {
	Report *Report
}

func (e *ReportError) Error() string {
	return fmt.Sprintf("check: image failed verification with %d errors, %d warnings:\n%s",
		e.Report.Errors(), e.Report.Warnings(), e.Report.String())
}

package check

import (
	"fmt"

	"repro/internal/isa"
)

// Image decodes a pair of tool-interchange images and verifies the
// rewritten one against the original. When oldToNew is nil the mapping
// is inferred with InferMap — pass the pipeline report's mapping when
// available; inference is a heuristic for auditing images whose report
// was lost.
func Image(origImg, rewImg *isa.Image, oldToNew []int, opts Options) (*Report, error) {
	orig, err := isa.Decode(origImg)
	if err != nil {
		return nil, fmt.Errorf("check: original image: %w", err)
	}
	rew, err := isa.Decode(rewImg)
	if err != nil {
		return nil, fmt.Errorf("check: rewritten image: %w", err)
	}
	if oldToNew == nil {
		oldToNew, err = InferMap(orig, rew)
		if err != nil {
			return nil, fmt.Errorf("check: cannot infer old-to-new mapping: %w", err)
		}
	}
	return Program(orig, rew, oldToNew, opts), nil
}

// insertable reports whether op belongs to the effect-free set the
// rewriter may insert, and so may be skipped during map inference.
func insertable(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpPrefetch, isa.OpYield, isa.OpCYield, isa.OpCheck:
		return true
	}
	return false
}

// InferMap reconstructs the old-to-new index mapping by aligning the
// original instruction sequence into the rewritten one, skipping over
// effect-free insertions. Branches match on opcode and registers (their
// immediates were relocated). The result is a best-effort heuristic: if
// an original instruction is itself indistinguishable from an adjacent
// insertion the alignment may pick the earlier position, which is
// semantically equivalent. A sound rewrite always aligns; failure to
// align is itself evidence of tampering.
func InferMap(orig, rewritten *isa.Program) ([]int, error) {
	m := make([]int, len(orig.Instrs))
	j := 0
	for i, in := range orig.Instrs {
		for {
			if j >= len(rewritten.Instrs) {
				return nil, fmt.Errorf("original instruction %d (%v) has no image in the rewritten program", i, in)
			}
			r := rewritten.Instrs[j]
			if matchesOriginal(in, r) {
				m[i] = j
				j++
				break
			}
			if !insertable(r.Op) {
				return nil, fmt.Errorf("rewritten instruction %d (%v) is neither original instruction %d (%v) nor an effect-free insertion",
					j, r, i, in)
			}
			j++
		}
	}
	for ; j < len(rewritten.Instrs); j++ {
		if !insertable(rewritten.Instrs[j].Op) {
			return nil, fmt.Errorf("trailing rewritten instruction %d (%v) is not an effect-free insertion",
				j, rewritten.Instrs[j])
		}
	}
	return m, nil
}

// matchesOriginal reports whether r could be the image of in: exact
// equality, except branches whose immediate was relocated.
func matchesOriginal(in, r isa.Instr) bool {
	if in.Op.IsBranch() {
		return in.Op == r.Op && in.Rd == r.Rd && in.Rs1 == r.Rs1 && in.Rs2 == r.Rs2
	}
	return in == r
}

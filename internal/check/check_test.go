package check

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/pebs"
	"repro/internal/profile"
	"repro/internal/sfi"
)

// hotProfile fabricates a profile marking each pc as a hot DRAM-missing
// load, the same shape the instrument tests use.
func hotProfile(progLen int, hotPCs ...int) *profile.Profile {
	var samples []pebs.Sample
	for _, pc := range hotPCs {
		samples = append(samples,
			pebs.Sample{Event: pebs.EvLoadRetired, PC: pc, Weight: 1000},
			pebs.Sample{Event: pebs.EvLoadL2Miss, PC: pc, Weight: 900},
			pebs.Sample{Event: pebs.EvLoadL3Miss, PC: pc, Weight: 900},
			pebs.Sample{Event: pebs.EvStallCycle, PC: pc, Weight: 250000},
		)
	}
	return profile.Build(progLen, samples, nil)
}

const chaseSrc = `
        movi r3, 100        ; 0
    loop:
        load r1, [r1]       ; 1: hot pointer chase
        addi r3, r3, -1     ; 2
        cmpi r3, 0          ; 3
        jgt loop            ; 4
        halt                ; 5
`

const coalesceSrc = `
        movi r2, 4096       ; 0
        movi r7, 50         ; 1
    loop:
        load r3, [r2]       ; 2
        load r4, [r2+64]    ; 3
        load r5, [r2+128]   ; 4
        add r1, r3, r4      ; 5
        add r1, r1, r5      ; 6
        addi r2, r2, 192    ; 7
        addi r7, r7, -1     ; 8
        cmpi r7, 0          ; 9
        jgt loop            ; 10
        halt                ; 11
`

// instrumented runs src through the full pipeline and returns everything
// a verification needs.
func instrumented(t *testing.T, src string, hotPCs ...int) (orig, final *isa.Program, oldToNew []int) {
	t.Helper()
	orig = isa.MustAssemble(src)
	prof := hotProfile(len(orig.Instrs), hotPCs...)
	opts := instrument.DefaultPipelineOptions()
	opts.Scavenger.TargetInterval = 50
	img, res, err := instrument.InstrumentImage(isa.Encode(orig), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	return orig, isa.MustDecode(img), res.OldToNew
}

func TestPipelineOutputIsClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		hot  []int
	}{
		{"chase", chaseSrc, []int{1}},
		{"coalesce", coalesceSrc, []int{2, 3, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig, final, oldToNew := instrumented(t, tc.src, tc.hot...)
			rep := Program(orig, final, oldToNew, Options{})
			if !rep.Clean() {
				t.Fatalf("pipeline output not clean:\n%s", rep)
			}
			if rep.Checked != len(final.Instrs) {
				t.Errorf("Checked = %d, want %d", rep.Checked, len(final.Instrs))
			}
			if rep.Inserted != len(final.Instrs)-len(orig.Instrs) {
				t.Errorf("Inserted = %d, want %d", rep.Inserted, len(final.Instrs)-len(orig.Instrs))
			}
			if err := rep.Err(); err != nil {
				t.Errorf("clean report must have nil Err, got %v", err)
			}
		})
	}
}

// TestSFIHardenedOutputIsClean composes the pipeline with SFI hardening
// (the E12 composition) and verifies the composed mapping passes,
// including the guard-discipline rule.
func TestSFIHardenedOutputIsClean(t *testing.T) {
	for _, codesign := range []bool{false, true} {
		orig, inst, oldToNew := instrumented(t, chaseSrc, 1)
		sfiOpts := sfi.Options{CoDesign: codesign, GuardStores: true}
		hard, sres, err := sfi.Harden(inst, sfiOpts)
		if err != nil {
			t.Fatal(err)
		}
		composed := make([]int, len(oldToNew))
		for i, nw := range oldToNew {
			composed[i] = sres.OldToNew[nw]
		}
		rep := Program(orig, hard, composed, Options{SFI: &sfiOpts})
		if !rep.Clean() {
			t.Fatalf("codesign=%v: SFI-hardened output not clean:\n%s", codesign, rep)
		}
	}
}

func TestIdentityRewriteIsClean(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	ident := make([]int, len(prog.Instrs))
	for i := range ident {
		ident[i] = i
	}
	rep := Program(prog, prog, ident, Options{})
	if !rep.Clean() {
		t.Fatalf("identity rewrite not clean:\n%s", rep)
	}
}

func TestInferMapMatchesPipelineMapping(t *testing.T) {
	orig, final, oldToNew := instrumented(t, coalesceSrc, 2, 3, 4)
	inferred, err := InferMap(orig, final)
	if err != nil {
		t.Fatal(err)
	}
	// The inferred mapping may differ from the pipeline's only where an
	// original is indistinguishable from an adjacent insertion; either
	// way it must verify clean.
	if rep := Program(orig, final, inferred, Options{}); !rep.Clean() {
		t.Fatalf("inferred mapping does not verify:\n%s", rep)
	}
	if len(inferred) != len(oldToNew) {
		t.Fatalf("inferred length %d, want %d", len(inferred), len(oldToNew))
	}
}

func TestInferMapRejectsEffectfulExtra(t *testing.T) {
	orig := isa.MustAssemble("movi r1, 1\nhalt")
	bad := isa.MustAssemble("movi r1, 1\naddi r1, r1, 1\nhalt")
	if _, err := InferMap(orig, bad); err == nil {
		t.Error("effectful extra instruction must fail inference")
	}
	trunc := isa.MustAssemble("movi r1, 1")
	if _, err := InferMap(orig, trunc); err == nil {
		t.Error("truncated rewritten program must fail inference")
	}
	// Effectful trailing instruction after all originals matched.
	trail := isa.MustAssemble("movi r1, 1\nhalt\naddi r1, r1, 1")
	if _, err := InferMap(orig, trail); err == nil {
		t.Error("effectful trailing instruction must fail inference")
	}
}

func TestImageEndToEnd(t *testing.T) {
	orig, final, _ := instrumented(t, chaseSrc, 1)
	rep, err := Image(isa.Encode(orig), isa.Encode(final), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("image verification not clean:\n%s", rep)
	}
}

func TestReportMechanics(t *testing.T) {
	rep := &Report{Checked: 10, Inserted: 2}
	rep.add(RuleLiveness, SevError, 4, 2, "mask omits %v", isa.RegMask(1<<3))
	rep.add(RuleYieldPolicy, SevWarning, -1, -1, "detached yield")
	if rep.Clean() {
		t.Error("report with findings is not clean")
	}
	if rep.Errors() != 1 || rep.Warnings() != 1 {
		t.Errorf("errors=%d warnings=%d, want 1/1", rep.Errors(), rep.Warnings())
	}
	if !rep.HasRule(RuleLiveness) || rep.HasRule(RuleSFI) {
		t.Error("HasRule wrong")
	}
	err := rep.Err()
	if err == nil {
		t.Fatal("non-clean report must produce an error")
	}
	if !strings.Contains(err.Error(), "liveness") {
		t.Errorf("error does not identify the rule: %v", err)
	}
	s := rep.String()
	if !strings.Contains(s, "error: [liveness] pc=4 (old=2)") {
		t.Errorf("diagnostic rendering wrong:\n%s", s)
	}
	if !strings.Contains(s, "checked 10 instructions (2 inserted): 1 errors, 1 warnings") {
		t.Errorf("summary rendering wrong:\n%s", s)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{Checked: 5, Inserted: 1}
	rep.add(RuleSFI, SevError, 3, -1, "load unguarded")
	rep.add(RuleYieldPolicy, SevWarning, 2, 1, "detached")
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("severity not marshaled by name: %s", b)
	}
	var got Report
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Diags) != 2 || got.Diags[0].Severity != SevError || got.Diags[1].Severity != SevWarning {
		t.Errorf("round trip lost data: %+v", got)
	}
	var sev Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &sev); err == nil {
		t.Error("unknown severity name must fail to unmarshal")
	}
}

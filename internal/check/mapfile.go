package check

import (
	"encoding/json"
	"fmt"
	"io"
)

// MapFile is the JSON interchange format tying an instrumented image
// back to its original: the rewrite mapping plus the rewritten entry
// points. shinstr -report writes one; shcheck -map consumes it so
// verification runs on ground truth instead of InferMap's heuristic.
type MapFile struct {
	// OldToNew maps original instruction indices to their positions in
	// the rewritten program.
	OldToNew []int `json:"old_to_new"`
	// Entries are rewritten-program entry points (coroutine starts),
	// already remapped. Optional; empty means entry 0.
	Entries []int `json:"entries,omitempty"`
}

// Save writes the map file as indented JSON.
func (m *MapFile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadMapFile reads a map file written by Save (or by shinstr -report).
func LoadMapFile(r io.Reader) (*MapFile, error) {
	var m MapFile
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("check: parsing map file: %w", err)
	}
	if m.OldToNew == nil {
		return nil, fmt.Errorf("check: map file has no old_to_new mapping")
	}
	return &m, nil
}

package check

import (
	"testing"

	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/sfi"
)

// TestSeededDefectCorpus is the negative corpus from the acceptance
// criteria: for every rule, a seeded defect in an otherwise-sound image
// that the checker must reject with a diagnostic naming that rule. Each
// case starts from real pipeline output (or a hand-built program for the
// structural rules) so the only unsoundness present is the seeded one —
// except where a defect necessarily violates several rules at once,
// noted per case.
func TestSeededDefectCorpus(t *testing.T) {
	type corpusCase struct {
		name string
		rule Rule
		// build returns the inputs for one verification.
		build func(t *testing.T) (orig, rew *isa.Program, oldToNew []int, opts Options)
	}

	identity := func(prog *isa.Program) []int {
		m := make([]int, len(prog.Instrs))
		for i := range m {
			m[i] = i
		}
		return m
	}
	findInserted := func(t *testing.T, rew *isa.Program, oldToNew []int, op isa.Op) int {
		t.Helper()
		isOrig := make([]bool, len(rew.Instrs))
		for _, nw := range oldToNew {
			isOrig[nw] = true
		}
		for p, in := range rew.Instrs {
			if !isOrig[p] && in.Op == op {
				return p
			}
		}
		t.Fatalf("no inserted %v in corpus program", op)
		return -1
	}

	cases := []corpusCase{
		{
			// The PR-defining defect class: a yield whose save mask omits a
			// live register. The runtime poisons unsaved registers on
			// resume, so this is a silent architectural miscompile.
			name: "liveness clobber: mask bit cleared on inserted yield",
			rule: RuleLiveness,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				p := findInserted(t, final, oldToNew, isa.OpYield)
				// Drop r3 (the loop counter, live across the yield).
				final.Instrs[p].Imm &^= int64(1) << 3
				return orig, final, oldToNew, Options{}
			},
		},
		{
			name: "liveness clobber: scavenger cyield mask truncated",
			rule: RuleLiveness,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, coalesceSrc, 2, 3, 4)
				p := findInserted(t, final, oldToNew, isa.OpCYield)
				final.Instrs[p].Imm = int64(1) << isa.SP // SP only; r2/r7 live
				return orig, final, oldToNew, Options{}
			},
		},
		{
			name: "sfi violation: CHECK guards the wrong address",
			rule: RuleSFI,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, inst, oldToNew := instrumented(t, chaseSrc, 1)
				sfiOpts := sfi.DefaultOptions()
				hard, sres, err := sfi.Harden(inst, sfiOpts)
				if err != nil {
					t.Fatal(err)
				}
				composed := make([]int, len(oldToNew))
				for i, nw := range oldToNew {
					composed[i] = sres.OldToNew[nw]
				}
				p := findInserted(t, hard, composed, isa.OpCheck)
				hard.Instrs[p].Imm += 8 // guard no longer matches the access
				return orig, hard, composed, Options{SFI: &sfiOpts}
			},
		},
		{
			name: "sfi violation: unhardened image checked under SFI options",
			rule: RuleSFI,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				sfiOpts := sfi.DefaultOptions()
				return orig, final, oldToNew, Options{SFI: &sfiOpts}
			},
		},
		{
			name: "branch into insertion group: loop re-enters at the yield",
			rule: RuleBranchTarget,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				for p, in := range final.Instrs {
					if in.Op == isa.OpJgt {
						// Retarget one past the group start: execution would
						// skip the prefetch the group exists to issue.
						final.Instrs[p].Imm++
						return orig, final, oldToNew, Options{}
					}
				}
				t.Fatal("no loop branch in corpus program")
				return nil, nil, nil, Options{}
			},
		},
		{
			name: "unreachable insertion group: instrumented dead code",
			rule: RuleUnreachableGroup,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig := isa.MustAssemble(`
                    movi r1, 64     ; 0
                    jmp end         ; 1
                dead:
                    load r2, [r1]   ; 2: never executes
                    halt            ; 3
                end:
                    halt            ; 4
                `)
				// A stale profile claims pc 2 is hot; a broken policy
				// instruments it anyway.
				rw := instrument.NewRewriter(orig)
				rw.InsertBefore(2,
					isa.Instr{Op: isa.OpPrefetch, Rs1: 1},
					isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)})
				rew, oldToNew, err := rw.Apply()
				if err != nil {
					t.Fatal(err)
				}
				return orig, rew, oldToNew, Options{}
			},
		},
		{
			name: "call discipline: RET reachable in the entry frame",
			rule: RuleCallDiscipline,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				prog := isa.MustAssemble(`
                    movi r1, 1
                    ret             ; pops an empty return stack
                `)
				return prog, prog, identity(prog), Options{}
			},
		},
		{
			name: "call discipline: CALL rewritten to JMP leaks the callee",
			rule: RuleCallDiscipline,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig := isa.MustAssemble(`
                    call fn         ; 0
                    halt            ; 1
                fn:
                    movi r1, 1      ; 2
                    ret             ; 3
                `)
				rew := orig.Clone()
				rew.Instrs[0].Op = isa.OpJmp // also violates original-changed
				return orig, rew, identity(orig), Options{}
			},
		},
		{
			name: "original changed: immediate incremented",
			rule: RuleOriginal,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				final.Instrs[oldToNew[0]].Imm++
				return orig, final, oldToNew, Options{}
			},
		},
		{
			name: "effect-free: insertion replaced by an ALU op",
			rule: RuleEffectFree,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				p := findInserted(t, final, oldToNew, isa.OpPrefetch)
				final.Instrs[p] = isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}
				return orig, final, oldToNew, Options{}
			},
		},
		{
			name: "mapping: short",
			rule: RuleMapping,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				return orig, final, oldToNew[:2], Options{}
			},
		},
		{
			name: "mapping: non-monotone",
			rule: RuleMapping,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig, final, oldToNew := instrumented(t, chaseSrc, 1)
				bad := append([]int(nil), oldToNew...)
				bad[2], bad[3] = bad[3], bad[2]
				return orig, final, bad, Options{}
			},
		},
		{
			name: "yield policy: detached primary yield",
			rule: RuleYieldPolicy,
			build: func(t *testing.T) (*isa.Program, *isa.Program, []int, Options) {
				orig := isa.MustAssemble(`
                    movi r1, 64
                    load r2, [r1]   ; 1
                    halt
                `)
				// Yield inserted one instruction early: still effect-free
				// and liveness-safe, but it exposes the MOVI, not the load.
				rw := instrument.NewRewriter(orig)
				rw.InsertBefore(1, isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)},
					isa.Instr{Op: isa.OpNop})
				rew, oldToNew, err := rw.Apply()
				if err != nil {
					t.Fatal(err)
				}
				return orig, rew, oldToNew, Options{}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig, rew, oldToNew, opts := tc.build(t)
			rep := Program(orig, rew, oldToNew, opts)
			if rep.Clean() {
				t.Fatalf("seeded defect not detected")
			}
			if !rep.HasRule(tc.rule) {
				t.Fatalf("defect found but not attributed to rule %q:\n%s", tc.rule, rep)
			}
		})
	}
}

// TestEffectfulInsertionAlsoFlagsLivenessClobber: a tampered insertion
// that writes a live register must surface both the structural violation
// (effect-free) and its architectural consequence (liveness).
func TestEffectfulInsertionAlsoFlagsLivenessClobber(t *testing.T) {
	orig, final, oldToNew := instrumented(t, chaseSrc, 1)
	isOrig := make([]bool, len(final.Instrs))
	for _, nw := range oldToNew {
		isOrig[nw] = true
	}
	seeded := false
	for p, in := range final.Instrs {
		if !isOrig[p] && in.Op == isa.OpPrefetch {
			// r1 is the chase pointer, live everywhere in the loop.
			final.Instrs[p] = isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}
			seeded = true
			break
		}
	}
	if !seeded {
		t.Fatal("no inserted prefetch to corrupt")
	}
	rep := Program(orig, final, oldToNew, Options{})
	if !rep.HasRule(RuleEffectFree) || !rep.HasRule(RuleLiveness) {
		t.Fatalf("want effect-free and liveness findings, got:\n%s", rep)
	}
}

// TestAccumulation: one pass over a multiply-corrupted image reports
// every defect, not just the first.
func TestAccumulation(t *testing.T) {
	orig, final, oldToNew := instrumented(t, coalesceSrc, 2, 3, 4)
	// Defect 1: altered original.
	final.Instrs[oldToNew[0]].Imm++
	// Defect 2: liveness-unsound yield mask.
	isOrig := make([]bool, len(final.Instrs))
	for _, nw := range oldToNew {
		isOrig[nw] = true
	}
	for p, in := range final.Instrs {
		if !isOrig[p] && in.Op == isa.OpYield {
			final.Instrs[p].Imm &^= int64(1) << 7 // r7: loop counter
			break
		}
	}
	// Defect 3: branch into a group interior.
	for p, in := range final.Instrs {
		if in.Op == isa.OpJgt {
			final.Instrs[p].Imm++
			break
		}
	}
	rep := Program(orig, final, oldToNew, Options{})
	for _, rule := range []Rule{RuleOriginal, RuleLiveness, RuleBranchTarget} {
		if !rep.HasRule(rule) {
			t.Errorf("missing %q finding:\n%s", rule, rep)
		}
	}
	if rep.Errors() < 3 {
		t.Errorf("want >=3 errors, got %d:\n%s", rep.Errors(), rep)
	}
}
